#!/usr/bin/env bash
# Bench regression guard: rerun the ablation benches that have canonical
# baselines checked in at the repo root (BENCH_overlap.json,
# BENCH_parallel_exec.json) and compare the simulated metrics against
# them within a relative tolerance. Registered as CI's bench_regression
# job.
#
# Host wall-clock metrics are skipped: anything whose name contains
# "wall", plus a config's "speedup" when that config also reports
# wall-clock metrics (then the speedup is wall-derived too). Everything
# else in these reports is simulated time or a ratio of simulated times,
# which is deterministic — the tolerance only absorbs float formatting.
#
# Usage: check_bench_regression.sh [build_dir] [tolerance_pct]
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$root/build}"
tol="${2:-2}"

if ! command -v python3 >/dev/null 2>&1; then
  echo "bench_regression: python3 not available, skipping"
  exit 0
fi

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

fail=0
for name in overlap parallel_exec; do
  base="$root/BENCH_$name.json"
  bin="$build/bench/bench_ablation_$name"
  if [ ! -f "$base" ]; then
    echo "bench_regression: FAIL — missing baseline $base"
    fail=1
    continue
  fi
  if [ ! -x "$bin" ]; then
    echo "bench_regression: FAIL — missing bench binary $bin (build first)"
    fail=1
    continue
  fi
  if ! BRIDGECL_BENCH_DIR="$tmp" "$bin" >/dev/null 2>&1; then
    echo "bench_regression: FAIL — $bin did not run cleanly"
    fail=1
    continue
  fi
  python3 - "$base" "$tmp/BENCH_$name.json" "$tol" <<'PYEOF' || fail=1
import json
import sys

base_path, fresh_path, tol_pct = sys.argv[1], sys.argv[2], float(sys.argv[3])
base = json.load(open(base_path))
fresh = json.load(open(fresh_path))
name = base.get("bench", "?")

bad = False
for config, metrics in base["results"].items():
    got = fresh["results"].get(config)
    if got is None:
        print(f"bench_regression: FAIL — {name}/{config} missing from fresh run")
        bad = True
        continue
    wall_config = any("wall" in m for m in metrics)
    for metric, want in metrics.items():
        if "wall" in metric or (metric == "speedup" and wall_config):
            continue
        have = got.get(metric)
        if have is None:
            print(f"bench_regression: FAIL — {name}/{config}/{metric} missing")
            bad = True
            continue
        limit = abs(want) * tol_pct / 100.0
        if abs(have - want) > limit:
            print(
                f"bench_regression: FAIL — {name}/{config}/{metric}: "
                f"baseline {want} vs fresh {have} "
                f"(tolerance {tol_pct}%)"
            )
            bad = True
if bad:
    sys.exit(1)
print(f"bench_regression: OK — {name} matches baseline within {tol_pct}%")
PYEOF
done

exit "$fail"
