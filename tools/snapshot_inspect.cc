// snapshot_inspect: dump a BridgeCL snapshot image's header and section
// table (docs/SNAPSHOT.md).
//
//   snapshot_inspect ckpt.sgsnap
//
// Prints the format version, originating device profile, body checksum
// (with a verification verdict), and one line per section. Inspection is
// purely structural — it never decodes section payloads, so it works on
// images whose sections a newer build no longer understands and flags
// corruption without needing a device to restore into.
//
// Exit codes: 0 ok, 1 unreadable/corrupt image, 2 usage.
#include <cinttypes>
#include <cstdio>
#include <string>

#include "snapshot/snapshot.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    fprintf(stderr, "usage: snapshot_inspect <image.sgsnap>\n");
    return 2;
  }
  const std::string path = argv[1];
  auto info = bridgecl::snapshot::Inspect(path);
  if (!info.ok()) {
    fprintf(stderr, "snapshot_inspect: %s\n",
            info.status().ToString().c_str());
    return 1;
  }
  printf("%s:\n", path.c_str());
  printf("  format version : %" PRIu32 "\n", info->version);
  printf("  device profile : %s\n", info->profile.c_str());
  printf("  body           : %" PRIu64 " bytes, checksum %016" PRIx64 " (%s)\n",
         info->body_size, info->checksum,
         info->checksum_ok ? "ok" : "MISMATCH");
  printf("  sections       : %zu\n", info->sections.size());
  for (const auto& s : info->sections)
    printf("    %-4s  offset %8" PRIu64 "  size %8" PRIu64 "\n",
           s.tag.c_str(), s.offset, s.size);
  return info->checksum_ok ? 0 : 1;
}
