#!/usr/bin/env bash
# Repo-hygiene guard: fail if any build tree (build*/ at the repo root) is
# tracked by git. PR 1 accidentally committed build/ and build-asan/; this
# script — registered as the ctest test `repo_hygiene` — keeps them out.
#
# Usage: check_no_build_artifacts.sh [repo_root]
set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
cd "$root" || exit 1

if ! command -v git >/dev/null 2>&1; then
  echo "repo_hygiene: git not available, skipping"
  exit 0
fi
if ! git rev-parse --is-inside-work-tree >/dev/null 2>&1; then
  echo "repo_hygiene: not a git work tree, skipping"
  exit 0
fi

tracked=$(git ls-files 'build*/' | head -20)
if [ -n "$tracked" ]; then
  echo "repo_hygiene: FAIL — build artifacts are tracked by git:"
  echo "$tracked"
  echo "(run: git rm -r --cached 'build*/' and keep build*/ in .gitignore)"
  exit 1
fi

if ! grep -q '^build\*/' .gitignore 2>/dev/null; then
  echo "repo_hygiene: FAIL — .gitignore no longer ignores build*/"
  exit 1
fi

echo "repo_hygiene: OK — no build trees tracked"
exit 0
