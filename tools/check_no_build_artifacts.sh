#!/usr/bin/env bash
# Repo-hygiene guard: fail if any build tree (build*/ at the repo root) is
# tracked by git. PR 1 accidentally committed build/ and build-asan/; this
# script — registered as the ctest test `repo_hygiene` — keeps them out.
#
# Usage: check_no_build_artifacts.sh [repo_root]
set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
cd "$root" || exit 1

if ! command -v git >/dev/null 2>&1; then
  echo "repo_hygiene: git not available, skipping"
  exit 0
fi
if ! git rev-parse --is-inside-work-tree >/dev/null 2>&1; then
  echo "repo_hygiene: not a git work tree, skipping"
  exit 0
fi

tracked=$(git ls-files 'build*/' | head -20)
if [ -n "$tracked" ]; then
  echo "repo_hygiene: FAIL — build artifacts are tracked by git:"
  echo "$tracked"
  echo "(run: git rm -r --cached 'build*/' and keep build*/ in .gitignore)"
  exit 1
fi

if ! grep -q '^build\*/' .gitignore 2>/dev/null; then
  echo "repo_hygiene: FAIL — .gitignore no longer ignores build*/"
  exit 1
fi

# Snapshot images (docs/SNAPSHOT.md) are run artifacts, never sources.
snaps=$(git ls-files '*.sgsnap' | head -20)
if [ -n "$snaps" ]; then
  echo "repo_hygiene: FAIL — snapshot images are tracked by git:"
  echo "$snaps"
  echo "(run: git rm --cached <file> and keep *.sgsnap in .gitignore)"
  exit 1
fi
if ! grep -q '^\*\.sgsnap' .gitignore 2>/dev/null; then
  echo "repo_hygiene: FAIL — .gitignore no longer ignores *.sgsnap"
  exit 1
fi

# Bench reports are tracked only as the canonical baselines at the repo
# root (tools/check_bench_regression.sh); stray reports from local runs
# must stay untracked.
stray=$(git ls-files 'BENCH_*.json' '*/BENCH_*.json' |
  grep -v -e '^BENCH_overlap\.json$' -e '^BENCH_parallel_exec\.json$' |
  head -20)
if [ -n "$stray" ]; then
  echo "repo_hygiene: FAIL — non-baseline bench reports are tracked:"
  echo "$stray"
  echo "(only /BENCH_overlap.json and /BENCH_parallel_exec.json belong in git)"
  exit 1
fi

echo "repo_hygiene: OK — no build trees, snapshots, or stray reports tracked"
exit 0
