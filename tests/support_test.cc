#include <gtest/gtest.h>

#include "support/status.h"
#include "support/strings.h"

namespace bridgecl {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "invalid_argument: bad thing");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(UntranslatableError("x").code(), StatusCode::kUntranslatable);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(NotFoundError("nope"));
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

StatusOr<int> Doubler(StatusOr<int> in) {
  BRIDGECL_ASSIGN_OR_RETURN(int x, std::move(in));
  return x * 2;
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_FALSE(Doubler(InternalError("boom")).ok());
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("get_global_id", "get_"));
  EXPECT_FALSE(StartsWith("id", "get_"));
  EXPECT_TRUE(EndsWith("kernel.cl", ".cl"));
  EXPECT_FALSE(EndsWith(".cl", "kernel.cl"));
}

TEST(StringsTest, SplitAndJoin) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Join(parts, "|"), "a|b||c");
}

TEST(StringsTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("a.cl a.cl", "a.cl", "b.cu"), "b.cu b.cu");
  EXPECT_EQ(ReplaceAll("xxx", "x", "xx"), "xxxxxx");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripAsciiWhitespace("  \t x y \n"), "x y");
  EXPECT_EQ(StripAsciiWhitespace(""), "");
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "ok"), "7-ok");
}

}  // namespace
}  // namespace bridgecl
