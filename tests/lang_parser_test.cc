#include <gtest/gtest.h>

#include "lang/parser.h"

namespace bridgecl::lang {
namespace {

std::unique_ptr<TranslationUnit> MustParse(const std::string& src,
                                           Dialect d) {
  DiagnosticEngine diags;
  ParseOptions opts;
  opts.dialect = d;
  auto tu = ParseTranslationUnit(src, opts, diags);
  EXPECT_TRUE(tu.ok()) << diags.ToString();
  if (!tu.ok()) return nullptr;
  return std::move(*tu);
}

TEST(ParserTest, OpenClKernelSignature) {
  auto tu = MustParse(
      "__kernel void vadd(__global float* a, __global float* b, "
      "__global float* c, int n) {}",
      Dialect::kOpenCL);
  ASSERT_NE(tu, nullptr);
  auto* f = tu->FindFunction("vadd");
  ASSERT_NE(f, nullptr);
  EXPECT_TRUE(f->quals.is_kernel);
  ASSERT_EQ(f->params.size(), 4u);
  ASSERT_TRUE(f->params[0]->type->is_pointer());
  EXPECT_EQ(f->params[0]->type->pointee_space(), AddressSpace::kGlobal);
  EXPECT_EQ(f->params[3]->type->scalar_kind(), ScalarKind::kInt);
}

TEST(ParserTest, CudaKernelSignature) {
  auto tu = MustParse("__global__ void vadd(float* a, float* b, int n) {}",
                      Dialect::kCUDA);
  ASSERT_NE(tu, nullptr);
  auto* f = tu->FindFunction("vadd");
  ASSERT_NE(f, nullptr);
  EXPECT_TRUE(f->quals.is_kernel);
  // Before sema, unqualified CUDA pointers have private (unknown) pointee.
  EXPECT_EQ(f->params[0]->type->pointee_space(), AddressSpace::kPrivate);
}

TEST(ParserTest, OpenClLocalAndConstantParams) {
  auto tu = MustParse(
      "__kernel void k(__local int* tile, __constant float* coef) {}",
      Dialect::kOpenCL);
  auto* f = tu->FindFunction("k");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->params[0]->type->pointee_space(), AddressSpace::kLocal);
  EXPECT_EQ(f->params[1]->type->pointee_space(), AddressSpace::kConstant);
}

TEST(ParserTest, StaticSharedArray) {
  auto tu = MustParse(
      "__kernel void k() { __local int tile[32]; tile[0] = 1; }",
      Dialect::kOpenCL);
  ASSERT_NE(tu, nullptr);
  auto* f = tu->FindFunction("k");
  auto* ds = f->body->body[0]->As<DeclStmt>();
  ASSERT_EQ(ds->vars.size(), 1u);
  EXPECT_EQ(ds->vars[0]->quals.space, AddressSpace::kLocal);
  ASSERT_TRUE(ds->vars[0]->type->is_array());
  EXPECT_EQ(ds->vars[0]->type->array_extent(), 32u);
}

TEST(ParserTest, CudaExternSharedArray) {
  auto tu = MustParse(
      "__global__ void k() { extern __shared__ int dyn[]; dyn[0] = 1; }",
      Dialect::kCUDA);
  ASSERT_NE(tu, nullptr);
  auto* f = tu->FindFunction("k");
  auto* ds = f->body->body[0]->As<DeclStmt>();
  EXPECT_TRUE(ds->vars[0]->quals.is_extern);
  EXPECT_EQ(ds->vars[0]->quals.space, AddressSpace::kLocal);
}

TEST(ParserTest, CudaConstantFileScope) {
  auto tu = MustParse("__constant__ int table[32] = {1, 2, 3, 4};",
                      Dialect::kCUDA);
  ASSERT_NE(tu, nullptr);
  auto* v = tu->decls[0]->As<VarDecl>();
  EXPECT_EQ(v->quals.space, AddressSpace::kConstant);
  ASSERT_NE(v->init, nullptr);
  EXPECT_EQ(v->init->kind, ExprKind::kInitList);
}

TEST(ParserTest, CudaDeviceGlobalVariable) {
  auto tu = MustParse("__device__ int counters[8];", Dialect::kCUDA);
  ASSERT_NE(tu, nullptr);
  auto* v = tu->decls[0]->As<VarDecl>();
  EXPECT_EQ(v->quals.space, AddressSpace::kGlobal);
}

TEST(ParserTest, VectorTypesAndSwizzles) {
  auto tu = MustParse(
      "__kernel void k(__global float4* v) {"
      "  float4 a = v[0];"
      "  float2 b = a.lo;"
      "  a.hi = b;"
      "  float c = a.x + a.s3;"
      "}",
      Dialect::kOpenCL);
  ASSERT_NE(tu, nullptr);
}

TEST(ParserTest, WideVectors) {
  auto tu = MustParse(
      "__kernel void k(__global float8* v, __global int16* w) {}",
      Dialect::kOpenCL);
  auto* f = tu->FindFunction("k");
  EXPECT_EQ(f->params[0]->type->pointee()->vector_width(), 8);
  EXPECT_EQ(f->params[1]->type->pointee()->vector_width(), 16);
}

TEST(ParserTest, CudaOneComponentVectorAndLonglong) {
  auto tu = MustParse(
      "__global__ void k(float1* a, longlong2* b) { float1 x = a[0]; }",
      Dialect::kCUDA);
  auto* f = tu->FindFunction("k");
  EXPECT_EQ(f->params[0]->type->pointee()->vector_width(), 1);
  EXPECT_EQ(f->params[1]->type->pointee()->scalar_kind(),
            ScalarKind::kLongLong);
}

TEST(ParserTest, VectorLiteral) {
  auto tu = MustParse(
      "__kernel void k(__global float4* o) {"
      "  o[0] = (float4)(1.0f, 2.0f, 3.0f, 4.0f);"
      "}",
      Dialect::kOpenCL);
  ASSERT_NE(tu, nullptr);
  auto* f = tu->FindFunction("k");
  auto* es = f->body->body[0]->As<ExprStmt>();
  auto* assign = es->expr->As<AssignExpr>();
  EXPECT_EQ(assign->rhs->kind, ExprKind::kVectorLit);
}

TEST(ParserTest, ControlFlow) {
  auto tu = MustParse(
      "__kernel void k(__global int* a, int n) {"
      "  for (int i = 0; i < n; ++i) {"
      "    if (a[i] > 0) a[i] = -a[i]; else continue;"
      "  }"
      "  int j = 0;"
      "  while (j < n) { j += 2; if (j == 8) break; }"
      "  do { j--; } while (j > 0);"
      "}",
      Dialect::kOpenCL);
  ASSERT_NE(tu, nullptr);
}

TEST(ParserTest, StructAndTypedef) {
  auto tu = MustParse(
      "typedef struct { float x; float y; int tag; } Point;"
      "struct Node { int value; };"
      "__kernel void k(__global Point* p, __global struct Node* n) {"
      "  p[0].x = 1.0f;"
      "  n[0].value = 2;"
      "}",
      Dialect::kOpenCL);
  ASSERT_NE(tu, nullptr);
}

TEST(ParserTest, CudaTemplates) {
  auto tu = MustParse(
      "template <typename T> __device__ T my_max(T a, T b) {"
      "  return a > b ? a : b;"
      "}"
      "__global__ void k(float* o, float* a, float* b) {"
      "  o[0] = my_max<float>(a[0], b[0]);"
      "}",
      Dialect::kCUDA);
  ASSERT_NE(tu, nullptr);
  auto* f = tu->FindFunction("my_max");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(f->template_params.size(), 1u);
  EXPECT_EQ(f->template_params[0].name, "T");
}

TEST(ParserTest, CudaReferencesAndCasts) {
  auto tu = MustParse(
      "__device__ void swap_vals(int& a, int& b) {"
      "  int t = a; a = b; b = t;"
      "}"
      "__global__ void k(int* x) {"
      "  float f = static_cast<float>(x[0]);"
      "  x[1] = (int)f;"
      "}",
      Dialect::kCUDA);
  ASSERT_NE(tu, nullptr);
  auto* f = tu->FindFunction("swap_vals");
  ASSERT_EQ(f->param_is_reference.size(), 2u);
  EXPECT_TRUE(f->param_is_reference[0]);
}

TEST(ParserTest, CudaTextureDecl) {
  auto tu = MustParse(
      "texture<float4, 2, cudaReadModeElementType> tex;"
      "__global__ void k(float4* o) {"
      "  o[0] = tex2D(tex, 0.5f, 0.5f);"
      "}",
      Dialect::kCUDA);
  ASSERT_NE(tu, nullptr);
  auto* t = tu->decls[0]->As<TextureRefDecl>();
  EXPECT_EQ(t->dims, 2);
  EXPECT_EQ(t->elem_width, 4);
}

TEST(ParserTest, OpenClImageParams) {
  auto tu = MustParse(
      "__kernel void k(__read_only image2d_t img, sampler_t s, "
      "__global float4* o) {"
      "  o[0] = read_imagef(img, s, (float2)(0.5f, 0.5f));"
      "}",
      Dialect::kOpenCL);
  ASSERT_NE(tu, nullptr);
  auto* f = tu->FindFunction("k");
  EXPECT_TRUE(f->params[0]->type->is_image());
  EXPECT_TRUE(f->params[0]->quals.read_only);
  EXPECT_TRUE(f->params[1]->type->is_sampler());
}

TEST(ParserTest, PrecedenceAndAssociativity) {
  auto tu = MustParse(
      "__kernel void k(__global int* a) {"
      "  a[0] = 1 + 2 * 3;"          // 7
      "  a[1] = (1 + 2) * 3;"        // 9
      "  a[2] = 1 << 2 | 1;"         // 5
      "  a[3] = 10 - 4 - 3;"         // 3 (left assoc)
      "}",
      Dialect::kOpenCL);
  ASSERT_NE(tu, nullptr);
  auto* f = tu->FindFunction("k");
  auto* e0 = f->body->body[0]->As<ExprStmt>()->expr->As<AssignExpr>();
  auto* add = e0->rhs->As<BinaryExpr>();
  EXPECT_EQ(add->op, BinaryOp::kAdd);
  EXPECT_EQ(add->rhs->As<BinaryExpr>()->op, BinaryOp::kMul);
}

TEST(ParserTest, UnknownTypeFails) {
  DiagnosticEngine diags;
  ParseOptions opts;
  auto r = ParseTranslationUnit("__kernel void k(Quux q) {}", opts, diags);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(diags.has_errors());
}

TEST(ParserTest, CudaQualifiersRejectedInOpenCl) {
  DiagnosticEngine diags;
  ParseOptions opts;
  opts.dialect = Dialect::kOpenCL;
  auto r = ParseTranslationUnit("__global__ void k(float* a) {}", opts, diags);
  EXPECT_FALSE(r.ok());
}

TEST(ParserTest, MultipleDeclarators) {
  auto tu = MustParse("__kernel void k() { int a = 1, b = 2, c; c = a + b; }",
                      Dialect::kOpenCL);
  ASSERT_NE(tu, nullptr);
  auto* ds = tu->FindFunction("k")->body->body[0]->As<DeclStmt>();
  EXPECT_EQ(ds->vars.size(), 3u);
}

}  // namespace
}  // namespace bridgecl::lang
