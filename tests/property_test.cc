// Property-based and differential tests over the core invariants:
//  * value encode/decode round-trips for every scalar kind and width
//  * translated kernels compute bit-identical results to their source for
//    randomly generated arithmetic kernels and swizzle patterns
//  * atomic wrap semantics sweeps
//  * bank-word accounting and NDRange/grid conversion invariants
#include <gtest/gtest.h>

#include <cmath>

#include "interp/executor.h"
#include "interp/module.h"
#include "interp/value.h"
#include "simgpu/device.h"
#include "simgpu/fiber.h"
#include "support/strings.h"
#include "translator/translate.h"

namespace bridgecl {
namespace {

using interp::KernelArg;
using interp::Module;
using interp::ScalarVal;
using interp::Value;
using lang::Dialect;
using lang::ScalarKind;
using lang::Type;
using simgpu::Device;
using simgpu::Dim3;
using simgpu::TitanProfile;

// ===========================================================================
// Value encode/decode round-trip across the type lattice.
// ===========================================================================
class ValueRoundTripTest
    : public ::testing::TestWithParam<std::tuple<ScalarKind, int>> {};

INSTANTIATE_TEST_SUITE_P(
    Lattice, ValueRoundTripTest,
    ::testing::Combine(
        ::testing::Values(ScalarKind::kChar, ScalarKind::kUChar,
                          ScalarKind::kShort, ScalarKind::kUShort,
                          ScalarKind::kInt, ScalarKind::kUInt,
                          ScalarKind::kLong, ScalarKind::kULong,
                          ScalarKind::kFloat, ScalarKind::kDouble),
        ::testing::Values(1, 2, 3, 4, 8, 16)),
    [](const auto& info) {
      return std::string(lang::ScalarName(std::get<0>(info.param))) + "_w" +
             std::to_string(std::get<1>(info.param));
    });

TEST_P(ValueRoundTripTest, EncodeDecode) {
  auto [kind, width] = GetParam();
  Type::Ptr t =
      width == 1 ? Type::Scalar(kind) : Type::Vector(kind, width);
  std::vector<ScalarVal> comps(width);
  for (int i = 0; i < width; ++i) {
    if (lang::IsFloatScalar(kind)) {
      comps[i].f = kind == ScalarKind::kFloat
                       ? static_cast<float>(-1.5 + i * 0.25)
                       : -1.5 + i * 0.25;
    } else if (lang::IsSignedScalar(kind)) {
      comps[i].i = -7 + i;  // negative values exercise sign extension
    } else {
      comps[i].u = 3 + i;
    }
  }
  Value v;
  if (width == 1) {
    v.set_type(t);
    v.set_scalar(comps[0]);
  } else {
    v = Value::Vector(t, comps);
  }
  std::vector<std::byte> buf(t->ByteSize());
  ASSERT_TRUE(interp::EncodeValue(v, buf.data()).ok());
  auto back = interp::DecodeValue(t, buf.data());
  ASSERT_TRUE(back.ok());
  for (int i = 0; i < width; ++i) {
    ScalarVal a = width == 1 ? v.scalar() : v.comps()[i];
    ScalarVal b = width == 1 ? back->scalar() : back->comps()[i];
    if (lang::IsFloatScalar(kind)) {
      EXPECT_DOUBLE_EQ(a.f, b.f) << "component " << i;
    } else {
      EXPECT_EQ(a.i, b.i) << "component " << i;
    }
  }
}

// ===========================================================================
// Differential: random straight-line arithmetic kernels must compute the
// same values before and after OpenCL→CUDA translation.
// ===========================================================================

/// Tiny deterministic generator of straight-line float kernels.
std::string RandomKernel(uint32_t seed, int stmts) {
  uint64_t s = seed * 6364136223846793005ull + 1442695040888963407ull;
  auto next = [&]() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return static_cast<uint32_t>(s >> 33);
  };
  std::string body;
  int vars = 2;  // v0, v1 seeded from the input
  body += "  float v0 = in[i];\n";
  body += "  float v1 = in[(i + 7) % n];\n";
  const char* ops[] = {"+", "-", "*"};
  const char* fns[] = {"fabs", "floor", "sqrt", "fmin", "fmax"};
  for (int k = 0; k < stmts; ++k) {
    int a = next() % vars;
    int b = next() % vars;
    int form = next() % 4;
    std::string expr;
    switch (form) {
      case 0:
        expr = StrFormat("v%d %s v%d", a, ops[next() % 3], b);
        break;
      case 1:
        expr = StrFormat("%s(v%d + 1.5f)", fns[next() % 3], a);
        break;
      case 2:
        expr = StrFormat("fmin(v%d, v%d)", a, b);
        break;
      default:
        expr = StrFormat("(v%d > v%d) ? v%d : (v%d * 0.5f)", a, b, a, b);
        break;
    }
    body += StrFormat("  float v%d = %s;\n", vars, expr.c_str());
    ++vars;
  }
  body += StrFormat("  out[i] = v%d;\n", vars - 1);
  return StrFormat(
      "__kernel void randk(__global float* in, __global float* out,"
      " int n) {\n"
      "  int i = get_global_id(0);\n"
      "  if (i >= n) return;\n%s}\n",
      body.c_str());
}

StatusOr<std::vector<float>> RunKernelSource(const std::string& src,
                                             Dialect d, int n) {
  Device device(TitanProfile());
  DiagnosticEngine diags;
  auto m = Module::Compile(src, d, diags);
  if (!m.ok())
    return Status(m.status().code(),
                  m.status().message() + "\n" + diags.ToString());
  BRIDGECL_RETURN_IF_ERROR((*m)->LoadOn(device));
  std::vector<float> in(n);
  for (int i = 0; i < n; ++i) in[i] = 0.125f * i - 3.0f;
  BRIDGECL_ASSIGN_OR_RETURN(uint64_t din, device.vm().AllocGlobal(n * 4));
  BRIDGECL_ASSIGN_OR_RETURN(uint64_t dout, device.vm().AllocGlobal(n * 4));
  BRIDGECL_ASSIGN_OR_RETURN(std::byte * p, device.vm().Resolve(din, n * 4));
  std::memcpy(p, in.data(), n * 4);
  interp::LaunchConfig cfg;
  cfg.grid = Dim3(n / 32);
  cfg.block = Dim3(32);
  std::vector<KernelArg> args = {KernelArg::Pointer(din),
                                 KernelArg::Pointer(dout),
                                 KernelArg::Value<int>(n)};
  BRIDGECL_RETURN_IF_ERROR(
      interp::LaunchKernel(device, **m, "randk", cfg, args).status());
  BRIDGECL_ASSIGN_OR_RETURN(std::byte * q, device.vm().Resolve(dout, n * 4));
  std::vector<float> out(n);
  std::memcpy(out.data(), q, n * 4);
  return out;
}

class RandomKernelTest : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Seeds, RandomKernelTest, ::testing::Range(1, 17));

TEST_P(RandomKernelTest, TranslationPreservesSemantics) {
  std::string cl_src = RandomKernel(GetParam(), 8 + GetParam() % 5);
  DiagnosticEngine diags;
  auto tr = translator::TranslateOpenClToCuda(cl_src, diags);
  ASSERT_TRUE(tr.ok()) << diags.ToString() << "\n" << cl_src;
  auto orig = RunKernelSource(cl_src, Dialect::kOpenCL, 64);
  ASSERT_TRUE(orig.ok()) << orig.status().ToString() << "\n" << cl_src;
  auto trans = RunKernelSource(tr->source, Dialect::kCUDA, 64);
  ASSERT_TRUE(trans.ok()) << trans.status().ToString() << "\n" << tr->source;
  for (int i = 0; i < 64; ++i) {
    float a = (*orig)[i];
    float b = (*trans)[i];
    if (std::isnan(a)) {
      EXPECT_TRUE(std::isnan(b)) << "elem " << i << "\n" << cl_src;
    } else {
      EXPECT_EQ(a, b) << "elem " << i << "\n" << cl_src << "\n---\n"
                      << tr->source;
    }
  }
}

// ===========================================================================
// Swizzle patterns: CL→CU translation of swizzle loads/stores.
// ===========================================================================
struct SwizzleCase {
  const char* lhs;   // swizzle on the store target (or "" for plain)
  const char* rhs;   // swizzle on the loaded value
};

class SwizzleTranslationTest
    : public ::testing::TestWithParam<SwizzleCase> {};

INSTANTIATE_TEST_SUITE_P(
    Patterns, SwizzleTranslationTest,
    ::testing::Values(SwizzleCase{"lo", "hi"}, SwizzleCase{"hi", "lo"},
                      SwizzleCase{"even", "odd"}, SwizzleCase{"odd", "even"},
                      SwizzleCase{"lo", "even"}, SwizzleCase{"hi", "odd"}),
    [](const auto& info) {
      return std::string(info.param.lhs) + "_from_" + info.param.rhs;
    });

TEST_P(SwizzleTranslationTest, StorePatternsMatch) {
  const SwizzleCase& c = GetParam();
  std::string src = StrFormat(
      "__kernel void randk(__global float* in, __global float* out,"
      " int n) {\n"
      "  int i = get_global_id(0);\n"
      "  if (i >= n / 4) return;\n"
      "  __global float4* vin = (__global float4*)in;\n"
      "  __global float4* vout = (__global float4*)out;\n"
      "  float4 v = vin[i];\n"
      "  float4 r = v;\n"
      "  r.%s = v.%s;\n"
      "  vout[i] = r;\n"
      "}\n",
      c.lhs, c.rhs);
  DiagnosticEngine diags;
  auto tr = translator::TranslateOpenClToCuda(src, diags);
  ASSERT_TRUE(tr.ok()) << diags.ToString();
  // The CUDA output must not contain OpenCL-only swizzles.
  EXPECT_EQ(tr->source.find(".lo"), std::string::npos) << tr->source;
  EXPECT_EQ(tr->source.find(".even"), std::string::npos) << tr->source;
  auto orig = RunKernelSource(src, Dialect::kOpenCL, 64);
  ASSERT_TRUE(orig.ok()) << orig.status().ToString();
  auto trans = RunKernelSource(tr->source, Dialect::kCUDA, 64);
  ASSERT_TRUE(trans.ok()) << trans.status().ToString() << "\n" << tr->source;
  EXPECT_EQ(*orig, *trans) << src << "\n---\n" << tr->source;
}

// ===========================================================================
// atomicInc wrap semantics sweep (§3.7) across limits, native CUDA vs the
// host-computed model.
// ===========================================================================
class AtomicWrapTest : public ::testing::TestWithParam<unsigned> {};

INSTANTIATE_TEST_SUITE_P(Limits, AtomicWrapTest,
                         ::testing::Values(0u, 1u, 2u, 3u, 7u, 16u, 255u));

TEST_P(AtomicWrapTest, IncMatchesModel) {
  unsigned limit = GetParam();
  const int increments = 37;
  Device device(TitanProfile());
  DiagnosticEngine diags;
  auto m = Module::Compile(
      StrFormat("__global__ void k(unsigned int* c) { atomicInc(c, %uu); }",
                limit),
      Dialect::kCUDA, diags);
  ASSERT_TRUE(m.ok()) << diags.ToString();
  ASSERT_TRUE((*m)->LoadOn(device).ok());
  auto va = device.vm().AllocGlobal(4);
  ASSERT_TRUE(va.ok());
  unsigned zero = 0;
  std::memcpy(*device.vm().Resolve(*va, 4), &zero, 4);
  interp::LaunchConfig cfg;
  cfg.grid = Dim3(increments);
  cfg.block = Dim3(1);
  std::vector<KernelArg> args = {KernelArg::Pointer(*va)};
  ASSERT_TRUE(interp::LaunchKernel(device, **m, "k", cfg, args).ok());
  unsigned got;
  std::memcpy(&got, *device.vm().Resolve(*va, 4), 4);
  // Reference model of CUDA's documented semantics.
  unsigned expect = 0;
  for (int i = 0; i < increments; ++i)
    expect = (expect >= limit) ? 0 : expect + 1;
  EXPECT_EQ(got, expect) << "limit " << limit;
}

// ===========================================================================
// Bank-word accounting invariants over an access sweep.
// ===========================================================================
TEST(BankWordProperty, ModeRelationsHold) {
  Device d(TitanProfile());
  for (uint64_t va = 0; va < 64; ++va) {
    for (size_t bytes : {1u, 2u, 4u, 8u, 12u, 16u, 32u}) {
      d.set_bank_mode(simgpu::BankMode::k32Bit);
      int w32 = d.SharedAccessBankWords(va, bytes);
      d.set_bank_mode(simgpu::BankMode::k64Bit);
      int w64 = d.SharedAccessBankWords(va, bytes);
      // 64-bit words are unions of two 32-bit words.
      EXPECT_LE(w64, w32) << va << "/" << bytes;
      EXPECT_LE(w32, 2 * w64) << va << "/" << bytes;
      // Aligned accesses: exact counts.
      if (va % 8 == 0 && bytes % 8 == 0) {
        EXPECT_EQ(w32, static_cast<int>(bytes / 4));
        EXPECT_EQ(w64, static_cast<int>(bytes / 8));
      }
    }
  }
}

// ===========================================================================
// NDRange ⇄ grid conversions across a size sweep.
// ===========================================================================
TEST(NdrangeProperty, RoundTripsWhenDivisible) {
  for (uint32_t lws : {1u, 2u, 8u, 32u, 64u, 128u}) {
    for (uint32_t groups : {1u, 2u, 3u, 7u, 16u}) {
      Dim3 gws(lws * groups, lws, 1);
      Dim3 local(lws, lws, 1);
      Dim3 grid;
      ASSERT_TRUE(simgpu::NdrangeToGrid(gws, local, &grid));
      EXPECT_EQ(grid.x, groups);
      EXPECT_EQ(simgpu::GridToNdrange(grid, local), gws);
    }
  }
  // Non-divisible sizes must be rejected (OpenCL 1.x rule).
  Dim3 grid;
  EXPECT_FALSE(simgpu::NdrangeToGrid(Dim3(33), Dim3(32), &grid));
  EXPECT_FALSE(simgpu::NdrangeToGrid(Dim3(0), Dim3(32), &grid));
}

// ===========================================================================
// Memory-allocator stress: allocate/free churn keeps accounting exact and
// never hands out overlapping buffers.
// ===========================================================================
TEST(VmStressProperty, ChurnKeepsAccountingExact) {
  simgpu::VirtualMemory vm(1 << 22);
  std::vector<std::pair<uint64_t, size_t>> live;
  uint64_t state = 12345;
  auto next = [&]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return static_cast<uint32_t>(state >> 40);
  };
  size_t in_use = 0;
  for (int round = 0; round < 300; ++round) {
    if (live.empty() || next() % 3 != 0) {
      size_t bytes = 16 + next() % 2048;
      auto va = vm.AllocGlobal(bytes);
      ASSERT_TRUE(va.ok());
      // No overlap with any live allocation.
      for (const auto& [base, size] : live) {
        EXPECT_TRUE(*va + bytes <= base || base + size <= *va);
      }
      live.push_back({*va, bytes});
      in_use += bytes;
    } else {
      size_t pick = next() % live.size();
      ASSERT_TRUE(vm.FreeGlobal(live[pick].first).ok());
      in_use -= live[pick].second;
      live.erase(live.begin() + pick);
    }
    EXPECT_EQ(vm.global_in_use(), in_use);
  }
  for (const auto& [base, size] : live) {
    EXPECT_TRUE(vm.Resolve(base, size).ok());
    EXPECT_TRUE(vm.FreeGlobal(base).ok());
  }
  EXPECT_EQ(vm.global_in_use(), 0u);
}

// ===========================================================================
// Fiber stress: many groups, varying sizes, nested barrier phases.
// ===========================================================================
class FiberStressTest : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(GroupSizes, FiberStressTest,
                         ::testing::Values(1, 2, 3, 17, 64, 128));

TEST_P(FiberStressTest, PhasedCountersStayCoherent) {
  const int n = GetParam();
  simgpu::FiberGroup g(64 * 1024);
  std::vector<int> data(n, 0);
  Status st = g.Run(n, [&](int i) {
    for (int phase = 0; phase < 4; ++phase) {
      data[i] = data[(i + 1) % n] + 1;
      g.Barrier();
      // After the barrier every sibling finished the same phase.
      g.Barrier();
    }
    return OkStatus();
  });
  ASSERT_TRUE(st.ok());
  // Each item performed exactly 4 increments relative to a neighbor chain;
  // the final values are phase counts.
  for (int i = 0; i < n; ++i) EXPECT_GE(data[i], 1);
}

}  // namespace
}  // namespace bridgecl
