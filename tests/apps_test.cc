// Whole-suite equivalence tests: every benchmark app runs under the native
// binding and under the wrapper binding (the translated path), and the
// output checksums must agree bit-for-bit. This is the correctness side of
// the paper's evaluation — Figures 7/8 assume translated programs compute
// the same results.
#include <gtest/gtest.h>

#include "apps/app.h"
#include "cl2cu/cl_on_cuda.h"
#include "cu2cl/cuda_on_cl.h"
#include "simgpu/device.h"

namespace bridgecl::apps {
namespace {

using simgpu::Device;
using simgpu::HD7970Profile;
using simgpu::TitanProfile;

std::vector<std::string> AllAppNames() {
  std::vector<std::string> names;
  for (auto maker : {RodiniaApps, NpbApps, ToolkitApps}) {
    for (auto& app : maker()) names.push_back(app->name());
  }
  return names;
}

class AppEquivalenceTest : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(
    AllApps, AppEquivalenceTest, ::testing::ValuesIn(AllAppNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string n = info.param;
      for (char& c : n)
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      return n;
    });

TEST_P(AppEquivalenceTest, OpenClNativeVsWrapper) {
  AppPtr app = FindApp(GetParam());
  ASSERT_NE(app, nullptr);
  if (!app->has_opencl()) GTEST_SKIP() << "no OpenCL version";

  Device native_dev(TitanProfile());
  auto native = mocl::CreateNativeClApi(native_dev);
  double native_sum = 0;
  Status st = app->RunCl(*native, &native_sum);
  ASSERT_TRUE(st.ok()) << st.ToString();

  Device wrapped_dev(TitanProfile());
  auto cuda = mcuda::CreateNativeCudaApi(wrapped_dev);
  auto wrapped = cl2cu::CreateClOnCudaApi(*cuda);
  double wrapped_sum = 0;
  st = app->RunCl(*wrapped, &wrapped_sum);
  ASSERT_TRUE(st.ok()) << "OpenCL->CUDA wrapper run failed: "
                       << st.ToString();
  EXPECT_EQ(native_sum, wrapped_sum);
}

TEST_P(AppEquivalenceTest, CudaNativeVsWrapper) {
  AppPtr app = FindApp(GetParam());
  ASSERT_NE(app, nullptr);
  if (!app->has_cuda()) GTEST_SKIP() << "no CUDA version";

  Device native_dev(TitanProfile());
  auto native = mcuda::CreateNativeCudaApi(native_dev);
  double native_sum = 0;
  Status st = app->RunCuda(*native, &native_sum);
  ASSERT_TRUE(st.ok()) << st.ToString();

  Device wrapped_dev(TitanProfile());
  auto cl = mocl::CreateNativeClApi(wrapped_dev);
  auto wrapped = cu2cl::CreateCudaOnClApi(*cl);
  double wrapped_sum = 0;
  st = app->RunCuda(*wrapped, &wrapped_sum);
  ASSERT_TRUE(st.ok()) << "CUDA->OpenCL wrapper run failed: "
                       << st.ToString();
  EXPECT_EQ(native_sum, wrapped_sum);
}

TEST_P(AppEquivalenceTest, BothDialectVersionsAgree) {
  // Rodinia/Toolkit ship both versions of each app; on identical inputs
  // they must compute identical results (the paper's same-app comparison).
  AppPtr app = FindApp(GetParam());
  ASSERT_NE(app, nullptr);
  if (!app->has_opencl() || !app->has_cuda())
    GTEST_SKIP() << "single-dialect app";

  Device dev_cl(TitanProfile());
  auto cl = mocl::CreateNativeClApi(dev_cl);
  double sum_cl = 0;
  ASSERT_TRUE(app->RunCl(*cl, &sum_cl).ok());

  Device dev_cu(TitanProfile());
  auto cu = mcuda::CreateNativeCudaApi(dev_cu);
  double sum_cu = 0;
  ASSERT_TRUE(app->RunCuda(*cu, &sum_cu).ok());
  EXPECT_EQ(sum_cl, sum_cu) << app->name();
}

TEST_P(AppEquivalenceTest, TranslatedOpenClRunsOnAmd) {
  // Fig 8(a)'s fourth bar: translated OpenCL code runs on the HD7970,
  // which has no CUDA support at all.
  AppPtr app = FindApp(GetParam());
  ASSERT_NE(app, nullptr);
  if (!app->has_cuda()) GTEST_SKIP() << "no CUDA version";

  Device titan(TitanProfile());
  auto native = mcuda::CreateNativeCudaApi(titan);
  double titan_sum = 0;
  ASSERT_TRUE(app->RunCuda(*native, &titan_sum).ok());

  Device amd(HD7970Profile());
  auto cl = mocl::CreateNativeClApi(amd);
  auto wrapped = cu2cl::CreateCudaOnClApi(*cl);
  double amd_sum = 0;
  Status st = app->RunCuda(*wrapped, &amd_sum);
  ASSERT_TRUE(st.ok()) << st.ToString();
  // deviceQuery's output IS the device properties, which legitimately
  // differ across GPUs (so does the real sample's output).
  if (app->name() != "deviceQuery") {
    EXPECT_EQ(titan_sum, amd_sum);
  }
}

TEST(UntranslatableAppsTest, FailuresMatchPaperReasons) {
  // The seven Rodinia CUDA apps of Fig 8(a): all run natively (except
  // dwt2d, whose device-side C++ even nvcc-mini rejects) but fail on the
  // CUDA->OpenCL wrapper path.
  for (auto& app : RodiniaUntranslatableApps()) {
    SCOPED_TRACE(app->name());
    ASSERT_TRUE(app->has_cuda());
    Device native_dev(TitanProfile());
    auto native = mcuda::CreateNativeCudaApi(native_dev);
    double sum = 0;
    Status native_st = app->RunCuda(*native, &sum);
    if (app->name() != "dwt2d") {
      EXPECT_TRUE(native_st.ok())
          << app->name() << ": " << native_st.ToString();
    }

    Device wrapped_dev(TitanProfile());
    auto cl = mocl::CreateNativeClApi(wrapped_dev);
    auto wrapped = cu2cl::CreateCudaOnClApi(*cl);
    double wsum = 0;
    Status st = app->RunCuda(*wrapped, &wsum);
    EXPECT_FALSE(st.ok()) << app->name()
                          << " unexpectedly translated to OpenCL";
  }
}

TEST(UntranslatableAppsTest, OpenClVersionsStillTranslateAndMatch) {
  // Fig 7a: every Rodinia OpenCL version translates to CUDA — including
  // the apps whose CUDA versions fail in the other direction.
  for (auto& app : RodiniaUntranslatableApps()) {
    if (!app->has_opencl()) continue;
    SCOPED_TRACE(app->name());
    Device native_dev(TitanProfile());
    auto native = mocl::CreateNativeClApi(native_dev);
    double native_sum = 0;
    ASSERT_TRUE(app->RunCl(*native, &native_sum).ok());

    Device wrapped_dev(TitanProfile());
    auto cuda = mcuda::CreateNativeCudaApi(wrapped_dev);
    auto wrapped = cl2cu::CreateClOnCudaApi(*cuda);
    double wrapped_sum = 0;
    Status st = app->RunCl(*wrapped, &wrapped_sum);
    ASSERT_TRUE(st.ok()) << st.ToString();
    EXPECT_EQ(native_sum, wrapped_sum);
  }
}

TEST(SuiteInventoryTest, CountsMatchDesign) {
  EXPECT_EQ(RodiniaApps().size(), 15u);   // 14 dual + hybridsort
  EXPECT_EQ(NpbApps().size(), 7u);        // paper: 7 SNU NPB apps
  EXPECT_EQ(ToolkitApps().size(), 11u);
  EXPECT_EQ(RodiniaUntranslatableApps().size(), 7u);  // Fig 8(a)
  // NPB is OpenCL-only (§6.1).
  for (auto& app : NpbApps()) {
    EXPECT_TRUE(app->has_opencl());
    EXPECT_FALSE(app->has_cuda());
  }
}

}  // namespace
}  // namespace bridgecl::apps
