#include <gtest/gtest.h>

#include "lang/lexer.h"

namespace bridgecl::lang {
namespace {

std::vector<Token> MustLex(const std::string& src, LexOptions opts = {}) {
  DiagnosticEngine diags;
  auto toks = Lex(src, diags, opts);
  EXPECT_TRUE(toks.ok()) << diags.ToString();
  return toks.ok() ? *toks : std::vector<Token>{};
}

TEST(LexerTest, Identifiers) {
  auto t = MustLex("get_global_id __kernel _x9");
  ASSERT_EQ(t.size(), 4u);  // 3 idents + end
  EXPECT_EQ(t[0].text, "get_global_id");
  EXPECT_EQ(t[1].text, "__kernel");
  EXPECT_EQ(t[2].text, "_x9");
  EXPECT_TRUE(t[3].is(TokKind::kEnd));
}

TEST(LexerTest, IntLiterals) {
  auto t = MustLex("0 42 0x1F 7u 9L 12UL");
  EXPECT_EQ(t[0].int_value, 0u);
  EXPECT_EQ(t[1].int_value, 42u);
  EXPECT_EQ(t[2].int_value, 31u);
  EXPECT_TRUE(t[3].int_is_unsigned);
  EXPECT_TRUE(t[4].int_is_long);
  EXPECT_TRUE(t[5].int_is_unsigned);
  EXPECT_TRUE(t[5].int_is_long);
}

TEST(LexerTest, FloatLiterals) {
  auto t = MustLex("1.5 2.0f 1e3 1.5e-2 .25f");
  EXPECT_DOUBLE_EQ(t[0].float_value, 1.5);
  EXPECT_TRUE(t[1].float_is_float);
  EXPECT_DOUBLE_EQ(t[2].float_value, 1000.0);
  EXPECT_DOUBLE_EQ(t[3].float_value, 0.015);
  EXPECT_TRUE(t[4].float_is_float);
  EXPECT_DOUBLE_EQ(t[4].float_value, 0.25);
}

TEST(LexerTest, PunctLongestMatch) {
  auto t = MustLex("a <<= b >> c <= d < e");
  EXPECT_TRUE(t[1].is_punct("<<="));
  EXPECT_TRUE(t[3].is_punct(">>"));
  EXPECT_TRUE(t[5].is_punct("<="));
  EXPECT_TRUE(t[7].is_punct("<"));
}

TEST(LexerTest, LaunchBracketsOnlyWhenEnabled) {
  auto plain = MustLex("k<<<grid, block>>>(x)");
  // Without the option, <<< lexes as << and <.
  EXPECT_TRUE(plain[1].is_punct("<<"));

  LexOptions opts;
  opts.cuda_launch_brackets = true;
  auto host = MustLex("k<<<grid, block>>>(x)", opts);
  EXPECT_TRUE(host[1].is(TokKind::kLaunchOpen));
  bool has_close = false;
  for (auto& tok : host)
    if (tok.is(TokKind::kLaunchClose)) has_close = true;
  EXPECT_TRUE(has_close);
}

TEST(LexerTest, CommentsStripped) {
  auto t = MustLex("a // line comment\n b /* block\ncomment */ c");
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[0].text, "a");
  EXPECT_EQ(t[1].text, "b");
  EXPECT_EQ(t[2].text, "c");
}

TEST(LexerTest, ObjectMacroExpansion) {
  auto t = MustLex("#define N 256\nint a[N];");
  // int a [ 256 ] ;
  ASSERT_GE(t.size(), 6u);
  EXPECT_EQ(t[3].int_value, 256u);
}

TEST(LexerTest, ChainedMacros) {
  auto t = MustLex("#define A B\n#define B 7\nA");
  EXPECT_EQ(t[0].int_value, 7u);
}

TEST(LexerTest, MacroWithExpressionBody) {
  auto t = MustLex("#define SIZE (16*16)\nSIZE");
  // ( 16 * 16 )
  ASSERT_GE(t.size(), 5u);
  EXPECT_TRUE(t[0].is_punct("("));
  EXPECT_EQ(t[1].int_value, 16u);
}

TEST(LexerTest, PragmaAndIncludeSkipped) {
  auto t = MustLex("#pragma OPENCL EXTENSION cl_khr_fp64 : enable\n"
                   "#include <cuda.h>\nx");
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0].text, "x");
}

TEST(LexerTest, FunctionLikeMacroRejected) {
  DiagnosticEngine diags;
  auto r = Lex("#define SQ(x) ((x)*(x))\n", diags);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnimplemented);
}

TEST(LexerTest, StringAndCharLiterals) {
  auto t = MustLex("\"hi\\n\" 'a'");
  EXPECT_TRUE(t[0].is(TokKind::kStringLit));
  EXPECT_EQ(t[1].int_value, (uint64_t)'a');
}

TEST(LexerTest, LineNumbersTracked) {
  auto t = MustLex("a\nb\n  c");
  EXPECT_EQ(t[0].loc.line, 1u);
  EXPECT_EQ(t[1].loc.line, 2u);
  EXPECT_EQ(t[2].loc.line, 3u);
  EXPECT_EQ(t[2].loc.column, 3u);
}

TEST(LexerTest, UnterminatedStringFails) {
  DiagnosticEngine diags;
  EXPECT_FALSE(Lex("\"oops", diags).ok());
}

}  // namespace
}  // namespace bridgecl::lang
