#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "interp/executor.h"
#include "interp/image.h"
#include "interp/module.h"
#include "interp/value.h"
#include "simgpu/device.h"

namespace bridgecl::interp {
namespace {

using lang::Dialect;
using simgpu::Device;
using simgpu::Dim3;
using simgpu::TitanProfile;

class InterpTest : public ::testing::Test {
 protected:
  Device device_{TitanProfile()};

  std::unique_ptr<Module> Compile(const std::string& src, Dialect d) {
    DiagnosticEngine diags;
    auto m = Module::Compile(src, d, diags);
    EXPECT_TRUE(m.ok()) << diags.ToString();
    if (!m.ok()) return nullptr;
    Status st = (*m)->LoadOn(device_);
    EXPECT_TRUE(st.ok()) << st.ToString();
    return std::move(*m);
  }

  uint64_t Alloc(size_t bytes) {
    auto va = device_.vm().AllocGlobal(bytes);
    EXPECT_TRUE(va.ok());
    return *va;
  }

  template <typename T>
  void WriteBuf(uint64_t va, const std::vector<T>& data) {
    auto p = device_.vm().Resolve(va, data.size() * sizeof(T));
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    std::memcpy(*p, data.data(), data.size() * sizeof(T));
  }

  template <typename T>
  std::vector<T> ReadBuf(uint64_t va, size_t count) {
    auto p = device_.vm().Resolve(va, count * sizeof(T));
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    std::vector<T> out(count);
    if (p.ok()) std::memcpy(out.data(), *p, count * sizeof(T));
    return out;
  }
};

TEST_F(InterpTest, OpenClVectorAdd) {
  auto m = Compile(
      "__kernel void vadd(__global float* a, __global float* b,"
      "                   __global float* c, int n) {"
      "  int i = get_global_id(0);"
      "  if (i < n) c[i] = a[i] + b[i];"
      "}",
      Dialect::kOpenCL);
  ASSERT_NE(m, nullptr);
  const int n = 64;
  std::vector<float> a(n), b(n);
  for (int i = 0; i < n; ++i) {
    a[i] = i * 1.0f;
    b[i] = i * 2.0f;
  }
  uint64_t va = Alloc(n * 4), vb = Alloc(n * 4), vc = Alloc(n * 4);
  WriteBuf(va, a);
  WriteBuf(vb, b);
  LaunchConfig cfg;
  cfg.grid = Dim3(2);
  cfg.block = Dim3(32);
  std::vector<KernelArg> args = {KernelArg::Pointer(va),
                                 KernelArg::Pointer(vb),
                                 KernelArg::Pointer(vc),
                                 KernelArg::Value<int>(n)};
  auto r = LaunchKernel(device_, *m, "vadd", cfg, args);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto c = ReadBuf<float>(vc, n);
  for (int i = 0; i < n; ++i) EXPECT_FLOAT_EQ(c[i], 3.0f * i);
  EXPECT_EQ(r->work_items, 64u);
  EXPECT_GT(r->total_cycles, 0.0);
}

TEST_F(InterpTest, CudaVectorAddWithBuiltinVars) {
  auto m = Compile(
      "__global__ void vadd(float* a, float* b, float* c, int n) {"
      "  int i = blockIdx.x * blockDim.x + threadIdx.x;"
      "  if (i < n) c[i] = a[i] + b[i];"
      "}",
      Dialect::kCUDA);
  ASSERT_NE(m, nullptr);
  const int n = 48;  // not a multiple of block size: guard must work
  std::vector<float> a(n), b(n);
  for (int i = 0; i < n; ++i) {
    a[i] = 1.5f * i;
    b[i] = 0.5f * i;
  }
  uint64_t va = Alloc(n * 4), vb = Alloc(n * 4), vc = Alloc(n * 4);
  WriteBuf(va, a);
  WriteBuf(vb, b);
  LaunchConfig cfg;
  cfg.grid = Dim3(2);
  cfg.block = Dim3(32);
  std::vector<KernelArg> args = {KernelArg::Pointer(va),
                                 KernelArg::Pointer(vb),
                                 KernelArg::Pointer(vc),
                                 KernelArg::Value<int>(n)};
  auto r = LaunchKernel(device_, *m, "vadd", cfg, args);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto c = ReadBuf<float>(vc, n);
  for (int i = 0; i < n; ++i) EXPECT_FLOAT_EQ(c[i], 2.0f * i);
}

TEST_F(InterpTest, BarrierReduction) {
  // Tree reduction in shared memory: requires true barrier semantics.
  auto m = Compile(
      "__kernel void reduce(__global float* in, __global float* out) {"
      "  __local float tile[64];"
      "  int lid = get_local_id(0);"
      "  int gid = get_global_id(0);"
      "  tile[lid] = in[gid];"
      "  barrier(CLK_LOCAL_MEM_FENCE);"
      "  for (int s = 32; s > 0; s >>= 1) {"
      "    if (lid < s) tile[lid] += tile[lid + s];"
      "    barrier(CLK_LOCAL_MEM_FENCE);"
      "  }"
      "  if (lid == 0) out[get_group_id(0)] = tile[0];"
      "}",
      Dialect::kOpenCL);
  ASSERT_NE(m, nullptr);
  const int n = 128;
  std::vector<float> in(n);
  std::iota(in.begin(), in.end(), 1.0f);
  uint64_t vin = Alloc(n * 4), vout = Alloc(2 * 4);
  WriteBuf(vin, in);
  LaunchConfig cfg;
  cfg.grid = Dim3(2);
  cfg.block = Dim3(64);
  std::vector<KernelArg> args = {KernelArg::Pointer(vin),
                                 KernelArg::Pointer(vout)};
  auto r = LaunchKernel(device_, *m, "reduce", cfg, args);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto out = ReadBuf<float>(vout, 2);
  // 1..64 = 2080, 65..128 = 6176
  EXPECT_FLOAT_EQ(out[0], 2080.0f);
  EXPECT_FLOAT_EQ(out[1], 6176.0f);
  EXPECT_GT(device_.stats().barriers, 0u);
}

TEST_F(InterpTest, CudaDynamicSharedMemory) {
  auto m = Compile(
      "__global__ void rev(float* d) {"
      "  extern __shared__ float tile[];"
      "  int t = threadIdx.x;"
      "  int n = blockDim.x;"
      "  tile[t] = d[t];"
      "  __syncthreads();"
      "  d[t] = tile[n - 1 - t];"
      "}",
      Dialect::kCUDA);
  ASSERT_NE(m, nullptr);
  const int n = 32;
  std::vector<float> data(n);
  std::iota(data.begin(), data.end(), 0.0f);
  uint64_t vd = Alloc(n * 4);
  WriteBuf(vd, data);
  LaunchConfig cfg;
  cfg.grid = Dim3(1);
  cfg.block = Dim3(n);
  cfg.dynamic_shared_bytes = n * 4;
  std::vector<KernelArg> args = {KernelArg::Pointer(vd)};
  auto r = LaunchKernel(device_, *m, "rev", cfg, args);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto out = ReadBuf<float>(vd, n);
  for (int i = 0; i < n; ++i) EXPECT_FLOAT_EQ(out[i], float(n - 1 - i));
}

TEST_F(InterpTest, OpenClDynamicLocalArgs) {
  // Two dynamic __local allocations for one kernel — legal in OpenCL,
  // impossible directly in CUDA (§4.1).
  auto m = Compile(
      "__kernel void two(__global int* out, __local int* t1,"
      "                  __local int* t2) {"
      "  int l = get_local_id(0);"
      "  t1[l] = l;"
      "  t2[l] = 100 + l;"
      "  barrier(CLK_LOCAL_MEM_FENCE);"
      "  out[get_global_id(0)] = t1[l] + t2[l];"
      "}",
      Dialect::kOpenCL);
  ASSERT_NE(m, nullptr);
  uint64_t vout = Alloc(16 * 4);
  LaunchConfig cfg;
  cfg.grid = Dim3(1);
  cfg.block = Dim3(16);
  std::vector<KernelArg> args = {KernelArg::Pointer(vout),
                                 KernelArg::LocalAlloc(16 * 4),
                                 KernelArg::LocalAlloc(16 * 4)};
  auto r = LaunchKernel(device_, *m, "two", cfg, args);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto out = ReadBuf<int>(vout, 16);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(out[i], 100 + 2 * i);
}

TEST_F(InterpTest, ConstantMemoryStaticInit) {
  auto m = Compile(
      "__constant int lut[4] = {10, 20, 30, 40};"
      "__kernel void k(__global int* out) {"
      "  int i = get_global_id(0);"
      "  out[i] = lut[i % 4];"
      "}",
      Dialect::kOpenCL);
  ASSERT_NE(m, nullptr);
  uint64_t vout = Alloc(8 * 4);
  LaunchConfig cfg;
  cfg.grid = Dim3(1);
  cfg.block = Dim3(8);
  std::vector<KernelArg> args = {KernelArg::Pointer(vout)};
  auto r = LaunchKernel(device_, *m, "k", cfg, args);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto out = ReadBuf<int>(vout, 8);
  EXPECT_EQ(out[0], 10);
  EXPECT_EQ(out[5], 20);
  EXPECT_GT(device_.stats().constant_accesses, 0u);
}

TEST_F(InterpTest, DeviceGlobalSymbol) {
  // CUDA __device__ static + cudaMemcpyToSymbol-style host access (§4.3).
  auto m = Compile(
      "__device__ int bias[4];"
      "__global__ void k(int* out) {"
      "  int i = threadIdx.x;"
      "  out[i] = bias[i] * 2;"
      "}",
      Dialect::kCUDA);
  ASSERT_NE(m, nullptr);
  auto sym = m->FindSymbol("bias");
  ASSERT_TRUE(sym.ok());
  EXPECT_EQ(sym->size, 16u);
  EXPECT_EQ(sym->space, lang::AddressSpace::kGlobal);
  WriteBuf(sym->va, std::vector<int>{7, 8, 9, 10});
  uint64_t vout = Alloc(4 * 4);
  LaunchConfig cfg;
  cfg.grid = Dim3(1);
  cfg.block = Dim3(4);
  std::vector<KernelArg> args = {KernelArg::Pointer(vout)};
  auto r = LaunchKernel(device_, *m, "k", cfg, args);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto out = ReadBuf<int>(vout, 4);
  EXPECT_EQ(out[0], 14);
  EXPECT_EQ(out[3], 20);
}

TEST_F(InterpTest, AtomicSemanticsDiffer) {
  // §3.7: OpenCL atomic_inc is unconditional; CUDA atomicInc wraps.
  auto mcl = Compile(
      "__kernel void k(__global int* c) { atomic_inc(c); }",
      Dialect::kOpenCL);
  ASSERT_NE(mcl, nullptr);
  uint64_t vc = Alloc(4);
  WriteBuf(vc, std::vector<int>{0});
  LaunchConfig cfg;
  cfg.grid = Dim3(1);
  cfg.block = Dim3(10);
  std::vector<KernelArg> args = {KernelArg::Pointer(vc)};
  ASSERT_TRUE(LaunchKernel(device_, *mcl, "k", cfg, args).ok());
  EXPECT_EQ(ReadBuf<int>(vc, 1)[0], 10);

  auto mcu = Compile(
      "__global__ void k(unsigned int* c) { atomicInc(c, 3u); }",
      Dialect::kCUDA);
  ASSERT_NE(mcu, nullptr);
  uint64_t vc2 = Alloc(4);
  WriteBuf(vc2, std::vector<unsigned>{0});
  std::vector<KernelArg> args2 = {KernelArg::Pointer(vc2)};
  ASSERT_TRUE(LaunchKernel(device_, *mcu, "k", cfg, args2).ok());
  // 10 increments wrapping at 3: 0,1,2,3,0,1,2,3,0,1 -> final 2
  EXPECT_EQ(ReadBuf<unsigned>(vc2, 1)[0], 2u);
}

TEST_F(InterpTest, VectorSwizzlesInKernel) {
  auto m = Compile(
      "__kernel void k(__global float4* v, __global float2* out) {"
      "  float4 a = v[0];"
      "  out[0] = a.lo + a.hi;"
      "  float4 r = a.wzyx;"
      "  out[1] = r.xy;"
      "  a.odd = a.even;"
      "  out[2] = a.yw;"
      "}",
      Dialect::kOpenCL);
  ASSERT_NE(m, nullptr);
  uint64_t vv = Alloc(16), vo = Alloc(3 * 8);
  WriteBuf(vv, std::vector<float>{1, 2, 3, 4});
  LaunchConfig cfg;
  cfg.grid = Dim3(1);
  cfg.block = Dim3(1);
  std::vector<KernelArg> args = {KernelArg::Pointer(vv),
                                 KernelArg::Pointer(vo)};
  auto r = LaunchKernel(device_, *m, "k", cfg, args);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto out = ReadBuf<float>(vo, 6);
  EXPECT_FLOAT_EQ(out[0], 4.0f);   // 1+3
  EXPECT_FLOAT_EQ(out[1], 6.0f);   // 2+4
  EXPECT_FLOAT_EQ(out[2], 4.0f);   // r.x = a.w
  EXPECT_FLOAT_EQ(out[3], 3.0f);   // r.y = a.z
  EXPECT_FLOAT_EQ(out[4], 1.0f);   // a.y = a.x
  EXPECT_FLOAT_EQ(out[5], 3.0f);   // a.w = a.z
}

TEST_F(InterpTest, WideVectorsAndBitcast) {
  auto m = Compile(
      "__kernel void k(__global float8* v, __global float* out) {"
      "  float8 a = v[0];"
      "  float8 b = a + a;"
      "  out[0] = b.s0 + b.s7;"
      "  out[1] = as_float(as_int(a.s1));"
      "}",
      Dialect::kOpenCL);
  ASSERT_NE(m, nullptr);
  uint64_t vv = Alloc(32), vo = Alloc(8);
  WriteBuf(vv, std::vector<float>{1, 2, 3, 4, 5, 6, 7, 8});
  LaunchConfig cfg;
  cfg.grid = Dim3(1);
  cfg.block = Dim3(1);
  std::vector<KernelArg> args = {KernelArg::Pointer(vv),
                                 KernelArg::Pointer(vo)};
  ASSERT_TRUE(LaunchKernel(device_, *m, "k", cfg, args).ok());
  auto out = ReadBuf<float>(vo, 2);
  EXPECT_FLOAT_EQ(out[0], 18.0f);  // 2*1 + 2*8
  EXPECT_FLOAT_EQ(out[1], 2.0f);
}

TEST_F(InterpTest, StructAccess) {
  auto m = Compile(
      "typedef struct { float x; float y; int w; } Pt;"
      "__kernel void k(__global Pt* pts, __global float* out) {"
      "  int i = get_global_id(0);"
      "  Pt p = pts[i];"
      "  out[i] = p.x * p.y + (float)p.w;"
      "  pts[i].w = i;"
      "}",
      Dialect::kOpenCL);
  ASSERT_NE(m, nullptr);
  struct Pt {
    float x, y;
    int w;
  };
  std::vector<Pt> pts = {{2, 3, 1}, {4, 5, 2}};
  uint64_t vp = Alloc(sizeof(Pt) * 2), vo = Alloc(8);
  WriteBuf(vp, pts);
  LaunchConfig cfg;
  cfg.grid = Dim3(1);
  cfg.block = Dim3(2);
  std::vector<KernelArg> args = {KernelArg::Pointer(vp),
                                 KernelArg::Pointer(vo)};
  auto r = LaunchKernel(device_, *m, "k", cfg, args);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto out = ReadBuf<float>(vo, 2);
  EXPECT_FLOAT_EQ(out[0], 7.0f);
  EXPECT_FLOAT_EQ(out[1], 22.0f);
  auto back = ReadBuf<Pt>(vp, 2);
  EXPECT_EQ(back[0].w, 0);
  EXPECT_EQ(back[1].w, 1);
}

TEST_F(InterpTest, UserFunctionsAndTemplates) {
  auto m = Compile(
      "template <typename T> __device__ T tmax(T a, T b) {"
      "  return a > b ? a : b;"
      "}"
      "__device__ float scale(float v, float s) { return v * s; }"
      "__global__ void k(float* out, float* a, float* b) {"
      "  int i = threadIdx.x;"
      "  out[i] = scale(tmax<float>(a[i], b[i]), 10.0f);"
      "}",
      Dialect::kCUDA);
  ASSERT_NE(m, nullptr);
  uint64_t vo = Alloc(16), va = Alloc(16), vb = Alloc(16);
  WriteBuf(va, std::vector<float>{1, 5, 2, 8});
  WriteBuf(vb, std::vector<float>{4, 3, 9, 6});
  LaunchConfig cfg;
  cfg.grid = Dim3(1);
  cfg.block = Dim3(4);
  std::vector<KernelArg> args = {KernelArg::Pointer(vo),
                                 KernelArg::Pointer(va),
                                 KernelArg::Pointer(vb)};
  auto r = LaunchKernel(device_, *m, "k", cfg, args);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto out = ReadBuf<float>(vo, 4);
  EXPECT_FLOAT_EQ(out[0], 40.0f);
  EXPECT_FLOAT_EQ(out[1], 50.0f);
  EXPECT_FLOAT_EQ(out[2], 90.0f);
  EXPECT_FLOAT_EQ(out[3], 80.0f);
}

TEST_F(InterpTest, ReferenceParams) {
  auto m = Compile(
      "__device__ void bump(int& x, int d) { x = x + d; }"
      "__global__ void k(int* out) {"
      "  int v = 5;"
      "  bump(v, 3);"
      "  out[threadIdx.x] = v;"
      "}",
      Dialect::kCUDA);
  ASSERT_NE(m, nullptr);
  uint64_t vo = Alloc(4);
  LaunchConfig cfg;
  cfg.grid = Dim3(1);
  cfg.block = Dim3(1);
  std::vector<KernelArg> args = {KernelArg::Pointer(vo)};
  auto r = LaunchKernel(device_, *m, "k", cfg, args);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(ReadBuf<int>(vo, 1)[0], 8);
}

TEST_F(InterpTest, PrivateArraysAndAddressOf) {
  auto m = Compile(
      "__device__ float sum3(float* p) { return p[0] + p[1] + p[2]; }"
      "__global__ void k(float* out) {"
      "  float acc[3];"
      "  acc[0] = 1.0f; acc[1] = 2.0f; acc[2] = 4.0f;"
      "  float x = 10.0f;"
      "  float* px = &x;"
      "  *px = *px + 1.0f;"
      "  out[0] = sum3(acc) + x;"
      "}",
      Dialect::kCUDA);
  ASSERT_NE(m, nullptr);
  uint64_t vo = Alloc(4);
  LaunchConfig cfg;
  cfg.grid = Dim3(1);
  cfg.block = Dim3(1);
  std::vector<KernelArg> args = {KernelArg::Pointer(vo)};
  auto r = LaunchKernel(device_, *m, "k", cfg, args);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FLOAT_EQ(ReadBuf<float>(vo, 1)[0], 18.0f);
}

TEST_F(InterpTest, ImageReadWrite) {
  // Build a 4x2 single-channel float image and sample it.
  const int w = 4, h = 2;
  uint64_t data_va = Alloc(w * h * 4);
  WriteBuf(data_va, std::vector<float>{1, 2, 3, 4, 5, 6, 7, 8});
  ImageDesc desc;
  desc.data_va = data_va;
  desc.width = w;
  desc.height = h;
  desc.channels = 1;
  desc.elem_kind = static_cast<uint32_t>(lang::ScalarKind::kFloat);
  desc.row_pitch = w * 4;
  desc.slice_pitch = w * h * 4;
  desc.dims = 2;
  uint64_t desc_va = Alloc(sizeof(desc));
  {
    auto p = device_.vm().Resolve(desc_va, sizeof(desc));
    ASSERT_TRUE(p.ok());
    std::memcpy(*p, &desc, sizeof(desc));
  }
  auto m = Compile(
      "__kernel void k(__read_only image2d_t img, sampler_t s,"
      "                __global float* out) {"
      "  int i = get_global_id(0);"
      "  float4 t = read_imagef(img, s, (int2)(i, 1));"
      "  out[i] = t.x;"
      "}",
      Dialect::kOpenCL);
  ASSERT_NE(m, nullptr);
  uint64_t vo = Alloc(4 * 4);
  LaunchConfig cfg;
  cfg.grid = Dim3(1);
  cfg.block = Dim3(4);
  std::vector<KernelArg> args = {
      KernelArg::Pointer(desc_va),
      KernelArg::Value<uint64_t>(0),  // sampler: nearest, unnormalized
      KernelArg::Pointer(vo)};
  auto r = LaunchKernel(device_, *m, "k", cfg, args);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto out = ReadBuf<float>(vo, 4);
  EXPECT_FLOAT_EQ(out[0], 5.0f);
  EXPECT_FLOAT_EQ(out[3], 8.0f);
  EXPECT_GT(device_.stats().image_accesses, 0u);
}

TEST_F(InterpTest, CudaTextureFetch) {
  const int n = 8;
  uint64_t data_va = Alloc(n * 4);
  WriteBuf(data_va, std::vector<float>{0, 10, 20, 30, 40, 50, 60, 70});
  ImageDesc desc;
  desc.data_va = data_va;
  desc.width = n;
  desc.height = 1;
  desc.channels = 1;
  desc.elem_kind = static_cast<uint32_t>(lang::ScalarKind::kFloat);
  desc.row_pitch = n * 4;
  desc.slice_pitch = n * 4;
  desc.dims = 1;
  uint64_t desc_va = Alloc(sizeof(desc));
  {
    auto p = device_.vm().Resolve(desc_va, sizeof(desc));
    ASSERT_TRUE(p.ok());
    std::memcpy(*p, &desc, sizeof(desc));
  }
  auto m = Compile(
      "texture<float, 1, cudaReadModeElementType> tex;"
      "__global__ void k(float* out) {"
      "  int i = threadIdx.x;"
      "  out[i] = tex1Dfetch(tex, i);"
      "}",
      Dialect::kCUDA);
  ASSERT_NE(m, nullptr);
  ASSERT_TRUE(m->BindTexture("tex", desc_va).ok());
  uint64_t vo = Alloc(n * 4);
  LaunchConfig cfg;
  cfg.grid = Dim3(1);
  cfg.block = Dim3(n);
  std::vector<KernelArg> args = {KernelArg::Pointer(vo)};
  auto r = LaunchKernel(device_, *m, "k", cfg, args);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto out = ReadBuf<float>(vo, n);
  EXPECT_FLOAT_EQ(out[3], 30.0f);
  EXPECT_FLOAT_EQ(out[7], 70.0f);
}

TEST_F(InterpTest, UnboundTextureFails) {
  auto m = Compile(
      "texture<float, 1, cudaReadModeElementType> tex;"
      "__global__ void k(float* out) { out[0] = tex1Dfetch(tex, 0); }",
      Dialect::kCUDA);
  ASSERT_NE(m, nullptr);
  uint64_t vo = Alloc(4);
  LaunchConfig cfg;
  cfg.grid = Dim3(1);
  cfg.block = Dim3(1);
  std::vector<KernelArg> args = {KernelArg::Pointer(vo)};
  auto r = LaunchKernel(device_, *m, "k", cfg, args);
  EXPECT_FALSE(r.ok());
}

TEST_F(InterpTest, BankModeAffectsSharedCost) {
  const std::string src =
      "__kernel void k(__global double* g) {"
      "  __local double tile[32];"
      "  int l = get_local_id(0);"
      "  tile[l] = g[l];"
      "  barrier(CLK_LOCAL_MEM_FENCE);"
      "  g[l] = tile[31 - l] * 2.0;"
      "}";
  auto m = Compile(src, Dialect::kOpenCL);
  ASSERT_NE(m, nullptr);
  uint64_t vg = Alloc(32 * 8);
  std::vector<double> init(32, 1.0);
  WriteBuf(vg, init);
  LaunchConfig cfg;
  cfg.grid = Dim3(1);
  cfg.block = Dim3(32);
  std::vector<KernelArg> args = {KernelArg::Pointer(vg)};

  device_.set_bank_mode(simgpu::BankMode::k32Bit);
  device_.ResetStats();
  auto r32 = LaunchKernel(device_, *m, "k", cfg, args);
  ASSERT_TRUE(r32.ok());
  uint64_t words32 = device_.stats().shared_bank_words;

  device_.set_bank_mode(simgpu::BankMode::k64Bit);
  device_.ResetStats();
  auto r64 = LaunchKernel(device_, *m, "k", cfg, args);
  ASSERT_TRUE(r64.ok());
  uint64_t words64 = device_.stats().shared_bank_words;

  // 8-byte accesses span 2 words in 32-bit mode, 1 in 64-bit mode (§6.2).
  EXPECT_EQ(words32, 2 * words64);
  EXPECT_GT(r32->total_cycles, r64->total_cycles);
}

TEST_F(InterpTest, OccupancyFollowsRegisterOverride) {
  auto m = Compile(
      "__kernel void k(__global float* g) {"
      "  g[get_global_id(0)] *= 2.0f;"
      "}",
      Dialect::kOpenCL);
  ASSERT_NE(m, nullptr);
  uint64_t vg = Alloc(32 * 4);
  WriteBuf(vg, std::vector<float>(32, 1.0f));
  LaunchConfig cfg;
  cfg.grid = Dim3(1);
  cfg.block = Dim3(32);
  std::vector<KernelArg> args = {KernelArg::Pointer(vg)};

  m->SetRegisterOverride("k", 85);  // cfd CUDA-side pressure
  auto lo = LaunchKernel(device_, *m, "k", cfg, args);
  ASSERT_TRUE(lo.ok());
  m->SetRegisterOverride("k", 68);  // cfd OpenCL-side pressure
  auto hi = LaunchKernel(device_, *m, "k", cfg, args);
  ASSERT_TRUE(hi.ok());
  EXPECT_NEAR(lo->occupancy, 0.375, 0.01);
  EXPECT_NEAR(hi->occupancy, 0.469, 0.01);
  EXPECT_GT(lo->kernel_time_us, hi->kernel_time_us);
}

TEST_F(InterpTest, OutOfBoundsAccessFaults) {
  auto m = Compile(
      "__kernel void k(__global int* g) { g[1000000] = 1; }",
      Dialect::kOpenCL);
  ASSERT_NE(m, nullptr);
  uint64_t vg = Alloc(16);
  LaunchConfig cfg;
  cfg.grid = Dim3(1);
  cfg.block = Dim3(1);
  std::vector<KernelArg> args = {KernelArg::Pointer(vg)};
  auto r = LaunchKernel(device_, *m, "k", cfg, args);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST_F(InterpTest, WrongArgCountRejected) {
  auto m = Compile("__kernel void k(__global int* g, int n) {}",
                   Dialect::kOpenCL);
  ASSERT_NE(m, nullptr);
  LaunchConfig cfg;
  cfg.grid = Dim3(1);
  cfg.block = Dim3(1);
  std::vector<KernelArg> args = {KernelArg::Pointer(Alloc(16))};
  EXPECT_FALSE(LaunchKernel(device_, *m, "k", cfg, args).ok());
}

TEST_F(InterpTest, BlockTooLargeRejected) {
  auto m = Compile("__kernel void k() {}", Dialect::kOpenCL);
  ASSERT_NE(m, nullptr);
  LaunchConfig cfg;
  cfg.grid = Dim3(1);
  cfg.block = Dim3(4096);
  auto r = LaunchKernel(device_, *m, "k", cfg, {});
  EXPECT_FALSE(r.ok());
}

TEST_F(InterpTest, MathBuiltins) {
  auto m = Compile(
      "__kernel void k(__global float* out) {"
      "  out[0] = sqrt(16.0f);"
      "  out[1] = fmax(2.0f, 3.0f);"
      "  out[2] = exp(0.0f);"
      "  out[3] = pow(2.0f, 10.0f);"
      "  out[4] = fabs(-2.5f);"
      "  out[5] = clamp(5.0f, 0.0f, 1.0f);"
      "  out[6] = floor(2.9f);"
      "  out[7] = fmin(7.0f, (float)min(3, 9));"
      "}",
      Dialect::kOpenCL);
  ASSERT_NE(m, nullptr);
  uint64_t vo = Alloc(8 * 4);
  LaunchConfig cfg;
  cfg.grid = Dim3(1);
  cfg.block = Dim3(1);
  std::vector<KernelArg> args = {KernelArg::Pointer(vo)};
  auto r = LaunchKernel(device_, *m, "k", cfg, args);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto out = ReadBuf<float>(vo, 8);
  EXPECT_FLOAT_EQ(out[0], 4.0f);
  EXPECT_FLOAT_EQ(out[1], 3.0f);
  EXPECT_FLOAT_EQ(out[2], 1.0f);
  EXPECT_FLOAT_EQ(out[3], 1024.0f);
  EXPECT_FLOAT_EQ(out[4], 2.5f);
  EXPECT_FLOAT_EQ(out[5], 1.0f);
  EXPECT_FLOAT_EQ(out[6], 2.0f);
  EXPECT_FLOAT_EQ(out[7], 3.0f);
}

TEST_F(InterpTest, StructByValueKernelArg) {
  // CUDA allows passing a struct (even containing pointers) by value —
  // the heartwall pattern that CU→CL translation must reject but native
  // execution must support.
  auto m = Compile(
      "struct Params { float scale; int n; };"
      "__global__ void k(float* out, struct Params p) {"
      "  int i = threadIdx.x;"
      "  if (i < p.n) out[i] = p.scale * i;"
      "}",
      Dialect::kCUDA);
  ASSERT_NE(m, nullptr);
  struct Params {
    float scale;
    int n;
  };
  Params p{2.5f, 4};
  uint64_t vo = Alloc(4 * 4);
  LaunchConfig cfg;
  cfg.grid = Dim3(1);
  cfg.block = Dim3(4);
  std::vector<KernelArg> args = {KernelArg::Pointer(vo),
                                 KernelArg::Value<Params>(p)};
  auto r = LaunchKernel(device_, *m, "k", cfg, args);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto out = ReadBuf<float>(vo, 4);
  EXPECT_FLOAT_EQ(out[2], 5.0f);
  EXPECT_FLOAT_EQ(out[3], 7.5f);
}

TEST_F(InterpTest, MultiDimensionalGrid) {
  auto m = Compile(
      "__kernel void k(__global int* out, int w) {"
      "  int x = get_global_id(0);"
      "  int y = get_global_id(1);"
      "  out[y * w + x] = x + 10 * y;"
      "}",
      Dialect::kOpenCL);
  ASSERT_NE(m, nullptr);
  const int w = 8, h = 4;
  uint64_t vo = Alloc(w * h * 4);
  LaunchConfig cfg;
  cfg.grid = Dim3(2, 2);
  cfg.block = Dim3(4, 2);
  std::vector<KernelArg> args = {KernelArg::Pointer(vo),
                                 KernelArg::Value<int>(w)};
  auto r = LaunchKernel(device_, *m, "k", cfg, args);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto out = ReadBuf<int>(vo, w * h);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[3 * w + 7], 7 + 30);
}

}  // namespace
}  // namespace bridgecl::interp
