#include <gtest/gtest.h>

#include <numeric>

#include "mcuda/cuda_api.h"
#include "simgpu/device.h"

namespace bridgecl::mcuda {
namespace {

using simgpu::Device;
using simgpu::Dim3;
using simgpu::TitanProfile;

class McudaTest : public ::testing::Test {
 protected:
  McudaTest() : device_(TitanProfile()), cu_(CreateNativeCudaApi(device_)) {}

  Device device_;
  std::unique_ptr<CudaApi> cu_;
};

TEST_F(McudaTest, MallocMemcpyFree) {
  auto p = cu_->Malloc(256);
  ASSERT_TRUE(p.ok());
  std::vector<int> data(64);
  std::iota(data.begin(), data.end(), 100);
  ASSERT_TRUE(
      cu_->Memcpy(*p, data.data(), 256, MemcpyKind::kHostToDevice).ok());
  std::vector<int> back(64);
  ASSERT_TRUE(
      cu_->Memcpy(back.data(), *p, 256, MemcpyKind::kDeviceToHost).ok());
  EXPECT_EQ(back, data);
  auto q = cu_->Malloc(256);
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(cu_->Memcpy(*q, *p, 256, MemcpyKind::kDeviceToDevice).ok());
  ASSERT_TRUE(
      cu_->Memcpy(back.data(), *q, 256, MemcpyKind::kDeviceToHost).ok());
  EXPECT_EQ(back, data);
  EXPECT_TRUE(cu_->Free(*p).ok());
  EXPECT_FALSE(cu_->Free(*p).ok());  // double free detected
}

TEST_F(McudaTest, LaunchVadd) {
  ASSERT_TRUE(cu_->RegisterModule(
                     "__global__ void vadd(float* a, float* b, float* c,"
                     "                     int n) {"
                     "  int i = blockIdx.x * blockDim.x + threadIdx.x;"
                     "  if (i < n) c[i] = a[i] + b[i];"
                     "}")
                  .ok());
  const int n = 96;
  std::vector<float> a(n, 2.0f), b(n, 5.0f), c(n);
  auto pa = cu_->Malloc(n * 4), pb = cu_->Malloc(n * 4),
       pc = cu_->Malloc(n * 4);
  ASSERT_TRUE(pa.ok() && pb.ok() && pc.ok());
  ASSERT_TRUE(
      cu_->Memcpy(*pa, a.data(), n * 4, MemcpyKind::kHostToDevice).ok());
  ASSERT_TRUE(
      cu_->Memcpy(*pb, b.data(), n * 4, MemcpyKind::kHostToDevice).ok());
  std::vector<LaunchArg> args = {LaunchArg::Ptr(*pa), LaunchArg::Ptr(*pb),
                                 LaunchArg::Ptr(*pc),
                                 LaunchArg::Value<int>(n)};
  ASSERT_TRUE(cu_->LaunchKernel("vadd", Dim3(3), Dim3(32), 0, args).ok());
  ASSERT_TRUE(
      cu_->Memcpy(c.data(), *pc, n * 4, MemcpyKind::kDeviceToHost).ok());
  for (float v : c) EXPECT_FLOAT_EQ(v, 7.0f);
}

TEST_F(McudaTest, MemcpyToFromSymbol) {
  ASSERT_TRUE(cu_->RegisterModule(
                     "__constant__ float coef[4];"
                     "__device__ int counter;"
                     "__global__ void k(float* out) {"
                     "  int i = threadIdx.x;"
                     "  out[i] = coef[i] * 10.0f;"
                     "  if (i == 0) counter = 42;"
                     "}")
                  .ok());
  std::vector<float> coef = {1, 2, 3, 4};
  ASSERT_TRUE(cu_->MemcpyToSymbol("coef", coef.data(), 16).ok());
  auto out = cu_->Malloc(16);
  ASSERT_TRUE(out.ok());
  std::vector<LaunchArg> args = {LaunchArg::Ptr(*out)};
  ASSERT_TRUE(cu_->LaunchKernel("k", Dim3(1), Dim3(4), 0, args).ok());
  std::vector<float> result(4);
  ASSERT_TRUE(
      cu_->Memcpy(result.data(), *out, 16, MemcpyKind::kDeviceToHost).ok());
  EXPECT_FLOAT_EQ(result[0], 10.0f);
  EXPECT_FLOAT_EQ(result[3], 40.0f);
  int counter = 0;
  ASSERT_TRUE(cu_->MemcpyFromSymbol(&counter, "counter", 4).ok());
  EXPECT_EQ(counter, 42);
  // Unknown symbols and overruns are rejected.
  EXPECT_FALSE(cu_->MemcpyToSymbol("nope", coef.data(), 4).ok());
  EXPECT_FALSE(cu_->MemcpyToSymbol("coef", coef.data(), 64).ok());
}

TEST_F(McudaTest, MemGetInfo) {
  auto info0 = cu_->MemGetInfo();
  ASSERT_TRUE(info0.ok());
  auto p = cu_->Malloc(1 << 20);
  ASSERT_TRUE(p.ok());
  auto info1 = cu_->MemGetInfo();
  ASSERT_TRUE(info1.ok());
  EXPECT_EQ(info0->first - info1->first, 1u << 20);
  EXPECT_EQ(info0->second, info1->second);
}

TEST_F(McudaTest, DevicePropertiesSingleQuery) {
  double t0 = cu_->NowUs();
  auto props = cu_->GetDeviceProperties();
  ASSERT_TRUE(props.ok());
  EXPECT_NE(props->name.find("Titan"), std::string::npos);
  EXPECT_EQ(props->warp_size, 32);
  EXPECT_EQ(props->multi_processor_count, 14);
  EXPECT_EQ(props->major, 3);
  EXPECT_EQ(props->minor, 5);
  // Native CUDA fills the whole struct with one device query.
  double elapsed = cu_->NowUs() - t0;
  EXPECT_LT(elapsed, 3 * TitanProfile().device_query_us);
}

TEST_F(McudaTest, DynamicSharedLaunch) {
  ASSERT_TRUE(cu_->RegisterModule(
                     "__global__ void rot(int* d) {"
                     "  extern __shared__ int tile[];"
                     "  int t = threadIdx.x;"
                     "  tile[t] = d[t];"
                     "  __syncthreads();"
                     "  d[t] = tile[(t + 1) % blockDim.x];"
                     "}")
                  .ok());
  const int n = 16;
  std::vector<int> data(n);
  std::iota(data.begin(), data.end(), 0);
  auto p = cu_->Malloc(n * 4);
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(
      cu_->Memcpy(*p, data.data(), n * 4, MemcpyKind::kHostToDevice).ok());
  std::vector<LaunchArg> args = {LaunchArg::Ptr(*p)};
  ASSERT_TRUE(cu_->LaunchKernel("rot", Dim3(1), Dim3(n), n * 4, args).ok());
  std::vector<int> back(n);
  ASSERT_TRUE(
      cu_->Memcpy(back.data(), *p, n * 4, MemcpyKind::kDeviceToHost).ok());
  for (int i = 0; i < n; ++i) EXPECT_EQ(back[i], (i + 1) % n);
}

TEST_F(McudaTest, Texture1DLinear) {
  ASSERT_TRUE(cu_->RegisterModule(
                     "texture<float, 1, cudaReadModeElementType> tex;"
                     "__global__ void k(float* out, int n) {"
                     "  int i = threadIdx.x;"
                     "  if (i < n) out[i] = tex1Dfetch(tex, n - 1 - i);"
                     "}")
                  .ok());
  const int n = 8;
  std::vector<float> data = {0, 1, 2, 3, 4, 5, 6, 7};
  auto p = cu_->Malloc(n * 4);
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(
      cu_->Memcpy(*p, data.data(), n * 4, MemcpyKind::kHostToDevice).ok());
  ChannelDesc desc;
  desc.elem = lang::ScalarKind::kFloat;
  desc.channels = 1;
  ASSERT_TRUE(cu_->BindTexture("tex", *p, n * 4, desc).ok());
  auto out = cu_->Malloc(n * 4);
  ASSERT_TRUE(out.ok());
  std::vector<LaunchArg> args = {LaunchArg::Ptr(*out),
                                 LaunchArg::Value<int>(n)};
  ASSERT_TRUE(cu_->LaunchKernel("k", Dim3(1), Dim3(n), 0, args).ok());
  std::vector<float> back(n);
  ASSERT_TRUE(
      cu_->Memcpy(back.data(), *out, n * 4, MemcpyKind::kDeviceToHost).ok());
  for (int i = 0; i < n; ++i) EXPECT_FLOAT_EQ(back[i], float(n - 1 - i));
  ASSERT_TRUE(cu_->UnbindTexture("tex").ok());
}

TEST_F(McudaTest, Texture2DViaArray) {
  ASSERT_TRUE(cu_->RegisterModule(
                     "texture<float, 2, cudaReadModeElementType> tex2;"
                     "__global__ void k(float* out, int w) {"
                     "  int x = threadIdx.x;"
                     "  int y = threadIdx.y;"
                     "  out[y * w + x] = tex2D(tex2, (float)x, (float)y);"
                     "}")
                  .ok());
  const int w = 4, h = 2;
  std::vector<float> img = {1, 2, 3, 4, 5, 6, 7, 8};
  ChannelDesc desc;
  desc.elem = lang::ScalarKind::kFloat;
  desc.channels = 1;
  auto arr = cu_->MallocArray(desc, w, h);
  ASSERT_TRUE(arr.ok());
  ASSERT_TRUE(cu_->MemcpyToArray(*arr, img.data(), w * h * 4).ok());
  ASSERT_TRUE(cu_->BindTextureToArray("tex2", *arr).ok());
  auto out = cu_->Malloc(w * h * 4);
  ASSERT_TRUE(out.ok());
  std::vector<LaunchArg> args = {LaunchArg::Ptr(*out),
                                 LaunchArg::Value<int>(w)};
  ASSERT_TRUE(cu_->LaunchKernel("k", Dim3(1), Dim3(w, h), 0, args).ok());
  std::vector<float> back(w * h);
  ASSERT_TRUE(cu_->Memcpy(back.data(), *out, w * h * 4,
                          MemcpyKind::kDeviceToHost)
                  .ok());
  EXPECT_EQ(back, img);
}

TEST_F(McudaTest, Tex1DLinearLimitIsHuge) {
  // CUDA's linear 1D texture limit is 2^27 texels (§5): binding ~100K
  // floats must succeed where OpenCL's 1D image (65536) could not.
  ASSERT_TRUE(cu_->RegisterModule(
                     "texture<float, 1, cudaReadModeElementType> tbig;"
                     "__global__ void k(float* out) {"
                     "  out[0] = tex1Dfetch(tbig, 100000);"
                     "}")
                  .ok());
  const size_t n = 120000;
  auto p = cu_->Malloc(n * 4);
  ASSERT_TRUE(p.ok());
  ChannelDesc desc;
  desc.elem = lang::ScalarKind::kFloat;
  desc.channels = 1;
  EXPECT_TRUE(cu_->BindTexture("tbig", *p, n * 4, desc).ok());
}

TEST_F(McudaTest, CudaBankModeIsActive) {
  EXPECT_EQ(device_.bank_mode(), simgpu::BankMode::k64Bit);  // §6.2
}

TEST_F(McudaTest, RegisterOverrideAffectsOccupancy) {
  ASSERT_TRUE(
      cu_->RegisterModule("__global__ void k(float* g) {"
                          "  g[threadIdx.x] *= 2.0f;"
                          "}")
          .ok());
  ASSERT_TRUE(cu_->SetKernelRegisters("k", 85).ok());
  EXPECT_FALSE(cu_->SetKernelRegisters("missing", 85).ok());
  EXPECT_NEAR(device_.OccupancyFor(85), 0.375, 0.01);
}

TEST_F(McudaTest, UnknownKernelRejected) {
  EXPECT_FALSE(cu_->LaunchKernel("ghost", Dim3(1), Dim3(1), 0, {}).ok());
}

TEST_F(McudaTest, CudaOnlyBuiltinsExecuteNatively) {
  // §3.7: __shfl/__all/clock exist only in CUDA. They must run on the
  // native binding (and be rejected by the CU→CL translator, tested in
  // translator tests).
  ASSERT_TRUE(cu_->RegisterModule(
                     "__global__ void k(int* out) {"
                     "  int v = threadIdx.x + 1;"
                     "  out[0] = __all(v > 0);"
                     "  out[1] = __shfl(v, 0);"
                     "  out[2] = (int)(clock() >= 0);"
                     "  out[3] = __popc(0xF0);"
                     "}")
                  .ok());
  auto out = cu_->Malloc(16);
  ASSERT_TRUE(out.ok());
  std::vector<LaunchArg> args = {LaunchArg::Ptr(*out)};
  ASSERT_TRUE(cu_->LaunchKernel("k", Dim3(1), Dim3(1), 0, args).ok());
  std::vector<int> back(4);
  ASSERT_TRUE(
      cu_->Memcpy(back.data(), *out, 16, MemcpyKind::kDeviceToHost).ok());
  EXPECT_EQ(back[0], 1);
  EXPECT_EQ(back[1], 1);
  EXPECT_EQ(back[2], 1);
  EXPECT_EQ(back[3], 4);
}

}  // namespace
}  // namespace bridgecl::mcuda
