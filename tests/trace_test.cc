// Tests for the src/trace subsystem (docs/OBSERVABILITY.md):
//   - a kernel launch records a kernel-launch span whose DeviceStats delta
//     matches the before/after counters exactly;
//   - under a wrapper binding every wrapper span encloses the native spans
//     it forwards to, and the summed wrapper gap is < 1% of traced time
//     (the paper's §6 "wrapper overhead is negligible" claim);
//   - the Chrome trace JSON round-trips through a minimal parser, its
//     timestamps are monotonic, and two identical runs export
//     byte-identical JSON;
//   - tracing on vs. off leaves the simulated clock and every DeviceStats
//     counter bit-identical (recording is read-only on the device).
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <string>
#include <vector>

#include "cu2cl/cuda_on_cl.h"
#include "interp/module.h"
#include "mcuda/cuda_api.h"
#include "mocl/cl_api.h"
#include "simgpu/device.h"
#include "trace/exporters.h"
#include "trace/session.h"
#include "trace/trace.h"

namespace bridgecl {
namespace {

using mocl::ClMem;
using mocl::MemFlags;
using simgpu::Device;
using simgpu::DeviceStats;
using simgpu::Dim3;
using simgpu::TitanProfile;
using trace::TraceEvent;
using trace::TraceKind;

constexpr char kClKernel[] =
    "__kernel void spin(__global float* g, int iters) {"
    "  int i = get_global_id(0);"
    "  float acc = g[i];"
    "  for (int k = 0; k < iters; k++) acc = acc * 1.0001f + 0.5f;"
    "  g[i] = acc;"
    "}";

constexpr char kCudaKernel[] =
    "__global__ void spin(float* g, int iters) {"
    "  int i = blockIdx.x * blockDim.x + threadIdx.x;"
    "  float acc = g[i];"
    "  for (int k = 0; k < iters; k++) acc = acc * 1.0001f + 0.5f;"
    "  g[i] = acc;"
    "}";

/// Write + launch + read through an OpenClApi (native or cl2cu-wrapped).
Status ClWorkload(mocl::OpenClApi& cl) {
  BRIDGECL_ASSIGN_OR_RETURN(auto prog, cl.CreateProgramWithSource(kClKernel));
  BRIDGECL_RETURN_IF_ERROR(cl.BuildProgram(prog));
  BRIDGECL_ASSIGN_OR_RETURN(auto kernel, cl.CreateKernel(prog, "spin"));
  std::vector<float> host(64, 1.0f);
  BRIDGECL_ASSIGN_OR_RETURN(
      ClMem g, cl.CreateBuffer(MemFlags::kReadWrite, 64 * 4, nullptr));
  BRIDGECL_RETURN_IF_ERROR(cl.EnqueueWriteBuffer(g, 0, 64 * 4, host.data()));
  int iters = 16;
  BRIDGECL_RETURN_IF_ERROR(cl.SetKernelArg(kernel, 0, sizeof(ClMem), &g));
  BRIDGECL_RETURN_IF_ERROR(cl.SetKernelArg(kernel, 1, sizeof(int), &iters));
  size_t gws = 64, lws = 32;
  BRIDGECL_RETURN_IF_ERROR(cl.EnqueueNDRangeKernel(kernel, 1, &gws, &lws));
  BRIDGECL_RETURN_IF_ERROR(cl.EnqueueReadBuffer(g, 0, 64 * 4, host.data()));
  return cl.Finish();
}

/// The same shape through a CudaApi (native or cu2cl-wrapped), plus the
/// §6.3 fan-out call (GetDeviceProperties) to exercise wrapper nesting.
Status CudaWorkload(mcuda::CudaApi& cu) {
  BRIDGECL_RETURN_IF_ERROR(cu.RegisterModule(kCudaKernel));
  std::vector<float> host(64, 1.0f);
  BRIDGECL_ASSIGN_OR_RETURN(void* g, cu.Malloc(64 * 4));
  BRIDGECL_RETURN_IF_ERROR(
      cu.Memcpy(g, host.data(), 64 * 4, mcuda::MemcpyKind::kHostToDevice));
  std::vector<mcuda::LaunchArg> args = {mcuda::LaunchArg::Ptr(g),
                                        mcuda::LaunchArg::Value<int>(16)};
  BRIDGECL_RETURN_IF_ERROR(cu.LaunchKernel("spin", Dim3(2), Dim3(32), 0,
                                           args));
  BRIDGECL_RETURN_IF_ERROR(
      cu.Memcpy(host.data(), g, 64 * 4, mcuda::MemcpyKind::kDeviceToHost));
  BRIDGECL_RETURN_IF_ERROR(cu.GetDeviceProperties().status());
  return cu.DeviceSynchronize();
}

TEST(TraceTest, KernelLaunchSpanCarriesExactStatsDelta) {
  Device dev(TitanProfile());
  trace::TraceSession session(dev, {});
  auto cl = mocl::CreateNativeClApi(dev);
  auto prog = cl->CreateProgramWithSource(kClKernel);
  ASSERT_TRUE(prog.ok());
  ASSERT_TRUE(cl->BuildProgram(*prog).ok());
  auto kernel = cl->CreateKernel(*prog, "spin");
  auto g = cl->CreateBuffer(MemFlags::kReadWrite, 64 * 4, nullptr);
  ASSERT_TRUE(kernel.ok() && g.ok());
  int iters = 16;
  ASSERT_TRUE(cl->SetKernelArg(*kernel, 0, sizeof(ClMem), &*g).ok());
  ASSERT_TRUE(cl->SetKernelArg(*kernel, 1, sizeof(int), &iters).ok());

  const DeviceStats before = dev.stats();
  const double t_before = dev.now_us();
  size_t gws = 64, lws = 32;
  ASSERT_TRUE(cl->EnqueueNDRangeKernel(*kernel, 1, &gws, &lws).ok());
  const DeviceStats after = dev.stats();
  const double t_after = dev.now_us();

  const TraceEvent* launch = nullptr;
  for (const TraceEvent& e : session.recorder().events())
    if (e.kind == TraceKind::kKernelLaunch) launch = &e;
  ASSERT_NE(launch, nullptr);
  EXPECT_STREQ(launch->layer, "mocl");
  EXPECT_EQ(launch->kernel, "spin");
  EXPECT_GT(launch->regs_per_thread, 0);
  EXPECT_GT(launch->occupancy, 0.0);
  EXPECT_FALSE(launch->failed);
  // The span window is exactly the command's clock window...
  EXPECT_GE(launch->begin_us, t_before);
  EXPECT_LE(launch->end_us, t_after);
  EXPECT_GT(launch->duration_us(), 0.0);
  // ...and the recorded delta is exactly the counter movement across it.
  EXPECT_EQ(launch->delta.kernels_launched,
            after.kernels_launched - before.kernels_launched);
  EXPECT_EQ(launch->delta.work_items_executed,
            after.work_items_executed - before.work_items_executed);
  EXPECT_EQ(launch->delta.global_accesses,
            after.global_accesses - before.global_accesses);
  EXPECT_EQ(launch->delta.ops_executed,
            after.ops_executed - before.ops_executed);
  EXPECT_EQ(launch->delta.api_calls, after.api_calls - before.api_calls);
  EXPECT_EQ(launch->delta.kernels_launched, 1u);
  EXPECT_EQ(launch->delta.work_items_executed, 64u);
}

TEST(TraceTest, WrapperSpansEncloseForwardedNativeSpans) {
  Device dev(TitanProfile());
  trace::TraceSession session(dev, {});
  auto cl = mocl::CreateNativeClApi(dev);
  auto cu = cu2cl::CreateCudaOnClApi(*cl);
  Status st = CudaWorkload(*cu);
  ASSERT_TRUE(st.ok()) << st.ToString();

  const auto& events = session.recorder().events();
  size_t wrapper_spans = 0, native_children = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (std::string(e.layer) != "cu2cl") continue;
    ++wrapper_spans;
    EXPECT_EQ(e.depth, 0) << e.name;  // wrapper is the outermost layer
    for (size_t c : session.recorder().ChildrenOf(i)) {
      const TraceEvent& child = events[c];
      ++native_children;
      EXPECT_STREQ(child.layer, "mocl") << child.name;
      EXPECT_EQ(child.depth, e.depth + 1);
      // Enclosure: the native span lies inside its wrapper span.
      EXPECT_GE(child.begin_us, e.begin_us) << child.name;
      EXPECT_LE(child.end_us, e.end_us) << child.name;
    }
  }
  EXPECT_GT(wrapper_spans, 0u);
  EXPECT_GT(native_children, 0u);

  // The acceptance bar: summed wrapper gap under 1% of traced time. In
  // the simulation wrapper bodies never advance the clock, so it is 0.
  trace::WrapperOverhead wo = trace::WrapperOverheadOf(session.recorder());
  EXPECT_EQ(wo.wrapper_calls, wrapper_spans);
  EXPECT_GT(wo.fanout_calls, 0u);  // GetDeviceProperties fans out
  EXPECT_GT(wo.total_us, 0.0);
  EXPECT_LT(wo.fraction(), 0.01);
  EXPECT_DOUBLE_EQ(wo.wrapper_gap_us, 0.0);
}

// --- minimal JSON parser (just enough to validate the exporter) --------

struct JsonCursor {
  const std::string& s;
  size_t i = 0;
  bool ok = true;

  void Skip() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])))
      ++i;
  }
  bool Eat(char c) {
    Skip();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    ok = false;
    return false;
  }
  void Value();  // forward
  void String() {
    if (!Eat('"')) return;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\') ++i;
      ++i;
    }
    if (i >= s.size()) {
      ok = false;
      return;
    }
    ++i;  // closing quote
  }
  void Number() {
    size_t start = i;
    while (i < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[i])) || s[i] == '-' ||
            s[i] == '+' || s[i] == '.' || s[i] == 'e' || s[i] == 'E'))
      ++i;
    if (i == start) ok = false;
  }
  void Object() {
    if (!Eat('{')) return;
    Skip();
    if (i < s.size() && s[i] == '}') {
      ++i;
      return;
    }
    while (ok) {
      String();
      if (!Eat(':')) return;
      Value();
      Skip();
      if (i < s.size() && s[i] == ',') {
        ++i;
        continue;
      }
      Eat('}');
      return;
    }
  }
  void Array() {
    if (!Eat('[')) return;
    Skip();
    if (i < s.size() && s[i] == ']') {
      ++i;
      return;
    }
    while (ok) {
      Value();
      Skip();
      if (i < s.size() && s[i] == ',') {
        ++i;
        continue;
      }
      Eat(']');
      return;
    }
  }
};

void JsonCursor::Value() {
  Skip();
  if (i >= s.size()) {
    ok = false;
    return;
  }
  char c = s[i];
  if (c == '{') {
    Object();
  } else if (c == '[') {
    Array();
  } else if (c == '"') {
    String();
  } else if (s.compare(i, 4, "true") == 0) {
    i += 4;
  } else if (s.compare(i, 5, "false") == 0) {
    i += 5;
  } else if (s.compare(i, 4, "null") == 0) {
    i += 4;
  } else {
    Number();
  }
}

bool JsonWellFormed(const std::string& s) {
  JsonCursor c{s};
  c.Value();
  c.Skip();
  return c.ok && c.i == s.size();
}

/// Every value following `"key":` in document order, parsed as double.
std::vector<double> JsonNumbersFor(const std::string& s,
                                   const std::string& key) {
  std::vector<double> out;
  const std::string needle = "\"" + key + "\":";
  for (size_t pos = s.find(needle); pos != std::string::npos;
       pos = s.find(needle, pos + 1))
    out.push_back(std::strtod(s.c_str() + pos + needle.size(), nullptr));
  return out;
}

size_t CountOccurrences(const std::string& s, const std::string& needle) {
  size_t n = 0;
  for (size_t pos = s.find(needle); pos != std::string::npos;
       pos = s.find(needle, pos + 1))
    ++n;
  return n;
}

std::string TracedClRunJson() {
  Device dev(TitanProfile());
  trace::TraceSession session(dev, {});
  auto cl = mocl::CreateNativeClApi(dev);
  Status st = ClWorkload(*cl);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return trace::ChromeTraceJson(session.recorder());
}

TEST(TraceTest, ChromeJsonRoundTripsMonotonicAndDeterministic) {
  // Byte-identity across fresh runs: pin the module cache off so the
  // repeat run recompiles instead of recording a cache hit (the hit/miss
  // outcome is span metadata and would legitimately differ).
  interp::SetModuleCacheEnabled(0);
  Device dev(TitanProfile());
  trace::TraceSession session(dev, {});
  auto cl = mocl::CreateNativeClApi(dev);
  Status st = ClWorkload(*cl);
  ASSERT_TRUE(st.ok()) << st.ToString();
  const std::string json = trace::ChromeTraceJson(session.recorder());

  ASSERT_TRUE(JsonWellFormed(json)) << json;
  // One complete ("ph":"X") event per recorded span.
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"X\""),
            session.recorder().events().size());
  // Timestamps appear in recording order: monotonically non-decreasing.
  std::vector<double> ts = JsonNumbersFor(json, "ts");
  ASSERT_EQ(ts.size(), session.recorder().events().size());
  for (size_t i = 1; i < ts.size(); ++i)
    EXPECT_LE(ts[i - 1], ts[i]) << "at event " << i;
  // Durations are non-negative.
  for (double d : JsonNumbersFor(json, "dur")) EXPECT_GE(d, 0.0);

  // Determinism: an identical fresh run exports byte-identical JSON.
  EXPECT_EQ(json, TracedClRunJson());
  interp::SetModuleCacheEnabled(-1);
}

/// Full DeviceStats equality, field by field.
void ExpectStatsEqual(const DeviceStats& a, const DeviceStats& b) {
  EXPECT_EQ(a.kernels_launched, b.kernels_launched);
  EXPECT_EQ(a.work_items_executed, b.work_items_executed);
  EXPECT_EQ(a.global_accesses, b.global_accesses);
  EXPECT_EQ(a.shared_accesses, b.shared_accesses);
  EXPECT_EQ(a.shared_bank_words, b.shared_bank_words);
  EXPECT_EQ(a.constant_accesses, b.constant_accesses);
  EXPECT_EQ(a.image_accesses, b.image_accesses);
  EXPECT_EQ(a.atomics, b.atomics);
  EXPECT_EQ(a.barriers, b.barriers);
  EXPECT_EQ(a.host_to_device_bytes, b.host_to_device_bytes);
  EXPECT_EQ(a.device_to_host_bytes, b.device_to_host_bytes);
  EXPECT_EQ(a.device_to_device_bytes, b.device_to_device_bytes);
  EXPECT_EQ(a.api_calls, b.api_calls);
  EXPECT_EQ(a.ops_executed, b.ops_executed);
}

TEST(TraceTest, TracingIsInvisibleToClocksAndStats) {
  // Same workload on two fresh devices: traced vs. untraced. Every clock
  // value and counter must be bit-identical — recording never touches
  // the device.
  Device plain(TitanProfile());
  {
    auto cl = mocl::CreateNativeClApi(plain);
    auto cu = cu2cl::CreateCudaOnClApi(*cl);
    ASSERT_TRUE(CudaWorkload(*cu).ok());
  }
  Device traced(TitanProfile());
  {
    trace::TraceSession session(traced, {});
    auto cl = mocl::CreateNativeClApi(traced);
    auto cu = cu2cl::CreateCudaOnClApi(*cl);
    ASSERT_TRUE(CudaWorkload(*cu).ok());
    EXPECT_FALSE(session.recorder().events().empty());
  }
  EXPECT_EQ(plain.now_us(), traced.now_us());  // exact, not approximate
  ExpectStatsEqual(plain.stats(), traced.stats());
}

TEST(TraceTest, AsyncWorkloadRecordsOverlappingEngineLanes) {
  // Two streams through the native CUDA binding: a large async copy on
  // one, a kernel on the other. The scheduler must record device-engine
  // spans — copy on lane 1, compute on lane 2, each tagged with its
  // stream — whose windows overlap (docs/CONCURRENCY.md).
  Device dev(TitanProfile());
  trace::TraceSession session(dev, {});
  auto cu = mcuda::CreateNativeCudaApi(dev);
  ASSERT_TRUE(cu->RegisterModule(kCudaKernel).ok());
  std::vector<float> host(4096, 1.0f);
  auto g = cu->Malloc(4096 * 4);
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(cu->Memcpy(*g, host.data(), 4096 * 4,
                         mcuda::MemcpyKind::kHostToDevice)
                  .ok());
  auto s1 = cu->StreamCreate();
  auto s2 = cu->StreamCreate();
  ASSERT_TRUE(s1.ok() && s2.ok());
  ASSERT_TRUE(cu->MemcpyAsync(*g, host.data(), 4096 * 4,
                              mcuda::MemcpyKind::kHostToDevice, *s1)
                  .ok());
  std::vector<mcuda::LaunchArg> args = {mcuda::LaunchArg::Ptr(*g),
                                        mcuda::LaunchArg::Value<int>(64)};
  ASSERT_TRUE(
      cu->LaunchKernelOnStream("spin", Dim3(128), Dim3(32), 0, args, *s2)
          .ok());
  ASSERT_TRUE(cu->DeviceSynchronize().ok());

  const TraceEvent* copy = nullptr;
  const TraceEvent* compute = nullptr;
  for (const TraceEvent& e : session.recorder().events()) {
    if (e.kind == TraceKind::kDeviceCopy && e.lane == 1 && e.stream != 0)
      copy = &e;
    if (e.kind == TraceKind::kDeviceCompute && e.lane == 2 && e.stream != 0)
      compute = &e;
  }
  ASSERT_NE(copy, nullptr);
  ASSERT_NE(compute, nullptr);
  EXPECT_NE(copy->stream, compute->stream);
  EXPECT_EQ(copy->bytes, 4096u * 4u);
  EXPECT_EQ(compute->kernel, "spin");
  // The engine windows overlap: each starts before the other ends.
  EXPECT_LT(copy->begin_us, compute->end_us);
  EXPECT_LT(compute->begin_us, copy->end_us);
  EXPECT_GT(dev.EngineOverlapUs(), 0.0);

  // The exporter keeps the JSON well-formed with the lane/stream fields.
  const std::string json = trace::ChromeTraceJson(session.recorder());
  EXPECT_TRUE(JsonWellFormed(json)) << json;
  EXPECT_NE(json.find("\"stream\""), std::string::npos);

  ASSERT_TRUE(cu->StreamDestroy(*s1).ok());
  ASSERT_TRUE(cu->StreamDestroy(*s2).ok());
  ASSERT_TRUE(cu->Free(*g).ok());
}

TEST(TraceTest, FailedCommandIsMarkedFailed) {
  Device dev(TitanProfile());
  trace::TraceSession session(dev, {});
  auto cl = mocl::CreateNativeClApi(dev);
  auto prog = cl->CreateProgramWithSource(kClKernel);
  ASSERT_TRUE(prog.ok());
  ASSERT_TRUE(cl->BuildProgram(*prog).ok());
  auto missing = cl->CreateKernel(*prog, "no_such_kernel");
  EXPECT_FALSE(missing.ok());
  const auto& events = session.recorder().events();
  ASSERT_FALSE(events.empty());
  const TraceEvent& last = events.back();
  EXPECT_STREQ(last.name, "clCreateKernel");
  EXPECT_TRUE(last.failed);
}

}  // namespace
}  // namespace bridgecl
