// Tests for the src/sched command scheduler (docs/CONCURRENCY.md):
//   - in-order queues serialize commands, independent queues overlap a
//     copy with a kernel on the dual-engine timing model;
//   - event wait lists and barriers order commands across/within queues;
//   - non-blocking failures park on the queue and surface, sticky, at the
//     next synchronization point with their sealed error code;
//   - events stay queryable after their queue is released, and releasing
//     every event leaves no live records;
//   - a traced out-of-order multi-queue run is deterministic: two fresh
//     runs agree on the clock, the stats counters and the exported trace
//     JSON byte-for-byte.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "cl2cu/cl_on_cuda.h"
#include "interp/module.h"
#include "mcuda/cuda_api.h"
#include "mocl/cl_api.h"
#include "mocl/cl_errors.h"
#include "sched/scheduler.h"
#include "simgpu/device.h"
#include "support/status.h"
#include "trace/exporters.h"
#include "trace/session.h"

namespace bridgecl {
namespace {

using mocl::ClMem;
using mocl::MemFlags;
using sched::CommandKind;
using sched::CommandSpec;
using sched::Scheduler;
using simgpu::Device;
using simgpu::EngineId;
using simgpu::TitanProfile;

CommandSpec CopySpec(uint64_t queue, uint64_t bytes,
                     std::vector<uint64_t> waits = {}) {
  CommandSpec s;
  s.kind = CommandKind::kCopyH2D;
  s.queue = queue;
  s.bytes = bytes;
  s.wait_events = std::move(waits);
  return s;
}

CommandSpec KernelSpec(uint64_t queue, std::vector<uint64_t> waits = {}) {
  CommandSpec s;
  s.kind = CommandKind::kKernel;
  s.queue = queue;
  s.kernel = "k";
  s.wait_events = std::move(waits);
  return s;
}

/// Exec closure charging a copy of `bytes` against `dev`.
std::function<Status()> ChargeCopy(Device& dev, size_t bytes) {
  return [&dev, bytes] {
    dev.ChargeCopy(bytes);
    return OkStatus();
  };
}

/// Exec closure charging a kernel against `dev`.
std::function<Status()> ChargeKernel(Device& dev) {
  return [&dev] {
    dev.ChargeKernel(/*total_cycles=*/200000, /*regs_per_thread=*/32,
                     /*work_items=*/1024);
    return OkStatus();
  };
}

TEST(SchedTest, InOrderQueueSerializesCommands) {
  Device dev(TitanProfile());
  Scheduler sch(dev, "test");
  uint64_t q = sch.CreateQueue(/*out_of_order=*/false);
  auto r1 = sch.Enqueue(CopySpec(q, 1 << 20), /*blocking=*/false,
                        dev.now_us(), ChargeCopy(dev, 1 << 20));
  auto r2 = sch.Enqueue(KernelSpec(q), /*blocking=*/false, dev.now_us(),
                        ChargeKernel(dev));
  ASSERT_TRUE(r1.status.ok() && r2.status.ok());
  auto t1 = sch.TimesOf(r1.event);
  auto t2 = sch.TimesOf(r2.event);
  ASSERT_TRUE(t1.ok() && t2.ok());
  EXPECT_GT(t1->end_us, t1->start_us);
  // FIFO: the kernel starts no earlier than the copy ends...
  EXPECT_GE(t2->start_us, t1->end_us);
  // ...so the copy and compute engines never run simultaneously.
  EXPECT_DOUBLE_EQ(dev.EngineOverlapUs(), 0.0);
  ASSERT_TRUE(sch.Synchronize(q).ok());
  EXPECT_GE(dev.now_us(), t2->end_us);
}

TEST(SchedTest, IndependentQueuesOverlapCopyAndCompute) {
  Device dev(TitanProfile());
  Scheduler sch(dev, "test");
  uint64_t qa = sch.CreateQueue(false);
  uint64_t qb = sch.CreateQueue(false);
  auto rc = sch.Enqueue(CopySpec(qa, 1 << 20), false, dev.now_us(),
                        ChargeCopy(dev, 1 << 20));
  auto rk = sch.Enqueue(KernelSpec(qb), false, dev.now_us(),
                        ChargeKernel(dev));
  ASSERT_TRUE(rc.status.ok() && rk.status.ok());
  ASSERT_TRUE(sch.SynchronizeAll().ok());
  auto tc = sch.TimesOf(rc.event);
  auto tk = sch.TimesOf(rk.event);
  ASSERT_TRUE(tc.ok() && tk.ok());
  // Both commands had no dependencies, so they share their windows: the
  // total wall time is less than the serialized sum.
  double dur_c = tc->end_us - tc->start_us;
  double dur_k = tk->end_us - tk->start_us;
  EXPECT_GT(dev.EngineOverlapUs(), 0.0);
  EXPECT_LT(std::max(tc->end_us, tk->end_us) -
                std::min(tc->start_us, tk->start_us),
            dur_c + dur_k);
}

TEST(SchedTest, OutOfOrderQueueOverlapsWhereInOrderCannot) {
  // The same two commands on one queue: in-order forces serialization,
  // out-of-order lets the copy and the kernel share the window.
  double ooo_overlap, io_overlap;
  {
    Device dev(TitanProfile());
    Scheduler sch(dev, "test");
    uint64_t q = sch.CreateQueue(/*out_of_order=*/true);
    sch.Enqueue(CopySpec(q, 1 << 20), false, dev.now_us(),
                ChargeCopy(dev, 1 << 20));
    sch.Enqueue(KernelSpec(q), false, dev.now_us(), ChargeKernel(dev));
    ASSERT_TRUE(sch.Synchronize(q).ok());
    ooo_overlap = dev.EngineOverlapUs();
  }
  {
    Device dev(TitanProfile());
    Scheduler sch(dev, "test");
    uint64_t q = sch.CreateQueue(/*out_of_order=*/false);
    sch.Enqueue(CopySpec(q, 1 << 20), false, dev.now_us(),
                ChargeCopy(dev, 1 << 20));
    sch.Enqueue(KernelSpec(q), false, dev.now_us(), ChargeKernel(dev));
    ASSERT_TRUE(sch.Synchronize(q).ok());
    io_overlap = dev.EngineOverlapUs();
  }
  EXPECT_GT(ooo_overlap, 0.0);
  EXPECT_DOUBLE_EQ(io_overlap, 0.0);
}

TEST(SchedTest, WaitListOrdersAcrossQueues) {
  Device dev(TitanProfile());
  Scheduler sch(dev, "test");
  uint64_t qa = sch.CreateQueue(false);
  uint64_t qb = sch.CreateQueue(false);
  auto rc = sch.Enqueue(CopySpec(qa, 1 << 20), false, dev.now_us(),
                        ChargeCopy(dev, 1 << 20));
  auto rk = sch.Enqueue(KernelSpec(qb, {rc.event}), false, dev.now_us(),
                        ChargeKernel(dev));
  ASSERT_TRUE(rc.status.ok() && rk.status.ok());
  auto tc = sch.TimesOf(rc.event);
  auto tk = sch.TimesOf(rk.event);
  ASSERT_TRUE(tc.ok() && tk.ok());
  EXPECT_GE(tk->start_us, tc->end_us);
  EXPECT_DOUBLE_EQ(dev.EngineOverlapUs(), 0.0);
  // An unknown wait-list event is an immediate enqueue failure.
  auto bad = sch.Enqueue(KernelSpec(qb, {0xdeadbeefULL}), false,
                         dev.now_us(), ChargeKernel(dev));
  EXPECT_FALSE(bad.status.ok());
}

TEST(SchedTest, BarrierOrdersLaterCommandsOnOutOfOrderQueue) {
  Device dev(TitanProfile());
  Scheduler sch(dev, "test");
  uint64_t q = sch.CreateQueue(/*out_of_order=*/true);
  auto rc = sch.Enqueue(CopySpec(q, 1 << 20), false, dev.now_us(),
                        ChargeCopy(dev, 1 << 20));
  CommandSpec bar;
  bar.kind = CommandKind::kBarrier;
  bar.queue = q;
  auto rb = sch.Enqueue(bar, false, dev.now_us(), {});
  auto rk = sch.Enqueue(KernelSpec(q), false, dev.now_us(),
                        ChargeKernel(dev));
  ASSERT_TRUE(rc.status.ok() && rb.status.ok() && rk.status.ok());
  auto tc = sch.TimesOf(rc.event);
  auto tb = sch.TimesOf(rb.event);
  auto tk = sch.TimesOf(rk.event);
  ASSERT_TRUE(tc.ok() && tb.ok() && tk.ok());
  EXPECT_GE(tb->end_us, tc->end_us);
  EXPECT_GE(tk->start_us, tb->end_us);
  EXPECT_DOUBLE_EQ(dev.EngineOverlapUs(), 0.0);
}

TEST(SchedTest, DeferredErrorSurfacesStickyAtSynchronize) {
  Device dev(TitanProfile());
  Scheduler sch(dev, "test");
  uint64_t q = sch.CreateQueue(false);
  auto fail = [](const char* what, int code) {
    return [what, code] {
      Status st = InternalError(what);
      st.set_api_code(code);
      return st;
    };
  };
  // Two failures: the first parks, the second is dropped (first wins).
  auto r1 = sch.Enqueue(CopySpec(q, 64), false, dev.now_us(),
                        fail("first", -5));
  auto r2 = sch.Enqueue(CopySpec(q, 64), false, dev.now_us(),
                        fail("second", -4));
  EXPECT_TRUE(r1.status.ok());  // deferred: the enqueues report success
  EXPECT_TRUE(r2.status.ok());
  Status st = sch.Synchronize(q);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.api_code(), -5);  // the first failure's sealed code
  // Surfacing clears the parked error.
  EXPECT_TRUE(sch.Synchronize(q).ok());
  // The failing command's event carries the failure by value.
  EXPECT_FALSE(sch.EventSynchronize(r1.event).ok());
}

TEST(SchedTest, BlockingCommandSurfacesParkedErrorBeforeExecuting) {
  Device dev(TitanProfile());
  Scheduler sch(dev, "test");
  uint64_t q = sch.CreateQueue(false);
  sch.Enqueue(CopySpec(q, 64), false, dev.now_us(), [] {
    Status st = InternalError("async fault");
    st.set_api_code(-5);
    return st;
  });
  int executed = 0;
  auto r = sch.Enqueue(CopySpec(q, 64), /*blocking=*/true, dev.now_us(),
                       [&executed] {
                         ++executed;
                         return OkStatus();
                       });
  EXPECT_FALSE(r.status.ok());
  EXPECT_EQ(r.status.api_code(), -5);
  EXPECT_EQ(executed, 0);  // the parked error preempts the new command
}

TEST(SchedTest, EventsOutliveTheirQueue) {
  Device dev(TitanProfile());
  Scheduler sch(dev, "test");
  uint64_t q = sch.CreateQueue(false);
  auto r = sch.Enqueue(CopySpec(q, 1 << 16), false, dev.now_us(),
                       ChargeCopy(dev, 1 << 16));
  ASSERT_TRUE(r.status.ok());
  ASSERT_TRUE(sch.ReleaseQueue(q).ok());
  EXPECT_FALSE(sch.HasQueue(q));
  auto t = sch.TimesOf(r.event);  // still queryable: recorded by value
  ASSERT_TRUE(t.ok());
  EXPECT_GT(t->end_us, t->start_us);
  EXPECT_TRUE(sch.ReleaseEvent(r.event));
  EXPECT_EQ(sch.LiveEvents(), 0u);
  EXPECT_FALSE(sch.ReleaseEvent(r.event));  // double release is rejected
  // The default queue can never be released.
  EXPECT_FALSE(sch.ReleaseQueue(sched::kDefaultQueue).ok());
}

// ---------------------------------------------------------------------------
// Runtime-level determinism: a traced out-of-order multi-queue workload
// through the mocl binding, run twice on fresh devices.
// ---------------------------------------------------------------------------

constexpr char kSpin[] =
    "__kernel void spin(__global float* g, int iters) {"
    "  int i = get_global_id(0);"
    "  float acc = g[i];"
    "  for (int k = 0; k < iters; k++) acc = acc * 1.0001f + 0.5f;"
    "  g[i] = acc;"
    "}";

struct RunResult {
  double clock = 0;
  uint64_t api_calls = 0;
  uint64_t h2d_bytes = 0;
  std::string json;
};

RunResult TracedOooRun() {
  Device dev(TitanProfile());
  RunResult r;
  {
    trace::TraceSession session(dev, {});
    auto cl = mocl::CreateNativeClApi(dev);
    auto run = [&]() -> Status {
      BRIDGECL_ASSIGN_OR_RETURN(auto prog, cl->CreateProgramWithSource(kSpin));
      BRIDGECL_RETURN_IF_ERROR(cl->BuildProgram(prog));
      BRIDGECL_ASSIGN_OR_RETURN(auto kernel, cl->CreateKernel(prog, "spin"));
      BRIDGECL_ASSIGN_OR_RETURN(
          auto ooo, cl->CreateCommandQueue(
                        mocl::CL_QUEUE_OUT_OF_ORDER_EXEC_MODE_ENABLE));
      BRIDGECL_ASSIGN_OR_RETURN(auto io, cl->CreateCommandQueue(0));
      std::vector<float> h(256, 1.0f);
      BRIDGECL_ASSIGN_OR_RETURN(
          ClMem buf, cl->CreateBuffer(MemFlags::kReadWrite, 256 * 4, nullptr));
      mocl::ClEvent w{};
      BRIDGECL_RETURN_IF_ERROR(cl->EnqueueWriteBufferOn(
          ooo, buf, 0, 256 * 4, h.data(), /*blocking=*/false, {}, &w));
      int iters = 8;
      BRIDGECL_RETURN_IF_ERROR(
          cl->SetKernelArg(kernel, 0, sizeof(ClMem), &buf));
      BRIDGECL_RETURN_IF_ERROR(cl->SetKernelArg(kernel, 1, sizeof(int),
                                                &iters));
      size_t gws = 256, lws = 32;
      std::vector<mocl::ClEvent> wl = {w};
      mocl::ClEvent kev{};
      BRIDGECL_RETURN_IF_ERROR(
          cl->EnqueueNDRangeKernelOn(ooo, kernel, 1, &gws, &lws, wl, &kev));
      BRIDGECL_ASSIGN_OR_RETURN(auto bar, cl->EnqueueBarrier(ooo));
      BRIDGECL_RETURN_IF_ERROR(cl->EnqueueReadBufferOn(
          ooo, buf, 0, 256 * 4, h.data(), false, {}, nullptr));
      BRIDGECL_RETURN_IF_ERROR(cl->EnqueueReadBufferOn(
          io, buf, 0, 64, h.data(), false, {}, nullptr));
      BRIDGECL_RETURN_IF_ERROR(cl->Flush(ooo));
      BRIDGECL_RETURN_IF_ERROR(cl->Finish(ooo));
      BRIDGECL_RETURN_IF_ERROR(cl->Finish(io));
      std::vector<mocl::ClEvent> evs = {w, kev, bar};
      BRIDGECL_RETURN_IF_ERROR(cl->WaitForEvents(evs));
      for (const auto& e : evs) BRIDGECL_RETURN_IF_ERROR(cl->ReleaseEvent(e));
      BRIDGECL_RETURN_IF_ERROR(cl->ReleaseCommandQueue(ooo));
      BRIDGECL_RETURN_IF_ERROR(cl->ReleaseCommandQueue(io));
      return cl->Finish();
    };
    Status st = run();
    EXPECT_TRUE(st.ok()) << st.ToString();
    r.json = trace::ChromeTraceJson(session.recorder());
  }
  r.clock = dev.now_us();
  r.api_calls = dev.stats().api_calls;
  r.h2d_bytes = dev.stats().host_to_device_bytes;
  return r;
}

// ---------------------------------------------------------------------------
// cl2cu blocking-transfer over-synchronization regression: the wrapper's
// lazy absolute-time base (EnsureT0) must anchor on an empty private
// stream. Anchoring on the default stream made the first event-producing
// command wait out everything already enqueued there — detected here
// through the trace span windows.
// ---------------------------------------------------------------------------
TEST(SchedTest, FirstEventCommandDoesNotSyncDefaultQueue) {
  Device dev(TitanProfile());
  trace::TraceSession session(dev, {});
  auto cu = mcuda::CreateNativeCudaApi(dev);
  auto cl = cl2cu::CreateClOnCudaApi(*cu);
  double after_write_enqueue = 0;
  auto run = [&]() -> Status {
    BRIDGECL_ASSIGN_OR_RETURN(auto prog, cl->CreateProgramWithSource(kSpin));
    BRIDGECL_RETURN_IF_ERROR(cl->BuildProgram(prog));
    BRIDGECL_ASSIGN_OR_RETURN(auto kernel, cl->CreateKernel(prog, "spin"));
    std::vector<float> h(256, 1.0f);
    BRIDGECL_ASSIGN_OR_RETURN(
        ClMem buf, cl->CreateBuffer(MemFlags::kReadWrite, 256 * 4, h.data()));
    BRIDGECL_RETURN_IF_ERROR(cl->SetKernelArg(kernel, 0, sizeof(ClMem), &buf));
    int iters = 2000;
    BRIDGECL_RETURN_IF_ERROR(
        cl->SetKernelArg(kernel, 1, sizeof(int), &iters));
    // A long kernel pending on the DEFAULT queue (the CUDA default
    // stream), enqueued without an event so t0 is not planted yet.
    size_t gws = 256, lws = 32;
    BRIDGECL_RETURN_IF_ERROR(cl->EnqueueNDRangeKernelOn(
        mocl::ClQueue{0}, kernel, 1, &gws, &lws, {}, nullptr));
    double kernel_enqueued = dev.now_us();
    // First event-producing command, on an independent queue: triggers
    // EnsureT0. It must not wait for the default queue's horizon.
    BRIDGECL_ASSIGN_OR_RETURN(auto qb, cl->CreateCommandQueue(0));
    BRIDGECL_ASSIGN_OR_RETURN(
        ClMem small, cl->CreateBuffer(MemFlags::kReadWrite, 1024, nullptr));
    mocl::ClEvent wev{};
    BRIDGECL_RETURN_IF_ERROR(cl->EnqueueWriteBufferOn(
        qb, small, 0, 1024, h.data(), /*blocking=*/false, {}, &wev));
    after_write_enqueue = dev.now_us();
    EXPECT_GE(after_write_enqueue, kernel_enqueued);
    BRIDGECL_RETURN_IF_ERROR(cl->Finish());
    BRIDGECL_RETURN_IF_ERROR(cl->Finish(qb));
    BRIDGECL_RETURN_IF_ERROR(cl->ReleaseEvent(wev));
    return cl->ReleaseCommandQueue(qb);
  };
  Status st = run();
  EXPECT_TRUE(st.ok()) << st.ToString();
  // Span-window checks against the long kernel's compute-engine window.
  double compute_end = -1.0, copy_begin = -1.0;
  for (const trace::TraceEvent& e : session.recorder().events()) {
    if (e.kind == trace::TraceKind::kDeviceCompute)
      compute_end = std::max(compute_end, e.end_us);
    if (e.kind == trace::TraceKind::kDeviceCopy && e.bytes == 1024)
      copy_begin = e.begin_us;
  }
  ASSERT_GE(compute_end, 0.0) << "no compute-engine span recorded";
  ASSERT_GE(copy_begin, 0.0) << "no copy-engine span for the small write";
  // Over-sync would have parked the host behind the default queue before
  // issuing the write (EnsureT0's anchor event waiting out the kernel),
  // pushing both the enqueue's return and the copy window past the
  // kernel's end.
  EXPECT_LT(after_write_enqueue, compute_end)
      << "the write enqueue waited out the default queue's kernel";
  EXPECT_LT(copy_begin, compute_end)
      << "the independent queue's write serialized behind the default "
         "queue's kernel";
}

TEST(SchedTest, TracedOutOfOrderRunIsDeterministic) {
  // Byte-identity across fresh runs: pin the module cache off so the
  // repeat run recompiles instead of recording a cache hit (the hit/miss
  // outcome is span metadata and would legitimately differ).
  interp::SetModuleCacheEnabled(0);
  RunResult a = TracedOooRun();
  RunResult b = TracedOooRun();
  interp::SetModuleCacheEnabled(-1);
  EXPECT_EQ(a.clock, b.clock);  // exact, not approximate
  EXPECT_EQ(a.api_calls, b.api_calls);
  EXPECT_EQ(a.h2d_bytes, b.h2d_bytes);
  EXPECT_EQ(a.json, b.json);
  // The trace carries the scheduler's engine lanes.
  EXPECT_NE(a.json.find("copy-engine"), std::string::npos);
  EXPECT_NE(a.json.find("compute-engine"), std::string::npos);
}

}  // namespace
}  // namespace bridgecl
