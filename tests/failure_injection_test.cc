// Failure-injection tests: every resource limit and error path must fail
// loudly with the right status — simulated devices fault deterministically
// instead of corrupting memory.
#include <gtest/gtest.h>

#include "interp/executor.h"
#include "interp/module.h"
#include "mocl/cl_api.h"
#include "simgpu/device.h"
#include "support/strings.h"

namespace bridgecl {
namespace {

using interp::KernelArg;
using interp::Module;
using lang::Dialect;
using simgpu::Device;
using simgpu::Dim3;
using simgpu::TitanProfile;

class FailureInjectionTest : public ::testing::Test {
 protected:
  Device device_{TitanProfile()};

  StatusOr<std::unique_ptr<Module>> Compile(const std::string& src,
                                            Dialect d) {
    DiagnosticEngine diags;
    auto m = Module::Compile(src, d, diags);
    if (!m.ok())
      return Status(m.status().code(),
                    m.status().message() + "\n" + diags.ToString());
    BRIDGECL_RETURN_IF_ERROR((*m)->LoadOn(device_));
    return m;
  }

  Status Launch(Module& m, const std::string& kernel, Dim3 grid, Dim3 block,
                std::vector<KernelArg> args, size_t shmem = 0) {
    interp::LaunchConfig cfg;
    cfg.grid = grid;
    cfg.block = block;
    cfg.dynamic_shared_bytes = shmem;
    return interp::LaunchKernel(device_, m, kernel, cfg, args).status();
  }
};

TEST_F(FailureInjectionTest, SharedMemoryOverflowRejectedAtLaunch) {
  // 48KB/block limit: a 64KB static tile must be rejected, with the sizes
  // in the message.
  auto m = Compile(
      "__kernel void k(__global int* o) {"
      "  __local int tile[16384];"  // 64KB
      "  tile[get_local_id(0)] = 1;"
      "  o[0] = tile[0];"
      "}",
      Dialect::kOpenCL);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  auto out = device_.vm().AllocGlobal(64);
  ASSERT_TRUE(out.ok());
  Status st = Launch(**m, "k", Dim3(1), Dim3(32),
                     {KernelArg::Pointer(*out)});
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(st.message().find("shared memory"), std::string::npos);
}

TEST_F(FailureInjectionTest, DynamicSharedOverflowRejected) {
  auto m = Compile(
      "__global__ void k(int* o) {"
      "  extern __shared__ int t[];"
      "  t[threadIdx.x] = 1;"
      "  o[0] = t[0];"
      "}",
      Dialect::kCUDA);
  ASSERT_TRUE(m.ok());
  auto out = device_.vm().AllocGlobal(64);
  ASSERT_TRUE(out.ok());
  Status st = Launch(**m, "k", Dim3(1), Dim3(32),
                     {KernelArg::Pointer(*out)}, /*shmem=*/64 * 1024);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
}

TEST_F(FailureInjectionTest, ConstantMemoryExhaustedAtLoad) {
  // Two 48KB constant arrays exceed the 64KB constant region.
  auto m = Compile(
      "__constant float a[12288];"
      "__constant float b[12288];"
      "__kernel void k(__global float* o) { o[0] = a[0] + b[0]; }",
      Dialect::kOpenCL);
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(m.status().message().find("constant memory"),
            std::string::npos);
}

TEST_F(FailureInjectionTest, GlobalMemoryExhaustionSurfaces) {
  // A profile with a tiny global memory: consume nearly everything, then
  // one more allocation must fail.
  simgpu::DeviceProfile profile = TitanProfile();
  profile.global_mem_size = 1 << 20;
  Device small(profile);
  auto big = small.vm().AllocGlobal((1 << 20) - 1024);
  ASSERT_TRUE(big.ok());
  auto more = small.vm().AllocGlobal(64 * 1024);
  ASSERT_FALSE(more.ok());
  EXPECT_EQ(more.status().code(), StatusCode::kResourceExhausted);
  // Freeing recovers the capacity.
  ASSERT_TRUE(small.vm().FreeGlobal(*big).ok());
  EXPECT_TRUE(small.vm().AllocGlobal(64 * 1024).ok());
}

TEST_F(FailureInjectionTest, DeviceRecursionDepthLimited) {
  auto m = Compile(
      "__device__ int spin(int n) {"
      "  if (n <= 0) return 0;"
      "  return spin(n - 1) + 1;"  // 1000 levels deep
      "}"
      "__global__ void k(int* o) { o[0] = spin(1000); }",
      Dialect::kCUDA);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  auto out = device_.vm().AllocGlobal(64);
  ASSERT_TRUE(out.ok());
  Status st = Launch(**m, "k", Dim3(1), Dim3(1), {KernelArg::Pointer(*out)});
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("stack"), std::string::npos);
}

TEST_F(FailureInjectionTest, DivisionByZeroFaults) {
  auto m = Compile(
      "__kernel void k(__global int* o, int d) { o[0] = 10 / d; }",
      Dialect::kOpenCL);
  ASSERT_TRUE(m.ok());
  auto out = device_.vm().AllocGlobal(64);
  ASSERT_TRUE(out.ok());
  Status st = Launch(**m, "k", Dim3(1), Dim3(1),
                     {KernelArg::Pointer(*out), KernelArg::Value<int>(0)});
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("division by zero"), std::string::npos);
  // Non-zero divisor works on the same module.
  EXPECT_TRUE(Launch(**m, "k", Dim3(1), Dim3(1),
                     {KernelArg::Pointer(*out), KernelArg::Value<int>(2)})
                  .ok());
}

TEST_F(FailureInjectionTest, NullPointerDereferenceFaults) {
  auto m = Compile("__kernel void k(__global int* o) { o[0] = 1; }",
                   Dialect::kOpenCL);
  ASSERT_TRUE(m.ok());
  Status st = Launch(**m, "k", Dim3(1), Dim3(1), {KernelArg::Pointer(0)});
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("memory fault"), std::string::npos);
}

TEST_F(FailureInjectionTest, BarrierInsideHelperFunctionWorks) {
  // Barriers reached through a __device__ helper must still synchronize
  // the whole group (the scheduler is group-global, not frame-local).
  auto m = Compile(
      "__device__ void sync_helper() { __syncthreads(); }"
      "__global__ void k(int* o) {"
      "  __shared__ int t[16];"
      "  int i = threadIdx.x;"
      "  t[i] = i * 3;"
      "  sync_helper();"
      "  o[i] = t[15 - i];"
      "}",
      Dialect::kCUDA);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  auto out = device_.vm().AllocGlobal(16 * 4);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(
      Launch(**m, "k", Dim3(1), Dim3(16), {KernelArg::Pointer(*out)}).ok());
  int vals[16];
  std::memcpy(vals, *device_.vm().Resolve(*out, 64), 64);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(vals[i], (15 - i) * 3);
}

TEST_F(FailureInjectionTest, DeviceAssertPropagates) {
  auto m = Compile(
      "__global__ void k(int* o, int v) {"
      "  assert(v > 0);"
      "  o[0] = v;"
      "}",
      Dialect::kCUDA);
  ASSERT_TRUE(m.ok());
  auto out = device_.vm().AllocGlobal(64);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(Launch(**m, "k", Dim3(1), Dim3(1),
                     {KernelArg::Pointer(*out), KernelArg::Value<int>(5)})
                  .ok());
  Status st = Launch(**m, "k", Dim3(1), Dim3(1),
                     {KernelArg::Pointer(*out), KernelArg::Value<int>(-1)});
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("assert"), std::string::npos);
}

TEST_F(FailureInjectionTest, OpenClBuildErrorsKeepRuntimeUsable) {
  auto cl = mocl::CreateNativeClApi(device_);
  // A failing build must not poison later builds.
  auto bad = cl->CreateProgramWithSource("__kernel broken(");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(cl->BuildProgram(*bad).ok());
  auto good = cl->CreateProgramWithSource("__kernel void ok() {}");
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(cl->BuildProgram(*good).ok());
  auto k = cl->CreateKernel(*good, "ok");
  ASSERT_TRUE(k.ok());
  size_t gws = 8, lws = 8;
  EXPECT_TRUE(cl->EnqueueNDRangeKernel(*k, 1, &gws, &lws).ok());
}

TEST_F(FailureInjectionTest, PrivateStackOverflowSurfaces) {
  // A 128KB private array exceeds the 64KB per-item private budget.
  auto m = Compile(
      "__kernel void k(__global float* o) {"
      "  float big[32768];"
      "  big[0] = 1.0f;"
      "  o[0] = big[0];"
      "}",
      Dialect::kOpenCL);
  ASSERT_TRUE(m.ok());
  auto out = device_.vm().AllocGlobal(64);
  ASSERT_TRUE(out.ok());
  Status st = Launch(**m, "k", Dim3(1), Dim3(1), {KernelArg::Pointer(*out)});
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(st.message().find("private"), std::string::npos);
}

}  // namespace
}  // namespace bridgecl
