// Reproduces the paper's worked example: the Figure 4(c) CUDA program
// (static constant with compile-time init, runtime-initialized constant,
// static global, dynamic global + dynamic shared memory) must translate
// into the structures of Figures 4(a)/4(b) — appended kernel parameters
// for the runtime-initialized symbols and the dynamic shared object — and
// the whole program must execute identically through the wrapper.
#include <gtest/gtest.h>

#include <numeric>

#include "cu2cl/cuda_on_cl.h"
#include "mcuda/cuda_api.h"
#include "mocl/cl_api.h"
#include "simgpu/device.h"
#include "translator/translate.h"

namespace bridgecl {
namespace {

using mcuda::LaunchArg;
using mcuda::MemcpyKind;
using simgpu::Device;
using simgpu::Dim3;
using simgpu::TitanProfile;

// Figure 4(c), adapted to our dialect (N = 32).
constexpr char kFigure4Cuda[] = R"(
__constant__ int static_constant[32] = {1, 2, 3, 4};
__constant__ int static_constant_runtime_init[32];
__device__ int static_global[32];

__global__ void cuda_kernel(int n, int* dyn_global) {
  __shared__ int static_shared[32];
  extern __shared__ int dynamic_shared[];
  int i = threadIdx.x;
  static_shared[i] = static_constant[i % 4];
  dynamic_shared[i] = static_constant_runtime_init[i];
  __syncthreads();
  static_global[i] = static_shared[(i + 1) % 32] + dynamic_shared[i];
  if (i < n) dyn_global[i] = static_global[i] + dynamic_shared[i];
}
)";

bool Contains(const std::string& hay, const std::string& needle) {
  return hay.find(needle) != std::string::npos;
}

TEST(Figure4Test, TranslationMatchesFigure4Structures) {
  DiagnosticEngine diags;
  auto tr = translator::TranslateCudaToOpenCl(kFigure4Cuda, diags);
  ASSERT_TRUE(tr.ok()) << diags.ToString();
  const std::string& s = tr->source;

  // Fig 4(a) line 1: the statically initialized constant stays static.
  EXPECT_TRUE(Contains(s, "__constant int static_constant[32] = {1, 2, 3, "
                          "4};"))
      << s;
  // The runtime-initialized constant becomes a __constant pointer kernel
  // parameter (Fig 4(a) line 5 / §4.2 step 1).
  EXPECT_TRUE(Contains(s, "__constant int* static_constant_runtime_init"))
      << s;
  // The static global becomes a __global pointer parameter (§4.3).
  EXPECT_TRUE(Contains(s, "__global int* static_global")) << s;
  // The dynamic shared object becomes a __local pointer parameter
  // (Fig 4(a) line 3-4 / §4.1).
  EXPECT_TRUE(Contains(s, "__local int* dynamic_shared")) << s;
  // The static shared allocation stays in the body.
  EXPECT_TRUE(Contains(s, "__local int static_shared[32];")) << s;
  // No CUDA spellings survive.
  for (const char* bad : {"__constant__", "__device__", "__shared__",
                          "extern", "threadIdx", "__syncthreads"}) {
    EXPECT_FALSE(Contains(s, bad)) << bad << " in:\n" << s;
  }

  // Marshalling metadata (what the paper's host rewriting encodes in
  // Fig 4(b)'s clSetKernelArg sequence).
  const auto* info = tr->Find("cuda_kernel");
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->original_param_count, 2);
  EXPECT_TRUE(info->has_dynamic_shared);
  ASSERT_EQ(info->symbol_params.size(), 2u);
  EXPECT_EQ(info->symbol_params[0].name, "static_constant_runtime_init");
  EXPECT_TRUE(info->symbol_params[0].is_constant);
  EXPECT_EQ(info->symbol_params[0].byte_size, 32 * 4u);
  EXPECT_EQ(info->symbol_params[1].name, "static_global");
  EXPECT_FALSE(info->symbol_params[1].is_constant);
}

/// Figure 4(c)'s host program (lines 11-23), written against the CUDA API.
StatusOr<std::vector<int>> RunFigure4Host(mcuda::CudaApi& cu) {
  const int n = 32;
  BRIDGECL_RETURN_IF_ERROR(cu.RegisterModule(kFigure4Cuda));
  std::vector<int> buf(n);
  std::iota(buf.begin(), buf.end(), 1);
  // Lines 13-16: cudaMemcpyToSymbol to both runtime-initialized symbols.
  BRIDGECL_RETURN_IF_ERROR(cu.MemcpyToSymbol("static_constant_runtime_init",
                                             buf.data(), n * 4));
  std::vector<int> zeros(n, 0);
  BRIDGECL_RETURN_IF_ERROR(
      cu.MemcpyToSymbol("static_global", zeros.data(), n * 4));
  // Lines 18-21: dynamic global allocation + copy.
  BRIDGECL_ASSIGN_OR_RETURN(void* dyn_global, cu.Malloc(n * 4));
  BRIDGECL_RETURN_IF_ERROR(
      cu.Memcpy(dyn_global, buf.data(), n * 4, MemcpyKind::kHostToDevice));
  // Line 22: cuda_kernel<<<1, 32, 32*sizeof(int)>>>(n, dyn_global);
  std::vector<LaunchArg> args = {LaunchArg::Value<int>(n),
                                 LaunchArg::Ptr(dyn_global)};
  BRIDGECL_RETURN_IF_ERROR(
      cu.LaunchKernel("cuda_kernel", Dim3(1), Dim3(32), n * 4, args));
  std::vector<int> out(n);
  BRIDGECL_RETURN_IF_ERROR(
      cu.Memcpy(out.data(), dyn_global, n * 4, MemcpyKind::kDeviceToHost));
  // And read a symbol back (cudaMemcpyFromSymbol, §3.2's third special
  // case).
  std::vector<int> global_back(n);
  BRIDGECL_RETURN_IF_ERROR(
      cu.MemcpyFromSymbol(global_back.data(), "static_global", n * 4));
  out.insert(out.end(), global_back.begin(), global_back.end());
  return out;
}

TEST(Figure4Test, ExecutesIdenticallyThroughWrapper) {
  Device native_dev(TitanProfile());
  auto native = mcuda::CreateNativeCudaApi(native_dev);
  auto r_native = RunFigure4Host(*native);
  ASSERT_TRUE(r_native.ok()) << r_native.status().ToString();

  Device wrapped_dev(TitanProfile());
  auto cl = mocl::CreateNativeClApi(wrapped_dev);
  auto wrapped = cu2cl::CreateCudaOnClApi(*cl);
  auto r_wrapped = RunFigure4Host(*wrapped);
  ASSERT_TRUE(r_wrapped.ok()) << r_wrapped.status().ToString();

  EXPECT_EQ(*r_native, *r_wrapped);
  // Sanity: the expected value at i=5:
  //   static_shared[5] = static_constant[1] = 2
  //   dynamic_shared[5] = 6
  //   static_global[5] = static_shared[6] + 6 = static_constant[2] + 6 = 9
  //   dyn_global[5] = 9 + 6 = 15
  EXPECT_EQ((*r_native)[5], 15);
  EXPECT_EQ((*r_native)[32 + 5], 9);
}

}  // namespace
}  // namespace bridgecl
