#include <gtest/gtest.h>

#include "lang/parser.h"
#include "lang/printer.h"
#include "lang/sema.h"

namespace bridgecl::lang {
namespace {

std::string Reprint(const std::string& src, Dialect in, Dialect out) {
  DiagnosticEngine diags;
  ParseOptions popts;
  popts.dialect = in;
  auto tu = ParseTranslationUnit(src, popts, diags);
  EXPECT_TRUE(tu.ok()) << diags.ToString();
  if (!tu.ok()) return "";
  SemaOptions sopts;
  sopts.dialect = in;
  Status st = Analyze(**tu, sopts, diags);
  EXPECT_TRUE(st.ok()) << diags.ToString();
  PrintOptions oopts;
  oopts.dialect = out;
  return PrintTranslationUnit(**tu, oopts);
}

bool Contains(const std::string& hay, const std::string& needle) {
  return hay.find(needle) != std::string::npos;
}

TEST(PrinterTest, OpenClRoundTripKeepsQualifiers) {
  std::string out = Reprint(
      "__kernel void k(__global float* a, __local int* t, int n) {"
      "  __local int tile[16];"
      "  a[0] = 1.0f;"
      "}",
      Dialect::kOpenCL, Dialect::kOpenCL);
  EXPECT_TRUE(Contains(out, "__kernel void k(")) << out;
  EXPECT_TRUE(Contains(out, "__global float* a")) << out;
  EXPECT_TRUE(Contains(out, "__local int* t")) << out;
  EXPECT_TRUE(Contains(out, "__local int tile[16];")) << out;
}

TEST(PrinterTest, OpenClToCudaSurface) {
  std::string out = Reprint(
      "__kernel void k(__global float* a) {"
      "  __local float tile[8];"
      "  tile[0] = a[0];"
      "  barrier(CLK_LOCAL_MEM_FENCE);"
      "}",
      Dialect::kOpenCL, Dialect::kCUDA);
  // The raw printer maps qualifier spellings (rewriting of built-ins is the
  // translator's job, tested separately).
  EXPECT_TRUE(Contains(out, "__global__ void k(")) << out;
  EXPECT_TRUE(Contains(out, "float* a")) << out;
  EXPECT_FALSE(Contains(out, "__global float* a")) << out;
  EXPECT_TRUE(Contains(out, "__shared__ float tile[8];")) << out;
}

TEST(PrinterTest, CudaToOpenClSurface) {
  std::string out = Reprint(
      "__constant__ int lut[4] = {1, 2, 3, 4};"
      "__global__ void k(float* a) {"
      "  __shared__ float tile[8];"
      "  tile[0] = a[0];"
      "}",
      Dialect::kCUDA, Dialect::kOpenCL);
  EXPECT_TRUE(Contains(out, "__constant int lut[4] = {1, 2, 3, 4};")) << out;
  EXPECT_TRUE(Contains(out, "__kernel void k(")) << out;
  // Sema inferred the global pointee space; OpenCL output must spell it.
  EXPECT_TRUE(Contains(out, "__global float* a")) << out;
  EXPECT_TRUE(Contains(out, "__local float tile[8];")) << out;
}

TEST(PrinterTest, VectorLiteralSyntaxPerDialect) {
  std::string cl = Reprint(
      "__kernel void k(__global float4* o) {"
      "  o[0] = (float4)(1.0f, 2.0f, 3.0f, 4.0f);"
      "}",
      Dialect::kOpenCL, Dialect::kOpenCL);
  EXPECT_TRUE(Contains(cl, "(float4)(1.0f, 2.0f, 3.0f, 4.0f)")) << cl;

  std::string cu = Reprint(
      "__kernel void k(__global float4* o) {"
      "  o[0] = (float4)(1.0f, 2.0f, 3.0f, 4.0f);"
      "}",
      Dialect::kOpenCL, Dialect::kCUDA);
  EXPECT_TRUE(Contains(cu, "make_float4(1.0f, 2.0f, 3.0f, 4.0f)")) << cu;
}

TEST(PrinterTest, ControlFlowRoundTrip) {
  std::string out = Reprint(
      "__kernel void k(__global int* a, int n) {"
      "  for (int i = 0; i < n; ++i) {"
      "    if (a[i] > 0) a[i] = -a[i];"
      "    else a[i] = 0;"
      "  }"
      "  while (n > 0) n--;"
      "  do { n++; } while (n < 4);"
      "}",
      Dialect::kOpenCL, Dialect::kOpenCL);
  EXPECT_TRUE(Contains(out, "for (int i = 0; i < n; ++i)")) << out;
  EXPECT_TRUE(Contains(out, "while (n > 0)")) << out;
  EXPECT_TRUE(Contains(out, "do {")) << out;
  EXPECT_TRUE(Contains(out, "} while (n < 4);")) << out;
}

TEST(PrinterTest, StructPrinting) {
  std::string out = Reprint(
      "typedef struct { float x; float y[3]; } Pt;"
      "__kernel void k(__global Pt* p) { p[0].x = 1.0f; }",
      Dialect::kOpenCL, Dialect::kOpenCL);
  EXPECT_TRUE(Contains(out, "typedef struct {")) << out;
  EXPECT_TRUE(Contains(out, "float y[3];")) << out;
  EXPECT_TRUE(Contains(out, "} Pt;")) << out;
}

TEST(PrinterTest, TemplateFunctionPrintsOnlyInCuda) {
  std::string out = Reprint(
      "template <typename T> __device__ T ident(T a) { return a; }"
      "__global__ void k(float* o) { o[0] = ident<float>(o[0]); }",
      Dialect::kCUDA, Dialect::kCUDA);
  EXPECT_TRUE(Contains(out, "template <typename T>")) << out;
  EXPECT_TRUE(Contains(out, "ident<float>(")) << out;
}

TEST(PrinterTest, CStyleAndCppCasts) {
  std::string out = Reprint(
      "__global__ void k(int* x) {"
      "  float f = static_cast<float>(x[0]);"
      "  x[1] = (int)f;"
      "}",
      Dialect::kCUDA, Dialect::kCUDA);
  EXPECT_TRUE(Contains(out, "static_cast<float>(x[0])")) << out;
  EXPECT_TRUE(Contains(out, "(int)f")) << out;
}

TEST(PrinterTest, ReparsePrintedOutput) {
  // Printed OpenCL output must parse again (idempotent surface syntax).
  std::string src =
      "__kernel void k(__global float* a, __constant float* c, int n) {"
      "  __local float t[32];"
      "  int i = get_global_id(0);"
      "  t[i % 32] = a[i] + c[0];"
      "  barrier(CLK_LOCAL_MEM_FENCE);"
      "  if (i < n) a[i] = t[i % 32] * 0.5f;"
      "}";
  std::string out = Reprint(src, Dialect::kOpenCL, Dialect::kOpenCL);
  std::string out2 = Reprint(out, Dialect::kOpenCL, Dialect::kOpenCL);
  EXPECT_EQ(out, out2);
}

}  // namespace
}  // namespace bridgecl::lang
