#include <gtest/gtest.h>

#include <numeric>

#include "interp/executor.h"
#include "interp/module.h"
#include "simgpu/device.h"
#include "support/strings.h"
#include "translator/translate.h"

namespace bridgecl::translator {
namespace {

using interp::KernelArg;
using interp::Module;
using lang::Dialect;
using simgpu::Device;
using simgpu::Dim3;
using simgpu::TitanProfile;

bool Contains(const std::string& hay, const std::string& needle) {
  return hay.find(needle) != std::string::npos;
}

TranslationResult MustTranslateClToCu(const std::string& src,
                                      TranslateOptions opts = {}) {
  DiagnosticEngine diags;
  auto r = TranslateOpenClToCuda(src, diags, opts);
  EXPECT_TRUE(r.ok()) << diags.ToString();
  return r.ok() ? std::move(*r) : TranslationResult{};
}

TranslationResult MustTranslateCuToCl(const std::string& src,
                                      TranslateOptions opts = {}) {
  DiagnosticEngine diags;
  auto r = TranslateCudaToOpenCl(src, diags, opts);
  EXPECT_TRUE(r.ok()) << diags.ToString();
  return r.ok() ? std::move(*r) : TranslationResult{};
}

/// The translated output must itself compile in the target dialect.
void ExpectCompiles(const std::string& src, Dialect d) {
  DiagnosticEngine diags;
  auto m = Module::Compile(src, d, diags);
  EXPECT_TRUE(m.ok()) << "translated source does not compile:\n"
                      << diags.ToString() << "\n--- source ---\n"
                      << src;
}

// ===========================================================================
// OpenCL → CUDA
// ===========================================================================

TEST(ClToCuTest, WorkItemFunctionMapping) {
  auto r = MustTranslateClToCu(
      "__kernel void k(__global int* out, int n) {"
      "  int i = get_global_id(0);"
      "  int l = get_local_id(1);"
      "  int g = get_group_id(2);"
      "  int s = (int)get_local_size(0);"
      "  int t = (int)get_global_size(0);"
      "  if (i < n) out[i] = l + g + s + t;"
      "}");
  EXPECT_TRUE(Contains(r.source, "__global__ void k(")) << r.source;
  EXPECT_TRUE(Contains(r.source, "blockIdx.x * blockDim.x + threadIdx.x"))
      << r.source;
  EXPECT_TRUE(Contains(r.source, "threadIdx.y")) << r.source;
  EXPECT_TRUE(Contains(r.source, "blockIdx.z")) << r.source;
  EXPECT_TRUE(Contains(r.source, "blockDim.x")) << r.source;
  EXPECT_TRUE(Contains(r.source, "gridDim.x * blockDim.x")) << r.source;
  EXPECT_FALSE(Contains(r.source, "get_global_id")) << r.source;
  ExpectCompiles(r.source, Dialect::kCUDA);
}

TEST(ClToCuTest, BarrierAndFences) {
  auto r = MustTranslateClToCu(
      "__kernel void k(__global int* out) {"
      "  __local int t[8];"
      "  t[get_local_id(0)] = 1;"
      "  barrier(CLK_LOCAL_MEM_FENCE);"
      "  mem_fence(CLK_GLOBAL_MEM_FENCE);"
      "  out[0] = t[0];"
      "}");
  EXPECT_TRUE(Contains(r.source, "__syncthreads()")) << r.source;
  EXPECT_TRUE(Contains(r.source, "__threadfence_block()")) << r.source;
  EXPECT_TRUE(Contains(r.source, "__shared__ int t[8];")) << r.source;
  EXPECT_FALSE(Contains(r.source, "CLK_LOCAL_MEM_FENCE")) << r.source;
  ExpectCompiles(r.source, Dialect::kCUDA);
}

TEST(ClToCuTest, DynamicLocalParamsFollowFig5) {
  auto r = MustTranslateClToCu(
      "__kernel void k(int n, __local int* dyn1, __local float* dyn2,"
      "                __global int* out) {"
      "  dyn1[0] = n;"
      "  out[0] = dyn1[0];"
      "}");
  // Parameters become sizes; the arena is carved with offsets (Fig 5).
  EXPECT_TRUE(Contains(r.source, "size_t dyn1__size")) << r.source;
  EXPECT_TRUE(Contains(r.source, "size_t dyn2__size")) << r.source;
  EXPECT_TRUE(Contains(r.source,
                       "extern __shared__ char __OC2CU_shared_mem[];"))
      << r.source;
  EXPECT_TRUE(Contains(r.source, "int* dyn1 = (int*)(__OC2CU_shared_mem)"))
      << r.source;
  EXPECT_TRUE(Contains(
      r.source, "float* dyn2 = (float*)(__OC2CU_shared_mem + dyn1__size)"))
      << r.source;
  ASSERT_EQ(r.kernels.size(), 1u);
  const auto& info = r.kernels[0];
  EXPECT_EQ(info.original_param_count, 4);
  using Role = KernelTranslationInfo::ParamRole;
  EXPECT_EQ(info.param_roles[0], Role::kPlain);
  EXPECT_EQ(info.param_roles[1], Role::kDynLocalSize);
  EXPECT_EQ(info.param_roles[2], Role::kDynLocalSize);
  EXPECT_EQ(info.param_roles[3], Role::kPlain);
  ExpectCompiles(r.source, Dialect::kCUDA);
}

TEST(ClToCuTest, DynamicConstantParamsFollowFig5) {
  auto r = MustTranslateClToCu(
      "__kernel void k(__constant float* coef, __global float* out) {"
      "  out[0] = coef[0];"
      "}");
  EXPECT_TRUE(Contains(r.source, "__constant__ char __OC2CU_const_mem["))
      << r.source;
  EXPECT_TRUE(Contains(r.source, "size_t coef__size")) << r.source;
  EXPECT_TRUE(Contains(r.source, "float* coef = (float*)(__OC2CU_const_mem)"))
      << r.source;
  ASSERT_EQ(r.kernels.size(), 1u);
  EXPECT_EQ(r.kernels[0].param_roles[0],
            KernelTranslationInfo::ParamRole::kDynConstSize);
  ExpectCompiles(r.source, Dialect::kCUDA);
}

TEST(ClToCuTest, SwizzleAssignmentExpansion) {
  // The paper's §3.6 example: v1.lo = v2.lo; → v1.x = v2.x; v1.y = v2.y;
  auto r = MustTranslateClToCu(
      "__kernel void k(__global float4* a) {"
      "  float4 v1 = a[0];"
      "  float4 v2 = a[1];"
      "  v1.lo = v2.lo;"
      "  a[2] = v1;"
      "}");
  EXPECT_TRUE(Contains(r.source, "v1.x = v2.x;")) << r.source;
  EXPECT_TRUE(Contains(r.source, "v1.y = v2.y;")) << r.source;
  EXPECT_FALSE(Contains(r.source, ".lo")) << r.source;
  ExpectCompiles(r.source, Dialect::kCUDA);
}

TEST(ClToCuTest, NestedSwizzlesCompose) {
  // §3.6: "v.lo.x refers to the first component of the lower half of v" —
  // legal OpenCL, never legal CUDA. Composition gives plain .x/.w forms.
  auto r = MustTranslateClToCu(
      "__kernel void k(__global float4* a, __global float* out) {"
      "  float4 v = a[0];"
      "  out[0] = v.lo.x + v.hi.y;"
      "  out[1] = v.wzyx.lo.y;"
      "}");
  EXPECT_TRUE(Contains(r.source, "v.x + v.w")) << r.source;
  EXPECT_TRUE(Contains(r.source, "out[1] = v.z;")) << r.source;
  EXPECT_FALSE(Contains(r.source, ".lo")) << r.source;
  ExpectCompiles(r.source, Dialect::kCUDA);

  // And it executes identically.
  auto run = [&](const std::string& src, Dialect d) {
    Device dev(TitanProfile());
    DiagnosticEngine diags;
    auto m = Module::Compile(src, d, diags);
    EXPECT_TRUE(m.ok()) << diags.ToString();
    EXPECT_TRUE((*m)->LoadOn(dev).ok());
    auto va = dev.vm().AllocGlobal(16);
    auto vo = dev.vm().AllocGlobal(8);
    EXPECT_TRUE(va.ok() && vo.ok());
    float init[4] = {1, 2, 3, 4};
    std::memcpy(*dev.vm().Resolve(*va, 16), init, 16);
    interp::LaunchConfig cfg;
    cfg.grid = Dim3(1);
    cfg.block = Dim3(1);
    std::vector<KernelArg> args = {KernelArg::Pointer(*va),
                                   KernelArg::Pointer(*vo)};
    EXPECT_TRUE(interp::LaunchKernel(dev, **m, "k", cfg, args).ok());
    std::vector<float> out(2);
    std::memcpy(out.data(), *dev.vm().Resolve(*vo, 8), 8);
    return out;
  };
  const std::string cl_src =
      "__kernel void k(__global float4* a, __global float* out) {"
      "  float4 v = a[0];"
      "  out[0] = v.lo.x + v.hi.y;"
      "  out[1] = v.wzyx.lo.y;"
      "}";
  auto orig = run(cl_src, Dialect::kOpenCL);
  auto trans = run(r.source, Dialect::kCUDA);
  EXPECT_EQ(orig, trans);
  EXPECT_FLOAT_EQ(orig[0], 5.0f);  // v.x + v.w = 1 + 4
  EXPECT_FLOAT_EQ(orig[1], 3.0f);  // wzyx = {4,3,2,1}; .lo.y = 3
}

TEST(ClToCuTest, RvalueSwizzleBecomesConstructor) {
  auto r = MustTranslateClToCu(
      "__kernel void k(__global float4* a, __global float2* out) {"
      "  out[0] = a[0].hi;"
      "}");
  EXPECT_TRUE(Contains(r.source, "make_float2(a[0].z, a[0].w)")) << r.source;
  ExpectCompiles(r.source, Dialect::kCUDA);
}

TEST(ClToCuTest, DuplicatedComponentSwizzle) {
  // §3.6: "v.xx is a two-component vector expanded from the first
  // component of v" — allowed in OpenCL, not in CUDA.
  auto r = MustTranslateClToCu(
      "__kernel void k(__global float4* a, __global float2* out) {"
      "  out[0] = a[0].xx;"
      "}");
  EXPECT_TRUE(Contains(r.source, "make_float2(a[0].x, a[0].x)")) << r.source;
  ExpectCompiles(r.source, Dialect::kCUDA);
}

TEST(ClToCuTest, WideVectorsLoweredToStructs) {
  auto r = MustTranslateClToCu(
      "__kernel void k(__global float8* a, __global float* out) {"
      "  float8 v = a[0];"
      "  float8 w = v + v;"
      "  out[0] = w.s0 + w.s7;"
      "}");
  EXPECT_TRUE(Contains(r.source, "typedef struct {")) << r.source;
  EXPECT_TRUE(Contains(r.source, "} __oc2cu_float8;")) << r.source;
  EXPECT_TRUE(Contains(r.source, "__oc2cu_float8 v = a[0];")) << r.source;
  EXPECT_TRUE(Contains(r.source, "w.s0 = v.s0 + v.s0;")) << r.source;
  EXPECT_TRUE(Contains(r.source, "w.s7 = v.s7 + v.s7;")) << r.source;
  // No bare float8 remains once the struct spellings are accounted for.
  std::string stripped = ReplaceAll(r.source, "__oc2cu_float8", "");
  EXPECT_FALSE(Contains(stripped, "float8")) << r.source;
  ExpectCompiles(r.source, Dialect::kCUDA);
}

TEST(ClToCuTest, AtomicMapping) {
  auto r = MustTranslateClToCu(
      "__kernel void k(__global int* c, __global uint* u) {"
      "  atomic_add(c, 2);"
      "  atomic_inc(u);"
      "  atomic_cmpxchg(c, 0, 5);"
      "}");
  EXPECT_TRUE(Contains(r.source, "atomicAdd(c, 2)")) << r.source;
  EXPECT_TRUE(Contains(r.source, "atomicInc(u, 4294967295)")) << r.source;
  EXPECT_TRUE(Contains(r.source, "atomicCAS(c, 0, 5)")) << r.source;
  ExpectCompiles(r.source, Dialect::kCUDA);
}

TEST(ClToCuTest, ImagesBecomeWrapperCalls) {
  auto r = MustTranslateClToCu(
      "__kernel void k(__read_only image2d_t img, sampler_t s,"
      "                __global float4* out) {"
      "  out[0] = read_imagef(img, s, (int2)(0, 0));"
      "}");
  EXPECT_TRUE(Contains(r.source, "__oc2cu_read_imagef(img, s,")) << r.source;
  ExpectCompiles(r.source, Dialect::kCUDA);
}

TEST(ClToCuTest, NonLiteralDimensionIsUntranslatable) {
  DiagnosticEngine diags;
  auto r = TranslateOpenClToCuda(
      "__kernel void k(__global int* out, int d) {"
      "  out[0] = (int)get_global_id(d);"
      "}",
      diags);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUntranslatable);
}

TEST(ClToCuTest, EndToEndEquivalence) {
  // Run the original under OpenCL and the translated code under CUDA and
  // compare the output buffers bit-for-bit.
  const std::string cl_src =
      "__kernel void work(__global float* data, __local float* tile,"
      "                   __constant float* coef, int n) {"
      "  int i = get_global_id(0);"
      "  int l = get_local_id(0);"
      "  tile[l] = data[i] * coef[0];"
      "  barrier(CLK_LOCAL_MEM_FENCE);"
      "  int peer = (int)get_local_size(0) - 1 - l;"
      "  if (i < n) data[i] = tile[peer] + coef[1];"
      "}";
  const int n = 64;
  const int block = 16;

  // --- native OpenCL execution ---
  Device dev_cl(TitanProfile());
  std::vector<float> init(n);
  std::iota(init.begin(), init.end(), 1.0f);
  std::vector<float> coef = {2.0f, 0.5f};
  std::vector<float> out_cl;
  {
    DiagnosticEngine diags;
    auto m = Module::Compile(cl_src, Dialect::kOpenCL, diags);
    ASSERT_TRUE(m.ok()) << diags.ToString();
    ASSERT_TRUE((*m)->LoadOn(dev_cl).ok());
    auto data = dev_cl.vm().AllocGlobal(n * 4);
    auto cbuf = dev_cl.vm().AllocGlobal(2 * 4);
    ASSERT_TRUE(data.ok() && cbuf.ok());
    std::memcpy(*dev_cl.vm().Resolve(*data, n * 4), init.data(), n * 4);
    std::memcpy(*dev_cl.vm().Resolve(*cbuf, 8), coef.data(), 8);
    interp::LaunchConfig cfg;
    cfg.grid = Dim3(n / block);
    cfg.block = Dim3(block);
    std::vector<KernelArg> args = {
        KernelArg::Pointer(*data), KernelArg::LocalAlloc(block * 4),
        KernelArg::Pointer(*cbuf), KernelArg::Value<int>(n)};
    auto lr = interp::LaunchKernel(dev_cl, **m, "work", cfg, args);
    ASSERT_TRUE(lr.ok()) << lr.status().ToString();
    out_cl.resize(n);
    std::memcpy(out_cl.data(), *dev_cl.vm().Resolve(*data, n * 4), n * 4);
  }

  // --- translated CUDA execution ---
  auto tr = MustTranslateClToCu(cl_src);
  ASSERT_FALSE(tr.source.empty());
  Device dev_cu(TitanProfile());
  std::vector<float> out_cu;
  {
    DiagnosticEngine diags;
    auto m = Module::Compile(tr.source, Dialect::kCUDA, diags);
    ASSERT_TRUE(m.ok()) << diags.ToString() << "\n" << tr.source;
    ASSERT_TRUE((*m)->LoadOn(dev_cu).ok());
    auto data = dev_cu.vm().AllocGlobal(n * 4);
    ASSERT_TRUE(data.ok());
    std::memcpy(*dev_cu.vm().Resolve(*data, n * 4), init.data(), n * 4);
    // The wrapper copies the dynamic-constant buffer into the arena.
    auto sym = (*m)->FindSymbol("__OC2CU_const_mem");
    ASSERT_TRUE(sym.ok());
    std::memcpy(*dev_cu.vm().Resolve(sym->va, 8), coef.data(), 8);
    interp::LaunchConfig cfg;
    cfg.grid = Dim3(n / block);
    cfg.block = Dim3(block);
    cfg.dynamic_shared_bytes = block * 4;  // wrapper-computed total
    size_t tile_size = block * 4;
    size_t coef_size = 8;
    std::vector<KernelArg> args = {
        KernelArg::Pointer(*data), KernelArg::Value<size_t>(tile_size),
        KernelArg::Value<size_t>(coef_size), KernelArg::Value<int>(n)};
    auto lr = interp::LaunchKernel(dev_cu, **m, "work", cfg, args);
    ASSERT_TRUE(lr.ok()) << lr.status().ToString() << "\n" << tr.source;
    out_cu.resize(n);
    std::memcpy(out_cu.data(), *dev_cu.vm().Resolve(*data, n * 4), n * 4);
  }
  EXPECT_EQ(out_cl, out_cu);
}

// ===========================================================================
// CUDA → OpenCL
// ===========================================================================

TEST(CuToClTest, BuiltinVariableMapping) {
  auto r = MustTranslateCuToCl(
      "__global__ void k(int* out, int n) {"
      "  int i = blockIdx.x * blockDim.x + threadIdx.x;"
      "  if (i < n) out[i] = (int)gridDim.x;"
      "}");
  EXPECT_TRUE(Contains(r.source, "__kernel void k(")) << r.source;
  EXPECT_TRUE(Contains(r.source, "__global int* out")) << r.source;
  EXPECT_TRUE(Contains(
      r.source, "get_group_id(0) * get_local_size(0) + get_local_id(0)"))
      << r.source;
  EXPECT_TRUE(Contains(r.source, "get_num_groups(0)")) << r.source;
  ExpectCompiles(r.source, Dialect::kOpenCL);
}

TEST(CuToClTest, SyncAndSharedMapping) {
  auto r = MustTranslateCuToCl(
      "__global__ void k(float* d) {"
      "  __shared__ float tile[32];"
      "  tile[threadIdx.x] = d[threadIdx.x];"
      "  __syncthreads();"
      "  d[threadIdx.x] = tile[31 - threadIdx.x];"
      "}");
  EXPECT_TRUE(Contains(r.source, "__local float tile[32];")) << r.source;
  EXPECT_TRUE(Contains(r.source, "barrier(CLK_LOCAL_MEM_FENCE)")) << r.source;
  ExpectCompiles(r.source, Dialect::kOpenCL);
}

TEST(CuToClTest, ExternSharedBecomesParam) {
  auto r = MustTranslateCuToCl(
      "__global__ void k(float* d) {"
      "  extern __shared__ float tile[];"
      "  tile[threadIdx.x] = d[threadIdx.x];"
      "  __syncthreads();"
      "  d[threadIdx.x] = tile[0];"
      "}");
  EXPECT_TRUE(Contains(r.source, "__local float* tile")) << r.source;
  EXPECT_FALSE(Contains(r.source, "extern")) << r.source;
  ASSERT_EQ(r.kernels.size(), 1u);
  EXPECT_TRUE(r.kernels[0].has_dynamic_shared);
  EXPECT_EQ(r.kernels[0].original_param_count, 1);
  ExpectCompiles(r.source, Dialect::kOpenCL);
}

TEST(CuToClTest, TextureBecomesImageAndSampler) {
  auto r = MustTranslateCuToCl(
      "texture<float, 2, cudaReadModeElementType> tex;"
      "__global__ void k(float* out, int w) {"
      "  int x = threadIdx.x;"
      "  out[x] = tex2D(tex, (float)x, 1.0f);"
      "}");
  EXPECT_FALSE(Contains(r.source, "texture<")) << r.source;
  EXPECT_TRUE(Contains(r.source, "image2d_t tex__img")) << r.source;
  EXPECT_TRUE(Contains(r.source, "sampler_t tex__sampler")) << r.source;
  EXPECT_TRUE(Contains(r.source, "read_imagef(tex__img, tex__sampler,"))
      << r.source;
  EXPECT_TRUE(Contains(r.source, ".x")) << r.source;  // width-1 narrowing
  ASSERT_EQ(r.kernels.size(), 1u);
  ASSERT_EQ(r.kernels[0].texture_params.size(), 1u);
  EXPECT_EQ(r.kernels[0].texture_params[0], "tex");
  ExpectCompiles(r.source, Dialect::kOpenCL);
}

TEST(CuToClTest, DeviceGlobalBecomesParam) {
  auto r = MustTranslateCuToCl(
      "__device__ float bias[16];"
      "__device__ int flag;"
      "__global__ void k(float* out) {"
      "  out[threadIdx.x] = bias[threadIdx.x];"
      "  if (threadIdx.x == 0) flag = 1;"
      "}");
  EXPECT_TRUE(Contains(r.source, "__global float* bias")) << r.source;
  EXPECT_TRUE(Contains(r.source, "__global int* flag")) << r.source;
  EXPECT_TRUE(Contains(r.source, "(*flag) = 1")) << r.source;
  ASSERT_EQ(r.kernels.size(), 1u);
  ASSERT_EQ(r.kernels[0].symbol_params.size(), 2u);
  EXPECT_EQ(r.kernels[0].symbol_params[0].name, "bias");
  EXPECT_EQ(r.kernels[0].symbol_params[0].byte_size, 64u);
  EXPECT_FALSE(r.kernels[0].symbol_params[0].is_constant);
  ExpectCompiles(r.source, Dialect::kOpenCL);
}

TEST(CuToClTest, RuntimeInitConstantBecomesParam) {
  auto r = MustTranslateCuToCl(
      "__constant__ float lut_static[2] = {1.0f, 2.0f};"
      "__constant__ float lut_runtime[4];"
      "__global__ void k(float* out) {"
      "  out[0] = lut_static[0] + lut_runtime[0];"
      "}");
  // Statically initialized constants translate directly (§4.2).
  EXPECT_TRUE(Contains(r.source, "__constant float lut_static[2]"))
      << r.source;
  // Runtime-initialized constants become dynamic buffers.
  EXPECT_TRUE(Contains(r.source, "__constant float* lut_runtime"))
      << r.source;
  ASSERT_EQ(r.kernels.size(), 1u);
  ASSERT_EQ(r.kernels[0].symbol_params.size(), 1u);
  EXPECT_TRUE(r.kernels[0].symbol_params[0].is_constant);
  ExpectCompiles(r.source, Dialect::kOpenCL);
}

TEST(CuToClTest, CppFeaturesLowered) {
  auto r = MustTranslateCuToCl(
      "template <typename T> __device__ T tmax(T a, T b) {"
      "  return a > b ? a : b;"
      "}"
      "__device__ void bump(float& x) { x = x + 1.0f; }"
      "__global__ void k(float* out, int* iout) {"
      "  float v = tmax<float>(out[0], out[1]);"
      "  iout[0] = tmax<int>(iout[1], iout[2]);"
      "  bump(v);"
      "  out[2] = v + static_cast<float>(iout[0]);"
      "}");
  EXPECT_TRUE(Contains(r.source, "float tmax_float(float a, float b)"))
      << r.source;
  EXPECT_TRUE(Contains(r.source, "int tmax_int(int a, int b)")) << r.source;
  EXPECT_FALSE(Contains(r.source, "template")) << r.source;
  EXPECT_TRUE(Contains(r.source, "void bump(float* x)")) << r.source;
  EXPECT_TRUE(Contains(r.source, "(*x) = (*x) + 1.0f")) << r.source;
  EXPECT_TRUE(Contains(r.source, "bump(&v)")) << r.source;
  EXPECT_FALSE(Contains(r.source, "static_cast")) << r.source;
  EXPECT_TRUE(Contains(r.source, "(float)")) << r.source;
  ExpectCompiles(r.source, Dialect::kOpenCL);
}

TEST(CuToClTest, MathAndMakeVectorMapping) {
  auto r = MustTranslateCuToCl(
      "__global__ void k(float* out, float4* v) {"
      "  out[0] = sqrtf(out[1]) + __expf(out[2]) + fminf(out[3], 1.0f);"
      "  v[0] = make_float4(1.0f, 2.0f, 3.0f, 4.0f);"
      "}");
  EXPECT_TRUE(Contains(r.source, "sqrt(")) << r.source;
  EXPECT_TRUE(Contains(r.source, "native_exp(")) << r.source;
  EXPECT_TRUE(Contains(r.source, "fmin(")) << r.source;
  EXPECT_TRUE(Contains(r.source, "(float4)(1.0f, 2.0f, 3.0f, 4.0f)"))
      << r.source;
  EXPECT_FALSE(Contains(r.source, "make_float4")) << r.source;
  ExpectCompiles(r.source, Dialect::kOpenCL);
}

TEST(CuToClTest, OneComponentVectorAndLonglong) {
  auto r = MustTranslateCuToCl(
      "__global__ void k(float1* a, longlong2* b) {"
      "  float1 v = a[0];"
      "  float w = v.x;"
      "  a[1] = v;"
      "  b[0].x = b[1].x;"
      "  a[2].x = w;"
      "}");
  EXPECT_FALSE(Contains(r.source, "float1")) << r.source;
  EXPECT_TRUE(Contains(r.source, "__global float* a")) << r.source;
  EXPECT_TRUE(Contains(r.source, "long2")) << r.source;
  EXPECT_FALSE(Contains(r.source, "longlong")) << r.source;
  ExpectCompiles(r.source, Dialect::kOpenCL);
}

TEST(CuToClTest, HardwareBuiltinsUntranslatable) {
  for (const char* body : {
           "out[0] = __shfl(1, 0);",
           "out[0] = __all(1);",
           "out[0] = (int)clock();",
           "assert(out[0] == 0);",
           "printf(\"%d\", out[0]);",
           "out[0] = warpSize;",
       }) {
    DiagnosticEngine diags;
    std::string src =
        std::string("__global__ void k(int* out) {") + body + "}";
    auto r = TranslateCudaToOpenCl(src, diags);
    ASSERT_FALSE(r.ok()) << body;
    EXPECT_EQ(r.status().code(), StatusCode::kUntranslatable) << body;
  }
}

TEST(CuToClTest, AtomicIncRejectedWithoutEmulation) {
  DiagnosticEngine diags;
  auto r = TranslateCudaToOpenCl(
      "__global__ void k(unsigned int* c) { atomicInc(c, 16u); }", diags);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUntranslatable);
}

TEST(CuToClTest, AtomicEmulationExtension) {
  TranslateOptions opts;
  opts.allow_atomic_emulation = true;
  auto r = MustTranslateCuToCl(
      "__global__ void k(unsigned int* c) { atomicInc(c, 3u); }", opts);
  EXPECT_TRUE(Contains(r.source, "__cu2cl_atomicInc(c, 3u)")) << r.source;
  EXPECT_TRUE(Contains(r.source, "atomic_cmpxchg")) << r.source;
  ExpectCompiles(r.source, Dialect::kOpenCL);
}

TEST(CuToClTest, StructWithPointersRejected) {
  // The heartwall failure (§6.3).
  DiagnosticEngine diags;
  auto r = TranslateCudaToOpenCl(
      "struct Args { float* data; int n; };"
      "__global__ void k(struct Args a) { a.data[0] = 1.0f; }",
      diags);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUntranslatable);
  EXPECT_TRUE(Contains(diags.ToString(), "struct containing device"))
      << diags.ToString();
}

TEST(CuToClTest, MultiSpacePointerSplitInStraightLine) {
  // §3.6: "our translator generates a new pointer variable for each
  // address space" — the straight-line reuse pattern splits cleanly.
  auto r = MustTranslateCuToCl(
      "__global__ void k(float* g) {"
      "  __shared__ float tile[8];"
      "  int t = (int)threadIdx.x;"
      "  float* p = g;"
      "  tile[t] = p[t] * 2.0f;"
      "  __syncthreads();"
      "  p = tile;"        // same pointer, different space
      "  g[t] = p[7 - t];"
      "}");
  EXPECT_TRUE(Contains(r.source, "__global float* p__g0 = g;")) << r.source;
  EXPECT_TRUE(Contains(r.source, "__local float* p__l1 = tile;"))
      << r.source;
  EXPECT_TRUE(Contains(r.source, "p__g0[t]")) << r.source;
  EXPECT_TRUE(Contains(r.source, "p__l1[7 - t]")) << r.source;
  ExpectCompiles(r.source, Dialect::kOpenCL);
}

TEST(CuToClTest, MultiSpaceSplitExecutesIdentically) {
  const std::string cu_src =
      "__global__ void k(float* g) {"
      "  __shared__ float tile[8];"
      "  int t = (int)threadIdx.x;"
      "  float* p = g;"
      "  tile[t] = p[t] * 2.0f;"
      "  __syncthreads();"
      "  p = tile;"
      "  g[t] = p[7 - t] + 1.0f;"
      "}";
  auto run = [&](const std::string& src, Dialect d) {
    Device dev(TitanProfile());
    DiagnosticEngine diags;
    auto m = Module::Compile(src, d, diags);
    EXPECT_TRUE(m.ok()) << diags.ToString() << "\n" << src;
    EXPECT_TRUE((*m)->LoadOn(dev).ok());
    auto data = dev.vm().AllocGlobal(8 * 4);
    EXPECT_TRUE(data.ok());
    float init[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    std::memcpy(*dev.vm().Resolve(*data, 32), init, 32);
    interp::LaunchConfig cfg;
    cfg.grid = Dim3(1);
    cfg.block = Dim3(8);
    std::vector<KernelArg> args = {KernelArg::Pointer(*data)};
    EXPECT_TRUE(interp::LaunchKernel(dev, **m, "k", cfg, args).ok());
    std::vector<float> out(8);
    std::memcpy(out.data(), *dev.vm().Resolve(*data, 32), 32);
    return out;
  };
  auto cu = run(cu_src, Dialect::kCUDA);
  auto tr = MustTranslateCuToCl(cu_src);
  auto cl = run(tr.source, Dialect::kOpenCL);
  EXPECT_EQ(cu, cl);
  EXPECT_FLOAT_EQ(cu[0], 17.0f);  // 2*8 + 1
}

TEST(CuToClTest, MultiSpacePointerInControlFlowRejected) {
  DiagnosticEngine diags;
  auto r = TranslateCudaToOpenCl(
      "__global__ void k(float* g, int cond) {"
      "  __shared__ float tile[8];"
      "  float* p = g;"
      "  if (cond) { p = tile; }"  // reaching definition is ambiguous
      "  p[0] = 1.0f;"
      "}",
      diags);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUntranslatable);
}

TEST(CuToClTest, HelperSpecializedPerAddressSpace) {
  auto r = MustTranslateCuToCl(
      "__device__ float first(float* p) { return p[0]; }"
      "__global__ void k(float* g, float* out) {"
      "  __shared__ float tile[4];"
      "  tile[threadIdx.x] = g[threadIdx.x];"
      "  __syncthreads();"
      "  out[0] = first(g) + first(tile);"
      "}");
  EXPECT_TRUE(Contains(r.source, "first__g(__global float* p)")) << r.source;
  EXPECT_TRUE(Contains(r.source, "first__l(__local float* p)")) << r.source;
  EXPECT_TRUE(Contains(r.source, "first__g(g)")) << r.source;
  EXPECT_TRUE(Contains(r.source, "first__l(tile)")) << r.source;
  ExpectCompiles(r.source, Dialect::kOpenCL);
}

TEST(CuToClTest, EndToEndEquivalence) {
  const std::string cu_src =
      "__device__ float scale(float v, float s) { return v * s; }"
      "__global__ void work(float* data, int n) {"
      "  __shared__ float tile[16];"
      "  int i = blockIdx.x * blockDim.x + threadIdx.x;"
      "  int l = threadIdx.x;"
      "  tile[l] = scale(data[i], 3.0f);"
      "  __syncthreads();"
      "  if (i < n) data[i] = tile[15 - l] + 1.0f;"
      "}";
  const int n = 64, block = 16;
  std::vector<float> init(n);
  std::iota(init.begin(), init.end(), 0.0f);

  auto run = [&](const std::string& src, Dialect d) {
    Device dev(TitanProfile());
    DiagnosticEngine diags;
    auto m = Module::Compile(src, d, diags);
    EXPECT_TRUE(m.ok()) << diags.ToString() << "\n" << src;
    EXPECT_TRUE((*m)->LoadOn(dev).ok());
    auto data = dev.vm().AllocGlobal(n * 4);
    EXPECT_TRUE(data.ok());
    std::memcpy(*dev.vm().Resolve(*data, n * 4), init.data(), n * 4);
    interp::LaunchConfig cfg;
    cfg.grid = Dim3(n / block);
    cfg.block = Dim3(block);
    std::vector<KernelArg> args = {KernelArg::Pointer(*data),
                                   KernelArg::Value<int>(n)};
    auto lr = interp::LaunchKernel(dev, **m, "work", cfg, args);
    EXPECT_TRUE(lr.ok()) << lr.status().ToString();
    std::vector<float> out(n);
    std::memcpy(out.data(), *dev.vm().Resolve(*data, n * 4), n * 4);
    return out;
  };

  std::vector<float> out_cu = run(cu_src, Dialect::kCUDA);
  auto tr = MustTranslateCuToCl(cu_src);
  std::vector<float> out_cl = run(tr.source, Dialect::kOpenCL);
  EXPECT_EQ(out_cu, out_cl);
}

TEST(CuToClTest, RoundTripThroughBothTranslators) {
  // OpenCL → CUDA → OpenCL must still compile and keep the kernel shape.
  const std::string cl_src =
      "__kernel void k(__global float* a, int n) {"
      "  int i = get_global_id(0);"
      "  if (i < n) a[i] = a[i] * 2.0f + 1.0f;"
      "}";
  auto cu = MustTranslateClToCu(cl_src);
  auto cl = MustTranslateCuToCl(cu.source);
  EXPECT_TRUE(Contains(cl.source, "__kernel void k(")) << cl.source;
  EXPECT_TRUE(Contains(cl.source, "get_local_id(0)")) << cl.source;
  ExpectCompiles(cl.source, Dialect::kOpenCL);
}

}  // namespace
}  // namespace bridgecl::translator
