// End-to-end tests of the hybrid wrapper libraries: the same host-driver
// logic runs against a native binding and against the paper's wrapper
// binding, and results must agree bit-for-bit.
#include <gtest/gtest.h>

#include <numeric>

#include "cl2cu/cl_on_cuda.h"
#include "cu2cl/cuda_on_cl.h"
#include "mcuda/cuda_api.h"
#include "mocl/cl_api.h"
#include "simgpu/device.h"

namespace bridgecl {
namespace {

using mcuda::LaunchArg;
using mcuda::MemcpyKind;
using mocl::ClMem;
using mocl::MemFlags;
using simgpu::Device;
using simgpu::Dim3;
using simgpu::TitanProfile;

// ---------------------------------------------------------------------------
// A reusable OpenCL host driver (the "untouched host code" of §3.2). It is
// written once against the abstract API and runs under both bindings.
// ---------------------------------------------------------------------------
StatusOr<std::vector<float>> RunClVadd(mocl::OpenClApi& cl, int n) {
  const char* src =
      "__kernel void vadd(__global float* a, __global float* b,"
      "                   __global float* c, int n) {"
      "  int i = get_global_id(0);"
      "  if (i < n) c[i] = a[i] + b[i];"
      "}";
  std::vector<float> a(n), b(n), c(n);
  for (int i = 0; i < n; ++i) {
    a[i] = 0.25f * i;
    b[i] = 1.5f * i;
  }
  BRIDGECL_ASSIGN_OR_RETURN(auto prog, cl.CreateProgramWithSource(src));
  BRIDGECL_RETURN_IF_ERROR(cl.BuildProgram(prog));
  BRIDGECL_ASSIGN_OR_RETURN(auto kernel, cl.CreateKernel(prog, "vadd"));
  BRIDGECL_ASSIGN_OR_RETURN(
      ClMem ma, cl.CreateBuffer(MemFlags::kReadOnly, n * 4, a.data()));
  BRIDGECL_ASSIGN_OR_RETURN(
      ClMem mb, cl.CreateBuffer(MemFlags::kReadOnly, n * 4, b.data()));
  BRIDGECL_ASSIGN_OR_RETURN(
      ClMem mc, cl.CreateBuffer(MemFlags::kWriteOnly, n * 4, nullptr));
  BRIDGECL_RETURN_IF_ERROR(cl.SetKernelArg(kernel, 0, sizeof(ClMem), &ma));
  BRIDGECL_RETURN_IF_ERROR(cl.SetKernelArg(kernel, 1, sizeof(ClMem), &mb));
  BRIDGECL_RETURN_IF_ERROR(cl.SetKernelArg(kernel, 2, sizeof(ClMem), &mc));
  BRIDGECL_RETURN_IF_ERROR(cl.SetKernelArg(kernel, 3, sizeof(int), &n));
  size_t gws = n, lws = 32;
  BRIDGECL_RETURN_IF_ERROR(cl.EnqueueNDRangeKernel(kernel, 1, &gws, &lws));
  BRIDGECL_RETURN_IF_ERROR(cl.EnqueueReadBuffer(mc, 0, n * 4, c.data()));
  return c;
}

TEST(Cl2CuTest, VaddMatchesNativeOpenCl) {
  const int n = 128;
  Device dev_native(TitanProfile());
  auto native = mocl::CreateNativeClApi(dev_native);
  auto r_native = RunClVadd(*native, n);
  ASSERT_TRUE(r_native.ok()) << r_native.status().ToString();

  Device dev_wrapped(TitanProfile());
  auto cuda = mcuda::CreateNativeCudaApi(dev_wrapped);
  auto wrapped = cl2cu::CreateClOnCudaApi(*cuda);
  auto r_wrapped = RunClVadd(*wrapped, n);
  ASSERT_TRUE(r_wrapped.ok()) << r_wrapped.status().ToString();

  EXPECT_EQ(*r_native, *r_wrapped);
}

TEST(Cl2CuTest, DynamicLocalAndConstantThroughFig5) {
  // Exercises the full Fig 5 path: two dynamic __local objects plus a
  // dynamic __constant object, under both bindings.
  const char* src =
      "__kernel void mixup(__global float* data, __local float* t1,"
      "                    __local float* t2, __constant float* coef) {"
      "  int l = get_local_id(0);"
      "  int i = get_global_id(0);"
      "  t1[l] = data[i] * coef[0];"
      "  t2[l] = data[i] + coef[1];"
      "  barrier(CLK_LOCAL_MEM_FENCE);"
      "  int n = (int)get_local_size(0);"
      "  data[i] = t1[n - 1 - l] + t2[(l + 1) % n];"
      "}";
  const int n = 32, block = 8;
  std::vector<float> init(n);
  std::iota(init.begin(), init.end(), 1.0f);
  std::vector<float> coef = {3.0f, 10.0f};

  auto run = [&](mocl::OpenClApi& cl) -> StatusOr<std::vector<float>> {
    BRIDGECL_ASSIGN_OR_RETURN(auto prog, cl.CreateProgramWithSource(src));
    BRIDGECL_RETURN_IF_ERROR(cl.BuildProgram(prog));
    BRIDGECL_ASSIGN_OR_RETURN(auto kernel, cl.CreateKernel(prog, "mixup"));
    BRIDGECL_ASSIGN_OR_RETURN(
        ClMem data, cl.CreateBuffer(MemFlags::kReadWrite, n * 4,
                                    init.data()));
    BRIDGECL_ASSIGN_OR_RETURN(
        ClMem cbuf, cl.CreateBuffer(MemFlags::kReadOnly, 8, coef.data()));
    BRIDGECL_RETURN_IF_ERROR(cl.SetKernelArg(kernel, 0, sizeof(ClMem),
                                             &data));
    BRIDGECL_RETURN_IF_ERROR(cl.SetKernelArg(kernel, 1, block * 4, nullptr));
    BRIDGECL_RETURN_IF_ERROR(cl.SetKernelArg(kernel, 2, block * 4, nullptr));
    BRIDGECL_RETURN_IF_ERROR(cl.SetKernelArg(kernel, 3, sizeof(ClMem),
                                             &cbuf));
    size_t gws = n, lws = block;
    BRIDGECL_RETURN_IF_ERROR(cl.EnqueueNDRangeKernel(kernel, 1, &gws, &lws));
    std::vector<float> out(n);
    BRIDGECL_RETURN_IF_ERROR(cl.EnqueueReadBuffer(data, 0, n * 4,
                                                  out.data()));
    return out;
  };

  Device dev_native(TitanProfile());
  auto native = mocl::CreateNativeClApi(dev_native);
  auto r_native = run(*native);
  ASSERT_TRUE(r_native.ok()) << r_native.status().ToString();

  Device dev_wrapped(TitanProfile());
  auto cuda = mcuda::CreateNativeCudaApi(dev_wrapped);
  auto wrapped = cl2cu::CreateClOnCudaApi(*cuda);
  auto r_wrapped = run(*wrapped);
  ASSERT_TRUE(r_wrapped.ok()) << r_wrapped.status().ToString();

  EXPECT_EQ(*r_native, *r_wrapped);
}

TEST(Cl2CuTest, ImageThroughCLImage) {
  const char* src =
      "__kernel void sample(__read_only image2d_t img, sampler_t s,"
      "                     __global float* out) {"
      "  int x = get_global_id(0);"
      "  float4 t = read_imagef(img, s, (int2)(x, 0));"
      "  out[x] = t.x * 2.0f;"
      "}";
  std::vector<float> texels = {1, 2, 3, 4};
  auto run = [&](mocl::OpenClApi& cl) -> StatusOr<std::vector<float>> {
    BRIDGECL_ASSIGN_OR_RETURN(auto prog, cl.CreateProgramWithSource(src));
    BRIDGECL_RETURN_IF_ERROR(cl.BuildProgram(prog));
    BRIDGECL_ASSIGN_OR_RETURN(auto kernel, cl.CreateKernel(prog, "sample"));
    mocl::ClImageFormat fmt;
    fmt.elem = lang::ScalarKind::kFloat;
    fmt.channels = 1;
    BRIDGECL_ASSIGN_OR_RETURN(
        ClMem img, cl.CreateImage2D(MemFlags::kReadOnly, fmt, 4, 1,
                                    texels.data()));
    BRIDGECL_ASSIGN_OR_RETURN(uint64_t sampler, cl.CreateSampler({}));
    BRIDGECL_ASSIGN_OR_RETURN(
        ClMem out, cl.CreateBuffer(MemFlags::kWriteOnly, 16, nullptr));
    BRIDGECL_RETURN_IF_ERROR(cl.SetKernelArg(kernel, 0, sizeof(ClMem), &img));
    BRIDGECL_RETURN_IF_ERROR(
        cl.SetKernelArg(kernel, 1, sizeof(uint64_t), &sampler));
    BRIDGECL_RETURN_IF_ERROR(cl.SetKernelArg(kernel, 2, sizeof(ClMem), &out));
    size_t gws = 4, lws = 4;
    BRIDGECL_RETURN_IF_ERROR(cl.EnqueueNDRangeKernel(kernel, 1, &gws, &lws));
    std::vector<float> result(4);
    BRIDGECL_RETURN_IF_ERROR(cl.EnqueueReadBuffer(out, 0, 16,
                                                  result.data()));
    return result;
  };
  Device dev_native(TitanProfile());
  auto native = mocl::CreateNativeClApi(dev_native);
  auto r_native = run(*native);
  ASSERT_TRUE(r_native.ok()) << r_native.status().ToString();
  Device dev_wrapped(TitanProfile());
  auto cuda = mcuda::CreateNativeCudaApi(dev_wrapped);
  auto wrapped = cl2cu::CreateClOnCudaApi(*cuda);
  auto r_wrapped = run(*wrapped);
  ASSERT_TRUE(r_wrapped.ok()) << r_wrapped.status().ToString();
  EXPECT_EQ(*r_native, *r_wrapped);
  EXPECT_FLOAT_EQ((*r_wrapped)[2], 6.0f);
}

TEST(Cl2CuTest, DoubleArgDoesNotCollideWithImageHandles) {
  // Regression: a double kernel argument of exactly 2.0 has the bit
  // pattern 0x4000000000000000, which coincides with the wrapper's first
  // image-handle id. The wrapper must identify image parameters from the
  // translation metadata, never from the argument's value.
  Device dev(TitanProfile());
  auto cuda = mcuda::CreateNativeCudaApi(dev);
  auto cl = cl2cu::CreateClOnCudaApi(*cuda);
  auto prog = cl->CreateProgramWithSource(
      "__kernel void scale_img(__read_only image2d_t img, sampler_t s,"
      "                        __global double* out, double factor) {"
      "  float4 t = read_imagef(img, s, (int2)(0, 0));"
      "  out[0] = (double)t.x * factor;"
      "}");
  ASSERT_TRUE(prog.ok());
  ASSERT_TRUE(cl->BuildProgram(*prog).ok());
  auto kernel = cl->CreateKernel(*prog, "scale_img");
  ASSERT_TRUE(kernel.ok());
  mocl::ClImageFormat fmt;
  fmt.elem = lang::ScalarKind::kFloat;
  fmt.channels = 1;
  float texel = 3.0f;
  auto img = cl->CreateImage2D(MemFlags::kReadOnly, fmt, 1, 1, &texel);
  ASSERT_TRUE(img.ok());
  auto sampler = cl->CreateSampler({});
  ASSERT_TRUE(sampler.ok());
  auto out = cl->CreateBuffer(MemFlags::kWriteOnly, 8, nullptr);
  ASSERT_TRUE(out.ok());
  double factor = 2.0;  // bit pattern == first image id
  ASSERT_TRUE(cl->SetKernelArg(*kernel, 0, sizeof(ClMem), &*img).ok());
  ASSERT_TRUE(cl->SetKernelArg(*kernel, 1, sizeof(uint64_t), &*sampler).ok());
  ASSERT_TRUE(cl->SetKernelArg(*kernel, 2, sizeof(ClMem), &*out).ok());
  ASSERT_TRUE(cl->SetKernelArg(*kernel, 3, sizeof(double), &factor).ok());
  size_t one = 1;
  ASSERT_TRUE(cl->EnqueueNDRangeKernel(*kernel, 1, &one, &one).ok());
  double got = 0;
  ASSERT_TRUE(cl->EnqueueReadBuffer(*out, 0, 8, &got).ok());
  EXPECT_DOUBLE_EQ(got, 6.0);
}

TEST(Cl2CuTest, SubDevicesUnimplementable) {
  Device dev(TitanProfile());
  auto cuda = mcuda::CreateNativeCudaApi(dev);
  auto wrapped = cl2cu::CreateClOnCudaApi(*cuda);
  auto r = wrapped->CreateSubDevices(2);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnimplemented);
}

TEST(Cl2CuTest, RunsUnderCudaBankMode) {
  // §6.2: an OpenCL app executed through the CUDA wrapper inherits CUDA's
  // 64-bit shared-memory bank mode — the FT speedup mechanism.
  Device dev(TitanProfile());
  auto cuda = mcuda::CreateNativeCudaApi(dev);
  auto wrapped = cl2cu::CreateClOnCudaApi(*cuda);
  (void)wrapped;
  EXPECT_EQ(dev.bank_mode(), simgpu::BankMode::k64Bit);
}

TEST(Cl2CuTest, BuildFailurePropagates) {
  Device dev(TitanProfile());
  auto cuda = mcuda::CreateNativeCudaApi(dev);
  auto wrapped = cl2cu::CreateClOnCudaApi(*cuda);
  auto prog = wrapped->CreateProgramWithSource(
      "__kernel void k(__global int* o, int d) {"
      "  o[0] = (int)get_global_id(d);"  // non-literal dim: untranslatable
      "}");
  ASSERT_TRUE(prog.ok());
  Status st = wrapped->BuildProgram(*prog);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUntranslatable);
  auto log = wrapped->GetProgramBuildLog(*prog);
  ASSERT_TRUE(log.ok());
  EXPECT_FALSE(log->empty());
}

// ---------------------------------------------------------------------------
// CUDA host drivers under both bindings.
// ---------------------------------------------------------------------------
StatusOr<std::vector<float>> RunCuSaxpy(mcuda::CudaApi& cu, int n) {
  BRIDGECL_RETURN_IF_ERROR(cu.RegisterModule(
      "__global__ void saxpy(float* y, float* x, float a, int n) {"
      "  int i = blockIdx.x * blockDim.x + threadIdx.x;"
      "  if (i < n) y[i] = a * x[i] + y[i];"
      "}"));
  std::vector<float> x(n), y(n);
  for (int i = 0; i < n; ++i) {
    x[i] = i;
    y[i] = 2 * i;
  }
  BRIDGECL_ASSIGN_OR_RETURN(void* dx, cu.Malloc(n * 4));
  BRIDGECL_ASSIGN_OR_RETURN(void* dy, cu.Malloc(n * 4));
  BRIDGECL_RETURN_IF_ERROR(
      cu.Memcpy(dx, x.data(), n * 4, MemcpyKind::kHostToDevice));
  BRIDGECL_RETURN_IF_ERROR(
      cu.Memcpy(dy, y.data(), n * 4, MemcpyKind::kHostToDevice));
  float a = 0.5f;
  std::vector<LaunchArg> args = {LaunchArg::Ptr(dy), LaunchArg::Ptr(dx),
                                 LaunchArg::Value<float>(a),
                                 LaunchArg::Value<int>(n)};
  BRIDGECL_RETURN_IF_ERROR(
      cu.LaunchKernel("saxpy", Dim3((n + 31) / 32), Dim3(32), 0, args));
  std::vector<float> out(n);
  BRIDGECL_RETURN_IF_ERROR(
      cu.Memcpy(out.data(), dy, n * 4, MemcpyKind::kDeviceToHost));
  return out;
}

TEST(Cu2ClTest, SaxpyMatchesNativeCuda) {
  const int n = 96;
  Device dev_native(TitanProfile());
  auto native = mcuda::CreateNativeCudaApi(dev_native);
  auto r_native = RunCuSaxpy(*native, n);
  ASSERT_TRUE(r_native.ok()) << r_native.status().ToString();

  Device dev_wrapped(TitanProfile());
  auto cl = mocl::CreateNativeClApi(dev_wrapped);
  auto wrapped = cu2cl::CreateCudaOnClApi(*cl);
  auto r_wrapped = RunCuSaxpy(*wrapped, n);
  ASSERT_TRUE(r_wrapped.ok()) << r_wrapped.status().ToString();
  EXPECT_EQ(*r_native, *r_wrapped);
}

StatusOr<std::vector<float>> RunCuSymbolKernel(mcuda::CudaApi& cu) {
  BRIDGECL_RETURN_IF_ERROR(cu.RegisterModule(
      "__constant__ float coef[4];"
      "__device__ int counter;"
      "__global__ void k(float* out) {"
      "  int i = threadIdx.x;"
      "  out[i] = coef[i] * 100.0f;"
      "  if (i == 0) counter = counter + 7;"
      "}"));
  std::vector<float> coef = {1, 2, 3, 4};
  BRIDGECL_RETURN_IF_ERROR(cu.MemcpyToSymbol("coef", coef.data(), 16));
  int zero = 0;
  BRIDGECL_RETURN_IF_ERROR(cu.MemcpyToSymbol("counter", &zero, 4));
  BRIDGECL_ASSIGN_OR_RETURN(void* out, cu.Malloc(16));
  std::vector<LaunchArg> args = {LaunchArg::Ptr(out)};
  BRIDGECL_RETURN_IF_ERROR(cu.LaunchKernel("k", Dim3(1), Dim3(4), 0, args));
  std::vector<float> result(5);
  BRIDGECL_RETURN_IF_ERROR(
      cu.Memcpy(result.data(), out, 16, MemcpyKind::kDeviceToHost));
  int counter = 0;
  BRIDGECL_RETURN_IF_ERROR(cu.MemcpyFromSymbol(&counter, "counter", 4));
  result[4] = static_cast<float>(counter);
  return result;
}

TEST(Cu2ClTest, MemcpyToSymbolThroughDynamicBuffers) {
  // §4.2/§4.3: static symbols become dynamically allocated buffers bound
  // as extra kernel arguments.
  Device dev_native(TitanProfile());
  auto native = mcuda::CreateNativeCudaApi(dev_native);
  auto r_native = RunCuSymbolKernel(*native);
  ASSERT_TRUE(r_native.ok()) << r_native.status().ToString();

  Device dev_wrapped(TitanProfile());
  auto cl = mocl::CreateNativeClApi(dev_wrapped);
  auto wrapped = cu2cl::CreateCudaOnClApi(*cl);
  auto r_wrapped = RunCuSymbolKernel(*wrapped);
  ASSERT_TRUE(r_wrapped.ok()) << r_wrapped.status().ToString();
  EXPECT_EQ(*r_native, *r_wrapped);
  EXPECT_FLOAT_EQ((*r_wrapped)[4], 7.0f);
}

StatusOr<std::vector<float>> RunCuTexture(mcuda::CudaApi& cu, int n) {
  BRIDGECL_RETURN_IF_ERROR(cu.RegisterModule(
      "texture<float, 1, cudaReadModeElementType> tex;"
      "__global__ void k(float* out, int n) {"
      "  int i = threadIdx.x;"
      "  if (i < n) out[i] = tex1Dfetch(tex, n - 1 - i) * 10.0f;"
      "}"));
  std::vector<float> data(n);
  std::iota(data.begin(), data.end(), 0.0f);
  BRIDGECL_ASSIGN_OR_RETURN(void* src, cu.Malloc(n * 4));
  BRIDGECL_RETURN_IF_ERROR(
      cu.Memcpy(src, data.data(), n * 4, MemcpyKind::kHostToDevice));
  mcuda::ChannelDesc desc;
  desc.elem = lang::ScalarKind::kFloat;
  desc.channels = 1;
  BRIDGECL_RETURN_IF_ERROR(cu.BindTexture("tex", src, n * 4, desc));
  BRIDGECL_ASSIGN_OR_RETURN(void* out, cu.Malloc(n * 4));
  std::vector<LaunchArg> args = {LaunchArg::Ptr(out),
                                 LaunchArg::Value<int>(n)};
  BRIDGECL_RETURN_IF_ERROR(cu.LaunchKernel("k", Dim3(1), Dim3(n), 0, args));
  std::vector<float> result(n);
  BRIDGECL_RETURN_IF_ERROR(
      cu.Memcpy(result.data(), out, n * 4, MemcpyKind::kDeviceToHost));
  return result;
}

TEST(Cu2ClTest, TextureBecomesImagePlusSampler) {
  const int n = 8;
  Device dev_native(TitanProfile());
  auto native = mcuda::CreateNativeCudaApi(dev_native);
  auto r_native = RunCuTexture(*native, n);
  ASSERT_TRUE(r_native.ok()) << r_native.status().ToString();

  Device dev_wrapped(TitanProfile());
  auto cl = mocl::CreateNativeClApi(dev_wrapped);
  auto wrapped = cu2cl::CreateCudaOnClApi(*cl);
  auto r_wrapped = RunCuTexture(*wrapped, n);
  ASSERT_TRUE(r_wrapped.ok()) << r_wrapped.status().ToString();
  EXPECT_EQ(*r_native, *r_wrapped);
}

TEST(Cu2ClTest, LargeLinearTextureFails) {
  // §5 / Fig 8(a): CUDA 1D linear textures reach 2^27 texels; OpenCL 1D
  // image buffers stop at 65536. kmeans/leukocyte/hybridsort fail here.
  Device dev(TitanProfile());
  auto cl = mocl::CreateNativeClApi(dev);
  auto wrapped = cu2cl::CreateCudaOnClApi(*cl);
  ASSERT_TRUE(wrapped
                  ->RegisterModule(
                      "texture<float, 1, cudaReadModeElementType> tex;"
                      "__global__ void k(float* out) {"
                      "  out[0] = tex1Dfetch(tex, 0);"
                      "}")
                  .ok());
  const size_t n = 100000;  // > 65536
  auto src = wrapped->Malloc(n * 4);
  ASSERT_TRUE(src.ok());
  mcuda::ChannelDesc desc;
  desc.elem = lang::ScalarKind::kFloat;
  desc.channels = 1;
  Status st = wrapped->BindTexture("tex", *src, n * 4, desc);
  ASSERT_FALSE(st.ok());
}

TEST(Cu2ClTest, DynamicSharedThroughAppendedParam) {
  auto run = [&](mcuda::CudaApi& cu) -> StatusOr<std::vector<int>> {
    BRIDGECL_RETURN_IF_ERROR(cu.RegisterModule(
        "__global__ void rev(int* d) {"
        "  extern __shared__ int tile[];"
        "  int t = threadIdx.x;"
        "  tile[t] = d[t];"
        "  __syncthreads();"
        "  d[t] = tile[(int)blockDim.x - 1 - t];"
        "}"));
    const int n = 16;
    std::vector<int> data(n);
    std::iota(data.begin(), data.end(), 0);
    BRIDGECL_ASSIGN_OR_RETURN(void* p, cu.Malloc(n * 4));
    BRIDGECL_RETURN_IF_ERROR(
        cu.Memcpy(p, data.data(), n * 4, MemcpyKind::kHostToDevice));
    std::vector<LaunchArg> args = {LaunchArg::Ptr(p)};
    BRIDGECL_RETURN_IF_ERROR(
        cu.LaunchKernel("rev", Dim3(1), Dim3(n), n * 4, args));
    std::vector<int> out(n);
    BRIDGECL_RETURN_IF_ERROR(
        cu.Memcpy(out.data(), p, n * 4, MemcpyKind::kDeviceToHost));
    return out;
  };
  Device dev_native(TitanProfile());
  auto native = mcuda::CreateNativeCudaApi(dev_native);
  auto r_native = run(*native);
  ASSERT_TRUE(r_native.ok()) << r_native.status().ToString();
  Device dev_wrapped(TitanProfile());
  auto cl = mocl::CreateNativeClApi(dev_wrapped);
  auto wrapped = cu2cl::CreateCudaOnClApi(*cl);
  auto r_wrapped = run(*wrapped);
  ASSERT_TRUE(r_wrapped.ok()) << r_wrapped.status().ToString();
  EXPECT_EQ(*r_native, *r_wrapped);
}

TEST(Cu2ClTest, MemGetInfoUnimplementable) {
  Device dev(TitanProfile());
  auto cl = mocl::CreateNativeClApi(dev);
  auto wrapped = cu2cl::CreateCudaOnClApi(*cl);
  auto r = wrapped->MemGetInfo();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnimplemented);
}

TEST(Cu2ClTest, DevicePropertiesSlowerThroughWrapper) {
  // §6.3 deviceQuery: the wrapper issues many clGetDeviceInfo calls.
  Device dev_native(TitanProfile());
  auto native = mcuda::CreateNativeCudaApi(dev_native);
  double t0 = native->NowUs();
  ASSERT_TRUE(native->GetDeviceProperties().ok());
  double native_cost = native->NowUs() - t0;

  Device dev_wrapped(TitanProfile());
  auto cl = mocl::CreateNativeClApi(dev_wrapped);
  auto wrapped = cu2cl::CreateCudaOnClApi(*cl);
  double t1 = wrapped->NowUs();
  ASSERT_TRUE(wrapped->GetDeviceProperties().ok());
  double wrapped_cost = wrapped->NowUs() - t1;
  EXPECT_GT(wrapped_cost, 3 * native_cost);
}

TEST(Cu2ClTest, UntranslatableModuleRejectedAtRegister) {
  Device dev(TitanProfile());
  auto cl = mocl::CreateNativeClApi(dev);
  auto wrapped = cu2cl::CreateCudaOnClApi(*cl);
  Status st = wrapped->RegisterModule(
      "__global__ void k(int* out) { out[0] = __shfl(1, 0); }");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUntranslatable);
}

TEST(Cu2ClTest, AtomicEmulationMatchesNativeSemantics) {
  auto run = [&](mcuda::CudaApi& cu) -> StatusOr<unsigned> {
    BRIDGECL_RETURN_IF_ERROR(cu.RegisterModule(
        "__global__ void k(unsigned int* c) { atomicInc(c, 4u); }"));
    BRIDGECL_ASSIGN_OR_RETURN(void* c, cu.Malloc(4));
    unsigned zero = 0;
    BRIDGECL_RETURN_IF_ERROR(
        cu.Memcpy(c, &zero, 4, MemcpyKind::kHostToDevice));
    std::vector<LaunchArg> args = {LaunchArg::Ptr(c)};
    // 13 increments wrapping at 4 → 13 % 5 = 3.
    BRIDGECL_RETURN_IF_ERROR(cu.LaunchKernel("k", Dim3(13), Dim3(1), 0,
                                             args));
    unsigned out = 0;
    BRIDGECL_RETURN_IF_ERROR(
        cu.Memcpy(&out, c, 4, MemcpyKind::kDeviceToHost));
    return out;
  };
  Device dev_native(TitanProfile());
  auto native = mcuda::CreateNativeCudaApi(dev_native);
  auto r_native = run(*native);
  ASSERT_TRUE(r_native.ok());

  Device dev_wrapped(TitanProfile());
  auto cl = mocl::CreateNativeClApi(dev_wrapped);
  cu2cl::CudaOnClOptions opts;
  opts.translate.allow_atomic_emulation = true;
  auto wrapped = cu2cl::CreateCudaOnClApi(*cl, opts);
  auto r_wrapped = run(*wrapped);
  ASSERT_TRUE(r_wrapped.ok()) << r_wrapped.status().ToString();
  EXPECT_EQ(*r_native, *r_wrapped);
  EXPECT_EQ(*r_wrapped, 3u);
}

// ---------------------------------------------------------------------------
// Cross-direction queue semantics (docs/CONCURRENCY.md): stream- and
// queue-based host drivers run under both bindings and must agree.
// ---------------------------------------------------------------------------

/// A two-stream CUDA pipeline with a cross-stream event dependency:
/// uploads on separate streams, stream 2's kernel waits on stream 1's
/// upload via cudaStreamWaitEvent, results drain with per-stream syncs.
StatusOr<std::vector<float>> RunCuTwoStream(mcuda::CudaApi& cu, int n) {
  BRIDGECL_RETURN_IF_ERROR(cu.RegisterModule(
      "__global__ void scale(float* d, float f, int n) {"
      "  int i = blockIdx.x * blockDim.x + threadIdx.x;"
      "  if (i < n) d[i] = d[i] * f;"
      "}"));
  std::vector<float> x(n), y(n);
  for (int i = 0; i < n; ++i) {
    x[i] = i + 1.0f;
    y[i] = 2.0f * i + 1.0f;
  }
  BRIDGECL_ASSIGN_OR_RETURN(void* dx, cu.Malloc(n * 4));
  BRIDGECL_ASSIGN_OR_RETURN(void* dy, cu.Malloc(n * 4));
  BRIDGECL_ASSIGN_OR_RETURN(void* s1, cu.StreamCreate());
  BRIDGECL_ASSIGN_OR_RETURN(void* s2, cu.StreamCreate());
  BRIDGECL_RETURN_IF_ERROR(
      cu.MemcpyAsync(dx, x.data(), n * 4, MemcpyKind::kHostToDevice, s1));
  BRIDGECL_RETURN_IF_ERROR(
      cu.MemcpyAsync(dy, y.data(), n * 4, MemcpyKind::kHostToDevice, s2));
  BRIDGECL_ASSIGN_OR_RETURN(void* up1, cu.EventCreate());
  BRIDGECL_RETURN_IF_ERROR(cu.EventRecordOnStream(up1, s1));
  BRIDGECL_RETURN_IF_ERROR(cu.StreamWaitEvent(s2, up1));
  std::vector<LaunchArg> a1 = {LaunchArg::Ptr(dx),
                               LaunchArg::Value<float>(0.5f),
                               LaunchArg::Value<int>(n)};
  std::vector<LaunchArg> a2 = {LaunchArg::Ptr(dy),
                               LaunchArg::Value<float>(4.0f),
                               LaunchArg::Value<int>(n)};
  BRIDGECL_RETURN_IF_ERROR(cu.LaunchKernelOnStream(
      "scale", Dim3((n + 31) / 32), Dim3(32), 0, a1, s1));
  BRIDGECL_RETURN_IF_ERROR(cu.LaunchKernelOnStream(
      "scale", Dim3((n + 31) / 32), Dim3(32), 0, a2, s2));
  BRIDGECL_RETURN_IF_ERROR(
      cu.MemcpyAsync(x.data(), dx, n * 4, MemcpyKind::kDeviceToHost, s1));
  BRIDGECL_RETURN_IF_ERROR(
      cu.MemcpyAsync(y.data(), dy, n * 4, MemcpyKind::kDeviceToHost, s2));
  BRIDGECL_RETURN_IF_ERROR(cu.StreamSynchronize(s1));
  BRIDGECL_RETURN_IF_ERROR(cu.StreamSynchronize(s2));
  BRIDGECL_RETURN_IF_ERROR(cu.EventDestroy(up1));
  BRIDGECL_RETURN_IF_ERROR(cu.StreamDestroy(s1));
  BRIDGECL_RETURN_IF_ERROR(cu.StreamDestroy(s2));
  BRIDGECL_RETURN_IF_ERROR(cu.Free(dx));
  BRIDGECL_RETURN_IF_ERROR(cu.Free(dy));
  x.insert(x.end(), y.begin(), y.end());
  return x;
}

TEST(Cu2ClTest, TwoStreamPipelineMatchesNativeCuda) {
  const int n = 64;
  Device dev_native(TitanProfile());
  auto native = mcuda::CreateNativeCudaApi(dev_native);
  auto r_native = RunCuTwoStream(*native, n);
  ASSERT_TRUE(r_native.ok()) << r_native.status().ToString();

  Device dev_wrapped(TitanProfile());
  auto cl = mocl::CreateNativeClApi(dev_wrapped);
  auto wrapped = cu2cl::CreateCudaOnClApi(*cl);
  auto r_wrapped = RunCuTwoStream(*wrapped, n);
  ASSERT_TRUE(r_wrapped.ok()) << r_wrapped.status().ToString();
  EXPECT_EQ(*r_native, *r_wrapped);
  EXPECT_FLOAT_EQ((*r_wrapped)[0], 0.5f);           // x[0] = 1 * 0.5
  EXPECT_FLOAT_EQ((*r_wrapped)[n], 4.0f);           // y[0] = 1 * 4
}

/// vadd on an out-of-order queue: non-blocking uploads with out events,
/// the kernel waits on both via its wait list, a barrier orders the
/// non-blocking read, and clFinish drains the queue.
StatusOr<std::vector<float>> RunClVaddOoo(mocl::OpenClApi& cl, int n) {
  const char* src =
      "__kernel void vadd(__global float* a, __global float* b,"
      "                   __global float* c, int n) {"
      "  int i = get_global_id(0);"
      "  if (i < n) c[i] = a[i] + b[i];"
      "}";
  std::vector<float> a(n), b(n), c(n);
  for (int i = 0; i < n; ++i) {
    a[i] = 0.25f * i;
    b[i] = 1.5f * i;
  }
  BRIDGECL_ASSIGN_OR_RETURN(auto prog, cl.CreateProgramWithSource(src));
  BRIDGECL_RETURN_IF_ERROR(cl.BuildProgram(prog));
  BRIDGECL_ASSIGN_OR_RETURN(auto kernel, cl.CreateKernel(prog, "vadd"));
  BRIDGECL_ASSIGN_OR_RETURN(
      auto q, cl.CreateCommandQueue(
                  mocl::CL_QUEUE_OUT_OF_ORDER_EXEC_MODE_ENABLE));
  BRIDGECL_ASSIGN_OR_RETURN(
      ClMem ma, cl.CreateBuffer(MemFlags::kReadOnly, n * 4, nullptr));
  BRIDGECL_ASSIGN_OR_RETURN(
      ClMem mb, cl.CreateBuffer(MemFlags::kReadOnly, n * 4, nullptr));
  BRIDGECL_ASSIGN_OR_RETURN(
      ClMem mc, cl.CreateBuffer(MemFlags::kWriteOnly, n * 4, nullptr));
  mocl::ClEvent ea{}, eb{};
  BRIDGECL_RETURN_IF_ERROR(cl.EnqueueWriteBufferOn(
      q, ma, 0, n * 4, a.data(), /*blocking=*/false, {}, &ea));
  BRIDGECL_RETURN_IF_ERROR(cl.EnqueueWriteBufferOn(
      q, mb, 0, n * 4, b.data(), /*blocking=*/false, {}, &eb));
  BRIDGECL_RETURN_IF_ERROR(cl.SetKernelArg(kernel, 0, sizeof(ClMem), &ma));
  BRIDGECL_RETURN_IF_ERROR(cl.SetKernelArg(kernel, 1, sizeof(ClMem), &mb));
  BRIDGECL_RETURN_IF_ERROR(cl.SetKernelArg(kernel, 2, sizeof(ClMem), &mc));
  BRIDGECL_RETURN_IF_ERROR(cl.SetKernelArg(kernel, 3, sizeof(int), &n));
  size_t gws = n, lws = 32;
  std::vector<mocl::ClEvent> deps = {ea, eb};
  BRIDGECL_RETURN_IF_ERROR(
      cl.EnqueueNDRangeKernelOn(q, kernel, 1, &gws, &lws, deps, nullptr));
  BRIDGECL_ASSIGN_OR_RETURN(auto bar, cl.EnqueueBarrier(q));
  BRIDGECL_RETURN_IF_ERROR(cl.EnqueueReadBufferOn(
      q, mc, 0, n * 4, c.data(), /*blocking=*/false, {}, nullptr));
  BRIDGECL_RETURN_IF_ERROR(cl.Finish(q));
  BRIDGECL_RETURN_IF_ERROR(cl.ReleaseEvent(bar));
  BRIDGECL_RETURN_IF_ERROR(cl.ReleaseEvent(ea));
  BRIDGECL_RETURN_IF_ERROR(cl.ReleaseEvent(eb));
  BRIDGECL_RETURN_IF_ERROR(cl.ReleaseCommandQueue(q));
  return c;
}

TEST(Cl2CuTest, OutOfOrderQueueMatchesNativeOpenCl) {
  const int n = 128;
  Device dev_native(TitanProfile());
  auto native = mocl::CreateNativeClApi(dev_native);
  auto r_native = RunClVaddOoo(*native, n);
  ASSERT_TRUE(r_native.ok()) << r_native.status().ToString();

  Device dev_wrapped(TitanProfile());
  auto cuda = mcuda::CreateNativeCudaApi(dev_wrapped);
  auto wrapped = cl2cu::CreateClOnCudaApi(*cuda);
  auto r_wrapped = RunClVaddOoo(*wrapped, n);
  ASSERT_TRUE(r_wrapped.ok()) << r_wrapped.status().ToString();
  EXPECT_EQ(*r_native, *r_wrapped);
  // And the out-of-order path agrees with the plain in-order driver.
  auto r_inorder = RunClVadd(*native, n);
  ASSERT_TRUE(r_inorder.ok());
  EXPECT_EQ(*r_native, *r_inorder);
}

TEST(WrapperQueueTest, PerQueueAndDeviceWideSyncAgree) {
  // clFinish(queue) / cudaStreamSynchronize and the device-wide drains
  // (legacy clFinish / cudaDeviceSynchronize) are equivalent barriers for
  // a fully enqueued workload — same results through every binding.
  const int n = 64;
  auto cu_variant = [&](mcuda::CudaApi& cu, bool device_wide)
      -> StatusOr<std::vector<float>> {
    BRIDGECL_RETURN_IF_ERROR(cu.RegisterModule(
        "__global__ void scale(float* d, float f, int n) {"
        "  int i = blockIdx.x * blockDim.x + threadIdx.x;"
        "  if (i < n) d[i] = d[i] * f;"
        "}"));
    std::vector<float> x(n);
    for (int i = 0; i < n; ++i) x[i] = i + 1.0f;
    BRIDGECL_ASSIGN_OR_RETURN(void* dx, cu.Malloc(n * 4));
    BRIDGECL_ASSIGN_OR_RETURN(void* s, cu.StreamCreate());
    BRIDGECL_RETURN_IF_ERROR(
        cu.MemcpyAsync(dx, x.data(), n * 4, MemcpyKind::kHostToDevice, s));
    std::vector<LaunchArg> args = {LaunchArg::Ptr(dx),
                                   LaunchArg::Value<float>(3.0f),
                                   LaunchArg::Value<int>(n)};
    BRIDGECL_RETURN_IF_ERROR(cu.LaunchKernelOnStream(
        "scale", Dim3((n + 31) / 32), Dim3(32), 0, args, s));
    BRIDGECL_RETURN_IF_ERROR(
        cu.MemcpyAsync(x.data(), dx, n * 4, MemcpyKind::kDeviceToHost, s));
    BRIDGECL_RETURN_IF_ERROR(device_wide ? cu.DeviceSynchronize()
                                         : cu.StreamSynchronize(s));
    BRIDGECL_RETURN_IF_ERROR(cu.StreamDestroy(s));
    BRIDGECL_RETURN_IF_ERROR(cu.Free(dx));
    return x;
  };
  for (bool device_wide : {false, true}) {
    Device dev_native(TitanProfile());
    auto native = mcuda::CreateNativeCudaApi(dev_native);
    auto r_native = cu_variant(*native, device_wide);
    ASSERT_TRUE(r_native.ok()) << r_native.status().ToString();
    EXPECT_FLOAT_EQ((*r_native)[1], 6.0f);

    Device dev_wrapped(TitanProfile());
    auto cl = mocl::CreateNativeClApi(dev_wrapped);
    auto wrapped = cu2cl::CreateCudaOnClApi(*cl);
    auto r_wrapped = cu_variant(*wrapped, device_wide);
    ASSERT_TRUE(r_wrapped.ok()) << r_wrapped.status().ToString();
    EXPECT_EQ(*r_native, *r_wrapped) << "device_wide=" << device_wide;
  }
}

TEST(Cu2ClTest, WrapperOverheadIsSmall) {
  // §6: "the overhead of wrapper functions is negligible" — compare total
  // simulated time of the same workload under native CUDA vs the wrapper
  // (excluding the one-time build).
  const int n = 256;
  Device dev_native(TitanProfile());
  auto native = mcuda::CreateNativeCudaApi(dev_native);
  ASSERT_TRUE(RunCuSaxpy(*native, n).ok());
  double native_time = native->NowUs();

  Device dev_wrapped(TitanProfile());
  auto cl = mocl::CreateNativeClApi(dev_wrapped);
  auto wrapped = cu2cl::CreateCudaOnClApi(*cl);
  ASSERT_TRUE(RunCuSaxpy(*wrapped, n).ok());
  double wrapped_time = wrapped->NowUs() - cl->BuildTimeUs();

  // Within ~25% of native (launch-path costs differ slightly by design).
  EXPECT_LT(wrapped_time, native_time * 1.25)
      << "native=" << native_time << " wrapped=" << wrapped_time;
}

}  // namespace
}  // namespace bridgecl
