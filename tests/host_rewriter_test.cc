#include <gtest/gtest.h>

#include "translator/classifier.h"
#include "translator/host_rewriter.h"

namespace bridgecl::translator {
namespace {

bool Contains(const std::string& hay, const std::string& needle) {
  return hay.find(needle) != std::string::npos;
}

constexpr char kMixedSource[] = R"(
#include <cstdio>

__constant__ float coef[4];
__device__ int flag;

__global__ void vadd(float* a, float* b, float* c, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) c[i] = a[i] + b[i] * coef[0];
}

int main() {
  float *d_a, *d_b, *d_c;
  int n = 1024;
  cudaMalloc((void**)&d_a, n * sizeof(float));
  cudaMalloc((void**)&d_b, n * sizeof(float));
  cudaMalloc((void**)&d_c, n * sizeof(float));
  float host_coef[4] = {1, 2, 3, 4};
  cudaMemcpyToSymbol(coef, host_coef, 4 * sizeof(float));
  vadd<<<n / 256, 256>>>(d_a, d_b, d_c, n);
  int f = 0;
  cudaMemcpyFromSymbol(&f, flag, sizeof(int));
  printf("done %d\n", f);
  return 0;
}
)";

TEST(SplitTest, SeparatesDeviceFromHost) {
  auto [device, host] = SplitCudaSource(kMixedSource);
  EXPECT_TRUE(Contains(device, "__global__ void vadd")) << device;
  EXPECT_TRUE(Contains(device, "__constant__ float coef[4];")) << device;
  EXPECT_TRUE(Contains(device, "__device__ int flag;")) << device;
  EXPECT_FALSE(Contains(device, "int main")) << device;
  EXPECT_TRUE(Contains(host, "int main")) << host;
  EXPECT_FALSE(Contains(host, "__global__")) << host;
  EXPECT_FALSE(Contains(host, "blockIdx")) << host;
  // The host side keeps the launch (it gets rewritten later).
  EXPECT_TRUE(Contains(host, "vadd<<<")) << host;
}

TEST(SplitTest, TextureAndTemplateGoToDevice) {
  auto [device, host] = SplitCudaSource(
      "texture<float, 2, cudaReadModeElementType> tex;\n"
      "template <typename T> __device__ T ident(T v) { return v; }\n"
      "int main() { return 0; }\n");
  EXPECT_TRUE(Contains(device, "texture<float, 2")) << device;
  EXPECT_TRUE(Contains(device, "template <typename T> __device__"))
      << device;
  EXPECT_FALSE(Contains(host, "texture")) << host;
  EXPECT_FALSE(Contains(host, "template")) << host;
}

TEST(HostRewriterTest, LaunchBecomesSetArgSequence) {
  DiagnosticEngine diags;
  auto r = RewriteCudaHostCode(kMixedSource, diags);
  ASSERT_TRUE(r.ok()) << diags.ToString();
  const std::string& h = r->host_source;
  EXPECT_FALSE(Contains(h, "<<<")) << h;
  EXPECT_TRUE(Contains(h, "__bridgecl_kernel(\"vadd\")")) << h;
  EXPECT_TRUE(Contains(
      h, "clSetKernelArg(__bridgecl_k, 0, sizeof(d_a), &(d_a));"))
      << h;
  EXPECT_TRUE(Contains(
      h, "clSetKernelArg(__bridgecl_k, 3, sizeof(n), &(n));"))
      << h;
  // The coef/flag symbols became appended arguments (§4.3).
  EXPECT_TRUE(Contains(h, "__bridgecl_symbol(\"coef\")")) << h;
  EXPECT_TRUE(Contains(h, "__bridgecl_ndrange(n / 256, 256,")) << h;
  EXPECT_TRUE(Contains(h, "clEnqueueNDRangeKernel(__bridgecl_queue,")) << h;
}

TEST(HostRewriterTest, MemcpySymbolsRewritten) {
  DiagnosticEngine diags;
  auto r = RewriteCudaHostCode(kMixedSource, diags);
  ASSERT_TRUE(r.ok()) << diags.ToString();
  const std::string& h = r->host_source;
  EXPECT_FALSE(Contains(h, "cudaMemcpyToSymbol")) << h;
  EXPECT_FALSE(Contains(h, "cudaMemcpyFromSymbol")) << h;
  EXPECT_TRUE(Contains(
      h,
      "clEnqueueWriteBuffer(__bridgecl_queue, __bridgecl_symbol(\"coef\"), "
      "CL_TRUE, 0, 4 * sizeof(float), host_coef, 0, NULL, NULL)"))
      << h;
  EXPECT_TRUE(Contains(
      h,
      "clEnqueueReadBuffer(__bridgecl_queue, __bridgecl_symbol(\"flag\"), "
      "CL_TRUE, 0, sizeof(int), &f, 0, NULL, NULL)"))
      << h;
  // Untouched host code passes through.
  EXPECT_TRUE(Contains(h, "cudaMalloc((void**)&d_a, n * sizeof(float));"))
      << h;
  EXPECT_TRUE(Contains(h, "printf(\"done %d\\n\", f);")) << h;
}

TEST(HostRewriterTest, DeviceSourceIsTranslated) {
  DiagnosticEngine diags;
  auto r = RewriteCudaHostCode(kMixedSource, diags);
  ASSERT_TRUE(r.ok()) << diags.ToString();
  EXPECT_TRUE(Contains(r->device_source, "__kernel void vadd"))
      << r->device_source;
  EXPECT_TRUE(Contains(r->device_source, "get_local_id(0)"))
      << r->device_source;
}

TEST(HostRewriterTest, DynamicSharedLaunchConfig) {
  DiagnosticEngine diags;
  auto r = RewriteCudaHostCode(
      "__global__ void k(float* d) {"
      "  extern __shared__ float tile[];"
      "  tile[threadIdx.x] = d[threadIdx.x];"
      "}"
      "void run(float* d, int n) {"
      "  k<<<1, n, n * sizeof(float)>>>(d);"
      "}",
      diags);
  ASSERT_TRUE(r.ok()) << diags.ToString();
  // The third <<<>>> parameter becomes a null clSetKernelArg (§4.1).
  EXPECT_TRUE(Contains(r->host_source,
                       "clSetKernelArg(__bridgecl_k, 1, n * sizeof(float), "
                       "NULL);"))
      << r->host_source;
}

TEST(HostRewriterTest, Dim3VariablesAndLoopLaunch) {
  DiagnosticEngine diags;
  auto r = RewriteCudaHostCode(
      "__global__ void step(float* d, int n) {"
      "  int i = blockIdx.x * blockDim.x + threadIdx.x;"
      "  if (i < n) d[i] += 1.0f;"
      "}"
      "void run(float* d, int n, int iters) {"
      "  dim3 grid(n / 256);"
      "  dim3 block(256);"
      "  for (int it = 0; it < iters; ++it) {"
      "    step<<<grid, block>>>(d, n);"
      "    cudaDeviceSynchronize();"
      "  }"
      "}",
      diags);
  ASSERT_TRUE(r.ok()) << diags.ToString();
  const std::string& h = r->host_source;
  // The launch configuration expressions pass through verbatim.
  EXPECT_TRUE(Contains(
      h, "__bridgecl_ndrange(grid, block, __bridgecl_gws, __bridgecl_lws)"))
      << h;
  // Loop structure is preserved around the expansion.
  EXPECT_TRUE(Contains(h, "for (int it = 0; it < iters; ++it)")) << h;
  EXPECT_TRUE(Contains(h, "cudaDeviceSynchronize();")) << h;
  EXPECT_FALSE(Contains(h, "<<<")) << h;
}

TEST(HostRewriterTest, MultipleLaunchesAllRewritten) {
  DiagnosticEngine diags;
  auto r = RewriteCudaHostCode(
      "__global__ void a(int* p) { p[0] = 1; }"
      "__global__ void b(int* p) { p[1] = 2; }"
      "void run(int* p) {"
      "  a<<<1, 32>>>(p);"
      "  b<<<2, 64>>>(p);"
      "  a<<<4, 128>>>(p);"
      "}",
      diags);
  ASSERT_TRUE(r.ok()) << diags.ToString();
  const std::string& h = r->host_source;
  size_t count = 0;
  for (size_t pos = h.find("clEnqueueNDRangeKernel");
       pos != std::string::npos;
       pos = h.find("clEnqueueNDRangeKernel", pos + 1))
    ++count;
  EXPECT_EQ(count, 3u) << h;
  EXPECT_TRUE(Contains(h, "__bridgecl_kernel(\"a\")")) << h;
  EXPECT_TRUE(Contains(h, "__bridgecl_kernel(\"b\")")) << h;
}

TEST(HostRewriterTest, LaunchInsideStringUntouched) {
  DiagnosticEngine diags;
  auto r = RewriteCudaHostCode(
      "__global__ void k(int* d) { d[0] = 1; }"
      "const char* msg = \"not a launch: k<<<1,1>>>(x);\";"
      "void run(int* d) { k<<<1, 1>>>(d); }",
      diags);
  ASSERT_TRUE(r.ok()) << diags.ToString();
  EXPECT_TRUE(Contains(r->host_source, "\"not a launch: k<<<1,1>>>(x);\""))
      << r->host_source;
  // Exactly one launch expansion.
  size_t first = r->host_source.find("__bridgecl_kernel(\"k\")");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(r->host_source.find("__bridgecl_kernel(\"k\")", first + 1),
            std::string::npos);
}

// ===========================================================================
// Classifier (Table 3)
// ===========================================================================

TEST(ClassifierTest, TranslatableApp) {
  auto c = ClassifyCudaApplication(
      "__global__ void k(float* d, int n) {"
      "  int i = blockIdx.x * blockDim.x + threadIdx.x;"
      "  if (i < n) d[i] *= 2.0f;"
      "}"
      "void run(float* d, int n) { k<<<n / 64, 64>>>(d, n); }");
  EXPECT_TRUE(c.translatable)
      << (c.issues.empty() ? "" : c.issues[0].evidence);
  EXPECT_TRUE(c.issues.empty());
  EXPECT_NE(c.translation.Find("k"), nullptr);
}

TEST(ClassifierTest, NoCorrespondingFunctions) {
  auto c = ClassifyCudaApplication(
      "__global__ void k(int* d) { d[0] = __shfl(d[1], 0); }"
      "int main() { return 0; }");
  ASSERT_FALSE(c.translatable);
  auto cats = c.Categories();
  ASSERT_EQ(cats.size(), 1u);
  EXPECT_EQ(cats[0], FailureCategory::kNoCorrespondingFunctions);
}

TEST(ClassifierTest, HostMemGetInfo) {
  auto c = ClassifyCudaApplication(
      "__global__ void k(int* d) { d[0] = 1; }"
      "int main() { size_t f, t; cudaMemGetInfo(&f, &t); return 0; }");
  ASSERT_FALSE(c.translatable);
  EXPECT_EQ(c.Categories()[0], FailureCategory::kNoCorrespondingFunctions);
}

TEST(ClassifierTest, UnsupportedLibraries) {
  auto c = ClassifyCudaApplication(
      "__global__ void k(int* d) { d[0] = 1; }"
      "int main() { /* thrust::sort(v.begin(), v.end()); */"
      "  thrust::device_vector<int> v; return 0; }");
  ASSERT_FALSE(c.translatable);
  EXPECT_EQ(c.Categories()[0], FailureCategory::kUnsupportedLibraries);
}

TEST(ClassifierTest, OpenGlBinding) {
  auto c = ClassifyCudaApplication(
      "__global__ void k(int* d) { d[0] = 1; }"
      "int main() { glutInit(0, 0); glBindBuffer(0, 0);"
      " cudaGLMapBufferObject(0, 0); return 0; }");
  ASSERT_FALSE(c.translatable);
  EXPECT_EQ(c.Categories()[0], FailureCategory::kOpenGlBinding);
}

TEST(ClassifierTest, UseOfPtx) {
  auto c = ClassifyCudaApplication(
      "int main() { cuModuleLoad(0, \"kernel.ptx\"); return 0; }");
  ASSERT_FALSE(c.translatable);
  EXPECT_EQ(c.Categories()[0], FailureCategory::kUseOfPtx);
}

TEST(ClassifierTest, UseOfUva) {
  auto c = ClassifyCudaApplication(
      "__global__ void k(int* d) { d[0] = 1; }"
      "int main() { void* p; cudaHostAlloc(&p, 64, 0); return 0; }");
  ASSERT_FALSE(c.translatable);
  EXPECT_EQ(c.Categories()[0], FailureCategory::kUseOfUva);
}

TEST(ClassifierTest, LanguageExtensions) {
  auto c = ClassifyCudaApplication(
      "__device__ int apply(int (*fn)(int), int v) { return fn(v); }"
      "__global__ void k(int* d) { d[0] = 2; }"
      "int main() { return 0; }");
  ASSERT_FALSE(c.translatable);
  EXPECT_EQ(c.Categories()[0],
            FailureCategory::kUnsupportedLanguageExtensions);
}

TEST(ClassifierTest, MultipleReasonsReported) {
  // Like particles in the paper: libraries + OpenGL.
  auto c = ClassifyCudaApplication(
      "__global__ void k(int* d) { d[0] = 1; }"
      "int main() {"
      "  thrust::device_vector<int> v;"
      "  glutInit(0, 0);"
      "  return 0;"
      "}");
  ASSERT_FALSE(c.translatable);
  auto cats = c.Categories();
  ASSERT_EQ(cats.size(), 2u);
  EXPECT_EQ(cats[0], FailureCategory::kUnsupportedLibraries);
  EXPECT_EQ(cats[1], FailureCategory::kOpenGlBinding);
}

}  // namespace
}  // namespace bridgecl::translator
