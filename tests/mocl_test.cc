#include <gtest/gtest.h>

#include <numeric>

#include "mocl/cl_api.h"
#include "simgpu/device.h"

namespace bridgecl::mocl {
namespace {

using simgpu::Device;
using simgpu::TitanProfile;

constexpr char kVaddSource[] =
    "__kernel void vadd(__global float* a, __global float* b,"
    "                   __global float* c, int n) {"
    "  int i = get_global_id(0);"
    "  if (i < n) c[i] = a[i] + b[i];"
    "}";

class MoclTest : public ::testing::Test {
 protected:
  MoclTest() : device_(TitanProfile()), cl_(CreateNativeClApi(device_)) {}

  StatusOr<ClKernel> BuildKernel(const std::string& src,
                                 const std::string& name) {
    BRIDGECL_ASSIGN_OR_RETURN(ClProgram p, cl_->CreateProgramWithSource(src));
    BRIDGECL_RETURN_IF_ERROR(cl_->BuildProgram(p));
    return cl_->CreateKernel(p, name);
  }

  Device device_;
  std::unique_ptr<OpenClApi> cl_;
};

TEST_F(MoclTest, BufferRoundTrip) {
  std::vector<int> data(100);
  std::iota(data.begin(), data.end(), 0);
  auto mem = cl_->CreateBuffer(MemFlags::kReadWrite, 400, data.data());
  ASSERT_TRUE(mem.ok());
  std::vector<int> back(100);
  ASSERT_TRUE(cl_->EnqueueReadBuffer(*mem, 0, 400, back.data()).ok());
  EXPECT_EQ(back, data);
  // Partial write/read with offsets.
  int v = 777;
  ASSERT_TRUE(cl_->EnqueueWriteBuffer(*mem, 40, 4, &v).ok());
  int got = 0;
  ASSERT_TRUE(cl_->EnqueueReadBuffer(*mem, 40, 4, &got).ok());
  EXPECT_EQ(got, 777);
  ASSERT_TRUE(cl_->ReleaseMemObject(*mem).ok());
  EXPECT_FALSE(cl_->EnqueueReadBuffer(*mem, 0, 4, &got).ok());
}

TEST_F(MoclTest, OutOfBoundsBufferOpsRejected) {
  auto mem = cl_->CreateBuffer(MemFlags::kReadWrite, 64, nullptr);
  ASSERT_TRUE(mem.ok());
  char buf[128];
  EXPECT_FALSE(cl_->EnqueueReadBuffer(*mem, 0, 128, buf).ok());
  EXPECT_FALSE(cl_->EnqueueWriteBuffer(*mem, 60, 8, buf).ok());
}

TEST_F(MoclTest, CopyBuffer) {
  std::vector<float> a(16, 3.5f);
  auto src = cl_->CreateBuffer(MemFlags::kReadOnly, 64, a.data());
  auto dst = cl_->CreateBuffer(MemFlags::kReadWrite, 64, nullptr);
  ASSERT_TRUE(src.ok());
  ASSERT_TRUE(dst.ok());
  ASSERT_TRUE(cl_->EnqueueCopyBuffer(*src, *dst, 0, 0, 64).ok());
  std::vector<float> back(16);
  ASSERT_TRUE(cl_->EnqueueReadBuffer(*dst, 0, 64, back.data()).ok());
  EXPECT_EQ(back, a);
}

TEST_F(MoclTest, BuildAndRunVadd) {
  auto kernel = BuildKernel(kVaddSource, "vadd");
  ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
  const int n = 128;
  std::vector<float> a(n, 1.0f), b(n, 2.0f), c(n, 0.0f);
  auto ma = cl_->CreateBuffer(MemFlags::kReadOnly, n * 4, a.data());
  auto mb = cl_->CreateBuffer(MemFlags::kReadOnly, n * 4, b.data());
  auto mc = cl_->CreateBuffer(MemFlags::kWriteOnly, n * 4, nullptr);
  ASSERT_TRUE(ma.ok() && mb.ok() && mc.ok());
  ASSERT_TRUE(cl_->SetKernelArg(*kernel, 0, sizeof(ClMem), &*ma).ok());
  ASSERT_TRUE(cl_->SetKernelArg(*kernel, 1, sizeof(ClMem), &*mb).ok());
  ASSERT_TRUE(cl_->SetKernelArg(*kernel, 2, sizeof(ClMem), &*mc).ok());
  int nn = n;
  ASSERT_TRUE(cl_->SetKernelArg(*kernel, 3, sizeof(int), &nn).ok());
  size_t gws = n, lws = 32;
  ASSERT_TRUE(cl_->EnqueueNDRangeKernel(*kernel, 1, &gws, &lws).ok());
  ASSERT_TRUE(cl_->EnqueueReadBuffer(*mc, 0, n * 4, c.data()).ok());
  for (float v : c) EXPECT_FLOAT_EQ(v, 3.0f);
}

TEST_F(MoclTest, BuildFailureReportsLog) {
  auto p = cl_->CreateProgramWithSource("__kernel void broken( {");
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(cl_->BuildProgram(*p).ok());
  auto log = cl_->GetProgramBuildLog(*p);
  ASSERT_TRUE(log.ok());
  EXPECT_FALSE(log->empty());
}

TEST_F(MoclTest, MissingArgRejectedAtLaunch) {
  auto kernel = BuildKernel(kVaddSource, "vadd");
  ASSERT_TRUE(kernel.ok());
  size_t gws = 32, lws = 32;
  auto st = cl_->EnqueueNDRangeKernel(*kernel, 1, &gws, &lws);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST_F(MoclTest, NdrangeMustDivide) {
  auto kernel = BuildKernel("__kernel void nop() {}", "nop");
  ASSERT_TRUE(kernel.ok());
  size_t gws = 100, lws = 32;
  EXPECT_FALSE(cl_->EnqueueNDRangeKernel(*kernel, 1, &gws, &lws).ok());
}

TEST_F(MoclTest, DynamicLocalViaNullArg) {
  auto kernel = BuildKernel(
      "__kernel void k(__global int* out, __local int* tmp) {"
      "  int l = get_local_id(0);"
      "  tmp[l] = l * 3;"
      "  barrier(CLK_LOCAL_MEM_FENCE);"
      "  out[get_global_id(0)] = tmp[(l + 1) % 8];"
      "}",
      "k");
  ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
  auto out = cl_->CreateBuffer(MemFlags::kWriteOnly, 8 * 4, nullptr);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(cl_->SetKernelArg(*kernel, 0, sizeof(ClMem), &*out).ok());
  ASSERT_TRUE(cl_->SetKernelArg(*kernel, 1, 8 * 4, nullptr).ok());
  size_t gws = 8, lws = 8;
  ASSERT_TRUE(cl_->EnqueueNDRangeKernel(*kernel, 1, &gws, &lws).ok());
  std::vector<int> result(8);
  ASSERT_TRUE(cl_->EnqueueReadBuffer(*out, 0, 32, result.data()).ok());
  EXPECT_EQ(result[0], 3);
  EXPECT_EQ(result[7], 0);
}

TEST_F(MoclTest, Image2DReadInKernel) {
  auto kernel = BuildKernel(
      "__kernel void k(__read_only image2d_t img, sampler_t s,"
      "                __global float* out) {"
      "  int x = get_global_id(0);"
      "  float4 t = read_imagef(img, s, (int2)(x, 0));"
      "  out[x] = t.x + t.y;"
      "}",
      "k");
  ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
  ClImageFormat fmt;
  fmt.elem = lang::ScalarKind::kFloat;
  fmt.channels = 2;
  std::vector<float> texels = {1, 10, 2, 20, 3, 30, 4, 40};
  auto img = cl_->CreateImage2D(MemFlags::kReadOnly, fmt, 4, 1, texels.data());
  ASSERT_TRUE(img.ok()) << img.status().ToString();
  auto sampler = cl_->CreateSampler({});
  ASSERT_TRUE(sampler.ok());
  auto out = cl_->CreateBuffer(MemFlags::kWriteOnly, 16, nullptr);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(cl_->SetKernelArg(*kernel, 0, sizeof(ClMem), &*img).ok());
  ASSERT_TRUE(cl_->SetKernelArg(*kernel, 1, sizeof(uint64_t), &*sampler).ok());
  ASSERT_TRUE(cl_->SetKernelArg(*kernel, 2, sizeof(ClMem), &*out).ok());
  size_t gws = 4, lws = 4;
  ASSERT_TRUE(cl_->EnqueueNDRangeKernel(*kernel, 1, &gws, &lws).ok());
  std::vector<float> result(4);
  ASSERT_TRUE(cl_->EnqueueReadBuffer(*out, 0, 16, result.data()).ok());
  EXPECT_FLOAT_EQ(result[0], 11.0f);
  EXPECT_FLOAT_EQ(result[3], 44.0f);
}

TEST_F(MoclTest, Image1DWidthLimitEnforced) {
  // §5: OpenCL 1D images stop at the 2D max width; CUDA linear textures
  // reach 2^27. This is the kmeans/leukocyte/hybridsort failure.
  ClImageFormat fmt;
  fmt.elem = lang::ScalarKind::kFloat;
  fmt.channels = 1;
  auto too_big =
      cl_->CreateImage1D(MemFlags::kReadOnly, fmt, 65537, nullptr);
  EXPECT_FALSE(too_big.ok());
  auto ok = cl_->CreateImage1D(MemFlags::kReadOnly, fmt, 65536, nullptr);
  EXPECT_TRUE(ok.ok());
}

TEST_F(MoclTest, Image1DFromBuffer) {
  std::vector<float> data = {5, 6, 7, 8};
  auto buf = cl_->CreateBuffer(MemFlags::kReadWrite, 16, data.data());
  ASSERT_TRUE(buf.ok());
  ClImageFormat fmt;
  fmt.elem = lang::ScalarKind::kFloat;
  fmt.channels = 1;
  auto img = cl_->CreateImage1DFromBuffer(fmt, 4, *buf);
  ASSERT_TRUE(img.ok()) << img.status().ToString();
  std::vector<float> back(4);
  ASSERT_TRUE(cl_->EnqueueReadImage(*img, back.data()).ok());
  EXPECT_EQ(back, data);
  // A view wider than the backing buffer is invalid.
  EXPECT_FALSE(cl_->CreateImage1DFromBuffer(fmt, 8, *buf).ok());
}

TEST_F(MoclTest, DeviceInfoQueries) {
  auto name = cl_->QueryDeviceInfoString(ClDeviceAttr::kName);
  ASSERT_TRUE(name.ok());
  EXPECT_NE(name->find("Titan"), std::string::npos);
  auto cus = cl_->QueryDeviceInfoUint(ClDeviceAttr::kMaxComputeUnits);
  ASSERT_TRUE(cus.ok());
  EXPECT_EQ(*cus, 14u);
  // Each query costs a device round-trip (the §6.3 deviceQuery effect).
  double t0 = cl_->NowUs();
  for (int i = 0; i < 10; ++i)
    ASSERT_TRUE(cl_->QueryDeviceInfoUint(ClDeviceAttr::kLocalMemSize).ok());
  EXPECT_GT(cl_->NowUs() - t0, 10 * TitanProfile().device_query_us * 0.9);
}

TEST_F(MoclTest, SubDevicesSupportedNatively) {
  auto r = cl_->CreateSubDevices(2);
  ASSERT_TRUE(r.ok());  // §3.7: OpenCL-only feature, fine natively
  EXPECT_EQ(*r, 2);
  EXPECT_FALSE(cl_->CreateSubDevices(1000).ok());
}

TEST_F(MoclTest, OpenClBankModeIsActive) {
  // Creating the native OpenCL binding on a Titan selects the 32-bit
  // shared-memory addressing mode (§6.2).
  EXPECT_EQ(device_.bank_mode(), simgpu::BankMode::k32Bit);
}

TEST_F(MoclTest, BuildTimeTrackedSeparately) {
  double t0 = cl_->BuildTimeUs();
  auto k = BuildKernel("__kernel void nop() {}", "nop");
  ASSERT_TRUE(k.ok());
  EXPECT_GT(cl_->BuildTimeUs(), t0);
}

}  // namespace
}  // namespace bridgecl::mocl
