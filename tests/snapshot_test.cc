// Device snapshot/restore and cross-profile migration (src/snapshot,
// docs/SNAPSHOT.md): image round trips are byte-identical, a restored
// mid-workload context replays the remainder bit-identically (stats,
// clock, memory), a titan image restores onto the HD7970 and completes,
// and every malformed-image path fails with the documented spec code
// *before* mutating the target context.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "apps/app.h"
#include "cl2cu/cl_on_cuda.h"
#include "cu2cl/cuda_on_cl.h"
#include "mcuda/cuda_api.h"
#include "mcuda/cuda_errors.h"
#include "mocl/cl_api.h"
#include "mocl/cl_errors.h"
#include "simgpu/device.h"
#include "simgpu/fault_injector.h"
#include "snapshot/snapshot.h"

namespace bridgecl {
namespace {

using mcuda::LaunchArg;
using mcuda::MemcpyKind;
using mocl::ClMem;
using mocl::MemFlags;
using simgpu::Device;
using simgpu::DeviceProfile;
using simgpu::Dim3;
using simgpu::FaultKind;
using simgpu::FaultPlan;
using simgpu::FaultPoint;
using simgpu::FaultSite;
using simgpu::HD7970Profile;
using simgpu::TitanProfile;

/// Per-process unique image path: the guarded/plain suite registrations
/// can run concurrently under `ctest -j` and must not share files.
std::string SnapPath(const std::string& stem) {
  return ::testing::TempDir() + "bridgecl_" + stem + "_" +
         std::to_string(::getpid()) + snapshot::kImageExtension;
}

std::vector<char> ReadAllBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void WriteAllBytes(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ---------------------------------------------------------------------------
// Workloads. The CUDA one keeps all state in __device__ globals so a
// restored context needs no host-side handles to resume; the OpenCL one
// exercises buffers, programs, and kernels (the MOCL handle tables).
// ---------------------------------------------------------------------------
constexpr int kSteps = 32;
constexpr int kSnapAt = 12;
constexpr char kStepSource[] = R"(
__device__ int step_count;
__device__ int acc[256];
__global__ void step() {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  acc[i] = acc[i] + i + 1;
  if (i == 0) step_count = step_count + 1;
}
)";

Status StartSteps(mcuda::CudaApi& cu) {
  BRIDGECL_RETURN_IF_ERROR(cu.RegisterModule(kStepSource));
  const std::vector<int> zeros(256, 0);
  BRIDGECL_RETURN_IF_ERROR(
      cu.MemcpyToSymbol("step_count", zeros.data(), sizeof(int)));
  return cu.MemcpyToSymbol("acc", zeros.data(), zeros.size() * sizeof(int));
}

Status RunSteps(mcuda::CudaApi& cu, int from, int to) {
  for (int s = from; s < to; ++s)
    BRIDGECL_RETURN_IF_ERROR(
        cu.LaunchKernel("step", Dim3(4), Dim3(64), 0, {}));
  return cu.DeviceSynchronize();
}

StatusOr<std::vector<int>> ReadAcc(mcuda::CudaApi& cu) {
  std::vector<int> acc(256);
  BRIDGECL_RETURN_IF_ERROR(
      cu.MemcpyFromSymbol(acc.data(), "acc", acc.size() * sizeof(int)));
  return acc;
}

struct ClWorkload {
  ClMem in, out;
  static constexpr int kN = 64;

  Status Run(mocl::OpenClApi& cl) {
    const char* src =
        "__kernel void twice(__global int* a, __global int* b) {"
        "  int i = get_global_id(0);"
        "  b[i] = a[i] * 2;"
        "}";
    std::vector<int> host(kN);
    for (int i = 0; i < kN; ++i) host[i] = i * 3 + 1;
    BRIDGECL_ASSIGN_OR_RETURN(auto prog, cl.CreateProgramWithSource(src));
    BRIDGECL_RETURN_IF_ERROR(cl.BuildProgram(prog));
    BRIDGECL_ASSIGN_OR_RETURN(auto kernel, cl.CreateKernel(prog, "twice"));
    BRIDGECL_ASSIGN_OR_RETURN(
        in, cl.CreateBuffer(MemFlags::kReadOnly, kN * 4, host.data()));
    BRIDGECL_ASSIGN_OR_RETURN(
        out, cl.CreateBuffer(MemFlags::kWriteOnly, kN * 4, nullptr));
    BRIDGECL_RETURN_IF_ERROR(cl.SetKernelArg(kernel, 0, sizeof(ClMem), &in));
    BRIDGECL_RETURN_IF_ERROR(cl.SetKernelArg(kernel, 1, sizeof(ClMem), &out));
    size_t gws = kN, lws = 16;
    BRIDGECL_RETURN_IF_ERROR(cl.EnqueueNDRangeKernel(kernel, 1, &gws, &lws));
    std::vector<int> got(kN);
    BRIDGECL_RETURN_IF_ERROR(
        cl.EnqueueReadBuffer(out, 0, kN * 4, got.data()));
    for (int i = 0; i < kN; ++i)
      if (got[i] != host[i] * 2)
        return InternalError("twice produced a wrong result");
    return OkStatus();
  }
};

// ---------------------------------------------------------------------------
// Structural inspection.
// ---------------------------------------------------------------------------
TEST(SnapshotTest, InspectReportsHeaderAndSectionTable) {
  Device device{TitanProfile()};
  auto cu = mcuda::CreateNativeCudaApi(device);
  ASSERT_TRUE(StartSteps(*cu).ok());
  const std::string path = SnapPath("inspect");
  ASSERT_TRUE(cu->Snapshot(path).ok());

  auto info = snapshot::Inspect(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->version, snapshot::kFormatVersion);
  EXPECT_EQ(info->profile, device.profile().name);
  EXPECT_TRUE(info->checksum_ok);
  std::set<std::string> tags;
  for (const auto& s : info->sections) tags.insert(s.tag);
  for (const char* tag : {"DEVC", "VMEM", "FALT", "MODC", "SCHD", "MCUD"})
    EXPECT_TRUE(tags.count(tag)) << "missing section " << tag;
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Round trips: snapshot -> restore -> snapshot must reproduce the image
// byte for byte (the serialized form is a fixed point of restore).
// ---------------------------------------------------------------------------
TEST(SnapshotTest, MoclRoundTripIsByteIdentical) {
  const std::string p1 = SnapPath("cl_rt1"), p2 = SnapPath("cl_rt2");
  {
    Device device{TitanProfile()};
    auto cl = mocl::CreateNativeClApi(device);
    ClWorkload w;
    ASSERT_TRUE(w.Run(*cl).ok());
    ASSERT_TRUE(cl->Snapshot(p1).ok());
  }
  {
    Device device{TitanProfile()};
    auto cl = mocl::CreateNativeClApi(device);
    ASSERT_TRUE(cl->Restore(p1).ok());
    ASSERT_TRUE(cl->Snapshot(p2).ok());
  }
  EXPECT_EQ(ReadAllBytes(p1), ReadAllBytes(p2));
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST(SnapshotTest, McudaRoundTripIsByteIdentical) {
  const std::string p1 = SnapPath("cu_rt1"), p2 = SnapPath("cu_rt2");
  {
    Device device{TitanProfile()};
    auto cu = mcuda::CreateNativeCudaApi(device);
    ASSERT_TRUE(StartSteps(*cu).ok());
    ASSERT_TRUE(RunSteps(*cu, 0, 5).ok());
    ASSERT_TRUE(cu->Snapshot(p1).ok());
  }
  {
    Device device{TitanProfile()};
    auto cu = mcuda::CreateNativeCudaApi(device);
    ASSERT_TRUE(cu->Restore(p1).ok());
    ASSERT_TRUE(cu->Snapshot(p2).ok());
  }
  EXPECT_EQ(ReadAllBytes(p1), ReadAllBytes(p2));
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

/// Same-process bit-identity over the apps corpus: every Rodinia app
/// with an OpenCL host program leaves a context whose image survives a
/// restore round trip byte-identically.
TEST(SnapshotTest, RodiniaCorpusRoundTripsByteIdentical) {
  int covered = 0;
  for (const auto& app : apps::RodiniaApps()) {
    Device device{TitanProfile()};
    auto cl = mocl::CreateNativeClApi(device);
    double checksum = 0;
    Status st = app->RunCl(*cl, &checksum);
    if (st.code() == StatusCode::kUnimplemented) continue;
    ASSERT_TRUE(st.ok()) << app->name() << ": " << st.ToString();
    SCOPED_TRACE(app->name());
    const std::string p1 = SnapPath("app_" + app->name() + "_1");
    const std::string p2 = SnapPath("app_" + app->name() + "_2");
    ASSERT_TRUE(cl->Snapshot(p1).ok());
    Device fresh_device{TitanProfile()};
    auto fresh = mocl::CreateNativeClApi(fresh_device);
    ASSERT_TRUE(fresh->Restore(p1).ok());
    ASSERT_TRUE(fresh->Snapshot(p2).ok());
    EXPECT_EQ(ReadAllBytes(p1), ReadAllBytes(p2));
    std::remove(p1.c_str());
    std::remove(p2.c_str());
    ++covered;
  }
  EXPECT_GT(covered, 0) << "corpus provided no OpenCL host programs";
}

// ---------------------------------------------------------------------------
// Mid-workload resume: the interrupted half plus the restored half must
// equal the uninterrupted run in *all* observable state — proven by
// byte-comparing end-of-run images, which embed stats, clock, memory,
// scheduler history, and fault ordinals.
// ---------------------------------------------------------------------------
TEST(SnapshotTest, MidWorkloadResumeIsBitIdentical) {
  const std::string mid = SnapPath("resume_mid");
  const std::string end_a = SnapPath("resume_end_a");
  const std::string end_b = SnapPath("resume_end_b");
  std::vector<int> acc_a;
  {
    Device device{TitanProfile()};
    auto cu = mcuda::CreateNativeCudaApi(device);
    ASSERT_TRUE(StartSteps(*cu).ok());
    ASSERT_TRUE(RunSteps(*cu, 0, kSnapAt).ok());
    ASSERT_TRUE(cu->Snapshot(mid).ok());
    ASSERT_TRUE(RunSteps(*cu, kSnapAt, kSteps).ok());
    auto acc = ReadAcc(*cu);
    ASSERT_TRUE(acc.ok());
    acc_a = *acc;
    ASSERT_TRUE(cu->Snapshot(end_a).ok());
  }
  {
    Device device{TitanProfile()};
    auto cu = mcuda::CreateNativeCudaApi(device);
    ASSERT_TRUE(cu->Restore(mid).ok());
    EXPECT_EQ(device.stats().kernels_launched,
              static_cast<uint64_t>(kSnapAt));
    ASSERT_TRUE(RunSteps(*cu, kSnapAt, kSteps).ok());
    auto acc = ReadAcc(*cu);
    ASSERT_TRUE(acc.ok());
    EXPECT_EQ(*acc, acc_a);
    ASSERT_TRUE(cu->Snapshot(end_b).ok());
  }
  EXPECT_EQ(ReadAllBytes(end_a), ReadAllBytes(end_b))
      << "resumed run diverged from the uninterrupted run";
  std::remove(mid.c_str());
  std::remove(end_a.c_str());
  std::remove(end_b.c_str());
}

// ---------------------------------------------------------------------------
// Cross-profile migration: a titan image restores onto the HD7970 —
// memory, modules, and progress preserved; bank mode and timing follow
// the new device's model.
// ---------------------------------------------------------------------------
TEST(SnapshotTest, TitanImageMigratesOntoHd7970AndCompletes) {
  const std::string mid = SnapPath("migrate_mid");
  std::vector<int> acc_titan;
  double titan_clock = 0;
  {
    Device device{TitanProfile()};
    auto cu = mcuda::CreateNativeCudaApi(device);
    ASSERT_TRUE(StartSteps(*cu).ok());
    ASSERT_TRUE(RunSteps(*cu, 0, kSnapAt).ok());
    ASSERT_TRUE(cu->Snapshot(mid).ok());
    ASSERT_TRUE(RunSteps(*cu, kSnapAt, kSteps).ok());
    auto acc = ReadAcc(*cu);
    ASSERT_TRUE(acc.ok());
    acc_titan = *acc;
    titan_clock = cu->NowUs();
  }
  {
    Device device{HD7970Profile()};
    auto cu = mcuda::CreateNativeCudaApi(device);
    ASSERT_TRUE(cu->Restore(mid).ok());
    // Migration re-applies the *target* profile's CUDA bank mode rather
    // than carrying the titan's over (docs/SNAPSHOT.md).
    EXPECT_EQ(device.bank_mode(), HD7970Profile().cuda_bank_mode);
    EXPECT_EQ(device.stats().kernels_launched,
              static_cast<uint64_t>(kSnapAt));
    ASSERT_TRUE(RunSteps(*cu, kSnapAt, kSteps).ok());
    // The computation is deterministic, so migrated memory contents
    // match the titan run exactly; the clock follows the HD7970's
    // timing model instead.
    auto acc = ReadAcc(*cu);
    ASSERT_TRUE(acc.ok());
    EXPECT_EQ(*acc, acc_titan);
    EXPECT_NE(cu->NowUs(), titan_clock);
  }
  std::remove(mid.c_str());
}

/// The other direction: an HD7970 image migrates back onto the titan.
TEST(SnapshotTest, Hd7970ImageMigratesOntoTitanAndCompletes) {
  const std::string mid = SnapPath("migrate_back");
  std::vector<int> acc_hd;
  {
    Device device{HD7970Profile()};
    auto cu = mcuda::CreateNativeCudaApi(device);
    ASSERT_TRUE(StartSteps(*cu).ok());
    ASSERT_TRUE(RunSteps(*cu, 0, kSnapAt).ok());
    ASSERT_TRUE(cu->Snapshot(mid).ok());
    ASSERT_TRUE(RunSteps(*cu, kSnapAt, kSteps).ok());
    auto acc = ReadAcc(*cu);
    ASSERT_TRUE(acc.ok());
    acc_hd = *acc;
  }
  Device device{TitanProfile()};
  auto cu = mcuda::CreateNativeCudaApi(device);
  ASSERT_TRUE(cu->Restore(mid).ok());
  EXPECT_EQ(device.bank_mode(), TitanProfile().cuda_bank_mode);
  ASSERT_TRUE(RunSteps(*cu, kSnapAt, kSteps).ok());
  auto acc = ReadAcc(*cu);
  ASSERT_TRUE(acc.ok());
  EXPECT_EQ(*acc, acc_hd);
  std::remove(mid.c_str());
}

// ---------------------------------------------------------------------------
// __device__ symbol state survives the image.
// ---------------------------------------------------------------------------
TEST(SnapshotTest, DeviceSymbolContentsRoundTrip) {
  const std::string path = SnapPath("symbols");
  std::vector<int> want(256);
  for (int i = 0; i < 256; ++i) want[i] = i * i - 7;
  {
    Device device{TitanProfile()};
    auto cu = mcuda::CreateNativeCudaApi(device);
    ASSERT_TRUE(StartSteps(*cu).ok());
    ASSERT_TRUE(cu->MemcpyToSymbol("acc", want.data(),
                                   want.size() * sizeof(int))
                    .ok());
    ASSERT_TRUE(cu->Snapshot(path).ok());
  }
  Device device{TitanProfile()};
  auto cu = mcuda::CreateNativeCudaApi(device);
  ASSERT_TRUE(cu->Restore(path).ok());
  auto acc = ReadAcc(*cu);
  ASSERT_TRUE(acc.ok());
  EXPECT_EQ(*acc, want);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Error paths (docs/SNAPSHOT.md error-code table). Every failure must
// leave the target context untouched and usable.
// ---------------------------------------------------------------------------

/// A context with a known workload whose health we can re-verify after a
/// failed restore.
struct ClVictim {
  Device device{TitanProfile()};
  std::unique_ptr<mocl::OpenClApi> cl = mocl::CreateNativeClApi(device);
  ClWorkload w;

  void SetUpOrDie() { ASSERT_TRUE(w.Run(*cl).ok()); }
  void ExpectIntact() {
    std::vector<int> got(ClWorkload::kN);
    ASSERT_TRUE(
        cl->EnqueueReadBuffer(w.out, 0, ClWorkload::kN * 4, got.data())
            .ok());
    for (int i = 0; i < ClWorkload::kN; ++i)
      EXPECT_EQ(got[i], (i * 3 + 1) * 2);
  }
};

TEST(SnapshotTest, RestoreOfMissingFileFailsClean) {
  ClVictim v;
  v.SetUpOrDie();
  Status st = v.cl->Restore(SnapPath("does_not_exist"));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.api_code(), mocl::CL_INVALID_VALUE) << st.ToString();
  v.ExpectIntact();

  Device device{TitanProfile()};
  auto cu = mcuda::CreateNativeCudaApi(device);
  Status cst = cu->Restore(SnapPath("does_not_exist"));
  ASSERT_FALSE(cst.ok());
  EXPECT_EQ(cst.api_code(), mcuda::cudaErrorInvalidValue) << cst.ToString();
}

TEST(SnapshotTest, TruncatedImageFailsClean) {
  ClVictim v;
  v.SetUpOrDie();
  const std::string path = SnapPath("truncated");
  ASSERT_TRUE(v.cl->Snapshot(path).ok());
  std::vector<char> bytes = ReadAllBytes(path);
  bytes.resize(bytes.size() / 2);
  WriteAllBytes(path, bytes);

  Status st = v.cl->Restore(path);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.api_code(), mocl::CL_INVALID_VALUE) << st.ToString();
  v.ExpectIntact();
  std::remove(path.c_str());
}

TEST(SnapshotTest, CorruptedBodyFailsChecksum) {
  ClVictim v;
  v.SetUpOrDie();
  const std::string path = SnapPath("corrupt");
  ASSERT_TRUE(v.cl->Snapshot(path).ok());
  std::vector<char> bytes = ReadAllBytes(path);
  bytes.back() = static_cast<char>(bytes.back() ^ 0x5a);
  WriteAllBytes(path, bytes);

  // The inspector flags the mismatch structurally...
  auto info = snapshot::Inspect(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_FALSE(info->checksum_ok);
  // ...and restore refuses before mutating anything.
  Status st = v.cl->Restore(path);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.api_code(), mocl::CL_INVALID_VALUE) << st.ToString();
  EXPECT_NE(st.message().find("checksum"), std::string::npos)
      << st.ToString();
  v.ExpectIntact();
  std::remove(path.c_str());
}

TEST(SnapshotTest, VersionMismatchIsFailedPrecondition) {
  ClVictim v;
  v.SetUpOrDie();
  const std::string path = SnapPath("version");
  ASSERT_TRUE(v.cl->Snapshot(path).ok());
  // The u32 format version sits right after the 8-byte magic; it is
  // deliberately outside the body checksum so version skew reports as
  // version skew, not corruption.
  std::vector<char> bytes = ReadAllBytes(path);
  ASSERT_GT(bytes.size(), 12u);
  bytes[8] = static_cast<char>(0xfe);
  WriteAllBytes(path, bytes);

  Status st = v.cl->Restore(path);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(st.api_code(), mocl::CL_INVALID_OPERATION) << st.ToString();
  v.ExpectIntact();

  Device device{TitanProfile()};
  auto cu = mcuda::CreateNativeCudaApi(device);
  Status cst = cu->Restore(path);
  ASSERT_FALSE(cst.ok());
  EXPECT_EQ(cst.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(cst.api_code(), mcuda::cudaErrorInvalidValue) << cst.ToString();
  std::remove(path.c_str());
}

TEST(SnapshotTest, WrongLayerImageIsRejected) {
  const std::string cu_path = SnapPath("layer_cu");
  const std::string cl_path = SnapPath("layer_cl");
  {
    Device device{TitanProfile()};
    auto cu = mcuda::CreateNativeCudaApi(device);
    ASSERT_TRUE(StartSteps(*cu).ok());
    ASSERT_TRUE(cu->Snapshot(cu_path).ok());
  }
  {
    ClVictim v;
    v.SetUpOrDie();
    ASSERT_TRUE(v.cl->Snapshot(cl_path).ok());
    Status st = v.cl->Restore(cu_path);  // CUDA image into a CL context
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.api_code(), mocl::CL_INVALID_VALUE) << st.ToString();
    v.ExpectIntact();
  }
  Device device{TitanProfile()};
  auto cu = mcuda::CreateNativeCudaApi(device);
  Status st = cu->Restore(cl_path);  // CL image into a CUDA context
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.api_code(), mcuda::cudaErrorInvalidValue) << st.ToString();
  std::remove(cu_path.c_str());
  std::remove(cl_path.c_str());
}

/// Migrating onto a device whose global memory can't hold the image's
/// live allocations: kResourceExhausted with the layer's memory code,
/// and the target context keeps its own state (fail-before-mutate).
TEST(SnapshotTest, CapacityOverflowFailsBeforeMutation) {
  DeviceProfile tiny = TitanProfile();
  tiny.name = "SimGPU Tiny";
  tiny.global_mem_size = 64 * 1024;

  const std::string cl_path = SnapPath("capacity_cl");
  {
    Device device{TitanProfile()};
    auto cl = mocl::CreateNativeClApi(device);
    auto big = cl->CreateBuffer(MemFlags::kReadWrite, 1 << 20, nullptr);
    ASSERT_TRUE(big.ok());
    ASSERT_TRUE(cl->Snapshot(cl_path).ok());
  }
  {
    Device device{tiny};
    auto cl = mocl::CreateNativeClApi(device);
    std::vector<int> host(16, 42);
    auto keep = cl->CreateBuffer(MemFlags::kReadWrite, 64, host.data());
    ASSERT_TRUE(keep.ok());
    Status st = cl->Restore(cl_path);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(st.api_code(), mocl::CL_OUT_OF_RESOURCES) << st.ToString();
    std::vector<int> got(16);
    ASSERT_TRUE(cl->EnqueueReadBuffer(*keep, 0, 64, got.data()).ok());
    EXPECT_EQ(got, host);
  }
  std::remove(cl_path.c_str());

  const std::string cu_path = SnapPath("capacity_cu");
  {
    Device device{TitanProfile()};
    auto cu = mcuda::CreateNativeCudaApi(device);
    auto big = cu->Malloc(1 << 20);
    ASSERT_TRUE(big.ok());
    ASSERT_TRUE(cu->Snapshot(cu_path).ok());
  }
  {
    Device device{tiny};
    auto cu = mcuda::CreateNativeCudaApi(device);
    Status st = cu->Restore(cu_path);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(st.api_code(), mcuda::cudaErrorMemoryAllocation)
        << st.ToString();
    // Still usable after the refusal.
    auto p = cu->Malloc(64);
    EXPECT_TRUE(p.ok());
  }
  std::remove(cu_path.c_str());
}

// ---------------------------------------------------------------------------
// Wrapper forwarding: both wrappers expose the extension pair, forward
// to the inner native layer, and re-seal errors into their own API's
// vocabulary.
// ---------------------------------------------------------------------------
TEST(SnapshotTest, Cl2CuForwardsAndSealsIntoClVocabulary) {
  Device device{TitanProfile()};
  auto cu = mcuda::CreateNativeCudaApi(device);
  auto cl = cl2cu::CreateClOnCudaApi(*cu);

  auto buf = cl->CreateBuffer(MemFlags::kReadWrite, 256, nullptr);
  ASSERT_TRUE(buf.ok());
  std::vector<int> host(64);
  for (int i = 0; i < 64; ++i) host[i] = 5 * i;
  ASSERT_TRUE(cl->EnqueueWriteBuffer(*buf, 0, 256, host.data()).ok());

  const std::string path = SnapPath("cl2cu");
  ASSERT_TRUE(cl->Snapshot(path).ok());
  // The image records the inner native CUDA layer.
  auto info = snapshot::Inspect(path);
  ASSERT_TRUE(info.ok());
  bool has_mcud = false;
  for (const auto& s : info->sections) has_mcud |= (s.tag == "MCUD");
  EXPECT_TRUE(has_mcud);

  // Same-stack restore: handles stay valid, contents come back.
  std::vector<int> other(64, -1);
  ASSERT_TRUE(cl->EnqueueWriteBuffer(*buf, 0, 256, other.data()).ok());
  ASSERT_TRUE(cl->Restore(path).ok());
  std::vector<int> got(64);
  ASSERT_TRUE(cl->EnqueueReadBuffer(*buf, 0, 256, got.data()).ok());
  EXPECT_EQ(got, host);

  // Errors arrive in CL vocabulary.
  Status st = cl->Restore(SnapPath("cl2cu_missing"));
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(mocl::IsClCode(st.api_code())) << st.ToString();
  EXPECT_EQ(st.api_code(), mocl::CL_INVALID_VALUE) << st.ToString();
  std::remove(path.c_str());
}

TEST(SnapshotTest, Cu2ClForwardsAndSealsIntoCudaVocabulary) {
  Device device{TitanProfile()};
  auto cl = mocl::CreateNativeClApi(device);
  auto cu = cu2cl::CreateCudaOnClApi(*cl, {});

  auto p = cu->Malloc(256);
  ASSERT_TRUE(p.ok());
  std::vector<int> host(64);
  for (int i = 0; i < 64; ++i) host[i] = 9 - i;
  ASSERT_TRUE(
      cu->Memcpy(*p, host.data(), 256, MemcpyKind::kHostToDevice).ok());

  const std::string path = SnapPath("cu2cl");
  ASSERT_TRUE(cu->Snapshot(path).ok());
  auto info = snapshot::Inspect(path);
  ASSERT_TRUE(info.ok());
  bool has_mocl = false;
  for (const auto& s : info->sections) has_mocl |= (s.tag == "MOCL");
  EXPECT_TRUE(has_mocl);

  std::vector<int> other(64, -1);
  ASSERT_TRUE(
      cu->Memcpy(*p, other.data(), 256, MemcpyKind::kHostToDevice).ok());
  ASSERT_TRUE(cu->Restore(path).ok());
  std::vector<int> got(64);
  ASSERT_TRUE(
      cu->Memcpy(got.data(), *p, 256, MemcpyKind::kDeviceToHost).ok());
  EXPECT_EQ(got, host);

  Status st = cu->Restore(SnapPath("cu2cl_missing"));
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(mcuda::IsCudaCode(st.api_code())) << st.ToString();
  EXPECT_EQ(st.api_code(), mcuda::cudaErrorInvalidValue) << st.ToString();
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// A lost device can still be imaged (post-mortem snapshots), and the
// loss is part of the image: the restored context is lost too until its
// context is reset.
// ---------------------------------------------------------------------------
TEST(SnapshotTest, DeviceLossSurvivesTheImage) {
  const std::string path = SnapPath("lost");
  {
    Device device{TitanProfile()};
    auto cu = mcuda::CreateNativeCudaApi(device);
    ASSERT_TRUE(StartSteps(*cu).ok());
    FaultPlan plan;
    plan.points.push_back(FaultPoint{FaultSite::kTransfer, 0,
                                     FaultKind::kDeviceLost, false, 0});
    device.faults().set_plan(plan);
    int v = 1;
    Status st = cu->MemcpyToSymbol("step_count", &v, sizeof(v));
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kDeviceLost);
    ASSERT_TRUE(cu->Snapshot(path).ok()) << "post-mortem snapshot failed";
  }
  Device device{TitanProfile()};
  auto cu = mcuda::CreateNativeCudaApi(device);
  ASSERT_TRUE(cu->Restore(path).ok());
  auto p = cu->Malloc(64);
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kDeviceLost);
  device.faults().ResetContext();
  EXPECT_TRUE(cu->Malloc(64).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bridgecl
