// Determinism harness for the block-parallel execution engine
// (docs/PERFORMANCE.md): the whole benchmark corpus must be bit-identical
// between serial execution (BRIDGECL_JOBS=1) and an 8-worker pool —
// checksums, every DeviceStats counter, the simulated clock, per-engine
// busy time, and exported Chrome traces. Error paths get the same
// treatment: guarded-memory faults and exhaustive nth-fault sweeps must
// report byte-identical statuses at any worker count. The content-hashed
// module cache rides along: hits skip the front end (surfaced on build
// trace spans), replay diagnostics byte-identically, charge the same
// simulated build cost, and honor the BRIDGECL_MODULE_CACHE kill switch.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "apps/app.h"
#include "interp/executor.h"
#include "interp/module.h"
#include "lang/dialect.h"
#include "mcuda/cuda_api.h"
#include "mocl/cl_api.h"
#include "mocl/cl_errors.h"
#include "simgpu/device.h"
#include "simgpu/fault_injector.h"
#include "trace/exporters.h"
#include "trace/session.h"

namespace bridgecl {
namespace {

using apps::App;
using apps::AppPtr;
using apps::FindApp;
using mocl::ClMem;
using mocl::MemFlags;
using simgpu::Device;
using simgpu::DeviceStats;
using simgpu::EngineId;
using simgpu::FaultKind;
using simgpu::FaultPlan;
using simgpu::FaultPoint;
using simgpu::FaultSite;
using simgpu::TitanProfile;

constexpr int kWorkers = 8;

/// Pins the worker count for one scope and restores the environment
/// default (BRIDGECL_JOBS / hardware concurrency) on exit, so tests never
/// leak a count into each other.
struct ScopedWorkers {
  explicit ScopedWorkers(int n) { interp::SetWorkerCount(n); }
  ~ScopedWorkers() { interp::SetWorkerCount(0); }
};

void ExpectStatsEqual(const DeviceStats& a, const DeviceStats& b) {
  EXPECT_EQ(a.kernels_launched, b.kernels_launched);
  EXPECT_EQ(a.work_items_executed, b.work_items_executed);
  EXPECT_EQ(a.global_accesses, b.global_accesses);
  EXPECT_EQ(a.shared_accesses, b.shared_accesses);
  EXPECT_EQ(a.shared_bank_words, b.shared_bank_words);
  EXPECT_EQ(a.constant_accesses, b.constant_accesses);
  EXPECT_EQ(a.image_accesses, b.image_accesses);
  EXPECT_EQ(a.atomics, b.atomics);
  EXPECT_EQ(a.barriers, b.barriers);
  EXPECT_EQ(a.host_to_device_bytes, b.host_to_device_bytes);
  EXPECT_EQ(a.device_to_host_bytes, b.device_to_host_bytes);
  EXPECT_EQ(a.device_to_device_bytes, b.device_to_device_bytes);
  EXPECT_EQ(a.api_calls, b.api_calls);
  EXPECT_EQ(a.ops_executed, b.ops_executed);
}

// ---------------------------------------------------------------------------
// Whole-corpus bit-identity: every app, both dialects, 1 vs 8 workers.
// ---------------------------------------------------------------------------
struct RunSnapshot {
  Status status;
  double checksum = 0;
  double clock = 0;
  double compute_busy = 0;
  double copy_busy = 0;
  DeviceStats stats;
};

void ExpectSnapshotsIdentical(const RunSnapshot& serial,
                              const RunSnapshot& parallel) {
  ASSERT_TRUE(serial.status.ok()) << serial.status.ToString();
  ASSERT_TRUE(parallel.status.ok()) << parallel.status.ToString();
  // Exact equality throughout: the parallel engine reduces per-block
  // results in canonical block order, so even floating-point cycle
  // accumulation and checksums must match to the last bit.
  EXPECT_EQ(serial.checksum, parallel.checksum);
  EXPECT_EQ(serial.clock, parallel.clock);
  // The compute-engine timing model is untouched by the host-side worker
  // pool: simulated busy time is a function of cycle counts only.
  EXPECT_EQ(serial.compute_busy, parallel.compute_busy);
  EXPECT_EQ(serial.copy_busy, parallel.copy_busy);
  ExpectStatsEqual(serial.stats, parallel.stats);
}

RunSnapshot RunClApp(App& app, int workers) {
  ScopedWorkers sw(workers);
  Device dev(TitanProfile());
  auto cl = mocl::CreateNativeClApi(dev);
  RunSnapshot s;
  s.status = app.RunCl(*cl, &s.checksum);
  s.clock = dev.now_us();
  s.compute_busy = dev.EngineBusyUs(EngineId::kCompute);
  s.copy_busy = dev.EngineBusyUs(EngineId::kCopy);
  s.stats = dev.stats();
  return s;
}

RunSnapshot RunCudaApp(App& app, int workers) {
  ScopedWorkers sw(workers);
  Device dev(TitanProfile());
  auto cu = mcuda::CreateNativeCudaApi(dev);
  RunSnapshot s;
  s.status = app.RunCuda(*cu, &s.checksum);
  s.clock = dev.now_us();
  s.compute_busy = dev.EngineBusyUs(EngineId::kCompute);
  s.copy_busy = dev.EngineBusyUs(EngineId::kCopy);
  s.stats = dev.stats();
  return s;
}

std::vector<std::string> AllAppNames() {
  std::vector<std::string> names;
  for (auto maker : {apps::RodiniaApps, apps::NpbApps, apps::ToolkitApps})
    for (auto& app : maker()) names.push_back(app->name());
  return names;
}

class ParallelExecAppTest : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(
    AllApps, ParallelExecAppTest, ::testing::ValuesIn(AllAppNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string n = info.param;
      for (char& c : n)
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      return n;
    });

TEST_P(ParallelExecAppTest, OpenClBitIdenticalAcrossWorkerCounts) {
  AppPtr app = FindApp(GetParam());
  ASSERT_NE(app, nullptr);
  if (!app->has_opencl()) GTEST_SKIP() << "no OpenCL version";
  RunSnapshot serial = RunClApp(*app, 1);
  RunSnapshot parallel = RunClApp(*app, kWorkers);
  ExpectSnapshotsIdentical(serial, parallel);
}

TEST_P(ParallelExecAppTest, CudaBitIdenticalAcrossWorkerCounts) {
  AppPtr app = FindApp(GetParam());
  ASSERT_NE(app, nullptr);
  if (!app->has_cuda()) GTEST_SKIP() << "no CUDA version";
  RunSnapshot serial = RunCudaApp(*app, 1);
  RunSnapshot parallel = RunCudaApp(*app, kWorkers);
  ExpectSnapshotsIdentical(serial, parallel);
}

// ---------------------------------------------------------------------------
// Trace bit-identity: the exported Chrome JSON carries simulated
// timestamps and counter deltas only, so it must not change with the
// worker count either. (Module cache pinned off: the second process-wide
// compile of the same source would legitimately flip a build span's
// hit/miss metadata.)
// ---------------------------------------------------------------------------
std::string TracedClAppJson(App& app, int workers) {
  ScopedWorkers sw(workers);
  Device dev(TitanProfile());
  trace::TraceSession session(dev, {});
  auto cl = mocl::CreateNativeClApi(dev);
  double checksum = 0;
  Status st = app.RunCl(*cl, &checksum);
  EXPECT_TRUE(st.ok()) << app.name() << ": " << st.ToString();
  return trace::ChromeTraceJson(session.recorder());
}

TEST(ParallelExecTest, TracesBitIdenticalAcrossWorkerCounts) {
  interp::SetModuleCacheEnabled(0);
  // srad serializes under the cross-block hazard analysis (in-place
  // stencil), gaussian and pathfinder run block-parallel: both regimes
  // must export identical traces.
  for (const char* name : {"srad", "gaussian", "pathfinder"}) {
    SCOPED_TRACE(name);
    AppPtr app = FindApp(name);
    ASSERT_NE(app, nullptr);
    EXPECT_EQ(TracedClAppJson(*app, 1), TracedClAppJson(*app, kWorkers));
  }
  interp::SetModuleCacheEnabled(-1);
}

// ---------------------------------------------------------------------------
// Error-path identity: guarded-memory faults under 8 workers report the
// same canonical first fault as the serial engine (lowest failing block
// wins the reduction, whatever order workers hit the redzone).
// ---------------------------------------------------------------------------
Status RunGuardedOob(int workers) {
  ScopedWorkers sw(workers);
  Device dev(TitanProfile());
  dev.vm().set_guarded(true);
  auto cl = mocl::CreateNativeClApi(dev);
  // 64 work-items in 8 blocks store into a 25-float allocation: items
  // 25..63 all overrun, spread across blocks 3..7. The reported fault
  // must be block 3's item 25 at every worker count.
  const char* src =
      "__kernel void pexec_oob_store(__global float* c) {"
      "  c[get_global_id(0)] = 1.0f;"
      "}";
  auto run = [&]() -> Status {
    BRIDGECL_ASSIGN_OR_RETURN(auto prog, cl->CreateProgramWithSource(src));
    BRIDGECL_RETURN_IF_ERROR(cl->BuildProgram(prog));
    BRIDGECL_ASSIGN_OR_RETURN(auto kernel,
                              cl->CreateKernel(prog, "pexec_oob_store"));
    BRIDGECL_ASSIGN_OR_RETURN(
        ClMem c, cl->CreateBuffer(MemFlags::kWriteOnly, 25 * 4, nullptr));
    BRIDGECL_RETURN_IF_ERROR(cl->SetKernelArg(kernel, 0, sizeof(ClMem), &c));
    size_t gws = 64, lws = 8;
    Status st = cl->EnqueueNDRangeKernel(kernel, 1, &gws, &lws);
    if (st.ok()) st = cl->Finish();
    (void)cl->ReleaseMemObject(c);
    return st;
  };
  return run();
}

TEST(ParallelExecTest, GuardedOobFaultIdenticalAcrossWorkerCounts) {
  Status serial = RunGuardedOob(1);
  Status parallel = RunGuardedOob(kWorkers);
  ASSERT_FALSE(serial.ok());
  ASSERT_FALSE(parallel.ok());
  EXPECT_EQ(serial.api_code(), parallel.api_code());
  EXPECT_EQ(serial.code(), parallel.code());
  EXPECT_EQ(serial.message(), parallel.message());
  EXPECT_NE(serial.message().find("work-item global (25,0,0)"),
            std::string::npos)
      << serial.ToString();
}

// ---------------------------------------------------------------------------
// Nth-fault sweep identity: an armed fault plan forces the launch onto
// the serial path (injection ordinals are defined by canonical execution
// order), so every ordinal's failure is byte-identical at any requested
// worker count.
// ---------------------------------------------------------------------------
Status RunVaddWithPlan(const FaultPlan& plan, int workers,
                       DeviceStats* stats) {
  ScopedWorkers sw(workers);
  Device dev(TitanProfile());
  dev.faults().set_plan(plan);
  auto cl = mocl::CreateNativeClApi(dev);
  const char* src =
      "__kernel void pexec_vadd(__global float* a, __global float* b,"
      "                         __global float* c, int n) {"
      "  int i = get_global_id(0);"
      "  if (i < n) c[i] = a[i] + b[i];"
      "}";
  constexpr int kN = 16;
  auto run = [&]() -> Status {
    std::vector<float> a(kN, 1.0f), b(kN, 2.0f), out(kN);
    BRIDGECL_ASSIGN_OR_RETURN(auto prog, cl->CreateProgramWithSource(src));
    BRIDGECL_RETURN_IF_ERROR(cl->BuildProgram(prog));
    BRIDGECL_ASSIGN_OR_RETURN(auto kernel,
                              cl->CreateKernel(prog, "pexec_vadd"));
    BRIDGECL_ASSIGN_OR_RETURN(
        ClMem ma, cl->CreateBuffer(MemFlags::kReadOnly, kN * 4, a.data()));
    BRIDGECL_ASSIGN_OR_RETURN(
        ClMem mb, cl->CreateBuffer(MemFlags::kReadOnly, kN * 4, b.data()));
    BRIDGECL_ASSIGN_OR_RETURN(
        ClMem mc, cl->CreateBuffer(MemFlags::kWriteOnly, kN * 4, nullptr));
    BRIDGECL_RETURN_IF_ERROR(cl->SetKernelArg(kernel, 0, sizeof(ClMem), &ma));
    BRIDGECL_RETURN_IF_ERROR(cl->SetKernelArg(kernel, 1, sizeof(ClMem), &mb));
    BRIDGECL_RETURN_IF_ERROR(cl->SetKernelArg(kernel, 2, sizeof(ClMem), &mc));
    int n = kN;
    BRIDGECL_RETURN_IF_ERROR(cl->SetKernelArg(kernel, 3, sizeof(int), &n));
    size_t gws = kN, lws = 4;
    BRIDGECL_RETURN_IF_ERROR(cl->EnqueueNDRangeKernel(kernel, 1, &gws, &lws));
    BRIDGECL_RETURN_IF_ERROR(cl->EnqueueReadBuffer(mc, 0, kN * 4,
                                                   out.data()));
    for (ClMem m : {ma, mb, mc}) (void)cl->ReleaseMemObject(m);
    return OkStatus();
  };
  Status st = run();
  if (stats != nullptr) *stats = dev.stats();
  return st;
}

FaultPlan OneShot(FaultSite site, uint64_t nth) {
  FaultPlan plan;
  plan.points.push_back(FaultPoint{site, nth, FaultKind::kError, false, 0});
  return plan;
}

TEST(ParallelExecTest, NthFaultSweepIdenticalAcrossWorkerCounts) {
  // Sweep increasing ordinals until the plan stops firing: every ordinal
  // that fails must fail with byte-identical status and counters at both
  // worker counts.
  for (FaultSite site : {FaultSite::kMemoryAccess, FaultSite::kInstruction}) {
    SCOPED_TRACE(simgpu::FaultSiteName(site));
    uint64_t nth = 0;
    for (; nth < 4096; ++nth) {
      SCOPED_TRACE("ordinal " + std::to_string(nth));
      DeviceStats stats1, stats8;
      Status s1 = RunVaddWithPlan(OneShot(site, nth), 1, &stats1);
      Status s8 = RunVaddWithPlan(OneShot(site, nth), kWorkers, &stats8);
      EXPECT_EQ(s1.ok(), s8.ok());
      if (s1.ok() || s8.ok()) break;  // past the last ordinal that fires
      EXPECT_EQ(s1.api_code(), s8.api_code());
      EXPECT_EQ(s1.code(), s8.code());
      EXPECT_EQ(s1.message(), s8.message());
      ExpectStatsEqual(stats1, stats8);
    }
    EXPECT_GT(nth, 0u) << "the sweep never fired a fault";
  }
}

// ---------------------------------------------------------------------------
// Module cache: hits skip the front end, replay diagnostics, surface on
// build trace spans, charge identical simulated cost, and can be killed.
// ---------------------------------------------------------------------------

/// Build-span events of the recorder, in order.
std::vector<trace::TraceEvent> BuildSpans(const trace::TraceRecorder& rec) {
  std::vector<trace::TraceEvent> out;
  for (const trace::TraceEvent& e : rec.events())
    if (std::strcmp(e.name, "clBuildProgram") == 0) out.push_back(e);
  return out;
}

TEST(ParallelExecTest, ModuleCacheHitSkipsFrontEndAndMarksSpans) {
  interp::SetModuleCacheEnabled(1);
  // Unique source so this test's first compile is a guaranteed miss even
  // though the cache is process-wide.
  const char* src =
      "__kernel void pexec_cache_probe(__global float* x) {"
      "  x[get_global_id(0)] = 2.0f;"
      "}";
  Device dev(TitanProfile());
  trace::TraceSession session(dev, {});
  auto cl = mocl::CreateNativeClApi(dev);
  interp::ModuleCacheStats before = interp::GetModuleCacheStats();
  auto p1 = cl->CreateProgramWithSource(src);
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(cl->BuildProgram(*p1).ok());
  auto p2 = cl->CreateProgramWithSource(src);
  ASSERT_TRUE(p2.ok());
  ASSERT_TRUE(cl->BuildProgram(*p2).ok());
  interp::ModuleCacheStats after = interp::GetModuleCacheStats();
  EXPECT_EQ(after.misses, before.misses + 1);
  EXPECT_EQ(after.hits, before.hits + 1);

  // Build logs identical on miss and hit.
  auto log1 = cl->GetProgramBuildLog(*p1);
  auto log2 = cl->GetProgramBuildLog(*p2);
  ASSERT_TRUE(log1.ok() && log2.ok());
  EXPECT_EQ(*log1, *log2);

  // The spans carry the outcome and the cumulative counters...
  std::vector<trace::TraceEvent> spans = BuildSpans(session.recorder());
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].module_cache, 0);  // miss
  EXPECT_EQ(spans[1].module_cache, 1);  // hit
  EXPECT_EQ(spans[1].module_cache_hits, spans[0].module_cache_hits + 1);
  EXPECT_EQ(spans[1].module_cache_misses, spans[0].module_cache_misses);
  // ...and the simulated build cost is charged identically on hit and
  // miss (the cache saves wall-clock only, never simulated time).
  EXPECT_EQ(spans[0].end_us - spans[0].begin_us,
            spans[1].end_us - spans[1].begin_us);
  interp::SetModuleCacheEnabled(-1);
}

TEST(ParallelExecTest, ModuleCacheReplaysFailureDiagnosticsIdentically) {
  interp::SetModuleCacheEnabled(1);
  const char* broken =
      "__kernel void pexec_cache_broken(__global float* x) {"
      "  x[get_global_id(0)] = undeclared_pexec_name;"
      "}";
  auto build = [&](std::string* log) -> Status {
    Device dev(TitanProfile());
    auto cl = mocl::CreateNativeClApi(dev);
    auto prog = cl->CreateProgramWithSource(broken);
    EXPECT_TRUE(prog.ok());
    Status st = cl->BuildProgram(*prog);
    auto l = cl->GetProgramBuildLog(*prog);
    EXPECT_TRUE(l.ok());
    *log = *l;
    return st;
  };
  std::string log_miss, log_hit;
  Status miss = build(&log_miss);
  Status hit = build(&log_hit);
  ASSERT_FALSE(miss.ok());
  ASSERT_FALSE(hit.ok());
  EXPECT_EQ(miss.api_code(), mocl::CL_BUILD_PROGRAM_FAILURE);
  EXPECT_EQ(hit.api_code(), miss.api_code());
  EXPECT_EQ(hit.code(), miss.code());
  EXPECT_EQ(hit.message(), miss.message());
  EXPECT_FALSE(log_miss.empty());
  // clGetProgramBuildInfo is byte-identical whether the diagnostics came
  // from a live front-end run or from the cache's replay.
  EXPECT_EQ(log_miss, log_hit);
  interp::SetModuleCacheEnabled(-1);
}

TEST(ParallelExecTest, ModuleCacheKillSwitchBypassesEntirely) {
  interp::SetModuleCacheEnabled(0);
  const char* src =
      "__kernel void pexec_cache_killed(__global float* x) {"
      "  x[get_global_id(0)] = 3.0f;"
      "}";
  Device dev(TitanProfile());
  trace::TraceSession session(dev, {});
  auto cl = mocl::CreateNativeClApi(dev);
  interp::ModuleCacheStats before = interp::GetModuleCacheStats();
  for (int i = 0; i < 2; ++i) {
    auto p = cl->CreateProgramWithSource(src);
    ASSERT_TRUE(p.ok());
    ASSERT_TRUE(cl->BuildProgram(*p).ok());
  }
  interp::ModuleCacheStats after = interp::GetModuleCacheStats();
  // Disabled: no counter moves, and build spans carry no cache metadata.
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
  for (const trace::TraceEvent& e : BuildSpans(session.recorder()))
    EXPECT_EQ(e.module_cache, -1);
  interp::SetModuleCacheEnabled(-1);
}

TEST(ParallelExecTest, ModuleCacheKeySeparatesInputs) {
  const std::string src = "__kernel void k(__global int* x) { x[0] = 1; }";
  uint64_t base = interp::ModuleCacheKey(src, lang::Dialect::kOpenCL, "");
  EXPECT_NE(base,
            interp::ModuleCacheKey(src + " ", lang::Dialect::kOpenCL, ""));
  EXPECT_NE(base, interp::ModuleCacheKey(src, lang::Dialect::kCUDA, ""));
  EXPECT_NE(base,
            interp::ModuleCacheKey(src, lang::Dialect::kOpenCL, "-DFOO"));
  // Deterministic: same inputs, same key, every call.
  EXPECT_EQ(base, interp::ModuleCacheKey(src, lang::Dialect::kOpenCL, ""));
}

}  // namespace
}  // namespace bridgecl
