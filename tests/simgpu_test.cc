#include <gtest/gtest.h>

#include "simgpu/device.h"
#include "simgpu/fiber.h"

namespace bridgecl::simgpu {
namespace {

TEST(Dim3Test, NdrangeGridConversion) {
  Dim3 grid;
  ASSERT_TRUE(NdrangeToGrid(Dim3(256, 64), Dim3(32, 8), &grid));
  EXPECT_EQ(grid, Dim3(8, 8));
  EXPECT_FALSE(NdrangeToGrid(Dim3(100), Dim3(32), &grid));  // not divisible
  EXPECT_FALSE(NdrangeToGrid(Dim3(100), Dim3(0), &grid));
  EXPECT_EQ(GridToNdrange(Dim3(8, 8), Dim3(32, 8)), Dim3(256, 64));
}

TEST(VirtualMemoryTest, AllocResolveFree) {
  VirtualMemory vm(1 << 20);
  auto a = vm.AllocGlobal(256);
  ASSERT_TRUE(a.ok());
  auto b = vm.AllocGlobal(256);
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);
  EXPECT_EQ(vm.global_in_use(), 512u);
  auto p = vm.Resolve(*a + 100, 8);
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(vm.Resolve(*a + 250, 8).ok() == false);  // crosses the end
  ASSERT_TRUE(vm.FreeGlobal(*a).ok());
  EXPECT_EQ(vm.global_in_use(), 256u);
  EXPECT_FALSE(vm.FreeGlobal(*a).ok());  // double free
  EXPECT_FALSE(vm.Resolve(*a, 8).ok());  // use after free
}

TEST(VirtualMemoryTest, CapacityEnforced) {
  VirtualMemory vm(1024);
  EXPECT_TRUE(vm.AllocGlobal(1000).ok());
  auto r = vm.AllocGlobal(100);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(VirtualMemoryTest, SegmentsDistinct) {
  VirtualMemory vm(1 << 20);
  auto g = vm.AllocGlobal(64);
  ASSERT_TRUE(g.ok());
  vm.MapConstant(64);
  vm.MapShared(64);
  vm.MapPrivate(64);
  EXPECT_EQ(*vm.SegmentOf(*g), Segment::kGlobal);
  EXPECT_EQ(*vm.SegmentOf(vm.constant_base()), Segment::kConstant);
  EXPECT_EQ(*vm.SegmentOf(vm.shared_base()), Segment::kShared);
  EXPECT_EQ(*vm.SegmentOf(vm.private_base()), Segment::kPrivate);
  EXPECT_TRUE(vm.Resolve(vm.constant_base(), 64).ok());
  EXPECT_FALSE(vm.Resolve(vm.constant_base() + 32, 64).ok());
  EXPECT_FALSE(vm.SegmentOf(4).ok());  // inside the null guard
}

TEST(DeviceTest, BankWordAccounting) {
  Device d(TitanProfile());
  d.set_bank_mode(BankMode::k32Bit);
  EXPECT_EQ(d.SharedAccessBankWords(0, 4), 1);
  EXPECT_EQ(d.SharedAccessBankWords(0, 8), 2);   // double spans 2 words
  EXPECT_EQ(d.SharedAccessBankWords(2, 4), 2);   // misaligned
  d.set_bank_mode(BankMode::k64Bit);
  EXPECT_EQ(d.SharedAccessBankWords(0, 8), 1);   // the §6.2 effect
  EXPECT_EQ(d.SharedAccessBankWords(0, 4), 1);
  EXPECT_EQ(d.SharedAccessBankWords(4, 8), 2);   // straddles two banks
}

TEST(DeviceTest, OccupancyModel) {
  Device d(TitanProfile());
  // 65536 regs / 2048 threads = 32 regs for full occupancy.
  EXPECT_DOUBLE_EQ(d.OccupancyFor(32), 1.0);
  EXPECT_NEAR(d.OccupancyFor(85), 0.375, 0.01);  // cfd CUDA variant
  EXPECT_NEAR(d.OccupancyFor(68), 0.469, 0.01);  // cfd OpenCL variant
  EXPECT_GT(d.OccupancyFor(16), 0.99);           // capped at 1.0
}

TEST(DeviceTest, ClockAdvances) {
  Device d(TitanProfile());
  EXPECT_DOUBLE_EQ(d.now_us(), 0.0);
  d.ChargeApiCall();
  double t1 = d.now_us();
  EXPECT_GT(t1, 0.0);
  d.ChargeCopy(1 << 20);
  EXPECT_GT(d.now_us(), t1 + 50.0);  // 1MB over ~10GB/s ≈ 100us
  EXPECT_EQ(d.stats().api_calls, 1u);
}

TEST(FiberTest, PlainTasksComplete) {
  FiberGroup g(64 * 1024);
  std::vector<int> done(8, 0);
  Status st = g.Run(8, [&](int i) {
    done[i] = i + 1;
    return OkStatus();
  });
  ASSERT_TRUE(st.ok());
  for (int i = 0; i < 8; ++i) EXPECT_EQ(done[i], i + 1);
}

TEST(FiberTest, BarrierSynchronizes) {
  FiberGroup g(64 * 1024);
  // Phase counter: all fibers must write phase-1 data before any reads it.
  std::vector<int> a(16, 0), b(16, 0);
  Status st = g.Run(16, [&](int i) {
    a[i] = i * 2;
    g.Barrier();
    b[i] = a[15 - i];  // reads sibling data written before the barrier
    return OkStatus();
  });
  ASSERT_TRUE(st.ok());
  for (int i = 0; i < 16; ++i) EXPECT_EQ(b[i], (15 - i) * 2);
}

TEST(FiberTest, MultipleBarriers) {
  FiberGroup g(64 * 1024);
  int counter = 0;
  Status st = g.Run(4, [&](int) {
    for (int round = 0; round < 5; ++round) {
      ++counter;
      g.Barrier();
    }
    return OkStatus();
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(counter, 20);
}

TEST(FiberTest, ErrorPropagates) {
  FiberGroup g(64 * 1024);
  Status st = g.Run(4, [&](int i) {
    if (i == 2) return InternalError("boom");
    return OkStatus();
  });
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "boom");
}

TEST(FiberTest, EarlyExitTolerated) {
  // Some work-items return before the barrier (guarded kernels).
  FiberGroup g(64 * 1024);
  int reached = 0;
  Status st = g.Run(8, [&](int i) {
    if (i >= 4) return OkStatus();  // early exit
    g.Barrier();
    ++reached;
    return OkStatus();
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(reached, 4);
}

TEST(ProfileTest, TableTwoProfiles) {
  const DeviceProfile& t = TitanProfile();
  EXPECT_EQ(t.warp_size, 32);
  EXPECT_EQ(t.opencl_bank_mode, BankMode::k32Bit);
  EXPECT_EQ(t.cuda_bank_mode, BankMode::k64Bit);
  const DeviceProfile& a = HD7970Profile();
  EXPECT_EQ(a.warp_size, 64);
  EXPECT_EQ(a.opencl_bank_mode, a.cuda_bank_mode);  // no CUDA on AMD
  EXPECT_FALSE(SystemConfigurationTable().empty());
}

}  // namespace
}  // namespace bridgecl::simgpu
