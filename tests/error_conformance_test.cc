// Error-code conformance tables: every mocl / mcuda entry point must
// return the spec-mandated code for null or unknown handles, invalid
// sizes, and wrong-state objects — plus the guarded-memory demonstration
// (an off-by-one kernel write is silent on granule-padded allocations and
// a named, attributed fault under guarded mode) and the BRIDGECL_CHECK
// abort contract for dereferencing a failed StatusOr. docs/ROBUSTNESS.md
// carries the same tables in prose.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cl2cu/cl_on_cuda.h"
#include "cu2cl/cuda_on_cl.h"
#include "mcuda/cuda_api.h"
#include "mcuda/cuda_errors.h"
#include "mocl/cl_api.h"
#include "mocl/cl_errors.h"
#include "simgpu/device.h"
#include "simgpu/fault_injector.h"

namespace bridgecl {
namespace {

using mcuda::LaunchArg;
using mcuda::MemcpyKind;
using mocl::ClDeviceAttr;
using mocl::ClKernel;
using mocl::ClMem;
using mocl::ClProgram;
using mocl::MemFlags;
using simgpu::Device;
using simgpu::Dim3;
using simgpu::TitanProfile;

const char* kVaddCl =
    "__kernel void vadd(__global float* a, __global float* b,"
    "                   __global float* c, int n) {"
    "  int i = get_global_id(0);"
    "  if (i < n) c[i] = a[i] + b[i];"
    "}";

const char* kVaddCu =
    "__global__ void vadd(float* a, float* b, float* c, int n) {\n"
    "  int i = blockIdx.x * blockDim.x + threadIdx.x;\n"
    "  if (i < n) c[i] = a[i] + b[i];\n"
    "}\n";

// ---------------------------------------------------------------------------
// OpenCL entry points (native binding).
// ---------------------------------------------------------------------------
class MoclConformanceTest : public ::testing::Test {
 protected:
  Device dev{TitanProfile()};
  std::unique_ptr<mocl::OpenClApi> cl = mocl::CreateNativeClApi(dev);

  // A built vadd program with a kernel, for wrong-state probes.
  ClProgram BuiltProgram() {
    auto p = cl->CreateProgramWithSource(kVaddCl);
    EXPECT_TRUE(p.ok());
    EXPECT_TRUE(cl->BuildProgram(*p).ok());
    return *p;
  }
};

TEST_F(MoclConformanceTest, DeviceQueryWrongAttributeKind) {
  EXPECT_EQ(cl->QueryDeviceInfoString(ClDeviceAttr::kMaxComputeUnits)
                .status()
                .api_code(),
            mocl::CL_INVALID_VALUE);
  EXPECT_EQ(cl->QueryDeviceInfoUint(ClDeviceAttr::kName).status().api_code(),
            mocl::CL_INVALID_VALUE);
}

TEST_F(MoclConformanceTest, SubDevicePartitionCount) {
  EXPECT_EQ(cl->CreateSubDevices(0).status().api_code(),
            mocl::CL_INVALID_DEVICE_PARTITION_COUNT);
  EXPECT_EQ(cl->CreateSubDevices(1 << 20).status().api_code(),
            mocl::CL_INVALID_DEVICE_PARTITION_COUNT);
}

TEST_F(MoclConformanceTest, BufferSizesAndHandles) {
  EXPECT_EQ(
      cl->CreateBuffer(MemFlags::kReadWrite, 0, nullptr).status().api_code(),
      mocl::CL_INVALID_BUFFER_SIZE);
  EXPECT_EQ(cl->ReleaseMemObject(ClMem{9999}).api_code(),
            mocl::CL_INVALID_MEM_OBJECT);

  auto buf = cl->CreateBuffer(MemFlags::kReadWrite, 64, nullptr);
  ASSERT_TRUE(buf.ok());
  std::vector<std::byte> host(128);
  EXPECT_EQ(cl->EnqueueWriteBuffer(*buf, 32, 64, host.data()).api_code(),
            mocl::CL_INVALID_VALUE);
  EXPECT_EQ(cl->EnqueueReadBuffer(*buf, 0, 128, host.data()).api_code(),
            mocl::CL_INVALID_VALUE);
  EXPECT_EQ(cl->EnqueueReadBuffer(ClMem{9999}, 0, 4, host.data()).api_code(),
            mocl::CL_INVALID_MEM_OBJECT);

  auto dst = cl->CreateBuffer(MemFlags::kReadWrite, 32, nullptr);
  ASSERT_TRUE(dst.ok());
  EXPECT_EQ(cl->EnqueueCopyBuffer(*buf, *dst, 0, 0, 64).api_code(),
            mocl::CL_INVALID_VALUE);
}

TEST_F(MoclConformanceTest, ImageSizeLimits) {
  mocl::ClImageFormat fmt;  // float, 1 channel
  const size_t w1 = dev.profile().max_image1d_width + 1;
  EXPECT_EQ(cl->CreateImage1D(MemFlags::kReadOnly, fmt, w1, nullptr)
                .status()
                .api_code(),
            mocl::CL_INVALID_IMAGE_SIZE);
  EXPECT_EQ(cl->CreateImage2D(MemFlags::kReadOnly, fmt,
                              dev.profile().max_image2d_width + 1, 4, nullptr)
                .status()
                .api_code(),
            mocl::CL_INVALID_IMAGE_SIZE);

  auto small = cl->CreateBuffer(MemFlags::kReadWrite, 16, nullptr);
  ASSERT_TRUE(small.ok());
  // A 16-texel float view over a 16-byte buffer does not fit.
  EXPECT_EQ(cl->CreateImage1DFromBuffer(fmt, 16, *small).status().api_code(),
            mocl::CL_INVALID_IMAGE_SIZE);
}

TEST_F(MoclConformanceTest, ProgramAndKernelLifecycle) {
  EXPECT_EQ(cl->BuildProgram(ClProgram{9999}).api_code(),
            mocl::CL_INVALID_PROGRAM);
  EXPECT_EQ(cl->GetProgramBuildLog(ClProgram{9999}).status().api_code(),
            mocl::CL_INVALID_PROGRAM);
  EXPECT_EQ(cl->CreateKernel(ClProgram{9999}, "vadd").status().api_code(),
            mocl::CL_INVALID_PROGRAM);

  auto broken = cl->CreateProgramWithSource("__kernel void oops( {");
  ASSERT_TRUE(broken.ok());
  EXPECT_EQ(cl->BuildProgram(*broken).api_code(),
            mocl::CL_BUILD_PROGRAM_FAILURE);

  // Wrong state: a program that was never built has no executable.
  auto unbuilt = cl->CreateProgramWithSource(kVaddCl);
  ASSERT_TRUE(unbuilt.ok());
  EXPECT_EQ(cl->CreateKernel(*unbuilt, "vadd").status().api_code(),
            mocl::CL_INVALID_PROGRAM_EXECUTABLE);

  ClProgram prog = BuiltProgram();
  EXPECT_EQ(cl->CreateKernel(prog, "no_such_kernel").status().api_code(),
            mocl::CL_INVALID_KERNEL_NAME);
}

TEST_F(MoclConformanceTest, KernelArgumentValidation) {
  ClProgram prog = BuiltProgram();
  auto kern = cl->CreateKernel(prog, "vadd");
  ASSERT_TRUE(kern.ok());
  auto buf = cl->CreateBuffer(MemFlags::kReadWrite, 64, nullptr);
  ASSERT_TRUE(buf.ok());

  EXPECT_EQ(cl->SetKernelArg(ClKernel{9999}, 0, sizeof(ClMem), &*buf)
                .api_code(),
            mocl::CL_INVALID_KERNEL);
  EXPECT_EQ(cl->SetKernelArg(*kern, 7, sizeof(ClMem), &*buf).api_code(),
            mocl::CL_INVALID_ARG_INDEX);
  // Null value is only legal for dynamic __local parameters.
  EXPECT_EQ(cl->SetKernelArg(*kern, 0, 16, nullptr).api_code(),
            mocl::CL_INVALID_ARG_VALUE);
  // Memory-object arguments must be passed as exactly sizeof(cl_mem).
  EXPECT_EQ(cl->SetKernelArg(*kern, 0, sizeof(ClMem) + 4, &*buf).api_code(),
            mocl::CL_INVALID_ARG_SIZE);
}

TEST_F(MoclConformanceTest, LaunchValidation) {
  ClProgram prog = BuiltProgram();
  auto kern = cl->CreateKernel(prog, "vadd");
  ASSERT_TRUE(kern.ok());
  size_t gws = 64, lws = 32;

  EXPECT_EQ(cl->EnqueueNDRangeKernel(ClKernel{9999}, 1, &gws, &lws)
                .api_code(),
            mocl::CL_INVALID_KERNEL);
  // Wrong state: launching before every argument is set.
  EXPECT_EQ(cl->EnqueueNDRangeKernel(*kern, 1, &gws, &lws).api_code(),
            mocl::CL_INVALID_KERNEL_ARGS);

  auto buf = cl->CreateBuffer(MemFlags::kReadWrite, 256, nullptr);
  ASSERT_TRUE(buf.ok());
  int n = 64;
  ASSERT_TRUE(cl->SetKernelArg(*kern, 0, sizeof(ClMem), &*buf).ok());
  ASSERT_TRUE(cl->SetKernelArg(*kern, 1, sizeof(ClMem), &*buf).ok());
  ASSERT_TRUE(cl->SetKernelArg(*kern, 2, sizeof(ClMem), &*buf).ok());
  ASSERT_TRUE(cl->SetKernelArg(*kern, 3, sizeof(int), &n).ok());

  EXPECT_EQ(cl->EnqueueNDRangeKernel(*kern, 0, &gws, &lws).api_code(),
            mocl::CL_INVALID_WORK_DIMENSION);
  EXPECT_EQ(cl->EnqueueNDRangeKernel(*kern, 4, &gws, &lws).api_code(),
            mocl::CL_INVALID_WORK_DIMENSION);
  size_t bad_lws = 48;  // 64 % 48 != 0
  EXPECT_EQ(cl->EnqueueNDRangeKernel(*kern, 1, &gws, &bad_lws).api_code(),
            mocl::CL_INVALID_WORK_GROUP_SIZE);
  size_t huge = gws = static_cast<size_t>(
      dev.profile().max_threads_per_block * 2);
  EXPECT_EQ(cl->EnqueueNDRangeKernel(*kern, 1, &gws, &huge).api_code(),
            mocl::CL_INVALID_WORK_GROUP_SIZE);
}

TEST_F(MoclConformanceTest, EventHandles) {
  double q, e;
  EXPECT_EQ(cl->GetEventProfiling(mocl::ClEvent{9999}, &q, &e).api_code(),
            mocl::CL_INVALID_EVENT);
}

// ---------------------------------------------------------------------------
// CUDA entry points (native binding).
// ---------------------------------------------------------------------------
class McudaConformanceTest : public ::testing::Test {
 protected:
  Device dev{TitanProfile()};
  std::unique_ptr<mcuda::CudaApi> cu = mcuda::CreateNativeCudaApi(dev);
};

TEST_F(McudaConformanceTest, ModuleAndMemory) {
  EXPECT_EQ(cu->RegisterModule("__global__ void oops( {").api_code(),
            mcuda::cudaErrorInvalidDeviceFunction);
  // An allocation larger than the device exhausts global memory.
  EXPECT_EQ(cu->Malloc(dev.profile().global_mem_size + 1).status().api_code(),
            mcuda::cudaErrorMemoryAllocation);
  EXPECT_EQ(cu->Free(reinterpret_cast<void*>(0xdead000)).api_code(),
            mcuda::cudaErrorInvalidDevicePointer);
}

TEST_F(McudaConformanceTest, MemcpyValidation) {
  float host[4] = {};
  auto p = cu->Malloc(sizeof(host));
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(cu->Memcpy(*p, host, sizeof(host),
                       static_cast<MemcpyKind>(99))
                .api_code(),
            mcuda::cudaErrorInvalidMemcpyDirection);
  // Ranges that leave the allocation are invalid device pointers.
  EXPECT_EQ(cu->Memcpy(*p, host, 4096, MemcpyKind::kHostToDevice).api_code(),
            mcuda::cudaErrorInvalidDevicePointer);
  EXPECT_TRUE(cu->Free(*p).ok());
}

TEST_F(McudaConformanceTest, SymbolValidation) {
  float v = 1.0f;
  EXPECT_EQ(cu->MemcpyToSymbol("no_such_symbol", &v, 4).api_code(),
            mcuda::cudaErrorInvalidSymbol);
  ASSERT_TRUE(cu->RegisterModule("__device__ float table[4];\n" +
                                 std::string(kVaddCu))
                  .ok());
  // Wrong size: past the end of a real symbol.
  float big[8] = {};
  EXPECT_EQ(cu->MemcpyToSymbol("table", big, sizeof(big)).api_code(),
            mcuda::cudaErrorInvalidValue);
}

TEST_F(McudaConformanceTest, LaunchValidation) {
  ASSERT_TRUE(cu->RegisterModule(kVaddCu).ok());
  EXPECT_EQ(cu->LaunchKernel("no_such_kernel", Dim3(1, 1, 1), Dim3(1, 1, 1),
                             0, {})
                .api_code(),
            mcuda::cudaErrorInvalidDeviceFunction);
  EXPECT_EQ(cu->LaunchKernel("vadd", Dim3(0, 1, 1), Dim3(1, 1, 1), 0, {})
                .api_code(),
            mcuda::cudaErrorInvalidConfiguration);
  EXPECT_EQ(
      cu->LaunchKernel(
            "vadd", Dim3(1, 1, 1),
            Dim3(dev.profile().max_threads_per_block + 1, 1, 1), 0, {})
          .api_code(),
      mcuda::cudaErrorInvalidConfiguration);
}

TEST_F(McudaConformanceTest, EventsAndTextures) {
  void* bogus = reinterpret_cast<void*>(0x777);
  EXPECT_EQ(cu->EventRecord(bogus).api_code(),
            mcuda::cudaErrorInvalidResourceHandle);
  EXPECT_EQ(cu->EventDestroy(bogus).api_code(),
            mcuda::cudaErrorInvalidResourceHandle);
  auto ev = cu->EventCreate();
  ASSERT_TRUE(ev.ok());
  // Wrong state: elapsed time over an event that was never recorded.
  EXPECT_EQ(cu->EventElapsedUs(*ev, *ev).status().api_code(),
            mcuda::cudaErrorNotReady);
  EXPECT_TRUE(cu->EventDestroy(*ev).ok());

  mcuda::ChannelDesc desc;
  EXPECT_EQ(cu->BindTexture("no_such_texref", nullptr, 16, desc).api_code(),
            mcuda::cudaErrorInvalidTexture);
}

// ---------------------------------------------------------------------------
// Spot checks through the wrapper bindings: the same misuse produces the
// same outer-vocabulary code when the implementation underneath is the
// other framework.
// ---------------------------------------------------------------------------
TEST(WrapperConformanceTest, ClOnCudaAgreesWithNativeCl) {
  Device dev(TitanProfile());
  auto cuda = mcuda::CreateNativeCudaApi(dev);
  auto cl = cl2cu::CreateClOnCudaApi(*cuda);

  EXPECT_EQ(
      cl->CreateBuffer(MemFlags::kReadWrite, 0, nullptr).status().api_code(),
      mocl::CL_INVALID_BUFFER_SIZE);
  EXPECT_EQ(cl->ReleaseMemObject(ClMem{9999}).api_code(),
            mocl::CL_INVALID_MEM_OBJECT);
  EXPECT_EQ(cl->BuildProgram(ClProgram{9999}).api_code(),
            mocl::CL_INVALID_PROGRAM);
  auto broken = cl->CreateProgramWithSource("__kernel void oops( {");
  ASSERT_TRUE(broken.ok());
  EXPECT_EQ(cl->BuildProgram(*broken).api_code(),
            mocl::CL_BUILD_PROGRAM_FAILURE);
  size_t gws = 4, lws = 4;
  EXPECT_EQ(cl->EnqueueNDRangeKernel(ClKernel{9999}, 1, &gws, &lws)
                .api_code(),
            mocl::CL_INVALID_KERNEL);
}

TEST(WrapperConformanceTest, CudaOnClAgreesWithNativeCuda) {
  Device dev(TitanProfile());
  auto cl = mocl::CreateNativeClApi(dev);
  auto cu = cu2cl::CreateCudaOnClApi(*cl, {});

  EXPECT_EQ(cu->RegisterModule("__global__ void oops( {").api_code(),
            mcuda::cudaErrorInvalidDeviceFunction);
  EXPECT_EQ(cu->Free(reinterpret_cast<void*>(0xdead000)).api_code(),
            mcuda::cudaErrorInvalidDevicePointer);
  float v = 1.0f;
  EXPECT_EQ(cu->MemcpyToSymbol("no_such_symbol", &v, 4).api_code(),
            mcuda::cudaErrorInvalidSymbol);
  // cudaMemGetInfo has no OpenCL counterpart (§3.7): unimplementable in
  // this direction, and the wrapper must say so in CUDA vocabulary.
  EXPECT_EQ(cu->MemGetInfo().status().api_code(),
            mcuda::cudaErrorNotSupported);
}

// ---------------------------------------------------------------------------
// Sync-point error fidelity (both wrapper directions): a failure parked
// on a stream/queue must keep its identity when it surfaces at the next
// synchronization point. Historically the cu2cl boundary collapsed every
// CL_OUT_OF_RESOURCES annotation into cudaErrorLaunchFailure, losing the
// resource-exhaustion / execution-fault distinction CUDA callers rely on.
// ---------------------------------------------------------------------------

// Dynamic shared memory is sized at launch: requesting more than the
// device budget is resource exhaustion, not an unspecified launch fault.
const char* kSharedHogCu =
    "__global__ void hog(float* out) {\n"
    "  extern __shared__ float tile[];\n"
    "  tile[threadIdx.x] = (float)threadIdx.x;\n"
    "  __syncthreads();\n"
    "  out[threadIdx.x] = tile[threadIdx.x];\n"
    "}\n";

TEST(WrapperConformanceTest, CudaOnClSyncPointKeepsResourceExhaustion) {
  Device dev(TitanProfile());
  auto cl = mocl::CreateNativeClApi(dev);
  auto cu = cu2cl::CreateCudaOnClApi(*cl, {});
  ASSERT_TRUE(cu->RegisterModule(kSharedHogCu).ok());
  auto out = cu->Malloc(64 * sizeof(float));
  ASSERT_TRUE(out.ok());
  auto stream = cu->StreamCreate();
  ASSERT_TRUE(stream.ok());
  std::vector<LaunchArg> args = {LaunchArg::Ptr(*out)};
  // The over-budget launch is asynchronous, so its failure parks on the
  // stream's queue and the enqueue itself reports success...
  ASSERT_TRUE(cu->LaunchKernelOnStream(
                    "hog", Dim3(1, 1, 1), Dim3(64, 1, 1),
                    dev.profile().shared_mem_per_block + 4096, args, *stream)
                  .ok());
  // ...and the sync point must report launch resource exhaustion, not
  // the cudaErrorLaunchFailure catch-all it used to collapse into.
  Status st = cu->StreamSynchronize(*stream);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.api_code(), mcuda::cudaErrorLaunchOutOfResources)
      << st.ToString();
  EXPECT_TRUE(cu->StreamDestroy(*stream).ok());
  EXPECT_TRUE(cu->Free(*out).ok());
}

TEST(WrapperConformanceTest, CudaOnClSyncPointKeepsExecutionFault) {
  // The counterpart: a device-side execution fault (guarded-memory
  // violation) shares the CL_OUT_OF_RESOURCES annotation but must stay
  // the cudaErrorLaunchFailure catch-all — the refinement keys on the
  // StatusCode, not just the CL code.
  const char* src =
      "__global__ void store(float* c) {\n"
      "  int i = blockIdx.x * blockDim.x + threadIdx.x;\n"
      "  c[i] = (float)i;\n"
      "}\n";
  Device dev(TitanProfile());
  dev.vm().set_guarded(true);
  auto cl = mocl::CreateNativeClApi(dev);
  auto cu = cu2cl::CreateCudaOnClApi(*cl, {});
  ASSERT_TRUE(cu->RegisterModule(src).ok());
  auto buf = cu->Malloc(25 * sizeof(float));
  ASSERT_TRUE(buf.ok());
  auto stream = cu->StreamCreate();
  ASSERT_TRUE(stream.ok());
  std::vector<LaunchArg> args = {LaunchArg::Ptr(*buf)};
  // 26 work-items store into a 25-float allocation: item 25 hits the
  // redzone; the failure parks and surfaces at the sync point.
  ASSERT_TRUE(cu->LaunchKernelOnStream("store", Dim3(2, 1, 1),
                                       Dim3(13, 1, 1), 0, args, *stream)
                  .ok());
  Status st = cu->StreamSynchronize(*stream);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.api_code(), mcuda::cudaErrorLaunchFailure) << st.ToString();
  EXPECT_NE(st.message().find("guarded-memory fault"), std::string::npos)
      << st.ToString();
  EXPECT_TRUE(cu->StreamDestroy(*stream).ok());
}

TEST(WrapperConformanceTest, ClOnCudaSyncPointSealsLaunchFailures) {
  // Reverse direction: both inner-CUDA flavors — launch resource
  // exhaustion and the launch-failure catch-all — must surface at a
  // cl2cu sync point as CL_OUT_OF_RESOURCES (the CL 1.2 catch-all),
  // never collapsed into CL_INVALID_VALUE by the unannotated fallback.
  const char* src =
      "__kernel void hog(__global float* out, __local float* tile) {"
      "  int l = get_local_id(0);"
      "  tile[l] = (float)l;"
      "  barrier(CLK_LOCAL_MEM_FENCE);"
      "  out[get_global_id(0)] = tile[l];"
      "}";
  Device dev(TitanProfile());
  auto cuda = mcuda::CreateNativeCudaApi(dev);
  auto cl = cl2cu::CreateClOnCudaApi(*cuda);
  auto prog = cl->CreateProgramWithSource(src);
  ASSERT_TRUE(prog.ok());
  ASSERT_TRUE(cl->BuildProgram(*prog).ok());
  auto kernel = cl->CreateKernel(*prog, "hog");
  ASSERT_TRUE(kernel.ok());
  auto out = cl->CreateBuffer(MemFlags::kReadWrite, 64 * 4, nullptr);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(cl->SetKernelArg(*kernel, 0, sizeof(ClMem), &*out).ok());
  // Over-budget __local allocation, requested through the arg-size form.
  ASSERT_TRUE(cl->SetKernelArg(*kernel, 1,
                               dev.profile().shared_mem_per_block + 4096,
                               nullptr)
                  .ok());
  auto queue = cl->CreateCommandQueue(0);
  ASSERT_TRUE(queue.ok());
  size_t gws = 64, lws = 64;
  ASSERT_TRUE(cl->EnqueueNDRangeKernelOn(*queue, *kernel, 1, &gws, &lws, {},
                                         nullptr)
                  .ok());
  Status st = cl->Finish(*queue);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.api_code(), mocl::CL_OUT_OF_RESOURCES) << st.ToString();
  EXPECT_TRUE(cl->ReleaseCommandQueue(*queue).ok());
}

// ---------------------------------------------------------------------------
// BRIDGECL_CHECK: dereferencing a failed StatusOr aborts loudly, in
// release builds too.
// ---------------------------------------------------------------------------
TEST(StatusOrCheckDeathTest, DereferencingErrorAborts) {
  StatusOr<int> failed(InvalidArgumentError("nope"));
  EXPECT_DEATH((void)failed.value(), "BRIDGECL_CHECK failed");
  EXPECT_DEATH((void)*failed, "BRIDGECL_CHECK failed");
}

// ---------------------------------------------------------------------------
// Guarded-memory demonstration (the acceptance scenario): a kernel that
// writes one element past a 25-float allocation is silent with guarding
// off — granule padding swallows it, as on real hardware — and a named,
// work-item-attributed fault with guarding on.
// ---------------------------------------------------------------------------
Status RunOffByOne(mocl::OpenClApi& cl) {
  // 26 work-items store into a 25-float buffer: item 25 writes one past.
  const char* src =
      "__kernel void store(__global float* c) {"
      "  int i = get_global_id(0);"
      "  c[i] = (float)i;"
      "}";
  BRIDGECL_ASSIGN_OR_RETURN(auto prog, cl.CreateProgramWithSource(src));
  BRIDGECL_RETURN_IF_ERROR(cl.BuildProgram(prog));
  BRIDGECL_ASSIGN_OR_RETURN(auto kernel, cl.CreateKernel(prog, "store"));
  BRIDGECL_ASSIGN_OR_RETURN(
      ClMem c, cl.CreateBuffer(MemFlags::kWriteOnly, 25 * 4, nullptr));
  BRIDGECL_RETURN_IF_ERROR(cl.SetKernelArg(kernel, 0, sizeof(ClMem), &c));
  size_t gws = 26, lws = 13;
  Status st = cl.EnqueueNDRangeKernel(kernel, 1, &gws, &lws);
  (void)cl.ReleaseMemObject(c);
  return st;
}

TEST(GuardedMemoryTest, OffByOneWriteSilentUnguardedCaughtGuarded) {
  {
    // set_guarded() before any allocation, so the test's outcome does not
    // depend on the BRIDGECL_GUARDED environment (the `guarded` ctest
    // label runs this binary with it set).
    Device dev(TitanProfile());
    dev.vm().set_guarded(false);
    auto cl = mocl::CreateNativeClApi(dev);
    EXPECT_TRUE(RunOffByOne(*cl).ok())
        << "granule padding should swallow a 1-element overrun";
  }
  {
    Device dev(TitanProfile());
    dev.vm().set_guarded(true);
    auto cl = mocl::CreateNativeClApi(dev);
    Status st = RunOffByOne(*cl);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.api_code(), mocl::CL_OUT_OF_RESOURCES) << st.ToString();
    // The diagnostic names the fault class, the address, the allocation,
    // and the work-item that did it.
    EXPECT_NE(st.message().find("guarded-memory fault"), std::string::npos)
        << st.ToString();
    EXPECT_NE(st.message().find("0x"), std::string::npos) << st.ToString();
    EXPECT_NE(st.message().find("global allocation"), std::string::npos)
        << st.ToString();
    EXPECT_NE(st.message().find("redzone"), std::string::npos)
        << st.ToString();
    EXPECT_NE(st.message().find("work-item global (25,0,0)"),
              std::string::npos)
        << st.ToString();
  }
}

// Use-after-free under guarded mode: generation tags turn a stale access
// into a named fault instead of silently reading recycled storage.
TEST(GuardedMemoryTest, InjectedFaultCodesSurfaceThroughNative) {
  Device dev(TitanProfile());
  auto cl = mocl::CreateNativeClApi(dev);
  simgpu::FaultPlan plan;
  plan.points.push_back(simgpu::FaultPoint{
      simgpu::FaultSite::kGlobalAlloc, 0, simgpu::FaultKind::kError, false,
      0});
  dev.faults().set_plan(plan);
  auto buf = cl->CreateBuffer(MemFlags::kReadWrite, 64, nullptr);
  ASSERT_FALSE(buf.ok());
  EXPECT_EQ(buf.status().api_code(),
            mocl::CL_MEM_OBJECT_ALLOCATION_FAILURE);
}

}  // namespace
}  // namespace bridgecl
