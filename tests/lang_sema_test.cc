#include <gtest/gtest.h>

#include "lang/parser.h"
#include "lang/sema.h"

namespace bridgecl::lang {
namespace {

std::unique_ptr<TranslationUnit> Analyzed(const std::string& src, Dialect d,
                                          bool expect_ok = true) {
  DiagnosticEngine diags;
  ParseOptions popts;
  popts.dialect = d;
  auto tu = ParseTranslationUnit(src, popts, diags);
  EXPECT_TRUE(tu.ok()) << diags.ToString();
  if (!tu.ok()) return nullptr;
  SemaOptions sopts;
  sopts.dialect = d;
  Status st = Analyze(**tu, sopts, diags);
  EXPECT_EQ(st.ok(), expect_ok) << diags.ToString();
  return std::move(*tu);
}

TEST(SemaTest, ResolvesNamesAndTypes) {
  auto tu = Analyzed(
      "__kernel void k(__global float* a, int n) {"
      "  int i = get_global_id(0);"
      "  if (i < n) a[i] = a[i] * 2.0f;"
      "}",
      Dialect::kOpenCL);
  ASSERT_NE(tu, nullptr);
  auto* f = tu->FindFunction("k");
  // a[i] * 2.0f has type float.
  auto* iff = f->body->body[1]->As<IfStmt>();
  auto* assign = iff->then_stmt->As<ExprStmt>()->expr->As<AssignExpr>();
  ASSERT_NE(assign->rhs->type, nullptr);
  EXPECT_EQ(assign->rhs->type->scalar_kind(), ScalarKind::kFloat);
}

TEST(SemaTest, UndeclaredIdentifierFails) {
  Analyzed("__kernel void k(__global int* a) { a[0] = bogus; }",
           Dialect::kOpenCL, /*expect_ok=*/false);
}

TEST(SemaTest, UndeclaredFunctionFails) {
  Analyzed("__kernel void k(__global int* a) { a[0] = no_such_fn(1); }",
           Dialect::kOpenCL, /*expect_ok=*/false);
}

TEST(SemaTest, SwizzleTyping) {
  auto tu = Analyzed(
      "__kernel void k(__global float4* v) {"
      "  float2 lo = v[0].lo;"
      "  float x = v[0].x;"
      "  float4 r = v[0].wzyx;"
      "}",
      Dialect::kOpenCL);
  ASSERT_NE(tu, nullptr);
}

TEST(SemaTest, InvalidSwizzleFails) {
  Analyzed("__kernel void k(__global float2* v) { float x = v[0].z; }",
           Dialect::kOpenCL, /*expect_ok=*/false);
}

TEST(SemaTest, SwizzleResolution) {
  EXPECT_EQ(ResolveSwizzle("x", 4), (std::vector<int>{0}));
  EXPECT_EQ(ResolveSwizzle("wzyx", 4), (std::vector<int>{3, 2, 1, 0}));
  EXPECT_EQ(ResolveSwizzle("lo", 4), (std::vector<int>{0, 1}));
  EXPECT_EQ(ResolveSwizzle("hi", 4), (std::vector<int>{2, 3}));
  EXPECT_EQ(ResolveSwizzle("even", 8), (std::vector<int>{0, 2, 4, 6}));
  EXPECT_EQ(ResolveSwizzle("odd", 4), (std::vector<int>{1, 3}));
  EXPECT_EQ(ResolveSwizzle("s0", 16), (std::vector<int>{0}));
  EXPECT_EQ(ResolveSwizzle("sF", 16), (std::vector<int>{15}));
  EXPECT_EQ(ResolveSwizzle("s01", 2), (std::vector<int>{0, 1}));
  EXPECT_TRUE(ResolveSwizzle("q", 4).empty());
  EXPECT_TRUE(ResolveSwizzle("z", 2).empty());
  EXPECT_TRUE(ResolveSwizzle("xyzwx", 4).empty());
}

TEST(SemaTest, StructLayout) {
  auto tu = Analyzed(
      "typedef struct { char c; double d; int i; } Mixed;"
      "__kernel void k(__global Mixed* m) { m[0].i = 1; }",
      Dialect::kOpenCL);
  ASSERT_NE(tu, nullptr);
  auto* sd = tu->decls[0]->As<StructDecl>();
  EXPECT_EQ(sd->fields[0].offset, 0u);
  EXPECT_EQ(sd->fields[1].offset, 8u);   // double aligned to 8
  EXPECT_EQ(sd->fields[2].offset, 16u);
  EXPECT_EQ(sd->byte_size, 24u);         // padded to alignment 8
  EXPECT_EQ(sd->alignment, 8u);
}

TEST(SemaTest, CudaKernelPointerParamsDefaultToGlobal) {
  auto tu = Analyzed("__global__ void k(float* a) { a[0] = 1.0f; }",
                     Dialect::kCUDA);
  ASSERT_NE(tu, nullptr);
  auto* f = tu->FindFunction("k");
  EXPECT_EQ(f->params[0]->type->pointee_space(), AddressSpace::kGlobal);
}

TEST(SemaTest, PointerSpacePropagatesThroughLocals) {
  auto tu = Analyzed(
      "__global__ void k(float* a) {"
      "  float* p = a;"      // p inherits global pointee space
      "  p[0] = 1.0f;"
      "}",
      Dialect::kCUDA);
  ASSERT_NE(tu, nullptr);
  auto* f = tu->FindFunction("k");
  auto* ds = f->body->body[0]->As<DeclStmt>();
  EXPECT_EQ(ds->vars[0]->type->pointee_space(), AddressSpace::kGlobal);
}

TEST(SemaTest, CudaBuiltinVariables) {
  auto tu = Analyzed(
      "__global__ void k(int* o) {"
      "  int i = blockIdx.x * blockDim.x + threadIdx.x;"
      "  o[i] = i;"
      "}",
      Dialect::kCUDA);
  ASSERT_NE(tu, nullptr);
}

TEST(SemaTest, OpenClWorkItemFnsReturnSizeT) {
  auto tu = Analyzed(
      "__kernel void k(__global int* o) {"
      "  size_t i = get_global_id(0);"
      "  o[i] = (int)get_local_size(0);"
      "}",
      Dialect::kOpenCL);
  ASSERT_NE(tu, nullptr);
}

TEST(SemaTest, CudaBuiltinVarsRejectedInOpenCl) {
  Analyzed("__kernel void k(__global int* o) { o[0] = threadIdx.x; }",
           Dialect::kOpenCL, /*expect_ok=*/false);
}

TEST(SemaTest, OpenClBuiltinsRejectedInCuda) {
  Analyzed("__global__ void k(int* o) { o[0] = get_global_id(0); }",
           Dialect::kCUDA, /*expect_ok=*/false);
}

TEST(SemaTest, AtomicResultTypes) {
  auto tu = Analyzed(
      "__kernel void k(__global int* c) {"
      "  int old = atomic_inc(c);"
      "  int o2 = atomic_add(c, 5);"
      "}",
      Dialect::kOpenCL);
  ASSERT_NE(tu, nullptr);
}

TEST(SemaTest, RegisterEstimateGrowsWithLocals) {
  auto small = Analyzed("__kernel void k() { int a; }", Dialect::kOpenCL);
  auto big = Analyzed(
      "__kernel void k() { int a; int b; int c; int d; float e; float f; }",
      Dialect::kOpenCL);
  ASSERT_NE(small, nullptr);
  ASSERT_NE(big, nullptr);
  EXPECT_GT(big->FindFunction("k")->register_estimate,
            small->FindFunction("k")->register_estimate);
}

TEST(SemaTest, ArithmeticResultTypeRules) {
  auto i = Type::IntTy();
  auto f = Type::FloatTy();
  auto d = Type::Scalar(ScalarKind::kDouble);
  auto f4 = Type::Vector(ScalarKind::kFloat, 4);
  EXPECT_EQ(ArithmeticResultType(i, f)->scalar_kind(), ScalarKind::kFloat);
  EXPECT_EQ(ArithmeticResultType(f, d)->scalar_kind(), ScalarKind::kDouble);
  EXPECT_TRUE(ArithmeticResultType(f4, f)->is_vector());
  EXPECT_EQ(ArithmeticResultType(f4, f)->vector_width(), 4);
  // char + char promotes to int.
  auto c = Type::Scalar(ScalarKind::kChar);
  EXPECT_EQ(ArithmeticResultType(c, c)->scalar_kind(), ScalarKind::kInt);
}

TEST(SemaTest, FileScopeVarWithoutSpaceFails) {
  Analyzed("int naked_global;", Dialect::kCUDA, /*expect_ok=*/false);
}

TEST(SemaTest, TextureRefTyping) {
  auto tu = Analyzed(
      "texture<float, 1, cudaReadModeElementType> t1;"
      "__global__ void k(float* o) { o[0] = tex1Dfetch(t1, 3); }",
      Dialect::kCUDA);
  ASSERT_NE(tu, nullptr);
  auto* f = tu->FindFunction("k");
  auto* assign = f->body->body[0]->As<ExprStmt>()->expr->As<AssignExpr>();
  ASSERT_NE(assign->rhs->type, nullptr);
  EXPECT_EQ(assign->rhs->type->scalar_kind(), ScalarKind::kFloat);
}

}  // namespace
}  // namespace bridgecl::lang
