// Exhaustive nth-fault sweep over both wrapper directions: a representative
// app (vector add) runs with a deterministic fault injected at every
// allocation / transfer / access / instruction ordinal in turn, and every
// run must terminate cleanly with a spec-conformant error code in the outer
// API's vocabulary — no assert, no crash, no leak of simulated global
// memory. This is the runtime counterpart of the paper's Table 3 failure
// classification; docs/ROBUSTNESS.md documents the expected mappings.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cl2cu/cl_on_cuda.h"
#include "cu2cl/cuda_on_cl.h"
#include "mcuda/cuda_api.h"
#include "mcuda/cuda_errors.h"
#include "mocl/cl_api.h"
#include "mocl/cl_errors.h"
#include "simgpu/device.h"
#include "simgpu/fault_injector.h"

namespace bridgecl {
namespace {

using mcuda::LaunchArg;
using mcuda::MemcpyKind;
using mocl::ClMem;
using mocl::MemFlags;
using simgpu::Device;
using simgpu::Dim3;
using simgpu::FaultKind;
using simgpu::FaultPlan;
using simgpu::FaultPoint;
using simgpu::FaultSite;
using simgpu::TitanProfile;

constexpr int kN = 8;

// A plan whose single point can never fire: arms the injector (so the
// per-site counters run) without perturbing the workload. Counting runs
// need this because unarmed devices skip the consult hooks entirely.
FaultPlan SentinelPlan() {
  FaultPlan plan;
  plan.points.push_back(FaultPoint{FaultSite::kGlobalAlloc, ~uint64_t{0},
                                   FaultKind::kError, false, 0});
  return plan;
}

// ---------------------------------------------------------------------------
// Direction A: OpenCL host code on the CUDA framework (cl2cu, §3.2).
// ---------------------------------------------------------------------------
struct Cl2CuStack {
  Device device{TitanProfile()};
  std::unique_ptr<mcuda::CudaApi> cuda = mcuda::CreateNativeCudaApi(device);
  std::unique_ptr<mocl::OpenClApi> cl = cl2cu::CreateClOnCudaApi(*cuda);
};

// The same vadd host driver as wrappers_test.cc, but it keeps every handle
// it acquired so a run aborted mid-way can still be released.
struct ClVaddRun {
  std::vector<ClMem> mems;
  std::vector<float> out = std::vector<float>(kN);

  Status Run(mocl::OpenClApi& cl) {
    const char* src =
        "__kernel void vadd(__global float* a, __global float* b,"
        "                   __global float* c, int n) {"
        "  int i = get_global_id(0);"
        "  if (i < n) c[i] = a[i] + b[i];"
        "}";
    std::vector<float> a(kN), b(kN);
    for (int i = 0; i < kN; ++i) {
      a[i] = 0.25f * i;
      b[i] = 1.5f * i;
    }
    BRIDGECL_ASSIGN_OR_RETURN(auto prog, cl.CreateProgramWithSource(src));
    BRIDGECL_RETURN_IF_ERROR(cl.BuildProgram(prog));
    BRIDGECL_ASSIGN_OR_RETURN(auto kernel, cl.CreateKernel(prog, "vadd"));
    BRIDGECL_ASSIGN_OR_RETURN(
        ClMem ma, cl.CreateBuffer(MemFlags::kReadOnly, kN * 4, a.data()));
    mems.push_back(ma);
    BRIDGECL_ASSIGN_OR_RETURN(
        ClMem mb, cl.CreateBuffer(MemFlags::kReadOnly, kN * 4, b.data()));
    mems.push_back(mb);
    BRIDGECL_ASSIGN_OR_RETURN(
        ClMem mc, cl.CreateBuffer(MemFlags::kWriteOnly, kN * 4, nullptr));
    mems.push_back(mc);
    BRIDGECL_RETURN_IF_ERROR(cl.SetKernelArg(kernel, 0, sizeof(ClMem), &ma));
    BRIDGECL_RETURN_IF_ERROR(cl.SetKernelArg(kernel, 1, sizeof(ClMem), &mb));
    BRIDGECL_RETURN_IF_ERROR(cl.SetKernelArg(kernel, 2, sizeof(ClMem), &mc));
    int n = kN;
    BRIDGECL_RETURN_IF_ERROR(cl.SetKernelArg(kernel, 3, sizeof(int), &n));
    size_t gws = kN, lws = 4;
    BRIDGECL_RETURN_IF_ERROR(cl.EnqueueNDRangeKernel(kernel, 1, &gws, &lws));
    BRIDGECL_RETURN_IF_ERROR(cl.EnqueueReadBuffer(mc, 0, kN * 4, out.data()));
    for (int i = 0; i < kN; ++i)
      if (out[i] != a[i] + b[i])
        return InternalError("vadd produced a wrong result");
    return OkStatus();
  }

  void Cleanup(mocl::OpenClApi& cl) {
    for (ClMem m : mems) (void)cl.ReleaseMemObject(m);
    mems.clear();
  }
};

// ---------------------------------------------------------------------------
// Direction B: CUDA host code on the OpenCL framework (cu2cl, §3.4).
// ---------------------------------------------------------------------------
struct Cu2ClStack {
  Device device{TitanProfile()};
  std::unique_ptr<mocl::OpenClApi> cl = mocl::CreateNativeClApi(device);
  std::unique_ptr<mcuda::CudaApi> cuda = cu2cl::CreateCudaOnClApi(*cl, {});
};

struct CuVaddRun {
  std::vector<void*> ptrs;
  std::vector<float> out = std::vector<float>(kN);

  Status Run(mcuda::CudaApi& cu) {
    const char* src =
        "__global__ void vadd(float* a, float* b, float* c, int n) {\n"
        "  int i = blockIdx.x * blockDim.x + threadIdx.x;\n"
        "  if (i < n) c[i] = a[i] + b[i];\n"
        "}\n";
    std::vector<float> a(kN), b(kN);
    for (int i = 0; i < kN; ++i) {
      a[i] = 0.25f * i;
      b[i] = 1.5f * i;
    }
    BRIDGECL_RETURN_IF_ERROR(cu.RegisterModule(src));
    BRIDGECL_ASSIGN_OR_RETURN(void* da, cu.Malloc(kN * 4));
    ptrs.push_back(da);
    BRIDGECL_ASSIGN_OR_RETURN(void* db, cu.Malloc(kN * 4));
    ptrs.push_back(db);
    BRIDGECL_ASSIGN_OR_RETURN(void* dc, cu.Malloc(kN * 4));
    ptrs.push_back(dc);
    BRIDGECL_RETURN_IF_ERROR(
        cu.Memcpy(da, a.data(), kN * 4, MemcpyKind::kHostToDevice));
    BRIDGECL_RETURN_IF_ERROR(
        cu.Memcpy(db, b.data(), kN * 4, MemcpyKind::kHostToDevice));
    std::vector<LaunchArg> args = {LaunchArg::Ptr(da), LaunchArg::Ptr(db),
                                   LaunchArg::Ptr(dc), LaunchArg::Value(kN)};
    BRIDGECL_RETURN_IF_ERROR(
        cu.LaunchKernel("vadd", Dim3(2, 1, 1), Dim3(4, 1, 1), 0, args));
    BRIDGECL_RETURN_IF_ERROR(
        cu.Memcpy(out.data(), dc, kN * 4, MemcpyKind::kDeviceToHost));
    for (int i = 0; i < kN; ++i)
      if (out[i] != a[i] + b[i])
        return InternalError("vadd produced a wrong result");
    return OkStatus();
  }

  void Cleanup(mcuda::CudaApi& cu) {
    for (void* p : ptrs) (void)cu.Free(p);
    ptrs.clear();
  }
};

// Sites the vadd workload exercises; kGlobalFree gets a dedicated test
// because its faults fire during cleanup, not during the run.
const FaultSite kSweepSites[] = {
    FaultSite::kGlobalAlloc, FaultSite::kTransfer, FaultSite::kSharedAlloc,
    FaultSite::kMemoryAccess, FaultSite::kInstruction};

FaultPlan OneShot(FaultSite site, uint64_t nth,
                  FaultKind kind = FaultKind::kError) {
  FaultPlan plan;
  plan.points.push_back(FaultPoint{site, nth, kind, false, 0});
  return plan;
}

// ---------------------------------------------------------------------------
// The sweeps. Every injected fault must surface as a *spec* code of the
// outer API (right sign, name in the spec vocabulary), and alloc/transfer
// faults additionally as the exact codes the spec mandates for them.
// ---------------------------------------------------------------------------
TEST(FaultSweepTest, ClOnCudaEveryNthFault) {
  // Fault-free counting run (armed with a sentinel so counters tick).
  Cl2CuStack counter;
  counter.device.faults().set_plan(SentinelPlan());
  {
    ClVaddRun run;
    ASSERT_TRUE(run.Run(*counter.cl).ok());
    run.Cleanup(*counter.cl);
  }
  ASSERT_EQ(counter.device.vm().global_allocation_count(), 0u);

  const std::set<int> alloc_codes = {mocl::CL_MEM_OBJECT_ALLOCATION_FAILURE,
                                     mocl::CL_BUILD_PROGRAM_FAILURE};
  const std::set<int> transfer_codes = {
      mocl::CL_MEM_OBJECT_ALLOCATION_FAILURE, mocl::CL_OUT_OF_RESOURCES};

  for (FaultSite site : kSweepSites) {
    const uint64_t total = counter.device.faults().count(site);
    for (uint64_t nth = 0; nth < total; ++nth) {
      SCOPED_TRACE(std::string(simgpu::FaultSiteName(site)) + " #" +
                   std::to_string(nth));
      Cl2CuStack s;
      s.device.faults().set_plan(OneShot(site, nth));
      ClVaddRun run;
      Status st = run.Run(*s.cl);
      ASSERT_FALSE(st.ok());
      // Outer API is OpenCL: the code must be a negative CL error whose
      // name the spec vocabulary knows.
      EXPECT_TRUE(mocl::IsClCode(st.api_code())) << st.ToString();
      EXPECT_STRNE(mocl::ClErrorName(st.api_code()), "CL_UNKNOWN_ERROR")
          << st.ToString();
      if (site == FaultSite::kGlobalAlloc) {
        EXPECT_TRUE(alloc_codes.count(st.api_code())) << st.ToString();
      }
      if (site == FaultSite::kTransfer) {
        EXPECT_TRUE(transfer_codes.count(st.api_code())) << st.ToString();
      }
      run.Cleanup(*s.cl);
      EXPECT_EQ(s.device.vm().global_allocation_count(), 0u)
          << "leaked simulated memory";
    }
  }
}

TEST(FaultSweepTest, CudaOnClEveryNthFault) {
  Cu2ClStack counter;
  counter.device.faults().set_plan(SentinelPlan());
  {
    CuVaddRun run;
    ASSERT_TRUE(run.Run(*counter.cuda).ok());
    run.Cleanup(*counter.cuda);
  }
  ASSERT_EQ(counter.device.vm().global_allocation_count(), 0u);

  const std::set<int> alloc_codes = {mcuda::cudaErrorMemoryAllocation,
                                     mcuda::cudaErrorNoKernelImageForDevice};
  const std::set<int> transfer_codes = {mcuda::cudaErrorLaunchFailure};

  for (FaultSite site : kSweepSites) {
    const uint64_t total = counter.device.faults().count(site);
    for (uint64_t nth = 0; nth < total; ++nth) {
      SCOPED_TRACE(std::string(simgpu::FaultSiteName(site)) + " #" +
                   std::to_string(nth));
      Cu2ClStack s;
      s.device.faults().set_plan(OneShot(site, nth));
      CuVaddRun run;
      Status st = run.Run(*s.cuda);
      ASSERT_FALSE(st.ok());
      // Outer API is CUDA: the code must be a positive cudaError whose
      // name the spec vocabulary knows.
      EXPECT_TRUE(mcuda::IsCudaCode(st.api_code())) << st.ToString();
      EXPECT_STRNE(mcuda::CudaErrorName(st.api_code()),
                   "cudaErrorUnknownCode")
          << st.ToString();
      if (site == FaultSite::kGlobalAlloc) {
        EXPECT_TRUE(alloc_codes.count(st.api_code())) << st.ToString();
      }
      if (site == FaultSite::kTransfer) {
        EXPECT_TRUE(transfer_codes.count(st.api_code())) << st.ToString();
      }
      run.Cleanup(*s.cuda);
      EXPECT_EQ(s.device.vm().global_allocation_count(), 0u)
          << "leaked simulated memory";
    }
  }
}

// Free-site faults fire during cleanup: the first release reports a spec
// code, and releasing again succeeds once the point is consumed.
TEST(FaultSweepTest, ClOnCudaFreeFaultIsReportedThenRecovers) {
  Cl2CuStack s;
  ClVaddRun run;
  ASSERT_TRUE(run.Run(*s.cl).ok());
  s.device.faults().set_plan(OneShot(FaultSite::kGlobalFree, 0));

  int failures = 0;
  std::vector<ClMem> survivors;
  for (ClMem m : run.mems) {
    Status st = s.cl->ReleaseMemObject(m);
    if (!st.ok()) {
      ++failures;
      EXPECT_EQ(st.api_code(), mocl::CL_OUT_OF_RESOURCES) << st.ToString();
      survivors.push_back(m);
    }
  }
  EXPECT_EQ(failures, 1);
  for (ClMem m : survivors) EXPECT_TRUE(s.cl->ReleaseMemObject(m).ok());
  EXPECT_EQ(s.device.vm().global_allocation_count(), 0u);
}

TEST(FaultSweepTest, CudaOnClFreeFaultIsReportedThenRecovers) {
  Cu2ClStack s;
  CuVaddRun run;
  ASSERT_TRUE(run.Run(*s.cuda).ok());
  s.device.faults().set_plan(OneShot(FaultSite::kGlobalFree, 0));

  int failures = 0;
  std::vector<void*> survivors;
  for (void* p : run.ptrs) {
    Status st = s.cuda->Free(p);
    if (!st.ok()) {
      ++failures;
      // The inner CL layer reports the failed release as
      // CL_OUT_OF_RESOURCES; the wrapper re-expresses that as CUDA's
      // sticky launch-failure code (docs/ROBUSTNESS.md, Table B).
      EXPECT_EQ(st.api_code(), mcuda::cudaErrorLaunchFailure)
          << st.ToString();
      survivors.push_back(p);
    }
  }
  EXPECT_EQ(failures, 1);
  for (void* p : survivors) EXPECT_TRUE(s.cuda->Free(p).ok());
  EXPECT_EQ(s.device.vm().global_allocation_count(), 0u);
}

// ---------------------------------------------------------------------------
// Asynchronous commands defer their faults: a non-blocking enqueue reports
// success, the error parks on the queue and surfaces — once — at the next
// synchronization point (docs/ROBUSTNESS.md, docs/CONCURRENCY.md).
// ---------------------------------------------------------------------------
TEST(FaultSweepTest, ClOnCudaAsyncFaultDefersToFinish) {
  Cl2CuStack s;
  s.device.faults().set_plan(OneShot(FaultSite::kTransfer, 0));
  auto q = s.cl->CreateCommandQueue(0);
  ASSERT_TRUE(q.ok());
  auto buf = s.cl->CreateBuffer(MemFlags::kReadWrite, 64, nullptr);
  ASSERT_TRUE(buf.ok());
  std::vector<float> host(16, 1.0f);
  // The transfer is faulted, but the enqueue is non-blocking: it reports
  // success...
  Status enq = s.cl->EnqueueWriteBufferOn(*q, *buf, 0, 64, host.data(),
                                          /*blocking=*/false, {}, nullptr);
  EXPECT_TRUE(enq.ok()) << enq.ToString();
  // ...and the parked error surfaces at clFinish, in CL vocabulary.
  Status st = s.cl->Finish(*q);
  ASSERT_FALSE(st.ok());
  const std::set<int> codes = {mocl::CL_MEM_OBJECT_ALLOCATION_FAILURE,
                               mocl::CL_OUT_OF_RESOURCES};
  EXPECT_TRUE(codes.count(st.api_code())) << st.ToString();
  // Surfacing clears it: the queue is usable again.
  EXPECT_TRUE(s.cl->Finish(*q).ok());
  EXPECT_TRUE(s.cl->ReleaseCommandQueue(*q).ok());
  EXPECT_TRUE(s.cl->ReleaseMemObject(*buf).ok());
  EXPECT_EQ(s.device.vm().global_allocation_count(), 0u);
}

TEST(FaultSweepTest, CudaOnClAsyncFaultDefersToStreamSynchronize) {
  Cu2ClStack s;
  s.device.faults().set_plan(OneShot(FaultSite::kTransfer, 0));
  auto stream = s.cuda->StreamCreate();
  ASSERT_TRUE(stream.ok());
  auto p = s.cuda->Malloc(64);
  ASSERT_TRUE(p.ok());
  std::vector<float> host(16, 1.0f);
  Status enq = s.cuda->MemcpyAsync(*p, host.data(), 64,
                                   MemcpyKind::kHostToDevice, *stream);
  EXPECT_TRUE(enq.ok()) << enq.ToString();
  Status st = s.cuda->StreamSynchronize(*stream);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.api_code(), mcuda::cudaErrorLaunchFailure) << st.ToString();
  EXPECT_TRUE(s.cuda->StreamSynchronize(*stream).ok());
  EXPECT_TRUE(s.cuda->StreamDestroy(*stream).ok());
  EXPECT_TRUE(s.cuda->Free(*p).ok());
  EXPECT_EQ(s.device.vm().global_allocation_count(), 0u);
}

// ---------------------------------------------------------------------------
// Sticky device loss: every call after the loss reports the one spec code
// the API has for it, until the context is torn down; a fresh context on
// the same device works.
// ---------------------------------------------------------------------------
TEST(FaultSweepTest, ClOnCudaDeviceLostIsStickyUntilContextRelease) {
  Cl2CuStack s;
  s.device.faults().set_plan(
      OneShot(FaultSite::kTransfer, 0, FaultKind::kDeviceLost));
  ClVaddRun run;
  Status st = run.Run(*s.cl);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.api_code(), mocl::CL_OUT_OF_RESOURCES) << st.ToString();
  EXPECT_EQ(st.code(), StatusCode::kDeviceLost);

  // Sticky: an unrelated entry point keeps failing the same way.
  auto again = s.cl->CreateBuffer(MemFlags::kReadWrite, 64, nullptr);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().api_code(), mocl::CL_OUT_OF_RESOURCES);
  EXPECT_EQ(again.status().code(), StatusCode::kDeviceLost);

  // Release the context, acquire a fresh one: the device works again.
  s.device.faults().ResetContext();
  ClVaddRun fresh;
  EXPECT_TRUE(fresh.Run(*s.cl).ok());
  fresh.Cleanup(*s.cl);
}

TEST(FaultSweepTest, CudaOnClDeviceLostIsStickyUntilContextRelease) {
  Cu2ClStack s;
  s.device.faults().set_plan(
      OneShot(FaultSite::kTransfer, 0, FaultKind::kDeviceLost));
  CuVaddRun run;
  Status st = run.Run(*s.cuda);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.api_code(), mcuda::cudaErrorDevicesUnavailable)
      << st.ToString();
  EXPECT_EQ(st.code(), StatusCode::kDeviceLost);

  auto again = s.cuda->Malloc(64);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().api_code(), mcuda::cudaErrorDevicesUnavailable);
  EXPECT_EQ(again.status().code(), StatusCode::kDeviceLost);

  s.device.faults().ResetContext();
  run.Cleanup(*s.cuda);
  EXPECT_EQ(s.device.vm().global_allocation_count(), 0u);
  CuVaddRun fresh;
  EXPECT_TRUE(fresh.Run(*s.cuda).ok());
  fresh.Cleanup(*s.cuda);
}

// ---------------------------------------------------------------------------
// Transient faults: the API layers retry a bounded number of times, so a
// once-only transient failure is invisible to the application.
// ---------------------------------------------------------------------------
TEST(FaultSweepTest, TransientAllocFaultIsRetriedToSuccess) {
  {
    Cl2CuStack s;
    FaultPlan plan;
    plan.points.push_back(FaultPoint{FaultSite::kGlobalAlloc, 0,
                                     FaultKind::kError, /*transient=*/true,
                                     0});
    s.device.faults().set_plan(plan);
    ClVaddRun run;
    EXPECT_TRUE(run.Run(*s.cl).ok());
    run.Cleanup(*s.cl);
  }
  {
    Cu2ClStack s;
    FaultPlan plan;
    plan.points.push_back(FaultPoint{FaultSite::kTransfer, 0,
                                     FaultKind::kError, /*transient=*/true,
                                     0});
    s.device.faults().set_plan(plan);
    CuVaddRun run;
    EXPECT_TRUE(run.Run(*s.cuda).ok());
    run.Cleanup(*s.cuda);
  }
}

// ---------------------------------------------------------------------------
// Truncated transfers: a partial DMA still fails with a spec code, and the
// diagnostic says how far it got.
// ---------------------------------------------------------------------------
TEST(FaultSweepTest, TruncatedTransferReportsPartialProgress) {
  Cl2CuStack s;
  FaultPlan plan;
  plan.points.push_back(FaultPoint{FaultSite::kTransfer, 0,
                                   FaultKind::kTruncate, false,
                                   /*truncate_to=*/4});
  s.device.faults().set_plan(plan);
  ClVaddRun run;
  Status st = run.Run(*s.cl);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(mocl::IsClCode(st.api_code())) << st.ToString();
  EXPECT_NE(st.message().find("truncated after"), std::string::npos)
      << st.ToString();
  run.Cleanup(*s.cl);
  EXPECT_EQ(s.device.vm().global_allocation_count(), 0u);
}

// ---------------------------------------------------------------------------
// Resumable sweeps: a snapshot image carries the fault injector's plan
// and ordinal counters (src/snapshot, docs/SNAPSHOT.md), so an
// interrupted nth-fault sweep run restores into a fresh context and
// resumes bit-identically — the fault fires at the same step, with the
// same code, at the same simulated instant and ordinal totals.
// ---------------------------------------------------------------------------
TEST(FaultSweepTest, InterruptedSweepRunResumesBitIdentically) {
  constexpr int kCopies = 8;
  constexpr int kSnapAfter = 3;
  std::vector<float> host(16, 1.0f);

  // Counting run: how many transfer ordinals one copy consumes, and how
  // many are consumed before the first copy.
  uint64_t base = 0, per_copy = 0;
  {
    Device device{TitanProfile()};
    auto cu = mcuda::CreateNativeCudaApi(device);
    device.faults().set_plan(SentinelPlan());
    auto p = cu->Malloc(64);
    ASSERT_TRUE(p.ok());
    ASSERT_TRUE(
        cu->Memcpy(*p, host.data(), 64, MemcpyKind::kHostToDevice).ok());
    const uint64_t after_one = device.faults().count(FaultSite::kTransfer);
    ASSERT_TRUE(
        cu->Memcpy(*p, host.data(), 64, MemcpyKind::kHostToDevice).ok());
    per_copy = device.faults().count(FaultSite::kTransfer) - after_one;
    ASSERT_GT(per_copy, 0u);
    base = after_one - per_copy;
  }
  // Arms the 6th copy (index 5): after the snapshot point, so the fault
  // belongs to the resumed half of the sweep.
  const uint64_t nth = base + per_copy * 5;

  // Uninterrupted reference run.
  int fail_at_a = -1;
  Status st_a;
  uint64_t count_a = 0;
  double clock_a = 0;
  void* ptr = nullptr;
  {
    Device device{TitanProfile()};
    auto cu = mcuda::CreateNativeCudaApi(device);
    device.faults().set_plan(OneShot(FaultSite::kTransfer, nth));
    auto p = cu->Malloc(64);
    ASSERT_TRUE(p.ok());
    for (int i = 0; i < kCopies; ++i) {
      Status st =
          cu->Memcpy(*p, host.data(), 64, MemcpyKind::kHostToDevice);
      if (!st.ok()) {
        fail_at_a = i;
        st_a = st;
        break;
      }
    }
    ASSERT_EQ(fail_at_a, 5);
    count_a = device.faults().count(FaultSite::kTransfer);
    clock_a = cu->NowUs();
  }

  // The same run, interrupted by a snapshot after three copies. The
  // device allocator is deterministic, so the buffer's address matches
  // the reference run's — and stays valid across restore, exactly as a
  // checkpointed application would persist its own handles.
  const std::string path = ::testing::TempDir() + "bridgecl_sweep_" +
                           std::to_string(::getpid()) + ".sgsnap";
  {
    Device device{TitanProfile()};
    auto cu = mcuda::CreateNativeCudaApi(device);
    device.faults().set_plan(OneShot(FaultSite::kTransfer, nth));
    auto p = cu->Malloc(64);
    ASSERT_TRUE(p.ok());
    ptr = *p;
    for (int i = 0; i < kSnapAfter; ++i)
      ASSERT_TRUE(
          cu->Memcpy(*p, host.data(), 64, MemcpyKind::kHostToDevice).ok());
    ASSERT_TRUE(cu->Snapshot(path).ok());
  }

  // Resume in a fresh context: no re-arming — the plan and the already
  // consumed ordinals come from the image.
  {
    Device device{TitanProfile()};
    auto cu = mcuda::CreateNativeCudaApi(device);
    ASSERT_TRUE(cu->Restore(path).ok());
    int fail_at_b = -1;
    Status st_b;
    for (int i = kSnapAfter; i < kCopies; ++i) {
      Status st =
          cu->Memcpy(ptr, host.data(), 64, MemcpyKind::kHostToDevice);
      if (!st.ok()) {
        fail_at_b = i;
        st_b = st;
        break;
      }
    }
    EXPECT_EQ(fail_at_b, fail_at_a);
    EXPECT_EQ(st_b.code(), st_a.code());
    EXPECT_EQ(st_b.api_code(), st_a.api_code());
    EXPECT_EQ(device.faults().count(FaultSite::kTransfer), count_a);
    EXPECT_EQ(cu->NowUs(), clock_a);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bridgecl
