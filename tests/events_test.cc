// Profiling-event APIs: cl_event-style kernel profiling in the OpenCL
// model, cudaEvent_t pairs in the CUDA model — under both native and
// wrapper bindings (the paper's timing methodology relies on being able
// to measure execution windows on either side).
#include <gtest/gtest.h>

#include "cl2cu/cl_on_cuda.h"
#include "cu2cl/cuda_on_cl.h"
#include "mcuda/cuda_api.h"
#include "mocl/cl_api.h"
#include "simgpu/device.h"
#include "trace/session.h"
#include "trace/trace.h"

namespace bridgecl {
namespace {

using mocl::ClEvent;
using mocl::ClMem;
using mocl::MemFlags;
using simgpu::Device;
using simgpu::Dim3;
using simgpu::TitanProfile;

constexpr char kClKernel[] =
    "__kernel void spin(__global float* g, int iters) {"
    "  int i = get_global_id(0);"
    "  float acc = g[i];"
    "  for (int k = 0; k < iters; k++) acc = acc * 1.0001f + 0.5f;"
    "  g[i] = acc;"
    "}";

StatusOr<double> TimeClKernel(mocl::OpenClApi& cl, int iters) {
  BRIDGECL_ASSIGN_OR_RETURN(auto prog, cl.CreateProgramWithSource(kClKernel));
  BRIDGECL_RETURN_IF_ERROR(cl.BuildProgram(prog));
  BRIDGECL_ASSIGN_OR_RETURN(auto kernel, cl.CreateKernel(prog, "spin"));
  BRIDGECL_ASSIGN_OR_RETURN(
      ClMem g, cl.CreateBuffer(MemFlags::kReadWrite, 64 * 4, nullptr));
  BRIDGECL_RETURN_IF_ERROR(cl.SetKernelArg(kernel, 0, sizeof(ClMem), &g));
  BRIDGECL_RETURN_IF_ERROR(cl.SetKernelArg(kernel, 1, sizeof(int), &iters));
  size_t gws = 64, lws = 32;
  BRIDGECL_ASSIGN_OR_RETURN(
      ClEvent ev, cl.EnqueueNDRangeKernelWithEvent(kernel, 1, &gws, &lws));
  double queued = 0, end = 0;
  BRIDGECL_RETURN_IF_ERROR(cl.GetEventProfiling(ev, &queued, &end));
  return end - queued;
}

TEST(EventsTest, ProfilingWindowCoversKernelTime) {
  Device dev(TitanProfile());
  auto cl = mocl::CreateNativeClApi(dev);
  auto short_run = TimeClKernel(*cl, 8);
  ASSERT_TRUE(short_run.ok()) << short_run.status().ToString();
  auto long_run = TimeClKernel(*cl, 4096);
  ASSERT_TRUE(long_run.ok());
  EXPECT_GT(*short_run, 0.0);
  EXPECT_GT(*long_run, *short_run * 3);  // scales with kernel work
}

TEST(EventsTest, WrapperProfilingAgreesWithNative) {
  Device native_dev(TitanProfile());
  auto native = mocl::CreateNativeClApi(native_dev);
  auto t_native = TimeClKernel(*native, 64);
  ASSERT_TRUE(t_native.ok());

  Device wrapped_dev(TitanProfile());
  auto cuda = mcuda::CreateNativeCudaApi(wrapped_dev);
  auto wrapped = cl2cu::CreateClOnCudaApi(*cuda);
  auto t_wrapped = TimeClKernel(*wrapped, 64);
  ASSERT_TRUE(t_wrapped.ok()) << t_wrapped.status().ToString();
  // The translated kernel performs the same work; windows are within 20%.
  EXPECT_NEAR(*t_wrapped, *t_native, *t_native * 0.2);
}

TEST(EventsTest, QueuedNeverExceedsEndAndBracketsTraceSpan) {
  // COMMAND_QUEUED is stamped before the launch runs and COMMAND_END
  // after, on the same simulated clock the trace recorder reads — so
  // queued <= end always, and the recorded kernel-launch span must fall
  // inside the [queued, end] window.
  Device dev(TitanProfile());
  trace::TraceSession session(dev, {});
  auto cl = mocl::CreateNativeClApi(dev);
  auto prog = cl->CreateProgramWithSource(kClKernel);
  ASSERT_TRUE(prog.ok());
  ASSERT_TRUE(cl->BuildProgram(*prog).ok());
  auto kernel = cl->CreateKernel(*prog, "spin");
  auto g = cl->CreateBuffer(MemFlags::kReadWrite, 64 * 4, nullptr);
  ASSERT_TRUE(kernel.ok() && g.ok());
  int iters = 64;
  ASSERT_TRUE(cl->SetKernelArg(*kernel, 0, sizeof(ClMem), &*g).ok());
  ASSERT_TRUE(cl->SetKernelArg(*kernel, 1, sizeof(int), &iters).ok());
  size_t gws = 64, lws = 32;
  auto ev = cl->EnqueueNDRangeKernelWithEvent(*kernel, 1, &gws, &lws);
  ASSERT_TRUE(ev.ok()) << ev.status().ToString();
  double queued = 0, end = 0;
  ASSERT_TRUE(cl->GetEventProfiling(*ev, &queued, &end).ok());
  EXPECT_LE(queued, end);

  const trace::TraceEvent* launch = nullptr;
  for (const trace::TraceEvent& e : session.recorder().events())
    if (e.kind == trace::TraceKind::kKernelLaunch) launch = &e;
  ASSERT_NE(launch, nullptr);
  EXPECT_LE(queued, launch->begin_us);
  EXPECT_LE(launch->begin_us, launch->end_us);
  EXPECT_LE(launch->end_us, end);
}

TEST(EventsTest, UnknownEventRejected) {
  Device dev(TitanProfile());
  auto cl = mocl::CreateNativeClApi(dev);
  double a = 0, b = 0;
  EXPECT_FALSE(cl->GetEventProfiling(ClEvent{12345}, &a, &b).ok());
}

StatusOr<double> TimeCudaKernel(mcuda::CudaApi& cu, int iters) {
  BRIDGECL_RETURN_IF_ERROR(cu.RegisterModule(
      "__global__ void spin(float* g, int iters) {"
      "  int i = blockIdx.x * blockDim.x + threadIdx.x;"
      "  float acc = g[i];"
      "  for (int k = 0; k < iters; k++) acc = acc * 1.0001f + 0.5f;"
      "  g[i] = acc;"
      "}"));
  BRIDGECL_ASSIGN_OR_RETURN(void* g, cu.Malloc(64 * 4));
  BRIDGECL_ASSIGN_OR_RETURN(void* start, cu.EventCreate());
  BRIDGECL_ASSIGN_OR_RETURN(void* stop, cu.EventCreate());
  BRIDGECL_RETURN_IF_ERROR(cu.EventRecord(start));
  std::vector<mcuda::LaunchArg> args = {mcuda::LaunchArg::Ptr(g),
                                        mcuda::LaunchArg::Value<int>(iters)};
  BRIDGECL_RETURN_IF_ERROR(cu.LaunchKernel("spin", Dim3(2), Dim3(32), 0,
                                           args));
  BRIDGECL_RETURN_IF_ERROR(cu.EventRecord(stop));
  BRIDGECL_ASSIGN_OR_RETURN(double us, cu.EventElapsedUs(start, stop));
  BRIDGECL_RETURN_IF_ERROR(cu.EventDestroy(start));
  BRIDGECL_RETURN_IF_ERROR(cu.EventDestroy(stop));
  return us;
}

TEST(EventsTest, CudaEventsNativeAndWrapped) {
  Device native_dev(TitanProfile());
  auto native = mcuda::CreateNativeCudaApi(native_dev);
  auto t_native = TimeCudaKernel(*native, 128);
  ASSERT_TRUE(t_native.ok()) << t_native.status().ToString();
  EXPECT_GT(*t_native, 0.0);

  Device wrapped_dev(TitanProfile());
  auto cl = mocl::CreateNativeClApi(wrapped_dev);
  auto wrapped = cu2cl::CreateCudaOnClApi(*cl);
  auto t_wrapped = TimeCudaKernel(*wrapped, 128);
  ASSERT_TRUE(t_wrapped.ok()) << t_wrapped.status().ToString();
  // The wrapper window includes the deferred first-use build (§3.4);
  // subtracting it, the windows agree within 25%.
  double adjusted = *t_wrapped - cl->BuildTimeUs();
  EXPECT_NEAR(adjusted, *t_native, *t_native * 0.25);
}

TEST(EventsTest, UnrecordedEventRejected) {
  Device dev(TitanProfile());
  auto cu = mcuda::CreateNativeCudaApi(dev);
  auto a = cu->EventCreate();
  auto b = cu->EventCreate();
  ASSERT_TRUE(a.ok() && b.ok());
  auto r = cu->EventElapsedUs(*a, *b);  // never recorded
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(cu->EventDestroy(*a).ok());
  EXPECT_FALSE(cu->EventDestroy(*a).ok());  // double destroy
}

}  // namespace
}  // namespace bridgecl
