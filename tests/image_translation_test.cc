// §5 coverage: "We support all OpenCL image-related functions, such as
// image creation, image read, image write, etc." — image writes and
// dimension queries must survive OpenCL→CUDA translation (becoming
// __oc2cu_* wrapper device functions), and CUDA 3D texture fetches must
// translate to read_imagef with a 4-component coordinate.
#include <gtest/gtest.h>

#include "cl2cu/cl_on_cuda.h"
#include "interp/executor.h"
#include "interp/image.h"
#include "interp/module.h"
#include "mcuda/cuda_api.h"
#include "mocl/cl_api.h"
#include "simgpu/device.h"
#include "translator/translate.h"

namespace bridgecl {
namespace {

using mocl::ClImageFormat;
using mocl::ClMem;
using mocl::MemFlags;
using simgpu::Device;
using simgpu::Dim3;
using simgpu::TitanProfile;

/// OpenCL host program writing to an image and querying its dimensions,
/// run under a given binding.
StatusOr<std::vector<float>> RunImageWriter(mocl::OpenClApi& cl) {
  const char* src =
      "__kernel void fill(__write_only image2d_t img, float base) {"
      "  int x = get_global_id(0);"
      "  int y = get_global_id(1);"
      "  float4 texel = (float4)(base + (float)(y * 4 + x), 0.0f, 0.0f,"
      "                          1.0f);"
      "  write_imagef(img, (int2)(x, y), texel);"
      "}"
      "__kernel void dims(__read_only image2d_t img, __global int* out) {"
      "  out[0] = get_image_width(img);"
      "  out[1] = get_image_height(img);"
      "}";
  BRIDGECL_ASSIGN_OR_RETURN(auto prog, cl.CreateProgramWithSource(src));
  BRIDGECL_RETURN_IF_ERROR(cl.BuildProgram(prog));
  ClImageFormat fmt;
  fmt.elem = lang::ScalarKind::kFloat;
  fmt.channels = 1;
  BRIDGECL_ASSIGN_OR_RETURN(
      ClMem img, cl.CreateImage2D(MemFlags::kReadWrite, fmt, 4, 2, nullptr));
  BRIDGECL_ASSIGN_OR_RETURN(auto fill, cl.CreateKernel(prog, "fill"));
  float base = 10.0f;
  BRIDGECL_RETURN_IF_ERROR(cl.SetKernelArg(fill, 0, sizeof(ClMem), &img));
  BRIDGECL_RETURN_IF_ERROR(cl.SetKernelArg(fill, 1, sizeof(float), &base));
  size_t gws[2] = {4, 2}, lws[2] = {4, 2};
  BRIDGECL_RETURN_IF_ERROR(cl.EnqueueNDRangeKernel(fill, 2, gws, lws));

  BRIDGECL_ASSIGN_OR_RETURN(auto dims, cl.CreateKernel(prog, "dims"));
  BRIDGECL_ASSIGN_OR_RETURN(
      ClMem out, cl.CreateBuffer(MemFlags::kWriteOnly, 8, nullptr));
  BRIDGECL_RETURN_IF_ERROR(cl.SetKernelArg(dims, 0, sizeof(ClMem), &img));
  BRIDGECL_RETURN_IF_ERROR(cl.SetKernelArg(dims, 1, sizeof(ClMem), &out));
  size_t one = 1;
  BRIDGECL_RETURN_IF_ERROR(cl.EnqueueNDRangeKernel(dims, 1, &one, &one));

  std::vector<float> texels(8);
  BRIDGECL_RETURN_IF_ERROR(cl.EnqueueReadImage(img, texels.data()));
  int wh[2];
  BRIDGECL_RETURN_IF_ERROR(cl.EnqueueReadBuffer(out, 0, 8, wh));
  texels.push_back(static_cast<float>(wh[0]));
  texels.push_back(static_cast<float>(wh[1]));
  return texels;
}

TEST(ImageTranslationTest, WriteAndQueryThroughWrapper) {
  Device native_dev(TitanProfile());
  auto native = mocl::CreateNativeClApi(native_dev);
  auto r_native = RunImageWriter(*native);
  ASSERT_TRUE(r_native.ok()) << r_native.status().ToString();

  Device wrapped_dev(TitanProfile());
  auto cuda = mcuda::CreateNativeCudaApi(wrapped_dev);
  auto wrapped = cl2cu::CreateClOnCudaApi(*cuda);
  auto r_wrapped = RunImageWriter(*wrapped);
  ASSERT_TRUE(r_wrapped.ok()) << r_wrapped.status().ToString();

  EXPECT_EQ(*r_native, *r_wrapped);
  EXPECT_FLOAT_EQ((*r_native)[5], 15.0f);  // texel (1,1) = 10 + 5
  EXPECT_FLOAT_EQ((*r_native)[8], 4.0f);   // width
  EXPECT_FLOAT_EQ((*r_native)[9], 2.0f);   // height
}

TEST(ImageTranslationTest, ProgramScopeSamplerWorks) {
  // OpenCL allows a program-scope `__constant sampler_t` initialized with
  // CLK_* flags; it must execute natively and survive CL→CU translation
  // (becoming a __constant__ variable read by the wrapper device library).
  const char* src =
      "__constant sampler_t the_sampler ="
      "    CLK_NORMALIZED_COORDS_FALSE | CLK_ADDRESS_CLAMP_TO_EDGE |"
      "    CLK_FILTER_NEAREST;"
      "__kernel void sample(__read_only image2d_t img,"
      "                     __global float* out) {"
      "  int x = get_global_id(0);"
      "  float4 t = read_imagef(img, the_sampler, (int2)(x, 0));"
      "  out[x] = t.x;"
      "}";
  auto run = [&](mocl::OpenClApi& cl) -> StatusOr<std::vector<float>> {
    BRIDGECL_ASSIGN_OR_RETURN(auto prog, cl.CreateProgramWithSource(src));
    BRIDGECL_RETURN_IF_ERROR(cl.BuildProgram(prog));
    BRIDGECL_ASSIGN_OR_RETURN(auto kernel, cl.CreateKernel(prog, "sample"));
    ClImageFormat fmt;
    fmt.elem = lang::ScalarKind::kFloat;
    fmt.channels = 1;
    float texels[4] = {5, 6, 7, 8};
    BRIDGECL_ASSIGN_OR_RETURN(
        ClMem img, cl.CreateImage2D(MemFlags::kReadOnly, fmt, 4, 1, texels));
    BRIDGECL_ASSIGN_OR_RETURN(
        ClMem out, cl.CreateBuffer(MemFlags::kWriteOnly, 16, nullptr));
    BRIDGECL_RETURN_IF_ERROR(cl.SetKernelArg(kernel, 0, sizeof(ClMem),
                                             &img));
    BRIDGECL_RETURN_IF_ERROR(cl.SetKernelArg(kernel, 1, sizeof(ClMem),
                                             &out));
    size_t gws = 4, lws = 4;
    BRIDGECL_RETURN_IF_ERROR(cl.EnqueueNDRangeKernel(kernel, 1, &gws, &lws));
    std::vector<float> result(4);
    BRIDGECL_RETURN_IF_ERROR(cl.EnqueueReadBuffer(out, 0, 16,
                                                  result.data()));
    return result;
  };
  Device native_dev(TitanProfile());
  auto native = mocl::CreateNativeClApi(native_dev);
  auto r_native = run(*native);
  ASSERT_TRUE(r_native.ok()) << r_native.status().ToString();
  EXPECT_FLOAT_EQ((*r_native)[2], 7.0f);

  Device wrapped_dev(TitanProfile());
  auto cuda = mcuda::CreateNativeCudaApi(wrapped_dev);
  auto wrapped = cl2cu::CreateClOnCudaApi(*cuda);
  auto r_wrapped = run(*wrapped);
  ASSERT_TRUE(r_wrapped.ok()) << r_wrapped.status().ToString();
  EXPECT_EQ(*r_native, *r_wrapped);
}

TEST(ImageTranslationTest, WriteImageBecomesWrapperCall) {
  DiagnosticEngine diags;
  auto tr = translator::TranslateOpenClToCuda(
      "__kernel void fill(__write_only image2d_t img) {"
      "  write_imagef(img, (int2)(0, 0), (float4)(1.0f, 0.0f, 0.0f, 1.0f));"
      "}",
      diags);
  ASSERT_TRUE(tr.ok()) << diags.ToString();
  EXPECT_NE(tr->source.find("__oc2cu_write_imagef"), std::string::npos)
      << tr->source;
  EXPECT_NE(tr->source.find("make_int2"), std::string::npos) << tr->source;
}

TEST(ImageTranslationTest, Tex3DTranslatesToFloat4Coordinate) {
  DiagnosticEngine diags;
  auto tr = translator::TranslateCudaToOpenCl(
      "texture<float, 3, cudaReadModeElementType> vol;"
      "__global__ void k(float* out) {"
      "  out[threadIdx.x] = tex3D(vol, 1.0f, 2.0f, 3.0f);"
      "}",
      diags);
  ASSERT_TRUE(tr.ok()) << diags.ToString();
  EXPECT_NE(tr->source.find("read_imagef(vol__img, vol__sampler, "
                            "(float4)(1.0f, 2.0f, 3.0f, 0.0f))"),
            std::string::npos)
      << tr->source;
  EXPECT_NE(tr->source.find("image3d_t vol__img"), std::string::npos)
      << tr->source;
}

TEST(ImageTranslationTest, Tex3DExecutes) {
  // 2x2x2 volume; fetch a specific voxel through the interpreter.
  Device device(TitanProfile());
  DiagnosticEngine diags;
  auto m = interp::Module::Compile(
      "texture<float, 3, cudaReadModeElementType> vol;"
      "__global__ void k(float* out) {"
      "  out[0] = tex3D(vol, 1.0f, 0.0f, 1.0f);"
      "}",
      lang::Dialect::kCUDA, diags);
  ASSERT_TRUE(m.ok()) << diags.ToString();
  ASSERT_TRUE((*m)->LoadOn(device).ok());
  float voxels[8] = {0, 1, 2, 3, 4, 5, 6, 7};
  auto data = device.vm().AllocGlobal(sizeof(voxels));
  ASSERT_TRUE(data.ok());
  std::memcpy(*device.vm().Resolve(*data, sizeof(voxels)), voxels,
              sizeof(voxels));
  interp::ImageDesc desc;
  desc.data_va = *data;
  desc.width = 2;
  desc.height = 2;
  desc.depth = 2;
  desc.channels = 1;
  desc.elem_kind = static_cast<uint32_t>(lang::ScalarKind::kFloat);
  desc.row_pitch = 2 * 4;
  desc.slice_pitch = 4 * 4;
  desc.dims = 3;
  auto desc_va = device.vm().AllocGlobal(sizeof(desc));
  ASSERT_TRUE(desc_va.ok());
  std::memcpy(*device.vm().Resolve(*desc_va, sizeof(desc)), &desc,
              sizeof(desc));
  ASSERT_TRUE((*m)->BindTexture("vol", *desc_va).ok());
  auto out = device.vm().AllocGlobal(16);
  ASSERT_TRUE(out.ok());
  interp::LaunchConfig cfg;
  cfg.grid = Dim3(1);
  cfg.block = Dim3(1);
  std::vector<interp::KernelArg> args = {interp::KernelArg::Pointer(*out)};
  auto r = interp::LaunchKernel(device, **m, "k", cfg, args);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  float got;
  std::memcpy(&got, *device.vm().Resolve(*out, 4), 4);
  EXPECT_FLOAT_EQ(got, 5.0f);  // voxel (x=1, y=0, z=1): 1*4 + 0*2 + 1
}

}  // namespace
}  // namespace bridgecl
