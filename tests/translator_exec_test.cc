// Execution-level checks of translated built-ins: every OpenCL builtin the
// CL→CU rewriter maps (wrapper device functions, math renames, clamp/mix
// expansions, vload/vstore, conversions, reinterpretations) must compute
// the same value after translation. Plus parse→print idempotence over all
// shipped application sources.
#include <gtest/gtest.h>

#include "apps/app.h"
#include "interp/executor.h"
#include "interp/module.h"
#include "lang/parser.h"
#include "lang/printer.h"
#include "lang/sema.h"
#include "simgpu/device.h"
#include "translator/translate.h"

namespace bridgecl {
namespace {

using interp::KernelArg;
using interp::Module;
using lang::Dialect;
using simgpu::Device;
using simgpu::Dim3;
using simgpu::TitanProfile;

/// Run a one-work-item OpenCL kernel writing 8 floats to `out`, both
/// natively and after CL→CU translation, and return the two output arrays.
StatusOr<std::pair<std::vector<float>, std::vector<float>>> RunBoth(
    const std::string& body) {
  std::string src =
      "__kernel void k(__global float* out, __global float* in) {\n" + body +
      "\n}";
  DiagnosticEngine diags;
  auto tr = translator::TranslateOpenClToCuda(src, diags);
  if (!tr.ok())
    return Status(tr.status().code(),
                  tr.status().message() + "\n" + diags.ToString());
  auto run = [&](const std::string& s,
                 Dialect d) -> StatusOr<std::vector<float>> {
    Device device(TitanProfile());
    DiagnosticEngine dg;
    auto m = Module::Compile(s, d, dg);
    if (!m.ok())
      return Status(m.status().code(),
                    m.status().message() + "\n" + dg.ToString() + "\n" + s);
    BRIDGECL_RETURN_IF_ERROR((*m)->LoadOn(device));
    BRIDGECL_ASSIGN_OR_RETURN(uint64_t out_va,
                              device.vm().AllocGlobal(8 * 4));
    BRIDGECL_ASSIGN_OR_RETURN(uint64_t in_va,
                              device.vm().AllocGlobal(8 * 4));
    float in[8] = {1.5f, -2.25f, 3.0f, 4.5f, -5.0f, 6.75f, 7.0f, 8.5f};
    std::memcpy(*device.vm().Resolve(in_va, 32), in, 32);
    interp::LaunchConfig cfg;
    cfg.grid = Dim3(1);
    cfg.block = Dim3(1);
    std::vector<KernelArg> args = {KernelArg::Pointer(out_va),
                                   KernelArg::Pointer(in_va)};
    BRIDGECL_RETURN_IF_ERROR(
        interp::LaunchKernel(device, **m, "k", cfg, args).status());
    std::vector<float> out(8);
    std::memcpy(out.data(), *device.vm().Resolve(out_va, 32), 32);
    return out;
  };
  BRIDGECL_ASSIGN_OR_RETURN(auto a, run(src, Dialect::kOpenCL));
  BRIDGECL_ASSIGN_OR_RETURN(auto b, run(tr->source, Dialect::kCUDA));
  return std::make_pair(a, b);
}

struct BuiltinCase {
  const char* name;
  const char* body;
};

class BuiltinTranslationTest
    : public ::testing::TestWithParam<BuiltinCase> {};

INSTANTIATE_TEST_SUITE_P(
    Builtins, BuiltinTranslationTest,
    ::testing::Values(
        BuiltinCase{"clamp_float",
                    "out[0] = clamp(in[0], 0.0f, 1.0f);"
                    "out[1] = clamp(in[1], -1.0f, 1.0f);"
                    "out[2] = clamp(in[2], 0.0f, 10.0f);"},
        BuiltinCase{"mix",
                    "out[0] = mix(in[0], in[2], 0.25f);"
                    "out[1] = mix(in[1], in[3], 0.75f);"},
        BuiltinCase{"mad_and_native",
                    "out[0] = mad(in[0], in[2], in[3]);"
                    "out[1] = native_exp(0.0f);"
                    "out[2] = native_sqrt(in[2] * in[2]);"
                    "out[3] = native_divide(in[3], 2.0f);"},
        BuiltinCase{"convert_and_as",
                    "int bits = as_int(in[0]);"
                    "out[0] = as_float(bits);"
                    "out[1] = (float)convert_int(in[2]);"
                    "float4 v = (float4)(in[0], in[1], in[2], in[3]);"
                    "int4 iv = convert_int4(v);"
                    "out[2] = (float)iv.z;"},
        BuiltinCase{"vload_vstore",
                    "float4 v = vload4(0, in);"
                    "v = v * 2.0f;"
                    "vstore4(v, 0, out);"
                    "float2 w = vload2(2, in);"
                    "vstore2(w, 2, out);"},
        BuiltinCase{"minmax_int",
                    "int a = (int)in[0];"
                    "int b = (int)in[3];"
                    "out[0] = (float)min(a, b);"
                    "out[1] = (float)max(a, b);"
                    "out[2] = (float)abs((int)in[1]);"
                    "out[3] = (float)clz(8);"
                    "out[4] = (float)popcount(255);"
                    "out[5] = (float)mul24(3, 7);"},
        BuiltinCase{"work_dim_and_offset",
                    "out[0] = (float)get_work_dim();"
                    "out[1] = (float)get_global_offset(0);"},
        BuiltinCase{"select_scalar",
                    "int cond = in[0] > 0.0f;"
                    "out[0] = select(in[1], in[2], cond);"
                    "out[1] = select(in[1], in[2], 0);"},
        BuiltinCase{"fences",
                    "out[0] = in[0];"
                    "mem_fence(CLK_GLOBAL_MEM_FENCE);"
                    "out[1] = in[1];"
                    "read_mem_fence(CLK_LOCAL_MEM_FENCE);"
                    "write_mem_fence(CLK_LOCAL_MEM_FENCE);"
                    "out[2] = in[2];"}),
    [](const auto& info) { return std::string(info.param.name); });

TEST_P(BuiltinTranslationTest, SameValueAfterTranslation) {
  auto r = RunBoth(GetParam().body);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->first, r->second);
}

// ===========================================================================
// Parse→print idempotence across every shipped application source, in its
// own dialect (the printer's output must be a fixed point).
// ===========================================================================
std::string Reprint(const std::string& src, Dialect d) {
  DiagnosticEngine diags;
  lang::ParseOptions popts;
  popts.dialect = d;
  auto tu = lang::ParseTranslationUnit(src, popts, diags);
  EXPECT_TRUE(tu.ok()) << diags.ToString() << "\n" << src;
  if (!tu.ok()) return "";
  lang::SemaOptions sopts;
  sopts.dialect = d;
  EXPECT_TRUE(lang::Analyze(**tu, sopts, diags).ok()) << diags.ToString();
  lang::PrintOptions oopts;
  oopts.dialect = d;
  return lang::PrintTranslationUnit(**tu, oopts);
}

TEST(AppSourceRoundTrip, AllAppSourcesArePrinterFixedPoints) {
  int checked = 0;
  for (auto maker : {apps::RodiniaApps, apps::NpbApps, apps::ToolkitApps}) {
    for (auto& app : maker()) {
      SCOPED_TRACE(app->name());
      if (app->has_opencl()) {
        std::string once = Reprint(app->OpenClSource(), Dialect::kOpenCL);
        ASSERT_FALSE(once.empty());
        EXPECT_EQ(once, Reprint(once, Dialect::kOpenCL));
        ++checked;
      }
      if (app->has_cuda()) {
        std::string once = Reprint(app->CudaSource(), Dialect::kCUDA);
        ASSERT_FALSE(once.empty());
        EXPECT_EQ(once, Reprint(once, Dialect::kCUDA));
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 40);
}

// Every dual-dialect app's OpenCL version must itself be translatable to
// CUDA, and the result must compile — the Fig 7 precondition, asserted
// per app rather than via the bench.
TEST(AppSourceRoundTrip, AllOpenClAppSourcesTranslate) {
  for (auto maker : {apps::RodiniaApps, apps::NpbApps, apps::ToolkitApps}) {
    for (auto& app : maker()) {
      if (!app->has_opencl()) continue;
      SCOPED_TRACE(app->name());
      DiagnosticEngine diags;
      auto tr =
          translator::TranslateOpenClToCuda(app->OpenClSource(), diags);
      ASSERT_TRUE(tr.ok()) << diags.ToString();
      DiagnosticEngine diags2;
      auto m = Module::Compile(tr->source, Dialect::kCUDA, diags2);
      EXPECT_TRUE(m.ok()) << diags2.ToString() << "\n" << tr->source;
    }
  }
}

// And the symmetric direction: every dual-dialect app's CUDA version must
// translate to OpenCL and recompile (the Fig 8 precondition).
TEST(AppSourceRoundTrip, AllCudaAppSourcesTranslate) {
  for (auto maker : {apps::RodiniaApps, apps::ToolkitApps}) {
    for (auto& app : maker()) {
      if (!app->has_cuda()) continue;
      SCOPED_TRACE(app->name());
      DiagnosticEngine diags;
      auto tr = translator::TranslateCudaToOpenCl(app->CudaSource(), diags);
      ASSERT_TRUE(tr.ok()) << diags.ToString();
      DiagnosticEngine diags2;
      auto m = Module::Compile(tr->source, Dialect::kOpenCL, diags2);
      EXPECT_TRUE(m.ok()) << diags2.ToString() << "\n" << tr->source;
    }
  }
}

}  // namespace
}  // namespace bridgecl
