// Verifies that the classifier reproduces the paper's Table 3: every
// failing Toolkit sample's snippet is detected as untranslatable and is
// assigned the paper's categories. Parameterized over the whole corpus.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "apps/failure_catalog.h"

namespace bridgecl::apps {
namespace {

using translator::Classification;
using translator::ClassifyCudaApplication;
using translator::FailureCategory;
using translator::FailureCategoryName;

class CatalogTest : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(
    AllSamples, CatalogTest,
    ::testing::Range(0, static_cast<int>(FailureCatalog().size())),
    [](const ::testing::TestParamInfo<int>& info) {
      return FailureCatalog()[info.param].name;
    });

TEST_P(CatalogTest, ClassifiedAsInTable3) {
  const CatalogEntry& entry = FailureCatalog()[GetParam()];
  Classification c = ClassifyCudaApplication(entry.source);
  EXPECT_FALSE(c.translatable) << entry.name << " should be untranslatable";
  std::set<FailureCategory> got;
  for (FailureCategory cat : c.Categories()) got.insert(cat);
  for (FailureCategory expected : entry.expected_categories) {
    EXPECT_TRUE(got.count(expected))
        << entry.name << ": expected category '"
        << FailureCategoryName(expected) << "' missing; got "
        << (c.issues.empty() ? "<none>" : c.issues[0].evidence);
  }
}

TEST(CatalogTotalsTest, MatchesTableThree) {
  EXPECT_EQ(FailureCatalog().size(), 56u);  // 81 - 25 translated (§6.3)
  EXPECT_EQ(ToolkitTotalCount() - ToolkitTranslatableCount(), 56);

  // Per-category Table 3 counts (apps failing for several reasons appear
  // in several rows, like particles / Mandelbrot / nbody / smokeParticles
  // in the paper).
  std::map<FailureCategory, int> rows;
  for (const CatalogEntry& e : FailureCatalog())
    for (FailureCategory c : e.expected_categories) ++rows[c];
  EXPECT_EQ(rows[FailureCategory::kNoCorrespondingFunctions], 6);
  EXPECT_EQ(rows[FailureCategory::kUnsupportedLibraries], 5);
  EXPECT_GE(rows[FailureCategory::kUnsupportedLanguageExtensions], 19);
  EXPECT_GE(rows[FailureCategory::kOpenGlBinding], 15);
  EXPECT_EQ(rows[FailureCategory::kUseOfPtx], 7);
  EXPECT_EQ(rows[FailureCategory::kUseOfUva], 4);
}

TEST(CatalogTotalsTest, NamesAreUnique) {
  std::set<std::string> names;
  for (const CatalogEntry& e : FailureCatalog()) {
    EXPECT_TRUE(names.insert(e.name).second) << "duplicate: " << e.name;
  }
}

}  // namespace
}  // namespace bridgecl::apps
