// Figure 7 reproduction: OpenCL→CUDA translation. For every application in
// Rodinia / SNU NPB / CUDA Toolkit samples, measures the original OpenCL
// version and the translated CUDA version (the cl2cu wrapper binding:
// clBuildProgram runs the translator + "nvcc" at run time, Fig 2). For
// Rodinia, also the originally-shipped CUDA version (Fig 7a's third bar).
// Times are simulated and exclude program build, as in the paper.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"

namespace bridgecl::bench {
namespace {

struct Row {
  std::string name;
  double cl_us = 0;
  double trans_cuda_us = 0;
  double orig_cuda_us = -1;  // Rodinia only
};

double GeoMean(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  double log_sum = 0;
  for (double x : xs) log_sum += std::log(x);
  return std::exp(log_sum / xs.size());
}

void RunSuite(const char* label, std::vector<apps::AppPtr> suite,
              bool with_orig_cuda) {
  printf("\n--- Figure 7 (%s): OpenCL -> CUDA ---\n", label);
  printf("%-22s %12s %14s %8s", "app", "OpenCL(us)", "transCUDA(us)",
         "ratio");
  if (with_orig_cuda) printf(" %13s %8s", "origCUDA(us)", "ratio");
  printf("\n");
  std::vector<double> ratios, orig_ratios;
  for (auto& app : suite) {
    if (!app->has_opencl()) continue;
    Row row;
    row.name = app->name();
    Measurement orig = RunApp(*app, Config::kClNativeTitan);
    // Trace the wrapped run: top commands are printed under each row and,
    // with BRIDGECL_TRACE_DIR set, the full Chrome trace is written too.
    RunOptions topt;
    topt.trace = true;
    topt.trace_path = TracePathFor(app->name(), Config::kClOnCudaTitan);
    Measurement trans = RunApp(*app, Config::kClOnCudaTitan, topt);
    if (!orig.ok || !trans.ok) {
      printf("%-22s TRANSLATION/RUN FAILED: %s\n", row.name.c_str(),
             (orig.ok ? trans.error : orig.error).c_str());
      continue;
    }
    if (orig.checksum != trans.checksum) {
      printf("%-22s RESULT MISMATCH (%.6g vs %.6g)\n", row.name.c_str(),
             orig.checksum, trans.checksum);
      continue;
    }
    row.cl_us = orig.time_us;
    row.trans_cuda_us = trans.time_us;
    double ratio = row.trans_cuda_us / row.cl_us;
    ratios.push_back(ratio);
    printf("%-22s %12.1f %14.1f %8.3f", row.name.c_str(), row.cl_us,
           row.trans_cuda_us, ratio);
    if (with_orig_cuda && app->has_cuda()) {
      Measurement oc = RunApp(*app, Config::kCudaNativeTitan);
      if (oc.ok) {
        double r2 = oc.time_us / row.cl_us;
        orig_ratios.push_back(r2);
        printf(" %13.1f %8.3f", oc.time_us, r2);
      }
    }
    printf("\n");
    printf("%-22s   top: %s\n", "", TopCommandsLine(trans, 3).c_str());
  }
  printf("%-22s %12s %14s %8.3f", "geomean(trans/orig)", "", "",
         GeoMean(ratios));
  if (with_orig_cuda && !orig_ratios.empty())
    printf(" %13s %8.3f", "", GeoMean(orig_ratios));
  printf("\n");
}

/// google-benchmark entries: one per suite, reporting the simulated time of
/// the translated-CUDA configuration as manual time.
void BM_TranslatedSuite(benchmark::State& state,
                        std::vector<apps::AppPtr> (*maker)()) {
  auto suite = maker();
  for (auto _ : state) {
    double total_us = 0;
    for (auto& app : suite) {
      if (!app->has_opencl()) continue;
      Measurement m = RunApp(*app, Config::kClOnCudaTitan);
      if (m.ok) total_us += m.time_us;
    }
    state.SetIterationTime(total_us * 1e-6);
  }
}

}  // namespace
}  // namespace bridgecl::bench

int main(int argc, char** argv) {
  using namespace bridgecl;
  using namespace bridgecl::bench;
  PrintHeader(
      "Figure 7: execution time of translated CUDA vs original OpenCL "
      "(normalized to OpenCL; build time excluded)");
  {
    // Rodinia's OpenCL side includes the apps whose *CUDA* versions are
    // untranslatable (paper: all 20 OpenCL apps translate in Fig 7a).
    auto rodinia = apps::RodiniaApps();
    for (auto& app : apps::RodiniaUntranslatableApps())
      if (app->has_opencl()) rodinia.push_back(std::move(app));
    RunSuite("a: Rodinia", std::move(rodinia), /*with_orig_cuda=*/true);
  }
  RunSuite("b: SNU NPB", apps::NpbApps(), /*with_orig_cuda=*/false);
  RunSuite("c: CUDA Toolkit samples", apps::ToolkitApps(),
           /*with_orig_cuda=*/false);

  benchmark::RegisterBenchmark("fig7/rodinia_translated",
                               &BM_TranslatedSuite, &apps::RodiniaApps)
      ->UseManualTime()
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("fig7/npb_translated", &BM_TranslatedSuite,
                               &apps::NpbApps)
      ->UseManualTime()
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("fig7/toolkit_translated",
                               &BM_TranslatedSuite, &apps::ToolkitApps)
      ->UseManualTime()
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
