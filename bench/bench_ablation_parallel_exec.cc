// Block-parallel execution ablation (docs/PERFORMANCE.md): the same
// compute-heavy kernel batch interpreted serially (BRIDGECL_JOBS=1) and
// on a 4-worker pool. The kernel reads one buffer and writes another —
// no cross-block hazards, no atomics — so the hazard analysis keeps it
// on the parallel path, and the measured quantity is host wall-clock:
// simulated device time is bit-identical by construction (asserted, with
// checksums and per-engine busy time). Acceptance bar: >= 2x wall-clock
// speedup at 4 workers on both device profiles; the bar needs >= 4
// hardware threads and is reported as skipped on smaller hosts, where
// only the identity assertions gate. Results land in
// BENCH_parallel_exec.json for cross-revision tracking.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "interp/executor.h"

namespace bridgecl::bench {
namespace {

using mocl::ClMem;
using mocl::MemFlags;
using simgpu::Device;
using simgpu::DeviceProfile;
using simgpu::EngineId;
using simgpu::HD7970Profile;
using simgpu::TitanProfile;

// 64 blocks of 256 work-items, each spinning an FMA chain: enough
// per-block work that distributing block ranges across workers dwarfs
// the pool's dispatch/reduction overhead, small enough that the full
// serial-vs-pooled sweep stays in the seconds range.
constexpr int kElems = 16 * 1024;
constexpr int kLws = 256;
constexpr int kIters = 64;
constexpr int kLaunches = 2;

constexpr char kFmaChain[] =
    "__kernel void fma_chain(__global const float* in, __global float* out,"
    "                        int iters) {"
    "  int i = get_global_id(0);"
    "  float acc = in[i];"
    "  for (int k = 0; k < iters; k++) acc = acc * 1.0000001f + 0.25f;"
    "  out[i] = acc;"
    "}";

struct ExecResult {
  bool ok = false;
  double wall_ms = 0;       // host wall-clock of the measured launches
  double sim_us = 0;        // simulated clock at the end of the run
  double compute_busy = 0;  // simulated compute-engine busy time
  double checksum = 0;
};

/// One full run at `workers` host workers on a fresh device.
ExecResult RunBatch(const DeviceProfile& profile, int workers) {
  interp::SetWorkerCount(workers);
  Device dev(profile);
  auto cl = mocl::CreateNativeClApi(dev);
  ExecResult r;
  auto body = [&]() -> Status {
    BRIDGECL_ASSIGN_OR_RETURN(auto prog,
                              cl->CreateProgramWithSource(kFmaChain));
    BRIDGECL_RETURN_IF_ERROR(cl->BuildProgram(prog));
    BRIDGECL_ASSIGN_OR_RETURN(auto kernel,
                              cl->CreateKernel(prog, "fma_chain"));
    std::vector<float> host(kElems, 1.0f);
    BRIDGECL_ASSIGN_OR_RETURN(
        ClMem in, cl->CreateBuffer(MemFlags::kReadOnly, kElems * 4,
                                   host.data()));
    BRIDGECL_ASSIGN_OR_RETURN(
        ClMem out, cl->CreateBuffer(MemFlags::kWriteOnly, kElems * 4,
                                    nullptr));
    BRIDGECL_RETURN_IF_ERROR(cl->SetKernelArg(kernel, 0, sizeof(ClMem), &in));
    BRIDGECL_RETURN_IF_ERROR(cl->SetKernelArg(kernel, 1, sizeof(ClMem),
                                              &out));
    int iters = kIters;
    BRIDGECL_RETURN_IF_ERROR(cl->SetKernelArg(kernel, 2, sizeof(int),
                                              &iters));
    size_t gws = kElems, lws = kLws;
    // Warm-up launch outside the measured window: absorbs the program
    // build and first-touch allocation costs.
    BRIDGECL_RETURN_IF_ERROR(cl->EnqueueNDRangeKernel(kernel, 1, &gws, &lws));
    BRIDGECL_RETURN_IF_ERROR(cl->Finish());

    const auto wall0 = std::chrono::steady_clock::now();
    for (int l = 0; l < kLaunches; ++l) {
      BRIDGECL_RETURN_IF_ERROR(
          cl->EnqueueNDRangeKernel(kernel, 1, &gws, &lws));
    }
    BRIDGECL_RETURN_IF_ERROR(cl->Finish());
    r.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - wall0)
                    .count();

    std::vector<float> result(kElems);
    BRIDGECL_RETURN_IF_ERROR(
        cl->EnqueueReadBuffer(out, 0, kElems * 4, result.data()));
    for (float v : result) r.checksum += v;
    BRIDGECL_RETURN_IF_ERROR(cl->ReleaseMemObject(in));
    BRIDGECL_RETURN_IF_ERROR(cl->ReleaseMemObject(out));
    return OkStatus();
  };
  Status st = body();
  r.sim_us = dev.now_us();
  r.compute_busy = dev.EngineBusyUs(EngineId::kCompute);
  interp::SetWorkerCount(0);
  if (!st.ok()) {
    std::fprintf(stderr, "parallel-exec bench failed: %s\n",
                 st.ToString().c_str());
    return r;
  }
  r.ok = true;
  return r;
}

struct ProfileConfig {
  const char* slug;
  const DeviceProfile& (*profile)();
};

constexpr ProfileConfig kProfiles[] = {
    {"titan", TitanProfile},
    {"hd7970", HD7970Profile},
};

void BM_ParallelExec(benchmark::State& state) {
  const ProfileConfig& cfg = kProfiles[state.range(0)];
  const int workers = static_cast<int>(state.range(1));
  for (auto _ : state) {
    ExecResult r = RunBatch(cfg.profile(), workers);
    state.SetIterationTime(r.wall_ms * 1e-3);
  }
}
BENCHMARK(BM_ParallelExec)
    ->ArgsProduct({{0, 1}, {1, 4}})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bridgecl::bench

int main(int argc, char** argv) {
  using namespace bridgecl;
  using namespace bridgecl::bench;
  PrintHeader(
      "Ablation (docs/PERFORMANCE.md): block-parallel kernel execution. "
      "A hazard-free compute-heavy kernel batch interpreted serially vs "
      "on a 4-worker host pool; simulated results must be bit-identical, "
      "wall-clock bar: >= 2x at 4 workers (needs >= 4 hardware threads).");

  const unsigned hw = std::thread::hardware_concurrency();
  const bool bar_applies = hw >= 4;
  if (!bar_applies)
    printf("only %u hardware thread(s): the 2x bar is reported but not "
           "enforced\n\n", hw);

  BenchReport report("parallel_exec");
  bool all_pass = true;
  printf("%-8s %12s %12s %9s\n", "profile", "serial ms", "4 workers ms",
         "speedup");
  for (const ProfileConfig& cfg : kProfiles) {
    ExecResult serial = RunBatch(cfg.profile(), 1);
    ExecResult pooled = RunBatch(cfg.profile(), 4);
    bool ok = serial.ok && pooled.ok && pooled.wall_ms > 0;
    // Determinism gates unconditionally: the pool must not perturb the
    // simulated device in any observable way.
    if (ok && (serial.checksum != pooled.checksum ||
               serial.sim_us != pooled.sim_us ||
               serial.compute_busy != pooled.compute_busy)) {
      fprintf(stderr,
              "%s: simulated results diverged across worker counts "
              "(checksum %.17g vs %.17g, clock %.17g vs %.17g, compute "
              "busy %.17g vs %.17g)\n",
              cfg.slug, serial.checksum, pooled.checksum, serial.sim_us,
              pooled.sim_us, serial.compute_busy, pooled.compute_busy);
      ok = false;
    }
    const double speedup = ok ? serial.wall_ms / pooled.wall_ms : 0.0;
    const bool pass = ok && (!bar_applies || speedup >= 2.0);
    all_pass = all_pass && pass;
    printf("%-8s %12.2f %12.2f %8.2fx  %s\n", cfg.slug, serial.wall_ms,
           pooled.wall_ms, speedup,
           !ok ? "FAILED" : (bar_applies && speedup < 2.0)
               ? "BELOW 2x BAR" : "");
    report.Set(cfg.slug, "serial_wall_ms", serial.wall_ms);
    report.Set(cfg.slug, "pooled_wall_ms", pooled.wall_ms);
    report.Set(cfg.slug, "speedup", speedup);
    report.Set(cfg.slug, "sim_us", serial.sim_us);
    report.Set(cfg.slug, "bar_enforced", bar_applies ? 1.0 : 0.0);
  }
  auto path = report.Write();
  if (path.ok()) {
    printf("\nwrote %s\n", path->c_str());
  } else {
    fprintf(stderr, "%s\n", path.status().ToString().c_str());
  }
  if (!all_pass) {
    fprintf(stderr, "FAIL: parallel execution ablation below the bar\n");
    return 1;
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
