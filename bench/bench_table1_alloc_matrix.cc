// Table 1 reproduction: the device-memory-allocation availability matrix.
// Each cell is probed against the real runtime (compile + load + launch a
// probe kernel), not looked up — an O means the probe succeeded
// end-to-end, an X means the front end / runtime rejected it. The paper's
// matrix:
//                          |        | OpenCL | CUDA
//   Local/shared memory    | Static |   O    |  O
//   allocation             | Dynamic|   O    |  O
//   Constant memory        | Static |   O    |  O
//   allocation             | Dynamic|   O    |  X
//   Global memory          | Static |   X    |  O
//   allocation             | Dynamic|   O    |  O
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "interp/executor.h"
#include "interp/module.h"

namespace bridgecl::bench {
namespace {

using lang::Dialect;
using simgpu::Device;
using simgpu::Dim3;
using simgpu::TitanProfile;

struct ProbeSpec {
  Dialect dialect;
  std::string source;         // must define kernel `probe(out, [extra])`
  bool dyn_local_arg = false; // bind a dynamic __local arg (OpenCL)
  bool const_buf_arg = false; // bind a READ_ONLY buffer arg (OpenCL)
  size_t dyn_shared = 0;      // CUDA <<<...>>> shared bytes
};

/// Compile + load + launch; true when the whole path works.
bool Probe(const ProbeSpec& spec) {
  Device device(TitanProfile());
  DiagnosticEngine diags;
  auto m = interp::Module::Compile(spec.source, spec.dialect, diags);
  if (!m.ok()) return false;
  if (!(*m)->LoadOn(device).ok()) return false;
  auto out_va = device.vm().AllocGlobal(64);
  if (!out_va.ok()) return false;
  std::vector<interp::KernelArg> args = {
      interp::KernelArg::Pointer(*out_va)};
  if (spec.dyn_local_arg) args.push_back(interp::KernelArg::LocalAlloc(64));
  if (spec.const_buf_arg) {
    auto const_va = device.vm().AllocGlobal(64);
    if (!const_va.ok()) return false;
    args.push_back(interp::KernelArg::Pointer(*const_va));
  }
  interp::LaunchConfig cfg;
  cfg.grid = Dim3(1);
  cfg.block = Dim3(8);
  cfg.dynamic_shared_bytes = spec.dyn_shared;
  return interp::LaunchKernel(device, **m, "probe", cfg, args).ok();
}

struct RowSpec {
  const char* group;
  const char* kind;
  ProbeSpec opencl;
  ProbeSpec cuda;
  bool expect_opencl;  // the paper's Table 1 value
  bool expect_cuda;
};

std::vector<RowSpec> Matrix() {
  std::vector<RowSpec> rows;
  rows.push_back(
      {"Local/shared memory", "Static",
       {Dialect::kOpenCL,
        "__kernel void probe(__global int* o) {"
        "  __local int t[8];"
        "  t[get_local_id(0)] = 1;"
        "  barrier(CLK_LOCAL_MEM_FENCE);"
        "  o[get_local_id(0)] = t[0];"
        "}"},
       {Dialect::kCUDA,
        "__global__ void probe(int* o) {"
        "  __shared__ int t[8];"
        "  t[threadIdx.x] = 1;"
        "  __syncthreads();"
        "  o[threadIdx.x] = t[0];"
        "}"},
       true, true});
  ProbeSpec cl_ld{Dialect::kOpenCL,
                  "__kernel void probe(__global int* o, __local int* t) {"
                  "  t[get_local_id(0)] = 2;"
                  "  barrier(CLK_LOCAL_MEM_FENCE);"
                  "  o[get_local_id(0)] = t[0];"
                  "}"};
  cl_ld.dyn_local_arg = true;
  ProbeSpec cu_ld{Dialect::kCUDA,
                  "__global__ void probe(int* o) {"
                  "  extern __shared__ int t[];"
                  "  t[threadIdx.x] = 2;"
                  "  __syncthreads();"
                  "  o[threadIdx.x] = t[0];"
                  "}"};
  cu_ld.dyn_shared = 64;
  rows.push_back({"", "Dynamic", cl_ld, cu_ld, true, true});

  rows.push_back(
      {"Constant memory", "Static",
       {Dialect::kOpenCL,
        "__constant int lut[4] = {1,2,3,4};"
        "__kernel void probe(__global int* o) {"
        "  o[get_local_id(0)] = lut[0];"
        "}"},
       {Dialect::kCUDA,
        "__constant__ int lut[4] = {1,2,3,4};"
        "__global__ void probe(int* o) {"
        "  o[threadIdx.x] = lut[0];"
        "}"},
       true, true});
  // Dynamic constant: OpenCL passes a __constant pointer kernel argument
  // sized at clCreateBuffer time; CUDA has no mechanism — the closest
  // spelling (an unsized __constant__ array) must be rejected.
  ProbeSpec cl_cd{Dialect::kOpenCL,
                  "__kernel void probe(__global int* o,"
                  "                    __constant int* c) {"
                  "  o[get_local_id(0)] = c[0];"
                  "}"};
  cl_cd.const_buf_arg = true;
  ProbeSpec cu_cd{Dialect::kCUDA,
                  "__constant__ int c[];"
                  "__global__ void probe(int* o) {"
                  "  o[threadIdx.x] = c[0];"
                  "}"};
  rows.push_back({"", "Dynamic", cl_cd, cu_cd, true, false});

  rows.push_back(
      {"Global memory", "Static",
       {Dialect::kOpenCL,
        "__global int g[4];"
        "__kernel void probe(__global int* o) {"
        "  g[0] = 5;"
        "  o[get_local_id(0)] = g[0];"
        "}"},
       {Dialect::kCUDA,
        "__device__ int g[4];"
        "__global__ void probe(int* o) {"
        "  g[0] = 5;"
        "  o[threadIdx.x] = g[0];"
        "}"},
       false, true});
  rows.push_back(
      {"", "Dynamic",
       {Dialect::kOpenCL,
        "__kernel void probe(__global int* o) {"
        "  o[get_local_id(0)] = 7;"
        "}"},
       {Dialect::kCUDA,
        "__global__ void probe(int* o) {"
        "  o[threadIdx.x] = 7;"
        "}"},
       true, true});
  return rows;
}

void BM_ProbeMatrix(benchmark::State& state) {
  auto rows = Matrix();
  for (auto _ : state) {
    for (const RowSpec& r : rows) {
      benchmark::DoNotOptimize(Probe(r.opencl));
      benchmark::DoNotOptimize(Probe(r.cuda));
    }
  }
}
BENCHMARK(BM_ProbeMatrix)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace bridgecl::bench

int main(int argc, char** argv) {
  using namespace bridgecl::bench;
  PrintHeader("Table 1: device memory allocation (probed, not hard-coded)");
  printf("%-22s %-8s | %-7s %-5s | matches paper?\n", "", "", "OpenCL",
         "CUDA");
  printf("%s\n", std::string(60, '-').c_str());
  bool all_match = true;
  for (const RowSpec& r : Matrix()) {
    bool cl = Probe(r.opencl);
    bool cu = Probe(r.cuda);
    bool match = (cl == r.expect_opencl) && (cu == r.expect_cuda);
    all_match &= match;
    printf("%-22s %-8s | %-7s %-5s | %s\n", r.group, r.kind,
           cl ? "O" : "X", cu ? "O" : "X", match ? "yes" : "NO");
  }
  printf("%s\nTable 1 %s the paper's matrix.\n",
         std::string(60, '-').c_str(),
         all_match ? "REPRODUCES" : "DOES NOT match");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return all_match ? 0 : 1;
}
