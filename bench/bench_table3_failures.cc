// Table 3 reproduction: reasons of translation failures in the NVIDIA
// Toolkit samples (CUDA→OpenCL). Runs the translatability classifier on
// the 56-sample failure corpus and prints the category → applications
// table, plus the 25/81 success ratio of §6.3.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "apps/failure_catalog.h"
#include "bench/bench_util.h"

namespace bridgecl::bench {
namespace {

using apps::CatalogEntry;
using apps::FailureCatalog;
using translator::ClassifyCudaApplication;
using translator::FailureCategory;
using translator::FailureCategoryName;

void BM_ClassifyCorpus(benchmark::State& state) {
  for (auto _ : state) {
    for (const CatalogEntry& e : FailureCatalog())
      benchmark::DoNotOptimize(ClassifyCudaApplication(e.source));
  }
}
BENCHMARK(BM_ClassifyCorpus)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bridgecl::bench

int main(int argc, char** argv) {
  using namespace bridgecl;
  using namespace bridgecl::bench;
  PrintHeader(
      "Table 3: reasons of translation failures in NVIDIA Toolkit samples "
      "(CUDA -> OpenCL); classification is detected, not hard-coded");

  std::map<translator::FailureCategory, std::vector<std::string>> rows;
  int misclassified = 0;
  for (const apps::CatalogEntry& e : apps::FailureCatalog()) {
    auto c = translator::ClassifyCudaApplication(e.source);
    if (c.translatable) {
      printf("  !! %s unexpectedly classified as translatable\n",
             e.name.c_str());
      ++misclassified;
      continue;
    }
    for (auto cat : c.Categories()) rows[cat].push_back(e.name);
  }
  for (const auto& [cat, names] : rows) {
    printf("\n%-38s (%zu)\n  ", translator::FailureCategoryName(cat),
           names.size());
    int col = 0;
    for (const std::string& n : names) {
      if (col + n.size() > 70) {
        printf("\n  ");
        col = 0;
      }
      printf("%s ", n.c_str());
      col += static_cast<int>(n.size()) + 1;
    }
    printf("\n");
  }
  printf("\n%d/%d Toolkit samples translate successfully (paper: 25/81); "
         "%zu fail; %d misclassified.\n",
         apps::ToolkitTranslatableCount(), apps::ToolkitTotalCount(),
         apps::FailureCatalog().size(), misclassified);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return misclassified == 0 ? 0 : 1;
}
