// §6.2 ablation: the FT bank-conflict mechanism. Runs the FT-style
// shared-memory double2 kernel under the Titan's two shared-memory
// addressing modes and reports the bank-word counts and times — the
// micro-mechanism behind FT's Fig 7(b) result (translated CUDA ≈ 0.57x of
// the original OpenCL in the paper; the same direction here). Also sweeps
// element type to show the effect exists only for 8-byte elements.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <numeric>

#include "bench/bench_util.h"
#include "interp/executor.h"
#include "interp/module.h"

namespace bridgecl::bench {
namespace {

using lang::Dialect;
using simgpu::BankMode;
using simgpu::Device;
using simgpu::Dim3;
using simgpu::TitanProfile;

struct ModeResult {
  double cycles = 0;
  uint64_t bank_words = 0;
  double time_us = 0;
};

/// Run a shared-memory-heavy kernel moving `elem_bytes`-sized elements in
/// the given bank mode; returns cost metrics.
ModeResult RunShared(BankMode mode, const char* elem_type) {
  std::string src = std::string(
      "__kernel void k(__global ") + elem_type + "* g, int iters) {"
      "  __local " + elem_type + " tile[64];"
      "  int l = get_local_id(0);"
      "  tile[l] = g[get_global_id(0)];"
      "  barrier(CLK_LOCAL_MEM_FENCE);"
      "  for (int i = 0; i < iters; i++) {"
      "    tile[l] = tile[63 - l] + tile[l ^ 1];"
      "    barrier(CLK_LOCAL_MEM_FENCE);"
      "  }"
      "  g[get_global_id(0)] = tile[l];"
      "}";
  Device device(TitanProfile());
  device.set_bank_mode(mode);
  DiagnosticEngine diags;
  auto m = interp::Module::Compile(src, Dialect::kOpenCL, diags);
  if (!m.ok()) return {};
  if (!(*m)->LoadOn(device).ok()) return {};
  auto g = device.vm().AllocGlobal(64 * 16 * 8);
  if (!g.ok()) return {};
  interp::LaunchConfig cfg;
  cfg.grid = Dim3(8);
  cfg.block = Dim3(64);
  std::vector<interp::KernelArg> args = {
      interp::KernelArg::Pointer(*g), interp::KernelArg::Value<int>(16)};
  auto r = interp::LaunchKernel(device, **m, "k", cfg, args);
  ModeResult out;
  if (r.ok()) {
    out.cycles = r->total_cycles;
    out.bank_words = device.stats().shared_bank_words;
    out.time_us = r->kernel_time_us;
  }
  return out;
}

void BM_BankMode(benchmark::State& state) {
  BankMode mode = state.range(0) == 32 ? BankMode::k32Bit : BankMode::k64Bit;
  for (auto _ : state) {
    ModeResult r = RunShared(mode, "double");
    state.SetIterationTime(r.time_us * 1e-6);
  }
}
BENCHMARK(BM_BankMode)
    ->Arg(32)
    ->Arg(64)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bridgecl::bench

int main(int argc, char** argv) {
  using namespace bridgecl;
  using namespace bridgecl::bench;
  PrintHeader(
      "Ablation (S6.2): shared-memory bank addressing mode. On the Titan, "
      "OpenCL leaves the 32-bit mode active while CUDA uses the 64-bit "
      "mode; 8-byte (double) accesses then take 2 bank words instead of 1 "
      "- FT's two-way conflicts.");

  printf("%-8s %18s %18s %10s\n", "type", "32-bit bank words",
         "64-bit bank words", "ratio");
  for (const char* ty : {"float", "double", "double2"}) {
    ModeResult m32 = RunShared(simgpu::BankMode::k32Bit, ty);
    ModeResult m64 = RunShared(simgpu::BankMode::k64Bit, ty);
    printf("%-8s %18llu %18llu %10.2f\n", ty,
           static_cast<unsigned long long>(m32.bank_words),
           static_cast<unsigned long long>(m64.bank_words),
           m64.bank_words ? double(m32.bank_words) / m64.bank_words : 0.0);
  }
  ModeResult d32 = RunShared(simgpu::BankMode::k32Bit, "double2");
  ModeResult d64 = RunShared(simgpu::BankMode::k64Bit, "double2");
  printf("\ndouble2 kernel time: 32-bit mode %.1f us, 64-bit mode %.1f us "
         "-> translated-CUDA/original-OpenCL = %.2f (paper's FT: 0.57 of "
         "total app time)\n",
         d32.time_us, d64.time_us,
         d32.time_us > 0 ? d64.time_us / d32.time_us : 0.0);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
