// Shared measurement harness for the paper-reproduction benchmarks. Every
// bench binary measures *simulated device time* (deterministic, from the
// simgpu clock), excluding run-time program-build cost as the paper does
// for OpenCL (§6.2: "the build time of OpenCL should be excluded for a
// fair comparison").
#pragma once

#include <optional>
#include <string>

#include "apps/app.h"
#include "cl2cu/cl_on_cuda.h"
#include "cu2cl/cuda_on_cl.h"
#include "mcuda/cuda_api.h"
#include "mocl/cl_api.h"
#include "simgpu/device.h"

namespace bridgecl::bench {

/// One measured configuration of (host API, binding, device profile).
enum class Config {
  kClNativeTitan,    // original OpenCL on the NVIDIA profile
  kClOnCudaTitan,    // OpenCL app through the OpenCL→CUDA wrapper (Fig 7)
  kCudaNativeTitan,  // original CUDA
  kCudaOnClTitan,    // CUDA app through the CUDA→OpenCL wrapper (Fig 8)
  kCudaOnClAmd,      // the same, on the AMD profile (portability, Fig 8a)
  kClNativeAmd,
};

const char* ConfigName(Config c);

struct Measurement {
  bool ok = false;
  std::string error;
  double time_us = 0;     // simulated, excluding program build
  double checksum = 0;
  uint64_t shared_bank_words = 0;  // §6.2 diagnostics
};

/// Run `app` once under `config` on a fresh simulated device.
Measurement RunApp(apps::App& app, Config config);

/// Prints the bench banner with the simulated Table 2 configuration.
void PrintHeader(const std::string& title);

}  // namespace bridgecl::bench
