// Shared measurement harness for the paper-reproduction benchmarks. Every
// bench binary measures *simulated device time* (deterministic, from the
// simgpu clock), excluding run-time program-build cost as the paper does
// for OpenCL (§6.2: "the build time of OpenCL should be excluded for a
// fair comparison").
#pragma once

#include <map>
#include <optional>
#include <string>

#include "apps/app.h"
#include "cl2cu/cl_on_cuda.h"
#include "cu2cl/cuda_on_cl.h"
#include "mcuda/cuda_api.h"
#include "mocl/cl_api.h"
#include "simgpu/device.h"
#include "trace/exporters.h"

namespace bridgecl::bench {

/// One measured configuration of (host API, binding, device profile).
enum class Config {
  kClNativeTitan,    // original OpenCL on the NVIDIA profile
  kClOnCudaTitan,    // OpenCL app through the OpenCL→CUDA wrapper (Fig 7)
  kCudaNativeTitan,  // original CUDA
  kCudaOnClTitan,    // CUDA app through the CUDA→OpenCL wrapper (Fig 8)
  kCudaOnClAmd,      // the same, on the AMD profile (portability, Fig 8a)
  kClNativeAmd,
};

const char* ConfigName(Config c);
/// Filename-safe config identifier ("cl_on_cuda_titan", ...).
const char* ConfigSlug(Config c);

/// Per-run tracing controls (docs/OBSERVABILITY.md).
struct RunOptions {
  bool trace = false;      // attach a recorder; fills the trace fields
  std::string trace_path;  // non-empty: also write Chrome trace JSON here
};

struct Measurement {
  bool ok = false;
  std::string error;
  double time_us = 0;     // simulated, excluding program build
  double checksum = 0;
  uint64_t shared_bank_words = 0;  // §6.2 diagnostics
  // Filled when the run was traced (RunOptions::trace / trace_path):
  bool traced = false;
  std::vector<trace::CommandCost> top_commands;  // by exclusive time
  trace::WrapperOverhead wrapper_overhead;
};

/// Run `app` once under `config` on a fresh simulated device.
Measurement RunApp(apps::App& app, Config config);
Measurement RunApp(apps::App& app, Config config, const RunOptions& options);

/// Per-run trace destination honouring BRIDGECL_TRACE_DIR:
/// "<dir>/<app>_<config-slug>.trace.json", or "" when the variable is
/// unset (benches then trace in memory only).
std::string TracePathFor(const std::string& app_name, Config config);

/// Compact one-line rendering of the top `n` commands by exclusive
/// simulated time: "layer/name[kernel] 12.3us (xN)" joined with " | ".
std::string TopCommandsLine(const Measurement& m, size_t n);

/// Prints the bench banner with the simulated Table 2 configuration.
void PrintHeader(const std::string& title);

/// Machine-readable benchmark output, one file per bench binary, so the
/// perf trajectory can be compared across revisions. Records are
/// per-config named metrics (simulated microseconds, ratios, ...); Write
/// emits them as deterministic JSON to `BENCH_<name>.json` in
/// BRIDGECL_BENCH_DIR (or the working directory when unset):
///   {"bench": "<name>", "results": {"<config>": {"<metric>": <value>}}}
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  void Set(const std::string& config, const std::string& metric,
           double value) {
    results_[config][metric] = value;
  }

  /// Serializes the report (sorted keys: byte-stable across runs).
  std::string ToJson() const;
  /// Writes `BENCH_<name>.json`; returns the path written.
  StatusOr<std::string> Write() const;

 private:
  std::string name_;
  std::map<std::string, std::map<std::string, double>> results_;
};

}  // namespace bridgecl::bench
