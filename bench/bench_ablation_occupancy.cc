// §6.3 ablation: occupancy as a function of the native compiler's register
// allocation — the mechanism behind the cfd result (occupancy 0.375 under
// nvcc's 85 registers vs 0.469 under the OpenCL compiler's 68, a ~14%
// execution-time difference). Sweeps register counts with the cfd kernel.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "apps/app.h"
#include "bench/bench_util.h"
#include "interp/module.h"

namespace bridgecl::bench {
namespace {

using simgpu::Device;
using simgpu::TitanProfile;

/// Standalone cfd-style flux kernel so the register count is the only
/// variable (the cfd app pins its own per-toolchain counts).
double RunCfdWithRegs(int regs) {
  Device device(TitanProfile());
  auto cu = mcuda::CreateNativeCudaApi(device);
  if (!cu->RegisterModule(
             "__global__ void flux(float* d, float* e, int* nb, float* out,"
             "                     int n) {"
             "  int i = blockIdx.x * blockDim.x + threadIdx.x;"
             "  if (i >= n) return;"
             "  float acc = 0.0f;"
             "  for (int k = 0; k < 4; k++) {"
             "    int j = nb[i * 4 + k];"
             "    float dj = d[j];"
             "    float ej = e[j];"
             "    acc += 0.4f * (ej - 0.5f * dj) + dj / (ej + 1.0f);"
             "  }"
             "  out[i] = acc;"
             "}")
           .ok())
    return -1;
  if (!cu->SetKernelRegisters("flux", regs).ok()) return -1;
  const int n = 1024;
  auto d = cu->Malloc(n * 4);
  auto e = cu->Malloc(n * 4);
  auto nb = cu->Malloc(n * 16);
  auto out = cu->Malloc(n * 4);
  if (!d.ok() || !e.ok() || !nb.ok() || !out.ok()) return -1;
  std::vector<float> ones(n, 1.0f);
  std::vector<int> idx(n * 4);
  for (int i = 0; i < n * 4; ++i) idx[i] = (i * 7) % n;
  (void)cu->Memcpy(*d, ones.data(), n * 4, mcuda::MemcpyKind::kHostToDevice);
  (void)cu->Memcpy(*e, ones.data(), n * 4, mcuda::MemcpyKind::kHostToDevice);
  (void)cu->Memcpy(*nb, idx.data(), n * 16,
                   mcuda::MemcpyKind::kHostToDevice);
  double t0 = cu->NowUs();
  for (int iter = 0; iter < 3; ++iter) {
    std::vector<mcuda::LaunchArg> args = {
        mcuda::LaunchArg::Ptr(*d), mcuda::LaunchArg::Ptr(*e),
        mcuda::LaunchArg::Ptr(*nb), mcuda::LaunchArg::Ptr(*out),
        mcuda::LaunchArg::Value<int>(n)};
    if (!cu->LaunchKernel("flux", simgpu::Dim3(n / 128), simgpu::Dim3(128),
                          0, args)
             .ok())
      return -1;
  }
  return cu->NowUs() - t0;
}

void BM_CfdOccupancy(benchmark::State& state) {
  int regs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    double us = RunCfdWithRegs(regs);
    state.SetIterationTime(us * 1e-6);
  }
  state.counters["occupancy"] =
      Device(TitanProfile()).OccupancyFor(regs);
}
BENCHMARK(BM_CfdOccupancy)
    ->Arg(32)
    ->Arg(48)
    ->Arg(68)
    ->Arg(85)
    ->Arg(128)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bridgecl::bench

int main(int argc, char** argv) {
  using namespace bridgecl;
  using namespace bridgecl::bench;
  PrintHeader(
      "Ablation (S6.3): occupancy vs per-kernel register allocation (the "
      "cfd case: nvcc allocated 85 regs -> occupancy 0.375; the OpenCL "
      "compiler 68 -> 0.469; ~14% time difference)");

  simgpu::Device probe(simgpu::TitanProfile());
  printf("%-8s %10s %12s\n", "regs", "occupancy", "cfd time(us)");
  double t85 = 0, t68 = 0;
  for (int regs : {32, 48, 68, 85, 128, 192}) {
    double occ = probe.OccupancyFor(regs);
    double us = RunCfdWithRegs(regs);
    if (regs == 85) t85 = us;
    if (regs == 68) t68 = us;
    printf("%-8d %10.3f %12.1f\n", regs, occ, us);
  }
  printf("\ncfd @85regs / @68regs = %.3f (paper: ~1.14 between the CUDA "
         "and translated-OpenCL builds)\n",
         t68 > 0 ? t85 / t68 : 0.0);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
