// §6 ablation: wrapper-function overhead. The paper concludes "the
// overhead of wrapper functions is negligible in our experiments", with
// one exception — deviceQuery-style attribute queries, where one CUDA call
// fans out into many clGetDeviceInfo calls (§6.3). This bench measures
// both: a launch/memcpy storm through each binding, and the
// cudaGetDeviceProperties fan-out.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "trace/session.h"

namespace bridgecl::bench {
namespace {

using simgpu::Device;
using simgpu::Dim3;
using simgpu::TitanProfile;

constexpr char kCuNoop[] =
    "__global__ void noop(int* p) { if (threadIdx.x == 0) p[0] += 1; }";
constexpr char kClNoop[] =
    "__kernel void noop(__global int* p) {"
    "  if (get_local_id(0) == 0) p[0] += 1;"
    "}";

/// Launch + small-memcpy storm through a CudaApi. Returns simulated us.
double CudaStorm(mcuda::CudaApi& cu, int launches) {
  if (!cu.RegisterModule(kCuNoop).ok()) return -1;
  auto p = cu.Malloc(64);
  if (!p.ok()) return -1;
  int v = 0;
  // Warm-up launch: under the wrapper binding the deferred clBuildProgram
  // fires on the first call (§3.4) and must stay out of the timed window,
  // as the paper excludes OpenCL build time.
  {
    std::vector<mcuda::LaunchArg> args = {mcuda::LaunchArg::Ptr(*p)};
    if (!cu.LaunchKernel("noop", Dim3(1), Dim3(32), 0, args).ok()) return -1;
  }
  double t0 = cu.NowUs();
  for (int i = 0; i < launches; ++i) {
    std::vector<mcuda::LaunchArg> args = {mcuda::LaunchArg::Ptr(*p)};
    if (!cu.LaunchKernel("noop", Dim3(1), Dim3(32), 0, args).ok()) return -1;
    if (!cu.Memcpy(&v, *p, 4, mcuda::MemcpyKind::kDeviceToHost).ok())
      return -1;
  }
  return cu.NowUs() - t0;
}

/// The same storm through an OpenClApi.
double ClStorm(mocl::OpenClApi& cl, int launches) {
  auto prog = cl.CreateProgramWithSource(kClNoop);
  if (!prog.ok() || !cl.BuildProgram(*prog).ok()) return -1;
  auto kernel = cl.CreateKernel(*prog, "noop");
  auto buf = cl.CreateBuffer(mocl::MemFlags::kReadWrite, 64, nullptr);
  if (!kernel.ok() || !buf.ok()) return -1;
  int v = 0;
  double t0 = cl.NowUs();
  for (int i = 0; i < launches; ++i) {
    if (!cl.SetKernelArg(*kernel, 0, sizeof(mocl::ClMem), &*buf).ok())
      return -1;
    size_t gws = 32, lws = 32;
    if (!cl.EnqueueNDRangeKernel(*kernel, 1, &gws, &lws).ok()) return -1;
    if (!cl.EnqueueReadBuffer(*buf, 0, 4, &v).ok()) return -1;
  }
  return cl.NowUs() - t0;
}

void BM_LaunchStormNativeCuda(benchmark::State& state) {
  for (auto _ : state) {
    Device dev(TitanProfile());
    auto cu = mcuda::CreateNativeCudaApi(dev);
    state.SetIterationTime(CudaStorm(*cu, 64) * 1e-6);
  }
}
BENCHMARK(BM_LaunchStormNativeCuda)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMicrosecond);

void BM_LaunchStormCudaOnCl(benchmark::State& state) {
  for (auto _ : state) {
    Device dev(TitanProfile());
    auto cl = mocl::CreateNativeClApi(dev);
    auto cu = cu2cl::CreateCudaOnClApi(*cl);
    state.SetIterationTime(CudaStorm(*cu, 64) * 1e-6);
  }
}
BENCHMARK(BM_LaunchStormCudaOnCl)
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bridgecl::bench

int main(int argc, char** argv) {
  using namespace bridgecl;
  using namespace bridgecl::bench;
  PrintHeader(
      "Ablation (S6): wrapper-function overhead. Expected: negligible for "
      "launch/copy paths; large for deviceQuery-style attribute fan-out.");

  const int launches = 64;
  {
    printf("Launch + memcpy storm (%d iterations):\n", launches);
    Device d1(TitanProfile());
    auto native_cu = mcuda::CreateNativeCudaApi(d1);
    double native = CudaStorm(*native_cu, launches);
    Device d2(TitanProfile());
    auto cl = mocl::CreateNativeClApi(d2);
    auto wrapped_cu = cu2cl::CreateCudaOnClApi(*cl);
    double wrapped = CudaStorm(*wrapped_cu, launches) ;
    printf("  CUDA native        : %9.1f us\n", native);
    printf("  CUDA on OpenCL     : %9.1f us  (overhead %+.1f%%)\n", wrapped,
           100.0 * (wrapped - native) / native);

    Device d3(TitanProfile());
    auto native_cl = mocl::CreateNativeClApi(d3);
    double cl_native = ClStorm(*native_cl, launches);
    Device d4(TitanProfile());
    auto cuda = mcuda::CreateNativeCudaApi(d4);
    auto wrapped_cl = cl2cu::CreateClOnCudaApi(*cuda);
    double cl_wrapped = ClStorm(*wrapped_cl, launches);
    printf("  OpenCL native      : %9.1f us\n", cl_native);
    printf("  OpenCL on CUDA     : %9.1f us  (overhead %+.1f%%)\n",
           cl_wrapped, 100.0 * (cl_wrapped - cl_native) / cl_native);
  }
  {
    printf("\ncudaGetDeviceProperties x 64 (the S6.3 deviceQuery case):\n");
    Device d1(TitanProfile());
    auto native_cu = mcuda::CreateNativeCudaApi(d1);
    double t0 = native_cu->NowUs();
    for (int i = 0; i < 64; ++i)
      if (!native_cu->GetDeviceProperties().ok()) return 1;
    double native = native_cu->NowUs() - t0;
    Device d2(TitanProfile());
    auto cl = mocl::CreateNativeClApi(d2);
    auto wrapped_cu = cu2cl::CreateCudaOnClApi(*cl);
    double t1 = wrapped_cu->NowUs();
    for (int i = 0; i < 64; ++i)
      if (!wrapped_cu->GetDeviceProperties().ok()) return 1;
    double wrapped = wrapped_cu->NowUs() - t1;
    printf("  CUDA native        : %9.1f us\n", native);
    printf("  CUDA on OpenCL     : %9.1f us  (%.1fx slower: one wrapper "
           "call -> many clGetDeviceInfo calls)\n",
           wrapped, wrapped / native);
  }
  {
    // Same two wrapped workloads, attributed from the trace recorder
    // instead of wall-deltas: per-span wrapper gap and top commands.
    // With BRIDGECL_TRACE_DIR set the Chrome traces are written too.
    printf("\nTrace attribution (wrapper gap = wrapper span time not spent "
           "in forwarded native calls):\n");
    struct Case {
      const char* label;
      int prop_queries;  // 0: run the launch storm instead
    };
    for (const Case& cs : {Case{"launch storm", 0},
                           Case{"deviceQuery fan-out", 64}}) {
      Device dev(TitanProfile());
      trace::SessionOptions topt;
      topt.trace_path = TracePathFor(
          cs.prop_queries ? "ablation_devicequery" : "ablation_storm",
          Config::kCudaOnClTitan);
      trace::TraceSession session(dev, topt);
      auto cl = mocl::CreateNativeClApi(dev);
      auto cu = cu2cl::CreateCudaOnClApi(*cl);
      if (cs.prop_queries > 0) {
        for (int i = 0; i < cs.prop_queries; ++i)
          if (!cu->GetDeviceProperties().ok()) return 1;
      } else if (CudaStorm(*cu, launches) < 0) {
        return 1;
      }
      trace::WrapperOverhead wo = trace::WrapperOverheadOf(session.recorder());
      printf("  %-20s wrapper spans=%llu fanout=%llu gap=%.1fus of "
             "%.1fus traced (%.4f%%)\n",
             cs.label, static_cast<unsigned long long>(wo.wrapper_calls),
             static_cast<unsigned long long>(wo.fanout_calls),
             wo.wrapper_gap_us, wo.total_us, 100.0 * wo.fraction());
      Measurement m;
      m.top_commands = trace::TopCommands(session.recorder(), 3);
      printf("  %-20s top: %s\n", "", TopCommandsLine(m, 3).c_str());
    }
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
