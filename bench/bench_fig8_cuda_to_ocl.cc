// Figure 8 reproduction: CUDA→OpenCL translation.
//   (a) Rodinia: four bars per app — original CUDA on Titan, translated
//       OpenCL on Titan (cu2cl wrapper), originally-shipped OpenCL on
//       Titan, translated OpenCL on the AMD HD7970 (portability: the
//       HD7970 cannot run CUDA at all). The seven untranslatable apps are
//       reported with their failure reasons, as in the paper.
//   (b) CUDA Toolkit samples: original CUDA vs translated OpenCL, with the
//       deviceQuery wrapper-overhead outlier (§6.3).
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "translator/classifier.h"

namespace bridgecl::bench {
namespace {

double GeoMean(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  double log_sum = 0;
  for (double x : xs) log_sum += std::log(x);
  return std::exp(log_sum / xs.size());
}

void RunRodinia() {
  printf("\n--- Figure 8(a): Rodinia, CUDA -> OpenCL ---\n");
  printf("%-16s %11s %12s %12s %12s  %s\n", "app", "CUDA(us)",
         "transCL(us)", "origCL(us)", "transCL-AMD", "trans/CUDA");
  std::vector<double> ratios, orig_cl_ratios;
  for (auto& app : apps::RodiniaApps()) {
    if (!app->has_cuda()) continue;
    Measurement cu = RunApp(*app, Config::kCudaNativeTitan);
    RunOptions topt;
    topt.trace = true;
    topt.trace_path = TracePathFor(app->name(), Config::kCudaOnClTitan);
    Measurement tcl = RunApp(*app, Config::kCudaOnClTitan, topt);
    Measurement ocl = RunApp(*app, Config::kClNativeTitan);
    Measurement amd = RunApp(*app, Config::kCudaOnClAmd);
    if (!cu.ok || !tcl.ok) {
      printf("%-16s FAILED: %s\n", app->name().c_str(),
             (cu.ok ? tcl.error : cu.error).c_str());
      continue;
    }
    double r = tcl.time_us / cu.time_us;
    ratios.push_back(r);
    if (ocl.ok) orig_cl_ratios.push_back(ocl.time_us / cu.time_us);
    printf("%-16s %11.1f %12.1f %12.1f %12.1f  %8.3f\n",
           app->name().c_str(), cu.time_us, tcl.time_us,
           ocl.ok ? ocl.time_us : -1.0, amd.ok ? amd.time_us : -1.0, r);
    printf("%-16s   top: %s\n", "", TopCommandsLine(tcl, 3).c_str());
  }
  printf("%-16s geomean trans/CUDA = %.3f; origCL/CUDA = %.3f\n", "",
         GeoMean(ratios), GeoMean(orig_cl_ratios));

  printf("\nUntranslatable Rodinia CUDA applications (paper: 7 of 21):\n");
  for (auto& app : apps::RodiniaUntranslatableApps()) {
    auto c = translator::ClassifyCudaApplication(app->FullCudaSource());
    std::string reasons;
    for (auto cat : c.Categories()) {
      if (!reasons.empty()) reasons += ", ";
      reasons += translator::FailureCategoryName(cat);
    }
    // heartwall-style failures surface at translation; texture-size
    // failures surface when the oversized texture is bound (§5).
    Measurement wrapped = RunApp(*app, Config::kCudaOnClTitan);
    printf("  %-16s translatable=%s  wrapper-run=%s  reason: %s\n",
           app->name().c_str(), c.translatable ? "yes" : "NO",
           wrapped.ok ? "ok (?)" : "failed",
           c.translatable ? wrapped.error.c_str() : reasons.c_str());
  }
}

void RunToolkit() {
  printf("\n--- Figure 8(b): CUDA Toolkit samples, CUDA -> OpenCL ---\n");
  printf("%-22s %11s %12s %10s\n", "app", "CUDA(us)", "transCL(us)",
         "ratio");
  std::vector<double> ratios;
  for (auto& app : apps::ToolkitApps()) {
    if (!app->has_cuda()) continue;
    Measurement cu = RunApp(*app, Config::kCudaNativeTitan);
    RunOptions topt;
    topt.trace = true;
    topt.trace_path = TracePathFor(app->name(), Config::kCudaOnClTitan);
    Measurement tcl = RunApp(*app, Config::kCudaOnClTitan, topt);
    if (!cu.ok || !tcl.ok) {
      printf("%-22s FAILED: %s\n", app->name().c_str(),
             (cu.ok ? tcl.error : cu.error).c_str());
      continue;
    }
    double r = tcl.time_us / cu.time_us;
    if (app->name() != "deviceQuery") ratios.push_back(r);
    printf("%-22s %11.1f %12.1f %10.3f%s\n", app->name().c_str(),
           cu.time_us, tcl.time_us, r,
           app->name() == "deviceQuery"
               ? "   <- wrapper fans out clGetDeviceInfo (S6.3)"
               : "");
    printf("%-22s   top: %s\n", "", TopCommandsLine(tcl, 3).c_str());
    if (app->name() == "deviceQuery") {
      // The §6.3 outlier, attributed from the trace: one wrapper call
      // fanning out to many clGetDeviceInfo commands.
      const trace::WrapperOverhead& wo = tcl.wrapper_overhead;
      printf("%-22s   wrapper spans=%llu fanout=%llu gap=%.1fus "
             "(%.3f%% of traced time)\n",
             "", static_cast<unsigned long long>(wo.wrapper_calls),
             static_cast<unsigned long long>(wo.fanout_calls),
             wo.wrapper_gap_us, 100.0 * wo.fraction());
    }
  }
  printf("%-22s geomean (excl. deviceQuery) = %.3f\n", "",
         GeoMean(ratios));
}

void BM_TranslatedRodinia(benchmark::State& state) {
  auto suite = apps::RodiniaApps();
  for (auto _ : state) {
    double total_us = 0;
    for (auto& app : suite) {
      if (!app->has_cuda()) continue;
      Measurement m = RunApp(*app, Config::kCudaOnClTitan);
      if (m.ok) total_us += m.time_us;
    }
    state.SetIterationTime(total_us * 1e-6);
  }
}

}  // namespace
}  // namespace bridgecl::bench

int main(int argc, char** argv) {
  using namespace bridgecl;
  using namespace bridgecl::bench;
  PrintHeader(
      "Figure 8: execution time of translated OpenCL vs original CUDA "
      "(normalized to CUDA; OpenCL build time excluded)");
  RunRodinia();
  RunToolkit();

  benchmark::RegisterBenchmark("fig8/rodinia_translated_opencl",
                               &BM_TranslatedRodinia)
      ->UseManualTime()
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
