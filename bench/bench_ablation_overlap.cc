// Copy/compute-overlap ablation (docs/CONCURRENCY.md): a multi-chunk
// upload+process workload run twice per configuration — serialized on the
// default queue/stream with blocking transfers, then pipelined with one
// in-order queue/stream per chunk and non-blocking transfers. With the
// dual-engine timing model the pipelined form hides each chunk's transfer
// under the previous chunk's kernel; the acceptance bar is a >= 1.3x
// simulated speedup on both device profiles, in both translation
// directions. Results also land in BENCH_overlap.json for cross-revision
// tracking.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace bridgecl::bench {
namespace {

using mcuda::LaunchArg;
using mcuda::MemcpyKind;
using mocl::ClMem;
using mocl::MemFlags;
using simgpu::Device;
using simgpu::DeviceProfile;
using simgpu::Dim3;
using simgpu::HD7970Profile;
using simgpu::TitanProfile;

// 4 chunks of 16K floats: each upload is ~chunk_bytes/bandwidth of copy
// engine time, and the spin kernel is tuned to cost the same order of
// magnitude, which is where pipelining pays.
constexpr int kChunks = 4;
constexpr int kChunkElems = 8 * 1024;
constexpr size_t kChunkBytes = kChunkElems * 4;
constexpr int kIters = 8;
constexpr int kLws = 256;

constexpr char kClSpin[] =
    "__kernel void spin(__global float* g, int iters) {"
    "  int i = get_global_id(0);"
    "  float acc = g[i];"
    "  for (int k = 0; k < iters; k++) acc = acc * 1.0001f + 0.5f;"
    "  g[i] = acc;"
    "}";

constexpr char kCudaSpin[] =
    "__global__ void spin(float* g, int iters) {"
    "  int i = blockIdx.x * blockDim.x + threadIdx.x;"
    "  float acc = g[i];"
    "  for (int k = 0; k < iters; k++) acc = acc * 1.0001f + 0.5f;"
    "  g[i] = acc;"
    "}";

struct VariantResult {
  bool ok = false;
  double time_us = 0;       // simulated, measured after the warm-up build
  double overlap_ratio = 0; // engine-overlap us / elapsed us
};

/// OpenCL host driver (runs through cl2cu in the wrapper config).
VariantResult RunClChunks(mocl::OpenClApi& cl, Device& dev, bool pipelined) {
  VariantResult r;
  auto body = [&]() -> Status {
    BRIDGECL_ASSIGN_OR_RETURN(auto prog,
                              cl.CreateProgramWithSource(kClSpin));
    BRIDGECL_RETURN_IF_ERROR(cl.BuildProgram(prog));
    BRIDGECL_ASSIGN_OR_RETURN(auto kernel, cl.CreateKernel(prog, "spin"));
    std::vector<float> host(kChunkElems, 1.0f);
    std::vector<ClMem> bufs(kChunks);
    for (int c = 0; c < kChunks; ++c) {
      BRIDGECL_ASSIGN_OR_RETURN(
          bufs[c],
          cl.CreateBuffer(MemFlags::kReadWrite, kChunkBytes, nullptr));
    }
    int iters = kIters;
    size_t gws = kChunkElems, lws = kLws;
    // Warm-up launch outside the measured window: absorbs the one-time
    // translation/build cost in the wrapper config.
    BRIDGECL_RETURN_IF_ERROR(
        cl.SetKernelArg(kernel, 0, sizeof(ClMem), &bufs[0]));
    BRIDGECL_RETURN_IF_ERROR(cl.SetKernelArg(kernel, 1, sizeof(int), &iters));
    BRIDGECL_RETURN_IF_ERROR(cl.EnqueueNDRangeKernel(kernel, 1, &gws, &lws));
    BRIDGECL_RETURN_IF_ERROR(cl.Finish());

    const double t0 = cl.NowUs();
    const double overlap0 = dev.EngineOverlapUs();
    if (!pipelined) {
      for (int c = 0; c < kChunks; ++c) {
        BRIDGECL_RETURN_IF_ERROR(
            cl.EnqueueWriteBuffer(bufs[c], 0, kChunkBytes, host.data()));
        BRIDGECL_RETURN_IF_ERROR(
            cl.SetKernelArg(kernel, 0, sizeof(ClMem), &bufs[c]));
        BRIDGECL_RETURN_IF_ERROR(
            cl.EnqueueNDRangeKernel(kernel, 1, &gws, &lws));
      }
      BRIDGECL_RETURN_IF_ERROR(cl.Finish());
    } else {
      std::vector<mocl::ClQueue> queues(kChunks);
      for (int c = 0; c < kChunks; ++c) {
        BRIDGECL_ASSIGN_OR_RETURN(queues[c], cl.CreateCommandQueue(0));
      }
      for (int c = 0; c < kChunks; ++c) {
        BRIDGECL_RETURN_IF_ERROR(cl.EnqueueWriteBufferOn(
            queues[c], bufs[c], 0, kChunkBytes, host.data(),
            /*blocking=*/false, {}, nullptr));
        BRIDGECL_RETURN_IF_ERROR(
            cl.SetKernelArg(kernel, 0, sizeof(ClMem), &bufs[c]));
        BRIDGECL_RETURN_IF_ERROR(cl.EnqueueNDRangeKernelOn(
            queues[c], kernel, 1, &gws, &lws, {}, nullptr));
      }
      for (int c = 0; c < kChunks; ++c)
        BRIDGECL_RETURN_IF_ERROR(cl.Finish(queues[c]));
      for (int c = 0; c < kChunks; ++c)
        BRIDGECL_RETURN_IF_ERROR(cl.ReleaseCommandQueue(queues[c]));
    }
    r.time_us = cl.NowUs() - t0;
    if (r.time_us > 0)
      r.overlap_ratio = (dev.EngineOverlapUs() - overlap0) / r.time_us;
    for (int c = 0; c < kChunks; ++c)
      BRIDGECL_RETURN_IF_ERROR(cl.ReleaseMemObject(bufs[c]));
    return OkStatus();
  };
  Status st = body();
  if (!st.ok()) {
    std::fprintf(stderr, "overlap bench (CL) failed: %s\n",
                 st.ToString().c_str());
    return r;
  }
  r.ok = true;
  return r;
}

/// CUDA host driver (runs through cu2cl in the wrapper config).
VariantResult RunCuChunks(mcuda::CudaApi& cu, Device& dev, bool pipelined) {
  VariantResult r;
  auto body = [&]() -> Status {
    BRIDGECL_RETURN_IF_ERROR(cu.RegisterModule(kCudaSpin));
    std::vector<float> host(kChunkElems, 1.0f);
    std::vector<void*> bufs(kChunks);
    for (int c = 0; c < kChunks; ++c) {
      BRIDGECL_ASSIGN_OR_RETURN(bufs[c], cu.Malloc(kChunkBytes));
    }
    const Dim3 grid(kChunkElems / kLws), block(kLws);
    auto args_for = [&](int c) {
      return std::vector<LaunchArg>{LaunchArg::Ptr(bufs[c]),
                                    LaunchArg::Value<int>(kIters)};
    };
    // Warm-up launch outside the measured window (lazy build in cu2cl).
    std::vector<LaunchArg> warm = args_for(0);
    BRIDGECL_RETURN_IF_ERROR(cu.LaunchKernel("spin", grid, block, 0, warm));
    BRIDGECL_RETURN_IF_ERROR(cu.DeviceSynchronize());

    const double t0 = cu.NowUs();
    const double overlap0 = dev.EngineOverlapUs();
    if (!pipelined) {
      for (int c = 0; c < kChunks; ++c) {
        BRIDGECL_RETURN_IF_ERROR(cu.Memcpy(bufs[c], host.data(), kChunkBytes,
                                           MemcpyKind::kHostToDevice));
        std::vector<LaunchArg> args = args_for(c);
        BRIDGECL_RETURN_IF_ERROR(
            cu.LaunchKernel("spin", grid, block, 0, args));
      }
      BRIDGECL_RETURN_IF_ERROR(cu.DeviceSynchronize());
    } else {
      std::vector<void*> streams(kChunks);
      for (int c = 0; c < kChunks; ++c) {
        BRIDGECL_ASSIGN_OR_RETURN(streams[c], cu.StreamCreate());
      }
      for (int c = 0; c < kChunks; ++c) {
        BRIDGECL_RETURN_IF_ERROR(
            cu.MemcpyAsync(bufs[c], host.data(), kChunkBytes,
                           MemcpyKind::kHostToDevice, streams[c]));
        std::vector<LaunchArg> args = args_for(c);
        BRIDGECL_RETURN_IF_ERROR(cu.LaunchKernelOnStream(
            "spin", grid, block, 0, args, streams[c]));
      }
      for (int c = 0; c < kChunks; ++c)
        BRIDGECL_RETURN_IF_ERROR(cu.StreamSynchronize(streams[c]));
      for (int c = 0; c < kChunks; ++c)
        BRIDGECL_RETURN_IF_ERROR(cu.StreamDestroy(streams[c]));
    }
    r.time_us = cu.NowUs() - t0;
    if (r.time_us > 0)
      r.overlap_ratio = (dev.EngineOverlapUs() - overlap0) / r.time_us;
    for (int c = 0; c < kChunks; ++c)
      BRIDGECL_RETURN_IF_ERROR(cu.Free(bufs[c]));
    return OkStatus();
  };
  Status st = body();
  if (!st.ok()) {
    std::fprintf(stderr, "overlap bench (CUDA) failed: %s\n",
                 st.ToString().c_str());
    return r;
  }
  r.ok = true;
  return r;
}

/// One (direction, profile) configuration; fresh device per variant so
/// engine accounting starts clean.
VariantResult MeasureVariant(bool cl_direction, const DeviceProfile& profile,
                             bool pipelined) {
  Device dev(profile);
  if (cl_direction) {
    // OpenCL app through the OpenCL->CUDA wrapper.
    auto cuda = mcuda::CreateNativeCudaApi(dev);
    auto cl = cl2cu::CreateClOnCudaApi(*cuda);
    return RunClChunks(*cl, dev, pipelined);
  }
  // CUDA app through the CUDA->OpenCL wrapper.
  auto cl = mocl::CreateNativeClApi(dev);
  auto cuda = cu2cl::CreateCudaOnClApi(*cl);
  return RunCuChunks(*cuda, dev, pipelined);
}

struct BenchConfig {
  const char* slug;
  bool cl_direction;
  const DeviceProfile& (*profile)();
};

constexpr BenchConfig kConfigs[] = {
    {"cl2cu_titan", true, TitanProfile},
    {"cl2cu_hd7970", true, HD7970Profile},
    {"cu2cl_titan", false, TitanProfile},
    {"cu2cl_hd7970", false, HD7970Profile},
};

void BM_Overlap(benchmark::State& state) {
  const BenchConfig& cfg = kConfigs[state.range(0)];
  const bool pipelined = state.range(1) != 0;
  for (auto _ : state) {
    VariantResult r = MeasureVariant(cfg.cl_direction, cfg.profile(),
                                     pipelined);
    state.SetIterationTime(r.time_us * 1e-6);
  }
}
BENCHMARK(BM_Overlap)
    ->ArgsProduct({{0, 1, 2, 3}, {0, 1}})
    ->UseManualTime()
    ->Iterations(1)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bridgecl::bench

int main(int argc, char** argv) {
  using namespace bridgecl;
  using namespace bridgecl::bench;
  PrintHeader(
      "Ablation (docs/CONCURRENCY.md): copy/compute overlap. A 4-chunk "
      "upload+process workload, serialized on the default queue vs "
      "pipelined across per-chunk in-order queues/streams, under both "
      "wrapper directions and both device profiles. The dual-engine "
      "scheduler hides transfers under kernels; bar: >= 1.3x.");

  BenchReport report("overlap");
  bool all_pass = true;
  printf("%-14s %14s %14s %9s %14s\n", "config", "serialized us",
         "pipelined us", "speedup", "overlap ratio");
  for (const BenchConfig& cfg : kConfigs) {
    VariantResult serial =
        MeasureVariant(cfg.cl_direction, cfg.profile(), false);
    VariantResult piped =
        MeasureVariant(cfg.cl_direction, cfg.profile(), true);
    const bool ok = serial.ok && piped.ok && piped.time_us > 0;
    const double speedup = ok ? serial.time_us / piped.time_us : 0.0;
    const bool pass = ok && speedup >= 1.3;
    all_pass = all_pass && pass;
    printf("%-14s %14.1f %14.1f %8.2fx %14.3f  %s\n", cfg.slug,
           serial.time_us, piped.time_us, speedup, piped.overlap_ratio,
           pass ? "" : "BELOW 1.3x BAR");
    report.Set(cfg.slug, "serialized_us", serial.time_us);
    report.Set(cfg.slug, "pipelined_us", piped.time_us);
    report.Set(cfg.slug, "speedup", speedup);
    report.Set(cfg.slug, "overlap_ratio", piped.overlap_ratio);
  }
  auto path = report.Write();
  if (path.ok()) {
    printf("\nwrote %s\n", path->c_str());
  } else {
    fprintf(stderr, "%s\n", path.status().ToString().c_str());
  }
  if (!all_pass) {
    fprintf(stderr, "FAIL: pipelined speedup below the 1.3x bar\n");
    return 1;
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
