#include "bench/bench_util.h"

#include <cstdio>

#include "support/strings.h"

namespace bridgecl::bench {

using simgpu::Device;
using simgpu::HD7970Profile;
using simgpu::TitanProfile;

const char* ConfigName(Config c) {
  switch (c) {
    case Config::kClNativeTitan: return "OpenCL (native, Titan)";
    case Config::kClOnCudaTitan: return "OpenCL->CUDA wrapper (Titan)";
    case Config::kCudaNativeTitan: return "CUDA (native, Titan)";
    case Config::kCudaOnClTitan: return "CUDA->OpenCL wrapper (Titan)";
    case Config::kCudaOnClAmd: return "CUDA->OpenCL wrapper (HD7970)";
    case Config::kClNativeAmd: return "OpenCL (native, HD7970)";
  }
  return "?";
}

Measurement RunApp(apps::App& app, Config config) {
  Measurement m;
  const simgpu::DeviceProfile& profile =
      (config == Config::kCudaOnClAmd || config == Config::kClNativeAmd)
          ? HD7970Profile()
          : TitanProfile();
  Device device(profile);
  Status st;
  double build_us = 0;
  switch (config) {
    case Config::kClNativeTitan:
    case Config::kClNativeAmd: {
      auto cl = mocl::CreateNativeClApi(device);
      st = app.RunCl(*cl, &m.checksum);
      build_us = cl->BuildTimeUs();
      break;
    }
    case Config::kClOnCudaTitan: {
      auto cuda = mcuda::CreateNativeCudaApi(device);
      auto cl = cl2cu::CreateClOnCudaApi(*cuda);
      st = app.RunCl(*cl, &m.checksum);
      build_us = cl->BuildTimeUs();
      break;
    }
    case Config::kCudaNativeTitan: {
      auto cuda = mcuda::CreateNativeCudaApi(device);
      st = app.RunCuda(*cuda, &m.checksum);
      break;
    }
    case Config::kCudaOnClTitan:
    case Config::kCudaOnClAmd: {
      auto cl = mocl::CreateNativeClApi(device);
      auto cuda = cu2cl::CreateCudaOnClApi(*cl);
      st = app.RunCuda(*cuda, &m.checksum);
      build_us = cl->BuildTimeUs();
      break;
    }
  }
  m.ok = st.ok();
  m.error = st.ok() ? "" : st.ToString();
  m.time_us = device.now_us() - build_us;
  m.shared_bank_words = device.stats().shared_bank_words;
  return m;
}

void PrintHeader(const std::string& title) {
  printf("\n%s\n", std::string(76, '=').c_str());
  printf("%s\n", title.c_str());
  printf("%s\n", std::string(76, '=').c_str());
  printf("%s\n", simgpu::SystemConfigurationTable().c_str());
}

}  // namespace bridgecl::bench
