#include "bench/bench_util.h"

#include <cstdio>
#include <cstdlib>

#include "support/strings.h"
#include "trace/session.h"

namespace bridgecl::bench {

using simgpu::Device;
using simgpu::HD7970Profile;
using simgpu::TitanProfile;

const char* ConfigName(Config c) {
  switch (c) {
    case Config::kClNativeTitan: return "OpenCL (native, Titan)";
    case Config::kClOnCudaTitan: return "OpenCL->CUDA wrapper (Titan)";
    case Config::kCudaNativeTitan: return "CUDA (native, Titan)";
    case Config::kCudaOnClTitan: return "CUDA->OpenCL wrapper (Titan)";
    case Config::kCudaOnClAmd: return "CUDA->OpenCL wrapper (HD7970)";
    case Config::kClNativeAmd: return "OpenCL (native, HD7970)";
  }
  return "?";
}

const char* ConfigSlug(Config c) {
  switch (c) {
    case Config::kClNativeTitan: return "cl_native_titan";
    case Config::kClOnCudaTitan: return "cl_on_cuda_titan";
    case Config::kCudaNativeTitan: return "cuda_native_titan";
    case Config::kCudaOnClTitan: return "cuda_on_cl_titan";
    case Config::kCudaOnClAmd: return "cuda_on_cl_hd7970";
    case Config::kClNativeAmd: return "cl_native_hd7970";
  }
  return "unknown";
}

Measurement RunApp(apps::App& app, Config config) {
  return RunApp(app, config, RunOptions{});
}

Measurement RunApp(apps::App& app, Config config, const RunOptions& options) {
  Measurement m;
  const simgpu::DeviceProfile& profile =
      (config == Config::kCudaOnClAmd || config == Config::kClNativeAmd)
          ? HD7970Profile()
          : TitanProfile();
  Device device(profile);
  // Attach the programmatic session before the API stack is built so the
  // native factories' BRIDGECL_TRACE auto-attach sees the device as
  // already traced and stands down (docs/OBSERVABILITY.md).
  std::optional<trace::TraceSession> session;
  if (options.trace || !options.trace_path.empty()) {
    trace::SessionOptions topt;
    topt.trace_path = options.trace_path;
    session.emplace(device, topt);
  }
  Status st;
  double build_us = 0;
  switch (config) {
    case Config::kClNativeTitan:
    case Config::kClNativeAmd: {
      auto cl = mocl::CreateNativeClApi(device);
      st = app.RunCl(*cl, &m.checksum);
      build_us = cl->BuildTimeUs();
      break;
    }
    case Config::kClOnCudaTitan: {
      auto cuda = mcuda::CreateNativeCudaApi(device);
      auto cl = cl2cu::CreateClOnCudaApi(*cuda);
      st = app.RunCl(*cl, &m.checksum);
      build_us = cl->BuildTimeUs();
      break;
    }
    case Config::kCudaNativeTitan: {
      auto cuda = mcuda::CreateNativeCudaApi(device);
      st = app.RunCuda(*cuda, &m.checksum);
      break;
    }
    case Config::kCudaOnClTitan:
    case Config::kCudaOnClAmd: {
      auto cl = mocl::CreateNativeClApi(device);
      auto cuda = cu2cl::CreateCudaOnClApi(*cl);
      st = app.RunCuda(*cuda, &m.checksum);
      build_us = cl->BuildTimeUs();
      break;
    }
  }
  m.ok = st.ok();
  m.error = st.ok() ? "" : st.ToString();
  m.time_us = device.now_us() - build_us;
  m.shared_bank_words = device.stats().shared_bank_words;
  if (session.has_value()) {
    m.traced = true;
    m.top_commands = trace::TopCommands(session->recorder(), 3);
    m.wrapper_overhead = trace::WrapperOverheadOf(session->recorder());
    // Writes trace_path if set; detach happens in the dtor. A failed
    // write must not fail the measurement — report it and move on.
    Status fst = session->Flush();
    if (!fst.ok())
      fprintf(stderr, "trace write failed: %s\n", fst.ToString().c_str());
  }
  return m;
}

std::string TracePathFor(const std::string& app_name, Config config) {
  const char* dir = std::getenv("BRIDGECL_TRACE_DIR");
  if (dir == nullptr || dir[0] == '\0') return "";
  return std::string(dir) + "/" + app_name + "_" + ConfigSlug(config) +
         ".trace.json";
}

std::string TopCommandsLine(const Measurement& m, size_t n) {
  std::string out;
  size_t shown = 0;
  for (const trace::CommandCost& c : m.top_commands) {
    if (shown == n) break;
    if (!out.empty()) out += " | ";
    out += c.layer;
    out += "/";
    out += c.name;
    if (!c.kernel.empty()) {
      out += "[";
      out += c.kernel;
      out += "]";
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, " %.1fus (x%llu)", c.exclusive_us,
                  static_cast<unsigned long long>(c.count));
    out += buf;
    ++shown;
  }
  return out;
}

std::string BenchReport::ToJson() const {
  std::string out = "{\"bench\":\"" + name_ + "\",\"results\":{";
  bool first_cfg = true;
  for (const auto& [config, metrics] : results_) {
    if (!first_cfg) out += ",";
    first_cfg = false;
    out += "\"" + config + "\":{";
    bool first_metric = true;
    for (const auto& [metric, value] : metrics) {
      if (!first_metric) out += ",";
      first_metric = false;
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.3f", value);
      out += "\"" + metric + "\":" + buf;
    }
    out += "}";
  }
  out += "}}\n";
  return out;
}

StatusOr<std::string> BenchReport::Write() const {
  const char* dir = std::getenv("BRIDGECL_BENCH_DIR");
  std::string path = (dir != nullptr && dir[0] != '\0')
                         ? std::string(dir) + "/BENCH_" + name_ + ".json"
                         : "BENCH_" + name_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr)
    return Status(StatusCode::kInternal, "cannot open " + path);
  const std::string json = ToJson();
  size_t wrote = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (wrote != json.size())
    return Status(StatusCode::kInternal, "short write to " + path);
  return path;
}

void PrintHeader(const std::string& title) {
  printf("\n%s\n", std::string(76, '=').c_str());
  printf("%s\n", title.c_str());
  printf("%s\n", std::string(76, '=').c_str());
  printf("%s\n", simgpu::SystemConfigurationTable().c_str());
}

}  // namespace bridgecl::bench
