file(REMOVE_RECURSE
  "CMakeFiles/bridgecl_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/bridgecl_bench_util.dir/bench_util.cc.o.d"
  "libbridgecl_bench_util.a"
  "libbridgecl_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bridgecl_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
