file(REMOVE_RECURSE
  "libbridgecl_bench_util.a"
)
