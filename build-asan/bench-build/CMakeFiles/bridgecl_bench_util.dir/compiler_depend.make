# Empty compiler generated dependencies file for bridgecl_bench_util.
# This may be replaced when dependencies are built.
