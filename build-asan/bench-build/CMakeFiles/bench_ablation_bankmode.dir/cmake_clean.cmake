file(REMOVE_RECURSE
  "../bench/bench_ablation_bankmode"
  "../bench/bench_ablation_bankmode.pdb"
  "CMakeFiles/bench_ablation_bankmode.dir/bench_ablation_bankmode.cc.o"
  "CMakeFiles/bench_ablation_bankmode.dir/bench_ablation_bankmode.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bankmode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
