# Empty compiler generated dependencies file for bench_ablation_bankmode.
# This may be replaced when dependencies are built.
