file(REMOVE_RECURSE
  "../bench/bench_table1_alloc_matrix"
  "../bench/bench_table1_alloc_matrix.pdb"
  "CMakeFiles/bench_table1_alloc_matrix.dir/bench_table1_alloc_matrix.cc.o"
  "CMakeFiles/bench_table1_alloc_matrix.dir/bench_table1_alloc_matrix.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_alloc_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
