# Empty dependencies file for bench_table3_failures.
# This may be replaced when dependencies are built.
