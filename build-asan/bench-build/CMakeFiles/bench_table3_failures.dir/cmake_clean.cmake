file(REMOVE_RECURSE
  "../bench/bench_table3_failures"
  "../bench/bench_table3_failures.pdb"
  "CMakeFiles/bench_table3_failures.dir/bench_table3_failures.cc.o"
  "CMakeFiles/bench_table3_failures.dir/bench_table3_failures.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
