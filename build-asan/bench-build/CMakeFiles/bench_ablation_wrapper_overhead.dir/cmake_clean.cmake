file(REMOVE_RECURSE
  "../bench/bench_ablation_wrapper_overhead"
  "../bench/bench_ablation_wrapper_overhead.pdb"
  "CMakeFiles/bench_ablation_wrapper_overhead.dir/bench_ablation_wrapper_overhead.cc.o"
  "CMakeFiles/bench_ablation_wrapper_overhead.dir/bench_ablation_wrapper_overhead.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_wrapper_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
