file(REMOVE_RECURSE
  "../bench/bench_fig8_cuda_to_ocl"
  "../bench/bench_fig8_cuda_to_ocl.pdb"
  "CMakeFiles/bench_fig8_cuda_to_ocl.dir/bench_fig8_cuda_to_ocl.cc.o"
  "CMakeFiles/bench_fig8_cuda_to_ocl.dir/bench_fig8_cuda_to_ocl.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_cuda_to_ocl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
