# Empty dependencies file for bench_fig8_cuda_to_ocl.
# This may be replaced when dependencies are built.
