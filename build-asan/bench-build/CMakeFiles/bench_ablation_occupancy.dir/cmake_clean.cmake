file(REMOVE_RECURSE
  "../bench/bench_ablation_occupancy"
  "../bench/bench_ablation_occupancy.pdb"
  "CMakeFiles/bench_ablation_occupancy.dir/bench_ablation_occupancy.cc.o"
  "CMakeFiles/bench_ablation_occupancy.dir/bench_ablation_occupancy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_occupancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
