file(REMOVE_RECURSE
  "../bench/bench_fig7_ocl_to_cuda"
  "../bench/bench_fig7_ocl_to_cuda.pdb"
  "CMakeFiles/bench_fig7_ocl_to_cuda.dir/bench_fig7_ocl_to_cuda.cc.o"
  "CMakeFiles/bench_fig7_ocl_to_cuda.dir/bench_fig7_ocl_to_cuda.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_ocl_to_cuda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
