# Empty compiler generated dependencies file for bench_fig7_ocl_to_cuda.
# This may be replaced when dependencies are built.
