file(REMOVE_RECURSE
  "libbridgecl_interp.a"
)
