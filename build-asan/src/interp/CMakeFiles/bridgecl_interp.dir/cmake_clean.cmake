file(REMOVE_RECURSE
  "CMakeFiles/bridgecl_interp.dir/constants.cc.o"
  "CMakeFiles/bridgecl_interp.dir/constants.cc.o.d"
  "CMakeFiles/bridgecl_interp.dir/executor.cc.o"
  "CMakeFiles/bridgecl_interp.dir/executor.cc.o.d"
  "CMakeFiles/bridgecl_interp.dir/module.cc.o"
  "CMakeFiles/bridgecl_interp.dir/module.cc.o.d"
  "CMakeFiles/bridgecl_interp.dir/value.cc.o"
  "CMakeFiles/bridgecl_interp.dir/value.cc.o.d"
  "libbridgecl_interp.a"
  "libbridgecl_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bridgecl_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
