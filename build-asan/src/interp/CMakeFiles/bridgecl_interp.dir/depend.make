# Empty dependencies file for bridgecl_interp.
# This may be replaced when dependencies are built.
