file(REMOVE_RECURSE
  "libbridgecl_translator.a"
)
