
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/translator/cl_to_cu.cc" "src/translator/CMakeFiles/bridgecl_translator.dir/cl_to_cu.cc.o" "gcc" "src/translator/CMakeFiles/bridgecl_translator.dir/cl_to_cu.cc.o.d"
  "/root/repo/src/translator/classifier.cc" "src/translator/CMakeFiles/bridgecl_translator.dir/classifier.cc.o" "gcc" "src/translator/CMakeFiles/bridgecl_translator.dir/classifier.cc.o.d"
  "/root/repo/src/translator/cu_to_cl.cc" "src/translator/CMakeFiles/bridgecl_translator.dir/cu_to_cl.cc.o" "gcc" "src/translator/CMakeFiles/bridgecl_translator.dir/cu_to_cl.cc.o.d"
  "/root/repo/src/translator/host_rewriter.cc" "src/translator/CMakeFiles/bridgecl_translator.dir/host_rewriter.cc.o" "gcc" "src/translator/CMakeFiles/bridgecl_translator.dir/host_rewriter.cc.o.d"
  "/root/repo/src/translator/rewrite_util.cc" "src/translator/CMakeFiles/bridgecl_translator.dir/rewrite_util.cc.o" "gcc" "src/translator/CMakeFiles/bridgecl_translator.dir/rewrite_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/lang/CMakeFiles/bridgecl_lang.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/support/CMakeFiles/bridgecl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
