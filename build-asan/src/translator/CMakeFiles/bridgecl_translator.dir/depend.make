# Empty dependencies file for bridgecl_translator.
# This may be replaced when dependencies are built.
