file(REMOVE_RECURSE
  "CMakeFiles/bridgecl_translator.dir/cl_to_cu.cc.o"
  "CMakeFiles/bridgecl_translator.dir/cl_to_cu.cc.o.d"
  "CMakeFiles/bridgecl_translator.dir/classifier.cc.o"
  "CMakeFiles/bridgecl_translator.dir/classifier.cc.o.d"
  "CMakeFiles/bridgecl_translator.dir/cu_to_cl.cc.o"
  "CMakeFiles/bridgecl_translator.dir/cu_to_cl.cc.o.d"
  "CMakeFiles/bridgecl_translator.dir/host_rewriter.cc.o"
  "CMakeFiles/bridgecl_translator.dir/host_rewriter.cc.o.d"
  "CMakeFiles/bridgecl_translator.dir/rewrite_util.cc.o"
  "CMakeFiles/bridgecl_translator.dir/rewrite_util.cc.o.d"
  "libbridgecl_translator.a"
  "libbridgecl_translator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bridgecl_translator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
