file(REMOVE_RECURSE
  "CMakeFiles/bridgecl_apps.dir/dual.cc.o"
  "CMakeFiles/bridgecl_apps.dir/dual.cc.o.d"
  "CMakeFiles/bridgecl_apps.dir/failure_catalog.cc.o"
  "CMakeFiles/bridgecl_apps.dir/failure_catalog.cc.o.d"
  "CMakeFiles/bridgecl_apps.dir/npb.cc.o"
  "CMakeFiles/bridgecl_apps.dir/npb.cc.o.d"
  "CMakeFiles/bridgecl_apps.dir/rodinia.cc.o"
  "CMakeFiles/bridgecl_apps.dir/rodinia.cc.o.d"
  "CMakeFiles/bridgecl_apps.dir/rodinia2.cc.o"
  "CMakeFiles/bridgecl_apps.dir/rodinia2.cc.o.d"
  "CMakeFiles/bridgecl_apps.dir/runners.cc.o"
  "CMakeFiles/bridgecl_apps.dir/runners.cc.o.d"
  "CMakeFiles/bridgecl_apps.dir/toolkit.cc.o"
  "CMakeFiles/bridgecl_apps.dir/toolkit.cc.o.d"
  "libbridgecl_apps.a"
  "libbridgecl_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bridgecl_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
