# Empty dependencies file for bridgecl_apps.
# This may be replaced when dependencies are built.
