file(REMOVE_RECURSE
  "libbridgecl_apps.a"
)
