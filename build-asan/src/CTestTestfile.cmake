# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-asan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("lang")
subdirs("simgpu")
subdirs("interp")
subdirs("mocl")
subdirs("mcuda")
subdirs("translator")
subdirs("cl2cu")
subdirs("cu2cl")
subdirs("apps")
