file(REMOVE_RECURSE
  "libbridgecl_cu2cl.a"
)
