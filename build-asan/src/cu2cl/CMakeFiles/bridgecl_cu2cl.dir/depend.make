# Empty dependencies file for bridgecl_cu2cl.
# This may be replaced when dependencies are built.
