file(REMOVE_RECURSE
  "CMakeFiles/bridgecl_cu2cl.dir/cuda_on_cl.cc.o"
  "CMakeFiles/bridgecl_cu2cl.dir/cuda_on_cl.cc.o.d"
  "libbridgecl_cu2cl.a"
  "libbridgecl_cu2cl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bridgecl_cu2cl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
