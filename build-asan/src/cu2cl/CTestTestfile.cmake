# CMake generated Testfile for 
# Source directory: /root/repo/src/cu2cl
# Build directory: /root/repo/build-asan/src/cu2cl
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
