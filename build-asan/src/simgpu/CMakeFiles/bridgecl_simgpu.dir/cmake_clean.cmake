file(REMOVE_RECURSE
  "CMakeFiles/bridgecl_simgpu.dir/device.cc.o"
  "CMakeFiles/bridgecl_simgpu.dir/device.cc.o.d"
  "CMakeFiles/bridgecl_simgpu.dir/device_profile.cc.o"
  "CMakeFiles/bridgecl_simgpu.dir/device_profile.cc.o.d"
  "CMakeFiles/bridgecl_simgpu.dir/fault_injector.cc.o"
  "CMakeFiles/bridgecl_simgpu.dir/fault_injector.cc.o.d"
  "CMakeFiles/bridgecl_simgpu.dir/fiber.cc.o"
  "CMakeFiles/bridgecl_simgpu.dir/fiber.cc.o.d"
  "CMakeFiles/bridgecl_simgpu.dir/virtual_memory.cc.o"
  "CMakeFiles/bridgecl_simgpu.dir/virtual_memory.cc.o.d"
  "libbridgecl_simgpu.a"
  "libbridgecl_simgpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bridgecl_simgpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
