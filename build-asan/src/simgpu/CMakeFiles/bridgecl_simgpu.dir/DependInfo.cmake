
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simgpu/device.cc" "src/simgpu/CMakeFiles/bridgecl_simgpu.dir/device.cc.o" "gcc" "src/simgpu/CMakeFiles/bridgecl_simgpu.dir/device.cc.o.d"
  "/root/repo/src/simgpu/device_profile.cc" "src/simgpu/CMakeFiles/bridgecl_simgpu.dir/device_profile.cc.o" "gcc" "src/simgpu/CMakeFiles/bridgecl_simgpu.dir/device_profile.cc.o.d"
  "/root/repo/src/simgpu/fault_injector.cc" "src/simgpu/CMakeFiles/bridgecl_simgpu.dir/fault_injector.cc.o" "gcc" "src/simgpu/CMakeFiles/bridgecl_simgpu.dir/fault_injector.cc.o.d"
  "/root/repo/src/simgpu/fiber.cc" "src/simgpu/CMakeFiles/bridgecl_simgpu.dir/fiber.cc.o" "gcc" "src/simgpu/CMakeFiles/bridgecl_simgpu.dir/fiber.cc.o.d"
  "/root/repo/src/simgpu/virtual_memory.cc" "src/simgpu/CMakeFiles/bridgecl_simgpu.dir/virtual_memory.cc.o" "gcc" "src/simgpu/CMakeFiles/bridgecl_simgpu.dir/virtual_memory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/support/CMakeFiles/bridgecl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
