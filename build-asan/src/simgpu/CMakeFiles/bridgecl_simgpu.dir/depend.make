# Empty dependencies file for bridgecl_simgpu.
# This may be replaced when dependencies are built.
