file(REMOVE_RECURSE
  "libbridgecl_simgpu.a"
)
