file(REMOVE_RECURSE
  "libbridgecl_mcuda.a"
)
