# Empty dependencies file for bridgecl_mcuda.
# This may be replaced when dependencies are built.
