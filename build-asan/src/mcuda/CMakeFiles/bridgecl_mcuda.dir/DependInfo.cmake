
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mcuda/cuda_errors.cc" "src/mcuda/CMakeFiles/bridgecl_mcuda.dir/cuda_errors.cc.o" "gcc" "src/mcuda/CMakeFiles/bridgecl_mcuda.dir/cuda_errors.cc.o.d"
  "/root/repo/src/mcuda/native_cuda.cc" "src/mcuda/CMakeFiles/bridgecl_mcuda.dir/native_cuda.cc.o" "gcc" "src/mcuda/CMakeFiles/bridgecl_mcuda.dir/native_cuda.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/interp/CMakeFiles/bridgecl_interp.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/lang/CMakeFiles/bridgecl_lang.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/simgpu/CMakeFiles/bridgecl_simgpu.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/support/CMakeFiles/bridgecl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
