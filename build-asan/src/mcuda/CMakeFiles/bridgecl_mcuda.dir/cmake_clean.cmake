file(REMOVE_RECURSE
  "CMakeFiles/bridgecl_mcuda.dir/cuda_errors.cc.o"
  "CMakeFiles/bridgecl_mcuda.dir/cuda_errors.cc.o.d"
  "CMakeFiles/bridgecl_mcuda.dir/native_cuda.cc.o"
  "CMakeFiles/bridgecl_mcuda.dir/native_cuda.cc.o.d"
  "libbridgecl_mcuda.a"
  "libbridgecl_mcuda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bridgecl_mcuda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
