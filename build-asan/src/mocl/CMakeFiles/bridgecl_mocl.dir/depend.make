# Empty dependencies file for bridgecl_mocl.
# This may be replaced when dependencies are built.
