file(REMOVE_RECURSE
  "CMakeFiles/bridgecl_mocl.dir/cl_errors.cc.o"
  "CMakeFiles/bridgecl_mocl.dir/cl_errors.cc.o.d"
  "CMakeFiles/bridgecl_mocl.dir/native_cl.cc.o"
  "CMakeFiles/bridgecl_mocl.dir/native_cl.cc.o.d"
  "libbridgecl_mocl.a"
  "libbridgecl_mocl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bridgecl_mocl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
