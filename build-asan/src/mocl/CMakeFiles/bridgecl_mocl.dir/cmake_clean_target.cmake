file(REMOVE_RECURSE
  "libbridgecl_mocl.a"
)
