file(REMOVE_RECURSE
  "libbridgecl_support.a"
)
