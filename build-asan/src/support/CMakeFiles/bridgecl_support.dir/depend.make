# Empty dependencies file for bridgecl_support.
# This may be replaced when dependencies are built.
