file(REMOVE_RECURSE
  "CMakeFiles/bridgecl_support.dir/source_location.cc.o"
  "CMakeFiles/bridgecl_support.dir/source_location.cc.o.d"
  "CMakeFiles/bridgecl_support.dir/status.cc.o"
  "CMakeFiles/bridgecl_support.dir/status.cc.o.d"
  "CMakeFiles/bridgecl_support.dir/strings.cc.o"
  "CMakeFiles/bridgecl_support.dir/strings.cc.o.d"
  "libbridgecl_support.a"
  "libbridgecl_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bridgecl_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
