# CMake generated Testfile for 
# Source directory: /root/repo/src/cl2cu
# Build directory: /root/repo/build-asan/src/cl2cu
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
