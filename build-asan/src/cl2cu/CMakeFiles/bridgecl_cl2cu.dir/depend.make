# Empty dependencies file for bridgecl_cl2cu.
# This may be replaced when dependencies are built.
