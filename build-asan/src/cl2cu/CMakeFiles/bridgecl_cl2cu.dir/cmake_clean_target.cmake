file(REMOVE_RECURSE
  "libbridgecl_cl2cu.a"
)
