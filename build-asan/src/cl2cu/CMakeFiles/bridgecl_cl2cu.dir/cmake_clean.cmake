file(REMOVE_RECURSE
  "CMakeFiles/bridgecl_cl2cu.dir/cl_on_cuda.cc.o"
  "CMakeFiles/bridgecl_cl2cu.dir/cl_on_cuda.cc.o.d"
  "libbridgecl_cl2cu.a"
  "libbridgecl_cl2cu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bridgecl_cl2cu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
