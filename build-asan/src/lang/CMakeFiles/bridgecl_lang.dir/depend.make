# Empty dependencies file for bridgecl_lang.
# This may be replaced when dependencies are built.
