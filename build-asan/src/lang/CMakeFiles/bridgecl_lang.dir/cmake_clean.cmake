file(REMOVE_RECURSE
  "CMakeFiles/bridgecl_lang.dir/ast.cc.o"
  "CMakeFiles/bridgecl_lang.dir/ast.cc.o.d"
  "CMakeFiles/bridgecl_lang.dir/builtins.cc.o"
  "CMakeFiles/bridgecl_lang.dir/builtins.cc.o.d"
  "CMakeFiles/bridgecl_lang.dir/lexer.cc.o"
  "CMakeFiles/bridgecl_lang.dir/lexer.cc.o.d"
  "CMakeFiles/bridgecl_lang.dir/parser.cc.o"
  "CMakeFiles/bridgecl_lang.dir/parser.cc.o.d"
  "CMakeFiles/bridgecl_lang.dir/printer.cc.o"
  "CMakeFiles/bridgecl_lang.dir/printer.cc.o.d"
  "CMakeFiles/bridgecl_lang.dir/sema.cc.o"
  "CMakeFiles/bridgecl_lang.dir/sema.cc.o.d"
  "CMakeFiles/bridgecl_lang.dir/type.cc.o"
  "CMakeFiles/bridgecl_lang.dir/type.cc.o.d"
  "libbridgecl_lang.a"
  "libbridgecl_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bridgecl_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
