file(REMOVE_RECURSE
  "libbridgecl_lang.a"
)
