
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/image_pipeline.cpp" "examples/CMakeFiles/image_pipeline.dir/image_pipeline.cpp.o" "gcc" "examples/CMakeFiles/image_pipeline.dir/image_pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/apps/CMakeFiles/bridgecl_apps.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/cl2cu/CMakeFiles/bridgecl_cl2cu.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/cu2cl/CMakeFiles/bridgecl_cu2cl.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/translator/CMakeFiles/bridgecl_translator.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/mocl/CMakeFiles/bridgecl_mocl.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/mcuda/CMakeFiles/bridgecl_mcuda.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/interp/CMakeFiles/bridgecl_interp.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/simgpu/CMakeFiles/bridgecl_simgpu.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/lang/CMakeFiles/bridgecl_lang.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/support/CMakeFiles/bridgecl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
