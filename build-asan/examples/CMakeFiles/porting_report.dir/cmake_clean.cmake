file(REMOVE_RECURSE
  "CMakeFiles/porting_report.dir/porting_report.cpp.o"
  "CMakeFiles/porting_report.dir/porting_report.cpp.o.d"
  "porting_report"
  "porting_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/porting_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
