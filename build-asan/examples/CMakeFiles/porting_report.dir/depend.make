# Empty dependencies file for porting_report.
# This may be replaced when dependencies are built.
