# Empty dependencies file for bridgecl.
# This may be replaced when dependencies are built.
