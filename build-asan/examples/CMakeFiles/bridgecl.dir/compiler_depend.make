# Empty compiler generated dependencies file for bridgecl.
# This may be replaced when dependencies are built.
