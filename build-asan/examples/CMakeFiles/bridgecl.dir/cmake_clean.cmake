file(REMOVE_RECURSE
  "CMakeFiles/bridgecl.dir/bridgecl_cli.cpp.o"
  "CMakeFiles/bridgecl.dir/bridgecl_cli.cpp.o.d"
  "bridgecl"
  "bridgecl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bridgecl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
