file(REMOVE_RECURSE
  "CMakeFiles/wrappers_test.dir/wrappers_test.cc.o"
  "CMakeFiles/wrappers_test.dir/wrappers_test.cc.o.d"
  "wrappers_test"
  "wrappers_test.pdb"
  "wrappers_test[1]_tests.cmake"
  "wrappers_test[2]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrappers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
