# Empty compiler generated dependencies file for wrappers_test.
# This may be replaced when dependencies are built.
