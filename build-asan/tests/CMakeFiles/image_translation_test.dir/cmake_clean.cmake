file(REMOVE_RECURSE
  "CMakeFiles/image_translation_test.dir/image_translation_test.cc.o"
  "CMakeFiles/image_translation_test.dir/image_translation_test.cc.o.d"
  "image_translation_test"
  "image_translation_test.pdb"
  "image_translation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_translation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
