# Empty compiler generated dependencies file for image_translation_test.
# This may be replaced when dependencies are built.
