# Empty dependencies file for mocl_test.
# This may be replaced when dependencies are built.
