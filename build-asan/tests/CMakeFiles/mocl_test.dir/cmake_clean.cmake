file(REMOVE_RECURSE
  "CMakeFiles/mocl_test.dir/mocl_test.cc.o"
  "CMakeFiles/mocl_test.dir/mocl_test.cc.o.d"
  "mocl_test"
  "mocl_test.pdb"
  "mocl_test[1]_tests.cmake"
  "mocl_test[2]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mocl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
