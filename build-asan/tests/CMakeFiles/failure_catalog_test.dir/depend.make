# Empty dependencies file for failure_catalog_test.
# This may be replaced when dependencies are built.
