file(REMOVE_RECURSE
  "CMakeFiles/failure_catalog_test.dir/failure_catalog_test.cc.o"
  "CMakeFiles/failure_catalog_test.dir/failure_catalog_test.cc.o.d"
  "failure_catalog_test"
  "failure_catalog_test.pdb"
  "failure_catalog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_catalog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
