# Empty dependencies file for host_rewriter_test.
# This may be replaced when dependencies are built.
