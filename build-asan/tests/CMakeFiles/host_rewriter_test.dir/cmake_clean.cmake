file(REMOVE_RECURSE
  "CMakeFiles/host_rewriter_test.dir/host_rewriter_test.cc.o"
  "CMakeFiles/host_rewriter_test.dir/host_rewriter_test.cc.o.d"
  "host_rewriter_test"
  "host_rewriter_test.pdb"
  "host_rewriter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_rewriter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
