file(REMOVE_RECURSE
  "CMakeFiles/fault_sweep_test.dir/fault_sweep_test.cc.o"
  "CMakeFiles/fault_sweep_test.dir/fault_sweep_test.cc.o.d"
  "fault_sweep_test"
  "fault_sweep_test.pdb"
  "fault_sweep_test[1]_tests.cmake"
  "fault_sweep_test[2]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
