file(REMOVE_RECURSE
  "CMakeFiles/mcuda_test.dir/mcuda_test.cc.o"
  "CMakeFiles/mcuda_test.dir/mcuda_test.cc.o.d"
  "mcuda_test"
  "mcuda_test.pdb"
  "mcuda_test[1]_tests.cmake"
  "mcuda_test[2]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcuda_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
