# Empty dependencies file for mcuda_test.
# This may be replaced when dependencies are built.
