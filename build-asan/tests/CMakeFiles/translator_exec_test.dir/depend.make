# Empty dependencies file for translator_exec_test.
# This may be replaced when dependencies are built.
