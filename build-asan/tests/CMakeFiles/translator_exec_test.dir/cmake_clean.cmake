file(REMOVE_RECURSE
  "CMakeFiles/translator_exec_test.dir/translator_exec_test.cc.o"
  "CMakeFiles/translator_exec_test.dir/translator_exec_test.cc.o.d"
  "translator_exec_test"
  "translator_exec_test.pdb"
  "translator_exec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/translator_exec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
