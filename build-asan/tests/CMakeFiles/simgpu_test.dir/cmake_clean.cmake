file(REMOVE_RECURSE
  "CMakeFiles/simgpu_test.dir/simgpu_test.cc.o"
  "CMakeFiles/simgpu_test.dir/simgpu_test.cc.o.d"
  "simgpu_test"
  "simgpu_test.pdb"
  "simgpu_test[1]_tests.cmake"
  "simgpu_test[2]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simgpu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
