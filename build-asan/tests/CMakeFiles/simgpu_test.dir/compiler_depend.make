# Empty compiler generated dependencies file for simgpu_test.
# This may be replaced when dependencies are built.
