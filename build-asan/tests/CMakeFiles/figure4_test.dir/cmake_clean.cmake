file(REMOVE_RECURSE
  "CMakeFiles/figure4_test.dir/figure4_test.cc.o"
  "CMakeFiles/figure4_test.dir/figure4_test.cc.o.d"
  "figure4_test"
  "figure4_test.pdb"
  "figure4_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure4_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
