# Empty dependencies file for figure4_test.
# This may be replaced when dependencies are built.
