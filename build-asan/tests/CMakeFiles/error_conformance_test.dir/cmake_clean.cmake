file(REMOVE_RECURSE
  "CMakeFiles/error_conformance_test.dir/error_conformance_test.cc.o"
  "CMakeFiles/error_conformance_test.dir/error_conformance_test.cc.o.d"
  "error_conformance_test"
  "error_conformance_test.pdb"
  "error_conformance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/error_conformance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
