# Empty dependencies file for error_conformance_test.
# This may be replaced when dependencies are built.
