# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-asan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/support_test[1]_include.cmake")
include("/root/repo/build-asan/tests/lang_lexer_test[1]_include.cmake")
include("/root/repo/build-asan/tests/lang_parser_test[1]_include.cmake")
include("/root/repo/build-asan/tests/lang_sema_test[1]_include.cmake")
include("/root/repo/build-asan/tests/lang_printer_test[1]_include.cmake")
include("/root/repo/build-asan/tests/simgpu_test[1]_include.cmake")
include("/root/repo/build-asan/tests/simgpu_test[2]_include.cmake")
include("/root/repo/build-asan/tests/interp_test[1]_include.cmake")
include("/root/repo/build-asan/tests/interp_test[2]_include.cmake")
include("/root/repo/build-asan/tests/mocl_test[1]_include.cmake")
include("/root/repo/build-asan/tests/mocl_test[2]_include.cmake")
include("/root/repo/build-asan/tests/mcuda_test[1]_include.cmake")
include("/root/repo/build-asan/tests/mcuda_test[2]_include.cmake")
include("/root/repo/build-asan/tests/translator_test[1]_include.cmake")
include("/root/repo/build-asan/tests/wrappers_test[1]_include.cmake")
include("/root/repo/build-asan/tests/wrappers_test[2]_include.cmake")
include("/root/repo/build-asan/tests/host_rewriter_test[1]_include.cmake")
include("/root/repo/build-asan/tests/apps_test[1]_include.cmake")
include("/root/repo/build-asan/tests/failure_catalog_test[1]_include.cmake")
include("/root/repo/build-asan/tests/property_test[1]_include.cmake")
include("/root/repo/build-asan/tests/figure4_test[1]_include.cmake")
include("/root/repo/build-asan/tests/translator_exec_test[1]_include.cmake")
include("/root/repo/build-asan/tests/failure_injection_test[1]_include.cmake")
include("/root/repo/build-asan/tests/image_translation_test[1]_include.cmake")
include("/root/repo/build-asan/tests/events_test[1]_include.cmake")
include("/root/repo/build-asan/tests/fault_sweep_test[1]_include.cmake")
include("/root/repo/build-asan/tests/fault_sweep_test[2]_include.cmake")
include("/root/repo/build-asan/tests/error_conformance_test[1]_include.cmake")
