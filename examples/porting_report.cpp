// Porting report: triage a directory's worth of CUDA applications for
// OpenCL portability, the way the paper triaged the 81 Toolkit samples
// (Table 3). Demonstrates the classifier and the static host rewriter on
// the built-in failure corpus plus a mixed host/device example.
//
//   build/examples/porting_report
#include <cstdio>
#include <map>

#include "apps/failure_catalog.h"
#include "translator/classifier.h"
#include "translator/host_rewriter.h"

using namespace bridgecl;

namespace {

constexpr char kPortableApp[] = R"(
__constant__ float gain[4];

__global__ void amplify(float* samples, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) samples[i] *= gain[i % 4];
}

int main() {
  float* d_samples;
  int n = 1 << 16;
  cudaMalloc((void**)&d_samples, n * sizeof(float));
  float g[4] = {0.5f, 1.0f, 1.5f, 2.0f};
  cudaMemcpyToSymbol(gain, g, sizeof(g));
  amplify<<<n / 256, 256>>>(d_samples, n);
  cudaDeviceSynchronize();
  return 0;
}
)";

}  // namespace

int main() {
  printf("== BridgeCL porting report ==\n\n");

  // 1. Triage the corpus.
  std::map<translator::FailureCategory, int> counts;
  int portable = 0, blocked = 0;
  for (const apps::CatalogEntry& e : apps::FailureCatalog()) {
    auto c = translator::ClassifyCudaApplication(e.source);
    if (c.translatable) {
      ++portable;
    } else {
      ++blocked;
      for (auto cat : c.Categories()) ++counts[cat];
    }
  }
  printf("Corpus triage (%zu applications):\n",
         apps::FailureCatalog().size());
  printf("  portable to OpenCL : %d\n", portable);
  printf("  blocked            : %d\n", blocked);
  for (const auto& [cat, n] : counts)
    printf("    %-38s %d\n", translator::FailureCategoryName(cat), n);

  // 2. A portable app: show the full static translation (Figure 3's file
  // split + host rewriting + device translation).
  printf("\nPortable example — static translation of a mixed .cu file:\n");
  DiagnosticEngine diags;
  auto r = translator::RewriteCudaHostCode(kPortableApp, diags);
  if (!r.ok()) {
    fprintf(stderr, "rewrite failed: %s\n%s", r.status().ToString().c_str(),
            diags.ToString().c_str());
    return 1;
  }
  printf("\n----- main.cu.cl (translated device code) -----\n%s",
         r->device_source.c_str());
  printf("\n----- main.cu.cpp (rewritten host code) -----\n%s\n",
         r->host_source.c_str());
  return 0;
}
