// Quickstart: translate a kernel in both directions, then run an OpenCL
// host program unchanged on top of the CUDA runtime through the wrapper
// library — the paper's core workflow (§3).
//
//   build/examples/quickstart
#include <cstdio>
#include <vector>

#include "cl2cu/cl_on_cuda.h"
#include "mcuda/cuda_api.h"
#include "mocl/cl_api.h"
#include "simgpu/device.h"
#include "translator/translate.h"

using namespace bridgecl;

namespace {

constexpr char kOpenClKernel[] = R"(
__kernel void saxpy(__global float* y, __global float* x, float a, int n) {
  int i = get_global_id(0);
  if (i < n) y[i] = a * x[i] + y[i];
}
)";

constexpr char kCudaKernel[] = R"(
__global__ void saxpy(float* y, float* x, float a, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) y[i] = a * x[i] + y[i];
}
)";

/// An ordinary OpenCL host program, written once. It runs identically
/// against the native OpenCL binding and against the OpenCL-on-CUDA
/// wrapper binding ("host code is untouched", §3.2).
Status RunSaxpy(mocl::OpenClApi& cl, std::vector<float>* out) {
  const int n = 64;
  std::vector<float> x(n), y(n);
  for (int i = 0; i < n; ++i) {
    x[i] = static_cast<float>(i);
    y[i] = 1.0f;
  }
  BRIDGECL_ASSIGN_OR_RETURN(auto prog,
                            cl.CreateProgramWithSource(kOpenClKernel));
  BRIDGECL_RETURN_IF_ERROR(cl.BuildProgram(prog));
  BRIDGECL_ASSIGN_OR_RETURN(auto kernel, cl.CreateKernel(prog, "saxpy"));
  BRIDGECL_ASSIGN_OR_RETURN(
      auto dy, cl.CreateBuffer(mocl::MemFlags::kReadWrite, n * 4, y.data()));
  BRIDGECL_ASSIGN_OR_RETURN(
      auto dx, cl.CreateBuffer(mocl::MemFlags::kReadOnly, n * 4, x.data()));
  float a = 2.0f;
  int nn = n;
  BRIDGECL_RETURN_IF_ERROR(cl.SetKernelArg(kernel, 0, sizeof(dy), &dy));
  BRIDGECL_RETURN_IF_ERROR(cl.SetKernelArg(kernel, 1, sizeof(dx), &dx));
  BRIDGECL_RETURN_IF_ERROR(cl.SetKernelArg(kernel, 2, sizeof(float), &a));
  BRIDGECL_RETURN_IF_ERROR(cl.SetKernelArg(kernel, 3, sizeof(int), &nn));
  size_t gws = n, lws = 32;
  BRIDGECL_RETURN_IF_ERROR(cl.EnqueueNDRangeKernel(kernel, 1, &gws, &lws));
  out->resize(n);
  return cl.EnqueueReadBuffer(dy, 0, n * 4, out->data());
}

}  // namespace

int main() {
  printf("== BridgeCL quickstart ==\n\n");

  // 1. Static device-code translation, both directions.
  DiagnosticEngine diags;
  auto to_cuda = translator::TranslateOpenClToCuda(kOpenClKernel, diags);
  if (!to_cuda.ok()) {
    fprintf(stderr, "OpenCL->CUDA failed: %s\n%s",
            to_cuda.status().ToString().c_str(), diags.ToString().c_str());
    return 1;
  }
  printf("--- OpenCL kernel translated to CUDA ---\n%s\n",
         to_cuda->source.c_str());

  auto to_opencl = translator::TranslateCudaToOpenCl(kCudaKernel, diags);
  if (!to_opencl.ok()) {
    fprintf(stderr, "CUDA->OpenCL failed: %s\n",
            to_opencl.status().ToString().c_str());
    return 1;
  }
  printf("--- CUDA kernel translated to OpenCL ---\n%s\n",
         to_opencl->source.c_str());

  // 2. Run the same OpenCL host program natively and through the wrapper.
  simgpu::Device native_dev(simgpu::TitanProfile());
  auto native = mocl::CreateNativeClApi(native_dev);
  std::vector<float> native_out;
  if (!RunSaxpy(*native, &native_out).ok()) return 1;

  simgpu::Device wrapped_dev(simgpu::TitanProfile());
  auto cuda = mcuda::CreateNativeCudaApi(wrapped_dev);
  auto wrapped = cl2cu::CreateClOnCudaApi(*cuda);  // the paper's Fig 2 path
  std::vector<float> wrapped_out;
  if (!RunSaxpy(*wrapped, &wrapped_out).ok()) return 1;

  bool equal = native_out == wrapped_out;
  printf("--- Same host program, two bindings ---\n");
  printf("native OpenCL     : y[10] = %.1f (%.1f us simulated)\n",
         native_out[10], native->NowUs() - native->BuildTimeUs());
  printf("OpenCL-on-CUDA    : y[10] = %.1f (%.1f us simulated)\n",
         wrapped_out[10], wrapped->NowUs());
  printf("results identical : %s\n", equal ? "yes" : "NO");
  return equal ? 0 : 1;
}
