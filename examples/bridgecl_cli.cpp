// bridgecl: the translator as a command-line tool.
//
//   bridgecl --to=cuda   kernel.cl          # OpenCL C -> CUDA device code
//   bridgecl --to=opencl kernel.cu          # CUDA -> OpenCL device code
//   bridgecl --host      main.cu            # split + rewrite a mixed file
//   bridgecl --host -o out/ main.cu         # write main.cu.cl + main.cu.cpp
//   bridgecl --classify  main.cu            # Table 3-style triage
//   bridgecl --to=opencl --emulate-atomics kernel.cu
//   bridgecl --profile                      # trace a wrapped demo workload
//
// Reads from stdin when no file is given. Prints translated source on
// stdout; diagnostics on stderr. --profile takes no input: it runs a
// built-in launch/copy workload through the CUDA→OpenCL wrapper on the
// simulated device and prints the trace summary (docs/OBSERVABILITY.md);
// BRIDGECL_TRACE=<file> additionally writes the Chrome trace JSON.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cu2cl/cuda_on_cl.h"
#include "mcuda/cuda_api.h"
#include "mocl/cl_api.h"
#include "simgpu/device.h"
#include "trace/exporters.h"
#include "trace/session.h"
#include "translator/classifier.h"
#include "translator/host_rewriter.h"
#include "translator/translate.h"

using namespace bridgecl;

namespace {

int Usage() {
  fprintf(stderr,
          "usage: bridgecl [--to=cuda|opencl] [--host] [--classify]\n"
          "                [--profile] [--emulate-atomics] [file]\n"
          "exit codes: 0 ok, 2 usage, 3 i/o, 10+N translation failure\n"
          "            where N is the StatusCode (untranslatable = %d)\n",
          10 + static_cast<int>(StatusCode::kUntranslatable));
  return 2;
}

std::string ReadAll(std::istream& in) {
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Scripted callers branch on the failure kind: each StatusCode gets its
/// own exit code, above the usage (2) and file-i/o (3) codes.
int ExitCodeFor(const Status& st) {
  return 10 + static_cast<int>(st.code());
}

/// Report a failed translation: the status class and message, then —
/// for CUDA input, where the Table 3 classifier applies — the failure
/// catalog's triage of the source, so the user sees *which category* of
/// feature blocked the translation rather than only the first error.
int FailCuda(const Status& st, const DiagnosticEngine& diags,
             const std::string& source,
             const translator::TranslateOptions& opts) {
  fprintf(stderr, "error [%s]: %s\n", StatusCodeName(st.code()),
          std::string(st.message()).c_str());
  auto c = translator::ClassifyCudaApplication(source, opts);
  if (!c.translatable) {
    fprintf(stderr, "failure classification (Table 3):\n");
    for (const auto& issue : c.issues)
      fprintf(stderr, "  [%s] %s\n",
              translator::FailureCategoryName(issue.category),
              issue.evidence.c_str());
  } else {
    fputs(diags.ToString().c_str(), stderr);
  }
  return ExitCodeFor(st);
}

int FailOpenCl(const Status& st, const DiagnosticEngine& diags) {
  fprintf(stderr, "error [%s]: %s\n%s", StatusCodeName(st.code()),
          std::string(st.message()).c_str(), diags.ToString().c_str());
  return ExitCodeFor(st);
}

/// --profile: a built-in launch/copy workload plus one device query run
/// through the CUDA→OpenCL wrapper on the simulated Titan, then the
/// per-kernel summary and wrapper-overhead attribution from the trace
/// recorder. The session also honors BRIDGECL_TRACE for the JSON file.
int ProfileDemo() {
  simgpu::Device device(simgpu::TitanProfile());
  trace::SessionOptions topt = trace::SessionOptionsFromEnv();
  topt.summary = false;  // the summary goes to stdout here, not stderr
  trace::TraceSession session(device, topt);
  auto cl = mocl::CreateNativeClApi(device);
  auto cu = cu2cl::CreateCudaOnClApi(*cl);
  static constexpr char kNoop[] =
      "__global__ void noop(int* p) { if (threadIdx.x == 0) p[0] += 1; }";
  auto fail = [](const Status& st) {
    fprintf(stderr, "profile workload failed: %s\n", st.ToString().c_str());
    return 1;
  };
  Status st = cu->RegisterModule(kNoop);
  if (!st.ok()) return fail(st);
  auto p = cu->Malloc(64);
  if (!p.ok()) return fail(p.status());
  int v = 0;
  for (int i = 0; i < 16; ++i) {
    std::vector<mcuda::LaunchArg> args = {mcuda::LaunchArg::Ptr(*p)};
    st = cu->LaunchKernel("noop", simgpu::Dim3(4), simgpu::Dim3(64), 0,
                          args);
    if (!st.ok()) return fail(st);
    st = cu->Memcpy(&v, *p, 4, mcuda::MemcpyKind::kDeviceToHost);
    if (!st.ok()) return fail(st);
  }
  if (!cu->GetDeviceProperties().ok()) return 1;
  fputs(trace::SummaryTable(session.recorder()).c_str(), stdout);
  st = session.Flush();
  if (!st.ok()) {
    fprintf(stderr, "cannot write trace: %s\n", st.ToString().c_str());
    return 3;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  enum class Mode { kNone, kToCuda, kToOpenCl, kHost, kClassify, kProfile };
  Mode mode = Mode::kNone;
  translator::TranslateOptions opts;
  std::string file;
  std::string out_dir;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--to=cuda") {
      mode = Mode::kToCuda;
    } else if (arg == "--to=opencl") {
      mode = Mode::kToOpenCl;
    } else if (arg == "--host") {
      mode = Mode::kHost;
    } else if (arg == "--classify") {
      mode = Mode::kClassify;
    } else if (arg == "--profile") {
      mode = Mode::kProfile;
    } else if (arg == "--emulate-atomics") {
      opts.allow_atomic_emulation = true;
    } else if (arg == "-o") {
      if (i + 1 >= argc) return Usage();
      out_dir = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return Usage();
    } else {
      file = arg;
    }
  }
  if (mode == Mode::kNone) return Usage();
  if (mode == Mode::kProfile) return ProfileDemo();

  std::string source;
  if (file.empty()) {
    source = ReadAll(std::cin);
  } else {
    std::ifstream in(file);
    if (!in) {
      fprintf(stderr, "cannot open %s\n", file.c_str());
      return 3;
    }
    source = ReadAll(in);
  }

  DiagnosticEngine diags;
  switch (mode) {
    case Mode::kToCuda: {
      auto r = translator::TranslateOpenClToCuda(source, diags, opts);
      if (!r.ok()) return FailOpenCl(r.status(), diags);
      fputs(r->source.c_str(), stdout);
      return 0;
    }
    case Mode::kToOpenCl: {
      auto r = translator::TranslateCudaToOpenCl(source, diags, opts);
      if (!r.ok()) return FailCuda(r.status(), diags, source, opts);
      fputs(r->source.c_str(), stdout);
      return 0;
    }
    case Mode::kHost: {
      auto r = translator::RewriteCudaHostCode(source, diags, opts);
      if (!r.ok()) return FailCuda(r.status(), diags, source, opts);
      std::string stem = file.empty() ? "out" : file;
      // Strip any directory component for the output names.
      size_t slash = stem.find_last_of('/');
      if (slash != std::string::npos) stem = stem.substr(slash + 1);
      if (!out_dir.empty()) {
        // Figure 3's file pair: <stem>.cl (device) + <stem>.cpp (host).
        std::string base = out_dir + "/" + stem;
        std::ofstream dev(base + ".cl");
        std::ofstream host(base + ".cpp");
        if (!dev || !host) {
          fprintf(stderr, "cannot write into %s\n", out_dir.c_str());
          return 3;
        }
        dev << r->device_source;
        host << r->host_source;
        printf("wrote %s.cl and %s.cpp\n", base.c_str(), base.c_str());
        return 0;
      }
      printf("/* ===== %s.cl (device) ===== */\n%s\n", stem.c_str(),
             r->device_source.c_str());
      printf("/* ===== %s.cpp (host) ===== */\n%s\n", stem.c_str(),
             r->host_source.c_str());
      return 0;
    }
    case Mode::kClassify: {
      auto c = translator::ClassifyCudaApplication(source, opts);
      if (c.translatable) {
        printf("translatable to OpenCL (%zu kernels)\n",
               c.translation.kernels.size());
        for (const auto& k : c.translation.kernels)
          printf("  kernel %s: %d params%s, %zu textures, %zu symbols\n",
                 k.name.c_str(), k.original_param_count,
                 k.has_dynamic_shared ? " + dynamic shared" : "",
                 k.texture_params.size(), k.symbol_params.size());
        return 0;
      }
      printf("NOT translatable to OpenCL:\n");
      for (const auto& issue : c.issues)
        printf("  [%s] %s\n",
               translator::FailureCategoryName(issue.category),
               issue.evidence.c_str());
      return 10 + static_cast<int>(StatusCode::kUntranslatable);
    }
    case Mode::kNone:
    case Mode::kProfile:  // handled above
      break;
  }
  return Usage();
}
