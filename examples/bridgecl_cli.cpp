// bridgecl: the translator as a command-line tool.
//
//   bridgecl --to=cuda   kernel.cl          # OpenCL C -> CUDA device code
//   bridgecl --to=opencl kernel.cu          # CUDA -> OpenCL device code
//   bridgecl --host      main.cu            # split + rewrite a mixed file
//   bridgecl --host -o out/ main.cu         # write main.cu.cl + main.cu.cpp
//   bridgecl --classify  main.cu            # Table 3-style triage
//   bridgecl --to=opencl --emulate-atomics kernel.cu
//   bridgecl --profile                      # trace a wrapped demo workload
//   bridgecl --snapshot-out=ckpt.sgsnap     # image a demo workload midway
//   bridgecl --snapshot-in=ckpt.sgsnap --snapshot-profile=hd7970
//
// Reads from stdin when no file is given. Prints translated source on
// stdout; diagnostics on stderr. --profile takes no input: it runs a
// built-in launch/copy workload through the CUDA→OpenCL wrapper on the
// simulated device and prints the trace summary (docs/OBSERVABILITY.md);
// BRIDGECL_TRACE=<file> additionally writes the Chrome trace JSON.
// --snapshot-out/--snapshot-in run a built-in resumable workload and
// demonstrate checkpoint/restore and cross-profile migration
// (docs/SNAPSHOT.md).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cu2cl/cuda_on_cl.h"
#include "mcuda/cuda_api.h"
#include "mocl/cl_api.h"
#include "simgpu/device.h"
#include "snapshot/snapshot.h"
#include "trace/exporters.h"
#include "trace/session.h"
#include "translator/classifier.h"
#include "translator/host_rewriter.h"
#include "translator/translate.h"

using namespace bridgecl;

namespace {

int Usage() {
  fprintf(stderr,
          "usage: bridgecl [--to=cuda|opencl] [--host] [--classify]\n"
          "                [--profile] [--emulate-atomics] [file]\n"
          "                [--snapshot-out=FILE] [--snapshot-in=FILE]\n"
          "                [--snapshot-profile=titan|hd7970]\n"
          "exit codes: 0 ok, 2 usage, 3 i/o, 10+N translation failure\n"
          "            where N is the StatusCode (untranslatable = %d)\n",
          10 + static_cast<int>(StatusCode::kUntranslatable));
  return 2;
}

std::string ReadAll(std::istream& in) {
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Scripted callers branch on the failure kind: each StatusCode gets its
/// own exit code, above the usage (2) and file-i/o (3) codes.
int ExitCodeFor(const Status& st) {
  return 10 + static_cast<int>(st.code());
}

/// Report a failed translation: the status class and message, then —
/// for CUDA input, where the Table 3 classifier applies — the failure
/// catalog's triage of the source, so the user sees *which category* of
/// feature blocked the translation rather than only the first error.
int FailCuda(const Status& st, const DiagnosticEngine& diags,
             const std::string& source,
             const translator::TranslateOptions& opts) {
  fprintf(stderr, "error [%s]: %s\n", StatusCodeName(st.code()),
          std::string(st.message()).c_str());
  auto c = translator::ClassifyCudaApplication(source, opts);
  if (!c.translatable) {
    fprintf(stderr, "failure classification (Table 3):\n");
    for (const auto& issue : c.issues)
      fprintf(stderr, "  [%s] %s\n",
              translator::FailureCategoryName(issue.category),
              issue.evidence.c_str());
  } else {
    fputs(diags.ToString().c_str(), stderr);
  }
  return ExitCodeFor(st);
}

int FailOpenCl(const Status& st, const DiagnosticEngine& diags) {
  fprintf(stderr, "error [%s]: %s\n%s", StatusCodeName(st.code()),
          std::string(st.message()).c_str(), diags.ToString().c_str());
  return ExitCodeFor(st);
}

/// --profile: a built-in launch/copy workload plus one device query run
/// through the CUDA→OpenCL wrapper on the simulated Titan, then the
/// per-kernel summary and wrapper-overhead attribution from the trace
/// recorder. The session also honors BRIDGECL_TRACE for the JSON file.
int ProfileDemo() {
  simgpu::Device device(simgpu::TitanProfile());
  trace::SessionOptions topt = trace::SessionOptionsFromEnv();
  topt.summary = false;  // the summary goes to stdout here, not stderr
  trace::TraceSession session(device, topt);
  auto cl = mocl::CreateNativeClApi(device);
  auto cu = cu2cl::CreateCudaOnClApi(*cl);
  static constexpr char kNoop[] =
      "__global__ void noop(int* p) { if (threadIdx.x == 0) p[0] += 1; }";
  auto fail = [](const Status& st) {
    fprintf(stderr, "profile workload failed: %s\n", st.ToString().c_str());
    return 1;
  };
  Status st = cu->RegisterModule(kNoop);
  if (!st.ok()) return fail(st);
  auto p = cu->Malloc(64);
  if (!p.ok()) return fail(p.status());
  int v = 0;
  for (int i = 0; i < 16; ++i) {
    std::vector<mcuda::LaunchArg> args = {mcuda::LaunchArg::Ptr(*p)};
    st = cu->LaunchKernel("noop", simgpu::Dim3(4), simgpu::Dim3(64), 0,
                          args);
    if (!st.ok()) return fail(st);
    st = cu->Memcpy(&v, *p, 4, mcuda::MemcpyKind::kDeviceToHost);
    if (!st.ok()) return fail(st);
  }
  if (!cu->GetDeviceProperties().ok()) return 1;
  fputs(trace::SummaryTable(session.recorder()).c_str(), stdout);
  st = session.Flush();
  if (!st.ok()) {
    fprintf(stderr, "cannot write trace: %s\n", st.ToString().c_str());
    return 3;
  }
  return 0;
}

/// --snapshot-out / --snapshot-in: device snapshot & live migration demo
/// (docs/SNAPSHOT.md). A fixed 32-step CUDA workload accumulates into
/// __device__ globals; the progress counter itself lives on the device,
/// so a restored run knows where to resume without any host-side state.
/// --snapshot-out images the context just before step 12 and then
/// finishes in-process; --snapshot-in resumes from the image — optionally
/// on a different device profile (--snapshot-profile=hd7970) — and runs
/// the remaining steps. Both print the same "final:" line, so a
/// same-profile resume can be diffed against the original run for
/// bit-identity (the clock line differs across profiles: migration
/// recomputes timing for the new device model).
constexpr int kSnapTotalSteps = 32;
constexpr int kSnapAtStep = 12;
constexpr char kSnapSource[] = R"(
__device__ int step_count;
__device__ int acc[256];
__global__ void step() {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  acc[i] = acc[i] + i + 1;
  if (i == 0) step_count = step_count + 1;
}
)";

int SnapshotFail(const Status& st) {
  fprintf(stderr, "snapshot workload failed: %s\n", st.ToString().c_str());
  return ExitCodeFor(st);
}

int SnapshotDemo(const std::string& out_path, const std::string& in_path,
                 const std::string& profile_name) {
  if (profile_name != "titan" && profile_name != "hd7970") {
    fprintf(stderr, "unknown --snapshot-profile=%s (want titan or hd7970)\n",
            profile_name.c_str());
    return 2;
  }
  simgpu::Device device(profile_name == "hd7970" ? simgpu::HD7970Profile()
                                                 : simgpu::TitanProfile());
  auto cu = mcuda::CreateNativeCudaApi(device);

  int start = 0;
  if (!in_path.empty()) {
    // The image carries the module cache and symbol layout, so no
    // RegisterModule is needed — the restored context is ready to launch.
    Status st = cu->Restore(in_path);
    if (!st.ok()) return SnapshotFail(st);
    // Every kernel this workload launches is one step, so the restored
    // launch counter is the step counter. Reading it from device stats
    // (rather than MemcpyFromSymbol) charges no simulated time, keeping a
    // same-profile resume bit-identical to the uninterrupted run.
    start = static_cast<int>(device.stats().kernels_launched);
    printf("restored %s at step %d onto %s\n", in_path.c_str(), start,
           device.profile().name.c_str());
  } else {
    Status st = cu->RegisterModule(kSnapSource);
    if (!st.ok()) return SnapshotFail(st);
    const std::vector<int> zeros(256, 0);
    st = cu->MemcpyToSymbol("step_count", zeros.data(), sizeof(int));
    if (!st.ok()) return SnapshotFail(st);
    st = cu->MemcpyToSymbol("acc", zeros.data(), zeros.size() * sizeof(int));
    if (!st.ok()) return SnapshotFail(st);
  }

  for (int s = start; s < kSnapTotalSteps; ++s) {
    if (s == kSnapAtStep && !out_path.empty()) {
      Status st = cu->Snapshot(out_path);
      if (!st.ok()) return SnapshotFail(st);
      printf("wrote %s at step %d\n", out_path.c_str(), s);
    }
    Status st = cu->LaunchKernel("step", simgpu::Dim3(4), simgpu::Dim3(64),
                                 0, {});
    if (!st.ok()) return SnapshotFail(st);
  }
  Status st = cu->DeviceSynchronize();
  if (!st.ok()) return SnapshotFail(st);

  int count = 0;
  int acc[256] = {};
  st = cu->MemcpyFromSymbol(&count, "step_count", sizeof(count));
  if (!st.ok()) return SnapshotFail(st);
  st = cu->MemcpyFromSymbol(acc, "acc", sizeof(acc));
  if (!st.ok()) return SnapshotFail(st);
  const uint64_t digest =
      snapshot::Fnv1a(std::as_bytes(std::span<const int>(acc)));
  printf("final: steps=%d acc=%016llx kernels=%llu\n", count,
         static_cast<unsigned long long>(digest),
         static_cast<unsigned long long>(device.stats().kernels_launched));
  printf("device: profile=%s clock_us=%.3f\n", device.profile().name.c_str(),
         cu->NowUs());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  enum class Mode { kNone, kToCuda, kToOpenCl, kHost, kClassify, kProfile };
  Mode mode = Mode::kNone;
  translator::TranslateOptions opts;
  std::string file;
  std::string out_dir;
  std::string snap_out, snap_in, snap_profile = "titan";

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--to=cuda") {
      mode = Mode::kToCuda;
    } else if (arg == "--to=opencl") {
      mode = Mode::kToOpenCl;
    } else if (arg == "--host") {
      mode = Mode::kHost;
    } else if (arg == "--classify") {
      mode = Mode::kClassify;
    } else if (arg == "--profile") {
      mode = Mode::kProfile;
    } else if (arg == "--emulate-atomics") {
      opts.allow_atomic_emulation = true;
    } else if (arg.rfind("--snapshot-out=", 0) == 0) {
      snap_out = arg.substr(strlen("--snapshot-out="));
    } else if (arg.rfind("--snapshot-in=", 0) == 0) {
      snap_in = arg.substr(strlen("--snapshot-in="));
    } else if (arg.rfind("--snapshot-profile=", 0) == 0) {
      snap_profile = arg.substr(strlen("--snapshot-profile="));
    } else if (arg == "-o") {
      if (i + 1 >= argc) return Usage();
      out_dir = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return Usage();
    } else {
      file = arg;
    }
  }
  if (!snap_out.empty() || !snap_in.empty())
    return SnapshotDemo(snap_out, snap_in, snap_profile);
  if (mode == Mode::kNone) return Usage();
  if (mode == Mode::kProfile) return ProfileDemo();

  std::string source;
  if (file.empty()) {
    source = ReadAll(std::cin);
  } else {
    std::ifstream in(file);
    if (!in) {
      fprintf(stderr, "cannot open %s\n", file.c_str());
      return 3;
    }
    source = ReadAll(in);
  }

  DiagnosticEngine diags;
  switch (mode) {
    case Mode::kToCuda: {
      auto r = translator::TranslateOpenClToCuda(source, diags, opts);
      if (!r.ok()) return FailOpenCl(r.status(), diags);
      fputs(r->source.c_str(), stdout);
      return 0;
    }
    case Mode::kToOpenCl: {
      auto r = translator::TranslateCudaToOpenCl(source, diags, opts);
      if (!r.ok()) return FailCuda(r.status(), diags, source, opts);
      fputs(r->source.c_str(), stdout);
      return 0;
    }
    case Mode::kHost: {
      auto r = translator::RewriteCudaHostCode(source, diags, opts);
      if (!r.ok()) return FailCuda(r.status(), diags, source, opts);
      std::string stem = file.empty() ? "out" : file;
      // Strip any directory component for the output names.
      size_t slash = stem.find_last_of('/');
      if (slash != std::string::npos) stem = stem.substr(slash + 1);
      if (!out_dir.empty()) {
        // Figure 3's file pair: <stem>.cl (device) + <stem>.cpp (host).
        std::string base = out_dir + "/" + stem;
        std::ofstream dev(base + ".cl");
        std::ofstream host(base + ".cpp");
        if (!dev || !host) {
          fprintf(stderr, "cannot write into %s\n", out_dir.c_str());
          return 3;
        }
        dev << r->device_source;
        host << r->host_source;
        printf("wrote %s.cl and %s.cpp\n", base.c_str(), base.c_str());
        return 0;
      }
      printf("/* ===== %s.cl (device) ===== */\n%s\n", stem.c_str(),
             r->device_source.c_str());
      printf("/* ===== %s.cpp (host) ===== */\n%s\n", stem.c_str(),
             r->host_source.c_str());
      return 0;
    }
    case Mode::kClassify: {
      auto c = translator::ClassifyCudaApplication(source, opts);
      if (c.translatable) {
        printf("translatable to OpenCL (%zu kernels)\n",
               c.translation.kernels.size());
        for (const auto& k : c.translation.kernels)
          printf("  kernel %s: %d params%s, %zu textures, %zu symbols\n",
                 k.name.c_str(), k.original_param_count,
                 k.has_dynamic_shared ? " + dynamic shared" : "",
                 k.texture_params.size(), k.symbol_params.size());
        return 0;
      }
      printf("NOT translatable to OpenCL:\n");
      for (const auto& issue : c.issues)
        printf("  [%s] %s\n",
               translator::FailureCategoryName(issue.category),
               issue.evidence.c_str());
      return 10 + static_cast<int>(StatusCode::kUntranslatable);
    }
    case Mode::kNone:
    case Mode::kProfile:  // handled above
      break;
  }
  return Usage();
}
