// Image-processing pipeline through the §5 texture translation: a CUDA
// program that samples a 2D texture (bilinear-style access pattern) runs
// unchanged on an AMD-profile device through the CUDA→OpenCL wrapper —
// texture references become image + sampler kernel arguments.
//
//   build/examples/image_pipeline
#include <cmath>
#include <cstdio>
#include <vector>

#include "cu2cl/cuda_on_cl.h"
#include "mcuda/cuda_api.h"
#include "mocl/cl_api.h"
#include "simgpu/device.h"
#include "translator/translate.h"

using namespace bridgecl;
using simgpu::Dim3;

namespace {

constexpr char kCudaSource[] = R"(
texture<float, 2, cudaReadModeElementType> src_tex;

__global__ void sobel_ish(float* out, int w, int h) {
  int x = blockIdx.x * blockDim.x + threadIdx.x;
  int y = blockIdx.y * blockDim.y + threadIdx.y;
  if (x >= w || y >= h) return;
  float gx = tex2D(src_tex, (float)(x + 1), (float)y) -
             tex2D(src_tex, (float)(x - 1), (float)y);
  float gy = tex2D(src_tex, (float)x, (float)(y + 1)) -
             tex2D(src_tex, (float)x, (float)(y - 1));
  out[y * w + x] = sqrtf(gx * gx + gy * gy);
}
)";

/// An ordinary CUDA host program (after the static <<<>>> rewrite).
Status RunPipeline(mcuda::CudaApi& cu, std::vector<float>* edges) {
  const int w = 16, h = 16;
  std::vector<float> img(w * h);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x)
      img[y * w + x] = (x >= w / 2) ? 1.0f : 0.0f;  // vertical edge

  BRIDGECL_RETURN_IF_ERROR(cu.RegisterModule(kCudaSource));
  BRIDGECL_ASSIGN_OR_RETURN(void* arr, cu.MallocArray(
                                           {lang::ScalarKind::kFloat, 1},
                                           w, h));
  BRIDGECL_RETURN_IF_ERROR(cu.MemcpyToArray(arr, img.data(), w * h * 4));
  BRIDGECL_RETURN_IF_ERROR(cu.BindTextureToArray("src_tex", arr));
  BRIDGECL_ASSIGN_OR_RETURN(void* out, cu.Malloc(w * h * 4));
  std::vector<mcuda::LaunchArg> args = {mcuda::LaunchArg::Ptr(out),
                                        mcuda::LaunchArg::Value<int>(w),
                                        mcuda::LaunchArg::Value<int>(h)};
  BRIDGECL_RETURN_IF_ERROR(
      cu.LaunchKernel("sobel_ish", Dim3(w / 8, h / 8), Dim3(8, 8), 0, args));
  edges->resize(w * h);
  return cu.Memcpy(edges->data(), out, w * h * 4,
                   mcuda::MemcpyKind::kDeviceToHost);
}

void PrintRow(const std::vector<float>& edges, int w, int row) {
  printf("  row %2d: ", row);
  for (int x = 0; x < w; ++x)
    printf("%c", edges[row * w + x] > 0.5f ? '#' : '.');
  printf("\n");
}

}  // namespace

int main() {
  printf("== BridgeCL image pipeline (S5 texture translation) ==\n\n");

  // Show the translated kernel: the texture reference becomes an
  // image2d_t + sampler_t parameter pair, tex2D becomes read_imagef.
  DiagnosticEngine diags;
  auto tr = translator::TranslateCudaToOpenCl(kCudaSource, diags);
  if (!tr.ok()) {
    fprintf(stderr, "translation failed: %s\n",
            tr.status().ToString().c_str());
    return 1;
  }
  printf("--- translated OpenCL device code ---\n%s\n", tr->source.c_str());

  // Native CUDA on the NVIDIA profile.
  simgpu::Device titan(simgpu::TitanProfile());
  auto native = mcuda::CreateNativeCudaApi(titan);
  std::vector<float> titan_edges;
  if (!RunPipeline(*native, &titan_edges).ok()) return 1;

  // The same program through the CUDA->OpenCL wrapper on the AMD profile,
  // which cannot run CUDA at all (the paper's portability argument).
  simgpu::Device amd(simgpu::HD7970Profile());
  auto cl = mocl::CreateNativeClApi(amd);
  auto wrapped = cu2cl::CreateCudaOnClApi(*cl);
  std::vector<float> amd_edges;
  Status st = RunPipeline(*wrapped, &amd_edges);
  if (!st.ok()) {
    fprintf(stderr, "wrapper run failed: %s\n", st.ToString().c_str());
    return 1;
  }

  printf("--- edge map, native CUDA on %s ---\n", titan.profile().name.c_str());
  PrintRow(titan_edges, 16, 7);
  printf("--- edge map, CUDA-on-OpenCL on %s ---\n",
         amd.profile().name.c_str());
  PrintRow(amd_edges, 16, 7);
  bool equal = titan_edges == amd_edges;
  printf("results identical: %s\n", equal ? "yes" : "NO");
  return equal ? 0 : 1;
}
