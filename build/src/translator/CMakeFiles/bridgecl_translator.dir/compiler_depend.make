# Empty compiler generated dependencies file for bridgecl_translator.
# This may be replaced when dependencies are built.
