# Empty compiler generated dependencies file for bridgecl_apps.
# This may be replaced when dependencies are built.
