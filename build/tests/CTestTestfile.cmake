# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/lang_lexer_test[1]_include.cmake")
include("/root/repo/build/tests/lang_parser_test[1]_include.cmake")
include("/root/repo/build/tests/lang_sema_test[1]_include.cmake")
include("/root/repo/build/tests/lang_printer_test[1]_include.cmake")
include("/root/repo/build/tests/simgpu_test[1]_include.cmake")
include("/root/repo/build/tests/simgpu_test[2]_include.cmake")
include("/root/repo/build/tests/interp_test[1]_include.cmake")
include("/root/repo/build/tests/interp_test[2]_include.cmake")
include("/root/repo/build/tests/mocl_test[1]_include.cmake")
include("/root/repo/build/tests/mocl_test[2]_include.cmake")
include("/root/repo/build/tests/mcuda_test[1]_include.cmake")
include("/root/repo/build/tests/mcuda_test[2]_include.cmake")
include("/root/repo/build/tests/translator_test[1]_include.cmake")
include("/root/repo/build/tests/wrappers_test[1]_include.cmake")
include("/root/repo/build/tests/wrappers_test[2]_include.cmake")
include("/root/repo/build/tests/host_rewriter_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/failure_catalog_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/figure4_test[1]_include.cmake")
include("/root/repo/build/tests/translator_exec_test[1]_include.cmake")
include("/root/repo/build/tests/failure_injection_test[1]_include.cmake")
include("/root/repo/build/tests/image_translation_test[1]_include.cmake")
include("/root/repo/build/tests/events_test[1]_include.cmake")
include("/root/repo/build/tests/fault_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/fault_sweep_test[2]_include.cmake")
include("/root/repo/build/tests/error_conformance_test[1]_include.cmake")
