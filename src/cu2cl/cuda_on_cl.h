// The paper's CUDA→OpenCL wrapper library (§3.4 Figure 3): the CUDA
// runtime API implemented over any OpenClApi. The device code registered
// by the application is translated CUDA→OpenCL once; following §3.4 the
// translated program is *built* lazily on the first call that needs it
// ("our translation framework builds the device code when any CUDA API
// function is called for the first time at run-time").
//
// Handle propagation (§2, §4): cudaMalloc returns a void* that is really
// a cl_mem handle, cast at run time — the wrapper approach that avoids
// whole-program analysis across separately compiled files.
#pragma once

#include <memory>

#include "mcuda/cuda_api.h"
#include "mocl/cl_api.h"
#include "translator/translate.h"

namespace bridgecl::cu2cl {

struct CudaOnClOptions {
  /// Forwarded to the CUDA→OpenCL translator.
  translator::TranslateOptions translate;
};

/// Create a CudaApi whose every call is serviced by `cl`. The returned
/// object borrows `cl`; it must outlive the wrapper.
std::unique_ptr<mcuda::CudaApi> CreateCudaOnClApi(
    mocl::OpenClApi& cl, const CudaOnClOptions& options = {});

}  // namespace bridgecl::cu2cl
