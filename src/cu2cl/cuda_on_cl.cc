#include "cu2cl/cuda_on_cl.h"

#include <cstring>
#include <unordered_map>

#include "mcuda/cuda_errors.h"
#include "mocl/cl_errors.h"
#include "support/strings.h"
#include "trace/trace.h"

namespace bridgecl::cu2cl {
namespace {

using mcuda::AsCuda;
using mcuda::ChannelDesc;
using mcuda::CudaApi;
using mcuda::CudaDeviceProps;
using mcuda::LaunchArg;
using mcuda::MemcpyKind;
using mocl::ClEvent;
using mocl::ClImageFormat;
using mocl::ClKernel;
using mocl::ClMem;
using mocl::ClProgram;
using mocl::ClQueue;
using mocl::ClSamplerDesc;
using mocl::MemFlags;
using mocl::OpenClApi;
using simgpu::Dim3;
using trace::TraceKind;
using translator::KernelTranslationInfo;
using translator::TranslationResult;

/// Re-express an OpenCL error annotation from the inner CL runtime in the
/// vocabulary of the API this wrapper emulates (the CUDA runtime). The
/// full cross-mapping table is documented in docs/ROBUSTNESS.md; it is
/// the wrapper-direction counterpart of ClFromCuda in cl_on_cuda.cc.
int CudaFromCl(int cl_code) {
  switch (cl_code) {
    case mocl::CL_DEVICE_NOT_AVAILABLE:
      return mcuda::cudaErrorDevicesUnavailable;
    case mocl::CL_MEM_OBJECT_ALLOCATION_FAILURE:
    case mocl::CL_OUT_OF_HOST_MEMORY:
      return mcuda::cudaErrorMemoryAllocation;
    // The CL catch-all execution failure becomes the CUDA catch-all
    // "unspecified launch failure".
    case mocl::CL_OUT_OF_RESOURCES:
      return mcuda::cudaErrorLaunchFailure;
    case mocl::CL_BUILD_PROGRAM_FAILURE:
    case mocl::CL_INVALID_PROGRAM:
    case mocl::CL_INVALID_PROGRAM_EXECUTABLE:
      return mcuda::cudaErrorNoKernelImageForDevice;
    case mocl::CL_INVALID_KERNEL_NAME:
    case mocl::CL_INVALID_KERNEL:
      return mcuda::cudaErrorInvalidDeviceFunction;
    case mocl::CL_INVALID_MEM_OBJECT:
      return mcuda::cudaErrorInvalidDevicePointer;
    case mocl::CL_INVALID_SAMPLER:
      return mcuda::cudaErrorInvalidTexture;
    case mocl::CL_INVALID_WORK_DIMENSION:
    case mocl::CL_INVALID_WORK_GROUP_SIZE:
    case mocl::CL_INVALID_WORK_ITEM_SIZE:
      return mcuda::cudaErrorInvalidConfiguration;
    case mocl::CL_INVALID_EVENT:
      return mcuda::cudaErrorInvalidResourceHandle;
    case mocl::CL_INVALID_OPERATION:
      return mcuda::cudaErrorNotSupported;
    case mocl::CL_INVALID_VALUE:
    case mocl::CL_INVALID_DEVICE:
    case mocl::CL_INVALID_IMAGE_SIZE:
    case mocl::CL_INVALID_ARG_INDEX:
    case mocl::CL_INVALID_ARG_VALUE:
    case mocl::CL_INVALID_ARG_SIZE:
    case mocl::CL_INVALID_KERNEL_ARGS:
    case mocl::CL_INVALID_BUFFER_SIZE:
    case mocl::CL_INVALID_DEVICE_PARTITION_COUNT:
    default:
      return mcuda::cudaErrorInvalidValue;
  }
}

struct SymbolRec {
  ClMem buffer;
  size_t size = 0;
  bool is_constant = false;
};

struct TextureRec {
  ClMem image;
  uint64_t sampler = 0;
  bool bound = false;
};

/// One cudaEvent_t. The legacy cudaEventRecord path stamps a host
/// timestamp (synchronous flows make that exact); recording on a stream
/// instead plants a CL marker event whose profiled end time is the
/// event's completion instant.
struct EventRec {
  double host_us = -1.0;  // legacy host-clock recording; -1 = never
  bool has_cl = false;    // recorded through a stream marker
  ClEvent cl_event;
};

class CudaOnClApi final : public CudaApi {
 public:
  CudaOnClApi(OpenClApi& cl, const CudaOnClOptions& options)
      : cl_(cl), options_(options) {}

  /// Shared trace: wrapper spans record into the inner CL runtime's
  /// recorder, so forwarded native calls nest under them naturally.
  trace::TraceRecorder* Tracer() const override { return cl_.Tracer(); }

  /// bridgeclSnapshot/bridgeclRestore forward to the inner CL runtime:
  /// the image records the native layer actually driving the device, so a
  /// snapshot taken through this wrapper restores through any CL-backed
  /// binding. The inner CL annotation is re-sealed into the cudaError
  /// vocabulary at the boundary, like every other forwarded call.
  Status Snapshot(const std::string& path) override {
    auto span = Span(TraceKind::kApiCall, "bridgeclSnapshot");
    return span.Sealed(
        Seal(cl_.Snapshot(path), mcuda::cudaErrorMemoryAllocation));
  }
  Status Restore(const std::string& path) override {
    auto span = Span(TraceKind::kApiCall, "bridgeclRestore");
    return span.Sealed(
        Seal(cl_.Restore(path), mcuda::cudaErrorMemoryAllocation));
  }

  Status RegisterModule(const std::string& cuda_source) override {
    auto span = Span(TraceKind::kApiCall, "cudaRegisterFatBinary");
    // Translate now (static source-to-source step, Figure 3)...
    DiagnosticEngine diags;
    auto tr =
        translator::TranslateCudaToOpenCl(cuda_source, diags,
                                          options_.translate);
    if (!tr.ok())
      return AsCuda(Status(tr.status().code(),
                           tr.status().message() + "\n" + diags.ToString()),
                    mcuda::cudaErrorInvalidDeviceFunction);
    translation_ = std::move(*tr);
    // ...but defer clBuildProgram to the first use (§3.4).
    built_ = false;
    // Pre-create the buffers standing in for __device__/__constant__
    // statics (§4.3) so MemcpyToSymbol works before the first launch.
    for (const auto& k : translation_.kernels) {
      for (const auto& s : k.symbol_params) {
        if (symbols_.count(s.name)) continue;
        BRIDGECL_ASSIGN_OR_RETURN(
            ClMem buf,
            Seal(cl_.CreateBuffer(s.is_constant ? MemFlags::kReadOnly
                                                : MemFlags::kReadWrite,
                                  s.byte_size, nullptr),
                 mcuda::cudaErrorMemoryAllocation));
        symbols_[s.name] = SymbolRec{buf, s.byte_size, s.is_constant};
      }
    }
    return OkStatus();
  }

  StatusOr<void*> Malloc(size_t size) override {
    auto span = Span(TraceKind::kApiCall, "cudaMalloc");
    BRIDGECL_ASSIGN_OR_RETURN(
        ClMem mem, Seal(cl_.CreateBuffer(MemFlags::kReadWrite, size, nullptr),
                        mcuda::cudaErrorMemoryAllocation));
    buffer_sizes_[mem.handle] = size;
    // §4: the cl_mem handle is cast to void* and handed to the program.
    return reinterpret_cast<void*>(mem.handle);
  }

  Status Free(void* ptr) override {
    auto span = Span(TraceKind::kApiCall, "cudaFree");
    ClMem mem{reinterpret_cast<uint64_t>(ptr)};
    // cudaFree on an unknown pointer is cudaErrorInvalidDevicePointer;
    // a fault while releasing a known buffer keeps its mapped code.
    BRIDGECL_RETURN_IF_ERROR(
        Seal(cl_.ReleaseMemObject(mem), mcuda::cudaErrorUnknown));
    buffer_sizes_.erase(mem.handle);
    return OkStatus();
  }

  Status Memcpy(void* dst, const void* src, size_t size,
                MemcpyKind kind) override {
    auto span = Span(TraceKindForMemcpy(kind), "cudaMemcpy");
    span.SetBytes(size);
    switch (kind) {
      case MemcpyKind::kHostToDevice:
        return span.Sealed(
            Seal(cl_.EnqueueWriteBuffer(
                     ClMem{reinterpret_cast<uint64_t>(dst)}, 0, size, src),
                 mcuda::cudaErrorLaunchFailure));
      case MemcpyKind::kDeviceToHost:
        return span.Sealed(Seal(
            cl_.EnqueueReadBuffer(
                ClMem{reinterpret_cast<uint64_t>(
                    const_cast<void*>(src) == nullptr
                        ? 0
                        : reinterpret_cast<uint64_t>(src))},
                0, size, dst),
            mcuda::cudaErrorLaunchFailure));
      case MemcpyKind::kDeviceToDevice:
        return span.Sealed(
            Seal(cl_.EnqueueCopyBuffer(
                     ClMem{reinterpret_cast<uint64_t>(src)},
                     ClMem{reinterpret_cast<uint64_t>(dst)}, 0, 0, size),
                 mcuda::cudaErrorLaunchFailure));
      case MemcpyKind::kHostToHost:
        std::memmove(dst, src, size);
        return OkStatus();
    }
    return span.Sealed(AsCuda(InvalidArgumentError("bad memcpy kind"),
                              mcuda::cudaErrorInvalidMemcpyDirection));
  }

  Status MemcpyToSymbol(const std::string& symbol, const void* src,
                        size_t size, size_t offset) override {
    auto span = Span(TraceKind::kH2D, "cudaMemcpyToSymbol");
    span.SetBytes(size);
    // §4.3: the static symbol became a dynamically allocated buffer.
    auto it = symbols_.find(symbol);
    if (it == symbols_.end())
      return AsCuda(NotFoundError("no device symbol '" + symbol +
                                  "' (it may be unused by every kernel)"),
                    mcuda::cudaErrorInvalidSymbol);
    if (offset + size > it->second.size)
      return AsCuda(OutOfRangeError("copy beyond symbol '" + symbol + "'"),
                    mcuda::cudaErrorInvalidValue);
    return Seal(cl_.EnqueueWriteBuffer(it->second.buffer, offset, size, src),
                mcuda::cudaErrorLaunchFailure);
  }

  Status MemcpyFromSymbol(void* dst, const std::string& symbol, size_t size,
                          size_t offset) override {
    auto span = Span(TraceKind::kD2H, "cudaMemcpyFromSymbol");
    span.SetBytes(size);
    auto it = symbols_.find(symbol);
    if (it == symbols_.end())
      return AsCuda(NotFoundError("no device symbol '" + symbol + "'"),
                    mcuda::cudaErrorInvalidSymbol);
    if (offset + size > it->second.size)
      return AsCuda(OutOfRangeError("copy beyond symbol '" + symbol + "'"),
                    mcuda::cudaErrorInvalidValue);
    return Seal(cl_.EnqueueReadBuffer(it->second.buffer, offset, size, dst),
                mcuda::cudaErrorLaunchFailure);
  }

  StatusOr<std::pair<size_t, size_t>> MemGetInfo() override {
    // §3.7 / Table 3 (nn, mummergpu): OpenCL has no API that reports the
    // free global memory, so this wrapper cannot be implemented.
    return AsCuda(
        UnimplementedError("cudaMemGetInfo has no OpenCL counterpart (§3.7)"),
        mcuda::cudaErrorNotSupported);
  }

  Status LaunchKernel(const std::string& kernel, Dim3 grid, Dim3 block,
                      size_t shared_bytes,
                      std::span<const LaunchArg> args) override {
    return LaunchCommon(kernel, grid, block, shared_bytes, args, nullptr);
  }

  Status LaunchKernelOnStream(const std::string& kernel, Dim3 grid,
                              Dim3 block, size_t shared_bytes,
                              std::span<const LaunchArg> args,
                              void* stream) override {
    BRIDGECL_ASSIGN_OR_RETURN(ClQueue q, QueueFor(stream));
    return LaunchCommon(kernel, grid, block, shared_bytes, args, &q);
  }

 private:
  /// The static rewriter's launch sequence (§3.5), shared by the legacy
  /// synchronous path (queue == nullptr: clEnqueueNDRangeKernel) and the
  /// stream path (asynchronous enqueue on the stream's command queue).
  Status LaunchCommon(const std::string& kernel, Dim3 grid, Dim3 block,
                      size_t shared_bytes, std::span<const LaunchArg> args,
                      const ClQueue* queue) {
    auto span = Span(TraceKind::kKernelLaunch, "cudaLaunchKernel");
    BRIDGECL_RETURN_IF_ERROR(EnsureBuilt());
    const KernelTranslationInfo* info = translation_.Find(kernel);
    if (info == nullptr)
      return AsCuda(NotFoundError("no kernel '" + kernel + "' registered"),
                    mcuda::cudaErrorInvalidDeviceFunction);
    if (static_cast<int>(args.size()) != info->original_param_count)
      return AsCuda(InvalidArgumentError(StrFormat(
                        "kernel '%s' expects %d arguments, got %zu",
                        kernel.c_str(), info->original_param_count,
                        args.size())),
                    mcuda::cudaErrorInvalidValue);
    BRIDGECL_ASSIGN_OR_RETURN(ClKernel k, KernelFor(kernel));

    // The static rewriter turned `k<<<g,b,s>>>(a0..aN)` into this launch
    // sequence (§3.5): clSetKernelArg per argument, then the appended
    // parameters, then clEnqueueNDRangeKernel.
    int index = 0;
    for (const LaunchArg& a : args) {
      BRIDGECL_RETURN_IF_ERROR(
          Seal(cl_.SetKernelArg(k, index++, a.bytes.size(), a.bytes.data()),
               mcuda::cudaErrorInvalidValue));
    }
    if (info->has_dynamic_shared) {
      BRIDGECL_RETURN_IF_ERROR(
          Seal(cl_.SetKernelArg(k, index++, shared_bytes, nullptr),
               mcuda::cudaErrorInvalidValue));
    } else if (shared_bytes != 0) {
      return AsCuda(
          InvalidArgumentError(
              "launch passes dynamic shared memory but the kernel declares "
              "no extern __shared__ variable"),
          mcuda::cudaErrorInvalidValue);
    }
    for (const std::string& tex : info->texture_params) {
      auto it = textures_.find(tex);
      if (it == textures_.end() || !it->second.bound)
        return AsCuda(FailedPreconditionError("texture reference '" + tex +
                                              "' used but not bound"),
                      mcuda::cudaErrorInvalidTexture);
      BRIDGECL_RETURN_IF_ERROR(
          Seal(cl_.SetKernelArg(k, index++, sizeof(ClMem),
                                &it->second.image),
               mcuda::cudaErrorInvalidValue));
      BRIDGECL_RETURN_IF_ERROR(
          Seal(cl_.SetKernelArg(k, index++, sizeof(uint64_t),
                                &it->second.sampler),
               mcuda::cudaErrorInvalidValue));
    }
    for (const auto& sym : info->symbol_params) {
      auto it = symbols_.find(sym.name);
      if (it == symbols_.end())
        return AsCuda(
            InternalError("missing symbol buffer for '" + sym.name + "'"),
            mcuda::cudaErrorLaunchFailure);
      BRIDGECL_RETURN_IF_ERROR(
          Seal(cl_.SetKernelArg(k, index++, sizeof(ClMem),
                                &it->second.buffer),
               mcuda::cudaErrorInvalidValue));
    }
    size_t gws[3] = {static_cast<size_t>(grid.x) * block.x,
                     static_cast<size_t>(grid.y) * block.y,
                     static_cast<size_t>(grid.z) * block.z};
    size_t lws[3] = {block.x, block.y, block.z};
    Status st = queue == nullptr
                    ? cl_.EnqueueNDRangeKernel(k, 3, gws, lws)
                    : cl_.EnqueueNDRangeKernelOn(*queue, k, 3, gws, lws, {},
                                                 nullptr);
    if (st.ok()) span.SetKernel(kernel, 0, 0);  // details on the native span
    // A device-side assert keeps its CUDA-specific code even though the
    // inner CL layer had to report it as a generic execution failure.
    if (!st.ok() && st.message().find("assert") != std::string::npos)
      return span.Sealed(AsCuda(std::move(st), mcuda::cudaErrorAssert));
    return span.Sealed(
        Seal(std::move(st), mcuda::cudaErrorLaunchOutOfResources));
  }

 public:
  Status DeviceSynchronize() override {
    auto span = Span(TraceKind::kApiCall, "cudaDeviceSynchronize");
    // Legacy clFinish is a device-wide barrier, so this drains every
    // stream's queue, matching cudaDeviceSynchronize.
    return span.Sealed(Seal(cl_.Finish(), mcuda::cudaErrorLaunchFailure));
  }

  // -- streams over command queues (docs/CONCURRENCY.md) ---------------------
  StatusOr<void*> StreamCreate() override {
    auto span = Span(TraceKind::kApiCall, "cudaStreamCreate");
    // cudaStream_t == an in-order cl_command_queue; the queue handle is
    // cast to void* exactly as the paper's handle-cast idiom (§4).
    BRIDGECL_ASSIGN_OR_RETURN(
        ClQueue q,
        Seal(cl_.CreateCommandQueue(0), mcuda::cudaErrorMemoryAllocation));
    live_streams_[q.handle] = q;
    return reinterpret_cast<void*>(q.handle);
  }

  Status StreamDestroy(void* stream) override {
    auto span = Span(TraceKind::kApiCall, "cudaStreamDestroy");
    if (stream == nullptr)
      return AsCuda(InvalidArgumentError("cannot destroy the default stream"),
                    mcuda::cudaErrorInvalidResourceHandle);
    auto it = live_streams_.find(reinterpret_cast<uint64_t>(stream));
    if (it == live_streams_.end())
      return AsCuda(InvalidArgumentError("unknown stream"),
                    mcuda::cudaErrorInvalidResourceHandle);
    // Implicit synchronize: releasing the queue drains it first, so the
    // stream's deferred async errors surface here.
    Status st = Seal(cl_.ReleaseCommandQueue(it->second),
                     mcuda::cudaErrorLaunchFailure);
    live_streams_.erase(it);
    return span.Sealed(std::move(st));
  }

  Status StreamSynchronize(void* stream) override {
    auto span = Span(TraceKind::kApiCall, "cudaStreamSynchronize");
    BRIDGECL_ASSIGN_OR_RETURN(ClQueue q, QueueFor(stream));
    return span.Sealed(Seal(cl_.Finish(q), mcuda::cudaErrorLaunchFailure));
  }

  Status MemcpyAsync(void* dst, const void* src, size_t size, MemcpyKind kind,
                     void* stream) override {
    auto span = Span(TraceKindForMemcpy(kind), "cudaMemcpyAsync");
    span.SetBytes(size);
    BRIDGECL_ASSIGN_OR_RETURN(ClQueue q, QueueFor(stream));
    switch (kind) {
      case MemcpyKind::kHostToDevice:
        return span.Sealed(Seal(
            cl_.EnqueueWriteBufferOn(q, ClMem{reinterpret_cast<uint64_t>(dst)},
                                     0, size, src, /*blocking=*/false, {},
                                     nullptr),
            mcuda::cudaErrorLaunchFailure));
      case MemcpyKind::kDeviceToHost:
        return span.Sealed(Seal(
            cl_.EnqueueReadBufferOn(q, ClMem{reinterpret_cast<uint64_t>(src)},
                                    0, size, dst, /*blocking=*/false, {},
                                    nullptr),
            mcuda::cudaErrorLaunchFailure));
      case MemcpyKind::kDeviceToDevice:
        return span.Sealed(Seal(
            cl_.EnqueueCopyBufferOn(q, ClMem{reinterpret_cast<uint64_t>(src)},
                                    ClMem{reinterpret_cast<uint64_t>(dst)}, 0,
                                    0, size, {}, nullptr),
            mcuda::cudaErrorLaunchFailure));
      case MemcpyKind::kHostToHost:
        // Host-to-host copies are synchronous even on the Async entry
        // point (CUDA semantics).
        std::memmove(dst, src, size);
        return OkStatus();
    }
    return span.Sealed(AsCuda(InvalidArgumentError("bad memcpy kind"),
                              mcuda::cudaErrorInvalidMemcpyDirection));
  }

  Status EventRecordOnStream(void* event, void* stream) override {
    auto span = Span(TraceKind::kApiCall, "cudaEventRecord");
    auto it = events_.find(reinterpret_cast<uint64_t>(event));
    if (it == events_.end())
      return AsCuda(InvalidArgumentError("unknown event"),
                    mcuda::cudaErrorInvalidResourceHandle);
    BRIDGECL_ASSIGN_OR_RETURN(ClQueue q, QueueFor(stream));
    // The CL marker completes when everything enqueued on the queue so
    // far completes — exactly cudaEventRecord's capture semantics.
    BRIDGECL_ASSIGN_OR_RETURN(ClEvent ev,
                              Seal(cl_.EnqueueMarkerWithWaitList(q, {}),
                                   mcuda::cudaErrorLaunchFailure));
    if (it->second.has_cl)
      (void)cl_.ReleaseEvent(it->second.cl_event);  // re-record
    it->second.has_cl = true;
    it->second.cl_event = ev;
    return OkStatus();
  }

  Status StreamWaitEvent(void* stream, void* event) override {
    auto span = Span(TraceKind::kApiCall, "cudaStreamWaitEvent");
    BRIDGECL_ASSIGN_OR_RETURN(ClQueue q, QueueFor(stream));
    auto it = events_.find(reinterpret_cast<uint64_t>(event));
    if (it == events_.end())
      return AsCuda(InvalidArgumentError("unknown event"),
                    mcuda::cudaErrorInvalidResourceHandle);
    if (!it->second.has_cl) return OkStatus();  // unrecorded: no-op (CUDA)
    // A marker with the event in its wait list orders everything later on
    // the queue after the event; the marker's own event is internal.
    BRIDGECL_ASSIGN_OR_RETURN(
        ClEvent marker,
        Seal(cl_.EnqueueMarkerWithWaitList(
                 q, std::span<const ClEvent>(&it->second.cl_event, 1)),
             mcuda::cudaErrorLaunchFailure));
    return span.Sealed(
        Seal(cl_.ReleaseEvent(marker), mcuda::cudaErrorLaunchFailure));
  }

  Status EventSynchronize(void* event) override {
    auto span = Span(TraceKind::kApiCall, "cudaEventSynchronize");
    auto it = events_.find(reinterpret_cast<uint64_t>(event));
    if (it == events_.end())
      return AsCuda(InvalidArgumentError("unknown event"),
                    mcuda::cudaErrorInvalidResourceHandle);
    if (!it->second.has_cl) return OkStatus();  // never recorded: complete
    return span.Sealed(Seal(
        cl_.WaitForEvents(std::span<const ClEvent>(&it->second.cl_event, 1)),
        mcuda::cudaErrorLaunchFailure));
  }

  StatusOr<CudaDeviceProps> GetDeviceProperties() override {
    auto span = Span(TraceKind::kApiCall, "cudaGetDeviceProperties");
    // §6.3 deviceQuery: the wrapper fills cudaDeviceProp by invoking
    // clGetDeviceInfo once per attribute — the measured slowdown.
    CudaDeviceProps p;
    BRIDGECL_ASSIGN_OR_RETURN(
        p.name, Seal(cl_.QueryDeviceInfoString(mocl::ClDeviceAttr::kName),
                     mcuda::cudaErrorInitializationError));
    BRIDGECL_ASSIGN_OR_RETURN(
        uint64_t gm,
        Seal(cl_.QueryDeviceInfoUint(mocl::ClDeviceAttr::kGlobalMemSize),
             mcuda::cudaErrorInitializationError));
    p.total_global_mem = gm;
    BRIDGECL_ASSIGN_OR_RETURN(
        uint64_t lm,
        Seal(cl_.QueryDeviceInfoUint(mocl::ClDeviceAttr::kLocalMemSize),
             mcuda::cudaErrorInitializationError));
    p.shared_mem_per_block = lm;
    BRIDGECL_ASSIGN_OR_RETURN(
        uint64_t cm,
        Seal(cl_.QueryDeviceInfoUint(
                 mocl::ClDeviceAttr::kMaxConstantBufferSize),
             mcuda::cudaErrorInitializationError));
    p.total_const_mem = cm;
    BRIDGECL_ASSIGN_OR_RETURN(
        uint64_t cu,
        Seal(cl_.QueryDeviceInfoUint(mocl::ClDeviceAttr::kMaxComputeUnits),
             mcuda::cudaErrorInitializationError));
    p.multi_processor_count = static_cast<int>(cu);
    BRIDGECL_ASSIGN_OR_RETURN(
        uint64_t wg,
        Seal(cl_.QueryDeviceInfoUint(mocl::ClDeviceAttr::kMaxWorkGroupSize),
             mcuda::cudaErrorInitializationError));
    p.max_threads_per_block = static_cast<int>(wg);
    BRIDGECL_ASSIGN_OR_RETURN(
        uint64_t mhz,
        Seal(cl_.QueryDeviceInfoUint(mocl::ClDeviceAttr::kMaxClockFrequency),
             mcuda::cudaErrorInitializationError));
    p.clock_rate_khz = static_cast<int>(mhz) * 1000;
    BRIDGECL_ASSIGN_OR_RETURN(
        uint64_t i1d,
        Seal(cl_.QueryDeviceInfoUint(
                 mocl::ClDeviceAttr::kImage1dMaxBufferWidth),
             mcuda::cudaErrorInitializationError));
    p.max_texture1d_linear = i1d;
    // OpenCL exposes no warp size / register file attributes; the wrapper
    // reports conventional values.
    p.warp_size = 32;
    p.regs_per_block = 65536;
    p.major = 3;
    p.minor = 5;
    return p;
  }

  // -- textures (§5): texture refs became image+sampler params --------------
  Status BindTexture(const std::string& texref, void* device_ptr,
                     size_t bytes, const ChannelDesc& desc,
                     bool normalized) override {
    auto span = Span(TraceKind::kApiCall, "cudaBindTexture");
    ClImageFormat fmt;
    fmt.elem = desc.elem;
    fmt.channels = desc.channels;
    size_t texel = lang::ScalarByteSize(desc.elem) * desc.channels;
    size_t width = bytes / texel;
    // §5: a 1D linear texture wider than the OpenCL 1D image-buffer
    // maximum cannot be translated (kmeans/leukocyte/hybridsort).
    BRIDGECL_ASSIGN_OR_RETURN(
        ClMem img,
        Seal(cl_.CreateImage1DFromBuffer(
                 fmt, width, ClMem{reinterpret_cast<uint64_t>(device_ptr)}),
             mcuda::cudaErrorMemoryAllocation));
    ClSamplerDesc sd;
    sd.normalized_coords = normalized;
    BRIDGECL_ASSIGN_OR_RETURN(uint64_t sampler,
                              Seal(cl_.CreateSampler(sd),
                                   mcuda::cudaErrorInvalidTexture));
    textures_[texref] = TextureRec{img, sampler, true};
    return OkStatus();
  }

  Status BindTexture2D(const std::string& texref, void* device_ptr,
                       size_t width, size_t height, size_t pitch,
                       const ChannelDesc& desc) override {
    auto span = Span(TraceKind::kApiCall, "cudaBindTexture2D");
    // Snapshot the linear memory into a 2D image (CL 1.2 cannot alias a
    // buffer as a 2D image).
    (void)pitch;
    ClImageFormat fmt;
    fmt.elem = desc.elem;
    fmt.channels = desc.channels;
    size_t texel = lang::ScalarByteSize(desc.elem) * desc.channels;
    size_t bytes = width * height * texel;
    std::vector<std::byte> staging(bytes);
    BRIDGECL_RETURN_IF_ERROR(
        Seal(cl_.EnqueueReadBuffer(
                 ClMem{reinterpret_cast<uint64_t>(device_ptr)}, 0, bytes,
                 staging.data()),
             mcuda::cudaErrorLaunchFailure));
    BRIDGECL_ASSIGN_OR_RETURN(
        ClMem img,
        Seal(cl_.CreateImage2D(MemFlags::kReadOnly, fmt, width, height,
                               staging.data()),
             mcuda::cudaErrorMemoryAllocation));
    BRIDGECL_ASSIGN_OR_RETURN(uint64_t sampler,
                              Seal(cl_.CreateSampler({}),
                                   mcuda::cudaErrorInvalidTexture));
    textures_[texref] = TextureRec{img, sampler, true};
    return OkStatus();
  }

  StatusOr<void*> MallocArray(const ChannelDesc& desc, size_t width,
                              size_t height) override {
    auto span = Span(TraceKind::kApiCall, "cudaMallocArray");
    ClImageFormat fmt;
    fmt.elem = desc.elem;
    fmt.channels = desc.channels;
    BRIDGECL_ASSIGN_OR_RETURN(
        ClMem img,
        Seal(cl_.CreateImage2D(MemFlags::kReadWrite, fmt, width,
                               std::max<size_t>(height, 1), nullptr),
             mcuda::cudaErrorMemoryAllocation));
    arrays_[img.handle] = img;
    return reinterpret_cast<void*>(img.handle);
  }

  Status MemcpyToArray(void* array, const void* src, size_t) override {
    auto span = Span(TraceKind::kH2D, "cudaMemcpyToArray");
    auto it = arrays_.find(reinterpret_cast<uint64_t>(array));
    if (it == arrays_.end())
      return AsCuda(InvalidArgumentError("unknown cudaArray"),
                    mcuda::cudaErrorInvalidValue);
    return Seal(cl_.EnqueueWriteImage(it->second, src),
                mcuda::cudaErrorLaunchFailure);
  }

  Status BindTextureToArray(const std::string& texref, void* array,
                            bool filter_linear, bool normalized) override {
    auto span = Span(TraceKind::kApiCall, "cudaBindTextureToArray");
    auto it = arrays_.find(reinterpret_cast<uint64_t>(array));
    if (it == arrays_.end())
      return AsCuda(InvalidArgumentError("unknown cudaArray"),
                    mcuda::cudaErrorInvalidValue);
    ClSamplerDesc sd;
    sd.filter_linear = filter_linear;
    sd.normalized_coords = normalized;
    BRIDGECL_ASSIGN_OR_RETURN(uint64_t sampler,
                              Seal(cl_.CreateSampler(sd),
                                   mcuda::cudaErrorInvalidTexture));
    textures_[texref] = TextureRec{it->second, sampler, true};
    return OkStatus();
  }

  Status UnbindTexture(const std::string& texref) override {
    auto span = Span(TraceKind::kApiCall, "cudaUnbindTexture");
    auto it = textures_.find(texref);
    if (it != textures_.end()) it->second.bound = false;
    return OkStatus();
  }

  StatusOr<void*> EventCreate() override {
    auto span = Span(TraceKind::kApiCall, "cudaEventCreate");
    uint64_t id = next_event_++;
    events_[id] = EventRec{};
    return reinterpret_cast<void*>(id);
  }

  Status EventRecord(void* event) override {
    auto span = Span(TraceKind::kApiCall, "cudaEventRecord");
    auto it = events_.find(reinterpret_cast<uint64_t>(event));
    if (it == events_.end())
      return AsCuda(InvalidArgumentError("unknown event"),
                    mcuda::cudaErrorInvalidResourceHandle);
    if (it->second.has_cl) {
      (void)cl_.ReleaseEvent(it->second.cl_event);  // re-record
      it->second.has_cl = false;
    }
    it->second.host_us = cl_.NowUs();
    return OkStatus();
  }

  StatusOr<double> EventElapsedUs(void* start, void* end) override {
    auto span = Span(TraceKind::kApiCall, "cudaEventElapsedTime");
    auto s = events_.find(reinterpret_cast<uint64_t>(start));
    auto e = events_.find(reinterpret_cast<uint64_t>(end));
    if (s == events_.end() || e == events_.end())
      return AsCuda(InvalidArgumentError("unknown event"),
                    mcuda::cudaErrorInvalidResourceHandle);
    BRIDGECL_ASSIGN_OR_RETURN(double ts, EndTimeOf(s->second));
    BRIDGECL_ASSIGN_OR_RETURN(double te, EndTimeOf(e->second));
    return te - ts;
  }

  Status EventDestroy(void* event) override {
    auto span = Span(TraceKind::kApiCall, "cudaEventDestroy");
    auto it = events_.find(reinterpret_cast<uint64_t>(event));
    if (it == events_.end())
      return AsCuda(InvalidArgumentError("unknown event"),
                    mcuda::cudaErrorInvalidResourceHandle);
    Status st;
    if (it->second.has_cl)
      st = Seal(cl_.ReleaseEvent(it->second.cl_event),
                mcuda::cudaErrorInvalidResourceHandle);
    events_.erase(it);
    return span.Sealed(std::move(st));
  }

  Status SetKernelRegisters(const std::string& kernel, int regs) override {
    BRIDGECL_RETURN_IF_ERROR(EnsureBuilt());
    return Seal(cl_.SetProgramKernelRegisters(program_, kernel, regs),
                mcuda::cudaErrorInvalidDeviceFunction);
  }

  double NowUs() const override { return cl_.NowUs(); }

 private:
  /// Wrapper-layer trace span over the shared recorder; forwarded native
  /// CL calls open child spans inside it. No-op when tracing is off.
  trace::TraceSpan Span(TraceKind kind, const char* name) {
    return trace::TraceSpan(cl_.Tracer(), kind, "cu2cl", name);
  }

  static TraceKind TraceKindForMemcpy(MemcpyKind kind) {
    switch (kind) {
      case MemcpyKind::kHostToDevice:
        return TraceKind::kH2D;
      case MemcpyKind::kDeviceToHost:
        return TraceKind::kD2H;
      case MemcpyKind::kDeviceToDevice:
        return TraceKind::kD2D;
      case MemcpyKind::kHostToHost:
        break;
    }
    return TraceKind::kApiCall;
  }

  /// Boundary sealer: every Status leaving this wrapper carries a
  /// cudaError api_code. An inner CL annotation is re-mapped through
  /// CudaFromCl; an unannotated Status gets the per-StatusCode default
  /// (with `fallback` for kResourceExhausted).
  static Status Seal(Status st, int fallback) {
    if (st.ok()) return st;
    // Device loss stays cudaErrorDevicesUnavailable no matter how the
    // inner CL layer had to express it (CL has no dedicated code).
    int code = st.code() == StatusCode::kDeviceLost
                   ? mcuda::cudaErrorDevicesUnavailable
               : mocl::IsClCode(st.api_code())
                   ? CudaFromCl(st.api_code())
                   : mcuda::CudaCodeFor(st, fallback);
    // CL_OUT_OF_RESOURCES is the CL catch-all for both resource
    // exhaustion and execution faults, so CudaFromCl alone must pick the
    // catch-all cudaErrorLaunchFailure. The StatusCode disambiguates: a
    // genuine kResourceExhausted (register/shared-memory pressure, guard
    // budget) is cudaErrorLaunchOutOfResources, not an "unspecified
    // launch failure" — sync points must not collapse the distinction.
    if (code == mcuda::cudaErrorLaunchFailure &&
        st.api_code() == mocl::CL_OUT_OF_RESOURCES &&
        st.code() == StatusCode::kResourceExhausted)
      code = mcuda::cudaErrorLaunchOutOfResources;
    return AsCuda(std::move(st), code);
  }

  template <typename T>
  static StatusOr<T> Seal(StatusOr<T> v, int fallback) {
    if (v.ok()) return v;
    return StatusOr<T>(Seal(std::move(v).status(), fallback));
  }

  Status EnsureBuilt() {
    if (built_) return OkStatus();
    if (translation_.source.empty())
      return AsCuda(FailedPreconditionError("no CUDA module was registered"),
                    mcuda::cudaErrorMissingConfiguration);
    BRIDGECL_ASSIGN_OR_RETURN(
        program_,
        Seal(cl_.CreateProgramWithSource(translation_.source),
             mcuda::cudaErrorNoKernelImageForDevice));
    BRIDGECL_RETURN_IF_ERROR(Seal(cl_.BuildProgram(program_),
                                  mcuda::cudaErrorNoKernelImageForDevice));
    built_ = true;
    return OkStatus();
  }

  /// Resolves a cudaStream_t to its command queue; the null stream is the
  /// default queue, anything else must be a live created stream.
  StatusOr<ClQueue> QueueFor(void* stream) {
    if (stream == nullptr) return ClQueue{};
    auto it = live_streams_.find(reinterpret_cast<uint64_t>(stream));
    if (it == live_streams_.end())
      return AsCuda(InvalidArgumentError("unknown stream"),
                    mcuda::cudaErrorInvalidResourceHandle);
    return it->second;
  }

  /// Absolute completion time of an event, for cudaEventElapsedTime: the
  /// profiled end of its CL marker (waiting for it first), or the legacy
  /// host timestamp. Never-recorded events are cudaErrorNotReady.
  StatusOr<double> EndTimeOf(EventRec& er) {
    if (er.has_cl) {
      BRIDGECL_RETURN_IF_ERROR(
          Seal(cl_.WaitForEvents(std::span<const ClEvent>(&er.cl_event, 1)),
               mcuda::cudaErrorLaunchFailure));
      double queued = 0, end = 0;
      BRIDGECL_RETURN_IF_ERROR(
          Seal(cl_.GetEventProfiling(er.cl_event, &queued, &end),
               mcuda::cudaErrorInvalidResourceHandle));
      return end;
    }
    if (er.host_us < 0)
      return AsCuda(FailedPreconditionError("event was never recorded"),
                    mcuda::cudaErrorNotReady);
    return er.host_us;
  }

  StatusOr<ClKernel> KernelFor(const std::string& name) {
    if (auto it = kernels_.find(name); it != kernels_.end())
      return it->second;
    BRIDGECL_ASSIGN_OR_RETURN(
        ClKernel k, Seal(cl_.CreateKernel(program_, name),
                         mcuda::cudaErrorInvalidDeviceFunction));
    kernels_[name] = k;
    return k;
  }

  OpenClApi& cl_;
  CudaOnClOptions options_;
  TranslationResult translation_;
  bool built_ = false;
  ClProgram program_;
  std::unordered_map<std::string, ClKernel> kernels_;
  std::unordered_map<std::string, SymbolRec> symbols_;
  std::unordered_map<std::string, TextureRec> textures_;
  std::unordered_map<uint64_t, ClMem> arrays_;
  std::unordered_map<uint64_t, size_t> buffer_sizes_;
  uint64_t next_event_ = 0x7000'0000'0000'0000ull;
  std::unordered_map<uint64_t, EventRec> events_;
  std::unordered_map<uint64_t, ClQueue> live_streams_;
};

}  // namespace

std::unique_ptr<CudaApi> CreateCudaOnClApi(OpenClApi& cl,
                                           const CudaOnClOptions& options) {
  return std::make_unique<CudaOnClApi>(cl, options);
}

}  // namespace bridgecl::cu2cl
