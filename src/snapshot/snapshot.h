// Device snapshot/restore: a versioned, deterministic serialization
// format capturing a full simulated-GPU context image, plus the section
// codecs for the state every API layer shares (docs/SNAPSHOT.md).
//
// Image layout (all integers little-endian, see serializer.h):
//
//   magic            8 bytes  "BCLSNAP\0"
//   format version   u32      kFormatVersion
//   device profile   string   DeviceProfile::name the image was taken on
//   body checksum    u64      FNV-1a over the body bytes
//   section count    u32
//   section table    entries of { tag: 4 bytes, offset: u64, size: u64 }
//                    (offsets relative to the body start)
//   body             concatenated section payloads
//
// Shared sections (one writer/reader pair per subsystem):
//   DEVC  simgpu::Device clock/stats/engine timelines/bank mode
//   VMEM  virtual-memory contents + allocation table + guard metadata
//   FALT  fault-injector plan, ordinal counters, sticky-loss state
//   MODC  content-hashed module cache (keys, sources, diagnostics)
//   SCHD  scheduler queue topology + completed-event timing records
// The native bindings add one layer section each (MOCL / MCUD) holding
// their private handle tables; wrappers forward to the inner binding.
//
// Determinism guarantee: serialization iterates every container in a
// sorted or already-deterministic order, so snapshot → restore →
// snapshot reproduces the image byte for byte.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "interp/module.h"
#include "sched/scheduler.h"
#include "simgpu/device.h"
#include "snapshot/serializer.h"
#include "support/status.h"

namespace bridgecl::snapshot {

inline constexpr char kMagic[8] = {'B', 'C', 'L', 'S', 'N', 'A', 'P', '\0'};
inline constexpr uint32_t kFormatVersion = 1;

/// Conventional file extension for snapshot images (gitignored; the repo
/// hygiene check rejects committed images).
inline constexpr const char* kImageExtension = ".sgsnap";

struct SectionInfo {
  std::string tag;  // 4 characters
  uint64_t offset = 0;
  uint64_t size = 0;
};

/// Header + section table of an image, as the tools/ inspector prints it.
struct ImageInfo {
  uint32_t version = 0;
  std::string profile;
  uint64_t checksum = 0;
  bool checksum_ok = false;
  uint64_t body_size = 0;
  std::vector<SectionInfo> sections;
};

/// FNV-1a over arbitrary bytes (the body checksum).
uint64_t Fnv1a(std::span<const std::byte> bytes);

/// Assembles an image: sections are appended in call order (the layer
/// decides the order; keep it fixed for deterministic images).
class ImageWriter {
 public:
  /// `tag` must be exactly 4 characters and unique within the image.
  void AddSection(const std::string& tag, std::vector<std::byte> payload);
  /// Serialize header + table + body and write the file atomically-ish
  /// (single buffered write). `profile` is the source device's name.
  Status WriteFile(const std::string& path, const std::string& profile) const;
  /// The serialized image bytes (tests compare these for bit-identity).
  std::vector<std::byte> Serialize(const std::string& profile) const;

 private:
  std::vector<std::pair<std::string, std::vector<std::byte>>> sections_;
};

/// Validated view of an image file: magic, version and checksum are
/// checked at Open (kInvalidArgument on corruption/truncation,
/// kFailedPrecondition on a format-version mismatch).
class ImageReader {
 public:
  static StatusOr<ImageReader> Open(const std::string& path);

  const ImageInfo& info() const { return info_; }
  bool HasSection(const std::string& tag) const;
  StatusOr<std::span<const std::byte>> Section(const std::string& tag) const;

 private:
  ImageInfo info_;
  std::vector<std::byte> body_;
};

/// Header + section table only, without requiring a supported version —
/// the tools/ inspector uses this to dump any structurally sound image.
StatusOr<ImageInfo> Inspect(const std::string& path);

// -- shared section codecs --------------------------------------------------

/// DEVC + VMEM + FALT: the whole simgpu::Device state.
void AppendDeviceSections(const simgpu::Device& device, ImageWriter& w);
/// Restore the device sections. The target device keeps its own profile
/// and capacity (cross-profile migration recomputes occupancy and timing
/// from the target profile); fails with kResourceExhausted when the image
/// holds more live global memory than the target device has.
Status RestoreDeviceSections(const ImageReader& r, simgpu::Device& device);

/// SCHD: queue/stream topology and completed-event records.
void AppendSchedulerSection(const sched::Scheduler& sched, ImageWriter& w);
Status RestoreSchedulerSection(const ImageReader& r, sched::Scheduler& sched);

/// MODC: the process-wide content-hashed module cache.
void AppendModuleCacheSection(ImageWriter& w);
/// Recompiles each captured entry and verifies its diagnostics replay
/// byte-identically (build-log determinism).
Status RestoreModuleCacheSection(const ImageReader& r);

/// Status codec shared with the layer sections (code, message, api_code).
void PutStatus(ByteWriter& w, const Status& st);
Status TakeStatus(ByteReader& r, Status* out);

/// Module-layout codec shared by the layer sections: the loaded module's
/// symbol table (sorted by name), register overrides and texture bindings.
/// Restore recompiles the module from source and adopts this layout via
/// Module::RestoreLayout instead of re-running LoadOn (which would
/// re-allocate and clobber the restored memory image).
struct ModuleLayout {
  std::vector<interp::Module::SymbolBinding> symbols;
  std::vector<std::pair<std::string, int>> register_overrides;
  std::vector<std::pair<std::string, uint64_t>> texture_bindings;
};
void PutModuleLayout(ByteWriter& w, const interp::Module& m);
Status TakeModuleLayout(ByteReader& r, ModuleLayout* out);
/// RestoreLayout + overrides + texture bindings in one step.
Status ApplyModuleLayout(interp::Module& m, simgpu::Device& device,
                         const ModuleLayout& layout);

}  // namespace bridgecl::snapshot
