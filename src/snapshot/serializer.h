// Bounds-checked little-endian byte serialization for snapshot images
// (docs/SNAPSHOT.md). Every multi-byte value is encoded byte-by-byte so
// images are bit-identical across host endianness and padding rules —
// the determinism guarantee the whole subsystem rests on. Readers never
// trust the input: every Take* reports a truncated image as an error
// instead of reading past the end.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "support/status.h"

namespace bridgecl::snapshot {

class ByteWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<std::byte>(v)); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) U8(static_cast<uint8_t>(v >> (8 * i)));
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) U8(static_cast<uint8_t>(v >> (8 * i)));
  }
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v) { U64(std::bit_cast<uint64_t>(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  /// u32 byte length + UTF-8 bytes.
  void String(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Raw(reinterpret_cast<const std::byte*>(s.data()), s.size());
  }
  /// u64 byte length + raw bytes (region contents, arbitrary payloads).
  void Blob(std::span<const std::byte> b) {
    U64(b.size());
    Raw(b.data(), b.size());
  }
  void Raw(const std::byte* p, size_t n) { out_.insert(out_.end(), p, p + n); }

  const std::vector<std::byte>& bytes() const { return out_; }
  std::vector<std::byte> Take() { return std::move(out_); }

 private:
  std::vector<std::byte> out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  StatusOr<uint8_t> U8() {
    BRIDGECL_RETURN_IF_ERROR(Need(1));
    return static_cast<uint8_t>(data_[pos_++]);
  }
  StatusOr<uint32_t> U32() {
    BRIDGECL_RETURN_IF_ERROR(Need(4));
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
  }
  StatusOr<uint64_t> U64() {
    BRIDGECL_RETURN_IF_ERROR(Need(8));
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
  }
  StatusOr<int32_t> I32() {
    BRIDGECL_ASSIGN_OR_RETURN(uint32_t v, U32());
    return static_cast<int32_t>(v);
  }
  StatusOr<int64_t> I64() {
    BRIDGECL_ASSIGN_OR_RETURN(uint64_t v, U64());
    return static_cast<int64_t>(v);
  }
  StatusOr<double> F64() {
    BRIDGECL_ASSIGN_OR_RETURN(uint64_t v, U64());
    return std::bit_cast<double>(v);
  }
  StatusOr<bool> Bool() {
    BRIDGECL_ASSIGN_OR_RETURN(uint8_t v, U8());
    return v != 0;
  }
  StatusOr<std::string> String() {
    BRIDGECL_ASSIGN_OR_RETURN(uint32_t n, U32());
    BRIDGECL_RETURN_IF_ERROR(Need(n));
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }
  StatusOr<std::vector<std::byte>> Blob() {
    BRIDGECL_ASSIGN_OR_RETURN(uint64_t n, U64());
    BRIDGECL_RETURN_IF_ERROR(Need(n));
    std::vector<std::byte> b(data_.begin() + pos_, data_.begin() + pos_ + n);
    pos_ += n;
    return b;
  }

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  Status Need(uint64_t n) {
    // Compare against the remaining span (never pos_ + n: a hostile
    // length near UINT64_MAX must not wrap the bounds check).
    if (n > data_.size() - pos_)
      return InvalidArgumentError("truncated snapshot image");
    return OkStatus();
  }

  std::span<const std::byte> data_;
  size_t pos_ = 0;
};

}  // namespace bridgecl::snapshot
