#include "snapshot/snapshot.h"

#include <cstring>
#include <fstream>

#include "interp/module.h"
#include "support/strings.h"

namespace bridgecl::snapshot {

namespace {

// Section tags (exactly 4 characters each; see the header comment).
constexpr const char* kDevcTag = "DEVC";
constexpr const char* kVmemTag = "VMEM";
constexpr const char* kFaltTag = "FALT";
constexpr const char* kModcTag = "MODC";
constexpr const char* kSchdTag = "SCHD";

Status CorruptImage(const char* what) {
  return InvalidArgumentError(
      StrFormat("corrupt snapshot image: %s", what));
}

}  // namespace

uint64_t Fnv1a(std::span<const std::byte> bytes) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (std::byte b : bytes) {
    h ^= static_cast<uint64_t>(b);
    h *= 0x100000001b3ull;
  }
  return h;
}

// -- ImageWriter -------------------------------------------------------------

void ImageWriter::AddSection(const std::string& tag,
                             std::vector<std::byte> payload) {
  sections_.emplace_back(tag, std::move(payload));
}

std::vector<std::byte> ImageWriter::Serialize(const std::string& profile) const {
  // Body first: concatenated payloads, offsets recorded as we go.
  std::vector<std::byte> body;
  std::vector<SectionInfo> table;
  table.reserve(sections_.size());
  for (const auto& [tag, payload] : sections_) {
    table.push_back(SectionInfo{tag, body.size(), payload.size()});
    body.insert(body.end(), payload.begin(), payload.end());
  }

  ByteWriter w;
  w.Raw(reinterpret_cast<const std::byte*>(kMagic), sizeof(kMagic));
  w.U32(kFormatVersion);
  w.String(profile);
  w.U64(Fnv1a(body));
  w.U32(static_cast<uint32_t>(table.size()));
  for (const SectionInfo& s : table) {
    w.Raw(reinterpret_cast<const std::byte*>(s.tag.data()), 4);
    w.U64(s.offset);
    w.U64(s.size);
  }
  w.Raw(body.data(), body.size());
  return w.Take();
}

Status ImageWriter::WriteFile(const std::string& path,
                              const std::string& profile) const {
  const std::vector<std::byte> image = Serialize(profile);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out)
    return InvalidArgumentError(
        StrFormat("cannot open '%s' for writing", path.c_str()));
  out.write(reinterpret_cast<const char*>(image.data()),
            static_cast<std::streamsize>(image.size()));
  out.flush();
  if (!out)
    return InternalError(
        StrFormat("short write while saving snapshot '%s'", path.c_str()));
  return OkStatus();
}

// -- parsing -----------------------------------------------------------------

namespace {

struct ParsedImage {
  ImageInfo info;
  std::vector<std::byte> body;
};

StatusOr<std::vector<std::byte>> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in)
    return InvalidArgumentError(
        StrFormat("cannot open snapshot image '%s'", path.c_str()));
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::byte> bytes(static_cast<size_t>(size));
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(bytes.data()), size))
    return InvalidArgumentError(
        StrFormat("cannot read snapshot image '%s'", path.c_str()));
  return bytes;
}

/// Header + table + body split, structural validation only (magic, table
/// bounds). Version and checksum are reported in `info` for the caller to
/// judge — the inspector wants to dump mismatched images, Open does not.
StatusOr<ParsedImage> Parse(const std::string& path) {
  BRIDGECL_ASSIGN_OR_RETURN(std::vector<std::byte> bytes, ReadWholeFile(path));
  const std::span<const std::byte> data(bytes);
  ByteReader r(data);

  if (bytes.size() < sizeof(kMagic) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
    return CorruptImage("bad magic (not a BridgeCL snapshot)");
  // Consume the magic we just validated.
  for (size_t i = 0; i < sizeof(kMagic); ++i) (void)r.U8();

  ParsedImage p;
  BRIDGECL_ASSIGN_OR_RETURN(p.info.version, r.U32());
  BRIDGECL_ASSIGN_OR_RETURN(p.info.profile, r.String());
  BRIDGECL_ASSIGN_OR_RETURN(p.info.checksum, r.U64());
  BRIDGECL_ASSIGN_OR_RETURN(uint32_t count, r.U32());
  p.info.sections.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    SectionInfo s;
    char tag[4];
    for (char& c : tag) {
      BRIDGECL_ASSIGN_OR_RETURN(uint8_t b, r.U8());
      c = static_cast<char>(b);
    }
    s.tag.assign(tag, 4);
    BRIDGECL_ASSIGN_OR_RETURN(s.offset, r.U64());
    BRIDGECL_ASSIGN_OR_RETURN(s.size, r.U64());
    p.info.sections.push_back(std::move(s));
  }

  p.body.assign(bytes.begin() + (bytes.size() - r.remaining()), bytes.end());
  p.info.body_size = p.body.size();
  for (const SectionInfo& s : p.info.sections) {
    // Overflow-safe containment check (offset + size could wrap).
    if (s.offset > p.body.size() || s.size > p.body.size() - s.offset)
      return CorruptImage("section table entry points past the body");
  }
  p.info.checksum_ok =
      Fnv1a(std::span<const std::byte>(p.body)) == p.info.checksum;
  return p;
}

}  // namespace

StatusOr<ImageReader> ImageReader::Open(const std::string& path) {
  BRIDGECL_ASSIGN_OR_RETURN(ParsedImage p, Parse(path));
  if (p.info.version != kFormatVersion)
    return FailedPreconditionError(StrFormat(
        "snapshot image format version %u is not supported (this build "
        "reads version %u)",
        p.info.version, kFormatVersion));
  if (!p.info.checksum_ok)
    return CorruptImage("body checksum mismatch");
  ImageReader reader;
  reader.info_ = std::move(p.info);
  reader.body_ = std::move(p.body);
  return reader;
}

bool ImageReader::HasSection(const std::string& tag) const {
  for (const SectionInfo& s : info_.sections)
    if (s.tag == tag) return true;
  return false;
}

StatusOr<std::span<const std::byte>> ImageReader::Section(
    const std::string& tag) const {
  for (const SectionInfo& s : info_.sections)
    if (s.tag == tag)
      return std::span<const std::byte>(body_.data() + s.offset, s.size);
  return NotFoundError(
      StrFormat("snapshot image has no '%s' section", tag.c_str()));
}

StatusOr<ImageInfo> Inspect(const std::string& path) {
  BRIDGECL_ASSIGN_OR_RETURN(ParsedImage p, Parse(path));
  return p.info;
}

// -- Status codec ------------------------------------------------------------

void PutStatus(ByteWriter& w, const Status& st) {
  w.U32(static_cast<uint32_t>(st.code()));
  w.String(st.ok() ? std::string() : st.message());
  w.I32(st.api_code());
}

Status TakeStatus(ByteReader& r, Status* out) {
  BRIDGECL_ASSIGN_OR_RETURN(uint32_t code, r.U32());
  BRIDGECL_ASSIGN_OR_RETURN(std::string message, r.String());
  BRIDGECL_ASSIGN_OR_RETURN(int32_t api_code, r.I32());
  if (code > static_cast<uint32_t>(StatusCode::kDeviceLost))
    return CorruptImage("unknown status code");
  if (code == 0) {
    *out = OkStatus();
  } else {
    *out = Status(static_cast<StatusCode>(code), std::move(message));
    out->set_api_code(api_code);
  }
  return OkStatus();
}

// -- module layout -----------------------------------------------------------

void PutModuleLayout(ByteWriter& w, const interp::Module& m) {
  std::vector<interp::Module::SymbolBinding> symbols;
  symbols.reserve(m.symbols().size());
  for (const auto& [name, sym] : m.symbols())
    symbols.push_back({name, sym});
  std::sort(symbols.begin(), symbols.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  w.U32(static_cast<uint32_t>(symbols.size()));
  for (const auto& s : symbols) {
    w.String(s.name);
    w.U64(s.symbol.va);
    w.U64(s.symbol.size);
    w.U8(static_cast<uint8_t>(s.symbol.space));
  }

  std::vector<std::pair<std::string, int>> regs(m.register_overrides().begin(),
                                                m.register_overrides().end());
  std::sort(regs.begin(), regs.end());
  w.U32(static_cast<uint32_t>(regs.size()));
  for (const auto& [kernel, n] : regs) {
    w.String(kernel);
    w.I32(n);
  }

  std::vector<std::pair<std::string, uint64_t>> tex(
      m.texture_bindings().begin(), m.texture_bindings().end());
  std::sort(tex.begin(), tex.end());
  w.U32(static_cast<uint32_t>(tex.size()));
  for (const auto& [name, va] : tex) {
    w.String(name);
    w.U64(va);
  }
}

Status TakeModuleLayout(ByteReader& r, ModuleLayout* out) {
  BRIDGECL_ASSIGN_OR_RETURN(uint32_t ns, r.U32());
  out->symbols.resize(ns);
  for (uint32_t i = 0; i < ns; ++i) {
    interp::Module::SymbolBinding& s = out->symbols[i];
    BRIDGECL_ASSIGN_OR_RETURN(s.name, r.String());
    BRIDGECL_ASSIGN_OR_RETURN(s.symbol.va, r.U64());
    BRIDGECL_ASSIGN_OR_RETURN(uint64_t size, r.U64());
    s.symbol.size = size;
    BRIDGECL_ASSIGN_OR_RETURN(uint8_t space, r.U8());
    if (space > static_cast<uint8_t>(lang::AddressSpace::kConstant))
      return CorruptImage("unknown address space in symbol binding");
    s.symbol.space = static_cast<lang::AddressSpace>(space);
  }
  BRIDGECL_ASSIGN_OR_RETURN(uint32_t nr, r.U32());
  out->register_overrides.resize(nr);
  for (uint32_t i = 0; i < nr; ++i) {
    BRIDGECL_ASSIGN_OR_RETURN(out->register_overrides[i].first, r.String());
    BRIDGECL_ASSIGN_OR_RETURN(out->register_overrides[i].second, r.I32());
  }
  BRIDGECL_ASSIGN_OR_RETURN(uint32_t nt, r.U32());
  out->texture_bindings.resize(nt);
  for (uint32_t i = 0; i < nt; ++i) {
    BRIDGECL_ASSIGN_OR_RETURN(out->texture_bindings[i].first, r.String());
    BRIDGECL_ASSIGN_OR_RETURN(out->texture_bindings[i].second, r.U64());
  }
  return OkStatus();
}

Status ApplyModuleLayout(interp::Module& m, simgpu::Device& device,
                         const ModuleLayout& layout) {
  BRIDGECL_RETURN_IF_ERROR(m.RestoreLayout(device, layout.symbols));
  for (const auto& [kernel, regs] : layout.register_overrides)
    m.SetRegisterOverride(kernel, regs);
  for (const auto& [name, va] : layout.texture_bindings)
    BRIDGECL_RETURN_IF_ERROR(m.BindTexture(name, va));
  return OkStatus();
}

// -- DEVC / VMEM / FALT ------------------------------------------------------

namespace {

void PutRegion(ByteWriter& w, const simgpu::VirtualMemory::RegionState& r) {
  w.U64(r.base);
  w.Blob(std::span<const std::byte>(r.storage));
  w.U64(r.user_size);
  w.U64(r.span);
  w.U64(r.front_pad);
  w.U64(r.generation);
  w.Bool(r.freed);
}

Status TakeRegion(ByteReader& r, simgpu::VirtualMemory::RegionState* out) {
  BRIDGECL_ASSIGN_OR_RETURN(out->base, r.U64());
  BRIDGECL_ASSIGN_OR_RETURN(out->storage, r.Blob());
  BRIDGECL_ASSIGN_OR_RETURN(out->user_size, r.U64());
  BRIDGECL_ASSIGN_OR_RETURN(out->span, r.U64());
  BRIDGECL_ASSIGN_OR_RETURN(out->front_pad, r.U64());
  BRIDGECL_ASSIGN_OR_RETURN(out->generation, r.U64());
  BRIDGECL_ASSIGN_OR_RETURN(out->freed, r.Bool());
  return OkStatus();
}

}  // namespace

void AppendDeviceSections(const simgpu::Device& device, ImageWriter& w) {
  {
    const simgpu::Device::ExecState s = device.ExportExecState();
    ByteWriter b;
    b.U64(s.stats.kernels_launched);
    b.U64(s.stats.work_items_executed);
    b.U64(s.stats.global_accesses);
    b.U64(s.stats.shared_accesses);
    b.U64(s.stats.shared_bank_words);
    b.U64(s.stats.constant_accesses);
    b.U64(s.stats.image_accesses);
    b.U64(s.stats.atomics);
    b.U64(s.stats.barriers);
    b.U64(s.stats.host_to_device_bytes);
    b.U64(s.stats.device_to_host_bytes);
    b.U64(s.stats.device_to_device_bytes);
    b.U64(s.stats.api_calls);
    b.U64(s.stats.ops_executed);
    b.U8(static_cast<uint8_t>(s.bank_mode));
    b.F64(s.clock_us);
    b.F64(s.engine_overlap_us);
    for (int e = 0; e < simgpu::kEngineCount; ++e) {
      b.F64(s.engine_free_us[e]);
      b.F64(s.engine_busy_us[e]);
      b.U32(static_cast<uint32_t>(s.engine_intervals[e].size()));
      for (const auto& [start, end] : s.engine_intervals[e]) {
        b.F64(start);
        b.F64(end);
      }
    }
    w.AddSection(kDevcTag, b.Take());
  }
  {
    const simgpu::VirtualMemory::State s = device.vm().ExportState();
    ByteWriter b;
    b.Bool(s.guarded);
    b.U64(s.global_in_use);
    b.U64(s.live_global_count);
    b.U64(s.next_global);
    b.U64(s.next_generation);
    b.U32(static_cast<uint32_t>(s.global_allocs.size()));
    for (const auto& region : s.global_allocs) PutRegion(b, region);
    PutRegion(b, s.constant);
    w.AddSection(kVmemTag, b.Take());
  }
  {
    const simgpu::FaultInjector::State s = device.faults().ExportState();
    ByteWriter b;
    b.U32(static_cast<uint32_t>(s.plan.points.size()));
    for (const simgpu::FaultPoint& p : s.plan.points) {
      b.U8(static_cast<uint8_t>(p.site));
      b.U64(p.nth);
      b.U8(static_cast<uint8_t>(p.kind));
      b.Bool(p.transient);
      b.U64(p.truncate_to);
    }
    for (uint64_t c : s.counters) b.U64(c);
    b.Bool(s.lost);
    b.Bool(s.last_fault_transient);
    w.AddSection(kFaltTag, b.Take());
  }
}

Status RestoreDeviceSections(const ImageReader& r, simgpu::Device& device) {
  // Parse all three sections into plain state first, then import — a
  // corrupt image must not leave the device half-restored.
  BRIDGECL_ASSIGN_OR_RETURN(std::span<const std::byte> devc,
                            r.Section(kDevcTag));
  BRIDGECL_ASSIGN_OR_RETURN(std::span<const std::byte> vmem,
                            r.Section(kVmemTag));
  BRIDGECL_ASSIGN_OR_RETURN(std::span<const std::byte> falt,
                            r.Section(kFaltTag));

  simgpu::Device::ExecState exec;
  {
    ByteReader b(devc);
    BRIDGECL_ASSIGN_OR_RETURN(exec.stats.kernels_launched, b.U64());
    BRIDGECL_ASSIGN_OR_RETURN(exec.stats.work_items_executed, b.U64());
    BRIDGECL_ASSIGN_OR_RETURN(exec.stats.global_accesses, b.U64());
    BRIDGECL_ASSIGN_OR_RETURN(exec.stats.shared_accesses, b.U64());
    BRIDGECL_ASSIGN_OR_RETURN(exec.stats.shared_bank_words, b.U64());
    BRIDGECL_ASSIGN_OR_RETURN(exec.stats.constant_accesses, b.U64());
    BRIDGECL_ASSIGN_OR_RETURN(exec.stats.image_accesses, b.U64());
    BRIDGECL_ASSIGN_OR_RETURN(exec.stats.atomics, b.U64());
    BRIDGECL_ASSIGN_OR_RETURN(exec.stats.barriers, b.U64());
    BRIDGECL_ASSIGN_OR_RETURN(exec.stats.host_to_device_bytes, b.U64());
    BRIDGECL_ASSIGN_OR_RETURN(exec.stats.device_to_host_bytes, b.U64());
    BRIDGECL_ASSIGN_OR_RETURN(exec.stats.device_to_device_bytes, b.U64());
    BRIDGECL_ASSIGN_OR_RETURN(exec.stats.api_calls, b.U64());
    BRIDGECL_ASSIGN_OR_RETURN(exec.stats.ops_executed, b.U64());
    BRIDGECL_ASSIGN_OR_RETURN(uint8_t bank_mode, b.U8());
    if (bank_mode > static_cast<uint8_t>(simgpu::BankMode::k64Bit))
      return CorruptImage("unknown bank mode");
    exec.bank_mode = static_cast<simgpu::BankMode>(bank_mode);
    BRIDGECL_ASSIGN_OR_RETURN(exec.clock_us, b.F64());
    BRIDGECL_ASSIGN_OR_RETURN(exec.engine_overlap_us, b.F64());
    for (int e = 0; e < simgpu::kEngineCount; ++e) {
      BRIDGECL_ASSIGN_OR_RETURN(exec.engine_free_us[e], b.F64());
      BRIDGECL_ASSIGN_OR_RETURN(exec.engine_busy_us[e], b.F64());
      BRIDGECL_ASSIGN_OR_RETURN(uint32_t n, b.U32());
      exec.engine_intervals[e].reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        double start, end;
        BRIDGECL_ASSIGN_OR_RETURN(start, b.F64());
        BRIDGECL_ASSIGN_OR_RETURN(end, b.F64());
        exec.engine_intervals[e].emplace_back(start, end);
      }
    }
    if (!b.AtEnd()) return CorruptImage("trailing bytes in DEVC section");
  }

  simgpu::VirtualMemory::State vm;
  {
    ByteReader b(vmem);
    BRIDGECL_ASSIGN_OR_RETURN(vm.guarded, b.Bool());
    BRIDGECL_ASSIGN_OR_RETURN(vm.global_in_use, b.U64());
    BRIDGECL_ASSIGN_OR_RETURN(vm.live_global_count, b.U64());
    BRIDGECL_ASSIGN_OR_RETURN(vm.next_global, b.U64());
    BRIDGECL_ASSIGN_OR_RETURN(vm.next_generation, b.U64());
    BRIDGECL_ASSIGN_OR_RETURN(uint32_t n, b.U32());
    vm.global_allocs.resize(n);
    for (uint32_t i = 0; i < n; ++i)
      BRIDGECL_RETURN_IF_ERROR(TakeRegion(b, &vm.global_allocs[i]));
    BRIDGECL_RETURN_IF_ERROR(TakeRegion(b, &vm.constant));
    if (!b.AtEnd()) return CorruptImage("trailing bytes in VMEM section");
  }

  simgpu::FaultInjector::State faults;
  {
    ByteReader b(falt);
    BRIDGECL_ASSIGN_OR_RETURN(uint32_t n, b.U32());
    faults.plan.points.resize(n);
    for (uint32_t i = 0; i < n; ++i) {
      simgpu::FaultPoint& p = faults.plan.points[i];
      BRIDGECL_ASSIGN_OR_RETURN(uint8_t site, b.U8());
      if (site > static_cast<uint8_t>(simgpu::FaultSite::kInstruction))
        return CorruptImage("unknown fault site");
      p.site = static_cast<simgpu::FaultSite>(site);
      BRIDGECL_ASSIGN_OR_RETURN(p.nth, b.U64());
      BRIDGECL_ASSIGN_OR_RETURN(uint8_t kind, b.U8());
      if (kind > static_cast<uint8_t>(simgpu::FaultKind::kDeviceLost))
        return CorruptImage("unknown fault kind");
      p.kind = static_cast<simgpu::FaultKind>(kind);
      BRIDGECL_ASSIGN_OR_RETURN(p.transient, b.Bool());
      BRIDGECL_ASSIGN_OR_RETURN(uint64_t truncate_to, b.U64());
      p.truncate_to = truncate_to;
    }
    for (uint64_t& c : faults.counters) {
      BRIDGECL_ASSIGN_OR_RETURN(c, b.U64());
    }
    BRIDGECL_ASSIGN_OR_RETURN(faults.lost, b.Bool());
    BRIDGECL_ASSIGN_OR_RETURN(faults.last_fault_transient, b.Bool());
    if (!b.AtEnd()) return CorruptImage("trailing bytes in FALT section");
  }

  // VMEM import is the only step that can fail (capacity); do it first so
  // a cross-profile overflow leaves exec/fault state untouched.
  BRIDGECL_RETURN_IF_ERROR(device.vm().ImportState(vm));
  device.ImportExecState(exec);
  device.faults().ImportState(faults);
  return OkStatus();
}

// -- SCHD --------------------------------------------------------------------

void AppendSchedulerSection(const sched::Scheduler& sched, ImageWriter& w) {
  const sched::Scheduler::State s = sched.ExportState();
  ByteWriter b;
  b.U64(s.next_queue);
  b.U64(s.next_event);
  b.U32(static_cast<uint32_t>(s.queues.size()));
  for (const sched::Scheduler::QueueState& q : s.queues) {
    b.U64(q.id);
    b.Bool(q.ooo);
    b.F64(q.last_end);
    b.F64(q.barrier_end);
    b.F64(q.max_end);
    PutStatus(b, q.pending);
  }
  b.U32(static_cast<uint32_t>(s.events.size()));
  for (const sched::Scheduler::EventState& e : s.events) {
    b.U64(e.id);
    b.F64(e.times.queued_us);
    b.F64(e.times.start_us);
    b.F64(e.times.end_us);
    PutStatus(b, e.status);
  }
  w.AddSection(kSchdTag, b.Take());
}

Status RestoreSchedulerSection(const ImageReader& r, sched::Scheduler& sched) {
  BRIDGECL_ASSIGN_OR_RETURN(std::span<const std::byte> sec,
                            r.Section(kSchdTag));
  ByteReader b(sec);
  sched::Scheduler::State s;
  BRIDGECL_ASSIGN_OR_RETURN(s.next_queue, b.U64());
  BRIDGECL_ASSIGN_OR_RETURN(s.next_event, b.U64());
  BRIDGECL_ASSIGN_OR_RETURN(uint32_t nq, b.U32());
  s.queues.resize(nq);
  for (uint32_t i = 0; i < nq; ++i) {
    sched::Scheduler::QueueState& q = s.queues[i];
    BRIDGECL_ASSIGN_OR_RETURN(q.id, b.U64());
    BRIDGECL_ASSIGN_OR_RETURN(q.ooo, b.Bool());
    BRIDGECL_ASSIGN_OR_RETURN(q.last_end, b.F64());
    BRIDGECL_ASSIGN_OR_RETURN(q.barrier_end, b.F64());
    BRIDGECL_ASSIGN_OR_RETURN(q.max_end, b.F64());
    BRIDGECL_RETURN_IF_ERROR(TakeStatus(b, &q.pending));
  }
  BRIDGECL_ASSIGN_OR_RETURN(uint32_t ne, b.U32());
  s.events.resize(ne);
  for (uint32_t i = 0; i < ne; ++i) {
    sched::Scheduler::EventState& e = s.events[i];
    BRIDGECL_ASSIGN_OR_RETURN(e.id, b.U64());
    BRIDGECL_ASSIGN_OR_RETURN(e.times.queued_us, b.F64());
    BRIDGECL_ASSIGN_OR_RETURN(e.times.start_us, b.F64());
    BRIDGECL_ASSIGN_OR_RETURN(e.times.end_us, b.F64());
    BRIDGECL_RETURN_IF_ERROR(TakeStatus(b, &e.status));
  }
  if (!b.AtEnd()) return CorruptImage("trailing bytes in SCHD section");
  sched.ImportState(s);
  return OkStatus();
}

// -- MODC --------------------------------------------------------------------

void AppendModuleCacheSection(ImageWriter& w) {
  const std::vector<interp::ModuleCacheEntryState> entries =
      interp::ExportModuleCache();
  ByteWriter b;
  b.U32(static_cast<uint32_t>(entries.size()));
  for (const interp::ModuleCacheEntryState& e : entries) {
    b.U64(e.key);
    b.String(e.source);
    b.U8(static_cast<uint8_t>(e.dialect));
    b.String(e.build_options);
    b.Bool(e.ok);
    b.U32(static_cast<uint32_t>(e.diags.size()));
    for (const Diagnostic& d : e.diags) {
      b.U8(static_cast<uint8_t>(d.severity));
      b.U32(d.loc.line);
      b.U32(d.loc.column);
      b.String(d.message);
    }
  }
  w.AddSection(kModcTag, b.Take());
}

Status RestoreModuleCacheSection(const ImageReader& r) {
  BRIDGECL_ASSIGN_OR_RETURN(std::span<const std::byte> sec,
                            r.Section(kModcTag));
  ByteReader b(sec);
  BRIDGECL_ASSIGN_OR_RETURN(uint32_t n, b.U32());
  std::vector<interp::ModuleCacheEntryState> entries(n);
  for (uint32_t i = 0; i < n; ++i) {
    interp::ModuleCacheEntryState& e = entries[i];
    BRIDGECL_ASSIGN_OR_RETURN(e.key, b.U64());
    BRIDGECL_ASSIGN_OR_RETURN(e.source, b.String());
    BRIDGECL_ASSIGN_OR_RETURN(uint8_t dialect, b.U8());
    if (dialect > static_cast<uint8_t>(lang::Dialect::kCUDA))
      return CorruptImage("unknown dialect in module cache entry");
    e.dialect = static_cast<lang::Dialect>(dialect);
    BRIDGECL_ASSIGN_OR_RETURN(e.build_options, b.String());
    BRIDGECL_ASSIGN_OR_RETURN(e.ok, b.Bool());
    BRIDGECL_ASSIGN_OR_RETURN(uint32_t nd, b.U32());
    e.diags.resize(nd);
    for (uint32_t j = 0; j < nd; ++j) {
      Diagnostic& d = e.diags[j];
      BRIDGECL_ASSIGN_OR_RETURN(uint8_t sev, b.U8());
      d.severity = static_cast<DiagSeverity>(sev);
      BRIDGECL_ASSIGN_OR_RETURN(d.loc.line, b.U32());
      BRIDGECL_ASSIGN_OR_RETURN(d.loc.column, b.U32());
      BRIDGECL_ASSIGN_OR_RETURN(d.message, b.String());
    }
  }
  if (!b.AtEnd()) return CorruptImage("trailing bytes in MODC section");
  return interp::ImportModuleCache(entries);
}

}  // namespace bridgecl::snapshot
