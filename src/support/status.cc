#include "support/status.h"

namespace bridgecl {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kUnimplemented: return "unimplemented";
    case StatusCode::kFailedPrecondition: return "failed_precondition";
    case StatusCode::kOutOfRange: return "out_of_range";
    case StatusCode::kResourceExhausted: return "resource_exhausted";
    case StatusCode::kInternal: return "internal";
    case StatusCode::kUntranslatable: return "untranslatable";
    case StatusCode::kDeviceLost: return "device_lost";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

Status InvalidArgumentError(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
Status NotFoundError(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
Status UnimplementedError(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}
Status FailedPreconditionError(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
Status OutOfRangeError(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
Status ResourceExhaustedError(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
Status InternalError(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
Status UntranslatableError(std::string msg) {
  return Status(StatusCode::kUntranslatable, std::move(msg));
}
Status DeviceLostError(std::string msg) {
  return Status(StatusCode::kDeviceLost, std::move(msg));
}

}  // namespace bridgecl
