#include "support/source_location.h"

namespace bridgecl {

std::string SourceLoc::ToString() const {
  if (!valid()) return "<unknown>";
  return std::to_string(line) + ":" + std::to_string(column);
}

static const char* SeverityName(DiagSeverity s) {
  switch (s) {
    case DiagSeverity::kNote: return "note";
    case DiagSeverity::kWarning: return "warning";
    case DiagSeverity::kError: return "error";
  }
  return "unknown";
}

std::string Diagnostic::ToString() const {
  return loc.ToString() + ": " + SeverityName(severity) + ": " + message;
}

void DiagnosticEngine::Error(SourceLoc loc, std::string message) {
  diags_.push_back({DiagSeverity::kError, loc, std::move(message)});
  ++error_count_;
}

void DiagnosticEngine::Warning(SourceLoc loc, std::string message) {
  diags_.push_back({DiagSeverity::kWarning, loc, std::move(message)});
}

void DiagnosticEngine::Note(SourceLoc loc, std::string message) {
  diags_.push_back({DiagSeverity::kNote, loc, std::move(message)});
}

std::string DiagnosticEngine::ToString() const {
  std::string out;
  for (const Diagnostic& d : diags_) {
    out += d.ToString();
    out += '\n';
  }
  return out;
}

void DiagnosticEngine::Clear() {
  diags_.clear();
  error_count_ = 0;
}

}  // namespace bridgecl
