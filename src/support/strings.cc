#include "support/strings.h"

#include <cstdarg>
#include <cstdio>

namespace bridgecl {

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string_view StripAsciiWhitespace(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\n' || s[b] == '\r'))
    ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\n' ||
                   s[e - 1] == '\r'))
    --e;
  return s.substr(b, e - b);
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(s.substr(start));
      return out;
    }
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  int n = vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n) + 1);
    vsnprintf(out.data(), out.size(), fmt, args);
    out.resize(static_cast<size_t>(n));
  }
  va_end(args);
  return out;
}

}  // namespace bridgecl
