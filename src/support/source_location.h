// Source positions and diagnostics for the kernel-language front end and
// the translator. Every token and AST node carries a SourceLoc so that
// translation failures point at the offending construct, mirroring the
// clang-based tooling of the paper.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bridgecl {

/// 1-based line/column position inside a named source buffer.
struct SourceLoc {
  uint32_t line = 0;    // 1-based; 0 means "unknown"
  uint32_t column = 0;  // 1-based
  bool valid() const { return line != 0; }
  std::string ToString() const;  // "line:col" or "<unknown>"
};

enum class DiagSeverity { kNote, kWarning, kError };

/// One diagnostic message anchored to a source position.
struct Diagnostic {
  DiagSeverity severity = DiagSeverity::kError;
  SourceLoc loc;
  std::string message;
  std::string ToString() const;  // "12:4: error: ..."
};

/// Collects diagnostics during lexing/parsing/sema/translation.
/// Cheap to pass by reference through the front end.
class DiagnosticEngine {
 public:
  void Error(SourceLoc loc, std::string message);
  void Warning(SourceLoc loc, std::string message);
  void Note(SourceLoc loc, std::string message);

  bool has_errors() const { return error_count_ > 0; }
  int error_count() const { return error_count_; }
  const std::vector<Diagnostic>& diagnostics() const { return diags_; }

  /// All diagnostics, one per line; for error messages and tests.
  std::string ToString() const;

  void Clear();

 private:
  std::vector<Diagnostic> diags_;
  int error_count_ = 0;
};

}  // namespace bridgecl
