// Lightweight Status / StatusOr error-propagation types used at every
// library boundary in BridgeCL. Modeled on absl::Status but dependency-free.
//
// Conventions (per C++ Core Guidelines E.*): recoverable, expected failures
// (bad source code, unsupported features, API misuse) travel as Status;
// programming errors inside the library are assertions.
#pragma once

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <variant>

// Always-on invariant check: unlike assert(), survives NDEBUG builds.
// Dereferencing a non-ok StatusOr must abort loudly in release binaries
// rather than read the wrong variant alternative (undefined behavior).
#define BRIDGECL_CHECK(cond, what)                                        \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "BRIDGECL_CHECK failed at %s:%d: %s\n",        \
                   __FILE__, __LINE__, (what));                           \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

namespace bridgecl {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kNotFound,          // named entity does not exist
  kUnimplemented,     // feature recognized but not supported
  kFailedPrecondition,// object in wrong state for the call
  kOutOfRange,        // index/size beyond limits
  kResourceExhausted, // allocation limits exceeded
  kInternal,          // invariant violation surfaced as an error
  kUntranslatable,    // source program uses a model-specific feature
  kDeviceLost,        // simulated device loss; sticky until context release
};

/// Human-readable name of a status code ("ok", "invalid_argument", ...).
const char* StatusCodeName(StatusCode code);

/// A success-or-error result with a message. Cheap to move, comparable.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk && "use Status() / OkStatus() for success");
  }

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Spec error code of the emulated API (a negative CL_* value or a
  /// positive cudaError_t value) attached where the failure crossed an
  /// mocl/mcuda boundary; 0 when no API annotation applies. Conformance
  /// tests and the wrapper mapping tables read this instead of parsing
  /// messages.
  int api_code() const { return api_code_; }
  Status& set_api_code(int code) {
    api_code_ = code;
    return *this;
  }

  /// "ok" or "<code>: <message>"; for logs and test failure output.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
  int api_code_ = 0;
};

inline Status OkStatus() { return Status::Ok(); }

Status InvalidArgumentError(std::string msg);
Status NotFoundError(std::string msg);
Status UnimplementedError(std::string msg);
Status FailedPreconditionError(std::string msg);
Status OutOfRangeError(std::string msg);
Status ResourceExhaustedError(std::string msg);
Status InternalError(std::string msg);
Status UntranslatableError(std::string msg);
Status DeviceLostError(std::string msg);

/// Holds either a value of T or a non-ok Status. Dereferencing a non-ok
/// StatusOr is a programming error: it aborts, in release builds too
/// (BRIDGECL_CHECK, not assert).
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : rep_(std::move(status)) {
    assert(!std::get<Status>(rep_).ok() &&
           "StatusOr must not be constructed from an ok Status");
  }
  StatusOr(T value) : rep_(std::move(value)) {}

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(rep_);
  }

  T& value() & {
    BRIDGECL_CHECK(ok(), status().ToString().c_str());
    return std::get<T>(rep_);
  }
  const T& value() const& {
    BRIDGECL_CHECK(ok(), status().ToString().c_str());
    return std::get<T>(rep_);
  }
  T&& value() && {
    BRIDGECL_CHECK(ok(), status().ToString().c_str());
    return std::get<T>(std::move(rep_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<Status, T> rep_;
};

// Propagate a non-ok Status to the caller.
#define BRIDGECL_RETURN_IF_ERROR(expr)              \
  do {                                              \
    ::bridgecl::Status _st = (expr);                \
    if (!_st.ok()) return _st;                      \
  } while (0)

// Evaluate a StatusOr expression; bind the value or propagate the error.
#define BRIDGECL_ASSIGN_OR_RETURN(lhs, expr)        \
  BRIDGECL_ASSIGN_OR_RETURN_IMPL_(                  \
      BRIDGECL_CONCAT_(_statusor_, __LINE__), lhs, expr)
#define BRIDGECL_CONCAT_INNER_(a, b) a##b
#define BRIDGECL_CONCAT_(a, b) BRIDGECL_CONCAT_INNER_(a, b)
#define BRIDGECL_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                    \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value()

}  // namespace bridgecl
