// Small string helpers shared across modules. No dependencies.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace bridgecl {

/// True if `s` starts with / ends with the given prefix/suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Split on a single character; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Join pieces with `sep`.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);

/// Strip ASCII whitespace from both ends.
std::string_view StripAsciiWhitespace(std::string_view s);

/// Replace every occurrence of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace bridgecl
