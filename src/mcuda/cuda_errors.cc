#include "mcuda/cuda_errors.h"

namespace bridgecl::mcuda {

const char* CudaErrorName(int code) {
  switch (code) {
    case cudaSuccess: return "cudaSuccess";
    case cudaErrorMissingConfiguration:
      return "cudaErrorMissingConfiguration";
    case cudaErrorMemoryAllocation: return "cudaErrorMemoryAllocation";
    case cudaErrorInitializationError:
      return "cudaErrorInitializationError";
    case cudaErrorLaunchFailure: return "cudaErrorLaunchFailure";
    case cudaErrorLaunchOutOfResources:
      return "cudaErrorLaunchOutOfResources";
    case cudaErrorInvalidDeviceFunction:
      return "cudaErrorInvalidDeviceFunction";
    case cudaErrorInvalidConfiguration:
      return "cudaErrorInvalidConfiguration";
    case cudaErrorInvalidValue: return "cudaErrorInvalidValue";
    case cudaErrorInvalidSymbol: return "cudaErrorInvalidSymbol";
    case cudaErrorInvalidDevicePointer:
      return "cudaErrorInvalidDevicePointer";
    case cudaErrorInvalidTexture: return "cudaErrorInvalidTexture";
    case cudaErrorInvalidChannelDescriptor:
      return "cudaErrorInvalidChannelDescriptor";
    case cudaErrorInvalidMemcpyDirection:
      return "cudaErrorInvalidMemcpyDirection";
    case cudaErrorUnknown: return "cudaErrorUnknown";
    case cudaErrorInvalidResourceHandle:
      return "cudaErrorInvalidResourceHandle";
    case cudaErrorNotReady: return "cudaErrorNotReady";
    case cudaErrorDevicesUnavailable: return "cudaErrorDevicesUnavailable";
    case cudaErrorNoKernelImageForDevice:
      return "cudaErrorNoKernelImageForDevice";
    case cudaErrorAssert: return "cudaErrorAssert";
    case cudaErrorNotSupported: return "cudaErrorNotSupported";
    default: return "cudaErrorUnknownCode";
  }
}

int CudaCodeFor(const Status& st, int fallback) {
  if (IsCudaCode(st.api_code())) return st.api_code();
  switch (st.code()) {
    case StatusCode::kOk: return cudaSuccess;
    case StatusCode::kDeviceLost: return cudaErrorDevicesUnavailable;
    case StatusCode::kResourceExhausted: return fallback;
    case StatusCode::kInvalidArgument: return cudaErrorInvalidValue;
    case StatusCode::kOutOfRange: return cudaErrorInvalidValue;
    case StatusCode::kNotFound: return cudaErrorInvalidValue;
    case StatusCode::kFailedPrecondition: return cudaErrorInvalidValue;
    case StatusCode::kUnimplemented: return cudaErrorNotSupported;
    // Device-side execution faults (guarded-memory violations, injected
    // traps): the classic sticky "unspecified launch failure".
    case StatusCode::kInternal: return cudaErrorLaunchFailure;
    case StatusCode::kUntranslatable: return cudaErrorInvalidDeviceFunction;
  }
  return fallback;
}

}  // namespace bridgecl::mcuda
