#include <algorithm>
#include <cstring>
#include <functional>
#include <unordered_map>

#include "interp/executor.h"
#include "interp/image.h"
#include "interp/module.h"
#include "mcuda/cuda_api.h"
#include "mcuda/cuda_errors.h"
#include "sched/scheduler.h"
#include "simgpu/fault_injector.h"
#include "snapshot/snapshot.h"
#include "support/strings.h"
#include "trace/session.h"
#include "trace/trace.h"

namespace bridgecl::mcuda {
namespace {

using interp::ImageDesc;
using interp::KernelArg;
using interp::Module;
using lang::ScalarKind;
using simgpu::Device;
using simgpu::Dim3;
using simgpu::FaultInjector;
using simgpu::RetryTransient;
using simgpu::TransferWithFaults;
using trace::TraceKind;

struct ArrayRec {
  uint64_t data_va = 0;
  size_t width = 0, height = 1;
  ChannelDesc desc;
  size_t byte_size = 0;
};

struct TextureRec {
  uint64_t desc_va = 0;  // ImageDesc in device memory
};

class NativeCudaApi final : public CudaApi {
 public:
  explicit NativeCudaApi(Device& device)
      : device_(device),
        // BRIDGECL_TRACE / BRIDGECL_TRACE_SUMMARY attach a recorder to the
        // device for this runtime's lifetime (docs/OBSERVABILITY.md).
        auto_trace_(trace::TraceSession::MaybeAttachFromEnv(device)),
        sched_(device, "mcuda") {
    device_.set_bank_mode(device_.profile().cuda_bank_mode);
  }

  trace::TraceRecorder* Tracer() const override { return device_.tracer(); }

  Status RegisterModule(const std::string& cuda_source) override {
    auto span = Span(TraceKind::kApiCall, "cudaRegisterFatBinary");
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    // Static compilation: no run-time build cost is charged (CUDA embeds
    // compiled device code in the executable, §3.4).
    DiagnosticEngine diags;
    interp::ModuleCacheOutcome cache_outcome;
    auto m = Module::Compile(cuda_source, lang::Dialect::kCUDA, diags,
                             /*build_options=*/"", &cache_outcome);
    if (cache_outcome != interp::ModuleCacheOutcome::kDisabled) {
      auto stats = interp::GetModuleCacheStats();
      span.SetModuleCache(cache_outcome == interp::ModuleCacheOutcome::kHit,
                          stats.hits, stats.misses);
    }
    if (!m.ok())
      return AsCuda(Status(m.status().code(),
                           m.status().message() + "\n" + diags.ToString()),
                    cudaErrorInvalidDeviceFunction);
    BRIDGECL_RETURN_IF_ERROR(
        Seal((*m)->LoadOn(device_), cudaErrorMemoryAllocation));
    modules_.push_back(std::move(*m));
    return OkStatus();
  }

  StatusOr<void*> Malloc(size_t size) override {
    auto span = Span(TraceKind::kApiCall, "cudaMalloc");
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    device_.ChargeApiCall();
    auto va_or = RetryTransient(
        device_.faults(), [&] { return device_.vm().AllocGlobal(size); });
    if (!va_or.ok()) return Seal(va_or.status(), cudaErrorMemoryAllocation);
    return reinterpret_cast<void*>(*va_or);
  }

  Status Free(void* ptr) override {
    auto span = Span(TraceKind::kApiCall, "cudaFree");
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    device_.ChargeApiCall();
    Status st = RetryTransient(device_.faults(), [&] {
      return device_.vm().FreeGlobal(reinterpret_cast<uint64_t>(ptr));
    });
    if (!st.ok() && st.code() == StatusCode::kInvalidArgument)
      return AsCuda(std::move(st), cudaErrorInvalidDevicePointer);
    return Seal(std::move(st), cudaErrorUnknown);
  }

  Status Memcpy(void* dst, const void* src, size_t size,
                MemcpyKind kind) override {
    return MemcpyImpl(dst, src, size, kind, sched::kDefaultQueue,
                      /*blocking=*/true, "cudaMemcpy");
  }

  Status MemcpyAsync(void* dst, const void* src, size_t size, MemcpyKind kind,
                     void* stream) override {
    return MemcpyImpl(dst, src, size, kind,
                      reinterpret_cast<uint64_t>(stream),
                      /*blocking=*/false, "cudaMemcpyAsync");
  }

  Status MemcpyToSymbol(const std::string& symbol, const void* src,
                        size_t size, size_t offset) override {
    auto span = Span(TraceKind::kH2D, "cudaMemcpyToSymbol");
    span.SetBytes(size);
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    device_.ChargeApiCall();
    BRIDGECL_ASSIGN_OR_RETURN(Module::Symbol sym, FindSymbol(symbol));
    if (offset + size > sym.size)
      return AsCuda(OutOfRangeError("copy beyond symbol '" + symbol + "'"),
                    cudaErrorInvalidValue);
    BRIDGECL_ASSIGN_OR_RETURN(std::byte * p,
                              DeviceRange(sym.va + offset, size));
    return Seal(TransferWithFaults(device_.faults(), size,
                                   [&](size_t n) {
                                     std::memcpy(p, src, n);
                                     device_.ChargeCopy(n);
                                     device_.stats().host_to_device_bytes += n;
                                   }),
                cudaErrorLaunchFailure);
  }

  Status MemcpyFromSymbol(void* dst, const std::string& symbol, size_t size,
                          size_t offset) override {
    auto span = Span(TraceKind::kD2H, "cudaMemcpyFromSymbol");
    span.SetBytes(size);
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    device_.ChargeApiCall();
    BRIDGECL_ASSIGN_OR_RETURN(Module::Symbol sym, FindSymbol(symbol));
    if (offset + size > sym.size)
      return AsCuda(OutOfRangeError("copy beyond symbol '" + symbol + "'"),
                    cudaErrorInvalidValue);
    BRIDGECL_ASSIGN_OR_RETURN(std::byte * p,
                              DeviceRange(sym.va + offset, size));
    return Seal(TransferWithFaults(device_.faults(), size,
                                   [&](size_t n) {
                                     std::memcpy(dst, p, n);
                                     device_.ChargeCopy(n);
                                     device_.stats().device_to_host_bytes += n;
                                   }),
                cudaErrorLaunchFailure);
  }

  StatusOr<std::pair<size_t, size_t>> MemGetInfo() override {
    auto span = Span(TraceKind::kApiCall, "cudaMemGetInfo");
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    device_.ChargeApiCall();
    size_t total = device_.vm().global_capacity();
    return std::make_pair(total - device_.vm().global_in_use(), total);
  }

  Status LaunchKernel(const std::string& kernel, Dim3 grid, Dim3 block,
                      size_t shared_bytes,
                      std::span<const LaunchArg> args) override {
    return LaunchImpl(kernel, grid, block, shared_bytes, args,
                      sched::kDefaultQueue, /*blocking=*/true);
  }

  Status LaunchKernelOnStream(const std::string& kernel, Dim3 grid,
                              Dim3 block, size_t shared_bytes,
                              std::span<const LaunchArg> args,
                              void* stream) override {
    return LaunchImpl(kernel, grid, block, shared_bytes, args,
                      reinterpret_cast<uint64_t>(stream),
                      /*blocking=*/false);
  }

  Status DeviceSynchronize() override {
    auto span = Span(TraceKind::kApiCall, "cudaDeviceSynchronize");
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    device_.ChargeApiCall();
    // Drains every stream; deferred async errors surface here with the
    // code the failing command sealed (docs/ROBUSTNESS.md).
    return span.Sealed(Seal(sched_.SynchronizeAll(), cudaErrorLaunchFailure));
  }

  StatusOr<void*> StreamCreate() override {
    auto span = Span(TraceKind::kApiCall, "cudaStreamCreate");
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    device_.ChargeApiCall();
    // Scheduler queue ids start at 1, so the handle is never the null
    // (default) stream.
    return reinterpret_cast<void*>(sched_.CreateQueue(false));
  }

  Status StreamDestroy(void* stream) override {
    auto span = Span(TraceKind::kApiCall, "cudaStreamDestroy");
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    device_.ChargeApiCall();
    const uint64_t q = reinterpret_cast<uint64_t>(stream);
    if (q == sched::kDefaultQueue || !sched_.HasQueue(q))
      return span.Sealed(AsCuda(InvalidArgumentError("unknown stream"),
                                cudaErrorInvalidResourceHandle));
    return span.Sealed(Seal(sched_.ReleaseQueue(q), cudaErrorLaunchFailure));
  }

  Status StreamSynchronize(void* stream) override {
    auto span = Span(TraceKind::kApiCall, "cudaStreamSynchronize");
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    device_.ChargeApiCall();
    const uint64_t q = reinterpret_cast<uint64_t>(stream);
    if (!sched_.HasQueue(q))
      return span.Sealed(AsCuda(InvalidArgumentError("unknown stream"),
                                cudaErrorInvalidResourceHandle));
    return span.Sealed(Seal(sched_.Synchronize(q), cudaErrorLaunchFailure));
  }

  Status StreamWaitEvent(void* stream, void* event) override {
    auto span = Span(TraceKind::kApiCall, "cudaStreamWaitEvent");
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    device_.ChargeApiCall();
    const uint64_t q = reinterpret_cast<uint64_t>(stream);
    if (!sched_.HasQueue(q))
      return span.Sealed(AsCuda(InvalidArgumentError("unknown stream"),
                                cudaErrorInvalidResourceHandle));
    auto it = events_.find(reinterpret_cast<uint64_t>(event));
    if (it == events_.end())
      return span.Sealed(AsCuda(InvalidArgumentError("unknown event"),
                                cudaErrorInvalidResourceHandle));
    if (it->second == 0) return OkStatus();  // unrecorded: no-op (CUDA)
    return span.Sealed(Seal(sched_.StreamWaitEvent(q, it->second),
                            cudaErrorInvalidResourceHandle));
  }

  Status EventSynchronize(void* event) override {
    auto span = Span(TraceKind::kApiCall, "cudaEventSynchronize");
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    device_.ChargeApiCall();
    auto it = events_.find(reinterpret_cast<uint64_t>(event));
    if (it == events_.end())
      return span.Sealed(AsCuda(InvalidArgumentError("unknown event"),
                                cudaErrorInvalidResourceHandle));
    if (it->second == 0) return OkStatus();  // unrecorded: already complete
    return span.Sealed(
        Seal(sched_.EventSynchronize(it->second), cudaErrorLaunchFailure));
  }

  StatusOr<CudaDeviceProps> GetDeviceProperties() override {
    auto span = Span(TraceKind::kApiCall, "cudaGetDeviceProperties");
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    // Native CUDA fills the whole struct in a single driver query.
    device_.ChargeApiCall();
    device_.AdvanceUs(device_.profile().device_query_us);
    const auto& p = device_.profile();
    CudaDeviceProps props;
    props.name = p.name;
    props.total_global_mem = p.global_mem_size;
    props.shared_mem_per_block = p.shared_mem_per_block;
    props.total_const_mem = p.constant_mem_size;
    props.regs_per_block = p.max_registers_per_cu;
    props.warp_size = p.warp_size;
    props.max_threads_per_block = p.max_threads_per_block;
    props.multi_processor_count = p.compute_units;
    props.clock_rate_khz = static_cast<int>(p.clock_ghz * 1e6);
    props.max_texture1d_linear = p.cuda_max_tex1d_linear_width;
    return props;
  }

  Status BindTexture(const std::string& texref, void* device_ptr,
                     size_t bytes, const ChannelDesc& desc,
                     bool normalized) override {
    auto span = Span(TraceKind::kApiCall, "cudaBindTexture");
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    device_.ChargeApiCall();
    size_t texel = lang::ScalarByteSize(desc.elem) * desc.channels;
    size_t width = bytes / texel;
    if (width > device_.profile().cuda_max_tex1d_linear_width)
      return AsCuda(InvalidArgumentError(
                        "1D linear texture exceeds the 2^27 texel limit"),
                    cudaErrorInvalidValue);
    uint32_t sampler = normalized ? uint32_t{interp::kSamplerNormalizedCoords} : 0u;
    sampler |= interp::kSamplerAddressClamp;
    return MakeBinding(texref, reinterpret_cast<uint64_t>(device_ptr), width,
                       1, width * texel, desc, sampler);
  }

  Status BindTexture2D(const std::string& texref, void* device_ptr,
                       size_t width, size_t height, size_t pitch,
                       const ChannelDesc& desc) override {
    auto span = Span(TraceKind::kApiCall, "cudaBindTexture2D");
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    device_.ChargeApiCall();
    return MakeBinding(texref, reinterpret_cast<uint64_t>(device_ptr), width,
                       height, pitch, desc, interp::kSamplerAddressClamp);
  }

  StatusOr<void*> MallocArray(const ChannelDesc& desc, size_t width,
                              size_t height) override {
    auto span = Span(TraceKind::kApiCall, "cudaMallocArray");
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    device_.ChargeApiCall();
    size_t texel = lang::ScalarByteSize(desc.elem) * desc.channels;
    size_t bytes = width * std::max<size_t>(height, 1) * texel;
    auto va_or = RetryTransient(
        device_.faults(), [&] { return device_.vm().AllocGlobal(bytes); });
    if (!va_or.ok()) return Seal(va_or.status(), cudaErrorMemoryAllocation);
    uint64_t va = *va_or;
    ArrayRec rec;
    rec.data_va = va;
    rec.width = width;
    rec.height = std::max<size_t>(height, 1);
    rec.desc = desc;
    rec.byte_size = bytes;
    arrays_[va] = rec;
    return reinterpret_cast<void*>(va);
  }

  Status MemcpyToArray(void* array, const void* src, size_t bytes) override {
    auto span = Span(TraceKind::kH2D, "cudaMemcpyToArray");
    span.SetBytes(bytes);
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    device_.ChargeApiCall();
    auto it = arrays_.find(reinterpret_cast<uint64_t>(array));
    if (it == arrays_.end())
      return AsCuda(InvalidArgumentError("unknown cudaArray"),
                    cudaErrorInvalidValue);
    if (bytes > it->second.byte_size)
      return AsCuda(OutOfRangeError("copy beyond array end"),
                    cudaErrorInvalidValue);
    BRIDGECL_ASSIGN_OR_RETURN(std::byte * p,
                              DeviceRange(it->second.data_va, bytes));
    return Seal(TransferWithFaults(device_.faults(), bytes,
                                   [&](size_t n) {
                                     std::memcpy(p, src, n);
                                     device_.ChargeCopy(n);
                                     device_.stats().host_to_device_bytes += n;
                                   }),
                cudaErrorLaunchFailure);
  }

  Status BindTextureToArray(const std::string& texref, void* array,
                            bool filter_linear, bool normalized) override {
    auto span = Span(TraceKind::kApiCall, "cudaBindTextureToArray");
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    device_.ChargeApiCall();
    auto it = arrays_.find(reinterpret_cast<uint64_t>(array));
    if (it == arrays_.end())
      return AsCuda(InvalidArgumentError("unknown cudaArray"),
                    cudaErrorInvalidValue);
    const ArrayRec& a = it->second;
    uint32_t sampler = interp::kSamplerAddressClamp;
    if (filter_linear) sampler |= interp::kSamplerFilterLinear;
    if (normalized) sampler |= interp::kSamplerNormalizedCoords;
    size_t texel = lang::ScalarByteSize(a.desc.elem) * a.desc.channels;
    return MakeBinding(texref, a.data_va, a.width, a.height, a.width * texel,
                       a.desc, sampler);
  }

  Status UnbindTexture(const std::string& texref) override {
    auto span = Span(TraceKind::kApiCall, "cudaUnbindTexture");
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    device_.ChargeApiCall();
    auto it = textures_.find(texref);
    if (it == textures_.end()) return OkStatus();  // CUDA tolerates this
    BRIDGECL_RETURN_IF_ERROR(
        Seal(RetryTransient(device_.faults(),
                            [&] {
                              return device_.vm().FreeGlobal(
                                  it->second.desc_va);
                            }),
             cudaErrorUnknown));
    textures_.erase(it);
    return OkStatus();
  }

  StatusOr<void*> EventCreate() override {
    auto span = Span(TraceKind::kApiCall, "cudaEventCreate");
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    device_.ChargeApiCall();
    uint64_t id = next_event_++;
    events_[id] = 0;  // created but not recorded
    return reinterpret_cast<void*>(id);
  }

  Status EventRecord(void* event) override {
    return EventRecordOnStream(event, nullptr);
  }

  Status EventRecordOnStream(void* event, void* stream) override {
    auto span = Span(TraceKind::kApiCall, "cudaEventRecord");
    double queued = device_.now_us();
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    device_.ChargeApiCall();
    auto it = events_.find(reinterpret_cast<uint64_t>(event));
    if (it == events_.end())
      return AsCuda(InvalidArgumentError("unknown event"),
                    cudaErrorInvalidResourceHandle);
    const uint64_t q = reinterpret_cast<uint64_t>(stream);
    if (!sched_.HasQueue(q))
      return span.Sealed(AsCuda(InvalidArgumentError("unknown stream"),
                                cudaErrorInvalidResourceHandle));
    // A cudaEvent records as a scheduler marker: it completes when the
    // stream's previously enqueued work completes.
    sched::CommandSpec spec;
    spec.queue = q;
    auto res = sched_.Enqueue(spec, /*blocking=*/false, queued,
                              [] { return OkStatus(); });
    BRIDGECL_RETURN_IF_ERROR(
        span.Sealed(Seal(std::move(res.status), cudaErrorLaunchFailure)));
    if (it->second != 0) sched_.ReleaseEvent(it->second);  // re-record
    it->second = res.event;
    return OkStatus();
  }

  StatusOr<double> EventElapsedUs(void* start, void* end) override {
    auto span = Span(TraceKind::kApiCall, "cudaEventElapsedTime");
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    device_.ChargeApiCall();
    auto s = events_.find(reinterpret_cast<uint64_t>(start));
    auto e = events_.find(reinterpret_cast<uint64_t>(end));
    if (s == events_.end() || e == events_.end())
      return AsCuda(InvalidArgumentError("unknown event"),
                    cudaErrorInvalidResourceHandle);
    if (s->second == 0 || e->second == 0)
      return AsCuda(FailedPreconditionError("event was never recorded"),
                    cudaErrorNotReady);
    auto ts = sched_.TimesOf(s->second);
    auto te = sched_.TimesOf(e->second);
    if (!ts.ok() || !te.ok())
      return AsCuda(InvalidArgumentError("unknown event"),
                    cudaErrorInvalidResourceHandle);
    return te->end_us - ts->end_us;
  }

  Status EventDestroy(void* event) override {
    auto span = Span(TraceKind::kApiCall, "cudaEventDestroy");
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    device_.ChargeApiCall();
    auto it = events_.find(reinterpret_cast<uint64_t>(event));
    if (it == events_.end())
      return AsCuda(InvalidArgumentError("unknown event"),
                    cudaErrorInvalidResourceHandle);
    if (it->second != 0) sched_.ReleaseEvent(it->second);
    events_.erase(it);
    return OkStatus();
  }

  Status SetKernelRegisters(const std::string& kernel, int regs) override {
    for (auto& m : modules_) {
      if (m->FindKernel(kernel) != nullptr) {
        m->SetRegisterOverride(kernel, regs);
        return OkStatus();
      }
    }
    return AsCuda(NotFoundError("no kernel '" + kernel + "' registered"),
                  cudaErrorInvalidDeviceFunction);
  }

  double NowUs() const override { return device_.now_us(); }

  // -- bridgeclSnapshot / bridgeclRestore (src/snapshot) ---------------------
  // Neither entry point charges simulated time or advances the clock: the
  // clock is part of the captured state. Snapshot deliberately skips
  // CheckUsable — a lost context can still be imaged for offline
  // inspection and cross-device migration.
  Status Snapshot(const std::string& path) override {
    snapshot::ImageWriter w;
    snapshot::AppendDeviceSections(device_, w);
    snapshot::AppendModuleCacheSection(w);
    snapshot::AppendSchedulerSection(sched_, w);

    snapshot::ByteWriter b;
    b.U64(next_event_);
    // Modules in registration order (a vector — already deterministic).
    b.U32(static_cast<uint32_t>(modules_.size()));
    for (const auto& m : modules_) {
      b.String(m->source());
      snapshot::PutModuleLayout(b, *m);
    }

    std::vector<uint64_t> keys;
    keys.reserve(arrays_.size());
    for (const auto& [va, rec] : arrays_) keys.push_back(va);
    std::sort(keys.begin(), keys.end());
    b.U32(static_cast<uint32_t>(keys.size()));
    for (uint64_t va : keys) {
      const ArrayRec& rec = arrays_.at(va);
      b.U64(va);
      b.U64(rec.data_va);
      b.U64(rec.width);
      b.U64(rec.height);
      b.U8(static_cast<uint8_t>(rec.desc.elem));
      b.I32(rec.desc.channels);
      b.U64(rec.byte_size);
    }

    std::vector<std::string> names;
    names.reserve(textures_.size());
    for (const auto& [name, rec] : textures_) names.push_back(name);
    std::sort(names.begin(), names.end());
    b.U32(static_cast<uint32_t>(names.size()));
    for (const std::string& name : names) {
      b.String(name);
      b.U64(textures_.at(name).desc_va);
    }

    keys.clear();
    keys.reserve(events_.size());
    for (const auto& [handle, ev] : events_) keys.push_back(handle);
    std::sort(keys.begin(), keys.end());
    b.U32(static_cast<uint32_t>(keys.size()));
    for (uint64_t handle : keys) {
      b.U64(handle);
      b.U64(events_.at(handle));
    }
    w.AddSection("MCUD", b.Take());
    return Seal(w.WriteFile(path, device_.profile().name),
                cudaErrorInvalidValue);
  }

  Status Restore(const std::string& path) override {
    auto img_or = snapshot::ImageReader::Open(path);
    if (!img_or.ok()) return Seal(img_or.status(), cudaErrorInvalidValue);
    const snapshot::ImageReader& img = *img_or;
    auto sec_or = img.Section("MCUD");
    if (!sec_or.ok())
      return AsCuda(InvalidArgumentError(
                        "snapshot image was not taken by a CUDA context"),
                    cudaErrorInvalidValue);

    // Decode the whole layer section before touching any state: a corrupt
    // image must leave the context exactly as it was.
    snapshot::ByteReader b(*sec_or);
    uint64_t next_event = 0;
    struct ModuleImage {
      std::string source;
      snapshot::ModuleLayout layout;
    };
    std::vector<ModuleImage> module_images;
    std::unordered_map<uint64_t, ArrayRec> arrays;
    std::unordered_map<std::string, TextureRec> textures;
    std::unordered_map<uint64_t, uint64_t> events;
    {
      Status st = [&]() -> Status {
        BRIDGECL_ASSIGN_OR_RETURN(next_event, b.U64());
        BRIDGECL_ASSIGN_OR_RETURN(uint32_t n, b.U32());
        module_images.resize(n);
        for (uint32_t i = 0; i < n; ++i) {
          BRIDGECL_ASSIGN_OR_RETURN(module_images[i].source, b.String());
          BRIDGECL_RETURN_IF_ERROR(
              snapshot::TakeModuleLayout(b, &module_images[i].layout));
        }
        BRIDGECL_ASSIGN_OR_RETURN(n, b.U32());
        for (uint32_t i = 0; i < n; ++i) {
          BRIDGECL_ASSIGN_OR_RETURN(uint64_t va, b.U64());
          ArrayRec rec;
          BRIDGECL_ASSIGN_OR_RETURN(rec.data_va, b.U64());
          BRIDGECL_ASSIGN_OR_RETURN(uint64_t width, b.U64());
          rec.width = width;
          BRIDGECL_ASSIGN_OR_RETURN(uint64_t height, b.U64());
          rec.height = height;
          BRIDGECL_ASSIGN_OR_RETURN(uint8_t elem, b.U8());
          rec.desc.elem = static_cast<ScalarKind>(elem);
          BRIDGECL_ASSIGN_OR_RETURN(rec.desc.channels, b.I32());
          BRIDGECL_ASSIGN_OR_RETURN(uint64_t bytes, b.U64());
          rec.byte_size = bytes;
          arrays[va] = rec;
        }
        BRIDGECL_ASSIGN_OR_RETURN(n, b.U32());
        for (uint32_t i = 0; i < n; ++i) {
          BRIDGECL_ASSIGN_OR_RETURN(std::string name, b.String());
          BRIDGECL_ASSIGN_OR_RETURN(uint64_t desc_va, b.U64());
          textures[name] = TextureRec{desc_va};
        }
        BRIDGECL_ASSIGN_OR_RETURN(n, b.U32());
        for (uint32_t i = 0; i < n; ++i) {
          BRIDGECL_ASSIGN_OR_RETURN(uint64_t handle, b.U64());
          BRIDGECL_ASSIGN_OR_RETURN(uint64_t ev, b.U64());
          events[handle] = ev;
        }
        if (!b.AtEnd())
          return InvalidArgumentError(
              "corrupt snapshot image: trailing bytes in MCUD section");
        return OkStatus();
      }();
      if (!st.ok()) return Seal(std::move(st), cudaErrorInvalidValue);
    }

    // Shared state. The VM import is the only fallible mutation and it
    // validates capacity before changing anything, so a cross-profile
    // restore onto a too-small device fails cleanly
    // (cudaErrorMemoryAllocation).
    BRIDGECL_RETURN_IF_ERROR(Seal(snapshot::RestoreModuleCacheSection(img),
                                  cudaErrorInvalidValue));
    BRIDGECL_RETURN_IF_ERROR(
        Seal(snapshot::RestoreDeviceSections(img, device_),
             cudaErrorMemoryAllocation));
    BRIDGECL_RETURN_IF_ERROR(
        Seal(snapshot::RestoreSchedulerSection(img, sched_),
             cudaErrorInvalidValue));

    // Modules: recompile (a cache hit after the MODC import) and adopt the
    // image's symbol layout — LoadOn would re-allocate and clobber the
    // memory restored above.
    std::vector<std::unique_ptr<Module>> new_modules;
    new_modules.reserve(module_images.size());
    for (const ModuleImage& mi : module_images) {
      DiagnosticEngine diags;
      auto m = Module::Compile(mi.source, lang::Dialect::kCUDA, diags);
      if (!m.ok())
        return AsCuda(InvalidArgumentError(
                          "snapshot image holds a module that no longer "
                          "compiles: " + m.status().message()),
                      cudaErrorInvalidValue);
      Status st = snapshot::ApplyModuleLayout(**m, device_, mi.layout);
      if (!st.ok()) return Seal(std::move(st), cudaErrorInvalidValue);
      new_modules.push_back(std::move(*m));
    }
    modules_ = std::move(new_modules);
    arrays_ = std::move(arrays);
    textures_ = std::move(textures);
    events_ = std::move(events);
    next_event_ = next_event;

    // Cross-profile migration: re-apply this runtime's profile-default
    // bank mode when the image came from a different profile (same-profile
    // restores keep the image's mode bit-identically).
    if (img.info().profile != device_.profile().name)
      device_.set_bank_mode(device_.profile().cuda_bank_mode);
    return OkStatus();
  }

 private:
  /// Per-entry-point trace span; a no-op when no recorder is attached.
  trace::TraceSpan Span(TraceKind kind, const char* name) {
    return trace::TraceSpan(device_.tracer(), kind, "mcuda", name);
  }

  static TraceKind TraceKindForMemcpy(MemcpyKind kind) {
    switch (kind) {
      case MemcpyKind::kHostToDevice:
        return TraceKind::kH2D;
      case MemcpyKind::kDeviceToHost:
        return TraceKind::kD2H;
      case MemcpyKind::kDeviceToDevice:
        return TraceKind::kD2D;
      case MemcpyKind::kHostToHost:
        break;
    }
    return TraceKind::kApiCall;
  }

  /// Sticky device-lost gate: once the simulated device is lost, every
  /// runtime call returns cudaErrorDevicesUnavailable until teardown
  /// (Device::faults().ResetContext() or a new Device).
  Status CheckUsable() {
    if (device_.faults().device_lost())
      return AsCuda(DeviceLostError(
                        "device lost; context is unusable until released"),
                    cudaErrorDevicesUnavailable);
    return OkStatus();
  }

  Status Seal(Status st, int fallback) {
    int code = CudaCodeFor(st, fallback);
    return AsCuda(std::move(st), code);
  }

  /// Shared body of cudaMemcpy / cudaMemcpyAsync: pointer validation is
  /// immediate (cudaErrorInvalidDevicePointer at the call), the transfer
  /// itself is a scheduler command on `queue`'s copy engine.
  Status MemcpyImpl(void* dst, const void* src, size_t size, MemcpyKind kind,
                    uint64_t queue, bool blocking, const char* name) {
    auto span = Span(TraceKindForMemcpy(kind), name);
    span.SetBytes(size);
    double queued = device_.now_us();
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    device_.ChargeApiCall();
    if (kind == MemcpyKind::kHostToHost) {
      // Pageable host-to-host copies are synchronous even under the Async
      // entry point; no device engine is involved.
      std::memmove(dst, src, size);
      return OkStatus();
    }
    if (!sched_.HasQueue(queue))
      return span.Sealed(AsCuda(InvalidArgumentError("unknown stream"),
                                cudaErrorInvalidResourceHandle));
    sched::CommandSpec spec;
    spec.queue = queue;
    spec.bytes = size;
    std::function<Status()> exec;
    switch (kind) {
      case MemcpyKind::kHostToDevice: {
        BRIDGECL_ASSIGN_OR_RETURN(
            std::byte * p, DeviceRange(reinterpret_cast<uint64_t>(dst), size));
        spec.kind = sched::CommandKind::kCopyH2D;
        exec = [this, p, src, size] {
          return Seal(TransferWithFaults(device_.faults(), size,
                                         [&](size_t n) {
                                           std::memcpy(p, src, n);
                                           device_.ChargeCopy(n);
                                           device_.stats()
                                               .host_to_device_bytes += n;
                                         }),
                      cudaErrorLaunchFailure);
        };
        break;
      }
      case MemcpyKind::kDeviceToHost: {
        BRIDGECL_ASSIGN_OR_RETURN(
            std::byte * p, DeviceRange(reinterpret_cast<uint64_t>(src), size));
        spec.kind = sched::CommandKind::kCopyD2H;
        exec = [this, p, dst, size] {
          return Seal(TransferWithFaults(device_.faults(), size,
                                         [&](size_t n) {
                                           std::memcpy(dst, p, n);
                                           device_.ChargeCopy(n);
                                           device_.stats()
                                               .device_to_host_bytes += n;
                                         }),
                      cudaErrorLaunchFailure);
        };
        break;
      }
      case MemcpyKind::kDeviceToDevice: {
        BRIDGECL_ASSIGN_OR_RETURN(
            std::byte * ps, DeviceRange(reinterpret_cast<uint64_t>(src), size));
        BRIDGECL_ASSIGN_OR_RETURN(
            std::byte * pd, DeviceRange(reinterpret_cast<uint64_t>(dst), size));
        spec.kind = sched::CommandKind::kCopyD2D;
        exec = [this, ps, pd, size] {
          return Seal(TransferWithFaults(device_.faults(), size,
                                         [&](size_t n) {
                                           std::memmove(pd, ps, n);
                                           device_.ChargeCopy(n / 4);
                                           device_.stats()
                                               .device_to_device_bytes += n;
                                         }),
                      cudaErrorLaunchFailure);
        };
        break;
      }
      case MemcpyKind::kHostToHost:
        break;  // handled above
    }
    if (!exec)
      return span.Sealed(AsCuda(InvalidArgumentError("bad memcpy kind"),
                                cudaErrorInvalidMemcpyDirection));
    auto res = sched_.Enqueue(spec, blocking, queued, exec);
    return span.Sealed(Seal(std::move(res.status), cudaErrorLaunchFailure));
  }

  Status LaunchImpl(const std::string& kernel, Dim3 grid, Dim3 block,
                    size_t shared_bytes, std::span<const LaunchArg> args,
                    uint64_t queue, bool blocking) {
    auto span = Span(TraceKind::kKernelLaunch, "cudaLaunchKernel");
    double queued = device_.now_us();
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    device_.ChargeApiCall();
    if (!sched_.HasQueue(queue))
      return span.Sealed(AsCuda(InvalidArgumentError("unknown stream"),
                                cudaErrorInvalidResourceHandle));
    BRIDGECL_ASSIGN_OR_RETURN(Module * m, FindKernelModule(kernel));
    if (grid.Count() == 0 || block.Count() == 0 ||
        block.Count() >
            static_cast<uint64_t>(device_.profile().max_threads_per_block))
      return AsCuda(
          InvalidArgumentError(StrFormat(
              "launch configuration %s x %s is invalid for this device",
              grid.ToString().c_str(), block.ToString().c_str())),
          cudaErrorInvalidConfiguration);
    interp::LaunchConfig cfg;
    cfg.grid = grid;
    cfg.block = block;
    cfg.dynamic_shared_bytes = shared_bytes;
    std::vector<KernelArg> kargs;
    kargs.reserve(args.size());
    for (const LaunchArg& a : args) kargs.push_back(KernelArg::Bytes(a.bytes));
    sched::CommandSpec spec;
    spec.kind = sched::CommandKind::kKernel;
    spec.queue = queue;
    spec.kernel = kernel;
    interp::LaunchResult result{};
    bool launched = false;
    auto res = sched_.Enqueue(spec, blocking, queued, [&] {
      Status st = RetryTransient(device_.faults(), [&] {
        auto r = interp::LaunchKernel(device_, *m, kernel, cfg, kargs);
        if (r.ok()) result = *r;
        return r.status();
      });
      if (st.ok()) launched = true;
      if (!st.ok() && st.code() == StatusCode::kInternal &&
          st.message().find("assert") != std::string::npos)
        return AsCuda(std::move(st), cudaErrorAssert);
      // Per-block shared memory over the limit is the classic
      // cudaErrorLaunchOutOfResources; device-side faults are the sticky
      // "unspecified launch failure".
      return Seal(std::move(st), cudaErrorLaunchOutOfResources);
    });
    if (launched)
      span.SetKernel(kernel, m->RegistersFor(m->FindKernel(kernel)),
                     result.occupancy);
    return span.Sealed(
        Seal(std::move(res.status), cudaErrorLaunchOutOfResources));
  }

  /// Validate a device-pointer range at the API boundary: a range the VM
  /// cannot resolve is an invalid device pointer to the runtime (not a
  /// device-side execution fault).
  StatusOr<std::byte*> DeviceRange(uint64_t va, size_t size) {
    auto p = device_.vm().Resolve(va, size);
    if (p.ok()) return p;
    if (p.status().code() == StatusCode::kDeviceLost)
      return Seal(p.status(), cudaErrorDevicesUnavailable);
    return AsCuda(p.status(), cudaErrorInvalidDevicePointer);
  }

  StatusOr<Module::Symbol> FindSymbol(const std::string& symbol) {
    for (auto& m : modules_) {
      auto s = m->FindSymbol(symbol);
      if (s.ok()) return s;
    }
    return AsCuda(NotFoundError("no device symbol '" + symbol + "'"),
                  cudaErrorInvalidSymbol);
  }

  StatusOr<Module*> FindKernelModule(const std::string& kernel) {
    for (auto& m : modules_)
      if (m->FindKernel(kernel) != nullptr) return m.get();
    return AsCuda(NotFoundError("no kernel '" + kernel + "' registered"),
                  cudaErrorInvalidDeviceFunction);
  }

  Status MakeBinding(const std::string& texref, uint64_t data_va,
                     size_t width, size_t height, size_t pitch,
                     const ChannelDesc& desc, uint32_t sampler_bits) {
    // Locate the texture reference in a registered module.
    Module* owner = nullptr;
    for (auto& m : modules_)
      if (m->FindTextureRef(texref) != nullptr) owner = m.get();
    if (owner == nullptr)
      return AsCuda(NotFoundError("no texture reference '" + texref + "'"),
                    cudaErrorInvalidTexture);
    BRIDGECL_RETURN_IF_ERROR(UnbindTexture(texref));
    ImageDesc d;
    d.data_va = data_va;
    d.width = static_cast<uint32_t>(width);
    d.height = static_cast<uint32_t>(height);
    d.depth = 1;
    d.channels = static_cast<uint32_t>(desc.channels);
    d.elem_kind = static_cast<uint32_t>(desc.elem);
    d.row_pitch = static_cast<uint32_t>(pitch);
    d.slice_pitch = static_cast<uint32_t>(pitch * height);
    d.sampler_bits = sampler_bits;
    d.dims = height > 1 ? 2 : 1;
    auto desc_va_or = RetryTransient(
        device_.faults(), [&] { return device_.vm().AllocGlobal(sizeof(d)); });
    if (!desc_va_or.ok())
      return Seal(desc_va_or.status(), cudaErrorMemoryAllocation);
    uint64_t desc_va = *desc_va_or;
    auto p = device_.vm().Resolve(desc_va, sizeof(d));
    if (!p.ok()) {
      (void)device_.vm().FreeGlobal(desc_va);
      return Seal(p.status(), cudaErrorUnknown);
    }
    std::memcpy(*p, &d, sizeof(d));
    textures_[texref] = TextureRec{desc_va};
    return Seal(owner->BindTexture(texref, desc_va), cudaErrorInvalidTexture);
  }

  Device& device_;
  /// Environment-driven trace session; owns the recorder wired into
  /// device_ when BRIDGECL_TRACE / BRIDGECL_TRACE_SUMMARY is set.
  std::unique_ptr<trace::TraceSession> auto_trace_;
  std::vector<std::unique_ptr<Module>> modules_;
  std::unordered_map<uint64_t, ArrayRec> arrays_;
  std::unordered_map<std::string, TextureRec> textures_;
  uint64_t next_event_ = 0x6000'0000'0000'0000ull;
  /// cudaEvent handle → scheduler event id; 0 = created but not recorded
  /// (cudaEventElapsedTime on such an event is cudaErrorNotReady).
  std::unordered_map<uint64_t, uint64_t> events_;
  /// Stream/event bookkeeping + dual-engine timing placement; declared
  /// after device_ and auto_trace_ (construction order).
  sched::Scheduler sched_;
};

}  // namespace

std::unique_ptr<CudaApi> CreateNativeCudaApi(Device& device) {
  return std::make_unique<NativeCudaApi>(device);
}

}  // namespace bridgecl::mcuda
