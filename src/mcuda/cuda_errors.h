// CUDA runtime error codes (the numeric values of driver_types.h in the
// CUDA 5.x era the paper targets), plus the helpers that attach them to
// Status results crossing the CudaApi boundary. Status::api_code() carries
// the spec code: positive values are cudaError codes, negative values are
// CL codes, so a code annotated by an inner OpenCL layer is recognizably
// foreign and the cu2cl wrapper re-maps it (docs/ROBUSTNESS.md).
#pragma once

#include "support/status.h"

namespace bridgecl::mcuda {

// Spec names and values verbatim from cudaError_t.
inline constexpr int cudaSuccess = 0;
inline constexpr int cudaErrorMissingConfiguration = 1;
inline constexpr int cudaErrorMemoryAllocation = 2;
inline constexpr int cudaErrorInitializationError = 3;
inline constexpr int cudaErrorLaunchFailure = 4;
inline constexpr int cudaErrorLaunchOutOfResources = 7;
inline constexpr int cudaErrorInvalidDeviceFunction = 8;
inline constexpr int cudaErrorInvalidConfiguration = 9;
inline constexpr int cudaErrorInvalidValue = 11;
inline constexpr int cudaErrorInvalidSymbol = 13;
inline constexpr int cudaErrorInvalidDevicePointer = 17;
inline constexpr int cudaErrorInvalidTexture = 18;
inline constexpr int cudaErrorInvalidChannelDescriptor = 20;
inline constexpr int cudaErrorInvalidMemcpyDirection = 21;
inline constexpr int cudaErrorUnknown = 30;
inline constexpr int cudaErrorInvalidResourceHandle = 33;
inline constexpr int cudaErrorNotReady = 34;
inline constexpr int cudaErrorDevicesUnavailable = 46;
inline constexpr int cudaErrorNoKernelImageForDevice = 48;
inline constexpr int cudaErrorAssert = 59;
inline constexpr int cudaErrorNotSupported = 71;

/// Spec identifier of a cudaError value ("cudaErrorMemoryAllocation").
const char* CudaErrorName(int code);

/// True when `code` is a CUDA api_code (CUDA codes are >= 0, CL < 0).
inline bool IsCudaCode(int code) { return code > 0; }

/// Attach `code` to a failed Status unless an inner CUDA layer already
/// attached one. A negative (CL) annotation is replaced: codes must be
/// re-expressed in the vocabulary of the API that returns them.
inline Status AsCuda(Status st, int code) {
  if (!st.ok() && !IsCudaCode(st.api_code())) st.set_api_code(code);
  return st;
}

template <typename T>
StatusOr<T> AsCuda(StatusOr<T> v, int code) {
  if (v.ok()) return v;
  return AsCuda(v.status(), code);
}

/// Default cudaError for a Status that crossed no annotated boundary —
/// the per-StatusCode half of the mapping table. `fallback` is the code
/// for the entry point's operation class (e.g. cudaMalloc passes
/// cudaErrorMemoryAllocation for kResourceExhausted).
int CudaCodeFor(const Status& st, int fallback);

}  // namespace bridgecl::mcuda
