// CUDA runtime-API subset (compute-capability 3.5 era), shaped after the
// entry points the paper's CUDA→OpenCL wrappers implement (§2-§5):
// cudaMalloc/cudaMemcpy with void* device handles, cudaMemcpyTo/FromSymbol,
// kernel launches (the <<<...>>> configuration appears here as explicit
// grid/block/shared-bytes parameters — the static host rewriter in
// translator/ produces calls of this shape), texture binding, and the
// model-specific cudaMemGetInfo / cudaGetDeviceProperties (§3.7, §6.3).
//
// Two bindings:
//   * mcuda::CreateNativeCudaApi — the "vendor CUDA framework" over a
//     simulated device.
//   * cu2cl::CreateCudaOnClApi   — the paper's CUDA-on-OpenCL wrapper
//     library (§3.4, Figure 3), implemented over any OpenClApi.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "lang/type.h"
#include "simgpu/device.h"
#include "simgpu/dim3.h"
#include "support/status.h"

namespace bridgecl::mcuda {

enum class MemcpyKind {
  kHostToDevice,
  kDeviceToHost,
  kDeviceToDevice,
  kHostToHost,
};

/// cudaCreateChannelDesc equivalent.
struct ChannelDesc {
  lang::ScalarKind elem = lang::ScalarKind::kFloat;
  int channels = 1;
};

/// Subset of cudaDeviceProp the benchmarks consume.
struct CudaDeviceProps {
  std::string name;
  size_t total_global_mem = 0;
  size_t shared_mem_per_block = 0;
  size_t total_const_mem = 0;
  int regs_per_block = 0;
  int warp_size = 0;
  int max_threads_per_block = 0;
  int multi_processor_count = 0;
  int clock_rate_khz = 0;
  int major = 3, minor = 5;
  size_t max_texture1d_linear = 0;
};

/// One kernel-launch argument: raw bytes exactly as CUDA's runtime API
/// marshals them. Device pointers travel as their 8-byte void* value.
struct LaunchArg {
  std::vector<std::byte> bytes;

  static LaunchArg Ptr(const void* device_ptr) {
    LaunchArg a;
    a.bytes.resize(sizeof(device_ptr));
    std::memcpy(a.bytes.data(), &device_ptr, sizeof(device_ptr));
    return a;
  }
  template <typename T>
  static LaunchArg Value(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    LaunchArg a;
    a.bytes.resize(sizeof(T));
    std::memcpy(a.bytes.data(), &v, sizeof(T));
    return a;
  }
};

class CudaApi {
 public:
  virtual ~CudaApi() = default;

  /// Stand-in for nvcc static compilation + fatbinary registration: in
  /// real CUDA the device code is embedded in the executable; here the
  /// application registers its .cu device source once at startup. Under
  /// the wrapper binding this is where CUDA→OpenCL device translation
  /// runs; following §3.4 the translated device code is *built* lazily on
  /// the first API call that needs it.
  virtual Status RegisterModule(const std::string& cuda_source) = 0;

  // -- memory ---------------------------------------------------------------
  virtual StatusOr<void*> Malloc(size_t size) = 0;
  virtual Status Free(void* ptr) = 0;
  virtual Status Memcpy(void* dst, const void* src, size_t size,
                        MemcpyKind kind) = 0;
  virtual Status MemcpyToSymbol(const std::string& symbol, const void* src,
                                size_t size, size_t offset = 0) = 0;
  virtual Status MemcpyFromSymbol(void* dst, const std::string& symbol,
                                  size_t size, size_t offset = 0) = 0;
  /// cudaMemGetInfo — no OpenCL counterpart exists (§3.7); the wrapper
  /// binding must report it unimplementable.
  virtual StatusOr<std::pair<size_t, size_t>> MemGetInfo() = 0;

  // -- kernel launch ----------------------------------------------------------
  /// k<<<grid, block, shared_bytes>>>(args...) after host rewriting.
  virtual Status LaunchKernel(const std::string& kernel, simgpu::Dim3 grid,
                              simgpu::Dim3 block, size_t shared_bytes,
                              std::span<const LaunchArg> args) = 0;
  virtual Status DeviceSynchronize() = 0;

  // -- streams (cudaStream_t, docs/CONCURRENCY.md) ---------------------------
  /// cudaStreamCreate. Streams are in-order; the null stream is the
  /// default (legacy) stream every stream-less entry point targets.
  virtual StatusOr<void*> StreamCreate() = 0;
  /// cudaStreamDestroy: implicit synchronize, then teardown; surfaces the
  /// stream's deferred async errors.
  virtual Status StreamDestroy(void* stream) = 0;
  /// cudaStreamSynchronize: blocks until the stream drains; deferred
  /// async-command errors surface here (docs/ROBUSTNESS.md).
  virtual Status StreamSynchronize(void* stream) = 0;
  /// cudaMemcpyAsync: returns immediately; failures are deferred to the
  /// next synchronization point on `stream`.
  virtual Status MemcpyAsync(void* dst, const void* src, size_t size,
                             MemcpyKind kind, void* stream) = 0;
  /// k<<<grid, block, shared, stream>>>(args...): asynchronous launch.
  virtual Status LaunchKernelOnStream(const std::string& kernel,
                                      simgpu::Dim3 grid, simgpu::Dim3 block,
                                      size_t shared_bytes,
                                      std::span<const LaunchArg> args,
                                      void* stream) = 0;
  /// cudaEventRecord(event, stream): the event completes when everything
  /// enqueued on `stream` so far completes.
  virtual Status EventRecordOnStream(void* event, void* stream) = 0;
  /// cudaStreamWaitEvent: later commands on `stream` wait for `event`.
  /// Waiting on a never-recorded event is a no-op (CUDA semantics).
  virtual Status StreamWaitEvent(void* stream, void* event) = 0;
  /// cudaEventSynchronize; a never-recorded event is already "complete".
  virtual Status EventSynchronize(void* event) = 0;

  // -- device queries -----------------------------------------------------------
  virtual StatusOr<CudaDeviceProps> GetDeviceProperties() = 0;

  // -- textures (§5) -----------------------------------------------------------
  /// cudaBindTexture: bind linear device memory to a 1D texture reference.
  virtual Status BindTexture(const std::string& texref, void* device_ptr,
                             size_t bytes, const ChannelDesc& desc,
                             bool normalized = false) = 0;
  /// cudaBindTexture2D.
  virtual Status BindTexture2D(const std::string& texref, void* device_ptr,
                               size_t width, size_t height, size_t pitch,
                               const ChannelDesc& desc) = 0;
  /// cudaMallocArray / cudaMemcpyToArray / cudaBindTextureToArray.
  virtual StatusOr<void*> MallocArray(const ChannelDesc& desc, size_t width,
                                      size_t height) = 0;
  virtual Status MemcpyToArray(void* array, const void* src,
                               size_t bytes) = 0;
  virtual Status BindTextureToArray(const std::string& texref, void* array,
                                    bool filter_linear = false,
                                    bool normalized = false) = 0;
  virtual Status UnbindTexture(const std::string& texref) = 0;

  // -- events (cudaEvent_t) --------------------------------------------------
  virtual StatusOr<void*> EventCreate() = 0;
  virtual Status EventRecord(void* event) = 0;
  /// cudaEventElapsedTime (in microseconds rather than ms).
  virtual StatusOr<double> EventElapsedUs(void* start, void* end) = 0;
  virtual Status EventDestroy(void* event) = 0;

  /// Models the native compiler's register allocation for one kernel
  /// (occupancy input, §6.3). Applications call this to reproduce
  /// toolchain differences; default comes from the front end's estimate.
  virtual Status SetKernelRegisters(const std::string& kernel, int regs) = 0;

  /// Simulated host-visible clock.
  virtual double NowUs() const = 0;

  /// The trace recorder attached to the underlying device, or null when
  /// tracing is off (docs/OBSERVABILITY.md). The native binding returns
  /// Device::tracer(); wrapper bindings forward to the inner runtime so a
  /// wrapped stack records into one shared trace.
  virtual trace::TraceRecorder* Tracer() const { return nullptr; }

  // -- snapshot/restore extension (src/snapshot, docs/SNAPSHOT.md) ----------
  /// bridgeclSnapshot: serialize the whole context — device memory with
  /// guard metadata, module cache, stream topology, event records, fault
  /// ordinals, and this binding's handle tables — into a versioned image
  /// at `path`. Charges no simulated time and works even after device
  /// loss. Wrapper bindings forward to the inner runtime, so the image
  /// records the native layer actually driving the device.
  virtual Status Snapshot(const std::string& path) {
    (void)path;
    return UnimplementedError(
        "bridgeclSnapshot is not supported by this CUDA binding");
  }
  /// bridgeclRestore: replace the whole context with the image at `path`.
  /// Corrupt/truncated images fail with cudaErrorInvalidValue before any
  /// state changes; an image whose live memory exceeds this device's
  /// capacity fails with cudaErrorMemoryAllocation (cross-profile
  /// migration onto a smaller device).
  virtual Status Restore(const std::string& path) {
    (void)path;
    return UnimplementedError(
        "bridgeclRestore is not supported by this CUDA binding");
  }
};

/// Native binding over a simulated device.
std::unique_ptr<CudaApi> CreateNativeCudaApi(simgpu::Device& device);

}  // namespace bridgecl::mcuda
