#include "mocl/cl_errors.h"

namespace bridgecl::mocl {

const char* ClErrorName(int code) {
  switch (code) {
    case CL_SUCCESS: return "CL_SUCCESS";
    case CL_DEVICE_NOT_AVAILABLE: return "CL_DEVICE_NOT_AVAILABLE";
    case CL_MEM_OBJECT_ALLOCATION_FAILURE:
      return "CL_MEM_OBJECT_ALLOCATION_FAILURE";
    case CL_OUT_OF_RESOURCES: return "CL_OUT_OF_RESOURCES";
    case CL_OUT_OF_HOST_MEMORY: return "CL_OUT_OF_HOST_MEMORY";
    case CL_BUILD_PROGRAM_FAILURE: return "CL_BUILD_PROGRAM_FAILURE";
    case CL_INVALID_VALUE: return "CL_INVALID_VALUE";
    case CL_INVALID_DEVICE: return "CL_INVALID_DEVICE";
    case CL_INVALID_COMMAND_QUEUE: return "CL_INVALID_COMMAND_QUEUE";
    case CL_INVALID_MEM_OBJECT: return "CL_INVALID_MEM_OBJECT";
    case CL_INVALID_IMAGE_SIZE: return "CL_INVALID_IMAGE_SIZE";
    case CL_INVALID_SAMPLER: return "CL_INVALID_SAMPLER";
    case CL_INVALID_PROGRAM: return "CL_INVALID_PROGRAM";
    case CL_INVALID_PROGRAM_EXECUTABLE:
      return "CL_INVALID_PROGRAM_EXECUTABLE";
    case CL_INVALID_KERNEL_NAME: return "CL_INVALID_KERNEL_NAME";
    case CL_INVALID_KERNEL: return "CL_INVALID_KERNEL";
    case CL_INVALID_ARG_INDEX: return "CL_INVALID_ARG_INDEX";
    case CL_INVALID_ARG_VALUE: return "CL_INVALID_ARG_VALUE";
    case CL_INVALID_ARG_SIZE: return "CL_INVALID_ARG_SIZE";
    case CL_INVALID_KERNEL_ARGS: return "CL_INVALID_KERNEL_ARGS";
    case CL_INVALID_WORK_DIMENSION: return "CL_INVALID_WORK_DIMENSION";
    case CL_INVALID_WORK_GROUP_SIZE: return "CL_INVALID_WORK_GROUP_SIZE";
    case CL_INVALID_WORK_ITEM_SIZE: return "CL_INVALID_WORK_ITEM_SIZE";
    case CL_INVALID_EVENT: return "CL_INVALID_EVENT";
    case CL_INVALID_OPERATION: return "CL_INVALID_OPERATION";
    case CL_INVALID_BUFFER_SIZE: return "CL_INVALID_BUFFER_SIZE";
    case CL_INVALID_DEVICE_PARTITION_COUNT:
      return "CL_INVALID_DEVICE_PARTITION_COUNT";
    default: return "CL_UNKNOWN_ERROR";
  }
}

int ClCodeFor(const Status& st, int fallback) {
  if (IsClCode(st.api_code()) && st.api_code() != 0) return st.api_code();
  switch (st.code()) {
    case StatusCode::kOk: return CL_SUCCESS;
    // Device loss surfaces as CL_OUT_OF_RESOURCES (the CL 1.2 spec has no
    // dedicated lost-device code; this is what real runtimes report).
    case StatusCode::kDeviceLost: return CL_OUT_OF_RESOURCES;
    case StatusCode::kResourceExhausted: return fallback;
    case StatusCode::kInvalidArgument: return CL_INVALID_VALUE;
    case StatusCode::kOutOfRange: return CL_INVALID_VALUE;
    case StatusCode::kNotFound: return CL_INVALID_VALUE;
    case StatusCode::kFailedPrecondition: return CL_INVALID_OPERATION;
    case StatusCode::kUnimplemented: return CL_INVALID_OPERATION;
    // Device-side execution faults (guarded-memory violations, injected
    // traps, asserts): "failure to execute kernel on the device".
    case StatusCode::kInternal: return CL_OUT_OF_RESOURCES;
    case StatusCode::kUntranslatable: return CL_BUILD_PROGRAM_FAILURE;
  }
  return fallback;
}

}  // namespace bridgecl::mocl
