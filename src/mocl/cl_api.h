// OpenCL 1.2-subset host API, shaped after the real entry points the paper
// wraps (§3.3-§3.5): buffers, images, samplers, programs built from source
// at run time, kernel-argument binding with clSetKernelArg semantics, and
// NDRange launches. Exposed as an abstract interface with two bindings:
//
//   * mocl::NativeClApi — the "vendor OpenCL framework": runs on a
//     simulated device directly (this header's companion).
//   * cl2cu::ClOnCudaApi — the paper's OpenCL→CUDA wrapper library: the
//     same interface implemented over the mini-CUDA driver API (§3.4,
//     Figure 2).
//
// Host application code is written once against OpenClApi and re-linked
// against either binding — exactly the paper's "host code is untouched,
// wrappers are linked" design.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "lang/type.h"
#include "simgpu/device.h"
#include "simgpu/dim3.h"
#include "support/status.h"

namespace bridgecl::mocl {

/// Opaque handles. In real OpenCL these are pointers (cl_mem is
/// struct _cl_mem*); the paper's wrappers rely on being able to cast them
/// to void* and back (§4), which these 64-bit payloads preserve.
struct ClMem {
  uint64_t handle = 0;
  bool ok() const { return handle != 0; }
};
struct ClProgram {
  uint64_t handle = 0;
};
struct ClKernel {
  uint64_t handle = 0;
};
/// Event handle for profiling (cl_event with CL_QUEUE_PROFILING_ENABLE).
struct ClEvent {
  uint64_t handle = 0;
};
/// Command-queue handle (cl_command_queue). Default-constructed it names
/// the context's default in-order queue, which always exists — the legacy
/// single-queue entry points below enqueue there.
struct ClQueue {
  uint64_t handle = 0;
};

/// clCreateCommandQueue property bits (docs/CONCURRENCY.md).
inline constexpr uint64_t CL_QUEUE_OUT_OF_ORDER_EXEC_MODE_ENABLE = 1u << 0;

enum class MemFlags {
  kReadWrite,  // CL_MEM_READ_WRITE
  kReadOnly,   // CL_MEM_READ_ONLY  (dynamic constant-memory objects, §4.2)
  kWriteOnly,  // CL_MEM_WRITE_ONLY
};

struct ClImageFormat {
  lang::ScalarKind elem = lang::ScalarKind::kFloat;
  int channels = 4;  // CL_R=1 ... CL_RGBA=4
};

/// Sampler properties; mirrors clCreateSampler's three parameters.
struct ClSamplerDesc {
  bool normalized_coords = false;
  bool address_clamp = true;
  bool filter_linear = false;
};

/// Subset of clGetDeviceInfo attributes the benchmarks query. The real
/// call is per-attribute; QueryDeviceInfo below mimics that cost model by
/// charging one query per requested attribute (the deviceQuery wrapper
/// overhead of §6.3 is measured through this).
enum class ClDeviceAttr {
  kName,
  kVendor,
  kMaxComputeUnits,
  kMaxWorkGroupSize,
  kLocalMemSize,
  kGlobalMemSize,
  kMaxConstantBufferSize,
  kImage2dMaxWidth,
  kImage2dMaxHeight,
  kImage1dMaxBufferWidth,
  kMaxClockFrequency,
};

class OpenClApi {
 public:
  virtual ~OpenClApi() = default;

  virtual std::string PlatformName() const = 0;

  /// clGetDeviceInfo: one attribute per call.
  virtual StatusOr<std::string> QueryDeviceInfoString(ClDeviceAttr attr) = 0;
  virtual StatusOr<uint64_t> QueryDeviceInfoUint(ClDeviceAttr attr) = 0;

  /// clCreateSubDevices: partition into `n` sub-devices; returns how many
  /// were created. OpenCL-only feature — the wrapper binding reports it
  /// unimplemented (§3.7).
  virtual StatusOr<int> CreateSubDevices(int n) = 0;

  // -- memory objects -------------------------------------------------------
  virtual StatusOr<ClMem> CreateBuffer(MemFlags flags, size_t size,
                                       const void* host_ptr) = 0;
  virtual Status ReleaseMemObject(ClMem mem) = 0;
  virtual Status EnqueueWriteBuffer(ClMem mem, size_t offset, size_t size,
                                    const void* src) = 0;
  virtual Status EnqueueReadBuffer(ClMem mem, size_t offset, size_t size,
                                   void* dst) = 0;
  virtual Status EnqueueCopyBuffer(ClMem src, ClMem dst, size_t src_offset,
                                   size_t dst_offset, size_t size) = 0;

  // -- images & samplers (§5) ----------------------------------------------
  virtual StatusOr<ClMem> CreateImage2D(MemFlags flags,
                                        const ClImageFormat& format,
                                        size_t width, size_t height,
                                        const void* host_ptr) = 0;
  virtual StatusOr<ClMem> CreateImage1D(MemFlags flags,
                                        const ClImageFormat& format,
                                        size_t width,
                                        const void* host_ptr) = 0;
  /// CL_MEM_OBJECT_IMAGE1D_BUFFER: a 1D image viewing an existing buffer.
  virtual StatusOr<ClMem> CreateImage1DFromBuffer(const ClImageFormat& format,
                                                  size_t width,
                                                  ClMem buffer) = 0;
  virtual Status EnqueueWriteImage(ClMem image, const void* src) = 0;
  virtual Status EnqueueReadImage(ClMem image, void* dst) = 0;
  /// Returns a sampler value for clSetKernelArg (sampler_t kernel params).
  virtual StatusOr<uint64_t> CreateSampler(const ClSamplerDesc& desc) = 0;

  // -- programs & kernels -----------------------------------------------------
  virtual StatusOr<ClProgram> CreateProgramWithSource(
      const std::string& source) = 0;
  /// clBuildProgram: run-time compilation. Under the wrapper binding this
  /// is where the OpenCL→CUDA source translator runs (Figure 2).
  virtual Status BuildProgram(ClProgram program) = 0;
  virtual StatusOr<std::string> GetProgramBuildLog(ClProgram program) = 0;
  virtual StatusOr<ClKernel> CreateKernel(ClProgram program,
                                          const std::string& name) = 0;
  /// clSetKernelArg semantics: `value` is null for dynamic __local
  /// allocations (size = allocation size); for memory objects it points
  /// at a ClMem; for samplers at the uint64 sampler value; otherwise at
  /// `size` bytes of plain data.
  virtual Status SetKernelArg(ClKernel kernel, int index, size_t size,
                              const void* value) = 0;
  virtual Status EnqueueNDRangeKernel(ClKernel kernel, int work_dim,
                                      const size_t* gws,
                                      const size_t* lws) = 0;
  /// clFinish on the default queue. With multiple queues this acts as a
  /// device-wide barrier (every queue drains) — the strongest reading,
  /// kept for single-queue legacy apps.
  virtual Status Finish() = 0;

  // -- command queues & asynchronous enqueues (§3, docs/CONCURRENCY.md) ----
  /// clCreateCommandQueue. `properties` is a bit-or of the CL_QUEUE_*
  /// constants above; out-of-order queues order commands only by event
  /// wait lists and barriers.
  virtual StatusOr<ClQueue> CreateCommandQueue(uint64_t properties) = 0;
  /// clReleaseCommandQueue: implicit clFinish, then teardown. Releasing a
  /// queue does not invalidate its events (they outlive the queue).
  virtual Status ReleaseCommandQueue(ClQueue queue) = 0;
  /// clEnqueueWriteBuffer / clEnqueueReadBuffer with the full signature:
  /// target queue, blocking flag, event wait list, optional out event.
  /// Non-blocking transfer failures are deferred: the enqueue reports
  /// success and the error surfaces at the next synchronization point on
  /// the queue (docs/ROBUSTNESS.md).
  virtual Status EnqueueWriteBufferOn(ClQueue queue, ClMem mem, size_t offset,
                                      size_t size, const void* src,
                                      bool blocking,
                                      std::span<const ClEvent> wait_events,
                                      ClEvent* out_event) = 0;
  virtual Status EnqueueReadBufferOn(ClQueue queue, ClMem mem, size_t offset,
                                     size_t size, void* dst, bool blocking,
                                     std::span<const ClEvent> wait_events,
                                     ClEvent* out_event) = 0;
  virtual Status EnqueueCopyBufferOn(ClQueue queue, ClMem src, ClMem dst,
                                     size_t src_offset, size_t dst_offset,
                                     size_t size,
                                     std::span<const ClEvent> wait_events,
                                     ClEvent* out_event) = 0;
  virtual Status EnqueueNDRangeKernelOn(ClQueue queue, ClKernel kernel,
                                        int work_dim, const size_t* gws,
                                        const size_t* lws,
                                        std::span<const ClEvent> wait_events,
                                        ClEvent* out_event) = 0;
  /// clEnqueueMarkerWithWaitList: an event that completes when the wait
  /// list completes (empty list: when everything already enqueued on the
  /// queue completes).
  virtual StatusOr<ClEvent> EnqueueMarkerWithWaitList(
      ClQueue queue, std::span<const ClEvent> wait_events) = 0;
  /// clEnqueueBarrierWithWaitList (empty list): orders every later command
  /// on the queue after everything enqueued so far.
  virtual StatusOr<ClEvent> EnqueueBarrier(ClQueue queue) = 0;
  /// clFlush: submission hint; completion is only guaranteed by Finish.
  virtual Status Flush(ClQueue queue) = 0;
  /// clFinish on one queue; surfaces the queue's deferred errors.
  virtual Status Finish(ClQueue queue) = 0;
  /// clWaitForEvents: blocks until all listed events complete; returns the
  /// execution status of a failed event, if any.
  virtual Status WaitForEvents(std::span<const ClEvent> events) = 0;
  /// clReleaseEvent.
  virtual Status ReleaseEvent(ClEvent event) = 0;

  /// clEnqueueNDRangeKernel with an event for profiling
  /// (clGetEventProfilingInfo's COMMAND_QUEUED/COMMAND_END pair).
  virtual StatusOr<ClEvent> EnqueueNDRangeKernelWithEvent(
      ClKernel kernel, int work_dim, const size_t* gws,
      const size_t* lws) = 0;
  virtual Status GetEventProfiling(ClEvent event, double* queued_us,
                                   double* end_us) = 0;

  /// Modeling knob, not a real OpenCL entry point: sets the register
  /// count the (simulated) native compiler allocated for a kernel, which
  /// drives occupancy (§6.3 cfd). Benchmarks use it to reproduce
  /// toolchain differences between the CUDA and OpenCL compilers.
  virtual Status SetProgramKernelRegisters(ClProgram program,
                                           const std::string& kernel,
                                           int regs) = 0;

  /// Simulated host-visible clock; benchmarks time API activity with this.
  virtual double NowUs() const = 0;
  /// Simulated device-time spent inside program builds; the paper excludes
  /// OpenCL build time from its measurements (§6.2), benches subtract this.
  virtual double BuildTimeUs() const = 0;

  /// The trace recorder attached to the underlying device, or null when
  /// tracing is off (docs/OBSERVABILITY.md). The native binding returns
  /// Device::tracer(); wrapper bindings forward to the inner runtime so a
  /// wrapped stack records into one shared trace.
  virtual trace::TraceRecorder* Tracer() const { return nullptr; }

  // -- snapshot/restore extension (src/snapshot, docs/SNAPSHOT.md) ----------
  /// bridgeclSnapshot: serialize the whole context — device memory with
  /// guard metadata, module cache, queue topology, event records, fault
  /// ordinals, and this binding's handle tables — into a versioned image
  /// at `path`. Charges no simulated time and works even after device
  /// loss (a lost context can still be inspected offline). Wrapper
  /// bindings forward to the inner runtime, so the image records the
  /// native layer actually driving the device.
  virtual Status Snapshot(const std::string& path) {
    (void)path;
    return UnimplementedError(
        "bridgeclSnapshot is not supported by this OpenCL binding");
  }
  /// bridgeclRestore: replace the whole context with the image at `path`.
  /// Corrupt/truncated/version-mismatched images fail with
  /// CL_INVALID_VALUE before any state changes; an image whose live
  /// memory exceeds this device's capacity fails with
  /// CL_OUT_OF_RESOURCES (cross-profile migration onto a smaller device).
  virtual Status Restore(const std::string& path) {
    (void)path;
    return UnimplementedError(
        "bridgeclRestore is not supported by this OpenCL binding");
  }
};

/// The native binding ("vendor OpenCL framework") over a simulated device.
std::unique_ptr<OpenClApi> CreateNativeClApi(simgpu::Device& device);

}  // namespace bridgecl::mocl
