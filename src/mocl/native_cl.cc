#include <cstring>
#include <unordered_map>

#include "interp/executor.h"
#include "interp/image.h"
#include "interp/module.h"
#include "mocl/cl_api.h"
#include "support/strings.h"

namespace bridgecl::mocl {
namespace {

using interp::ImageDesc;
using interp::KernelArg;
using interp::Module;
using lang::AddressSpace;
using lang::ScalarKind;
using simgpu::Device;
using simgpu::Dim3;

/// Fixed simulated cost of an on-line clBuildProgram (front end + codegen).
constexpr double kBuildCostUs = 4000.0;

struct BufferRec {
  uint64_t va = 0;
  size_t size = 0;
  MemFlags flags = MemFlags::kReadWrite;
};

struct ImageRec {
  uint64_t desc_va = 0;
  uint64_t data_va = 0;
  bool owns_data = true;
  size_t width = 0, height = 1;
  ClImageFormat format;
  size_t byte_size = 0;
};

struct ProgramRec {
  std::string source;
  std::unique_ptr<Module> module;
  std::string build_log;
};

struct KernelRec {
  uint64_t program = 0;
  std::string name;
  std::vector<KernelArg> args;  // indexed by parameter position
  std::vector<bool> set;
};

class NativeClApi final : public OpenClApi {
 public:
  explicit NativeClApi(Device& device) : device_(device) {
    device_.set_bank_mode(device_.profile().opencl_bank_mode);
  }

  std::string PlatformName() const override {
    return "BridgeCL mini-OpenCL 1.2";
  }

  StatusOr<std::string> QueryDeviceInfoString(ClDeviceAttr attr) override {
    ChargeQuery();
    switch (attr) {
      case ClDeviceAttr::kName:
        return device_.profile().name;
      case ClDeviceAttr::kVendor:
        return device_.profile().vendor;
      default:
        return InvalidArgumentError("attribute is not a string");
    }
  }

  StatusOr<uint64_t> QueryDeviceInfoUint(ClDeviceAttr attr) override {
    ChargeQuery();
    const auto& p = device_.profile();
    switch (attr) {
      case ClDeviceAttr::kMaxComputeUnits:
        return static_cast<uint64_t>(p.compute_units);
      case ClDeviceAttr::kMaxWorkGroupSize:
        return static_cast<uint64_t>(p.max_threads_per_block);
      case ClDeviceAttr::kLocalMemSize:
        return static_cast<uint64_t>(p.shared_mem_per_block);
      case ClDeviceAttr::kGlobalMemSize:
        return static_cast<uint64_t>(p.global_mem_size);
      case ClDeviceAttr::kMaxConstantBufferSize:
        return static_cast<uint64_t>(p.constant_mem_size);
      case ClDeviceAttr::kImage2dMaxWidth:
        return static_cast<uint64_t>(p.max_image2d_width);
      case ClDeviceAttr::kImage2dMaxHeight:
        return static_cast<uint64_t>(p.max_image2d_height);
      case ClDeviceAttr::kImage1dMaxBufferWidth:
        return static_cast<uint64_t>(p.max_image1d_width);
      case ClDeviceAttr::kMaxClockFrequency:
        return static_cast<uint64_t>(p.clock_ghz * 1000);
      default:
        return InvalidArgumentError("attribute is not an integer");
    }
  }

  StatusOr<int> CreateSubDevices(int n) override {
    device_.ChargeApiCall();
    if (n <= 0 || n > device_.profile().compute_units)
      return InvalidArgumentError("invalid sub-device partition count");
    // Equal partition by compute units; we only model the bookkeeping.
    return n;
  }

  // -- buffers ---------------------------------------------------------------
  StatusOr<ClMem> CreateBuffer(MemFlags flags, size_t size,
                               const void* host_ptr) override {
    device_.ChargeApiCall();
    BRIDGECL_ASSIGN_OR_RETURN(uint64_t va, device_.vm().AllocGlobal(size));
    if (host_ptr != nullptr) {
      BRIDGECL_ASSIGN_OR_RETURN(std::byte * p, device_.vm().Resolve(va, size));
      std::memcpy(p, host_ptr, size);
      device_.ChargeCopy(size);
      device_.stats().host_to_device_bytes += size;
    }
    uint64_t id = next_id_++;
    buffers_[id] = BufferRec{va, size, flags};
    return ClMem{id};
  }

  Status ReleaseMemObject(ClMem mem) override {
    device_.ChargeApiCall();
    if (auto it = buffers_.find(mem.handle); it != buffers_.end()) {
      BRIDGECL_RETURN_IF_ERROR(device_.vm().FreeGlobal(it->second.va));
      buffers_.erase(it);
      return OkStatus();
    }
    if (auto it = images_.find(mem.handle); it != images_.end()) {
      if (it->second.owns_data)
        BRIDGECL_RETURN_IF_ERROR(device_.vm().FreeGlobal(it->second.data_va));
      BRIDGECL_RETURN_IF_ERROR(device_.vm().FreeGlobal(it->second.desc_va));
      images_.erase(it);
      return OkStatus();
    }
    return InvalidArgumentError("unknown memory object");
  }

  Status EnqueueWriteBuffer(ClMem mem, size_t offset, size_t size,
                            const void* src) override {
    device_.ChargeApiCall();
    BRIDGECL_ASSIGN_OR_RETURN(BufferRec * b, FindBuffer(mem));
    if (offset + size > b->size)
      return OutOfRangeError("write beyond buffer end");
    BRIDGECL_ASSIGN_OR_RETURN(std::byte * p,
                              device_.vm().Resolve(b->va + offset, size));
    std::memcpy(p, src, size);
    device_.ChargeCopy(size);
    device_.stats().host_to_device_bytes += size;
    return OkStatus();
  }

  Status EnqueueReadBuffer(ClMem mem, size_t offset, size_t size,
                           void* dst) override {
    device_.ChargeApiCall();
    BRIDGECL_ASSIGN_OR_RETURN(BufferRec * b, FindBuffer(mem));
    if (offset + size > b->size)
      return OutOfRangeError("read beyond buffer end");
    BRIDGECL_ASSIGN_OR_RETURN(std::byte * p,
                              device_.vm().Resolve(b->va + offset, size));
    std::memcpy(dst, p, size);
    device_.ChargeCopy(size);
    device_.stats().device_to_host_bytes += size;
    return OkStatus();
  }

  Status EnqueueCopyBuffer(ClMem src, ClMem dst, size_t src_offset,
                           size_t dst_offset, size_t size) override {
    device_.ChargeApiCall();
    BRIDGECL_ASSIGN_OR_RETURN(BufferRec * s, FindBuffer(src));
    BRIDGECL_ASSIGN_OR_RETURN(BufferRec * d, FindBuffer(dst));
    if (src_offset + size > s->size || dst_offset + size > d->size)
      return OutOfRangeError("copy beyond buffer end");
    BRIDGECL_ASSIGN_OR_RETURN(std::byte * sp,
                              device_.vm().Resolve(s->va + src_offset, size));
    BRIDGECL_ASSIGN_OR_RETURN(std::byte * dp,
                              device_.vm().Resolve(d->va + dst_offset, size));
    std::memmove(dp, sp, size);
    device_.ChargeCopy(size / 4);  // on-device copies are faster
    device_.stats().device_to_device_bytes += size;
    return OkStatus();
  }

  // -- images ----------------------------------------------------------------
  StatusOr<ClMem> CreateImage2D(MemFlags flags, const ClImageFormat& format,
                                size_t width, size_t height,
                                const void* host_ptr) override {
    device_.ChargeApiCall();
    const auto& p = device_.profile();
    if (width > static_cast<size_t>(p.max_image2d_width) ||
        height > static_cast<size_t>(p.max_image2d_height))
      return InvalidArgumentError(
          StrFormat("image size %zux%zu exceeds device limits", width,
                    height));
    return MakeImage(flags, format, width, height, host_ptr, /*buffer=*/{});
  }

  StatusOr<ClMem> CreateImage1D(MemFlags flags, const ClImageFormat& format,
                                size_t width, const void* host_ptr) override {
    device_.ChargeApiCall();
    if (width > device_.profile().max_image1d_width)
      return InvalidArgumentError(
          StrFormat("1D image width %zu exceeds device maximum %zu (§5)",
                    width, device_.profile().max_image1d_width));
    return MakeImage(flags, format, width, 1, host_ptr, /*buffer=*/{});
  }

  StatusOr<ClMem> CreateImage1DFromBuffer(const ClImageFormat& format,
                                          size_t width,
                                          ClMem buffer) override {
    device_.ChargeApiCall();
    if (width > device_.profile().max_image1d_width)
      return InvalidArgumentError(
          StrFormat("1D image buffer width %zu exceeds device maximum %zu; "
                    "CUDA linear textures reach 2^27 (§5)",
                    width, device_.profile().max_image1d_width));
    BRIDGECL_ASSIGN_OR_RETURN(BufferRec * b, FindBuffer(buffer));
    size_t texel = lang::ScalarByteSize(format.elem) * format.channels;
    if (width * texel > b->size)
      return OutOfRangeError("image view larger than the backing buffer");
    return MakeImage(MemFlags::kReadWrite, format, width, 1, nullptr, buffer);
  }

  Status EnqueueWriteImage(ClMem image, const void* src) override {
    device_.ChargeApiCall();
    BRIDGECL_ASSIGN_OR_RETURN(ImageRec * img, FindImage(image));
    BRIDGECL_ASSIGN_OR_RETURN(
        std::byte * p, device_.vm().Resolve(img->data_va, img->byte_size));
    std::memcpy(p, src, img->byte_size);
    device_.ChargeCopy(img->byte_size);
    device_.stats().host_to_device_bytes += img->byte_size;
    return OkStatus();
  }

  Status EnqueueReadImage(ClMem image, void* dst) override {
    device_.ChargeApiCall();
    BRIDGECL_ASSIGN_OR_RETURN(ImageRec * img, FindImage(image));
    BRIDGECL_ASSIGN_OR_RETURN(
        std::byte * p, device_.vm().Resolve(img->data_va, img->byte_size));
    std::memcpy(dst, p, img->byte_size);
    device_.ChargeCopy(img->byte_size);
    device_.stats().device_to_host_bytes += img->byte_size;
    return OkStatus();
  }

  StatusOr<uint64_t> CreateSampler(const ClSamplerDesc& desc) override {
    device_.ChargeApiCall();
    uint64_t bits = 0;
    if (desc.normalized_coords) bits |= interp::kSamplerNormalizedCoords;
    if (desc.address_clamp) bits |= interp::kSamplerAddressClamp;
    if (desc.filter_linear) bits |= interp::kSamplerFilterLinear;
    return bits;
  }

  // -- programs & kernels -----------------------------------------------------
  StatusOr<ClProgram> CreateProgramWithSource(
      const std::string& source) override {
    device_.ChargeApiCall();
    uint64_t id = next_id_++;
    programs_[id].source = source;
    return ClProgram{id};
  }

  Status BuildProgram(ClProgram program) override {
    device_.ChargeApiCall();
    auto it = programs_.find(program.handle);
    if (it == programs_.end()) return InvalidArgumentError("unknown program");
    DiagnosticEngine diags;
    auto m = Module::Compile(it->second.source, lang::Dialect::kOpenCL, diags);
    it->second.build_log = diags.ToString();
    if (!m.ok()) return m.status();
    BRIDGECL_RETURN_IF_ERROR((*m)->LoadOn(device_));
    it->second.module = std::move(*m);
    build_time_us_ += kBuildCostUs;
    device_.AdvanceUs(kBuildCostUs);
    return OkStatus();
  }

  StatusOr<std::string> GetProgramBuildLog(ClProgram program) override {
    auto it = programs_.find(program.handle);
    if (it == programs_.end()) return InvalidArgumentError("unknown program");
    return it->second.build_log;
  }

  StatusOr<ClKernel> CreateKernel(ClProgram program,
                                  const std::string& name) override {
    device_.ChargeApiCall();
    auto it = programs_.find(program.handle);
    if (it == programs_.end()) return InvalidArgumentError("unknown program");
    if (it->second.module == nullptr)
      return FailedPreconditionError("program is not built");
    const lang::FunctionDecl* fn = it->second.module->FindKernel(name);
    if (fn == nullptr)
      return NotFoundError("no kernel '" + name + "' in program");
    uint64_t id = next_id_++;
    KernelRec& k = kernels_[id];
    k.program = program.handle;
    k.name = name;
    k.args.resize(fn->params.size());
    k.set.assign(fn->params.size(), false);
    return ClKernel{id};
  }

  Status SetKernelArg(ClKernel kernel, int index, size_t size,
                      const void* value) override {
    device_.ChargeApiCall();
    auto it = kernels_.find(kernel.handle);
    if (it == kernels_.end()) return InvalidArgumentError("unknown kernel");
    KernelRec& k = it->second;
    Module* module = programs_[k.program].module.get();
    const lang::FunctionDecl* fn = module->FindKernel(k.name);
    if (index < 0 || index >= static_cast<int>(fn->params.size()))
      return OutOfRangeError(
          StrFormat("argument index %d out of range for kernel '%s'", index,
                    k.name.c_str()));
    const lang::VarDecl* param = fn->params[index].get();
    const lang::Type::Ptr& t = param->type;

    if (value == nullptr) {
      // Dynamic __local allocation (§4.1).
      if (!t->is_pointer() || t->pointee_space() != AddressSpace::kLocal)
        return InvalidArgumentError(
            "null arg value on a non-__local parameter");
      k.args[index] = KernelArg::LocalAlloc(size);
      k.set[index] = true;
      return OkStatus();
    }
    if (t->is_pointer() && t->pointee_space() != AddressSpace::kPrivate) {
      if (size != sizeof(ClMem))
        return InvalidArgumentError("memory-object argument size mismatch");
      ClMem mem;
      std::memcpy(&mem, value, sizeof(mem));
      BRIDGECL_ASSIGN_OR_RETURN(uint64_t va, VaOfMemObject(mem));
      k.args[index] = KernelArg::Pointer(va);
      k.set[index] = true;
      return OkStatus();
    }
    if (t->is_image()) {
      ClMem mem;
      std::memcpy(&mem, value, sizeof(mem));
      BRIDGECL_ASSIGN_OR_RETURN(ImageRec * img, FindImage(mem));
      k.args[index] = KernelArg::Pointer(img->desc_va);
      k.set[index] = true;
      return OkStatus();
    }
    // Samplers and plain data: raw bytes.
    std::vector<std::byte> bytes(size);
    std::memcpy(bytes.data(), value, size);
    if (t->is_sampler() && size < 8) bytes.resize(8);
    k.args[index] = KernelArg::Bytes(std::move(bytes));
    k.set[index] = true;
    return OkStatus();
  }

  Status EnqueueNDRangeKernel(ClKernel kernel, int work_dim,
                              const size_t* gws, const size_t* lws) override {
    device_.ChargeApiCall();
    auto it = kernels_.find(kernel.handle);
    if (it == kernels_.end()) return InvalidArgumentError("unknown kernel");
    KernelRec& k = it->second;
    for (size_t i = 0; i < k.set.size(); ++i)
      if (!k.set[i])
        return FailedPreconditionError(
            StrFormat("kernel '%s': argument %zu was never set",
                      k.name.c_str(), i));
    if (work_dim < 1 || work_dim > 3)
      return InvalidArgumentError("work_dim must be 1..3");
    Dim3 g(1, 1, 1), l(1, 1, 1);
    uint32_t* gp[3] = {&g.x, &g.y, &g.z};
    uint32_t* lp[3] = {&l.x, &l.y, &l.z};
    for (int d = 0; d < work_dim; ++d) {
      *gp[d] = static_cast<uint32_t>(gws[d]);
      *lp[d] = lws != nullptr ? static_cast<uint32_t>(lws[d])
                              : std::min<uint32_t>(*gp[d], 64);
    }
    Dim3 grid;
    if (!simgpu::NdrangeToGrid(g, l, &grid))
      return InvalidArgumentError(
          "global work size is not a multiple of the local work size");
    interp::LaunchConfig cfg;
    cfg.grid = grid;
    cfg.block = l;
    Module* module = programs_[k.program].module.get();
    BRIDGECL_ASSIGN_OR_RETURN(
        interp::LaunchResult r,
        interp::LaunchKernel(device_, *module, k.name, cfg, k.args));
    (void)r;
    return OkStatus();
  }

  Status Finish() override {
    device_.ChargeApiCall();
    return OkStatus();
  }

  StatusOr<ClEvent> EnqueueNDRangeKernelWithEvent(
      ClKernel kernel, int work_dim, const size_t* gws,
      const size_t* lws) override {
    double queued = device_.now_us();
    BRIDGECL_RETURN_IF_ERROR(
        EnqueueNDRangeKernel(kernel, work_dim, gws, lws));
    uint64_t id = next_id_++;
    events_[id] = {queued, device_.now_us()};
    return ClEvent{id};
  }

  Status GetEventProfiling(ClEvent event, double* queued_us,
                           double* end_us) override {
    device_.ChargeApiCall();
    auto it = events_.find(event.handle);
    if (it == events_.end()) return InvalidArgumentError("unknown event");
    *queued_us = it->second.first;
    *end_us = it->second.second;
    return OkStatus();
  }

  Status SetProgramKernelRegisters(ClProgram program,
                                   const std::string& kernel,
                                   int regs) override {
    auto it = programs_.find(program.handle);
    if (it == programs_.end()) return InvalidArgumentError("unknown program");
    if (it->second.module == nullptr)
      return FailedPreconditionError("program is not built");
    if (it->second.module->FindKernel(kernel) == nullptr)
      return NotFoundError("no kernel '" + kernel + "' in program");
    it->second.module->SetRegisterOverride(kernel, regs);
    return OkStatus();
  }

  double NowUs() const override { return device_.now_us(); }
  double BuildTimeUs() const override { return build_time_us_; }

 private:
  void ChargeQuery() {
    device_.ChargeApiCall();
    device_.AdvanceUs(device_.profile().device_query_us);
  }

  StatusOr<BufferRec*> FindBuffer(ClMem mem) {
    auto it = buffers_.find(mem.handle);
    if (it == buffers_.end())
      return InvalidArgumentError("unknown buffer object");
    return &it->second;
  }

  StatusOr<ImageRec*> FindImage(ClMem mem) {
    auto it = images_.find(mem.handle);
    if (it == images_.end())
      return InvalidArgumentError("unknown image object");
    return &it->second;
  }

  StatusOr<uint64_t> VaOfMemObject(ClMem mem) {
    if (auto it = buffers_.find(mem.handle); it != buffers_.end())
      return it->second.va;
    if (auto it = images_.find(mem.handle); it != images_.end())
      return it->second.desc_va;
    return InvalidArgumentError("argument is not a memory object");
  }

  StatusOr<ClMem> MakeImage(MemFlags, const ClImageFormat& format,
                            size_t width, size_t height, const void* host_ptr,
                            ClMem backing_buffer) {
    size_t texel = lang::ScalarByteSize(format.elem) * format.channels;
    size_t bytes = width * height * texel;
    uint64_t data_va;
    bool owns = !backing_buffer.ok();
    if (owns) {
      BRIDGECL_ASSIGN_OR_RETURN(data_va, device_.vm().AllocGlobal(bytes));
    } else {
      BRIDGECL_ASSIGN_OR_RETURN(BufferRec * b, FindBuffer(backing_buffer));
      data_va = b->va;
    }
    ImageDesc desc;
    desc.data_va = data_va;
    desc.width = static_cast<uint32_t>(width);
    desc.height = static_cast<uint32_t>(height);
    desc.depth = 1;
    desc.channels = static_cast<uint32_t>(format.channels);
    desc.elem_kind = static_cast<uint32_t>(format.elem);
    desc.row_pitch = static_cast<uint32_t>(width * texel);
    desc.slice_pitch = static_cast<uint32_t>(bytes);
    desc.dims = height > 1 ? 2 : 1;
    BRIDGECL_ASSIGN_OR_RETURN(uint64_t desc_va,
                              device_.vm().AllocGlobal(sizeof(desc)));
    BRIDGECL_ASSIGN_OR_RETURN(
        std::byte * dp, device_.vm().Resolve(desc_va, sizeof(desc)));
    std::memcpy(dp, &desc, sizeof(desc));
    if (host_ptr != nullptr) {
      BRIDGECL_ASSIGN_OR_RETURN(std::byte * p,
                                device_.vm().Resolve(data_va, bytes));
      std::memcpy(p, host_ptr, bytes);
      device_.ChargeCopy(bytes);
      device_.stats().host_to_device_bytes += bytes;
    }
    uint64_t id = next_id_++;
    ImageRec rec;
    rec.desc_va = desc_va;
    rec.data_va = data_va;
    rec.owns_data = owns;
    rec.width = width;
    rec.height = height;
    rec.format = format;
    rec.byte_size = bytes;
    images_[id] = rec;
    return ClMem{id};
  }

  Device& device_;
  uint64_t next_id_ = 1;
  double build_time_us_ = 0;
  std::unordered_map<uint64_t, BufferRec> buffers_;
  std::unordered_map<uint64_t, ImageRec> images_;
  std::unordered_map<uint64_t, ProgramRec> programs_;
  std::unordered_map<uint64_t, KernelRec> kernels_;
  std::unordered_map<uint64_t, std::pair<double, double>> events_;
};

}  // namespace

std::unique_ptr<OpenClApi> CreateNativeClApi(Device& device) {
  return std::make_unique<NativeClApi>(device);
}

}  // namespace bridgecl::mocl
