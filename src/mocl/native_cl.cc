#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "interp/executor.h"
#include "interp/image.h"
#include "interp/module.h"
#include "mocl/cl_api.h"
#include "mocl/cl_errors.h"
#include "sched/scheduler.h"
#include "simgpu/fault_injector.h"
#include "snapshot/snapshot.h"
#include "support/strings.h"
#include "trace/session.h"
#include "trace/trace.h"

namespace bridgecl::mocl {
namespace {

using interp::ImageDesc;
using interp::KernelArg;
using interp::Module;
using lang::AddressSpace;
using lang::ScalarKind;
using simgpu::Device;
using simgpu::Dim3;
using simgpu::FaultInjector;
using simgpu::RetryTransient;
using simgpu::TransferWithFaults;
using trace::TraceKind;

/// Fixed simulated cost of an on-line clBuildProgram (front end + codegen).
constexpr double kBuildCostUs = 4000.0;

/// Handle-table keys in ascending order (deterministic snapshot images).
template <typename Map>
std::vector<uint64_t> SortedKeys(const Map& m) {
  std::vector<uint64_t> keys;
  keys.reserve(m.size());
  for (const auto& [k, v] : m) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  return keys;
}

struct BufferRec {
  uint64_t va = 0;
  size_t size = 0;
  MemFlags flags = MemFlags::kReadWrite;
};

struct ImageRec {
  uint64_t desc_va = 0;
  uint64_t data_va = 0;
  bool owns_data = true;
  size_t width = 0, height = 1;
  ClImageFormat format;
  size_t byte_size = 0;
};

struct ProgramRec {
  std::string source;
  std::unique_ptr<Module> module;
  std::string build_log;
};

struct KernelRec {
  uint64_t program = 0;
  std::string name;
  std::vector<KernelArg> args;  // indexed by parameter position
  std::vector<bool> set;
};

class NativeClApi final : public OpenClApi {
 public:
  explicit NativeClApi(Device& device)
      : device_(device),
        // BRIDGECL_TRACE / BRIDGECL_TRACE_SUMMARY attach a recorder to the
        // device for this runtime's lifetime (docs/OBSERVABILITY.md).
        auto_trace_(trace::TraceSession::MaybeAttachFromEnv(device)),
        sched_(device, "mocl") {
    device_.set_bank_mode(device_.profile().opencl_bank_mode);
  }

  trace::TraceRecorder* Tracer() const override { return device_.tracer(); }

  std::string PlatformName() const override {
    return "BridgeCL mini-OpenCL 1.2";
  }

  StatusOr<std::string> QueryDeviceInfoString(ClDeviceAttr attr) override {
    auto span = Span(TraceKind::kApiCall, "clGetDeviceInfo");
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    ChargeQuery();
    switch (attr) {
      case ClDeviceAttr::kName:
        return device_.profile().name;
      case ClDeviceAttr::kVendor:
        return device_.profile().vendor;
      default:
        return AsCl(InvalidArgumentError("attribute is not a string"),
                    CL_INVALID_VALUE);
    }
  }

  StatusOr<uint64_t> QueryDeviceInfoUint(ClDeviceAttr attr) override {
    auto span = Span(TraceKind::kApiCall, "clGetDeviceInfo");
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    ChargeQuery();
    const auto& p = device_.profile();
    switch (attr) {
      case ClDeviceAttr::kMaxComputeUnits:
        return static_cast<uint64_t>(p.compute_units);
      case ClDeviceAttr::kMaxWorkGroupSize:
        return static_cast<uint64_t>(p.max_threads_per_block);
      case ClDeviceAttr::kLocalMemSize:
        return static_cast<uint64_t>(p.shared_mem_per_block);
      case ClDeviceAttr::kGlobalMemSize:
        return static_cast<uint64_t>(p.global_mem_size);
      case ClDeviceAttr::kMaxConstantBufferSize:
        return static_cast<uint64_t>(p.constant_mem_size);
      case ClDeviceAttr::kImage2dMaxWidth:
        return static_cast<uint64_t>(p.max_image2d_width);
      case ClDeviceAttr::kImage2dMaxHeight:
        return static_cast<uint64_t>(p.max_image2d_height);
      case ClDeviceAttr::kImage1dMaxBufferWidth:
        return static_cast<uint64_t>(p.max_image1d_width);
      case ClDeviceAttr::kMaxClockFrequency:
        return static_cast<uint64_t>(p.clock_ghz * 1000);
      default:
        return AsCl(InvalidArgumentError("attribute is not an integer"),
                    CL_INVALID_VALUE);
    }
  }

  StatusOr<int> CreateSubDevices(int n) override {
    auto span = Span(TraceKind::kApiCall, "clCreateSubDevices");
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    device_.ChargeApiCall();
    if (n <= 0 || n > device_.profile().compute_units)
      return AsCl(InvalidArgumentError("invalid sub-device partition count"),
                  CL_INVALID_DEVICE_PARTITION_COUNT);
    // Equal partition by compute units; we only model the bookkeeping.
    return n;
  }

  // -- buffers ---------------------------------------------------------------
  StatusOr<ClMem> CreateBuffer(MemFlags flags, size_t size,
                               const void* host_ptr) override {
    // CL_MEM_COPY_HOST_PTR makes this an h2d command; a plain allocation
    // is an api-call. One span either way.
    auto span = Span(host_ptr != nullptr ? TraceKind::kH2D
                                         : TraceKind::kApiCall,
                     "clCreateBuffer");
    if (host_ptr != nullptr) span.SetBytes(size);
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    device_.ChargeApiCall();
    if (size == 0)
      return AsCl(InvalidArgumentError("buffer size is zero"),
                  CL_INVALID_BUFFER_SIZE);
    auto va_or = RetryTransient(
        device_.faults(), [&] { return device_.vm().AllocGlobal(size); });
    if (!va_or.ok())
      return Seal(va_or.status(), CL_MEM_OBJECT_ALLOCATION_FAILURE);
    uint64_t va = *va_or;
    if (host_ptr != nullptr) {
      Status st = CopyIn(va, host_ptr, size);
      if (!st.ok()) {
        // CL_MEM_COPY_HOST_PTR failed: no handle is created, so release
        // the device memory instead of leaking it.
        (void)device_.vm().FreeGlobal(va);
        return Seal(std::move(st), CL_MEM_OBJECT_ALLOCATION_FAILURE);
      }
    }
    uint64_t id = next_id_++;
    buffers_[id] = BufferRec{va, size, flags};
    return ClMem{id};
  }

  Status ReleaseMemObject(ClMem mem) override {
    auto span = Span(TraceKind::kApiCall, "clReleaseMemObject");
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    device_.ChargeApiCall();
    if (auto it = buffers_.find(mem.handle); it != buffers_.end()) {
      BRIDGECL_RETURN_IF_ERROR(Seal(FreeRetry(it->second.va),
                                    CL_OUT_OF_RESOURCES));
      buffers_.erase(it);
      return OkStatus();
    }
    if (auto it = images_.find(mem.handle); it != images_.end()) {
      if (it->second.owns_data)
        BRIDGECL_RETURN_IF_ERROR(Seal(FreeRetry(it->second.data_va),
                                      CL_OUT_OF_RESOURCES));
      BRIDGECL_RETURN_IF_ERROR(Seal(FreeRetry(it->second.desc_va),
                                    CL_OUT_OF_RESOURCES));
      images_.erase(it);
      return OkStatus();
    }
    return AsCl(InvalidArgumentError("unknown memory object"),
                CL_INVALID_MEM_OBJECT);
  }

  Status EnqueueWriteBuffer(ClMem mem, size_t offset, size_t size,
                            const void* src) override {
    return EnqueueWriteBufferOn(ClQueue{}, mem, offset, size, src,
                                /*blocking=*/true, {}, nullptr);
  }

  Status EnqueueReadBuffer(ClMem mem, size_t offset, size_t size,
                           void* dst) override {
    return EnqueueReadBufferOn(ClQueue{}, mem, offset, size, dst,
                               /*blocking=*/true, {}, nullptr);
  }

  Status EnqueueCopyBuffer(ClMem src, ClMem dst, size_t src_offset,
                           size_t dst_offset, size_t size) override {
    // Legacy single-queue form: a blocking-ish copy on the default queue
    // (the caller observes completion through the rolled clock).
    auto span = Span(TraceKind::kD2D, "clEnqueueCopyBuffer");
    span.SetBytes(size);
    double queued = device_.now_us();
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    device_.ChargeApiCall();
    return span.Sealed(CopyImpl(ClQueue{}, src, dst, src_offset, dst_offset,
                                size, /*blocking=*/true, {}, nullptr,
                                queued));
  }

  Status EnqueueWriteBufferOn(ClQueue queue, ClMem mem, size_t offset,
                              size_t size, const void* src, bool blocking,
                              std::span<const ClEvent> wait_events,
                              ClEvent* out_event) override {
    auto span = Span(TraceKind::kH2D, "clEnqueueWriteBuffer");
    span.SetBytes(size);
    double queued = device_.now_us();
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    device_.ChargeApiCall();
    BRIDGECL_RETURN_IF_ERROR(ValidateQueue(queue));
    BRIDGECL_ASSIGN_OR_RETURN(BufferRec * b, FindBuffer(mem));
    if (offset + size > b->size)
      return span.Sealed(AsCl(OutOfRangeError("write beyond buffer end"),
                              CL_INVALID_VALUE));
    sched::CommandSpec spec;
    spec.kind = sched::CommandKind::kCopyH2D;
    spec.queue = queue.handle;
    spec.bytes = size;
    BRIDGECL_ASSIGN_OR_RETURN(spec.wait_events, WaitList(wait_events));
    const uint64_t va = b->va + offset;
    auto res = sched_.Enqueue(spec, blocking, queued, [&] {
      return Seal(CopyIn(va, src, size), CL_OUT_OF_RESOURCES);
    });
    if (out_event != nullptr) *out_event = ClEvent{res.event};
    return span.Sealed(Seal(std::move(res.status), CL_OUT_OF_RESOURCES));
  }

  Status EnqueueReadBufferOn(ClQueue queue, ClMem mem, size_t offset,
                             size_t size, void* dst, bool blocking,
                             std::span<const ClEvent> wait_events,
                             ClEvent* out_event) override {
    auto span = Span(TraceKind::kD2H, "clEnqueueReadBuffer");
    span.SetBytes(size);
    double queued = device_.now_us();
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    device_.ChargeApiCall();
    BRIDGECL_RETURN_IF_ERROR(ValidateQueue(queue));
    BRIDGECL_ASSIGN_OR_RETURN(BufferRec * b, FindBuffer(mem));
    if (offset + size > b->size)
      return span.Sealed(AsCl(OutOfRangeError("read beyond buffer end"),
                              CL_INVALID_VALUE));
    sched::CommandSpec spec;
    spec.kind = sched::CommandKind::kCopyD2H;
    spec.queue = queue.handle;
    spec.bytes = size;
    BRIDGECL_ASSIGN_OR_RETURN(spec.wait_events, WaitList(wait_events));
    const uint64_t va = b->va + offset;
    auto res = sched_.Enqueue(spec, blocking, queued, [&] {
      return Seal(CopyOut(dst, va, size), CL_OUT_OF_RESOURCES);
    });
    if (out_event != nullptr) *out_event = ClEvent{res.event};
    return span.Sealed(Seal(std::move(res.status), CL_OUT_OF_RESOURCES));
  }

  Status EnqueueCopyBufferOn(ClQueue queue, ClMem src, ClMem dst,
                             size_t src_offset, size_t dst_offset, size_t size,
                             std::span<const ClEvent> wait_events,
                             ClEvent* out_event) override {
    auto span = Span(TraceKind::kD2D, "clEnqueueCopyBuffer");
    span.SetBytes(size);
    double queued = device_.now_us();
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    device_.ChargeApiCall();
    return span.Sealed(CopyImpl(queue, src, dst, src_offset, dst_offset,
                                size, /*blocking=*/false, wait_events,
                                out_event, queued));
  }

  // -- images ----------------------------------------------------------------
  StatusOr<ClMem> CreateImage2D(MemFlags flags, const ClImageFormat& format,
                                size_t width, size_t height,
                                const void* host_ptr) override {
    auto span = Span(host_ptr != nullptr ? TraceKind::kH2D
                                         : TraceKind::kApiCall,
                     "clCreateImage2D");
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    device_.ChargeApiCall();
    const auto& p = device_.profile();
    if (width > static_cast<size_t>(p.max_image2d_width) ||
        height > static_cast<size_t>(p.max_image2d_height))
      return AsCl(
          InvalidArgumentError(StrFormat(
              "image size %zux%zu exceeds device limits", width, height)),
          CL_INVALID_IMAGE_SIZE);
    return MakeImage(flags, format, width, height, host_ptr, /*buffer=*/{});
  }

  StatusOr<ClMem> CreateImage1D(MemFlags flags, const ClImageFormat& format,
                                size_t width, const void* host_ptr) override {
    auto span = Span(host_ptr != nullptr ? TraceKind::kH2D
                                         : TraceKind::kApiCall,
                     "clCreateImage1D");
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    device_.ChargeApiCall();
    if (width > device_.profile().max_image1d_width)
      return AsCl(
          InvalidArgumentError(StrFormat(
              "1D image width %zu exceeds device maximum %zu (§5)", width,
              device_.profile().max_image1d_width)),
          CL_INVALID_IMAGE_SIZE);
    return MakeImage(flags, format, width, 1, host_ptr, /*buffer=*/{});
  }

  StatusOr<ClMem> CreateImage1DFromBuffer(const ClImageFormat& format,
                                          size_t width,
                                          ClMem buffer) override {
    auto span = Span(TraceKind::kApiCall, "clCreateImage1DFromBuffer");
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    device_.ChargeApiCall();
    if (width > device_.profile().max_image1d_width)
      return AsCl(
          InvalidArgumentError(StrFormat(
              "1D image buffer width %zu exceeds device maximum %zu; "
              "CUDA linear textures reach 2^27 (§5)",
              width, device_.profile().max_image1d_width)),
          CL_INVALID_IMAGE_SIZE);
    BRIDGECL_ASSIGN_OR_RETURN(BufferRec * b, FindBuffer(buffer));
    size_t texel = lang::ScalarByteSize(format.elem) * format.channels;
    if (width * texel > b->size)
      return AsCl(
          OutOfRangeError("image view larger than the backing buffer"),
          CL_INVALID_IMAGE_SIZE);
    return MakeImage(MemFlags::kReadWrite, format, width, 1, nullptr, buffer);
  }

  Status EnqueueWriteImage(ClMem image, const void* src) override {
    auto span = Span(TraceKind::kH2D, "clEnqueueWriteImage");
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    device_.ChargeApiCall();
    BRIDGECL_ASSIGN_OR_RETURN(ImageRec * img, FindImage(image));
    span.SetBytes(img->byte_size);
    return span.Sealed(Seal(CopyIn(img->data_va, src, img->byte_size),
                            CL_OUT_OF_RESOURCES));
  }

  Status EnqueueReadImage(ClMem image, void* dst) override {
    auto span = Span(TraceKind::kD2H, "clEnqueueReadImage");
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    device_.ChargeApiCall();
    BRIDGECL_ASSIGN_OR_RETURN(ImageRec * img, FindImage(image));
    span.SetBytes(img->byte_size);
    return span.Sealed(Seal(CopyOut(dst, img->data_va, img->byte_size),
                            CL_OUT_OF_RESOURCES));
  }

  StatusOr<uint64_t> CreateSampler(const ClSamplerDesc& desc) override {
    auto span = Span(TraceKind::kApiCall, "clCreateSampler");
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    device_.ChargeApiCall();
    uint64_t bits = 0;
    if (desc.normalized_coords) bits |= interp::kSamplerNormalizedCoords;
    if (desc.address_clamp) bits |= interp::kSamplerAddressClamp;
    if (desc.filter_linear) bits |= interp::kSamplerFilterLinear;
    return bits;
  }

  // -- programs & kernels -----------------------------------------------------
  StatusOr<ClProgram> CreateProgramWithSource(
      const std::string& source) override {
    auto span = Span(TraceKind::kApiCall, "clCreateProgramWithSource");
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    device_.ChargeApiCall();
    uint64_t id = next_id_++;
    programs_[id].source = source;
    return ClProgram{id};
  }

  Status BuildProgram(ClProgram program) override {
    auto span = Span(TraceKind::kApiCall, "clBuildProgram");
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    device_.ChargeApiCall();
    auto it = programs_.find(program.handle);
    if (it == programs_.end())
      return AsCl(InvalidArgumentError("unknown program"),
                  CL_INVALID_PROGRAM);
    DiagnosticEngine diags;
    interp::ModuleCacheOutcome cache_outcome;
    auto m = Module::Compile(it->second.source, lang::Dialect::kOpenCL, diags,
                             /*build_options=*/"", &cache_outcome);
    if (cache_outcome != interp::ModuleCacheOutcome::kDisabled) {
      auto stats = interp::GetModuleCacheStats();
      span.SetModuleCache(cache_outcome == interp::ModuleCacheOutcome::kHit,
                          stats.hits, stats.misses);
    }
    it->second.build_log = diags.ToString();
    // The simulated build cost is charged identically on cache hit and
    // miss: the cache saves host wall-clock, never simulated device time.
    // Whatever the compiler's failure class, clBuildProgram reports a
    // source that does not compile as CL_BUILD_PROGRAM_FAILURE.
    if (!m.ok()) return AsCl(m.status(), CL_BUILD_PROGRAM_FAILURE);
    BRIDGECL_RETURN_IF_ERROR(
        Seal((*m)->LoadOn(device_), CL_BUILD_PROGRAM_FAILURE));
    it->second.module = std::move(*m);
    build_time_us_ += kBuildCostUs;
    device_.AdvanceUs(kBuildCostUs);
    return OkStatus();
  }

  StatusOr<std::string> GetProgramBuildLog(ClProgram program) override {
    auto it = programs_.find(program.handle);
    if (it == programs_.end())
      return AsCl(InvalidArgumentError("unknown program"),
                  CL_INVALID_PROGRAM);
    return it->second.build_log;
  }

  StatusOr<ClKernel> CreateKernel(ClProgram program,
                                  const std::string& name) override {
    auto span = Span(TraceKind::kApiCall, "clCreateKernel");
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    device_.ChargeApiCall();
    auto it = programs_.find(program.handle);
    if (it == programs_.end())
      return span.Sealed(AsCl(InvalidArgumentError("unknown program"),
                              CL_INVALID_PROGRAM));
    if (it->second.module == nullptr)
      return span.Sealed(
          AsCl(FailedPreconditionError("program is not built"),
               CL_INVALID_PROGRAM_EXECUTABLE));
    const lang::FunctionDecl* fn = it->second.module->FindKernel(name);
    if (fn == nullptr)
      return span.Sealed(
          AsCl(NotFoundError("no kernel '" + name + "' in program"),
               CL_INVALID_KERNEL_NAME));
    uint64_t id = next_id_++;
    KernelRec& k = kernels_[id];
    k.program = program.handle;
    k.name = name;
    k.args.resize(fn->params.size());
    k.set.assign(fn->params.size(), false);
    return ClKernel{id};
  }

  Status SetKernelArg(ClKernel kernel, int index, size_t size,
                      const void* value) override {
    auto span = Span(TraceKind::kApiCall, "clSetKernelArg");
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    device_.ChargeApiCall();
    auto it = kernels_.find(kernel.handle);
    if (it == kernels_.end())
      return AsCl(InvalidArgumentError("unknown kernel"), CL_INVALID_KERNEL);
    KernelRec& k = it->second;
    Module* module = programs_[k.program].module.get();
    const lang::FunctionDecl* fn = module->FindKernel(k.name);
    if (index < 0 || index >= static_cast<int>(fn->params.size()))
      return AsCl(
          OutOfRangeError(StrFormat(
              "argument index %d out of range for kernel '%s'", index,
              k.name.c_str())),
          CL_INVALID_ARG_INDEX);
    const lang::VarDecl* param = fn->params[index].get();
    const lang::Type::Ptr& t = param->type;

    if (value == nullptr) {
      // Dynamic __local allocation (§4.1).
      if (!t->is_pointer() || t->pointee_space() != AddressSpace::kLocal)
        return AsCl(
            InvalidArgumentError("null arg value on a non-__local parameter"),
            CL_INVALID_ARG_VALUE);
      k.args[index] = KernelArg::LocalAlloc(size);
      k.set[index] = true;
      return OkStatus();
    }
    if (t->is_pointer() && t->pointee_space() != AddressSpace::kPrivate) {
      if (size != sizeof(ClMem))
        return AsCl(
            InvalidArgumentError("memory-object argument size mismatch"),
            CL_INVALID_ARG_SIZE);
      ClMem mem;
      std::memcpy(&mem, value, sizeof(mem));
      BRIDGECL_ASSIGN_OR_RETURN(uint64_t va, VaOfMemObject(mem));
      k.args[index] = KernelArg::Pointer(va);
      k.set[index] = true;
      return OkStatus();
    }
    if (t->is_image()) {
      ClMem mem;
      std::memcpy(&mem, value, sizeof(mem));
      BRIDGECL_ASSIGN_OR_RETURN(ImageRec * img, FindImage(mem));
      k.args[index] = KernelArg::Pointer(img->desc_va);
      k.set[index] = true;
      return OkStatus();
    }
    // Samplers and plain data: raw bytes.
    std::vector<std::byte> bytes(size);
    std::memcpy(bytes.data(), value, size);
    if (t->is_sampler() && size < 8) bytes.resize(8);
    k.args[index] = KernelArg::Bytes(std::move(bytes));
    k.set[index] = true;
    return OkStatus();
  }

  Status EnqueueNDRangeKernel(ClKernel kernel, int work_dim,
                              const size_t* gws, const size_t* lws) override {
    return LaunchOn(ClQueue{}, kernel, work_dim, gws, lws, /*blocking=*/true,
                    {}, nullptr);
  }

  Status EnqueueNDRangeKernelOn(ClQueue queue, ClKernel kernel, int work_dim,
                                const size_t* gws, const size_t* lws,
                                std::span<const ClEvent> wait_events,
                                ClEvent* out_event) override {
    return LaunchOn(queue, kernel, work_dim, gws, lws, /*blocking=*/false,
                    wait_events, out_event);
  }

  Status LaunchOn(ClQueue queue, ClKernel kernel, int work_dim,
                  const size_t* gws, const size_t* lws, bool blocking,
                  std::span<const ClEvent> wait_events, ClEvent* out_event) {
    auto span = Span(TraceKind::kKernelLaunch, "clEnqueueNDRangeKernel");
    double queued = device_.now_us();
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    device_.ChargeApiCall();
    BRIDGECL_RETURN_IF_ERROR(ValidateQueue(queue));
    auto it = kernels_.find(kernel.handle);
    if (it == kernels_.end())
      return AsCl(InvalidArgumentError("unknown kernel"), CL_INVALID_KERNEL);
    KernelRec& k = it->second;
    for (size_t i = 0; i < k.set.size(); ++i)
      if (!k.set[i])
        return AsCl(
            FailedPreconditionError(StrFormat(
                "kernel '%s': argument %zu was never set", k.name.c_str(),
                i)),
            CL_INVALID_KERNEL_ARGS);
    if (work_dim < 1 || work_dim > 3)
      return AsCl(InvalidArgumentError("work_dim must be 1..3"),
                  CL_INVALID_WORK_DIMENSION);
    Dim3 g(1, 1, 1), l(1, 1, 1);
    uint32_t* gp[3] = {&g.x, &g.y, &g.z};
    uint32_t* lp[3] = {&l.x, &l.y, &l.z};
    for (int d = 0; d < work_dim; ++d) {
      *gp[d] = static_cast<uint32_t>(gws[d]);
      *lp[d] = lws != nullptr ? static_cast<uint32_t>(lws[d])
                              : std::min<uint32_t>(*gp[d], 64);
    }
    Dim3 grid;
    if (!simgpu::NdrangeToGrid(g, l, &grid))
      return AsCl(
          InvalidArgumentError(
              "global work size is not a multiple of the local work size"),
          CL_INVALID_WORK_GROUP_SIZE);
    if (l.Count() >
        static_cast<uint64_t>(device_.profile().max_threads_per_block))
      return AsCl(
          InvalidArgumentError(StrFormat(
              "work-group size %llu exceeds CL_DEVICE_MAX_WORK_GROUP_SIZE %d",
              static_cast<unsigned long long>(l.Count()),
              device_.profile().max_threads_per_block)),
          CL_INVALID_WORK_GROUP_SIZE);
    interp::LaunchConfig cfg;
    cfg.grid = grid;
    cfg.block = l;
    Module* module = programs_[k.program].module.get();
    sched::CommandSpec spec;
    spec.kind = sched::CommandKind::kKernel;
    spec.queue = queue.handle;
    spec.kernel = k.name;
    BRIDGECL_ASSIGN_OR_RETURN(spec.wait_events, WaitList(wait_events));
    interp::LaunchResult result{};
    bool launched = false;
    std::string name = k.name;
    auto args = k.args;  // by value: `k` may dangle if the map rehashes
    auto res = sched_.Enqueue(spec, blocking, queued, [&] {
      Status st = RetryTransient(device_.faults(), [&] {
        auto r = interp::LaunchKernel(device_, *module, name, cfg, args);
        if (r.ok()) result = *r;
        return r.status();
      });
      if (st.ok()) launched = true;
      // Device-side failures (memory faults, traps, exhausted resources)
      // surface at the launch/finish boundary as CL_OUT_OF_RESOURCES.
      return Seal(std::move(st), CL_OUT_OF_RESOURCES);
    });
    if (launched)
      span.SetKernel(name, module->RegistersFor(module->FindKernel(name)),
                     result.occupancy);
    if (out_event != nullptr) *out_event = ClEvent{res.event};
    return span.Sealed(Seal(std::move(res.status), CL_OUT_OF_RESOURCES));
  }

  Status Finish() override {
    // Legacy form: device-wide drain (every queue), so single-queue apps
    // keep their semantics when a wrapper adds internal queues underneath.
    auto span = Span(TraceKind::kApiCall, "clFinish");
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    device_.ChargeApiCall();
    return span.Sealed(Seal(sched_.SynchronizeAll(), CL_OUT_OF_RESOURCES));
  }

  Status Finish(ClQueue queue) override {
    auto span = Span(TraceKind::kApiCall, "clFinish");
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    device_.ChargeApiCall();
    BRIDGECL_RETURN_IF_ERROR(ValidateQueue(queue));
    return span.Sealed(
        Seal(sched_.Synchronize(queue.handle), CL_OUT_OF_RESOURCES));
  }

  Status Flush(ClQueue queue) override {
    // Commands execute (in simulated terms: are timed) at enqueue, so a
    // flush is pure submission bookkeeping — completion and deferred
    // errors still require Finish (docs/CONCURRENCY.md).
    auto span = Span(TraceKind::kApiCall, "clFlush");
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    device_.ChargeApiCall();
    return span.Sealed(ValidateQueue(queue));
  }

  StatusOr<ClQueue> CreateCommandQueue(uint64_t properties) override {
    auto span = Span(TraceKind::kApiCall, "clCreateCommandQueue");
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    device_.ChargeApiCall();
    if ((properties & ~CL_QUEUE_OUT_OF_ORDER_EXEC_MODE_ENABLE) != 0)
      return span.Sealed(
          AsCl(InvalidArgumentError("unknown command-queue property bits"),
               CL_INVALID_VALUE));
    const bool ooo =
        (properties & CL_QUEUE_OUT_OF_ORDER_EXEC_MODE_ENABLE) != 0;
    return ClQueue{sched_.CreateQueue(ooo)};
  }

  Status ReleaseCommandQueue(ClQueue queue) override {
    auto span = Span(TraceKind::kApiCall, "clReleaseCommandQueue");
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    device_.ChargeApiCall();
    if (queue.handle == sched::kDefaultQueue ||
        !sched_.HasQueue(queue.handle))
      return span.Sealed(
          AsCl(InvalidArgumentError("unknown or default command queue"),
               CL_INVALID_COMMAND_QUEUE));
    return span.Sealed(
        Seal(sched_.ReleaseQueue(queue.handle), CL_OUT_OF_RESOURCES));
  }

  StatusOr<ClEvent> EnqueueMarkerWithWaitList(
      ClQueue queue, std::span<const ClEvent> wait_events) override {
    auto span = Span(TraceKind::kApiCall, "clEnqueueMarkerWithWaitList");
    double queued = device_.now_us();
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    device_.ChargeApiCall();
    BRIDGECL_RETURN_IF_ERROR(ValidateQueue(queue));
    sched::CommandSpec spec;
    spec.queue = queue.handle;
    BRIDGECL_ASSIGN_OR_RETURN(spec.wait_events, WaitList(wait_events));
    auto res = sched_.Enqueue(spec, /*blocking=*/false, queued,
                              [] { return OkStatus(); });
    BRIDGECL_RETURN_IF_ERROR(
        span.Sealed(Seal(std::move(res.status), CL_OUT_OF_RESOURCES)));
    return ClEvent{res.event};
  }

  StatusOr<ClEvent> EnqueueBarrier(ClQueue queue) override {
    auto span = Span(TraceKind::kApiCall, "clEnqueueBarrierWithWaitList");
    double queued = device_.now_us();
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    device_.ChargeApiCall();
    BRIDGECL_RETURN_IF_ERROR(ValidateQueue(queue));
    sched::CommandSpec spec;
    spec.kind = sched::CommandKind::kBarrier;
    spec.queue = queue.handle;
    auto res = sched_.Enqueue(spec, /*blocking=*/false, queued,
                              [] { return OkStatus(); });
    BRIDGECL_RETURN_IF_ERROR(
        span.Sealed(Seal(std::move(res.status), CL_OUT_OF_RESOURCES)));
    return ClEvent{res.event};
  }

  Status WaitForEvents(std::span<const ClEvent> events) override {
    auto span = Span(TraceKind::kApiCall, "clWaitForEvents");
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    device_.ChargeApiCall();
    std::vector<uint64_t> ids;
    ids.reserve(events.size());
    for (ClEvent e : events) ids.push_back(e.handle);
    // An unknown handle comes back unannotated (NotFound) and maps to
    // CL_INVALID_EVENT; a failed event's own status is already sealed
    // with the code of the entry point that enqueued it.
    return span.Sealed(AsCl(sched_.WaitForEvents(ids), CL_INVALID_EVENT));
  }

  Status ReleaseEvent(ClEvent event) override {
    auto span = Span(TraceKind::kApiCall, "clReleaseEvent");
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    device_.ChargeApiCall();
    if (!sched_.ReleaseEvent(event.handle))
      return span.Sealed(
          AsCl(InvalidArgumentError("unknown event"), CL_INVALID_EVENT));
    return OkStatus();
  }

  StatusOr<ClEvent> EnqueueNDRangeKernelWithEvent(
      ClKernel kernel, int work_dim, const size_t* gws,
      const size_t* lws) override {
    // The COMMAND_QUEUED timestamp and the traced launch span share the
    // same clock; events_test.cc checks queued <= end and that both fall
    // inside the recorded span window.
    ClEvent ev;
    BRIDGECL_RETURN_IF_ERROR(LaunchOn(ClQueue{}, kernel, work_dim, gws, lws,
                                      /*blocking=*/true, {}, &ev));
    return ev;
  }

  Status GetEventProfiling(ClEvent event, double* queued_us,
                           double* end_us) override {
    auto span = Span(TraceKind::kApiCall, "clGetEventProfilingInfo");
    BRIDGECL_RETURN_IF_ERROR(CheckUsable());
    device_.ChargeApiCall();
    auto t = sched_.TimesOf(event.handle);
    if (!t.ok())
      return AsCl(InvalidArgumentError("unknown event"), CL_INVALID_EVENT);
    *queued_us = t->queued_us;
    *end_us = t->end_us;
    return OkStatus();
  }

  Status SetProgramKernelRegisters(ClProgram program,
                                   const std::string& kernel,
                                   int regs) override {
    auto it = programs_.find(program.handle);
    if (it == programs_.end())
      return AsCl(InvalidArgumentError("unknown program"),
                  CL_INVALID_PROGRAM);
    if (it->second.module == nullptr)
      return AsCl(FailedPreconditionError("program is not built"),
                  CL_INVALID_PROGRAM_EXECUTABLE);
    if (it->second.module->FindKernel(kernel) == nullptr)
      return AsCl(NotFoundError("no kernel '" + kernel + "' in program"),
                  CL_INVALID_KERNEL_NAME);
    it->second.module->SetRegisterOverride(kernel, regs);
    return OkStatus();
  }

  double NowUs() const override { return device_.now_us(); }
  double BuildTimeUs() const override { return build_time_us_; }

  // -- bridgeclSnapshot / bridgeclRestore (src/snapshot) ---------------------
  // Neither entry point charges simulated time or advances the clock: the
  // clock is part of the captured state, and a snapshot of a context must
  // restore to the exact clock it was taken at. Snapshot deliberately
  // skips CheckUsable — a lost context can still be imaged for offline
  // inspection and cross-device migration.
  Status Snapshot(const std::string& path) override {
    snapshot::ImageWriter w;
    snapshot::AppendDeviceSections(device_, w);
    snapshot::AppendModuleCacheSection(w);
    snapshot::AppendSchedulerSection(sched_, w);

    snapshot::ByteWriter b;
    b.U64(next_id_);
    b.F64(build_time_us_);

    auto ids = SortedKeys(buffers_);
    b.U32(static_cast<uint32_t>(ids.size()));
    for (uint64_t id : ids) {
      const BufferRec& rec = buffers_.at(id);
      b.U64(id);
      b.U64(rec.va);
      b.U64(rec.size);
      b.U8(static_cast<uint8_t>(rec.flags));
    }

    ids = SortedKeys(images_);
    b.U32(static_cast<uint32_t>(ids.size()));
    for (uint64_t id : ids) {
      const ImageRec& rec = images_.at(id);
      b.U64(id);
      b.U64(rec.desc_va);
      b.U64(rec.data_va);
      b.Bool(rec.owns_data);
      b.U64(rec.width);
      b.U64(rec.height);
      b.U8(static_cast<uint8_t>(rec.format.elem));
      b.I32(rec.format.channels);
      b.U64(rec.byte_size);
    }

    ids = SortedKeys(programs_);
    b.U32(static_cast<uint32_t>(ids.size()));
    for (uint64_t id : ids) {
      const ProgramRec& rec = programs_.at(id);
      b.U64(id);
      b.String(rec.source);
      b.String(rec.build_log);
      b.Bool(rec.module != nullptr);
      if (rec.module != nullptr) snapshot::PutModuleLayout(b, *rec.module);
    }

    ids = SortedKeys(kernels_);
    b.U32(static_cast<uint32_t>(ids.size()));
    for (uint64_t id : ids) {
      const KernelRec& rec = kernels_.at(id);
      b.U64(id);
      b.U64(rec.program);
      b.String(rec.name);
      b.U32(static_cast<uint32_t>(rec.args.size()));
      for (size_t i = 0; i < rec.args.size(); ++i) {
        const KernelArg& a = rec.args[i];
        b.U8(static_cast<uint8_t>(a.kind));
        b.Blob(std::span<const std::byte>(a.bytes));
        b.U64(a.local_size);
        b.Bool(rec.set[i]);
      }
    }
    w.AddSection("MOCL", b.Take());
    return Seal(w.WriteFile(path, device_.profile().name), CL_INVALID_VALUE);
  }

  Status Restore(const std::string& path) override {
    auto img_or = snapshot::ImageReader::Open(path);
    if (!img_or.ok()) return Seal(img_or.status(), CL_INVALID_VALUE);
    const snapshot::ImageReader& img = *img_or;
    auto sec_or = img.Section("MOCL");
    if (!sec_or.ok())
      return AsCl(InvalidArgumentError(
                      "snapshot image was not taken by an OpenCL context"),
                  CL_INVALID_VALUE);

    // Decode the whole layer section into plain data before touching any
    // state: a corrupt image must leave the context exactly as it was.
    snapshot::ByteReader b(*sec_or);
    uint64_t next_id = 1;
    double build_time_us = 0;
    std::unordered_map<uint64_t, BufferRec> buffers;
    std::unordered_map<uint64_t, ImageRec> images;
    struct ProgramImage {
      std::string source;
      std::string build_log;
      bool built = false;
      snapshot::ModuleLayout layout;
    };
    std::vector<std::pair<uint64_t, ProgramImage>> programs;
    std::unordered_map<uint64_t, KernelRec> kernels;
    {
      Status st = [&]() -> Status {
        BRIDGECL_ASSIGN_OR_RETURN(next_id, b.U64());
        BRIDGECL_ASSIGN_OR_RETURN(build_time_us, b.F64());
        BRIDGECL_ASSIGN_OR_RETURN(uint32_t n, b.U32());
        for (uint32_t i = 0; i < n; ++i) {
          BRIDGECL_ASSIGN_OR_RETURN(uint64_t id, b.U64());
          BufferRec rec;
          BRIDGECL_ASSIGN_OR_RETURN(rec.va, b.U64());
          BRIDGECL_ASSIGN_OR_RETURN(uint64_t size, b.U64());
          rec.size = size;
          BRIDGECL_ASSIGN_OR_RETURN(uint8_t flags, b.U8());
          if (flags > static_cast<uint8_t>(MemFlags::kWriteOnly))
            return InvalidArgumentError(
                "corrupt snapshot image: unknown buffer flags");
          rec.flags = static_cast<MemFlags>(flags);
          buffers[id] = rec;
        }
        BRIDGECL_ASSIGN_OR_RETURN(n, b.U32());
        for (uint32_t i = 0; i < n; ++i) {
          BRIDGECL_ASSIGN_OR_RETURN(uint64_t id, b.U64());
          ImageRec rec;
          BRIDGECL_ASSIGN_OR_RETURN(rec.desc_va, b.U64());
          BRIDGECL_ASSIGN_OR_RETURN(rec.data_va, b.U64());
          BRIDGECL_ASSIGN_OR_RETURN(rec.owns_data, b.Bool());
          BRIDGECL_ASSIGN_OR_RETURN(uint64_t w, b.U64());
          rec.width = w;
          BRIDGECL_ASSIGN_OR_RETURN(uint64_t h, b.U64());
          rec.height = h;
          BRIDGECL_ASSIGN_OR_RETURN(uint8_t elem, b.U8());
          rec.format.elem = static_cast<ScalarKind>(elem);
          BRIDGECL_ASSIGN_OR_RETURN(rec.format.channels, b.I32());
          BRIDGECL_ASSIGN_OR_RETURN(uint64_t bytes, b.U64());
          rec.byte_size = bytes;
          images[id] = rec;
        }
        BRIDGECL_ASSIGN_OR_RETURN(n, b.U32());
        programs.resize(n);
        for (uint32_t i = 0; i < n; ++i) {
          BRIDGECL_ASSIGN_OR_RETURN(programs[i].first, b.U64());
          ProgramImage& p = programs[i].second;
          BRIDGECL_ASSIGN_OR_RETURN(p.source, b.String());
          BRIDGECL_ASSIGN_OR_RETURN(p.build_log, b.String());
          BRIDGECL_ASSIGN_OR_RETURN(p.built, b.Bool());
          if (p.built)
            BRIDGECL_RETURN_IF_ERROR(snapshot::TakeModuleLayout(b, &p.layout));
        }
        BRIDGECL_ASSIGN_OR_RETURN(n, b.U32());
        for (uint32_t i = 0; i < n; ++i) {
          BRIDGECL_ASSIGN_OR_RETURN(uint64_t id, b.U64());
          KernelRec rec;
          BRIDGECL_ASSIGN_OR_RETURN(rec.program, b.U64());
          BRIDGECL_ASSIGN_OR_RETURN(rec.name, b.String());
          BRIDGECL_ASSIGN_OR_RETURN(uint32_t nargs, b.U32());
          rec.args.resize(nargs);
          rec.set.resize(nargs);
          for (uint32_t j = 0; j < nargs; ++j) {
            KernelArg& a = rec.args[j];
            BRIDGECL_ASSIGN_OR_RETURN(uint8_t kind, b.U8());
            if (kind > static_cast<uint8_t>(KernelArg::Kind::kLocalAlloc))
              return InvalidArgumentError(
                  "corrupt snapshot image: unknown kernel-arg kind");
            a.kind = static_cast<KernelArg::Kind>(kind);
            BRIDGECL_ASSIGN_OR_RETURN(a.bytes, b.Blob());
            BRIDGECL_ASSIGN_OR_RETURN(uint64_t ls, b.U64());
            a.local_size = ls;
            BRIDGECL_ASSIGN_OR_RETURN(bool set, b.Bool());
            rec.set[j] = set;
          }
          kernels[id] = std::move(rec);
        }
        if (!b.AtEnd())
          return InvalidArgumentError(
              "corrupt snapshot image: trailing bytes in MOCL section");
        return OkStatus();
      }();
      if (!st.ok()) return Seal(std::move(st), CL_INVALID_VALUE);
    }

    // Shared state. The VM import is the only fallible mutation and it
    // validates capacity before changing anything, so a cross-profile
    // restore onto a too-small device fails cleanly (CL_OUT_OF_RESOURCES).
    BRIDGECL_RETURN_IF_ERROR(
        Seal(snapshot::RestoreModuleCacheSection(img), CL_INVALID_VALUE));
    BRIDGECL_RETURN_IF_ERROR(
        Seal(snapshot::RestoreDeviceSections(img, device_),
             CL_OUT_OF_RESOURCES));
    BRIDGECL_RETURN_IF_ERROR(
        Seal(snapshot::RestoreSchedulerSection(img, sched_),
             CL_INVALID_VALUE));

    // Layer tables. Built programs are recompiled (a cache hit after the
    // MODC import) and adopt the image's symbol layout — LoadOn would
    // re-allocate and clobber the memory restored above.
    std::unordered_map<uint64_t, ProgramRec> new_programs;
    for (auto& [id, p] : programs) {
      ProgramRec& rec = new_programs[id];
      rec.source = std::move(p.source);
      rec.build_log = std::move(p.build_log);
      if (!p.built) continue;
      DiagnosticEngine diags;
      auto m = Module::Compile(rec.source, lang::Dialect::kOpenCL, diags);
      if (!m.ok())
        return AsCl(InvalidArgumentError(
                        "snapshot image holds a program that no longer "
                        "compiles: " + m.status().message()),
                    CL_INVALID_VALUE);
      Status st = snapshot::ApplyModuleLayout(**m, device_, p.layout);
      if (!st.ok()) return Seal(std::move(st), CL_INVALID_VALUE);
      rec.module = std::move(*m);
    }
    buffers_ = std::move(buffers);
    images_ = std::move(images);
    programs_ = std::move(new_programs);
    kernels_ = std::move(kernels);
    next_id_ = next_id;
    build_time_us_ = build_time_us;

    // Cross-profile migration: memory, modules and timelines carry over,
    // but the bank mode is a property of *this* runtime on *this* device —
    // re-apply the profile default when the image came from a different
    // profile (same-profile restores keep the image's mode bit-identically).
    if (img.info().profile != device_.profile().name)
      device_.set_bank_mode(device_.profile().opencl_bank_mode);
    return OkStatus();
  }

 private:
  /// Per-entry-point trace span; a no-op when no recorder is attached.
  trace::TraceSpan Span(TraceKind kind, const char* name) {
    return trace::TraceSpan(device_.tracer(), kind, "mocl", name);
  }

  /// Sticky device-lost gate: once the simulated device is lost, every
  /// entry point on this context returns CL_OUT_OF_RESOURCES until the
  /// context is torn down (Device::faults().ResetContext() or a new
  /// Device).
  Status CheckUsable() {
    if (device_.faults().device_lost())
      return AsCl(DeviceLostError(
                      "device lost; context is unusable until released"),
                  CL_OUT_OF_RESOURCES);
    return OkStatus();
  }

  /// Attach the entry point's default spec code to errors that bubbled up
  /// from inner layers without a CL annotation.
  Status Seal(Status st, int fallback) {
    int code = ClCodeFor(st, fallback);
    return AsCl(std::move(st), code);
  }

  Status FreeRetry(uint64_t va) {
    return RetryTransient(device_.faults(),
                          [&] { return device_.vm().FreeGlobal(va); });
  }

  Status CopyIn(uint64_t va, const void* src, size_t size) {
    auto p = device_.vm().Resolve(va, size);
    if (!p.ok()) return p.status();
    return TransferWithFaults(device_.faults(), size, [&](size_t n) {
      std::memcpy(*p, src, n);
      device_.ChargeCopy(n);
      device_.stats().host_to_device_bytes += n;
    });
  }

  Status CopyOut(void* dst, uint64_t va, size_t size) {
    auto p = device_.vm().Resolve(va, size);
    if (!p.ok()) return p.status();
    return TransferWithFaults(device_.faults(), size, [&](size_t n) {
      std::memcpy(dst, *p, n);
      device_.ChargeCopy(n);
      device_.stats().device_to_host_bytes += n;
    });
  }

  void ChargeQuery() {
    device_.ChargeApiCall();
    device_.AdvanceUs(device_.profile().device_query_us);
  }

  Status ValidateQueue(ClQueue queue) {
    if (!sched_.HasQueue(queue.handle))
      return AsCl(InvalidArgumentError("unknown command queue"),
                  CL_INVALID_COMMAND_QUEUE);
    return OkStatus();
  }

  /// Resolves a CL wait list to scheduler event ids, rejecting stale or
  /// foreign handles up front (enqueue-time CL_INVALID_EVENT, per spec).
  StatusOr<std::vector<uint64_t>> WaitList(
      std::span<const ClEvent> wait_events) {
    std::vector<uint64_t> ids;
    ids.reserve(wait_events.size());
    for (ClEvent e : wait_events) {
      if (!sched_.KnowsEvent(e.handle))
        return AsCl(InvalidArgumentError("unknown event in wait list"),
                    CL_INVALID_EVENT);
      ids.push_back(e.handle);
    }
    return ids;
  }

  /// Shared body of the legacy and queue-targeted buffer copies. Pointer
  /// resolution happens at enqueue (immediate CL_INVALID_VALUE /
  /// CL_OUT_OF_RESOURCES); the transfer itself is a scheduler command.
  Status CopyImpl(ClQueue queue, ClMem src, ClMem dst, size_t src_offset,
                  size_t dst_offset, size_t size, bool blocking,
                  std::span<const ClEvent> wait_events, ClEvent* out_event,
                  double queued) {
    BRIDGECL_RETURN_IF_ERROR(ValidateQueue(queue));
    BRIDGECL_ASSIGN_OR_RETURN(BufferRec * s, FindBuffer(src));
    BRIDGECL_ASSIGN_OR_RETURN(BufferRec * d, FindBuffer(dst));
    if (src_offset + size > s->size || dst_offset + size > d->size)
      return AsCl(OutOfRangeError("copy beyond buffer end"),
                  CL_INVALID_VALUE);
    auto sp = device_.vm().Resolve(s->va + src_offset, size);
    if (!sp.ok()) return Seal(sp.status(), CL_OUT_OF_RESOURCES);
    auto dp = device_.vm().Resolve(d->va + dst_offset, size);
    if (!dp.ok()) return Seal(dp.status(), CL_OUT_OF_RESOURCES);
    sched::CommandSpec spec;
    spec.kind = sched::CommandKind::kCopyD2D;
    spec.queue = queue.handle;
    spec.bytes = size;
    BRIDGECL_ASSIGN_OR_RETURN(spec.wait_events, WaitList(wait_events));
    void* sptr = *sp;
    void* dptr = *dp;
    auto res = sched_.Enqueue(spec, blocking, queued, [&] {
      Status st = TransferWithFaults(device_.faults(), size, [&](size_t n) {
        std::memmove(dptr, sptr, n);
        device_.ChargeCopy(n / 4);  // on-device copies are faster
        device_.stats().device_to_device_bytes += n;
      });
      return Seal(std::move(st), CL_OUT_OF_RESOURCES);
    });
    if (out_event != nullptr) *out_event = ClEvent{res.event};
    return Seal(std::move(res.status), CL_OUT_OF_RESOURCES);
  }

  StatusOr<BufferRec*> FindBuffer(ClMem mem) {
    auto it = buffers_.find(mem.handle);
    if (it == buffers_.end())
      return AsCl(InvalidArgumentError("unknown buffer object"),
                  CL_INVALID_MEM_OBJECT);
    return &it->second;
  }

  StatusOr<ImageRec*> FindImage(ClMem mem) {
    auto it = images_.find(mem.handle);
    if (it == images_.end())
      return AsCl(InvalidArgumentError("unknown image object"),
                  CL_INVALID_MEM_OBJECT);
    return &it->second;
  }

  StatusOr<uint64_t> VaOfMemObject(ClMem mem) {
    if (auto it = buffers_.find(mem.handle); it != buffers_.end())
      return it->second.va;
    if (auto it = images_.find(mem.handle); it != images_.end())
      return it->second.desc_va;
    return AsCl(InvalidArgumentError("argument is not a memory object"),
                CL_INVALID_MEM_OBJECT);
  }

  StatusOr<ClMem> MakeImage(MemFlags, const ClImageFormat& format,
                            size_t width, size_t height, const void* host_ptr,
                            ClMem backing_buffer) {
    size_t texel = lang::ScalarByteSize(format.elem) * format.channels;
    size_t bytes = width * height * texel;
    uint64_t data_va;
    bool owns = !backing_buffer.ok();
    if (owns) {
      auto va_or = RetryTransient(
          device_.faults(), [&] { return device_.vm().AllocGlobal(bytes); });
      if (!va_or.ok())
        return Seal(va_or.status(), CL_MEM_OBJECT_ALLOCATION_FAILURE);
      data_va = *va_or;
    } else {
      BRIDGECL_ASSIGN_OR_RETURN(BufferRec * b, FindBuffer(backing_buffer));
      data_va = b->va;
    }
    // From here on, failures must release what this call allocated.
    auto fail = [&](Status st, int fallback) -> Status {
      if (owns) (void)device_.vm().FreeGlobal(data_va);
      return Seal(std::move(st), fallback);
    };
    ImageDesc desc;
    desc.data_va = data_va;
    desc.width = static_cast<uint32_t>(width);
    desc.height = static_cast<uint32_t>(height);
    desc.depth = 1;
    desc.channels = static_cast<uint32_t>(format.channels);
    desc.elem_kind = static_cast<uint32_t>(format.elem);
    desc.row_pitch = static_cast<uint32_t>(width * texel);
    desc.slice_pitch = static_cast<uint32_t>(bytes);
    desc.dims = height > 1 ? 2 : 1;
    auto desc_va_or = RetryTransient(device_.faults(), [&] {
      return device_.vm().AllocGlobal(sizeof(desc));
    });
    if (!desc_va_or.ok())
      return fail(desc_va_or.status(), CL_MEM_OBJECT_ALLOCATION_FAILURE);
    uint64_t desc_va = *desc_va_or;
    auto dp = device_.vm().Resolve(desc_va, sizeof(desc));
    if (!dp.ok()) {
      (void)device_.vm().FreeGlobal(desc_va);
      return fail(dp.status(), CL_OUT_OF_RESOURCES);
    }
    std::memcpy(*dp, &desc, sizeof(desc));
    if (host_ptr != nullptr) {
      Status st = CopyIn(data_va, host_ptr, bytes);
      if (!st.ok()) {
        (void)device_.vm().FreeGlobal(desc_va);
        return fail(std::move(st), CL_OUT_OF_RESOURCES);
      }
    }
    uint64_t id = next_id_++;
    ImageRec rec;
    rec.desc_va = desc_va;
    rec.data_va = data_va;
    rec.owns_data = owns;
    rec.width = width;
    rec.height = height;
    rec.format = format;
    rec.byte_size = bytes;
    images_[id] = rec;
    return ClMem{id};
  }

  Device& device_;
  /// Environment-driven trace session; owns the recorder wired into
  /// device_ when BRIDGECL_TRACE / BRIDGECL_TRACE_SUMMARY is set.
  std::unique_ptr<trace::TraceSession> auto_trace_;
  uint64_t next_id_ = 1;
  double build_time_us_ = 0;
  std::unordered_map<uint64_t, BufferRec> buffers_;
  std::unordered_map<uint64_t, ImageRec> images_;
  std::unordered_map<uint64_t, ProgramRec> programs_;
  std::unordered_map<uint64_t, KernelRec> kernels_;
  /// Queue/stream/event bookkeeping + the dual-engine timing placement;
  /// declared after device_ and auto_trace_ (construction order).
  sched::Scheduler sched_;
};

}  // namespace

std::unique_ptr<OpenClApi> CreateNativeClApi(Device& device) {
  return std::make_unique<NativeClApi>(device);
}

}  // namespace bridgecl::mocl
