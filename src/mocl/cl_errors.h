// OpenCL 1.2 runtime error codes (the numeric values of Khronos cl.h),
// plus the helpers that attach them to Status results crossing the
// OpenClApi boundary. Status::api_code() carries the spec code: negative
// values are CL codes, positive values are cudaError codes, so a code
// annotated by an inner CUDA layer is recognizably foreign and the
// cl2cu wrapper re-maps it (docs/ROBUSTNESS.md has the full tables).
#pragma once

#include "support/status.h"

namespace bridgecl::mocl {

// Spec names and values verbatim from CL/cl.h (OpenCL 1.2).
inline constexpr int CL_SUCCESS = 0;
inline constexpr int CL_DEVICE_NOT_AVAILABLE = -2;
inline constexpr int CL_MEM_OBJECT_ALLOCATION_FAILURE = -4;
inline constexpr int CL_OUT_OF_RESOURCES = -5;
inline constexpr int CL_OUT_OF_HOST_MEMORY = -6;
inline constexpr int CL_BUILD_PROGRAM_FAILURE = -11;
inline constexpr int CL_INVALID_VALUE = -30;
inline constexpr int CL_INVALID_DEVICE = -33;
inline constexpr int CL_INVALID_COMMAND_QUEUE = -36;
inline constexpr int CL_INVALID_MEM_OBJECT = -38;
inline constexpr int CL_INVALID_IMAGE_SIZE = -40;
inline constexpr int CL_INVALID_SAMPLER = -41;
inline constexpr int CL_INVALID_PROGRAM = -44;
inline constexpr int CL_INVALID_PROGRAM_EXECUTABLE = -45;
inline constexpr int CL_INVALID_KERNEL_NAME = -46;
inline constexpr int CL_INVALID_KERNEL = -48;
inline constexpr int CL_INVALID_ARG_INDEX = -49;
inline constexpr int CL_INVALID_ARG_VALUE = -50;
inline constexpr int CL_INVALID_ARG_SIZE = -51;
inline constexpr int CL_INVALID_KERNEL_ARGS = -52;
inline constexpr int CL_INVALID_WORK_DIMENSION = -53;
inline constexpr int CL_INVALID_WORK_GROUP_SIZE = -54;
inline constexpr int CL_INVALID_WORK_ITEM_SIZE = -55;
inline constexpr int CL_INVALID_EVENT = -58;
inline constexpr int CL_INVALID_OPERATION = -59;
inline constexpr int CL_INVALID_BUFFER_SIZE = -61;
inline constexpr int CL_INVALID_DEVICE_PARTITION_COUNT = -68;

/// Spec identifier for a CL error code ("CL_INVALID_MEM_OBJECT"), or
/// "CL_UNKNOWN_ERROR(<n>)"-style text for values outside the table.
const char* ClErrorName(int code);

/// True when `code` is a CL api_code (CL codes are <= 0, CUDA codes > 0).
inline bool IsClCode(int code) { return code < 0; }

/// Attach `code` to a failed Status unless an inner CL layer already
/// attached one. A positive (CUDA) annotation is replaced: codes must be
/// re-expressed in the vocabulary of the API that returns them.
inline Status AsCl(Status st, int code) {
  if (!st.ok() && !IsClCode(st.api_code())) st.set_api_code(code);
  return st;
}

template <typename T>
StatusOr<T> AsCl(StatusOr<T> v, int code) {
  if (v.ok()) return v;
  return AsCl(v.status(), code);
}

/// Default CL code for a Status that crossed no annotated boundary —
/// the per-StatusCode half of the mapping table. Entry points pass a
/// `fallback` describing their operation class (e.g. an allocation site
/// passes CL_MEM_OBJECT_ALLOCATION_FAILURE for kResourceExhausted).
int ClCodeFor(const Status& st, int fallback);

}  // namespace bridgecl::mocl
