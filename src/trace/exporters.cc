#include "trace/exporters.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <tuple>

#include "support/strings.h"

namespace bridgecl::trace {
namespace {

/// JSON string escaping for event names (kernel names are identifiers,
/// but diagnostics must never produce invalid JSON).
std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          out += StrFormat("\\u%04x", c);
        else
          out += c;
    }
  }
  return out;
}

/// Fixed-precision microseconds: deterministic across runs and platforms
/// (never scientific notation, which the trace viewers reject).
std::string Us(double v) { return StrFormat("%.4f", v); }

/// Direct-children durations, summed per parent in one pass.
std::vector<double> ChildTimePerEvent(const std::vector<TraceEvent>& events) {
  std::vector<double> child_us(events.size(), 0.0);
  for (const TraceEvent& e : events)
    if (e.parent >= 0) child_us[static_cast<size_t>(e.parent)] += e.duration_us();
  return child_us;
}

bool IsWrapperLayer(const char* layer) {
  std::string_view l = layer;
  return l == "cl2cu" || l == "cu2cl";
}

}  // namespace

std::string ChromeTraceJson(const TraceRecorder& recorder) {
  const auto& events = recorder.events();
  std::string out;
  out.reserve(events.size() * 200 + 64);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    std::string name = e.name;
    if (!e.kernel.empty()) name += "(" + e.kernel + ")";
    // tid maps lanes to rows: 1 = host API spans, 2 = copy engine,
    // 3 = compute engine — so chrome://tracing shows engine overlap as
    // visually parallel tracks (lane-0 traces stay byte-identical to the
    // pre-scheduler exporter).
    out += StrFormat(
        "{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"name\":\"%s\",\"cat\":\"%s,%s\","
        "\"ts\":%s,\"dur\":%s,\"args\":{\"seq\":%zu,\"depth\":%d,"
        "\"parent\":%lld,\"failed\":%s",
        e.lane + 1, JsonEscape(name).c_str(), e.layer, TraceKindName(e.kind),
        Us(e.begin_us).c_str(), Us(e.duration_us()).c_str(), i, e.depth,
        static_cast<long long>(e.parent), e.failed ? "true" : "false");
    if (e.stream != 0)
      out += StrFormat(",\"stream\":%llu",
                       static_cast<unsigned long long>(e.stream));
    if (e.bytes != 0)
      out += StrFormat(",\"bytes\":%llu",
                       static_cast<unsigned long long>(e.bytes));
    if (e.kind == TraceKind::kKernelLaunch && !e.kernel.empty()) {
      out += StrFormat(
          ",\"regs_per_thread\":%d,\"occupancy\":%s,\"work_items\":%llu,"
          "\"shared_bank_words\":%llu,\"global_accesses\":%llu,"
          "\"barriers\":%llu",
          e.regs_per_thread, Us(e.occupancy).c_str(),
          static_cast<unsigned long long>(e.delta.work_items_executed),
          static_cast<unsigned long long>(e.delta.shared_bank_words),
          static_cast<unsigned long long>(e.delta.global_accesses),
          static_cast<unsigned long long>(e.delta.barriers));
    }
    if (e.module_cache >= 0)
      out += StrFormat(
          ",\"module_cache\":\"%s\",\"module_cache_hits\":%llu,"
          "\"module_cache_misses\":%llu",
          e.module_cache == 1 ? "hit" : "miss",
          static_cast<unsigned long long>(e.module_cache_hits),
          static_cast<unsigned long long>(e.module_cache_misses));
    if (e.delta.api_calls != 0)
      out += StrFormat(",\"api_calls\":%llu",
                       static_cast<unsigned long long>(e.delta.api_calls));
    out += "}}";
    out += (i + 1 < events.size()) ? ",\n" : "\n";
  }
  out += "]}\n";
  return out;
}

Status WriteChromeTrace(const TraceRecorder& recorder,
                        const std::string& path) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return InternalError("cannot open trace file '" + path + "'");
  f << ChromeTraceJson(recorder);
  f.flush();
  if (!f) return InternalError("failed writing trace file '" + path + "'");
  return OkStatus();
}

std::vector<CommandCost> CommandCosts(const TraceRecorder& recorder) {
  const auto& events = recorder.events();
  std::vector<double> child_us = ChildTimePerEvent(events);
  // std::map keys give a deterministic grouping order before the sort.
  std::map<std::tuple<std::string, std::string, std::string>, CommandCost>
      groups;
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    CommandCost& g = groups[{e.layer, e.name, e.kernel}];
    g.layer = e.layer;
    g.name = e.name;
    g.kernel = e.kernel;
    ++g.count;
    g.inclusive_us += e.duration_us();
    g.exclusive_us += e.duration_us() - child_us[i];
  }
  std::vector<CommandCost> out;
  out.reserve(groups.size());
  for (auto& [key, g] : groups) out.push_back(std::move(g));
  std::stable_sort(out.begin(), out.end(),
                   [](const CommandCost& a, const CommandCost& b) {
                     return a.exclusive_us > b.exclusive_us;
                   });
  return out;
}

std::vector<CommandCost> TopCommands(const TraceRecorder& recorder,
                                     size_t n) {
  std::vector<CommandCost> all = CommandCosts(recorder);
  if (all.size() > n) all.resize(n);
  return all;
}

WrapperOverhead WrapperOverheadOf(const TraceRecorder& recorder) {
  const auto& events = recorder.events();
  WrapperOverhead r;
  if (events.empty()) return r;
  std::vector<double> child_us = ChildTimePerEvent(events);
  std::vector<uint64_t> child_count(events.size(), 0);
  for (const TraceEvent& e : events)
    if (e.parent >= 0) ++child_count[static_cast<size_t>(e.parent)];
  double min_begin = events.front().begin_us;
  double max_end = events.front().end_us;
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    min_begin = std::min(min_begin, e.begin_us);
    max_end = std::max(max_end, e.end_us);
    if (IsWrapperLayer(e.layer)) {
      ++r.wrapper_calls;
      r.wrapper_gap_us += e.duration_us() - child_us[i];
      if (child_count[i] > 1) ++r.fanout_calls;
      // Only top-level wrapper spans count inclusively (a nested wrapper
      // span — e.g. WithEvent delegating to the plain enqueue — is
      // already inside its parent's window).
      bool nested_in_wrapper =
          e.parent >= 0 &&
          IsWrapperLayer(events[static_cast<size_t>(e.parent)].layer);
      if (!nested_in_wrapper) r.wrapper_incl_us += e.duration_us();
    } else if (e.parent >= 0 &&
               IsWrapperLayer(events[static_cast<size_t>(e.parent)].layer)) {
      r.native_us += e.duration_us();
    }
  }
  r.total_us = max_end - min_begin;
  return r;
}

std::string SummaryTable(const TraceRecorder& recorder) {
  const auto& events = recorder.events();
  std::string out;
  out += StrFormat("trace summary: %zu command spans, window %s us\n",
                   events.size(),
                   Us(WrapperOverheadOf(recorder).total_us).c_str());

  // Per-kernel table from *native-layer* kernel-launch spans (under a
  // wrapper binding each launch also has a wrapper span; counting only the
  // native one keeps launches = actual device executions).
  struct KernelRow {
    uint64_t launches = 0;
    double us = 0;
    uint64_t work_items = 0;
    uint64_t bank_words = 0;
    double occupancy = 0;  // last seen
    int regs = 0;
  };
  std::map<std::string, KernelRow> kernels;
  for (const TraceEvent& e : events) {
    if (e.kind != TraceKind::kKernelLaunch || IsWrapperLayer(e.layer) ||
        e.kernel.empty())
      continue;
    KernelRow& row = kernels[e.kernel];
    ++row.launches;
    row.us += e.duration_us();
    row.work_items += e.delta.work_items_executed;
    row.bank_words += e.delta.shared_bank_words;
    row.occupancy = e.occupancy;
    row.regs = e.regs_per_thread;
  }
  if (!kernels.empty()) {
    out += StrFormat("%-24s %8s %12s %12s %12s %6s %5s\n", "kernel",
                     "launches", "time(us)", "work-items", "bank-words",
                     "occ", "regs");
    for (const auto& [name, row] : kernels)
      out += StrFormat(
          "%-24s %8llu %12.1f %12llu %12llu %6.2f %5d\n", name.c_str(),
          static_cast<unsigned long long>(row.launches), row.us,
          static_cast<unsigned long long>(row.work_items),
          static_cast<unsigned long long>(row.bank_words), row.occupancy,
          row.regs);
  }

  out += StrFormat("%-10s %-28s %8s %12s %12s\n", "layer", "command",
                   "count", "excl(us)", "incl(us)");
  for (const CommandCost& c : TopCommands(recorder, 10)) {
    std::string name = c.name;
    if (!c.kernel.empty()) name += "(" + c.kernel + ")";
    out += StrFormat("%-10s %-28s %8llu %12.1f %12.1f\n", c.layer,
                     name.c_str(), static_cast<unsigned long long>(c.count),
                     c.exclusive_us, c.inclusive_us);
  }

  WrapperOverhead w = WrapperOverheadOf(recorder);
  if (w.wrapper_calls > 0) {
    out += StrFormat(
        "wrapper overhead: %llu wrapper calls (%llu fan-out), gap %s us of "
        "%s us total = %.4f%%\n",
        static_cast<unsigned long long>(w.wrapper_calls),
        static_cast<unsigned long long>(w.fanout_calls),
        Us(w.wrapper_gap_us).c_str(), Us(w.total_us).c_str(),
        100.0 * w.fraction());
  }
  return out;
}

}  // namespace bridgecl::trace
