// TraceSession: ownership + activation glue between a TraceRecorder and a
// simgpu::Device.
//
// A session attaches a recorder to a device for its lifetime and, on
// destruction (or an explicit Flush), emits the configured outputs:
//
//   BRIDGECL_TRACE=<file>      write Chrome trace_event JSON to <file>
//   BRIDGECL_TRACE_SUMMARY=1   print the per-kernel summary to stderr
//
// The native API factories (CreateNativeClApi / CreateNativeCudaApi) call
// MaybeAttachFromEnv so *any* program in the repo — tests, benches,
// examples — honors the environment variables with no code changes; the
// programmatic path (bench_util, trace_test) constructs a session
// directly. The device must outlive the session.
#pragma once

#include <memory>
#include <string>

#include "trace/exporters.h"
#include "trace/trace.h"

namespace bridgecl::trace {

struct SessionOptions {
  std::string trace_path;  // non-empty: write Chrome trace JSON on Flush
  bool summary = false;    // print SummaryTable to stderr on Flush
};

/// BRIDGECL_TRACE / BRIDGECL_TRACE_SUMMARY, parsed.
SessionOptions SessionOptionsFromEnv();

class TraceSession {
 public:
  TraceSession(simgpu::Device& device, SessionOptions options);
  ~TraceSession();  // Flush() + detach
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// Attaches a session driven purely by the environment variables.
  /// Returns null when neither variable is set or the device already has
  /// a recorder (the outermost session wins — a wrapper stack shares one
  /// device and must share one trace).
  static std::unique_ptr<TraceSession> MaybeAttachFromEnv(
      simgpu::Device& device);

  TraceRecorder& recorder() { return recorder_; }

  /// Writes/prints the configured outputs. Idempotent on success; the
  /// destructor calls it and ignores failures.
  Status Flush();

 private:
  simgpu::Device& device_;
  SessionOptions options_;
  TraceRecorder recorder_;
  bool flushed_ = false;
};

}  // namespace bridgecl::trace
