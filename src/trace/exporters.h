// Trace consumers: Chrome trace_event JSON (chrome://tracing / Perfetto),
// a human-readable per-kernel summary, per-command cost aggregation, and
// the wrapper-overhead attribution the paper's §6 evaluation rests on.
// All outputs are deterministic: same recorded events → byte-identical
// strings (trace_test round-trips and diffs them).
#pragma once

#include <string>
#include <vector>

#include "support/status.h"
#include "trace/trace.h"

namespace bridgecl::trace {

/// Serializes the recorded events as Chrome trace_event JSON ("X" complete
/// events, timestamps in simulated microseconds). Loadable in
/// chrome://tracing and https://ui.perfetto.dev (docs/OBSERVABILITY.md).
std::string ChromeTraceJson(const TraceRecorder& recorder);

/// ChromeTraceJson written to `path` (overwrites).
Status WriteChromeTrace(const TraceRecorder& recorder,
                        const std::string& path);

/// One row of the per-command cost aggregation: commands grouped by
/// (layer, entry point, kernel), ranked by *exclusive* simulated time
/// (span duration minus the durations of directly nested spans), so
/// wrapper and native layers never double-count the same microseconds.
struct CommandCost {
  const char* layer = "";
  const char* name = "";
  std::string kernel;  // empty unless a kernel-launch command
  uint64_t count = 0;
  double exclusive_us = 0;
  double inclusive_us = 0;
};

/// All command groups, most expensive (exclusive) first; ties broken by
/// layer/name/kernel so the order is deterministic.
std::vector<CommandCost> CommandCosts(const TraceRecorder& recorder);

/// The top `n` of CommandCosts.
std::vector<CommandCost> TopCommands(const TraceRecorder& recorder,
                                     size_t n);

/// §6 wrapper-overhead attribution. For every wrapper-layer span (cl2cu /
/// cu2cl) the *gap* is its duration minus the durations of the spans
/// directly nested under it — simulated time spent in the wrapper body
/// itself rather than in forwarded native work. The paper's claim is that
/// this is ≈ 0; `fraction()` is the number to compare against 1%.
struct WrapperOverhead {
  double wrapper_gap_us = 0;    // Σ per-wrapper-span gaps
  double wrapper_incl_us = 0;   // Σ top-level wrapper span durations
  double native_us = 0;         // Σ native spans nested under wrappers
  double total_us = 0;          // traced window: max end − min begin
  uint64_t wrapper_calls = 0;   // number of wrapper-layer spans
  uint64_t fanout_calls = 0;    // wrapper spans forwarding >1 native call
                                // (the §6.3 deviceQuery pattern)

  double fraction() const {
    return total_us > 0 ? wrapper_gap_us / total_us : 0;
  }
};

WrapperOverhead WrapperOverheadOf(const TraceRecorder& recorder);

/// Human-readable report: per-kernel table (launches, simulated time,
/// work-items, shared bank words, occupancy, regs/thread), the top
/// commands by exclusive time, and — when wrapper spans are present — the
/// wrapper-overhead attribution.
std::string SummaryTable(const TraceRecorder& recorder);

}  // namespace bridgecl::trace
