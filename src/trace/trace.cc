#include "trace/trace.h"

#include <cassert>

namespace bridgecl::trace {

const char* TraceKindName(TraceKind kind) {
  switch (kind) {
    case TraceKind::kApiCall: return "api-call";
    case TraceKind::kH2D: return "h2d";
    case TraceKind::kD2H: return "d2h";
    case TraceKind::kD2D: return "d2d";
    case TraceKind::kKernelLaunch: return "kernel-launch";
    case TraceKind::kDeviceCopy: return "device-copy";
    case TraceKind::kDeviceCompute: return "device-compute";
  }
  return "?";
}

simgpu::DeviceStats StatsDelta(const simgpu::DeviceStats& after,
                               const simgpu::DeviceStats& before) {
  simgpu::DeviceStats d;
  d.kernels_launched = after.kernels_launched - before.kernels_launched;
  d.work_items_executed =
      after.work_items_executed - before.work_items_executed;
  d.global_accesses = after.global_accesses - before.global_accesses;
  d.shared_accesses = after.shared_accesses - before.shared_accesses;
  d.shared_bank_words = after.shared_bank_words - before.shared_bank_words;
  d.constant_accesses = after.constant_accesses - before.constant_accesses;
  d.image_accesses = after.image_accesses - before.image_accesses;
  d.atomics = after.atomics - before.atomics;
  d.barriers = after.barriers - before.barriers;
  d.host_to_device_bytes =
      after.host_to_device_bytes - before.host_to_device_bytes;
  d.device_to_host_bytes =
      after.device_to_host_bytes - before.device_to_host_bytes;
  d.device_to_device_bytes =
      after.device_to_device_bytes - before.device_to_device_bytes;
  d.api_calls = after.api_calls - before.api_calls;
  d.ops_executed = after.ops_executed - before.ops_executed;
  return d;
}

size_t TraceRecorder::OpenSpan(TraceKind kind, const char* layer,
                               const char* name) {
  TraceEvent e;
  e.kind = kind;
  e.layer = layer;
  e.name = name;
  e.begin_us = device_.now_us();
  e.depth = static_cast<int>(open_.size());
  e.parent = open_.empty() ? -1 : static_cast<int64_t>(open_.back());
  size_t index = events_.size();
  events_.push_back(std::move(e));
  open_.push_back(index);
  snapshots_.push_back(device_.stats());
  return index;
}

void TraceRecorder::CloseSpan(size_t index, bool failed) {
  // Spans are RAII-scoped, so closes are strictly LIFO.
  assert(!open_.empty() && open_.back() == index);
  if (open_.empty() || open_.back() != index) return;
  TraceEvent& e = events_[index];
  e.end_us = device_.now_us();
  e.failed = failed;
  e.delta = StatsDelta(device_.stats(), snapshots_.back());
  open_.pop_back();
  snapshots_.pop_back();
}

void TraceRecorder::AppendCompleted(TraceKind kind, const char* layer,
                                    const char* name, double begin_us,
                                    double end_us, int lane, uint64_t stream,
                                    uint64_t bytes, const std::string& kernel,
                                    bool failed) {
  TraceEvent e;
  e.kind = kind;
  e.layer = layer;
  e.name = name;
  e.kernel = kernel;
  e.begin_us = begin_us;
  e.end_us = end_us;
  e.lane = lane;
  e.stream = stream;
  e.bytes = bytes;
  e.failed = failed;
  e.depth = static_cast<int>(open_.size());
  e.parent = open_.empty() ? -1 : static_cast<int64_t>(open_.back());
  events_.push_back(std::move(e));
}

void TraceRecorder::Clear() {
  events_.clear();
  open_.clear();
  snapshots_.clear();
}

std::vector<size_t> TraceRecorder::ChildrenOf(size_t index) const {
  std::vector<size_t> kids;
  for (size_t i = index + 1; i < events_.size(); ++i)
    if (events_[i].parent == static_cast<int64_t>(index)) kids.push_back(i);
  return kids;
}

}  // namespace bridgecl::trace
