#include "trace/session.h"

#include <cstdio>
#include <cstdlib>

namespace bridgecl::trace {

SessionOptions SessionOptionsFromEnv() {
  SessionOptions opts;
  if (const char* path = std::getenv("BRIDGECL_TRACE");
      path != nullptr && path[0] != '\0')
    opts.trace_path = path;
  if (const char* s = std::getenv("BRIDGECL_TRACE_SUMMARY");
      s != nullptr && s[0] != '\0' && s[0] != '0')
    opts.summary = true;
  return opts;
}

TraceSession::TraceSession(simgpu::Device& device, SessionOptions options)
    : device_(device), options_(std::move(options)), recorder_(device) {
  device_.set_tracer(&recorder_);
}

TraceSession::~TraceSession() {
  (void)Flush();
  if (device_.tracer() == &recorder_) device_.set_tracer(nullptr);
}

std::unique_ptr<TraceSession> TraceSession::MaybeAttachFromEnv(
    simgpu::Device& device) {
  if (device.tracer() != nullptr) return nullptr;
  SessionOptions opts = SessionOptionsFromEnv();
  if (opts.trace_path.empty() && !opts.summary) return nullptr;
  return std::make_unique<TraceSession>(device, std::move(opts));
}

Status TraceSession::Flush() {
  if (flushed_) return OkStatus();
  if (!options_.trace_path.empty())
    BRIDGECL_RETURN_IF_ERROR(WriteChromeTrace(recorder_, options_.trace_path));
  if (options_.summary)
    fputs(SummaryTable(recorder_).c_str(), stderr);
  flushed_ = true;
  return OkStatus();
}

}  // namespace bridgecl::trace
