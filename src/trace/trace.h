// Per-command tracing for the simulated runtimes (docs/OBSERVABILITY.md).
//
// A TraceRecorder attaches to one simgpu::Device and records a structured
// TraceEvent per instrumented API command: kind (api-call / h2d / d2h /
// d2d / kernel-launch), begin/end simulated timestamps from
// Device::now_us(), the DeviceStats *delta* accumulated inside the span,
// and the nesting depth + parent index. Wrapper entry points (cl2cu,
// cu2cl) open a parent span before forwarding to the native runtime, so a
// translated app's trace shows wrapper overhead as the gap between a
// wrapper span and the native spans nested under it — the paper's §6
// "wrapper overhead ≈ 0" claim as a queryable number (see
// exporters.h: WrapperOverheadOf).
//
// Recording is strictly read-only with respect to the device: it never
// advances the simulated clock nor touches DeviceStats, so every clock
// value and counter is bit-identical with tracing on or off (trace_test
// proves this). All instrumentation goes through TraceSpan, which is a
// no-op when no recorder is attached.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "simgpu/device.h"

namespace bridgecl::trace {

/// Command taxonomy. Transfers get their own kinds so a trace can be
/// sliced into compute vs. data movement without parsing entry names.
enum class TraceKind {
  kApiCall,        // any host API entry point
  kH2D,            // host → device transfer
  kD2H,            // device → host transfer
  kD2D,            // device → device copy
  kKernelLaunch,   // kernel execution command
  kDeviceCopy,     // scheduler: copy-engine execution window
  kDeviceCompute,  // scheduler: compute-engine execution window
};

const char* TraceKindName(TraceKind kind);

/// One recorded command span. `layer` and `name` are static strings owned
/// by the instrumentation sites ("mocl" / "mcuda" for the native runtimes,
/// "cl2cu" / "cu2cl" for the wrapper libraries).
struct TraceEvent {
  TraceKind kind = TraceKind::kApiCall;
  const char* layer = "";
  const char* name = "";
  std::string kernel;      // kernel-launch spans: the kernel's name
  double begin_us = 0;
  double end_us = 0;
  int depth = 0;           // 0 = top level; wrapper spans enclose depth+1
  int64_t parent = -1;     // index of the enclosing span, -1 at top level
  uint64_t bytes = 0;      // transfer kinds: payload size
  int regs_per_thread = 0; // kernel-launch spans (occupancy input, §6.3)
  double occupancy = 0;    // kernel-launch spans
  bool failed = false;     // the command returned a non-ok Status
  int lane = 0;            // display lane: 0 host, 1 copy engine, 2 compute
  uint64_t stream = 0;     // device spans: owning queue/stream handle
  // Build spans: content-hashed module-cache outcome (-1 n/a, 0 miss,
  // 1 hit) plus the cumulative process-wide counters at close time.
  int8_t module_cache = -1;
  uint64_t module_cache_hits = 0;
  uint64_t module_cache_misses = 0;
  simgpu::DeviceStats delta;  // device counters accumulated inside the span

  double duration_us() const { return end_us - begin_us; }
};

/// Field-wise `after - before`; the per-span counter attribution.
simgpu::DeviceStats StatsDelta(const simgpu::DeviceStats& after,
                               const simgpu::DeviceStats& before);

class TraceRecorder {
 public:
  explicit TraceRecorder(simgpu::Device& device) : device_(device) {}
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  simgpu::Device& device() { return device_; }
  const simgpu::Device& device() const { return device_; }

  /// Opens a span: stamps begin_us, snapshots DeviceStats, assigns
  /// depth/parent from the currently open spans. Returns the event index.
  size_t OpenSpan(TraceKind kind, const char* layer, const char* name);
  /// Closes the span opened last (LIFO; enforced): stamps end_us and the
  /// stats delta.
  void CloseSpan(size_t index, bool failed);

  /// Appends an already-completed span (the scheduler's device-side
  /// execution windows: engine placement is known only after the command
  /// is timed, so these cannot use Open/Close). The span is parented
  /// under the innermost currently-open span — the native API span of
  /// the enqueue — preserving the wrapper-encloses-native invariant.
  /// `lane` is 1 + the engine index; `stream` the owning queue handle.
  void AppendCompleted(TraceKind kind, const char* layer, const char* name,
                       double begin_us, double end_us, int lane,
                       uint64_t stream, uint64_t bytes,
                       const std::string& kernel, bool failed);

  const std::vector<TraceEvent>& events() const { return events_; }
  std::vector<TraceEvent>& mutable_events() { return events_; }
  void Clear();

  /// Direct children of `index` (same-order indices with parent == index).
  std::vector<size_t> ChildrenOf(size_t index) const;

 private:
  simgpu::Device& device_;
  std::vector<TraceEvent> events_;
  std::vector<size_t> open_;                      // indices of open spans
  std::vector<simgpu::DeviceStats> snapshots_;    // parallel to open_
};

/// RAII span used at every instrumented entry point. A null recorder makes
/// every method a no-op, so instrumentation costs one branch when tracing
/// is off. The span closes in the destructor; mark failure with Fail() (or
/// use the Sealed() helper that inspects a Status).
class TraceSpan {
 public:
  TraceSpan(TraceRecorder* recorder, TraceKind kind, const char* layer,
            const char* name)
      : recorder_(recorder) {
    if (recorder_ != nullptr) index_ = recorder_->OpenSpan(kind, layer, name);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
    if (recorder_ != nullptr) recorder_->CloseSpan(index_, failed_);
  }

  bool active() const { return recorder_ != nullptr; }

  /// Transfer spans: record the payload size.
  void SetBytes(uint64_t bytes) {
    if (recorder_ != nullptr)
      recorder_->mutable_events()[index_].bytes = bytes;
  }
  /// Kernel-launch spans: name + occupancy inputs/outputs.
  void SetKernel(std::string_view kernel, int regs_per_thread,
                 double occupancy) {
    if (recorder_ == nullptr) return;
    TraceEvent& e = recorder_->mutable_events()[index_];
    e.kernel.assign(kernel);
    e.regs_per_thread = regs_per_thread;
    e.occupancy = occupancy;
  }
  /// Build spans: whether the module cache satisfied this compile, plus
  /// the cumulative hit/miss counters (docs/PERFORMANCE.md).
  void SetModuleCache(bool hit, uint64_t hits, uint64_t misses) {
    if (recorder_ == nullptr) return;
    TraceEvent& e = recorder_->mutable_events()[index_];
    e.module_cache = hit ? 1 : 0;
    e.module_cache_hits = hits;
    e.module_cache_misses = misses;
  }
  void Fail() { failed_ = true; }
  /// Pass-through status observer: `return span.Sealed(SomeCall());`.
  Status Sealed(Status st) {
    if (!st.ok()) failed_ = true;
    return st;
  }
  template <typename T>
  StatusOr<T> Sealed(StatusOr<T> v) {
    if (!v.ok()) failed_ = true;
    return v;
  }

 private:
  TraceRecorder* recorder_;
  size_t index_ = 0;
  bool failed_ = false;
};

}  // namespace bridgecl::trace
