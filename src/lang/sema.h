// Semantic analysis: name resolution, struct layout, expression typing,
// swizzle resolution, CUDA pointer address-space inference (§3.6), and the
// per-kernel register estimate that feeds the occupancy model (§6.3).
//
// Sema is deliberately permissive where C would be strict (implicit
// conversions are applied silently); it is strict about the things the
// translator and interpreter rely on: every DeclRef resolves, every
// expression gets a type, every struct gets a layout.
#pragma once

#include "lang/ast.h"
#include "lang/dialect.h"
#include "support/source_location.h"
#include "support/status.h"

namespace bridgecl::lang {

struct SemaOptions {
  Dialect dialect = Dialect::kOpenCL;
};

/// Analyze and annotate `tu` in place.
Status Analyze(TranslationUnit& tu, const SemaOptions& opts,
               DiagnosticEngine& diags);

/// Resolve a swizzle spelling against a vector width: "x","xy","lo","hi",
/// "even","odd","s0".."sF"/"S0".."SF" sequences. Returns component indices
/// or empty if `member` is not a valid swizzle for that width.
std::vector<int> ResolveSwizzle(const std::string& member, int width);

/// Usual-arithmetic-conversions result of combining two types (vectors
/// broadcast scalars; ranks follow C). Exposed for tests and the rewriters.
Type::Ptr ArithmeticResultType(const Type::Ptr& a, const Type::Ptr& b);

}  // namespace bridgecl::lang
