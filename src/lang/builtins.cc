#include "lang/builtins.h"

#include <unordered_map>

#include "support/strings.h"

namespace bridgecl::lang {
namespace {

struct Entry {
  BuiltinClass cls;
  bool ocl;
  bool cuda;
  bool hw;  // CUDA hardware-specific, untranslatable to OpenCL
};

const std::unordered_map<std::string, Entry>& Table() {
  static const std::unordered_map<std::string, Entry> kTable = {
      // ---- work-item functions / variables ----
      {"get_global_id", {BuiltinClass::kWorkItem, true, false, false}},
      {"get_local_id", {BuiltinClass::kWorkItem, true, false, false}},
      {"get_group_id", {BuiltinClass::kWorkItem, true, false, false}},
      {"get_global_size", {BuiltinClass::kWorkItem, true, false, false}},
      {"get_local_size", {BuiltinClass::kWorkItem, true, false, false}},
      {"get_num_groups", {BuiltinClass::kWorkItem, true, false, false}},
      {"get_work_dim", {BuiltinClass::kWorkItem, true, false, false}},
      {"get_global_offset", {BuiltinClass::kWorkItem, true, false, false}},

      // ---- synchronization ----
      {"barrier", {BuiltinClass::kSync, true, false, false}},
      {"mem_fence", {BuiltinClass::kSync, true, false, false}},
      {"read_mem_fence", {BuiltinClass::kSync, true, false, false}},
      {"write_mem_fence", {BuiltinClass::kSync, true, false, false}},
      {"__syncthreads", {BuiltinClass::kSync, false, true, false}},
      {"__threadfence", {BuiltinClass::kSync, false, true, false}},
      {"__threadfence_block", {BuiltinClass::kSync, false, true, false}},

      // ---- math (overloaded by argument type in both models) ----
      {"sqrt", {BuiltinClass::kMath, true, true, false}},
      {"rsqrt", {BuiltinClass::kMath, true, true, false}},
      {"cbrt", {BuiltinClass::kMath, true, true, false}},
      {"exp", {BuiltinClass::kMath, true, true, false}},
      {"exp2", {BuiltinClass::kMath, true, true, false}},
      {"log", {BuiltinClass::kMath, true, true, false}},
      {"log2", {BuiltinClass::kMath, true, true, false}},
      {"log10", {BuiltinClass::kMath, true, true, false}},
      {"sin", {BuiltinClass::kMath, true, true, false}},
      {"cos", {BuiltinClass::kMath, true, true, false}},
      {"tan", {BuiltinClass::kMath, true, true, false}},
      {"asin", {BuiltinClass::kMath, true, true, false}},
      {"acos", {BuiltinClass::kMath, true, true, false}},
      {"atan", {BuiltinClass::kMath, true, true, false}},
      {"atan2", {BuiltinClass::kMath, true, true, false}},
      {"sinh", {BuiltinClass::kMath, true, true, false}},
      {"cosh", {BuiltinClass::kMath, true, true, false}},
      {"tanh", {BuiltinClass::kMath, true, true, false}},
      {"fabs", {BuiltinClass::kMath, true, true, false}},
      {"floor", {BuiltinClass::kMath, true, true, false}},
      {"ceil", {BuiltinClass::kMath, true, true, false}},
      {"trunc", {BuiltinClass::kMath, true, true, false}},
      {"round", {BuiltinClass::kMath, true, true, false}},
      {"fmin", {BuiltinClass::kMath, true, true, false}},
      {"fmax", {BuiltinClass::kMath, true, true, false}},
      {"fmod", {BuiltinClass::kMath, true, true, false}},
      {"pow", {BuiltinClass::kMath, true, true, false}},
      {"fma", {BuiltinClass::kMath, true, true, false}},
      {"mad", {BuiltinClass::kMath, true, false, false}},
      {"native_sin", {BuiltinClass::kMath, true, false, false}},
      {"native_cos", {BuiltinClass::kMath, true, false, false}},
      {"native_exp", {BuiltinClass::kMath, true, false, false}},
      {"native_log", {BuiltinClass::kMath, true, false, false}},
      {"native_sqrt", {BuiltinClass::kMath, true, false, false}},
      {"native_rsqrt", {BuiltinClass::kMath, true, false, false}},
      {"native_divide", {BuiltinClass::kMath, true, false, false}},
      {"half_sqrt", {BuiltinClass::kMath, true, false, false}},
      // CUDA single-precision spellings.
      {"sqrtf", {BuiltinClass::kMath, false, true, false}},
      {"rsqrtf", {BuiltinClass::kMath, false, true, false}},
      {"expf", {BuiltinClass::kMath, false, true, false}},
      {"exp2f", {BuiltinClass::kMath, false, true, false}},
      {"logf", {BuiltinClass::kMath, false, true, false}},
      {"log2f", {BuiltinClass::kMath, false, true, false}},
      {"log10f", {BuiltinClass::kMath, false, true, false}},
      {"sinf", {BuiltinClass::kMath, false, true, false}},
      {"cosf", {BuiltinClass::kMath, false, true, false}},
      {"tanf", {BuiltinClass::kMath, false, true, false}},
      {"asinf", {BuiltinClass::kMath, false, true, false}},
      {"acosf", {BuiltinClass::kMath, false, true, false}},
      {"atanf", {BuiltinClass::kMath, false, true, false}},
      {"atan2f", {BuiltinClass::kMath, false, true, false}},
      {"fabsf", {BuiltinClass::kMath, false, true, false}},
      {"floorf", {BuiltinClass::kMath, false, true, false}},
      {"ceilf", {BuiltinClass::kMath, false, true, false}},
      {"fminf", {BuiltinClass::kMath, false, true, false}},
      {"fmaxf", {BuiltinClass::kMath, false, true, false}},
      {"fmodf", {BuiltinClass::kMath, false, true, false}},
      {"powf", {BuiltinClass::kMath, false, true, false}},
      {"fmaf", {BuiltinClass::kMath, false, true, false}},
      {"__expf", {BuiltinClass::kMath, false, true, false}},
      {"__logf", {BuiltinClass::kMath, false, true, false}},
      {"__sinf", {BuiltinClass::kMath, false, true, false}},
      {"__cosf", {BuiltinClass::kMath, false, true, false}},
      {"__fdividef", {BuiltinClass::kMath, false, true, false}},

      // ---- integer ops ----
      {"min", {BuiltinClass::kIntOps, true, true, false}},
      {"max", {BuiltinClass::kIntOps, true, true, false}},
      {"abs", {BuiltinClass::kIntOps, true, true, false}},
      {"clamp", {BuiltinClass::kIntOps, true, false, false}},
      {"mix", {BuiltinClass::kIntOps, true, false, false}},
      {"select", {BuiltinClass::kIntOps, true, false, false}},
      {"mul24", {BuiltinClass::kIntOps, true, false, false}},
      {"__mul24", {BuiltinClass::kIntOps, false, true, false}},
      {"__popc", {BuiltinClass::kIntOps, false, true, false}},
      {"__clz", {BuiltinClass::kIntOps, false, true, false}},
      {"popcount", {BuiltinClass::kIntOps, true, false, false}},
      {"clz", {BuiltinClass::kIntOps, true, false, false}},

      // ---- atomics (note §3.7: inc/dec semantics differ) ----
      {"atomic_add", {BuiltinClass::kAtomic, true, false, false}},
      {"atomic_sub", {BuiltinClass::kAtomic, true, false, false}},
      {"atomic_inc", {BuiltinClass::kAtomic, true, false, false}},
      {"atomic_dec", {BuiltinClass::kAtomic, true, false, false}},
      {"atomic_xchg", {BuiltinClass::kAtomic, true, false, false}},
      {"atomic_cmpxchg", {BuiltinClass::kAtomic, true, false, false}},
      {"atomic_min", {BuiltinClass::kAtomic, true, false, false}},
      {"atomic_max", {BuiltinClass::kAtomic, true, false, false}},
      {"atomic_and", {BuiltinClass::kAtomic, true, false, false}},
      {"atomic_or", {BuiltinClass::kAtomic, true, false, false}},
      {"atomic_xor", {BuiltinClass::kAtomic, true, false, false}},
      {"atom_add", {BuiltinClass::kAtomic, true, false, false}},
      {"atom_inc", {BuiltinClass::kAtomic, true, false, false}},
      {"atomicAdd", {BuiltinClass::kAtomic, false, true, false}},
      {"atomicSub", {BuiltinClass::kAtomic, false, true, false}},
      {"atomicInc", {BuiltinClass::kAtomic, false, true, false}},
      {"atomicDec", {BuiltinClass::kAtomic, false, true, false}},
      {"atomicExch", {BuiltinClass::kAtomic, false, true, false}},
      {"atomicCAS", {BuiltinClass::kAtomic, false, true, false}},
      {"atomicMin", {BuiltinClass::kAtomic, false, true, false}},
      {"atomicMax", {BuiltinClass::kAtomic, false, true, false}},
      {"atomicAnd", {BuiltinClass::kAtomic, false, true, false}},
      {"atomicOr", {BuiltinClass::kAtomic, false, true, false}},
      {"atomicXor", {BuiltinClass::kAtomic, false, true, false}},

      // ---- images / textures (§5) ----
      {"read_imagef", {BuiltinClass::kImage, true, false, false}},
      {"read_imagei", {BuiltinClass::kImage, true, false, false}},
      {"read_imageui", {BuiltinClass::kImage, true, false, false}},
      {"write_imagef", {BuiltinClass::kImage, true, false, false}},
      {"write_imagei", {BuiltinClass::kImage, true, false, false}},
      {"write_imageui", {BuiltinClass::kImage, true, false, false}},
      {"get_image_width", {BuiltinClass::kImage, true, false, false}},
      {"get_image_height", {BuiltinClass::kImage, true, false, false}},
      {"tex1Dfetch", {BuiltinClass::kImage, false, true, false}},
      {"tex1D", {BuiltinClass::kImage, false, true, false}},
      {"tex2D", {BuiltinClass::kImage, false, true, false}},
      {"tex3D", {BuiltinClass::kImage, false, true, false}},

      // ---- warp-level / hardware-specific CUDA built-ins (§3.7) ----
      {"__shfl", {BuiltinClass::kWarp, false, true, true}},
      {"__shfl_up", {BuiltinClass::kWarp, false, true, true}},
      {"__shfl_down", {BuiltinClass::kWarp, false, true, true}},
      {"__shfl_xor", {BuiltinClass::kWarp, false, true, true}},
      {"__all", {BuiltinClass::kWarp, false, true, true}},
      {"__any", {BuiltinClass::kWarp, false, true, true}},
      {"__ballot", {BuiltinClass::kWarp, false, true, true}},
      {"clock", {BuiltinClass::kClock, false, true, true}},
      {"clock64", {BuiltinClass::kClock, false, true, true}},
      {"assert", {BuiltinClass::kAssert, false, true, true}},
      {"printf", {BuiltinClass::kAssert, false, true, true}},
      {"__prof_trigger", {BuiltinClass::kClock, false, true, true}},
  };
  return kTable;
}

bool IsScalarTypeName(const std::string& n) {
  static const char* kNames[] = {"char", "uchar", "short", "ushort", "int",
                                 "uint", "long", "ulong", "float", "double"};
  for (const char* s : kNames)
    if (n == s) return true;
  return false;
}

}  // namespace

std::optional<BuiltinInfo> FindBuiltinFunction(const std::string& name,
                                               Dialect dialect) {
  // "__oc2cu_<fn>" are device-side functions provided by the OpenCL→CUDA
  // wrapper library (§5: read_image*/write_image* etc. are implemented as
  // CUDA device wrappers over CLImage objects). They expose the OpenCL
  // builtin's semantics under a CUDA-legal spelling.
  if (dialect == Dialect::kCUDA && StartsWith(name, "__oc2cu_")) {
    auto inner = FindBuiltinFunction(name.substr(8), Dialect::kOpenCL);
    if (inner.has_value()) {
      inner->name = name;
      inner->in_cuda = true;
      return inner;
    }
    return std::nullopt;
  }
  const auto& table = Table();
  auto fill = [&](const Entry& e) -> std::optional<BuiltinInfo> {
    return BuiltinInfo{name, e.cls, e.ocl, e.cuda, e.hw};
  };
  if (auto it = table.find(name); it != table.end()) {
    const Entry& e = it->second;
    if ((dialect == Dialect::kOpenCL && e.ocl) ||
        (dialect == Dialect::kCUDA && e.cuda))
      return fill(e);
    return std::nullopt;
  }
  // Generic families.
  ScalarKind k;
  int w;
  if (dialect == Dialect::kCUDA && StartsWith(name, "make_") &&
      ParseVectorTypeName(name.substr(5), &k, &w)) {
    return fill({BuiltinClass::kVector, false, true, false});
  }
  if (dialect == Dialect::kOpenCL && StartsWith(name, "convert_") &&
      (ParseVectorTypeName(name.substr(8), &k, &w) ||
       IsScalarTypeName(name.substr(8)))) {
    return fill({BuiltinClass::kVector, true, false, false});
  }
  if (dialect == Dialect::kOpenCL && StartsWith(name, "as_")) {
    std::string rest = name.substr(3);
    if (ParseVectorTypeName(rest, &k, &w) || IsScalarTypeName(rest))
      return fill({BuiltinClass::kVector, true, false, false});
  }
  if (dialect == Dialect::kOpenCL &&
      (StartsWith(name, "vload") || StartsWith(name, "vstore"))) {
    return fill({BuiltinClass::kVector, true, false, false});
  }
  return std::nullopt;
}

Type::Ptr BuiltinVariableType(const std::string& name, Dialect dialect) {
  if (dialect != Dialect::kCUDA) return nullptr;
  if (name == "threadIdx" || name == "blockIdx" || name == "blockDim" ||
      name == "gridDim")
    return Type::Vector(ScalarKind::kUInt, 3);
  if (name == "warpSize") return Type::IntTy();
  return nullptr;
}

Type::Ptr BuiltinResultType(const std::string& raw_name, Dialect dialect,
                            const std::vector<Type::Ptr>& args) {
  // Wrapper-library spellings type like the OpenCL builtin they wrap.
  if (dialect == Dialect::kCUDA && StartsWith(raw_name, "__oc2cu_"))
    return BuiltinResultType(raw_name.substr(8), Dialect::kOpenCL, args);
  const std::string& name = raw_name;
  std::optional<BuiltinInfo> info = FindBuiltinFunction(name, dialect);
  if (!info.has_value()) return Type::IntTy();
  auto arg0 = [&]() -> Type::Ptr {
    return !args.empty() && args[0] ? args[0] : Type::FloatTy();
  };
  switch (info->cls) {
    case BuiltinClass::kWorkItem:
      return dialect == Dialect::kOpenCL ? Type::SizeTy() : Type::UIntTy();
    case BuiltinClass::kSync:
      return Type::VoidTy();
    case BuiltinClass::kMath: {
      // CUDA *f spellings are float; otherwise follow the argument.
      if (dialect == Dialect::kCUDA &&
          (name.back() == 'f' || StartsWith(name, "__")))
        return Type::FloatTy();
      Type::Ptr a = arg0();
      if (a->is_vector() || a->is_float()) return a;
      return Type::Scalar(ScalarKind::kDouble);
    }
    case BuiltinClass::kIntOps:
      return arg0();
    case BuiltinClass::kAtomic: {
      // Atomics return the old value: element type of the pointer arg.
      if (!args.empty() && args[0] && args[0]->is_pointer())
        return args[0]->pointee();
      return Type::IntTy();
    }
    case BuiltinClass::kImage: {
      if (StartsWith(name, "read_imagef")) return Type::Vector(ScalarKind::kFloat, 4);
      if (StartsWith(name, "read_imagei")) return Type::Vector(ScalarKind::kInt, 4);
      if (StartsWith(name, "read_imageui")) return Type::Vector(ScalarKind::kUInt, 4);
      if (StartsWith(name, "write_image")) return Type::VoidTy();
      if (StartsWith(name, "get_image")) return Type::IntTy();
      if (StartsWith(name, "tex")) {
        // Result is the texture's texel type; sema refines using the bound
        // texture reference. float4-by-default keeps typing sound.
        if (!args.empty() && args[0] && args[0]->is_texture()) {
          if (args[0]->vector_width() == 1)
            return Type::Scalar(args[0]->scalar_kind());
          return Type::Vector(args[0]->scalar_kind(), args[0]->vector_width());
        }
        return Type::FloatTy();
      }
      return Type::IntTy();
    }
    case BuiltinClass::kVector: {
      ScalarKind k;
      int w;
      if (StartsWith(name, "make_") &&
          ParseVectorTypeName(name.substr(5), &k, &w))
        return Type::Vector(k, w);
      if (StartsWith(name, "convert_")) {
        std::string rest = name.substr(8);
        if (ParseVectorTypeName(rest, &k, &w)) return Type::Vector(k, w);
      }
      if (StartsWith(name, "as_")) {
        std::string rest = name.substr(3);
        if (ParseVectorTypeName(rest, &k, &w)) return Type::Vector(k, w);
      }
      return arg0();
    }
    case BuiltinClass::kWarp:
      return name == "__ballot" ? Type::UIntTy()
             : name[2] == 's'   ? arg0()  // __shfl*
                                : Type::IntTy();
    case BuiltinClass::kClock:
      return name == "clock64" ? Type::Scalar(ScalarKind::kLongLong)
                               : Type::IntTy();
    case BuiltinClass::kAssert:
      return Type::VoidTy();
    case BuiltinClass::kOther:
      return Type::IntTy();
  }
  return Type::IntTy();
}

}  // namespace bridgecl::lang
