// Type system for the BridgeCL kernel language: a C dialect rich enough to
// express both OpenCL C kernels and CUDA device code, including the
// features whose translation the paper studies -- vector types of widths
// 1/2/3/4/8/16, address-space-qualified pointers, images/samplers and
// texture references, and (CUDA-only) reference types.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace bridgecl::lang {

struct StructDecl;  // ast.h

/// Scalar element kinds. `kLongLong` is CUDA-only (the paper maps CUDA
/// longlong vectors onto OpenCL long vectors, §3.6); `kSizeT` is kept
/// distinct so printers can round-trip `size_t`.
enum class ScalarKind : uint8_t {
  kVoid,
  kBool,
  kChar,
  kUChar,
  kShort,
  kUShort,
  kInt,
  kUInt,
  kLong,
  kULong,
  kLongLong,
  kULongLong,
  kFloat,
  kDouble,
  kSizeT,
};

bool IsIntegerScalar(ScalarKind k);
bool IsSignedScalar(ScalarKind k);
bool IsFloatScalar(ScalarKind k);
/// Size in bytes on the (LP64) device ABI both models share.
size_t ScalarByteSize(ScalarKind k);
/// Canonical dialect-neutral name ("uint", "longlong", ...).
const char* ScalarName(ScalarKind k);

/// Address spaces as the *device* sees them. `kPrivate` is default.
/// NOTE on pointers (§3.6): in OpenCL the qualifier names the space of the
/// *pointee*; in CUDA it names the space of the pointer variable itself.
/// The AST stores the OpenCL interpretation (pointee space) canonically;
/// the CUDA parser/printer performs the adjustment.
enum class AddressSpace : uint8_t {
  kPrivate,
  kLocal,     // CUDA: shared
  kGlobal,    // CUDA: device
  kConstant,
};

const char* AddressSpaceName(AddressSpace s);

enum class TypeKind : uint8_t {
  kScalar,
  kVector,    // scalar element + width in {1,2,3,4,8,16}
  kPointer,   // pointee type + pointee address space
  kArray,     // element type + constant extent
  kStruct,    // user-defined aggregate
  kImage,     // OpenCL image1d_t / image2d_t / image3d_t (opaque handle)
  kSampler,   // OpenCL sampler_t (opaque handle)
  kTexture,   // CUDA texture reference type (opaque; device-side handle)
  kNamed,     // unresolved name: template parameter (CUDA C++) or typedef
};

/// Immutable structural type. Shared (interned per-parse via TypeFactory
/// below is unnecessary: types are small shared_ptr trees and compared
/// structurally).
class Type {
 public:
  using Ptr = std::shared_ptr<const Type>;

  // -- factories ----------------------------------------------------------
  static Ptr Scalar(ScalarKind k);
  static Ptr Vector(ScalarKind elem, int width);
  static Ptr Pointer(Ptr pointee, AddressSpace pointee_space);
  static Ptr Array(Ptr elem, size_t extent);
  static Ptr Struct(const StructDecl* decl);
  static Ptr Image(int dims);                  // 1, 2, or 3
  static Ptr Sampler();
  /// CUDA `texture<Elem, Dims, ReadMode>` reference type.
  static Ptr Texture(ScalarKind elem, int elem_width, int dims);
  /// Placeholder for a template type parameter or unresolved typedef.
  static Ptr Named(std::string name);

  static Ptr VoidTy() { return Scalar(ScalarKind::kVoid); }
  static Ptr IntTy() { return Scalar(ScalarKind::kInt); }
  static Ptr UIntTy() { return Scalar(ScalarKind::kUInt); }
  static Ptr FloatTy() { return Scalar(ScalarKind::kFloat); }
  static Ptr BoolTy() { return Scalar(ScalarKind::kBool); }
  static Ptr SizeTy() { return Scalar(ScalarKind::kSizeT); }

  // -- observers ----------------------------------------------------------
  TypeKind kind() const { return kind_; }
  bool is_scalar() const { return kind_ == TypeKind::kScalar; }
  bool is_vector() const { return kind_ == TypeKind::kVector; }
  bool is_pointer() const { return kind_ == TypeKind::kPointer; }
  bool is_array() const { return kind_ == TypeKind::kArray; }
  bool is_struct() const { return kind_ == TypeKind::kStruct; }
  bool is_image() const { return kind_ == TypeKind::kImage; }
  bool is_sampler() const { return kind_ == TypeKind::kSampler; }
  bool is_texture() const { return kind_ == TypeKind::kTexture; }
  bool is_named() const { return kind_ == TypeKind::kNamed; }
  bool is_void() const {
    return is_scalar() && scalar_ == ScalarKind::kVoid;
  }
  bool is_integer() const {
    return is_scalar() && IsIntegerScalar(scalar_);
  }
  bool is_float() const { return is_scalar() && IsFloatScalar(scalar_); }
  bool is_arithmetic() const {
    return is_scalar() && scalar_ != ScalarKind::kVoid;
  }

  ScalarKind scalar_kind() const { return scalar_; }  // scalar/vector/texture
  int vector_width() const { return width_; }          // vector/texture
  int image_dims() const { return dims_; }             // image/texture
  const Ptr& pointee() const { return elem_; }         // pointer
  const Ptr& element() const { return elem_; }         // array
  AddressSpace pointee_space() const { return space_; }
  size_t array_extent() const { return extent_; }
  const StructDecl* struct_decl() const { return struct_; }
  const std::string& name() const { return name_; }  // kNamed

  /// Byte size under the shared device ABI. Vectors of width 3 occupy the
  /// space of width 4 (OpenCL rule; CUDA has no native 3-vectors beyond
  /// alignment quirks we normalize away). Opaque handle types are
  /// pointer-sized.
  size_t ByteSize() const;
  size_t Alignment() const;

  /// Dialect-neutral spelling used in diagnostics and tests.
  std::string ToString() const;

  friend bool operator==(const Type& a, const Type& b);
  friend bool operator!=(const Type& a, const Type& b) { return !(a == b); }

 private:
  Type() = default;

  TypeKind kind_ = TypeKind::kScalar;
  ScalarKind scalar_ = ScalarKind::kVoid;
  int width_ = 1;          // vector width
  int dims_ = 0;           // image/texture dimensionality
  Ptr elem_;               // pointee / array element
  AddressSpace space_ = AddressSpace::kPrivate;
  size_t extent_ = 0;      // array extent
  const StructDecl* struct_ = nullptr;
  std::string name_;       // kNamed
};

/// Structural equality on Type::Ptr (null-safe).
bool SameType(const Type::Ptr& a, const Type::Ptr& b);

/// Parse a vector-type spelling ("float4", "uchar16", "longlong2",
/// "double3") into element kind and width. Width 1 spellings ("int1") are
/// CUDA-only one-component vectors. Returns false if `name` is not a
/// vector-type spelling.
bool ParseVectorTypeName(const std::string& name, ScalarKind* elem,
                         int* width);

/// Compose a vector-type spelling in the given dialect-neutral form.
std::string VectorTypeName(ScalarKind elem, int width);

}  // namespace bridgecl::lang
