// Tokenizer for the kernel language. Handles both dialects' punctuation
// (including CUDA's `<<<` / `>>>` launch brackets, which the host-code
// rewriter needs) and a preprocessor-lite pass: comments, object-like
// `#define`, and `#pragma`/`#include` line skipping.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/source_location.h"
#include "support/status.h"

namespace bridgecl::lang {

enum class TokKind : uint8_t {
  kEnd,
  kIdent,
  kIntLit,
  kFloatLit,
  kStringLit,
  kCharLit,
  kPunct,        // operator / punctuation; spelling disambiguates
  kLaunchOpen,   // <<<   (CUDA kernel launch)
  kLaunchClose,  // >>>
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;     // identifier name, literal spelling, punct spelling
  SourceLoc loc;
  uint64_t int_value = 0;
  double float_value = 0;
  bool int_is_unsigned = false;
  bool int_is_long = false;
  bool float_is_float = false;  // 'f' suffix

  bool is(TokKind k) const { return kind == k; }
  bool is_punct(const char* s) const {
    return kind == TokKind::kPunct && text == s;
  }
  bool is_ident(const char* s) const {
    return kind == TokKind::kIdent && text == s;
  }
};

struct LexOptions {
  /// When true, `>>>` is kept as a launch token; otherwise it lexes as
  /// `>>` `>`. Device-code lexing leaves this off; host-code lexing for
  /// the CUDA host rewriter turns it on.
  bool cuda_launch_brackets = false;
};

/// Lex `source` into tokens. Applies the preprocessor-lite pass first:
/// strips // and /**/ comments, expands object-like #define macros
/// (including chained ones), drops #pragma and #include lines, and
/// honors line continuations. Function-like macros are reported as
/// unimplemented (our corpus does not need them).
StatusOr<std::vector<Token>> Lex(const std::string& source,
                                 DiagnosticEngine& diags,
                                 const LexOptions& opts = {});

}  // namespace bridgecl::lang
