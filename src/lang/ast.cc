#include "lang/ast.h"

#include <cassert>

namespace bridgecl::lang {

std::string CallExpr::callee_name() const {
  if (callee && callee->kind == ExprKind::kDeclRef)
    return callee->As<DeclRefExpr>()->name;
  return "";
}

const StructField* StructDecl::FindField(const std::string& n) const {
  for (const StructField& f : fields)
    if (f.name == n) return &f;
  return nullptr;
}

// Referenced from type.cc (layout computed once by sema; see sema.cc).
size_t StructByteSize(const StructDecl* decl) {
  assert(decl != nullptr);
  return decl->byte_size;
}
size_t StructAlignment(const StructDecl* decl) {
  assert(decl != nullptr);
  return decl->alignment;
}

FunctionDecl* TranslationUnit::FindFunction(const std::string& name) {
  for (auto& d : decls)
    if (d->kind == DeclKind::kFunction && d->name == name)
      return d->As<FunctionDecl>();
  return nullptr;
}

const FunctionDecl* TranslationUnit::FindFunction(
    const std::string& name) const {
  for (auto& d : decls)
    if (d->kind == DeclKind::kFunction && d->name == name)
      return d->As<FunctionDecl>();
  return nullptr;
}

std::vector<FunctionDecl*> TranslationUnit::Kernels() {
  std::vector<FunctionDecl*> out;
  for (auto& d : decls) {
    if (d->kind != DeclKind::kFunction) continue;
    auto* f = d->As<FunctionDecl>();
    if (f->quals.is_kernel && f->body) out.push_back(f);
  }
  return out;
}

std::unique_ptr<IntLitExpr> MakeIntLit(uint64_t v) {
  auto e = std::make_unique<IntLitExpr>();
  e->value = v;
  e->spelling = std::to_string(v);
  return e;
}

std::unique_ptr<DeclRefExpr> MakeRef(std::string name) {
  auto e = std::make_unique<DeclRefExpr>();
  e->name = std::move(name);
  return e;
}

std::unique_ptr<CallExpr> MakeCall(std::string callee,
                                   std::vector<ExprPtr> args) {
  auto e = std::make_unique<CallExpr>();
  e->callee = MakeRef(std::move(callee));
  e->args = std::move(args);
  return e;
}

std::unique_ptr<BinaryExpr> MakeBinary(BinaryOp op, ExprPtr l, ExprPtr r) {
  auto e = std::make_unique<BinaryExpr>();
  e->op = op;
  e->lhs = std::move(l);
  e->rhs = std::move(r);
  return e;
}

std::unique_ptr<AssignExpr> MakeAssign(ExprPtr l, ExprPtr r) {
  auto e = std::make_unique<AssignExpr>();
  e->compound = false;
  e->lhs = std::move(l);
  e->rhs = std::move(r);
  return e;
}

std::unique_ptr<MemberExpr> MakeMember(ExprPtr base, std::string member) {
  auto e = std::make_unique<MemberExpr>();
  e->base = std::move(base);
  e->member = std::move(member);
  return e;
}

std::unique_ptr<IndexExpr> MakeIndex(ExprPtr base, ExprPtr index) {
  auto e = std::make_unique<IndexExpr>();
  e->base = std::move(base);
  e->index = std::move(index);
  return e;
}

ExprPtr CloneExpr(const Expr& e) {
  ExprPtr out;
  switch (e.kind) {
    case ExprKind::kIntLit: {
      auto n = std::make_unique<IntLitExpr>();
      *n = *e.As<IntLitExpr>();
      out = std::move(n);
      break;
    }
    case ExprKind::kFloatLit: {
      auto n = std::make_unique<FloatLitExpr>();
      *n = *e.As<FloatLitExpr>();
      out = std::move(n);
      break;
    }
    case ExprKind::kStringLit: {
      auto n = std::make_unique<StringLitExpr>();
      *n = *e.As<StringLitExpr>();
      out = std::move(n);
      break;
    }
    case ExprKind::kDeclRef: {
      auto n = std::make_unique<DeclRefExpr>();
      *n = *e.As<DeclRefExpr>();
      out = std::move(n);
      break;
    }
    case ExprKind::kUnary: {
      const auto* s = e.As<UnaryExpr>();
      auto n = std::make_unique<UnaryExpr>();
      n->op = s->op;
      if (s->operand) n->operand = CloneExpr(*s->operand);
      out = std::move(n);
      break;
    }
    case ExprKind::kBinary: {
      const auto* s = e.As<BinaryExpr>();
      auto n = std::make_unique<BinaryExpr>();
      n->op = s->op;
      if (s->lhs) n->lhs = CloneExpr(*s->lhs);
      if (s->rhs) n->rhs = CloneExpr(*s->rhs);
      out = std::move(n);
      break;
    }
    case ExprKind::kAssign: {
      const auto* s = e.As<AssignExpr>();
      auto n = std::make_unique<AssignExpr>();
      n->op = s->op;
      n->compound = s->compound;
      if (s->lhs) n->lhs = CloneExpr(*s->lhs);
      if (s->rhs) n->rhs = CloneExpr(*s->rhs);
      out = std::move(n);
      break;
    }
    case ExprKind::kConditional: {
      const auto* s = e.As<ConditionalExpr>();
      auto n = std::make_unique<ConditionalExpr>();
      if (s->cond) n->cond = CloneExpr(*s->cond);
      if (s->then_expr) n->then_expr = CloneExpr(*s->then_expr);
      if (s->else_expr) n->else_expr = CloneExpr(*s->else_expr);
      out = std::move(n);
      break;
    }
    case ExprKind::kCall: {
      const auto* s = e.As<CallExpr>();
      auto n = std::make_unique<CallExpr>();
      if (s->callee) n->callee = CloneExpr(*s->callee);
      for (const auto& a : s->args) n->args.push_back(CloneExpr(*a));
      n->type_args = s->type_args;
      out = std::move(n);
      break;
    }
    case ExprKind::kIndex: {
      const auto* s = e.As<IndexExpr>();
      auto n = std::make_unique<IndexExpr>();
      if (s->base) n->base = CloneExpr(*s->base);
      if (s->index) n->index = CloneExpr(*s->index);
      out = std::move(n);
      break;
    }
    case ExprKind::kMember: {
      const auto* s = e.As<MemberExpr>();
      auto n = std::make_unique<MemberExpr>();
      if (s->base) n->base = CloneExpr(*s->base);
      n->member = s->member;
      n->is_arrow = s->is_arrow;
      n->is_swizzle = s->is_swizzle;
      n->swizzle = s->swizzle;
      out = std::move(n);
      break;
    }
    case ExprKind::kCast: {
      const auto* s = e.As<CastExpr>();
      auto n = std::make_unique<CastExpr>();
      n->style = s->style;
      n->target = s->target;
      n->target_spelling = s->target_spelling;
      if (s->operand) n->operand = CloneExpr(*s->operand);
      out = std::move(n);
      break;
    }
    case ExprKind::kParen: {
      const auto* s = e.As<ParenExpr>();
      auto n = std::make_unique<ParenExpr>();
      if (s->inner) n->inner = CloneExpr(*s->inner);
      out = std::move(n);
      break;
    }
    case ExprKind::kInitList: {
      const auto* s = e.As<InitListExpr>();
      auto n = std::make_unique<InitListExpr>();
      for (const auto& a : s->elems) n->elems.push_back(CloneExpr(*a));
      out = std::move(n);
      break;
    }
    case ExprKind::kSizeof: {
      const auto* s = e.As<SizeofExpr>();
      auto n = std::make_unique<SizeofExpr>();
      n->arg_type = s->arg_type;
      n->type_spelling = s->type_spelling;
      if (s->arg_expr) n->arg_expr = CloneExpr(*s->arg_expr);
      out = std::move(n);
      break;
    }
    case ExprKind::kVectorLit: {
      const auto* s = e.As<VectorLitExpr>();
      auto n = std::make_unique<VectorLitExpr>();
      n->vec_type = s->vec_type;
      for (const auto& a : s->elems) n->elems.push_back(CloneExpr(*a));
      out = std::move(n);
      break;
    }
  }
  out->loc = e.loc;
  out->type = e.type;
  return out;
}

std::unique_ptr<VarDecl> CloneVarDecl(const VarDecl& v) {
  auto n = std::make_unique<VarDecl>();
  n->loc = v.loc;
  n->name = v.name;
  n->type = v.type;
  n->quals = v.quals;
  n->is_param = v.is_param;
  n->type_spelling = v.type_spelling;
  n->address_taken = v.address_taken;
  if (v.init) n->init = CloneExpr(*v.init);
  return n;
}

StmtPtr CloneStmt(const Stmt& s) {
  switch (s.kind) {
    case StmtKind::kCompound: {
      const auto* c = s.As<CompoundStmt>();
      auto n = std::make_unique<CompoundStmt>();
      for (const auto& st : c->body) n->body.push_back(CloneStmt(*st));
      n->loc = s.loc;
      return n;
    }
    case StmtKind::kDecl: {
      const auto* c = s.As<DeclStmt>();
      auto n = std::make_unique<DeclStmt>();
      for (const auto& v : c->vars) n->vars.push_back(CloneVarDecl(*v));
      n->loc = s.loc;
      return n;
    }
    case StmtKind::kExpr: {
      const auto* c = s.As<ExprStmt>();
      auto n = std::make_unique<ExprStmt>();
      if (c->expr) n->expr = CloneExpr(*c->expr);
      n->loc = s.loc;
      return n;
    }
    case StmtKind::kIf: {
      const auto* c = s.As<IfStmt>();
      auto n = std::make_unique<IfStmt>();
      if (c->cond) n->cond = CloneExpr(*c->cond);
      if (c->then_stmt) n->then_stmt = CloneStmt(*c->then_stmt);
      if (c->else_stmt) n->else_stmt = CloneStmt(*c->else_stmt);
      n->loc = s.loc;
      return n;
    }
    case StmtKind::kFor: {
      const auto* c = s.As<ForStmt>();
      auto n = std::make_unique<ForStmt>();
      if (c->init) n->init = CloneStmt(*c->init);
      if (c->cond) n->cond = CloneExpr(*c->cond);
      if (c->step) n->step = CloneExpr(*c->step);
      if (c->body) n->body = CloneStmt(*c->body);
      n->loc = s.loc;
      return n;
    }
    case StmtKind::kWhile: {
      const auto* c = s.As<WhileStmt>();
      auto n = std::make_unique<WhileStmt>();
      if (c->cond) n->cond = CloneExpr(*c->cond);
      if (c->body) n->body = CloneStmt(*c->body);
      n->loc = s.loc;
      return n;
    }
    case StmtKind::kDo: {
      const auto* c = s.As<DoStmt>();
      auto n = std::make_unique<DoStmt>();
      if (c->body) n->body = CloneStmt(*c->body);
      if (c->cond) n->cond = CloneExpr(*c->cond);
      n->loc = s.loc;
      return n;
    }
    case StmtKind::kReturn: {
      const auto* c = s.As<ReturnStmt>();
      auto n = std::make_unique<ReturnStmt>();
      if (c->value) n->value = CloneExpr(*c->value);
      n->loc = s.loc;
      return n;
    }
    case StmtKind::kBreak:
      return std::make_unique<BreakStmt>();
    case StmtKind::kContinue:
      return std::make_unique<ContinueStmt>();
    case StmtKind::kEmpty:
      return std::make_unique<EmptyStmt>();
  }
  return nullptr;
}

const char* BinaryOpSpelling(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kRem: return "%";
    case BinaryOp::kShl: return "<<";
    case BinaryOp::kShr: return ">>";
    case BinaryOp::kAnd: return "&";
    case BinaryOp::kOr: return "|";
    case BinaryOp::kXor: return "^";
    case BinaryOp::kLAnd: return "&&";
    case BinaryOp::kLOr: return "||";
    case BinaryOp::kEQ: return "==";
    case BinaryOp::kNE: return "!=";
    case BinaryOp::kLT: return "<";
    case BinaryOp::kGT: return ">";
    case BinaryOp::kLE: return "<=";
    case BinaryOp::kGE: return ">=";
    case BinaryOp::kComma: return ",";
  }
  return "?";
}

const char* UnaryOpSpelling(UnaryOp op) {
  switch (op) {
    case UnaryOp::kPlus: return "+";
    case UnaryOp::kMinus: return "-";
    case UnaryOp::kNot: return "!";
    case UnaryOp::kBitNot: return "~";
    case UnaryOp::kPreInc:
    case UnaryOp::kPostInc: return "++";
    case UnaryOp::kPreDec:
    case UnaryOp::kPostDec: return "--";
    case UnaryOp::kDeref: return "*";
    case UnaryOp::kAddrOf: return "&";
  }
  return "?";
}

}  // namespace bridgecl::lang
