#include "lang/printer.h"

#include <cassert>

#include "support/strings.h"

namespace bridgecl::lang {
namespace {

class Printer {
 public:
  explicit Printer(const PrintOptions& opts) : opts_(opts) {}

  std::string Result() { return std::move(out_); }

  void Emit(const TranslationUnit& tu) {
    for (const auto& d : tu.decls) {
      EmitDecl(*d);
      out_ += "\n";
    }
  }

  void EmitDecl(const Decl& d);
  void EmitStmt(const Stmt& s);
  void EmitExpr(const Expr& e);
  std::string TypeSpelling(const Type::Ptr& t, bool with_space_qual) const;

 private:
  bool IsCL() const { return opts_.dialect == Dialect::kOpenCL; }

  void Line(const std::string& s) {
    Indent();
    out_ += s;
    out_ += "\n";
  }
  void Indent() { out_.append(indent_ * opts_.indent_width, ' '); }

  std::string SpaceQualSpelling(AddressSpace s) const {
    switch (s) {
      case AddressSpace::kPrivate: return "";
      case AddressSpace::kLocal: return IsCL() ? "__local" : "__shared__";
      case AddressSpace::kGlobal: return IsCL() ? "__global" : "__device__";
      case AddressSpace::kConstant:
        return IsCL() ? "__constant" : "__constant__";
    }
    return "";
  }

  std::string ScalarSpelling(ScalarKind k) const {
    switch (k) {
      case ScalarKind::kLongLong: return "long long";
      case ScalarKind::kULongLong: return "unsigned long long";
      case ScalarKind::kUChar: return IsCL() ? "uchar" : "unsigned char";
      case ScalarKind::kUShort: return IsCL() ? "ushort" : "unsigned short";
      case ScalarKind::kUInt: return IsCL() ? "uint" : "unsigned int";
      case ScalarKind::kULong: return IsCL() ? "ulong" : "unsigned long";
      default: return ScalarName(k);
    }
  }

  void EmitVarDecl(const VarDecl& v, bool as_param);
  void EmitFunction(const FunctionDecl& f);
  void EmitStruct(const StructDecl& s);
  void EmitCompound(const CompoundStmt& c);

  PrintOptions opts_;
  std::string out_;
  int indent_ = 0;
};

std::string Printer::TypeSpelling(const Type::Ptr& t,
                                  bool with_space_qual) const {
  if (!t) return "int";
  switch (t->kind()) {
    case TypeKind::kScalar:
      return ScalarSpelling(t->scalar_kind());
    case TypeKind::kVector:
      return VectorTypeName(t->scalar_kind(), t->vector_width());
    case TypeKind::kPointer: {
      std::string out;
      if (IsCL() && with_space_qual &&
          t->pointee_space() != AddressSpace::kPrivate) {
        out += SpaceQualSpelling(t->pointee_space());
        out += " ";
      }
      // Nested pointee never re-emits a space qualifier.
      out += TypeSpelling(t->pointee(), false);
      out += "*";
      return out;
    }
    case TypeKind::kArray:
      // Arrays are printed at the declarator; elsewhere decay to pointer.
      return TypeSpelling(t->element(), false) + "*";
    case TypeKind::kStruct:
      return t->struct_decl() ? t->struct_decl()->name : "struct?";
    case TypeKind::kImage:
      return "image" + std::to_string(t->image_dims()) + "d_t";
    case TypeKind::kSampler:
      return "sampler_t";
    case TypeKind::kTexture:
      return "texture<" +
             (t->vector_width() > 1
                  ? VectorTypeName(t->scalar_kind(), t->vector_width())
                  : std::string(ScalarSpelling(t->scalar_kind()))) +
             ", " + std::to_string(t->image_dims()) + ">";
    case TypeKind::kNamed:
      return t->name();
  }
  return "?";
}

void Printer::EmitVarDecl(const VarDecl& v, bool as_param) {
  // Qualifiers.
  std::string quals;
  if (v.quals.is_extern) quals += "extern ";
  if (v.quals.is_static) quals += "static ";
  if (v.quals.space != AddressSpace::kPrivate) {
    quals += SpaceQualSpelling(v.quals.space);
    quals += " ";
  }
  if (v.quals.read_only && IsCL()) quals += "__read_only ";
  if (v.quals.write_only && IsCL()) quals += "__write_only ";
  if (v.quals.is_const) quals += "const ";
  if (v.quals.is_volatile) quals += "volatile ";

  // Unwrap arrays to find the base type and collect extents.
  Type::Ptr t = v.type;
  std::vector<size_t> extents;
  while (t && t->is_array()) {
    extents.push_back(t->array_extent());
    t = t->element();
  }

  out_ += quals;
  out_ += TypeSpelling(t, /*with_space_qual=*/true);
  out_ += " ";
  if (v.quals.is_restrict && t && t->is_pointer()) {
    out_ += IsCL() ? "restrict " : "__restrict__ ";
  }
  out_ += v.name;
  for (size_t ext : extents) {
    out_ += "[";
    if (ext > 0) out_ += std::to_string(ext);
    out_ += "]";
  }
  if (v.init) {
    out_ += " = ";
    EmitExpr(*v.init);
  }
  (void)as_param;
}

void Printer::EmitStruct(const StructDecl& s) {
  Indent();
  if (s.is_typedef) out_ += "typedef ";
  out_ += "struct";
  if (!s.is_typedef && !s.name.empty()) out_ += " " + s.name;
  out_ += " {\n";
  ++indent_;
  for (const StructField& f : s.fields) {
    Indent();
    Type::Ptr t = f.type;
    std::vector<size_t> extents;
    while (t && t->is_array()) {
      extents.push_back(t->array_extent());
      t = t->element();
    }
    out_ += TypeSpelling(t, true);
    out_ += " " + f.name;
    for (size_t ext : extents) out_ += "[" + std::to_string(ext) + "]";
    out_ += ";\n";
  }
  --indent_;
  Indent();
  out_ += "}";
  if (s.is_typedef) out_ += " " + s.name;
  out_ += ";\n";
}

void Printer::EmitFunction(const FunctionDecl& f) {
  if (!f.template_params.empty()) {
    assert(!IsCL() && "OpenCL output must not contain templates");
    Indent();
    out_ += "template <";
    for (size_t i = 0; i < f.template_params.size(); ++i) {
      if (i) out_ += ", ";
      out_ += "typename " + f.template_params[i].name;
    }
    out_ += ">\n";
  }
  Indent();
  if (f.quals.is_kernel) out_ += IsCL() ? "__kernel " : "__global__ ";
  if (f.quals.is_device && !IsCL()) out_ += "__device__ ";
  out_ += TypeSpelling(f.return_type, false);
  out_ += " " + f.name + "(";
  for (size_t i = 0; i < f.params.size(); ++i) {
    if (i) out_ += ", ";
    EmitVarDecl(*f.params[i], /*as_param=*/true);
    if (i < f.param_is_reference.size() && f.param_is_reference[i]) {
      // References only exist in CUDA output; CU→CL rewrites them away.
      size_t name_pos = out_.rfind(f.params[i]->name);
      if (name_pos != std::string::npos) out_.insert(name_pos, "& ");
    }
  }
  out_ += ")";
  if (!f.body) {
    out_ += ";\n";
    return;
  }
  out_ += " ";
  EmitCompound(*f.body);
}

void Printer::EmitDecl(const Decl& d) {
  switch (d.kind) {
    case DeclKind::kVar:
      Indent();
      EmitVarDecl(*d.As<VarDecl>(), false);
      out_ += ";\n";
      return;
    case DeclKind::kFunction:
      EmitFunction(*d.As<FunctionDecl>());
      return;
    case DeclKind::kStruct:
      EmitStruct(*d.As<StructDecl>());
      return;
    case DeclKind::kTypedef: {
      const auto* td = d.As<TypedefDecl>();
      Line("typedef " + TypeSpelling(td->underlying, true) + " " + td->name +
           ";");
      return;
    }
    case DeclKind::kTextureRef: {
      const auto* t = d.As<TextureRefDecl>();
      std::string elem =
          t->elem_width > 1
              ? VectorTypeName(t->elem, t->elem_width)
              : std::string(ScalarSpelling(t->elem));
      Line("texture<" + elem + ", " + std::to_string(t->dims) +
           ", cudaReadModeElementType> " + t->name + ";");
      return;
    }
    case DeclKind::kParam:
      return;
  }
}

void Printer::EmitCompound(const CompoundStmt& c) {
  out_ += "{\n";
  ++indent_;
  for (const auto& s : c.body) EmitStmt(*s);
  --indent_;
  Indent();
  out_ += "}\n";
}

void Printer::EmitStmt(const Stmt& s) {
  switch (s.kind) {
    case StmtKind::kCompound:
      Indent();
      EmitCompound(*s.As<CompoundStmt>());
      return;
    case StmtKind::kDecl: {
      const auto* d = s.As<DeclStmt>();
      Indent();
      for (size_t i = 0; i < d->vars.size(); ++i) {
        if (i) out_ += ", ";
        if (i == 0) {
          EmitVarDecl(*d->vars[i], false);
        } else {
          // Subsequent declarators share the base type spelling.
          out_ += d->vars[i]->name;
          if (d->vars[i]->init) {
            out_ += " = ";
            EmitExpr(*d->vars[i]->init);
          }
        }
      }
      out_ += ";\n";
      return;
    }
    case StmtKind::kExpr:
      Indent();
      EmitExpr(*s.As<ExprStmt>()->expr);
      out_ += ";\n";
      return;
    case StmtKind::kIf: {
      const auto* i = s.As<IfStmt>();
      Indent();
      out_ += "if (";
      EmitExpr(*i->cond);
      out_ += ") ";
      if (i->then_stmt->kind == StmtKind::kCompound) {
        EmitCompound(*i->then_stmt->As<CompoundStmt>());
      } else {
        out_ += "\n";
        ++indent_;
        EmitStmt(*i->then_stmt);
        --indent_;
      }
      if (i->else_stmt) {
        Indent();
        out_ += "else ";
        if (i->else_stmt->kind == StmtKind::kCompound) {
          EmitCompound(*i->else_stmt->As<CompoundStmt>());
        } else {
          out_ += "\n";
          ++indent_;
          EmitStmt(*i->else_stmt);
          --indent_;
        }
      }
      return;
    }
    case StmtKind::kFor: {
      const auto* f = s.As<ForStmt>();
      Indent();
      out_ += "for (";
      if (f->init) {
        if (f->init->kind == StmtKind::kDecl) {
          const auto* d = f->init->As<DeclStmt>();
          for (size_t i = 0; i < d->vars.size(); ++i) {
            if (i) out_ += ", ";
            if (i == 0) {
              EmitVarDecl(*d->vars[i], false);
            } else {
              out_ += d->vars[i]->name;
              if (d->vars[i]->init) {
                out_ += " = ";
                EmitExpr(*d->vars[i]->init);
              }
            }
          }
        } else if (f->init->kind == StmtKind::kExpr) {
          EmitExpr(*f->init->As<ExprStmt>()->expr);
        }
      }
      out_ += "; ";
      if (f->cond) EmitExpr(*f->cond);
      out_ += "; ";
      if (f->step) EmitExpr(*f->step);
      out_ += ") ";
      if (f->body->kind == StmtKind::kCompound) {
        EmitCompound(*f->body->As<CompoundStmt>());
      } else {
        out_ += "\n";
        ++indent_;
        EmitStmt(*f->body);
        --indent_;
      }
      return;
    }
    case StmtKind::kWhile: {
      const auto* w = s.As<WhileStmt>();
      Indent();
      out_ += "while (";
      EmitExpr(*w->cond);
      out_ += ") ";
      if (w->body->kind == StmtKind::kCompound) {
        EmitCompound(*w->body->As<CompoundStmt>());
      } else {
        out_ += "\n";
        ++indent_;
        EmitStmt(*w->body);
        --indent_;
      }
      return;
    }
    case StmtKind::kDo: {
      const auto* d = s.As<DoStmt>();
      Indent();
      out_ += "do ";
      if (d->body->kind == StmtKind::kCompound) {
        EmitCompound(*d->body->As<CompoundStmt>());
        out_.pop_back();  // drop newline to append while
        out_ += " ";
      } else {
        out_ += "\n";
        ++indent_;
        EmitStmt(*d->body);
        --indent_;
        Indent();
      }
      out_ += "while (";
      EmitExpr(*d->cond);
      out_ += ");\n";
      return;
    }
    case StmtKind::kReturn: {
      const auto* r = s.As<ReturnStmt>();
      Indent();
      out_ += "return";
      if (r->value) {
        out_ += " ";
        EmitExpr(*r->value);
      }
      out_ += ";\n";
      return;
    }
    case StmtKind::kBreak:
      Line("break;");
      return;
    case StmtKind::kContinue:
      Line("continue;");
      return;
    case StmtKind::kEmpty:
      Line(";");
      return;
  }
}

void Printer::EmitExpr(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kIntLit: {
      const auto* i = e.As<IntLitExpr>();
      out_ += i->spelling.empty() ? std::to_string(i->value) : i->spelling;
      return;
    }
    case ExprKind::kFloatLit: {
      const auto* f = e.As<FloatLitExpr>();
      if (!f->spelling.empty()) {
        out_ += f->spelling;
      } else {
        out_ += std::to_string(f->value);
        if (f->is_float) out_ += "f";
      }
      return;
    }
    case ExprKind::kDeclRef:
      out_ += e.As<DeclRefExpr>()->name;
      return;
    case ExprKind::kStringLit:
      out_ += e.As<StringLitExpr>()->spelling;
      return;
    case ExprKind::kUnary: {
      const auto* u = e.As<UnaryExpr>();
      if (u->op == UnaryOp::kPostInc || u->op == UnaryOp::kPostDec) {
        EmitExpr(*u->operand);
        out_ += UnaryOpSpelling(u->op);
      } else {
        out_ += UnaryOpSpelling(u->op);
        EmitExpr(*u->operand);
      }
      return;
    }
    case ExprKind::kBinary: {
      const auto* b = e.As<BinaryExpr>();
      EmitExpr(*b->lhs);
      if (b->op == BinaryOp::kComma) {
        out_ += ", ";
      } else {
        out_ += " ";
        out_ += BinaryOpSpelling(b->op);
        out_ += " ";
      }
      EmitExpr(*b->rhs);
      return;
    }
    case ExprKind::kAssign: {
      const auto* a = e.As<AssignExpr>();
      EmitExpr(*a->lhs);
      out_ += " ";
      if (a->compound) out_ += BinaryOpSpelling(a->op);
      out_ += "= ";
      EmitExpr(*a->rhs);
      return;
    }
    case ExprKind::kConditional: {
      const auto* c = e.As<ConditionalExpr>();
      EmitExpr(*c->cond);
      out_ += " ? ";
      EmitExpr(*c->then_expr);
      out_ += " : ";
      EmitExpr(*c->else_expr);
      return;
    }
    case ExprKind::kCall: {
      const auto* c = e.As<CallExpr>();
      EmitExpr(*c->callee);
      if (!c->type_args.empty()) {
        out_ += "<";
        for (size_t i = 0; i < c->type_args.size(); ++i) {
          if (i) out_ += ", ";
          out_ += TypeSpelling(c->type_args[i], false);
        }
        out_ += ">";
      }
      out_ += "(";
      for (size_t i = 0; i < c->args.size(); ++i) {
        if (i) out_ += ", ";
        EmitExpr(*c->args[i]);
      }
      out_ += ")";
      return;
    }
    case ExprKind::kIndex: {
      const auto* i = e.As<IndexExpr>();
      EmitExpr(*i->base);
      out_ += "[";
      EmitExpr(*i->index);
      out_ += "]";
      return;
    }
    case ExprKind::kMember: {
      const auto* m = e.As<MemberExpr>();
      EmitExpr(*m->base);
      out_ += m->is_arrow ? "->" : ".";
      out_ += m->member;
      return;
    }
    case ExprKind::kCast: {
      const auto* c = e.As<CastExpr>();
      std::string spelled = c->target_spelling.empty()
                                ? TypeSpelling(c->target, false)
                                : c->target_spelling +
                                      (c->target && c->target->is_pointer()
                                           ? "*"
                                           : "");
      // Prefer structural spelling; target_spelling preserves typedef
      // names but may omit pointer decoration, so fall back carefully.
      spelled = TypeSpelling(c->target, false);
      switch (c->style) {
        case CastStyle::kCStyle:
          out_ += "(" + spelled + ")";
          EmitExpr(*c->operand);
          return;
        case CastStyle::kStatic:
          out_ += "static_cast<" + spelled + ">(";
          EmitExpr(*c->operand);
          out_ += ")";
          return;
        case CastStyle::kReinterpret:
          out_ += "reinterpret_cast<" + spelled + ">(";
          EmitExpr(*c->operand);
          out_ += ")";
          return;
        case CastStyle::kConst:
          out_ += "const_cast<" + spelled + ">(";
          EmitExpr(*c->operand);
          out_ += ")";
          return;
      }
      return;
    }
    case ExprKind::kParen: {
      out_ += "(";
      EmitExpr(*e.As<ParenExpr>()->inner);
      out_ += ")";
      return;
    }
    case ExprKind::kInitList: {
      const auto* l = e.As<InitListExpr>();
      out_ += "{";
      for (size_t i = 0; i < l->elems.size(); ++i) {
        if (i) out_ += ", ";
        EmitExpr(*l->elems[i]);
      }
      out_ += "}";
      return;
    }
    case ExprKind::kSizeof: {
      const auto* s = e.As<SizeofExpr>();
      out_ += "sizeof(";
      if (s->arg_type)
        out_ += TypeSpelling(s->arg_type, false);
      else
        EmitExpr(*s->arg_expr);
      out_ += ")";
      return;
    }
    case ExprKind::kVectorLit: {
      const auto* v = e.As<VectorLitExpr>();
      std::string tname = VectorTypeName(v->vec_type->scalar_kind(),
                                         v->vec_type->vector_width());
      if (IsCL()) {
        out_ += "(" + tname + ")(";
      } else {
        out_ += "make_" + tname + "(";
      }
      for (size_t i = 0; i < v->elems.size(); ++i) {
        if (i) out_ += ", ";
        EmitExpr(*v->elems[i]);
      }
      out_ += ")";
      return;
    }
  }
}

}  // namespace

std::string PrintTranslationUnit(const TranslationUnit& tu,
                                 const PrintOptions& opts) {
  Printer p(opts);
  p.Emit(tu);
  return p.Result();
}

std::string PrintDecl(const Decl& d, const PrintOptions& opts) {
  Printer p(opts);
  p.EmitDecl(d);
  return p.Result();
}

std::string PrintStmt(const Stmt& s, const PrintOptions& opts) {
  Printer p(opts);
  p.EmitStmt(s);
  return p.Result();
}

std::string PrintExpr(const Expr& e, const PrintOptions& opts) {
  Printer p(opts);
  p.EmitExpr(e);
  return p.Result();
}

std::string PrintType(const Type::Ptr& t, const PrintOptions& opts) {
  Printer p(opts);
  return p.TypeSpelling(t, true);
}

}  // namespace bridgecl::lang
