#include "lang/type.h"

#include <array>
#include <cassert>

namespace bridgecl::lang {

bool IsIntegerScalar(ScalarKind k) {
  switch (k) {
    case ScalarKind::kBool:
    case ScalarKind::kChar:
    case ScalarKind::kUChar:
    case ScalarKind::kShort:
    case ScalarKind::kUShort:
    case ScalarKind::kInt:
    case ScalarKind::kUInt:
    case ScalarKind::kLong:
    case ScalarKind::kULong:
    case ScalarKind::kLongLong:
    case ScalarKind::kULongLong:
    case ScalarKind::kSizeT:
      return true;
    default:
      return false;
  }
}

bool IsSignedScalar(ScalarKind k) {
  switch (k) {
    case ScalarKind::kChar:
    case ScalarKind::kShort:
    case ScalarKind::kInt:
    case ScalarKind::kLong:
    case ScalarKind::kLongLong:
      return true;
    default:
      return false;
  }
}

bool IsFloatScalar(ScalarKind k) {
  return k == ScalarKind::kFloat || k == ScalarKind::kDouble;
}

size_t ScalarByteSize(ScalarKind k) {
  switch (k) {
    case ScalarKind::kVoid: return 0;
    case ScalarKind::kBool: return 1;
    case ScalarKind::kChar:
    case ScalarKind::kUChar: return 1;
    case ScalarKind::kShort:
    case ScalarKind::kUShort: return 2;
    case ScalarKind::kInt:
    case ScalarKind::kUInt:
    case ScalarKind::kFloat: return 4;
    case ScalarKind::kLong:
    case ScalarKind::kULong:
    case ScalarKind::kLongLong:
    case ScalarKind::kULongLong:
    case ScalarKind::kDouble:
    case ScalarKind::kSizeT: return 8;
  }
  return 0;
}

const char* ScalarName(ScalarKind k) {
  switch (k) {
    case ScalarKind::kVoid: return "void";
    case ScalarKind::kBool: return "bool";
    case ScalarKind::kChar: return "char";
    case ScalarKind::kUChar: return "uchar";
    case ScalarKind::kShort: return "short";
    case ScalarKind::kUShort: return "ushort";
    case ScalarKind::kInt: return "int";
    case ScalarKind::kUInt: return "uint";
    case ScalarKind::kLong: return "long";
    case ScalarKind::kULong: return "ulong";
    case ScalarKind::kLongLong: return "longlong";
    case ScalarKind::kULongLong: return "ulonglong";
    case ScalarKind::kFloat: return "float";
    case ScalarKind::kDouble: return "double";
    case ScalarKind::kSizeT: return "size_t";
  }
  return "?";
}

const char* AddressSpaceName(AddressSpace s) {
  switch (s) {
    case AddressSpace::kPrivate: return "private";
    case AddressSpace::kLocal: return "local";
    case AddressSpace::kGlobal: return "global";
    case AddressSpace::kConstant: return "constant";
  }
  return "?";
}

Type::Ptr Type::Scalar(ScalarKind k) {
  auto t = std::shared_ptr<Type>(new Type());
  t->kind_ = TypeKind::kScalar;
  t->scalar_ = k;
  return t;
}

Type::Ptr Type::Vector(ScalarKind elem, int width) {
  assert(width == 1 || width == 2 || width == 3 || width == 4 || width == 8 ||
         width == 16);
  auto t = std::shared_ptr<Type>(new Type());
  t->kind_ = TypeKind::kVector;
  t->scalar_ = elem;
  t->width_ = width;
  return t;
}

Type::Ptr Type::Pointer(Ptr pointee, AddressSpace pointee_space) {
  auto t = std::shared_ptr<Type>(new Type());
  t->kind_ = TypeKind::kPointer;
  t->elem_ = std::move(pointee);
  t->space_ = pointee_space;
  return t;
}

Type::Ptr Type::Array(Ptr elem, size_t extent) {
  auto t = std::shared_ptr<Type>(new Type());
  t->kind_ = TypeKind::kArray;
  t->elem_ = std::move(elem);
  t->extent_ = extent;
  return t;
}

Type::Ptr Type::Struct(const StructDecl* decl) {
  auto t = std::shared_ptr<Type>(new Type());
  t->kind_ = TypeKind::kStruct;
  t->struct_ = decl;
  return t;
}

Type::Ptr Type::Image(int dims) {
  assert(dims >= 1 && dims <= 3);
  auto t = std::shared_ptr<Type>(new Type());
  t->kind_ = TypeKind::kImage;
  t->dims_ = dims;
  return t;
}

Type::Ptr Type::Sampler() {
  auto t = std::shared_ptr<Type>(new Type());
  t->kind_ = TypeKind::kSampler;
  return t;
}

Type::Ptr Type::Texture(ScalarKind elem, int elem_width, int dims) {
  auto t = std::shared_ptr<Type>(new Type());
  t->kind_ = TypeKind::kTexture;
  t->scalar_ = elem;
  t->width_ = elem_width;
  t->dims_ = dims;
  return t;
}

Type::Ptr Type::Named(std::string name) {
  auto t = std::shared_ptr<Type>(new Type());
  t->kind_ = TypeKind::kNamed;
  t->name_ = std::move(name);
  return t;
}

// StructLayout is computed in ast.cc (needs field list); forward here.
size_t StructByteSize(const StructDecl* decl);
size_t StructAlignment(const StructDecl* decl);

size_t Type::ByteSize() const {
  switch (kind_) {
    case TypeKind::kScalar:
      return ScalarByteSize(scalar_);
    case TypeKind::kVector: {
      int w = width_ == 3 ? 4 : width_;
      return ScalarByteSize(scalar_) * static_cast<size_t>(w);
    }
    case TypeKind::kPointer:
    case TypeKind::kImage:
    case TypeKind::kSampler:
    case TypeKind::kTexture:
      return 8;
    case TypeKind::kArray:
      return elem_->ByteSize() * extent_;
    case TypeKind::kStruct:
      return StructByteSize(struct_);
    case TypeKind::kNamed:
      return 0;  // unresolved; sema substitutes before layout queries
  }
  return 0;
}

size_t Type::Alignment() const {
  switch (kind_) {
    case TypeKind::kScalar:
      return ScalarByteSize(scalar_) == 0 ? 1 : ScalarByteSize(scalar_);
    case TypeKind::kVector: {
      int w = width_ == 3 ? 4 : width_;
      return ScalarByteSize(scalar_) * static_cast<size_t>(w);
    }
    case TypeKind::kPointer:
    case TypeKind::kImage:
    case TypeKind::kSampler:
    case TypeKind::kTexture:
      return 8;
    case TypeKind::kArray:
      return elem_->Alignment();
    case TypeKind::kStruct:
      return StructAlignment(struct_);
    case TypeKind::kNamed:
      return 1;
  }
  return 1;
}

std::string Type::ToString() const {
  switch (kind_) {
    case TypeKind::kScalar:
      return ScalarName(scalar_);
    case TypeKind::kVector:
      return VectorTypeName(scalar_, width_);
    case TypeKind::kPointer: {
      std::string out;
      if (space_ != AddressSpace::kPrivate) {
        out += "__";
        out += AddressSpaceName(space_);
        out += " ";
      }
      out += elem_->ToString();
      out += "*";
      return out;
    }
    case TypeKind::kArray:
      return elem_->ToString() + "[" + std::to_string(extent_) + "]";
    case TypeKind::kStruct:
      return "struct";  // refined by printer which knows the name
    case TypeKind::kImage:
      return "image" + std::to_string(dims_) + "d_t";
    case TypeKind::kSampler:
      return "sampler_t";
    case TypeKind::kTexture:
      return "texture<" + std::string(ScalarName(scalar_)) + "," +
             std::to_string(dims_) + ">";
    case TypeKind::kNamed:
      return name_;
  }
  return "?";
}

bool operator==(const Type& a, const Type& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case TypeKind::kScalar:
      return a.scalar_ == b.scalar_;
    case TypeKind::kVector:
      return a.scalar_ == b.scalar_ && a.width_ == b.width_;
    case TypeKind::kPointer:
      return a.space_ == b.space_ && SameType(a.elem_, b.elem_);
    case TypeKind::kArray:
      return a.extent_ == b.extent_ && SameType(a.elem_, b.elem_);
    case TypeKind::kStruct:
      return a.struct_ == b.struct_;
    case TypeKind::kImage:
      return a.dims_ == b.dims_;
    case TypeKind::kSampler:
      return true;
    case TypeKind::kTexture:
      return a.scalar_ == b.scalar_ && a.width_ == b.width_ &&
             a.dims_ == b.dims_;
    case TypeKind::kNamed:
      return a.name_ == b.name_;
  }
  return false;
}

bool SameType(const Type::Ptr& a, const Type::Ptr& b) {
  if (a == b) return true;
  if (!a || !b) return false;
  return *a == *b;
}

bool ParseVectorTypeName(const std::string& name, ScalarKind* elem,
                         int* width) {
  static const struct {
    const char* prefix;
    ScalarKind kind;
  } kPrefixes[] = {
      // Longest-match order matters: "ulonglong" before "ulong" etc.
      {"ulonglong", ScalarKind::kULongLong},
      {"longlong", ScalarKind::kLongLong},
      {"uchar", ScalarKind::kUChar},
      {"ushort", ScalarKind::kUShort},
      {"ulong", ScalarKind::kULong},
      {"uint", ScalarKind::kUInt},
      {"char", ScalarKind::kChar},
      {"short", ScalarKind::kShort},
      {"long", ScalarKind::kLong},
      {"int", ScalarKind::kInt},
      {"float", ScalarKind::kFloat},
      {"double", ScalarKind::kDouble},
  };
  for (const auto& p : kPrefixes) {
    std::string prefix = p.prefix;
    if (name.size() > prefix.size() && name.compare(0, prefix.size(), prefix) == 0) {
      std::string rest = name.substr(prefix.size());
      int w = 0;
      if (rest == "1") w = 1;
      else if (rest == "2") w = 2;
      else if (rest == "3") w = 3;
      else if (rest == "4") w = 4;
      else if (rest == "8") w = 8;
      else if (rest == "16") w = 16;
      else continue;
      *elem = p.kind;
      *width = w;
      return true;
    }
  }
  return false;
}

std::string VectorTypeName(ScalarKind elem, int width) {
  return std::string(ScalarName(elem)) + std::to_string(width);
}

}  // namespace bridgecl::lang
