// Catalog of device-code built-in functions and variables in both dialects.
// Shared by sema (typing), the interpreter (dispatch), and the translator
// (one-to-one mapping plus detection of model-specific features, §3.7).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "lang/dialect.h"
#include "lang/type.h"

namespace bridgecl::lang {

enum class BuiltinClass {
  kWorkItem,    // get_global_id / threadIdx ...
  kSync,        // barrier / __syncthreads / mem_fence / __threadfence
  kMath,        // sqrt, exp, fmin, ...
  kIntOps,      // min/max/abs/clamp/__popc/__clz/mul24
  kAtomic,      // atomic_* / atomic*
  kImage,       // read_imagef / write_imagef / tex2D ...
  kVector,      // make_float4, convert_int4, as_float, vload/vstore
  kWarp,        // CUDA __shfl/__all/__any/__ballot  (no OpenCL counterpart)
  kClock,       // CUDA clock()/clock64()            (no OpenCL counterpart)
  kAssert,      // CUDA assert/printf                (no OpenCL counterpart)
  kOther,
};

struct BuiltinInfo {
  std::string name;
  BuiltinClass cls = BuiltinClass::kOther;
  /// Which dialects expose this spelling.
  bool in_opencl = false;
  bool in_cuda = false;
  /// True for CUDA built-ins with no OpenCL counterpart (Table 3: "no
  /// corresponding functions").
  bool cuda_hw_specific = false;
};

/// Look up a built-in *function* by its spelling in the given dialect.
/// Handles generic families (convert_*, as_*, vload*/vstore*, make_*).
std::optional<BuiltinInfo> FindBuiltinFunction(const std::string& name,
                                               Dialect dialect);

/// Built-in *variables* (CUDA threadIdx/blockIdx/blockDim/gridDim/warpSize).
/// Returns the variable's type or null.
Type::Ptr BuiltinVariableType(const std::string& name, Dialect dialect);

/// Result type of a built-in call given argument types. Permissive: returns
/// a best-effort type (never null) for known builtins.
Type::Ptr BuiltinResultType(const std::string& name, Dialect dialect,
                            const std::vector<Type::Ptr>& args);

}  // namespace bridgecl::lang
