// Dialect-aware source printer: materializes a (possibly rewritten) AST as
// OpenCL C or CUDA C source text. The printer applies the *surface* rules
// of §3.6: address-space qualifier spellings, qualifier position on
// pointers (OpenCL prints pointee-space qualifiers; CUDA omits them), and
// vector-literal syntax ((floatN)(...) vs make_floatN(...)).
#pragma once

#include <string>

#include "lang/ast.h"
#include "lang/dialect.h"

namespace bridgecl::lang {

struct PrintOptions {
  Dialect dialect = Dialect::kOpenCL;
  int indent_width = 2;
};

std::string PrintTranslationUnit(const TranslationUnit& tu,
                                 const PrintOptions& opts);
std::string PrintDecl(const Decl& d, const PrintOptions& opts);
std::string PrintStmt(const Stmt& s, const PrintOptions& opts);
std::string PrintExpr(const Expr& e, const PrintOptions& opts);
/// Type spelling in the target dialect, including a leading address-space
/// qualifier for pointer types when the dialect keeps one.
std::string PrintType(const Type::Ptr& t, const PrintOptions& opts);

}  // namespace bridgecl::lang
