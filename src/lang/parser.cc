#include "lang/parser.h"

#include <cassert>
#include <unordered_map>
#include <unordered_set>

#include "lang/lexer.h"
#include "support/strings.h"

namespace bridgecl::lang {
namespace {

/// Recursive-descent parser. One instance per translation unit.
class Parser {
 public:
  Parser(std::vector<Token> toks, Dialect dialect, DiagnosticEngine& diags)
      : toks_(std::move(toks)), dialect_(dialect), diags_(diags) {}

  StatusOr<std::unique_ptr<TranslationUnit>> Parse();

 private:
  // -- token helpers -------------------------------------------------------
  const Token& peek(size_t ahead = 0) const {
    size_t p = pos_ + ahead;
    return p < toks_.size() ? toks_[p] : toks_.back();
  }
  const Token& cur() const { return peek(0); }
  Token take() { return toks_[pos_ < toks_.size() - 1 ? pos_++ : pos_]; }
  bool at_end() const { return cur().is(TokKind::kEnd); }
  bool eat_punct(const char* s) {
    if (cur().is_punct(s)) {
      take();
      return true;
    }
    return false;
  }
  bool eat_ident(const char* s) {
    if (cur().is_ident(s)) {
      take();
      return true;
    }
    return false;
  }
  Status expect_punct(const char* s) {
    if (eat_punct(s)) return OkStatus();
    return Err(cur().loc, StrFormat("expected '%s' but found '%s'", s,
                                    cur().text.c_str()));
  }
  Status Err(SourceLoc loc, std::string msg) {
    diags_.Error(loc, msg);
    return InvalidArgumentError(std::move(msg));
  }

  // -- type machinery ------------------------------------------------------
  struct DeclSpec {
    Type::Ptr base;                 // base type before declarators
    std::string base_spelling;      // for structs/typedefs
    VarQuals quals;                 // collected qualifiers
    FunctionQuals fquals;           // function qualifiers seen
    bool saw_fqual = false;
    /// OpenCL: leading address-space qualifier (applies to the pointee if
    /// the declarator turns out to be a pointer).
    bool space_pending = false;
    AddressSpace pending_space = AddressSpace::kPrivate;
  };

  bool IsTypeStart(const Token& t) const;
  bool IsQualifier(const Token& t) const;
  StatusOr<DeclSpec> ParseDeclSpec();
  /// Parse declarator suffix for a variable: pointers, name, arrays, init.
  StatusOr<std::unique_ptr<VarDecl>> ParseDeclarator(const DeclSpec& spec,
                                                     bool is_param,
                                                     bool* is_reference_out);
  StatusOr<Type::Ptr> ParseTypeName();  // for casts / sizeof / template args

  // -- declarations --------------------------------------------------------
  Status ParseTopLevel(TranslationUnit* tu);
  StatusOr<DeclPtr> ParseStructOrTypedef();
  StatusOr<DeclPtr> ParseTextureRef();
  Status ParseFunctionRest(TranslationUnit* tu, DeclSpec spec,
                           std::vector<TemplateParam> tparams);

  // -- statements ----------------------------------------------------------
  StatusOr<StmtPtr> ParseStmt();
  StatusOr<std::unique_ptr<CompoundStmt>> ParseCompound();
  StatusOr<StmtPtr> ParseDeclStmt();

  // -- expressions ---------------------------------------------------------
  StatusOr<ExprPtr> ParseExpr();            // includes comma
  StatusOr<ExprPtr> ParseAssignment();
  StatusOr<ExprPtr> ParseConditional();
  StatusOr<ExprPtr> ParseBinary(int min_prec);
  StatusOr<ExprPtr> ParseUnary();
  StatusOr<ExprPtr> ParsePostfix();
  StatusOr<ExprPtr> ParsePrimary();

  bool LooksLikeTypeAhead(size_t ahead) const;

  std::vector<Token> toks_;
  size_t pos_ = 0;
  Dialect dialect_;
  DiagnosticEngine& diags_;

  std::unordered_map<std::string, StructDecl*> structs_;
  std::unordered_map<std::string, Type::Ptr> typedefs_;
  std::unordered_set<std::string> template_fns_;
  std::unordered_set<std::string> template_params_in_scope_;
};

// Binary operator precedence (higher binds tighter).
struct OpInfo {
  BinaryOp op;
  int prec;
};
bool GetBinaryOp(const Token& t, OpInfo* info) {
  if (!t.is(TokKind::kPunct)) return false;
  static const std::unordered_map<std::string, OpInfo> kOps = {
      {"||", {BinaryOp::kLOr, 1}},  {"&&", {BinaryOp::kLAnd, 2}},
      {"|", {BinaryOp::kOr, 3}},    {"^", {BinaryOp::kXor, 4}},
      {"&", {BinaryOp::kAnd, 5}},   {"==", {BinaryOp::kEQ, 6}},
      {"!=", {BinaryOp::kNE, 6}},   {"<", {BinaryOp::kLT, 7}},
      {">", {BinaryOp::kGT, 7}},    {"<=", {BinaryOp::kLE, 7}},
      {">=", {BinaryOp::kGE, 7}},   {"<<", {BinaryOp::kShl, 8}},
      {">>", {BinaryOp::kShr, 8}},  {"+", {BinaryOp::kAdd, 9}},
      {"-", {BinaryOp::kSub, 9}},   {"*", {BinaryOp::kMul, 10}},
      {"/", {BinaryOp::kDiv, 10}},  {"%", {BinaryOp::kRem, 10}},
  };
  auto it = kOps.find(t.text);
  if (it == kOps.end()) return false;
  *info = it->second;
  return true;
}

bool GetCompoundAssignOp(const Token& t, BinaryOp* op) {
  if (!t.is(TokKind::kPunct)) return false;
  static const std::unordered_map<std::string, BinaryOp> kOps = {
      {"+=", BinaryOp::kAdd}, {"-=", BinaryOp::kSub}, {"*=", BinaryOp::kMul},
      {"/=", BinaryOp::kDiv}, {"%=", BinaryOp::kRem}, {"&=", BinaryOp::kAnd},
      {"|=", BinaryOp::kOr},  {"^=", BinaryOp::kXor}, {"<<=", BinaryOp::kShl},
      {">>=", BinaryOp::kShr},
  };
  auto it = kOps.find(t.text);
  if (it == kOps.end()) return false;
  *op = it->second;
  return true;
}

/// Scalar type spellings accepted in both dialects (OpenCL short names are
/// accepted under CUDA too: real CUDA code gets them from vector_types.h).
bool ScalarTypeFromName(const std::string& n, ScalarKind* k) {
  static const std::unordered_map<std::string, ScalarKind> kNames = {
      {"void", ScalarKind::kVoid},     {"bool", ScalarKind::kBool},
      {"char", ScalarKind::kChar},     {"uchar", ScalarKind::kUChar},
      {"short", ScalarKind::kShort},   {"ushort", ScalarKind::kUShort},
      {"int", ScalarKind::kInt},       {"uint", ScalarKind::kUInt},
      {"long", ScalarKind::kLong},     {"ulong", ScalarKind::kULong},
      {"float", ScalarKind::kFloat},   {"double", ScalarKind::kDouble},
      {"size_t", ScalarKind::kSizeT},
  };
  auto it = kNames.find(n);
  if (it == kNames.end()) return false;
  *k = it->second;
  return true;
}

bool Parser::IsQualifier(const Token& t) const {
  if (!t.is(TokKind::kIdent)) return false;
  const std::string& n = t.text;
  // Dialect-neutral.
  if (n == "const" || n == "volatile" || n == "static" || n == "extern" ||
      n == "inline" || n == "restrict")
    return true;
  if (dialect_ == Dialect::kOpenCL) {
    if (n == "__kernel" || n == "kernel" || n == "__global" || n == "global" ||
        n == "__local" || n == "local" || n == "__constant" ||
        n == "constant" || n == "__private" || n == "private" ||
        n == "__read_only" || n == "read_only" || n == "__write_only" ||
        n == "write_only")
      return true;
  } else {
    if (n == "__global__" || n == "__device__" || n == "__host__" ||
        n == "__shared__" || n == "__constant__" || n == "__restrict__" ||
        n == "__forceinline__")
      return true;
  }
  return false;
}

bool Parser::IsTypeStart(const Token& t) const {
  if (!t.is(TokKind::kIdent)) return false;
  const std::string& n = t.text;
  ScalarKind k;
  int w;
  if (ScalarTypeFromName(n, &k)) return true;
  if (ParseVectorTypeName(n, &k, &w)) return true;
  if (n == "unsigned" || n == "signed" || n == "struct") return true;
  if (n == "image1d_t" || n == "image2d_t" || n == "image3d_t" ||
      n == "sampler_t")
    return true;
  if (dialect_ == Dialect::kCUDA && n == "texture") return true;
  if (typedefs_.count(n) || structs_.count(n)) return true;
  if (template_params_in_scope_.count(n)) return true;
  return false;
}

bool Parser::LooksLikeTypeAhead(size_t ahead) const {
  // Skip qualifiers, then require a type start.
  while (IsQualifier(peek(ahead))) ++ahead;
  return IsTypeStart(peek(ahead));
}

StatusOr<Parser::DeclSpec> Parser::ParseDeclSpec() {
  DeclSpec spec;
  // Qualifiers may appear before and between; loop until base type parsed.
  bool base_done = false;
  while (!base_done) {
    const Token& t = cur();
    if (!t.is(TokKind::kIdent))
      return Err(t.loc, "expected declaration specifier, found '" + t.text +
                            "'");
    const std::string& n = t.text;

    // ---- function qualifiers ----
    if ((dialect_ == Dialect::kOpenCL && (n == "__kernel" || n == "kernel")) ) {
      spec.fquals.is_kernel = true;
      spec.saw_fqual = true;
      take();
      continue;
    }
    if (dialect_ == Dialect::kCUDA && n == "__global__") {
      spec.fquals.is_kernel = true;
      spec.saw_fqual = true;
      take();
      continue;
    }
    if (dialect_ == Dialect::kCUDA && n == "__host__") {
      spec.fquals.is_host = true;
      spec.saw_fqual = true;
      take();
      continue;
    }
    // __device__ is ambiguous in CUDA: function qualifier or variable
    // address space. Record it as a pending space; ParseFunctionRest
    // reinterprets it when the declarator is a function.
    if (dialect_ == Dialect::kCUDA && n == "__device__") {
      spec.space_pending = true;
      spec.pending_space = AddressSpace::kGlobal;
      spec.quals.space_explicit = true;
      take();
      continue;
    }

    // ---- address-space qualifiers ----
    if (dialect_ == Dialect::kOpenCL &&
        (n == "__global" || n == "global")) {
      spec.space_pending = true;
      spec.pending_space = AddressSpace::kGlobal;
      spec.quals.space_explicit = true;
      take();
      continue;
    }
    if ((dialect_ == Dialect::kOpenCL && (n == "__local" || n == "local")) ||
        (dialect_ == Dialect::kCUDA && n == "__shared__")) {
      spec.space_pending = true;
      spec.pending_space = AddressSpace::kLocal;
      spec.quals.space_explicit = true;
      take();
      continue;
    }
    if ((dialect_ == Dialect::kOpenCL &&
         (n == "__constant" || n == "constant")) ||
        (dialect_ == Dialect::kCUDA && n == "__constant__")) {
      spec.space_pending = true;
      spec.pending_space = AddressSpace::kConstant;
      spec.quals.space_explicit = true;
      take();
      continue;
    }
    if (dialect_ == Dialect::kOpenCL && (n == "__private" || n == "private")) {
      spec.space_pending = true;
      spec.pending_space = AddressSpace::kPrivate;
      spec.quals.space_explicit = true;
      take();
      continue;
    }

    // ---- other qualifiers ----
    if (n == "const") {
      spec.quals.is_const = true;
      take();
      continue;
    }
    if (n == "volatile") {
      spec.quals.is_volatile = true;
      take();
      continue;
    }
    if (n == "static") {
      spec.quals.is_static = true;
      take();
      continue;
    }
    if (n == "extern") {
      spec.quals.is_extern = true;
      take();
      continue;
    }
    if (n == "inline" || n == "__forceinline__") {
      take();
      continue;
    }
    if (n == "restrict" || n == "__restrict__") {
      spec.quals.is_restrict = true;
      take();
      continue;
    }
    if (dialect_ == Dialect::kOpenCL &&
        (n == "__read_only" || n == "read_only")) {
      spec.quals.read_only = true;
      take();
      continue;
    }
    if (dialect_ == Dialect::kOpenCL &&
        (n == "__write_only" || n == "write_only")) {
      spec.quals.write_only = true;
      take();
      continue;
    }

    // ---- base type ----
    ScalarKind k;
    int w;
    if (n == "unsigned" || n == "signed") {
      bool is_unsigned = (n == "unsigned");
      take();
      std::string t2 =
          cur().is(TokKind::kIdent) ? cur().text : std::string("int");
      if (t2 == "char") {
        take();
        spec.base = Type::Scalar(is_unsigned ? ScalarKind::kUChar
                                             : ScalarKind::kChar);
      } else if (t2 == "short") {
        take();
        spec.base = Type::Scalar(is_unsigned ? ScalarKind::kUShort
                                             : ScalarKind::kShort);
      } else if (t2 == "long") {
        take();
        if (eat_ident("long")) {
          if (eat_ident("int")) {}
          spec.base = Type::Scalar(is_unsigned ? ScalarKind::kULongLong
                                               : ScalarKind::kLongLong);
        } else {
          if (eat_ident("int")) {}
          spec.base = Type::Scalar(is_unsigned ? ScalarKind::kULong
                                               : ScalarKind::kLong);
        }
      } else if (t2 == "int") {
        take();
        spec.base =
            Type::Scalar(is_unsigned ? ScalarKind::kUInt : ScalarKind::kInt);
      } else {
        spec.base =
            Type::Scalar(is_unsigned ? ScalarKind::kUInt : ScalarKind::kInt);
      }
      base_done = true;
      continue;
    }
    if (n == "long") {
      take();
      if (eat_ident("long")) {
        if (eat_ident("int")) {}
        spec.base = Type::Scalar(ScalarKind::kLongLong);
      } else {
        if (eat_ident("int")) {}
        spec.base = Type::Scalar(ScalarKind::kLong);
      }
      base_done = true;
      continue;
    }
    if (ParseVectorTypeName(n, &k, &w)) {
      take();
      spec.base = Type::Vector(k, w);
      spec.base_spelling = n;
      base_done = true;
      continue;
    }
    if (ScalarTypeFromName(n, &k)) {
      take();
      spec.base = Type::Scalar(k);
      base_done = true;
      continue;
    }
    if (n == "image1d_t" || n == "image2d_t" || n == "image3d_t") {
      take();
      spec.base = Type::Image(n[5] - '0');
      spec.base_spelling = n;
      base_done = true;
      continue;
    }
    if (n == "sampler_t") {
      take();
      spec.base = Type::Sampler();
      spec.base_spelling = n;
      base_done = true;
      continue;
    }
    if (n == "struct") {
      take();
      if (!cur().is(TokKind::kIdent))
        return Err(cur().loc, "expected struct name");
      std::string sname = take().text;
      auto it = structs_.find(sname);
      if (it == structs_.end())
        return Err(t.loc, "unknown struct '" + sname + "'");
      spec.base = Type::Struct(it->second);
      spec.base_spelling = "struct " + sname;
      base_done = true;
      continue;
    }
    if (auto it = typedefs_.find(n); it != typedefs_.end()) {
      take();
      spec.base = it->second;
      spec.base_spelling = n;
      base_done = true;
      continue;
    }
    if (auto it = structs_.find(n); it != structs_.end()) {
      take();
      spec.base = Type::Struct(it->second);
      spec.base_spelling = n;
      base_done = true;
      continue;
    }
    if (template_params_in_scope_.count(n)) {
      take();
      spec.base = Type::Named(n);
      spec.base_spelling = n;
      base_done = true;
      continue;
    }
    return Err(t.loc, "unknown type name '" + n + "'");
  }

  // Trailing qualifiers after the base type ("int const", "float* const").
  while (IsQualifier(cur()) && !cur().is_ident("extern") &&
         !cur().is_ident("static")) {
    const std::string& n = cur().text;
    if (n == "const")
      spec.quals.is_const = true;
    else if (n == "volatile")
      spec.quals.is_volatile = true;
    else if (n == "restrict" || n == "__restrict__")
      spec.quals.is_restrict = true;
    else
      break;  // address-space qualifier after base type: leave for declarator
    take();
  }
  return spec;
}

StatusOr<std::unique_ptr<VarDecl>> Parser::ParseDeclarator(
    const DeclSpec& spec, bool is_param, bool* is_reference_out) {
  auto var = std::make_unique<VarDecl>();
  var->loc = cur().loc;
  var->is_param = is_param;
  var->quals = spec.quals;
  var->type_spelling = spec.base_spelling;
  Type::Ptr ty = spec.base;

  int pointer_depth = 0;
  while (eat_punct("*")) {
    ++pointer_depth;
    // Qualifiers between '*' and the name.
    while (IsQualifier(cur())) {
      const std::string& n = cur().text;
      if (n == "const")
        var->quals.is_const = true;
      else if (n == "restrict" || n == "__restrict__")
        var->quals.is_restrict = true;
      else if (n == "volatile")
        var->quals.is_volatile = true;
      else
        break;
      take();
    }
  }
  bool is_ref = false;
  if (dialect_ == Dialect::kCUDA && eat_punct("&")) is_ref = true;
  if (is_reference_out) *is_reference_out = is_ref;

  if (!cur().is(TokKind::kIdent)) {
    // Abstract declarator (unnamed parameter) is allowed for prototypes.
    if (!is_param) return Err(cur().loc, "expected variable name");
  } else {
    var->name = take().text;
  }

  // Array suffixes.
  std::vector<size_t> extents;
  bool unsized_array = false;
  while (eat_punct("[")) {
    if (eat_punct("]")) {
      unsized_array = true;
      extents.push_back(0);
      continue;
    }
    BRIDGECL_ASSIGN_OR_RETURN(ExprPtr e, ParseConditional());
    // Extents must be integer constants; sema folds more complex forms,
    // here we accept literals directly and constant expressions via a
    // mini-fold of literal arithmetic.
    size_t extent = 0;
    if (e->kind == ExprKind::kIntLit) {
      extent = e->As<IntLitExpr>()->value;
    } else {
      return Err(e->loc, "array extent must be an integer literal (after "
                         "macro expansion)");
    }
    extents.push_back(extent);
    BRIDGECL_RETURN_IF_ERROR(expect_punct("]"));
  }

  // Compose the type inside-out: base -> pointers -> arrays.
  AddressSpace var_space = AddressSpace::kPrivate;
  if (spec.space_pending) {
    if (pointer_depth > 0 && dialect_ == Dialect::kOpenCL) {
      // OpenCL: qualifier names the pointee space (§3.6).
      // handled below when wrapping pointers
    } else {
      var_space = spec.pending_space;
    }
  }
  for (int i = 0; i < pointer_depth; ++i) {
    AddressSpace pointee_space = AddressSpace::kPrivate;
    if (i == pointer_depth - 1 && spec.space_pending &&
        dialect_ == Dialect::kOpenCL) {
      pointee_space = spec.pending_space;
    }
    ty = Type::Pointer(std::move(ty), pointee_space);
  }
  // In OpenCL, `__local int* p` as a *param* means pointee in local memory;
  // the variable itself is private. In CUDA, `__device__ int* p` at file
  // scope means the pointer variable lives in global memory.
  var->quals.space = var_space;

  // Arrays wrap outside pointers: `int* a[4]` is array of pointers.
  for (auto it = extents.rbegin(); it != extents.rend(); ++it)
    ty = Type::Array(std::move(ty), *it);
  if (unsized_array && is_param) {
    // Param arrays decay to pointers: `__local int x[]` == `__local int* x`.
    AddressSpace sp = spec.space_pending && dialect_ == Dialect::kOpenCL
                          ? spec.pending_space
                          : AddressSpace::kPrivate;
    ty = Type::Pointer(ty->element(), sp);
  }

  var->type = std::move(ty);

  // Initializer.
  if (eat_punct("=")) {
    if (cur().is_punct("{")) {
      take();
      auto init = std::make_unique<InitListExpr>();
      init->loc = cur().loc;
      if (!cur().is_punct("}")) {
        while (true) {
          BRIDGECL_ASSIGN_OR_RETURN(ExprPtr e, ParseAssignment());
          init->elems.push_back(std::move(e));
          if (!eat_punct(",")) break;
        }
      }
      BRIDGECL_RETURN_IF_ERROR(expect_punct("}"));
      var->init = std::move(init);
    } else {
      BRIDGECL_ASSIGN_OR_RETURN(var->init, ParseAssignment());
    }
  }
  return var;
}

StatusOr<Type::Ptr> Parser::ParseTypeName() {
  BRIDGECL_ASSIGN_OR_RETURN(DeclSpec spec, ParseDeclSpec());
  Type::Ptr ty = spec.base;
  int pointer_depth = 0;
  while (eat_punct("*")) ++pointer_depth;
  for (int i = 0; i < pointer_depth; ++i) {
    AddressSpace sp = AddressSpace::kPrivate;
    if (i == pointer_depth - 1 && spec.space_pending) sp = spec.pending_space;
    ty = Type::Pointer(std::move(ty), sp);
  }
  return ty;
}

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

StatusOr<DeclPtr> Parser::ParseStructOrTypedef() {
  SourceLoc loc = cur().loc;
  bool is_typedef = eat_ident("typedef");

  if (is_typedef && !cur().is_ident("struct")) {
    // `typedef <type> Name;`
    BRIDGECL_ASSIGN_OR_RETURN(Type::Ptr ty, ParseTypeName());
    if (!cur().is(TokKind::kIdent))
      return Err(cur().loc, "expected typedef name");
    auto td = std::make_unique<TypedefDecl>();
    td->loc = loc;
    td->name = take().text;
    td->underlying = ty;
    typedefs_[td->name] = ty;
    BRIDGECL_RETURN_IF_ERROR(expect_punct(";"));
    return DeclPtr(std::move(td));
  }

  // struct [Name] { fields } [Name2] ;
  if (!eat_ident("struct")) return Err(cur().loc, "expected 'struct'");
  auto sd = std::make_unique<StructDecl>();
  sd->loc = loc;
  sd->is_typedef = is_typedef;
  if (cur().is(TokKind::kIdent)) sd->name = take().text;
  // Register early so self-referential pointers (`struct Node* next`) work.
  if (!sd->name.empty()) structs_[sd->name] = sd.get();

  BRIDGECL_RETURN_IF_ERROR(expect_punct("{"));
  while (!cur().is_punct("}")) {
    BRIDGECL_ASSIGN_OR_RETURN(DeclSpec spec, ParseDeclSpec());
    while (true) {
      BRIDGECL_ASSIGN_OR_RETURN(auto field_var,
                                ParseDeclarator(spec, false, nullptr));
      StructField f;
      f.name = field_var->name;
      f.type = field_var->type;
      f.type_spelling = field_var->type_spelling;
      sd->fields.push_back(std::move(f));
      if (!eat_punct(",")) break;
    }
    BRIDGECL_RETURN_IF_ERROR(expect_punct(";"));
  }
  take();  // }

  if (cur().is(TokKind::kIdent)) {
    std::string alias = take().text;
    if (sd->name.empty()) sd->name = alias;
    structs_[alias] = sd.get();
    typedefs_[alias] = Type::Struct(sd.get());
  }
  BRIDGECL_RETURN_IF_ERROR(expect_punct(";"));
  return DeclPtr(std::move(sd));
}

StatusOr<DeclPtr> Parser::ParseTextureRef() {
  // texture<float, 2, cudaReadModeElementType> name;
  SourceLoc loc = cur().loc;
  take();  // 'texture'
  BRIDGECL_RETURN_IF_ERROR(expect_punct("<"));
  auto tex = std::make_unique<TextureRefDecl>();
  tex->loc = loc;

  if (!cur().is(TokKind::kIdent)) return Err(cur().loc, "expected texel type");
  std::string tname = take().text;
  ScalarKind k;
  int w = 1;
  if (ScalarTypeFromName(tname, &k)) {
    tex->elem = k;
  } else if (ParseVectorTypeName(tname, &k, &w)) {
    tex->elem = k;
    tex->elem_width = w;
  } else {
    return Err(loc, "unsupported texel type '" + tname + "'");
  }
  if (eat_punct(",")) {
    if (!cur().is(TokKind::kIntLit)) return Err(cur().loc, "expected dims");
    tex->dims = static_cast<int>(take().int_value);
    if (eat_punct(",")) {
      if (!cur().is(TokKind::kIdent))
        return Err(cur().loc, "expected read mode");
      std::string mode = take().text;
      tex->normalized_coords = (mode == "cudaReadModeNormalizedFloat");
    }
  }
  BRIDGECL_RETURN_IF_ERROR(expect_punct(">"));
  if (!cur().is(TokKind::kIdent))
    return Err(cur().loc, "expected texture reference name");
  tex->name = take().text;
  BRIDGECL_RETURN_IF_ERROR(expect_punct(";"));
  return DeclPtr(std::move(tex));
}

Status Parser::ParseFunctionRest(TranslationUnit* tu, DeclSpec spec,
                                 std::vector<TemplateParam> tparams) {
  auto fn = std::make_unique<FunctionDecl>();
  fn->loc = cur().loc;
  fn->quals = spec.fquals;
  fn->return_type = spec.base;
  fn->return_type_spelling = spec.base_spelling;
  fn->template_params = std::move(tparams);

  // A pending `__device__` on a function is the CUDA function qualifier.
  if (spec.space_pending && dialect_ == Dialect::kCUDA &&
      spec.pending_space == AddressSpace::kGlobal && !spec.fquals.is_kernel) {
    fn->quals.is_device = true;
  }
  int ret_ptr_depth = 0;
  while (eat_punct("*")) ++ret_ptr_depth;
  for (int i = 0; i < ret_ptr_depth; ++i)
    fn->return_type = Type::Pointer(fn->return_type, AddressSpace::kPrivate);

  if (!cur().is(TokKind::kIdent)) return Err(cur().loc, "expected name");
  fn->name = take().text;
  if (!fn->template_params.empty()) template_fns_.insert(fn->name);

  BRIDGECL_RETURN_IF_ERROR(expect_punct("("));
  if (!cur().is_punct(")")) {
    if (cur().is_ident("void") && peek(1).is_punct(")")) {
      take();
    } else {
      while (true) {
        BRIDGECL_ASSIGN_OR_RETURN(DeclSpec pspec, ParseDeclSpec());
        bool is_ref = false;
        BRIDGECL_ASSIGN_OR_RETURN(auto param,
                                  ParseDeclarator(pspec, true, &is_ref));
        // OpenCL kernel pointer params: the address-space qualifier binds
        // to the pointee; a parameter itself is always private. For a
        // *non*-pointer param with __local (illegal) sema diagnoses.
        fn->params.push_back(std::move(param));
        fn->param_is_reference.push_back(is_ref);
        if (!eat_punct(",")) break;
      }
    }
  }
  BRIDGECL_RETURN_IF_ERROR(expect_punct(")"));

  if (eat_punct(";")) {
    tu->decls.push_back(std::move(fn));
    return OkStatus();
  }
  BRIDGECL_ASSIGN_OR_RETURN(fn->body, ParseCompound());
  tu->decls.push_back(std::move(fn));
  return OkStatus();
}

Status Parser::ParseTopLevel(TranslationUnit* tu) {
  // typedef / struct
  if (cur().is_ident("typedef") ||
      (cur().is_ident("struct") &&
       (peek(1).is_punct("{") ||
        (peek(1).is(TokKind::kIdent) && peek(2).is_punct("{"))))) {
    BRIDGECL_ASSIGN_OR_RETURN(DeclPtr d, ParseStructOrTypedef());
    tu->decls.push_back(std::move(d));
    return OkStatus();
  }
  // CUDA texture reference
  if (dialect_ == Dialect::kCUDA && cur().is_ident("texture") &&
      peek(1).is_punct("<")) {
    BRIDGECL_ASSIGN_OR_RETURN(DeclPtr d, ParseTextureRef());
    tu->decls.push_back(std::move(d));
    return OkStatus();
  }
  // CUDA template function
  std::vector<TemplateParam> tparams;
  if (dialect_ == Dialect::kCUDA && cur().is_ident("template")) {
    take();
    BRIDGECL_RETURN_IF_ERROR(expect_punct("<"));
    while (true) {
      if (!eat_ident("typename") && !eat_ident("class"))
        return Err(cur().loc, "expected 'typename'");
      if (!cur().is(TokKind::kIdent))
        return Err(cur().loc, "expected template parameter name");
      TemplateParam tp;
      tp.name = take().text;
      template_params_in_scope_.insert(tp.name);
      tparams.push_back(std::move(tp));
      if (!eat_punct(",")) break;
    }
    BRIDGECL_RETURN_IF_ERROR(expect_punct(">"));
  }

  BRIDGECL_ASSIGN_OR_RETURN(DeclSpec spec, ParseDeclSpec());

  // Function or variable? Look ahead: [*]* name (
  size_t ahead = 0;
  while (peek(ahead).is_punct("*")) ++ahead;
  bool is_function =
      peek(ahead).is(TokKind::kIdent) && peek(ahead + 1).is_punct("(");

  if (is_function) {
    Status st = ParseFunctionRest(tu, std::move(spec), std::move(tparams));
    for (const auto& tp : tparams) template_params_in_scope_.erase(tp.name);
    // (tparams was moved; clear the whole scope conservatively)
    template_params_in_scope_.clear();
    return st;
  }
  if (!tparams.empty())
    return Err(cur().loc, "template variables are not supported");

  // File-scope variable(s).
  while (true) {
    BRIDGECL_ASSIGN_OR_RETURN(auto var, ParseDeclarator(spec, false, nullptr));
    tu->decls.push_back(std::move(var));
    if (!eat_punct(",")) break;
  }
  return expect_punct(";");
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

StatusOr<std::unique_ptr<CompoundStmt>> Parser::ParseCompound() {
  BRIDGECL_RETURN_IF_ERROR(expect_punct("{"));
  auto body = std::make_unique<CompoundStmt>();
  body->loc = cur().loc;
  while (!cur().is_punct("}")) {
    if (at_end()) return Err(cur().loc, "unexpected end of file in block");
    BRIDGECL_ASSIGN_OR_RETURN(StmtPtr s, ParseStmt());
    body->body.push_back(std::move(s));
  }
  take();  // }
  return body;
}

StatusOr<StmtPtr> Parser::ParseDeclStmt() {
  BRIDGECL_ASSIGN_OR_RETURN(DeclSpec spec, ParseDeclSpec());
  auto ds = std::make_unique<DeclStmt>();
  ds->loc = cur().loc;
  while (true) {
    BRIDGECL_ASSIGN_OR_RETURN(auto var, ParseDeclarator(spec, false, nullptr));
    ds->vars.push_back(std::move(var));
    if (!eat_punct(",")) break;
  }
  BRIDGECL_RETURN_IF_ERROR(expect_punct(";"));
  return StmtPtr(std::move(ds));
}

StatusOr<StmtPtr> Parser::ParseStmt() {
  SourceLoc loc = cur().loc;
  if (cur().is_punct("{")) {
    BRIDGECL_ASSIGN_OR_RETURN(auto c, ParseCompound());
    return StmtPtr(std::move(c));
  }
  if (eat_punct(";")) {
    auto s = std::make_unique<EmptyStmt>();
    s->loc = loc;
    return StmtPtr(std::move(s));
  }
  if (cur().is_ident("if")) {
    take();
    auto s = std::make_unique<IfStmt>();
    s->loc = loc;
    BRIDGECL_RETURN_IF_ERROR(expect_punct("("));
    BRIDGECL_ASSIGN_OR_RETURN(s->cond, ParseExpr());
    BRIDGECL_RETURN_IF_ERROR(expect_punct(")"));
    BRIDGECL_ASSIGN_OR_RETURN(s->then_stmt, ParseStmt());
    if (eat_ident("else")) {
      BRIDGECL_ASSIGN_OR_RETURN(s->else_stmt, ParseStmt());
    }
    return StmtPtr(std::move(s));
  }
  if (cur().is_ident("for")) {
    take();
    auto s = std::make_unique<ForStmt>();
    s->loc = loc;
    BRIDGECL_RETURN_IF_ERROR(expect_punct("("));
    if (!eat_punct(";")) {
      if (LooksLikeTypeAhead(0)) {
        BRIDGECL_ASSIGN_OR_RETURN(s->init, ParseDeclStmt());
      } else {
        auto es = std::make_unique<ExprStmt>();
        BRIDGECL_ASSIGN_OR_RETURN(es->expr, ParseExpr());
        s->init = std::move(es);
        BRIDGECL_RETURN_IF_ERROR(expect_punct(";"));
      }
    }
    if (!cur().is_punct(";")) {
      BRIDGECL_ASSIGN_OR_RETURN(s->cond, ParseExpr());
    }
    BRIDGECL_RETURN_IF_ERROR(expect_punct(";"));
    if (!cur().is_punct(")")) {
      BRIDGECL_ASSIGN_OR_RETURN(s->step, ParseExpr());
    }
    BRIDGECL_RETURN_IF_ERROR(expect_punct(")"));
    BRIDGECL_ASSIGN_OR_RETURN(s->body, ParseStmt());
    return StmtPtr(std::move(s));
  }
  if (cur().is_ident("while")) {
    take();
    auto s = std::make_unique<WhileStmt>();
    s->loc = loc;
    BRIDGECL_RETURN_IF_ERROR(expect_punct("("));
    BRIDGECL_ASSIGN_OR_RETURN(s->cond, ParseExpr());
    BRIDGECL_RETURN_IF_ERROR(expect_punct(")"));
    BRIDGECL_ASSIGN_OR_RETURN(s->body, ParseStmt());
    return StmtPtr(std::move(s));
  }
  if (cur().is_ident("do")) {
    take();
    auto s = std::make_unique<DoStmt>();
    s->loc = loc;
    BRIDGECL_ASSIGN_OR_RETURN(s->body, ParseStmt());
    if (!eat_ident("while")) return Err(cur().loc, "expected 'while'");
    BRIDGECL_RETURN_IF_ERROR(expect_punct("("));
    BRIDGECL_ASSIGN_OR_RETURN(s->cond, ParseExpr());
    BRIDGECL_RETURN_IF_ERROR(expect_punct(")"));
    BRIDGECL_RETURN_IF_ERROR(expect_punct(";"));
    return StmtPtr(std::move(s));
  }
  if (cur().is_ident("return")) {
    take();
    auto s = std::make_unique<ReturnStmt>();
    s->loc = loc;
    if (!cur().is_punct(";")) {
      BRIDGECL_ASSIGN_OR_RETURN(s->value, ParseExpr());
    }
    BRIDGECL_RETURN_IF_ERROR(expect_punct(";"));
    return StmtPtr(std::move(s));
  }
  if (cur().is_ident("break")) {
    take();
    BRIDGECL_RETURN_IF_ERROR(expect_punct(";"));
    auto s = std::make_unique<BreakStmt>();
    s->loc = loc;
    return StmtPtr(std::move(s));
  }
  if (cur().is_ident("continue")) {
    take();
    BRIDGECL_RETURN_IF_ERROR(expect_punct(";"));
    auto s = std::make_unique<ContinueStmt>();
    s->loc = loc;
    return StmtPtr(std::move(s));
  }
  // Declaration?
  if (LooksLikeTypeAhead(0)) {
    // Guard against expression statements that begin with a type-looking
    // identifier, e.g. a call `foo(x);` where foo is a typedef name — our
    // grammar forbids that collision, so this is safe.
    return ParseDeclStmt();
  }
  // Expression statement.
  auto es = std::make_unique<ExprStmt>();
  es->loc = loc;
  BRIDGECL_ASSIGN_OR_RETURN(es->expr, ParseExpr());
  BRIDGECL_RETURN_IF_ERROR(expect_punct(";"));
  return StmtPtr(std::move(es));
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

StatusOr<ExprPtr> Parser::ParseExpr() {
  BRIDGECL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAssignment());
  while (cur().is_punct(",")) {
    take();
    BRIDGECL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAssignment());
    auto e = MakeBinary(BinaryOp::kComma, std::move(lhs), std::move(rhs));
    lhs = std::move(e);
  }
  return lhs;
}

StatusOr<ExprPtr> Parser::ParseAssignment() {
  BRIDGECL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseConditional());
  if (cur().is_punct("=")) {
    SourceLoc loc = take().loc;
    BRIDGECL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAssignment());
    auto e = MakeAssign(std::move(lhs), std::move(rhs));
    e->loc = loc;
    return ExprPtr(std::move(e));
  }
  BinaryOp op;
  if (GetCompoundAssignOp(cur(), &op)) {
    SourceLoc loc = take().loc;
    BRIDGECL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAssignment());
    auto e = std::make_unique<AssignExpr>();
    e->op = op;
    e->compound = true;
    e->lhs = std::move(lhs);
    e->rhs = std::move(rhs);
    e->loc = loc;
    return ExprPtr(std::move(e));
  }
  return lhs;
}

StatusOr<ExprPtr> Parser::ParseConditional() {
  BRIDGECL_ASSIGN_OR_RETURN(ExprPtr cond, ParseBinary(1));
  if (!cur().is_punct("?")) return cond;
  SourceLoc loc = take().loc;
  auto e = std::make_unique<ConditionalExpr>();
  e->loc = loc;
  e->cond = std::move(cond);
  BRIDGECL_ASSIGN_OR_RETURN(e->then_expr, ParseExpr());
  BRIDGECL_RETURN_IF_ERROR(expect_punct(":"));
  BRIDGECL_ASSIGN_OR_RETURN(e->else_expr, ParseConditional());
  return ExprPtr(std::move(e));
}

StatusOr<ExprPtr> Parser::ParseBinary(int min_prec) {
  BRIDGECL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
  while (true) {
    OpInfo info;
    if (!GetBinaryOp(cur(), &info) || info.prec < min_prec) return lhs;
    SourceLoc loc = take().loc;
    BRIDGECL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseBinary(info.prec + 1));
    auto e = MakeBinary(info.op, std::move(lhs), std::move(rhs));
    e->loc = loc;
    lhs = std::move(e);
  }
}

StatusOr<ExprPtr> Parser::ParseUnary() {
  SourceLoc loc = cur().loc;
  auto mk = [&](UnaryOp op) -> StatusOr<ExprPtr> {
    take();
    auto e = std::make_unique<UnaryExpr>();
    e->op = op;
    e->loc = loc;
    BRIDGECL_ASSIGN_OR_RETURN(e->operand, ParseUnary());
    return ExprPtr(std::move(e));
  };
  if (cur().is_punct("+")) return mk(UnaryOp::kPlus);
  if (cur().is_punct("-")) return mk(UnaryOp::kMinus);
  if (cur().is_punct("!")) return mk(UnaryOp::kNot);
  if (cur().is_punct("~")) return mk(UnaryOp::kBitNot);
  if (cur().is_punct("*")) return mk(UnaryOp::kDeref);
  if (cur().is_punct("&")) return mk(UnaryOp::kAddrOf);
  if (cur().is_punct("++")) return mk(UnaryOp::kPreInc);
  if (cur().is_punct("--")) return mk(UnaryOp::kPreDec);

  if (cur().is_ident("sizeof")) {
    take();
    auto e = std::make_unique<SizeofExpr>();
    e->loc = loc;
    if (cur().is_punct("(") && LooksLikeTypeAhead(1)) {
      take();
      std::string spelling = cur().text;
      BRIDGECL_ASSIGN_OR_RETURN(e->arg_type, ParseTypeName());
      e->type_spelling = spelling;
      BRIDGECL_RETURN_IF_ERROR(expect_punct(")"));
    } else {
      BRIDGECL_ASSIGN_OR_RETURN(e->arg_expr, ParseUnary());
    }
    return ExprPtr(std::move(e));
  }

  // C++ casts (CUDA device dialect).
  if (dialect_ == Dialect::kCUDA &&
      (cur().is_ident("static_cast") || cur().is_ident("reinterpret_cast") ||
       cur().is_ident("const_cast"))) {
    std::string kind = take().text;
    auto e = std::make_unique<CastExpr>();
    e->loc = loc;
    e->style = kind == "static_cast"        ? CastStyle::kStatic
               : kind == "reinterpret_cast" ? CastStyle::kReinterpret
                                            : CastStyle::kConst;
    BRIDGECL_RETURN_IF_ERROR(expect_punct("<"));
    e->target_spelling = cur().text;
    BRIDGECL_ASSIGN_OR_RETURN(e->target, ParseTypeName());
    BRIDGECL_RETURN_IF_ERROR(expect_punct(">"));
    BRIDGECL_RETURN_IF_ERROR(expect_punct("("));
    BRIDGECL_ASSIGN_OR_RETURN(e->operand, ParseExpr());
    BRIDGECL_RETURN_IF_ERROR(expect_punct(")"));
    return ExprPtr(std::move(e));
  }

  // C-style cast or OpenCL vector literal: '(' type ')' ...
  if (cur().is_punct("(") && LooksLikeTypeAhead(1)) {
    take();  // (
    std::string spelling = cur().text;
    BRIDGECL_ASSIGN_OR_RETURN(Type::Ptr ty, ParseTypeName());
    BRIDGECL_RETURN_IF_ERROR(expect_punct(")"));
    // OpenCL vector literal `(float4)(a,b,c,d)` — a following '(' with a
    // vector target type.
    if (ty->is_vector() && cur().is_punct("(")) {
      take();
      auto v = std::make_unique<VectorLitExpr>();
      v->loc = loc;
      v->vec_type = ty;
      while (true) {
        BRIDGECL_ASSIGN_OR_RETURN(ExprPtr el, ParseAssignment());
        v->elems.push_back(std::move(el));
        if (!eat_punct(",")) break;
      }
      BRIDGECL_RETURN_IF_ERROR(expect_punct(")"));
      return ExprPtr(std::move(v));
    }
    auto e = std::make_unique<CastExpr>();
    e->loc = loc;
    e->style = CastStyle::kCStyle;
    e->target = std::move(ty);
    e->target_spelling = spelling;
    BRIDGECL_ASSIGN_OR_RETURN(e->operand, ParseUnary());
    return ExprPtr(std::move(e));
  }

  return ParsePostfix();
}

StatusOr<ExprPtr> Parser::ParsePostfix() {
  BRIDGECL_ASSIGN_OR_RETURN(ExprPtr e, ParsePrimary());
  while (true) {
    SourceLoc loc = cur().loc;
    if (cur().is_punct("(")) {
      take();
      auto call = std::make_unique<CallExpr>();
      call->loc = loc;
      call->callee = std::move(e);
      if (!cur().is_punct(")")) {
        while (true) {
          BRIDGECL_ASSIGN_OR_RETURN(ExprPtr a, ParseAssignment());
          call->args.push_back(std::move(a));
          if (!eat_punct(",")) break;
        }
      }
      BRIDGECL_RETURN_IF_ERROR(expect_punct(")"));
      e = std::move(call);
      continue;
    }
    if (cur().is_punct("[")) {
      take();
      auto idx = std::make_unique<IndexExpr>();
      idx->loc = loc;
      idx->base = std::move(e);
      BRIDGECL_ASSIGN_OR_RETURN(idx->index, ParseExpr());
      BRIDGECL_RETURN_IF_ERROR(expect_punct("]"));
      e = std::move(idx);
      continue;
    }
    if (cur().is_punct(".") || cur().is_punct("->")) {
      bool arrow = cur().is_punct("->");
      take();
      if (!cur().is(TokKind::kIdent))
        return Err(cur().loc, "expected member name");
      auto m = std::make_unique<MemberExpr>();
      m->loc = loc;
      m->base = std::move(e);
      m->member = take().text;
      m->is_arrow = arrow;
      e = std::move(m);
      continue;
    }
    if (cur().is_punct("++")) {
      take();
      auto u = std::make_unique<UnaryExpr>();
      u->loc = loc;
      u->op = UnaryOp::kPostInc;
      u->operand = std::move(e);
      e = std::move(u);
      continue;
    }
    if (cur().is_punct("--")) {
      take();
      auto u = std::make_unique<UnaryExpr>();
      u->loc = loc;
      u->op = UnaryOp::kPostDec;
      u->operand = std::move(e);
      e = std::move(u);
      continue;
    }
    // Template call `f<float>(x)` — only when f is a known template.
    if (cur().is_punct("<") && e->kind == ExprKind::kDeclRef &&
        template_fns_.count(e->As<DeclRefExpr>()->name)) {
      take();
      std::vector<Type::Ptr> targs;
      while (true) {
        BRIDGECL_ASSIGN_OR_RETURN(Type::Ptr t, ParseTypeName());
        targs.push_back(std::move(t));
        if (!eat_punct(",")) break;
      }
      BRIDGECL_RETURN_IF_ERROR(expect_punct(">"));
      BRIDGECL_RETURN_IF_ERROR(expect_punct("("));
      auto call = std::make_unique<CallExpr>();
      call->loc = loc;
      call->callee = std::move(e);
      call->type_args = std::move(targs);
      if (!cur().is_punct(")")) {
        while (true) {
          BRIDGECL_ASSIGN_OR_RETURN(ExprPtr a, ParseAssignment());
          call->args.push_back(std::move(a));
          if (!eat_punct(",")) break;
        }
      }
      BRIDGECL_RETURN_IF_ERROR(expect_punct(")"));
      e = std::move(call);
      continue;
    }
    return e;
  }
}

StatusOr<ExprPtr> Parser::ParsePrimary() {
  SourceLoc loc = cur().loc;
  if (cur().is(TokKind::kIntLit)) {
    Token t = take();
    auto e = std::make_unique<IntLitExpr>();
    e->loc = loc;
    e->value = t.int_value;
    e->is_unsigned = t.int_is_unsigned;
    e->is_long = t.int_is_long;
    e->spelling = t.text;
    return ExprPtr(std::move(e));
  }
  if (cur().is(TokKind::kFloatLit)) {
    Token t = take();
    auto e = std::make_unique<FloatLitExpr>();
    e->loc = loc;
    e->value = t.float_value;
    e->is_float = t.float_is_float;
    e->spelling = t.text;
    return ExprPtr(std::move(e));
  }
  if (cur().is(TokKind::kStringLit)) {
    Token t = take();
    auto e = std::make_unique<StringLitExpr>();
    e->loc = loc;
    e->spelling = t.text;
    return ExprPtr(std::move(e));
  }
  if (cur().is(TokKind::kCharLit)) {
    Token t = take();
    auto e = std::make_unique<IntLitExpr>();
    e->loc = loc;
    e->value = t.int_value;
    e->spelling = t.text;
    return ExprPtr(std::move(e));
  }
  if (cur().is(TokKind::kIdent)) {
    if (cur().is_ident("true") || cur().is_ident("false")) {
      bool v = cur().is_ident("true");
      take();
      auto e = std::make_unique<IntLitExpr>();
      e->loc = loc;
      e->value = v ? 1 : 0;
      e->spelling = v ? "true" : "false";
      return ExprPtr(std::move(e));
    }
    auto e = MakeRef(take().text);
    e->loc = loc;
    return ExprPtr(std::move(e));
  }
  if (cur().is_punct("(")) {
    take();
    auto p = std::make_unique<ParenExpr>();
    p->loc = loc;
    BRIDGECL_ASSIGN_OR_RETURN(p->inner, ParseExpr());
    BRIDGECL_RETURN_IF_ERROR(expect_punct(")"));
    return ExprPtr(std::move(p));
  }
  return Err(loc, "expected expression, found '" + cur().text + "'");
}

StatusOr<std::unique_ptr<TranslationUnit>> Parser::Parse() {
  auto tu = std::make_unique<TranslationUnit>();
  while (!at_end()) {
    BRIDGECL_RETURN_IF_ERROR(ParseTopLevel(tu.get()));
  }
  return tu;
}

}  // namespace

StatusOr<std::unique_ptr<TranslationUnit>> ParseTranslationUnit(
    const std::string& source, const ParseOptions& opts,
    DiagnosticEngine& diags) {
  BRIDGECL_ASSIGN_OR_RETURN(std::vector<Token> toks, Lex(source, diags));
  Parser p(std::move(toks), opts.dialect, diags);
  return p.Parse();
}

}  // namespace bridgecl::lang
