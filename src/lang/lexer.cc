#include "lang/lexer.h"

#include <cctype>
#include <cstdlib>
#include <cstring>

#include "support/strings.h"

namespace bridgecl::lang {
namespace {

/// Character-level cursor with line/column tracking.
class Cursor {
 public:
  explicit Cursor(const std::string& s) : s_(s) {}

  bool done() const { return pos_ >= s_.size(); }
  char peek(size_t ahead = 0) const {
    size_t p = pos_ + ahead;
    return p < s_.size() ? s_[p] : '\0';
  }
  char advance() {
    char c = s_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }
  SourceLoc loc() const { return {line_, col_}; }

 private:
  const std::string& s_;
  size_t pos_ = 0;
  uint32_t line_ = 1;
  uint32_t col_ = 1;
};

bool IsIdentStart(char c) { return std::isalpha((unsigned char)c) || c == '_'; }
bool IsIdentChar(char c) { return std::isalnum((unsigned char)c) || c == '_'; }

/// Multi-character punctuation, longest first.
const char* const kPuncts[] = {
    "<<<", ">>>", "<<=", ">>=", "...",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "::",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
    "?", ":", ";", ",", ".", "(", ")", "[", "]", "{", "}", "#",
};

struct RawToken {
  Token tok;
};

/// Pass 1: strip comments and process preprocessor lines, expanding
/// object-like macros textually. Produces a cleaned source string plus a
/// macro table applied during tokenization (identifier-level expansion).
Status Preprocess(const std::string& in, DiagnosticEngine& diags,
                  std::string* out,
                  std::unordered_map<std::string, std::string>* macros) {
  out->reserve(in.size());
  size_t i = 0;
  uint32_t line = 1;
  bool at_line_start = true;
  while (i < in.size()) {
    char c = in[i];
    // Comments.
    if (c == '/' && i + 1 < in.size() && in[i + 1] == '/') {
      while (i < in.size() && in[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < in.size() && in[i + 1] == '*') {
      i += 2;
      while (i + 1 < in.size() && !(in[i] == '*' && in[i + 1] == '/')) {
        if (in[i] == '\n') {
          ++line;
          out->push_back('\n');  // keep line numbers stable
        }
        ++i;
      }
      i += 2;
      continue;
    }
    // Line continuation.
    if (c == '\\' && i + 1 < in.size() && in[i + 1] == '\n') {
      i += 2;
      ++line;
      out->push_back('\n');
      continue;
    }
    // Preprocessor directive.
    if (c == '#' && at_line_start) {
      size_t end = in.find('\n', i);
      if (end == std::string::npos) end = in.size();
      // Honor line continuations inside the directive.
      while (end > i && end < in.size() && in[end - 1] == '\\') {
        end = in.find('\n', end + 1);
        if (end == std::string::npos) end = in.size();
      }
      std::string dir(in.substr(i, end - i));
      dir = ReplaceAll(dir, "\\\n", " ");
      std::string_view body = StripAsciiWhitespace(std::string_view(dir).substr(1));
      if (StartsWith(body, "define")) {
        std::string_view rest = StripAsciiWhitespace(body.substr(6));
        size_t j = 0;
        while (j < rest.size() && IsIdentChar(rest[j])) ++j;
        std::string name(rest.substr(0, j));
        if (name.empty()) {
          diags.Error({line, 1}, "malformed #define");
          return InvalidArgumentError("malformed #define");
        }
        if (j < rest.size() && rest[j] == '(') {
          diags.Error({line, 1},
                      "function-like macros are not supported: " + name);
          return UnimplementedError("function-like macro " + name);
        }
        std::string value(StripAsciiWhitespace(rest.substr(j)));
        (*macros)[name] = value;
      }
      // #pragma, #include, #undef, #if* are skipped: our corpus keeps
      // conditional code out of kernels. Emit newlines for line tracking.
      for (size_t k = i; k < end; ++k)
        if (in[k] == '\n') {
          ++line;
          out->push_back('\n');
        }
      i = end;
      continue;
    }
    if (c == '\n') {
      ++line;
      at_line_start = true;
    } else if (!std::isspace((unsigned char)c)) {
      at_line_start = false;
    }
    out->push_back(c);
    ++i;
  }
  return OkStatus();
}

}  // namespace

StatusOr<std::vector<Token>> Lex(const std::string& source,
                                 DiagnosticEngine& diags,
                                 const LexOptions& opts) {
  std::string clean;
  std::unordered_map<std::string, std::string> macros;
  BRIDGECL_RETURN_IF_ERROR(Preprocess(source, diags, &clean, &macros));

  std::vector<Token> toks;
  Cursor cur(clean);
  while (!cur.done()) {
    char c = cur.peek();
    if (std::isspace((unsigned char)c)) {
      cur.advance();
      continue;
    }
    SourceLoc loc = cur.loc();

    // Identifier / keyword / macro use.
    if (IsIdentStart(c)) {
      std::string name;
      while (!cur.done() && IsIdentChar(cur.peek())) name += cur.advance();
      auto it = macros.find(name);
      if (it != macros.end() && !it->second.empty()) {
        // Expand by re-lexing the macro body (bounded chain depth).
        std::string body = it->second;
        for (int depth = 0; depth < 16; ++depth) {
          auto it2 = macros.find(body);
          if (it2 == macros.end()) break;
          body = it2->second;
        }
        DiagnosticEngine sub;
        auto subtoks = Lex(body, sub, opts);
        if (!subtoks.ok()) return subtoks.status();
        for (Token t : *subtoks) {
          if (t.kind == TokKind::kEnd) break;
          t.loc = loc;
          toks.push_back(std::move(t));
        }
        continue;
      }
      Token t;
      t.kind = TokKind::kIdent;
      t.text = std::move(name);
      t.loc = loc;
      toks.push_back(std::move(t));
      continue;
    }

    // Numeric literal.
    if (std::isdigit((unsigned char)c) ||
        (c == '.' && std::isdigit((unsigned char)cur.peek(1)))) {
      std::string num;
      bool is_float = false;
      bool is_hex = false;
      if (c == '0' && (cur.peek(1) == 'x' || cur.peek(1) == 'X')) {
        num += cur.advance();
        num += cur.advance();
        is_hex = true;
        while (!cur.done() && std::isxdigit((unsigned char)cur.peek()))
          num += cur.advance();
      } else {
        while (!cur.done() && std::isdigit((unsigned char)cur.peek()))
          num += cur.advance();
        if (cur.peek() == '.') {
          is_float = true;
          num += cur.advance();
          while (!cur.done() && std::isdigit((unsigned char)cur.peek()))
            num += cur.advance();
        }
        if (cur.peek() == 'e' || cur.peek() == 'E') {
          char n1 = cur.peek(1);
          char n2 = cur.peek(2);
          if (std::isdigit((unsigned char)n1) ||
              ((n1 == '+' || n1 == '-') && std::isdigit((unsigned char)n2))) {
            is_float = true;
            num += cur.advance();  // e
            if (cur.peek() == '+' || cur.peek() == '-') num += cur.advance();
            while (!cur.done() && std::isdigit((unsigned char)cur.peek()))
              num += cur.advance();
          }
        }
      }
      Token t;
      t.loc = loc;
      // Suffixes.
      bool suf_f = false, suf_u = false, suf_l = false;
      while (!cur.done()) {
        char s = cur.peek();
        if ((s == 'f' || s == 'F') && (is_float || !is_hex)) {
          if (!is_float && !is_hex) {
            // "1f" is not valid C; treat as identifier boundary.
            break;
          }
          suf_f = true;
          num += cur.advance();
        } else if (s == 'u' || s == 'U') {
          suf_u = true;
          num += cur.advance();
        } else if (s == 'l' || s == 'L') {
          suf_l = true;
          num += cur.advance();
        } else {
          break;
        }
      }
      t.text = num;
      if (is_float || suf_f) {
        t.kind = TokKind::kFloatLit;
        t.float_value = std::strtod(num.c_str(), nullptr);
        t.float_is_float = suf_f;
      } else {
        t.kind = TokKind::kIntLit;
        t.int_value = std::strtoull(num.c_str(), nullptr, 0);
        t.int_is_unsigned = suf_u;
        t.int_is_long = suf_l;
      }
      toks.push_back(std::move(t));
      continue;
    }

    // String literal (kept verbatim; needed by the host rewriter).
    if (c == '"') {
      std::string text;
      text += cur.advance();
      while (!cur.done() && cur.peek() != '"') {
        if (cur.peek() == '\\') text += cur.advance();
        if (!cur.done()) text += cur.advance();
      }
      if (cur.done()) {
        diags.Error(loc, "unterminated string literal");
        return InvalidArgumentError("unterminated string literal");
      }
      text += cur.advance();
      Token t;
      t.kind = TokKind::kStringLit;
      t.text = std::move(text);
      t.loc = loc;
      toks.push_back(std::move(t));
      continue;
    }

    // Character literal.
    if (c == '\'') {
      std::string text;
      text += cur.advance();
      while (!cur.done() && cur.peek() != '\'') {
        if (cur.peek() == '\\') text += cur.advance();
        if (!cur.done()) text += cur.advance();
      }
      if (cur.done()) {
        diags.Error(loc, "unterminated character literal");
        return InvalidArgumentError("unterminated character literal");
      }
      text += cur.advance();
      Token t;
      t.kind = TokKind::kCharLit;
      t.text = std::move(text);
      t.loc = loc;
      // Value of simple 'c' / '\n' forms.
      if (t.text.size() == 3) t.int_value = (unsigned char)t.text[1];
      toks.push_back(std::move(t));
      continue;
    }

    // Punctuation (longest match).
    bool matched = false;
    for (const char* p : kPuncts) {
      size_t n = std::strlen(p);
      bool ok = true;
      for (size_t k = 0; k < n; ++k)
        if (cur.peek(k) != p[k]) {
          ok = false;
          break;
        }
      if (!ok) continue;
      std::string spelling = p;
      if ((spelling == "<<<" || spelling == ">>>") &&
          !opts.cuda_launch_brackets) {
        continue;  // fall through to shorter matches
      }
      for (size_t k = 0; k < n; ++k) cur.advance();
      Token t;
      t.kind = spelling == "<<<"   ? TokKind::kLaunchOpen
               : spelling == ">>>" ? TokKind::kLaunchClose
                                   : TokKind::kPunct;
      t.text = std::move(spelling);
      t.loc = loc;
      toks.push_back(std::move(t));
      matched = true;
      break;
    }
    if (matched) continue;

    diags.Error(loc, std::string("unexpected character '") + c + "'");
    return InvalidArgumentError(std::string("unexpected character '") + c +
                                "'");
  }

  Token end;
  end.kind = TokKind::kEnd;
  end.loc = cur.loc();
  toks.push_back(std::move(end));
  return toks;
}

}  // namespace bridgecl::lang
