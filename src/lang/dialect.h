// Surface dialects of the kernel language.
#pragma once

namespace bridgecl::lang {

enum class Dialect {
  kOpenCL,  // OpenCL C 1.2 kernel code
  kCUDA,    // CUDA C/C++ device code (compute capability 3.5 era)
};

inline const char* DialectName(Dialect d) {
  return d == Dialect::kOpenCL ? "OpenCL" : "CUDA";
}

}  // namespace bridgecl::lang
