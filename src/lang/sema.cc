#include "lang/sema.h"

#include <cassert>
#include <unordered_map>
#include <vector>

#include "lang/builtins.h"
#include "support/strings.h"

namespace bridgecl::lang {
namespace {

int ScalarRank(ScalarKind k) {
  switch (k) {
    case ScalarKind::kBool: return 1;
    case ScalarKind::kChar:
    case ScalarKind::kUChar: return 2;
    case ScalarKind::kShort:
    case ScalarKind::kUShort: return 3;
    case ScalarKind::kInt: return 4;
    case ScalarKind::kUInt: return 5;
    case ScalarKind::kLong:
    case ScalarKind::kLongLong: return 6;
    case ScalarKind::kULong:
    case ScalarKind::kULongLong:
    case ScalarKind::kSizeT: return 7;
    case ScalarKind::kFloat: return 8;
    case ScalarKind::kDouble: return 9;
    default: return 0;
  }
}

class Sema {
 public:
  Sema(TranslationUnit& tu, Dialect dialect, DiagnosticEngine& diags)
      : tu_(tu), dialect_(dialect), diags_(diags) {}

  Status Run();

 private:
  // Scope stack of variable bindings.
  struct Scope {
    std::unordered_map<std::string, VarDecl*> vars;
  };

  void Push() { scopes_.emplace_back(); }
  void Pop() { scopes_.pop_back(); }
  VarDecl* Lookup(const std::string& name) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto f = it->vars.find(name);
      if (f != it->vars.end()) return f->second;
    }
    return nullptr;
  }
  void Bind(VarDecl* v) { scopes_.back().vars[v->name] = v; }

  Status Err(SourceLoc loc, std::string msg) {
    diags_.Error(loc, msg);
    return InvalidArgumentError(std::move(msg));
  }

  /// Dialect type rules (§3.6): CUDA has no 8-/16-component vectors;
  /// OpenCL has no 1-component vectors and no longlong scalars/vectors.
  Status CheckTypeAllowed(SourceLoc loc, const Type::Ptr& t) {
    if (!t) return OkStatus();
    switch (t->kind()) {
      case TypeKind::kVector: {
        int w = t->vector_width();
        if (dialect_ == Dialect::kCUDA && (w == 8 || w == 16))
          return Err(loc, StrFormat("CUDA does not support %d-component "
                                    "vector types",
                                    w));
        if (dialect_ == Dialect::kOpenCL && w == 1)
          return Err(loc, "OpenCL does not support one-component vector "
                          "types");
        [[fallthrough]];
      }
      case TypeKind::kScalar: {
        ScalarKind k = t->scalar_kind();
        if (dialect_ == Dialect::kOpenCL &&
            (k == ScalarKind::kLongLong || k == ScalarKind::kULongLong))
          return Err(loc, "OpenCL does not support the longlong type");
        return OkStatus();
      }
      case TypeKind::kPointer:
        return CheckTypeAllowed(loc, t->pointee());
      case TypeKind::kArray:
        return CheckTypeAllowed(loc, t->element());
      case TypeKind::kStruct: {
        for (const StructField& f : t->struct_decl()->fields)
          BRIDGECL_RETURN_IF_ERROR(CheckTypeAllowed(loc, f.type));
        return OkStatus();
      }
      case TypeKind::kTexture:
        if (dialect_ == Dialect::kOpenCL)
          return Err(loc, "texture references are a CUDA feature");
        return OkStatus();
      default:
        return OkStatus();
    }
  }

  Status LayoutStruct(StructDecl* sd);
  Status AnalyzeFunction(FunctionDecl* fn);
  Status AnalyzeStmt(Stmt* s);
  Status AnalyzeVarDecl(VarDecl* v);
  Status AnalyzeExpr(Expr* e);
  void InferKernelParamSpaces(FunctionDecl* fn);
  void EstimateRegisters(FunctionDecl* fn);

  TranslationUnit& tu_;
  Dialect dialect_;
  DiagnosticEngine& diags_;
  std::vector<Scope> scopes_;
  FunctionDecl* current_fn_ = nullptr;
  std::unordered_map<std::string, TextureRefDecl*> textures_;
  int local_var_count_ = 0;
};

Status Sema::LayoutStruct(StructDecl* sd) {
  size_t offset = 0;
  size_t align = 1;
  for (StructField& f : sd->fields) {
    if (!f.type) return Err(sd->loc, "struct field without type");
    size_t a = f.type->Alignment();
    size_t sz = f.type->ByteSize();
    if (a == 0) a = 1;
    offset = (offset + a - 1) / a * a;
    f.offset = offset;
    offset += sz;
    if (a > align) align = a;
  }
  sd->alignment = align;
  sd->byte_size = (offset + align - 1) / align * align;
  if (sd->byte_size == 0) sd->byte_size = align;
  return OkStatus();
}

Status Sema::Run() {
  Push();  // file scope
  // Pass 1: layout structs, bind globals, collect textures.
  for (auto& d : tu_.decls) {
    switch (d->kind) {
      case DeclKind::kStruct:
        BRIDGECL_RETURN_IF_ERROR(LayoutStruct(d->As<StructDecl>()));
        break;
      case DeclKind::kVar: {
        auto* v = d->As<VarDecl>();
        BRIDGECL_RETURN_IF_ERROR(CheckTypeAllowed(v->loc, v->type));
        // File-scope variables without an explicit space: in OpenCL only
        // __constant file-scope variables are legal; in CUDA a plain
        // file-scope variable is host-side (we reject it in device code).
        if (v->quals.space == AddressSpace::kPrivate &&
            !v->quals.space_explicit) {
          return Err(v->loc,
                     "file-scope variable '" + v->name +
                         "' needs an address-space qualifier in device code");
        }
        // Unsized arrays are only legal as `extern __shared__` (CUDA
        // dynamic shared memory); anywhere else the size is required.
        if (v->type && v->type->is_array() && v->type->array_extent() == 0 &&
            !(v->quals.is_extern &&
              v->quals.space == AddressSpace::kLocal)) {
          return Err(v->loc, "array '" + v->name + "' needs a size");
        }
        // Table 1: OpenCL has no static global-memory allocation — only
        // __constant program-scope variables are legal (§4.3).
        if (dialect_ == Dialect::kOpenCL &&
            v->quals.space != AddressSpace::kConstant) {
          return Err(v->loc,
                     "OpenCL program-scope variable '" + v->name +
                         "' must be in the __constant address space");
        }
        Bind(v);
        if (v->init) BRIDGECL_RETURN_IF_ERROR(AnalyzeExpr(v->init.get()));
        break;
      }
      case DeclKind::kTextureRef:
        textures_[d->name] = d->As<TextureRefDecl>();
        break;
      default:
        break;
    }
  }
  // Pass 2: function bodies.
  for (auto& d : tu_.decls) {
    if (d->kind != DeclKind::kFunction) continue;
    BRIDGECL_RETURN_IF_ERROR(AnalyzeFunction(d->As<FunctionDecl>()));
  }
  Pop();
  return OkStatus();
}

void Sema::InferKernelParamSpaces(FunctionDecl* fn) {
  // CUDA kernels receive raw pointers; the paper's CU→CL translator "adds
  // an appropriate address space qualifier to a pointer using type
  // information". Default inference: kernel pointer params point to global
  // memory unless explicitly qualified.
  if (dialect_ != Dialect::kCUDA || !fn->quals.is_kernel) return;
  for (auto& p : fn->params) {
    if (p->type && p->type->is_pointer() &&
        p->type->pointee_space() == AddressSpace::kPrivate &&
        !p->quals.space_explicit) {
      p->type = Type::Pointer(p->type->pointee(), AddressSpace::kGlobal);
    }
  }
}

void Sema::EstimateRegisters(FunctionDecl* fn) {
  // Heuristic register-pressure model: a base cost plus the function's
  // private scalars. Drives the occupancy computation in simgpu. Kernels
  // can override via a `__launch_bounds__`-style table at module build
  // time; this estimate is the default.
  int regs = 10 + 2 * local_var_count_ + static_cast<int>(fn->params.size());
  fn->register_estimate = regs;
}

Status Sema::AnalyzeFunction(FunctionDecl* fn) {
  current_fn_ = fn;
  local_var_count_ = 0;
  InferKernelParamSpaces(fn);
  Push();
  for (auto& p : fn->params) {
    p->is_param = true;
    BRIDGECL_RETURN_IF_ERROR(CheckTypeAllowed(p->loc, p->type));
    Bind(p.get());
  }
  if (fn->body) BRIDGECL_RETURN_IF_ERROR(AnalyzeStmt(fn->body.get()));
  Pop();
  EstimateRegisters(fn);
  current_fn_ = nullptr;
  return OkStatus();
}

Status Sema::AnalyzeVarDecl(VarDecl* v) {
  ++local_var_count_;
  BRIDGECL_RETURN_IF_ERROR(CheckTypeAllowed(v->loc, v->type));
  if (v->init) {
    BRIDGECL_RETURN_IF_ERROR(AnalyzeExpr(v->init.get()));
    // Propagate pointee address space into unqualified pointer locals, so
    // `int* p = gptr;` inherits __global from `gptr` (needed by CU→CL).
    if (v->type && v->type->is_pointer() &&
        v->type->pointee_space() == AddressSpace::kPrivate &&
        v->init->type && v->init->type->is_pointer() &&
        v->init->type->pointee_space() != AddressSpace::kPrivate) {
      v->type =
          Type::Pointer(v->type->pointee(), v->init->type->pointee_space());
    }
  }
  Bind(v);
  return OkStatus();
}

Status Sema::AnalyzeStmt(Stmt* s) {
  switch (s->kind) {
    case StmtKind::kCompound: {
      Push();
      for (auto& st : s->As<CompoundStmt>()->body)
        BRIDGECL_RETURN_IF_ERROR(AnalyzeStmt(st.get()));
      Pop();
      return OkStatus();
    }
    case StmtKind::kDecl: {
      for (auto& v : s->As<DeclStmt>()->vars)
        BRIDGECL_RETURN_IF_ERROR(AnalyzeVarDecl(v.get()));
      return OkStatus();
    }
    case StmtKind::kExpr:
      return AnalyzeExpr(s->As<ExprStmt>()->expr.get());
    case StmtKind::kIf: {
      auto* i = s->As<IfStmt>();
      BRIDGECL_RETURN_IF_ERROR(AnalyzeExpr(i->cond.get()));
      BRIDGECL_RETURN_IF_ERROR(AnalyzeStmt(i->then_stmt.get()));
      if (i->else_stmt) BRIDGECL_RETURN_IF_ERROR(AnalyzeStmt(i->else_stmt.get()));
      return OkStatus();
    }
    case StmtKind::kFor: {
      auto* f = s->As<ForStmt>();
      Push();
      if (f->init) BRIDGECL_RETURN_IF_ERROR(AnalyzeStmt(f->init.get()));
      if (f->cond) BRIDGECL_RETURN_IF_ERROR(AnalyzeExpr(f->cond.get()));
      if (f->step) BRIDGECL_RETURN_IF_ERROR(AnalyzeExpr(f->step.get()));
      BRIDGECL_RETURN_IF_ERROR(AnalyzeStmt(f->body.get()));
      Pop();
      return OkStatus();
    }
    case StmtKind::kWhile: {
      auto* w = s->As<WhileStmt>();
      BRIDGECL_RETURN_IF_ERROR(AnalyzeExpr(w->cond.get()));
      return AnalyzeStmt(w->body.get());
    }
    case StmtKind::kDo: {
      auto* d = s->As<DoStmt>();
      BRIDGECL_RETURN_IF_ERROR(AnalyzeStmt(d->body.get()));
      return AnalyzeExpr(d->cond.get());
    }
    case StmtKind::kReturn: {
      auto* r = s->As<ReturnStmt>();
      if (r->value) return AnalyzeExpr(r->value.get());
      return OkStatus();
    }
    case StmtKind::kBreak:
    case StmtKind::kContinue:
    case StmtKind::kEmpty:
      return OkStatus();
  }
  return OkStatus();
}

Status Sema::AnalyzeExpr(Expr* e) {
  switch (e->kind) {
    case ExprKind::kIntLit: {
      auto* i = e->As<IntLitExpr>();
      if (i->is_long)
        e->type = Type::Scalar(i->is_unsigned ? ScalarKind::kULong
                                              : ScalarKind::kLong);
      else
        e->type =
            Type::Scalar(i->is_unsigned ? ScalarKind::kUInt : ScalarKind::kInt);
      return OkStatus();
    }
    case ExprKind::kFloatLit: {
      auto* f = e->As<FloatLitExpr>();
      e->type = Type::Scalar(f->is_float ? ScalarKind::kFloat
                                         : ScalarKind::kDouble);
      return OkStatus();
    }
    case ExprKind::kStringLit:
      e->type = Type::Pointer(Type::Scalar(ScalarKind::kChar),
                              AddressSpace::kConstant);
      return OkStatus();
    case ExprKind::kDeclRef: {
      auto* r = e->As<DeclRefExpr>();
      if (VarDecl* v = Lookup(r->name)) {
        r->var = v;
        // Arrays decay to a pointer carrying the variable's address space
        // (needed by the CUâCL pointer-space inference, Â§3.6).
        if (v->type && v->type->is_array())
          e->type = Type::Pointer(v->type->element(), v->quals.space);
        else
          e->type = v->type;
        return OkStatus();
      }
      if (auto it = textures_.find(r->name); it != textures_.end()) {
        r->is_builtin = false;
        e->type = Type::Texture(it->second->elem, it->second->elem_width,
                                it->second->dims);
        return OkStatus();
      }
      if (Type::Ptr bt = BuiltinVariableType(r->name, dialect_)) {
        r->is_builtin = true;
        e->type = bt;
        return OkStatus();
      }
      if (FunctionDecl* fn = tu_.FindFunction(r->name)) {
        r->function = fn;
        e->type = fn->return_type;
        return OkStatus();
      }
      if (FindBuiltinFunction(r->name, dialect_).has_value()) {
        r->is_builtin = true;
        e->type = Type::IntTy();  // refined at the call site
        return OkStatus();
      }
      // OpenCL sampler constants and enum-ish macros.
      if (StartsWith(r->name, "CLK_") || StartsWith(r->name, "CL_") ||
          StartsWith(r->name, "cuda")) {
        r->is_builtin = true;
        e->type = Type::UIntTy();
        return OkStatus();
      }
      return Err(e->loc, "use of undeclared identifier '" + r->name + "'");
    }
    case ExprKind::kUnary: {
      auto* u = e->As<UnaryExpr>();
      BRIDGECL_RETURN_IF_ERROR(AnalyzeExpr(u->operand.get()));
      Type::Ptr t = u->operand->type;
      switch (u->op) {
        case UnaryOp::kDeref:
          if (t && t->is_pointer())
            e->type = t->pointee();
          else if (t && t->is_array())
            e->type = t->element();
          else
            return Err(e->loc, "cannot dereference non-pointer");
          break;
        case UnaryOp::kAddrOf: {
          AddressSpace sp = AddressSpace::kPrivate;
          if (u->operand->kind == ExprKind::kDeclRef &&
              u->operand->As<DeclRefExpr>()->var) {
            VarDecl* v = u->operand->As<DeclRefExpr>()->var;
            sp = v->quals.space;
            v->address_taken = true;
          }
          e->type = Type::Pointer(t ? t : Type::IntTy(), sp);
          break;
        }
        case UnaryOp::kNot:
          e->type = Type::IntTy();
          break;
        default:
          e->type = t;
          break;
      }
      return OkStatus();
    }
    case ExprKind::kBinary: {
      auto* b = e->As<BinaryExpr>();
      BRIDGECL_RETURN_IF_ERROR(AnalyzeExpr(b->lhs.get()));
      BRIDGECL_RETURN_IF_ERROR(AnalyzeExpr(b->rhs.get()));
      Type::Ptr lt = b->lhs->type, rt = b->rhs->type;
      switch (b->op) {
        case BinaryOp::kEQ:
        case BinaryOp::kNE:
        case BinaryOp::kLT:
        case BinaryOp::kGT:
        case BinaryOp::kLE:
        case BinaryOp::kGE:
        case BinaryOp::kLAnd:
        case BinaryOp::kLOr:
          e->type = Type::IntTy();
          break;
        case BinaryOp::kComma:
          e->type = rt;
          break;
        default: {
          // Pointer arithmetic keeps the pointer type.
          if (lt && (lt->is_pointer() || lt->is_array()) &&
              (b->op == BinaryOp::kAdd || b->op == BinaryOp::kSub)) {
            e->type = lt->is_array()
                          ? Type::Pointer(lt->element(), AddressSpace::kPrivate)
                          : lt;
          } else if (rt && rt->is_pointer() && b->op == BinaryOp::kAdd) {
            e->type = rt;
          } else {
            e->type = ArithmeticResultType(lt, rt);
          }
          break;
        }
      }
      return OkStatus();
    }
    case ExprKind::kAssign: {
      auto* a = e->As<AssignExpr>();
      BRIDGECL_RETURN_IF_ERROR(AnalyzeExpr(a->lhs.get()));
      BRIDGECL_RETURN_IF_ERROR(AnalyzeExpr(a->rhs.get()));
      e->type = a->lhs->type;
      return OkStatus();
    }
    case ExprKind::kConditional: {
      auto* c = e->As<ConditionalExpr>();
      BRIDGECL_RETURN_IF_ERROR(AnalyzeExpr(c->cond.get()));
      BRIDGECL_RETURN_IF_ERROR(AnalyzeExpr(c->then_expr.get()));
      BRIDGECL_RETURN_IF_ERROR(AnalyzeExpr(c->else_expr.get()));
      e->type = c->then_expr->type;
      return OkStatus();
    }
    case ExprKind::kCall: {
      auto* c = e->As<CallExpr>();
      std::vector<Type::Ptr> arg_types;
      for (auto& a : c->args) {
        BRIDGECL_RETURN_IF_ERROR(AnalyzeExpr(a.get()));
        arg_types.push_back(a->type);
      }
      std::string name = c->callee_name();
      if (name.empty())
        return Err(e->loc, "indirect calls (function pointers) are not "
                           "supported in device code");
      if (FunctionDecl* fn = tu_.FindFunction(name)) {
        c->callee->As<DeclRefExpr>()->function = fn;
        Type::Ptr ret = fn->return_type;
        // Template call: the return type may be the template parameter;
        // substitute from explicit type args or the first argument.
        if (!fn->template_params.empty() && ret && ret->is_named()) {
          if (!c->type_args.empty())
            ret = c->type_args[0];
          else if (!arg_types.empty() && arg_types[0])
            ret = arg_types[0];
        }
        e->type = ret ? ret : Type::VoidTy();
        c->callee->type = e->type;
        return OkStatus();
      }
      if (FindBuiltinFunction(name, dialect_).has_value()) {
        c->callee->As<DeclRefExpr>()->is_builtin = true;
        // tex* calls: refine using the named texture reference argument.
        e->type = BuiltinResultType(name, dialect_, arg_types);
        c->callee->type = e->type;
        return OkStatus();
      }
      return Err(e->loc, "call to undeclared function '" + name + "'");
    }
    case ExprKind::kIndex: {
      auto* i = e->As<IndexExpr>();
      BRIDGECL_RETURN_IF_ERROR(AnalyzeExpr(i->base.get()));
      BRIDGECL_RETURN_IF_ERROR(AnalyzeExpr(i->index.get()));
      Type::Ptr bt = i->base->type;
      if (bt && bt->is_pointer())
        e->type = bt->pointee();
      else if (bt && bt->is_array())
        e->type = bt->element();
      else if (bt && bt->is_vector())
        e->type = Type::Scalar(bt->scalar_kind());
      else
        return Err(e->loc, "subscript on non-pointer type");
      return OkStatus();
    }
    case ExprKind::kMember: {
      auto* m = e->As<MemberExpr>();
      BRIDGECL_RETURN_IF_ERROR(AnalyzeExpr(m->base.get()));
      Type::Ptr bt = m->base->type;
      if (m->is_arrow) {
        if (!bt || !bt->is_pointer())
          return Err(e->loc, "'->' on non-pointer");
        bt = bt->pointee();
      }
      if (bt && bt->is_vector()) {
        std::vector<int> sw = ResolveSwizzle(m->member, bt->vector_width());
        if (sw.empty())
          return Err(e->loc, "invalid vector component '" + m->member + "'");
        m->is_swizzle = true;
        m->swizzle = sw;
        if (sw.size() == 1)
          e->type = Type::Scalar(bt->scalar_kind());
        else
          e->type = Type::Vector(bt->scalar_kind(), static_cast<int>(sw.size()));
        return OkStatus();
      }
      if (bt && bt->is_struct()) {
        const StructField* f = bt->struct_decl()->FindField(m->member);
        if (!f)
          return Err(e->loc, "no field '" + m->member + "' in struct '" +
                                 bt->struct_decl()->name + "'");
        e->type = f->type;
        return OkStatus();
      }
      return Err(e->loc, "member access on non-aggregate type");
    }
    case ExprKind::kCast: {
      auto* c = e->As<CastExpr>();
      BRIDGECL_RETURN_IF_ERROR(AnalyzeExpr(c->operand.get()));
      // Propagate pointee space through casts that do not re-qualify.
      Type::Ptr t = c->target;
      if (t && t->is_pointer() &&
          t->pointee_space() == AddressSpace::kPrivate && c->operand->type &&
          c->operand->type->is_pointer() &&
          c->operand->type->pointee_space() != AddressSpace::kPrivate) {
        t = Type::Pointer(t->pointee(), c->operand->type->pointee_space());
        c->target = t;
      }
      e->type = t;
      return OkStatus();
    }
    case ExprKind::kParen: {
      auto* p = e->As<ParenExpr>();
      BRIDGECL_RETURN_IF_ERROR(AnalyzeExpr(p->inner.get()));
      e->type = p->inner->type;
      return OkStatus();
    }
    case ExprKind::kInitList: {
      auto* l = e->As<InitListExpr>();
      for (auto& el : l->elems)
        BRIDGECL_RETURN_IF_ERROR(AnalyzeExpr(el.get()));
      e->type = nullptr;  // typed by context (declaration)
      return OkStatus();
    }
    case ExprKind::kSizeof: {
      auto* s = e->As<SizeofExpr>();
      if (s->arg_expr) BRIDGECL_RETURN_IF_ERROR(AnalyzeExpr(s->arg_expr.get()));
      e->type = Type::SizeTy();
      return OkStatus();
    }
    case ExprKind::kVectorLit: {
      auto* v = e->As<VectorLitExpr>();
      for (auto& el : v->elems)
        BRIDGECL_RETURN_IF_ERROR(AnalyzeExpr(el.get()));
      e->type = v->vec_type;
      return OkStatus();
    }
  }
  return OkStatus();
}

}  // namespace

std::vector<int> ResolveSwizzle(const std::string& member, int width) {
  std::vector<int> out;
  if (member == "lo" || member == "hi" || member == "even" ||
      member == "odd") {
    int half = width / 2;
    if (half == 0) return {};
    for (int i = 0; i < half; ++i) {
      if (member == "lo") out.push_back(i);
      else if (member == "hi") out.push_back(width - half + i);
      else if (member == "even") out.push_back(2 * i);
      else out.push_back(2 * i + 1);
    }
    return out;
  }
  if ((member[0] == 's' || member[0] == 'S') && member.size() > 1) {
    for (size_t i = 1; i < member.size(); ++i) {
      char c = member[i];
      int idx;
      if (c >= '0' && c <= '9') idx = c - '0';
      else if (c >= 'a' && c <= 'f') idx = 10 + c - 'a';
      else if (c >= 'A' && c <= 'F') idx = 10 + c - 'A';
      else return {};
      if (idx >= width) return {};
      out.push_back(idx);
    }
    return out.size() <= 16 ? out : std::vector<int>{};
  }
  // xyzw sequences (up to 4 components).
  if (member.size() > 4) return {};
  for (char c : member) {
    int idx;
    switch (c) {
      case 'x': idx = 0; break;
      case 'y': idx = 1; break;
      case 'z': idx = 2; break;
      case 'w': idx = 3; break;
      default: return {};
    }
    if (idx >= width) return {};
    out.push_back(idx);
  }
  return out;
}

Type::Ptr ArithmeticResultType(const Type::Ptr& a, const Type::Ptr& b) {
  if (!a) return b ? b : Type::IntTy();
  if (!b) return a;
  // Vector op anything: vector wins (scalar broadcasts).
  if (a->is_vector() && b->is_vector()) {
    // Same width assumed; element type by rank.
    ScalarKind k = ScalarRank(a->scalar_kind()) >= ScalarRank(b->scalar_kind())
                       ? a->scalar_kind()
                       : b->scalar_kind();
    return Type::Vector(k, a->vector_width());
  }
  if (a->is_vector()) return a;
  if (b->is_vector()) return b;
  if (!a->is_arithmetic() || !b->is_arithmetic()) return a;
  ScalarKind ka = a->scalar_kind(), kb = b->scalar_kind();
  ScalarKind k = ScalarRank(ka) >= ScalarRank(kb) ? ka : kb;
  // Promote sub-int to int.
  if (ScalarRank(k) < ScalarRank(ScalarKind::kInt)) k = ScalarKind::kInt;
  return Type::Scalar(k);
}

Status Analyze(TranslationUnit& tu, const SemaOptions& opts,
               DiagnosticEngine& diags) {
  Sema s(tu, opts.dialect, diags);
  return s.Run();
}

}  // namespace bridgecl::lang
