// AST for the BridgeCL kernel language. One AST serves both surface
// dialects (OpenCL C and CUDA C/C++ device code); dialect-specific surface
// syntax is normalized at parse time and re-materialized by the printer.
//
// Ownership: every node is uniquely owned by its parent via
// std::unique_ptr; the TranslationUnit owns all top-level declarations.
// Rewriters mutate the tree in place or splice in new nodes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "lang/type.h"
#include "support/source_location.h"

namespace bridgecl::lang {

// ---------------------------------------------------------------------------
// Qualifiers
// ---------------------------------------------------------------------------

/// Function-level qualifiers (union of both dialects).
struct FunctionQuals {
  bool is_kernel = false;      // __kernel / __global__
  bool is_device = false;      // CUDA __device__ (callable from device)
  bool is_host = false;        // CUDA __host__
  bool is_extern_c = false;
};

/// Variable-level qualifiers.
struct VarQuals {
  AddressSpace space = AddressSpace::kPrivate;
  bool is_const = false;
  bool is_extern = false;      // CUDA `extern __shared__ T v[];`
  bool is_static = false;
  bool is_restrict = false;
  bool is_volatile = false;
  /// OpenCL image access qualifiers on kernel params.
  bool read_only = false;
  bool write_only = false;
  /// True when the address space came from an explicit qualifier token in
  /// the source (as opposed to being inferred), so printers can decide
  /// whether to re-emit it.
  bool space_explicit = false;
};

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind : uint8_t {
  kIntLit,
  kFloatLit,
  kDeclRef,      // resolved or unresolved identifier
  kUnary,
  kBinary,
  kAssign,       // lhs op= rhs (op may be plain '=')
  kConditional,  // c ? a : b
  kCall,
  kIndex,        // base[idx]
  kMember,       // base.field  (swizzles included) or base->field
  kCast,         // (T)x, static_cast<T>(x), reinterpret_cast<T>(x)
  kParen,
  kInitList,     // { a, b, c }
  kSizeof,
  kVectorLit,    // OpenCL (float4)(a,b,c,d)
  kStringLit,    // "..." (printf/assert arguments; not evaluable data)
};

enum class UnaryOp : uint8_t {
  kPlus, kMinus, kNot, kBitNot, kPreInc, kPreDec, kPostInc, kPostDec,
  kDeref, kAddrOf,
};

enum class BinaryOp : uint8_t {
  kAdd, kSub, kMul, kDiv, kRem,
  kShl, kShr, kAnd, kOr, kXor,
  kLAnd, kLOr,
  kEQ, kNE, kLT, kGT, kLE, kGE,
  kComma,
};

enum class CastStyle : uint8_t { kCStyle, kStatic, kReinterpret, kConst };

struct Decl;   // forward
struct VarDecl;
struct FunctionDecl;

struct Expr {
  explicit Expr(ExprKind k) : kind(k) {}
  virtual ~Expr() = default;

  ExprKind kind;
  SourceLoc loc;
  /// Set by sema; null until then.
  Type::Ptr type;

  template <typename T>
  T* As() { return static_cast<T*>(this); }
  template <typename T>
  const T* As() const { return static_cast<const T*>(this); }
};

using ExprPtr = std::unique_ptr<Expr>;

struct IntLitExpr : Expr {
  IntLitExpr() : Expr(ExprKind::kIntLit) {}
  uint64_t value = 0;
  bool is_unsigned = false;
  bool is_long = false;
  std::string spelling;  // original text for round-trip printing
};

struct FloatLitExpr : Expr {
  FloatLitExpr() : Expr(ExprKind::kFloatLit) {}
  double value = 0;
  bool is_float = false;  // 'f' suffix
  std::string spelling;
};

struct StringLitExpr : Expr {
  StringLitExpr() : Expr(ExprKind::kStringLit) {}
  std::string spelling;  // includes the quotes
};

struct DeclRefExpr : Expr {
  DeclRefExpr() : Expr(ExprKind::kDeclRef) {}
  std::string name;
  /// Resolved by sema: variable, parameter, function, or builtin.
  VarDecl* var = nullptr;            // non-null for variable references
  FunctionDecl* function = nullptr;  // non-null for user function refs
  bool is_builtin = false;           // builtin function or builtin variable
};

struct UnaryExpr : Expr {
  UnaryExpr() : Expr(ExprKind::kUnary) {}
  UnaryOp op = UnaryOp::kPlus;
  ExprPtr operand;
};

struct BinaryExpr : Expr {
  BinaryExpr() : Expr(ExprKind::kBinary) {}
  BinaryOp op = BinaryOp::kAdd;
  ExprPtr lhs, rhs;
};

struct AssignExpr : Expr {
  AssignExpr() : Expr(ExprKind::kAssign) {}
  /// kAdd for '+=', etc. `compound` distinguishes plain '='.
  BinaryOp op = BinaryOp::kAdd;
  bool compound = false;
  ExprPtr lhs, rhs;
};

struct ConditionalExpr : Expr {
  ConditionalExpr() : Expr(ExprKind::kConditional) {}
  ExprPtr cond, then_expr, else_expr;
};

struct CallExpr : Expr {
  CallExpr() : Expr(ExprKind::kCall) {}
  ExprPtr callee;  // normally a DeclRefExpr
  std::vector<ExprPtr> args;
  /// For CUDA template calls `f<float>(x)`: explicit type arguments.
  std::vector<Type::Ptr> type_args;
  /// Callee name convenience (empty if callee is not a DeclRef).
  std::string callee_name() const;
};

struct IndexExpr : Expr {
  IndexExpr() : Expr(ExprKind::kIndex) {}
  ExprPtr base, index;
};

/// Member access. If `base` has vector type, `member` is a swizzle:
/// any of x|y|z|w sequences (up to 4), lo, hi, even, odd, or sN/SN with
/// hex component digits. Sema fills `swizzle` with component indices.
struct MemberExpr : Expr {
  MemberExpr() : Expr(ExprKind::kMember) {}
  ExprPtr base;
  std::string member;
  bool is_arrow = false;
  bool is_swizzle = false;
  std::vector<int> swizzle;  // component indices into the base vector
};

struct CastExpr : Expr {
  CastExpr() : Expr(ExprKind::kCast) {}
  CastStyle style = CastStyle::kCStyle;
  Type::Ptr target;
  /// Name used to spell the target type when it is a struct/typedef.
  std::string target_spelling;
  ExprPtr operand;
};

struct ParenExpr : Expr {
  ParenExpr() : Expr(ExprKind::kParen) {}
  ExprPtr inner;
};

struct InitListExpr : Expr {
  InitListExpr() : Expr(ExprKind::kInitList) {}
  std::vector<ExprPtr> elems;
};

struct SizeofExpr : Expr {
  SizeofExpr() : Expr(ExprKind::kSizeof) {}
  Type::Ptr arg_type;          // sizeof(T) — null if expression form
  std::string type_spelling;
  ExprPtr arg_expr;            // sizeof expr — null if type form
};

/// OpenCL vector literal `(float4)(a, b, c, d)`; also produced when
/// translating CUDA `make_float4(a,b,c,d)`.
struct VectorLitExpr : Expr {
  VectorLitExpr() : Expr(ExprKind::kVectorLit) {}
  Type::Ptr vec_type;
  std::vector<ExprPtr> elems;
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind : uint8_t {
  kCompound,
  kDecl,
  kExpr,
  kIf,
  kFor,
  kWhile,
  kDo,
  kReturn,
  kBreak,
  kContinue,
  kEmpty,
};

struct Stmt {
  explicit Stmt(StmtKind k) : kind(k) {}
  virtual ~Stmt() = default;
  StmtKind kind;
  SourceLoc loc;

  template <typename T>
  T* As() { return static_cast<T*>(this); }
  template <typename T>
  const T* As() const { return static_cast<const T*>(this); }
};

using StmtPtr = std::unique_ptr<Stmt>;

struct CompoundStmt : Stmt {
  CompoundStmt() : Stmt(StmtKind::kCompound) {}
  std::vector<StmtPtr> body;
};

struct DeclStmt : Stmt {
  DeclStmt() : Stmt(StmtKind::kDecl) {}
  /// One statement may declare several variables: `int a = 1, b = 2;`.
  std::vector<std::unique_ptr<VarDecl>> vars;
};

struct ExprStmt : Stmt {
  ExprStmt() : Stmt(StmtKind::kExpr) {}
  ExprPtr expr;
};

struct IfStmt : Stmt {
  IfStmt() : Stmt(StmtKind::kIf) {}
  ExprPtr cond;
  StmtPtr then_stmt;
  StmtPtr else_stmt;  // may be null
};

struct ForStmt : Stmt {
  ForStmt() : Stmt(StmtKind::kFor) {}
  StmtPtr init;   // DeclStmt or ExprStmt or null
  ExprPtr cond;   // may be null
  ExprPtr step;   // may be null
  StmtPtr body;
};

struct WhileStmt : Stmt {
  WhileStmt() : Stmt(StmtKind::kWhile) {}
  ExprPtr cond;
  StmtPtr body;
};

struct DoStmt : Stmt {
  DoStmt() : Stmt(StmtKind::kDo) {}
  StmtPtr body;
  ExprPtr cond;
};

struct ReturnStmt : Stmt {
  ReturnStmt() : Stmt(StmtKind::kReturn) {}
  ExprPtr value;  // may be null
};

struct BreakStmt : Stmt {
  BreakStmt() : Stmt(StmtKind::kBreak) {}
};
struct ContinueStmt : Stmt {
  ContinueStmt() : Stmt(StmtKind::kContinue) {}
};
struct EmptyStmt : Stmt {
  EmptyStmt() : Stmt(StmtKind::kEmpty) {}
};

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

enum class DeclKind : uint8_t {
  kVar,
  kParam,
  kFunction,
  kStruct,
  kTypedef,
  kTextureRef,
};

struct Decl {
  explicit Decl(DeclKind k) : kind(k) {}
  virtual ~Decl() = default;
  DeclKind kind;
  SourceLoc loc;
  std::string name;

  template <typename T>
  T* As() { return static_cast<T*>(this); }
  template <typename T>
  const T* As() const { return static_cast<const T*>(this); }
};

using DeclPtr = std::unique_ptr<Decl>;

/// A variable (global, local, or parameter — parameters set `is_param`).
struct VarDecl : Decl {
  VarDecl() : Decl(DeclKind::kVar) {}
  Type::Ptr type;
  VarQuals quals;
  ExprPtr init;              // may be null
  bool is_param = false;
  /// Spelling of the type when it involves a named struct or typedef, so
  /// the printer can reproduce it ("Node*", "float4").
  std::string type_spelling;
  /// Set by sema when the variable's address is taken (&v); the
  /// interpreter spills such variables to addressable private memory.
  bool address_taken = false;
  /// Filled by the interpreter's layout pass: frame slot / buffer binding.
  int slot = -1;
};

struct StructField {
  std::string name;
  Type::Ptr type;
  std::string type_spelling;
  size_t offset = 0;  // computed layout
};

struct StructDecl : Decl {
  StructDecl() : Decl(DeclKind::kStruct) {}
  std::vector<StructField> fields;
  bool is_typedef = false;  // `typedef struct {...} Name;`
  size_t byte_size = 0;
  size_t alignment = 1;
  const StructField* FindField(const std::string& n) const;
};

struct TypedefDecl : Decl {
  TypedefDecl() : Decl(DeclKind::kTypedef) {}
  Type::Ptr underlying;
};

/// CUDA `texture<float, 2, cudaReadModeElementType> tex;` file-scope
/// texture reference — visible to both host and device code in CUDA,
/// which is exactly the property that forces the §5 translation.
struct TextureRefDecl : Decl {
  TextureRefDecl() : Decl(DeclKind::kTextureRef) {}
  ScalarKind elem = ScalarKind::kFloat;
  int elem_width = 1;
  int dims = 1;
  bool normalized_coords = false;
};

struct TemplateParam {
  std::string name;  // `typename T`
};

struct FunctionDecl : Decl {
  FunctionDecl() : Decl(DeclKind::kFunction) {}
  FunctionQuals quals;
  Type::Ptr return_type;
  std::string return_type_spelling;
  std::vector<std::unique_ptr<VarDecl>> params;
  std::unique_ptr<CompoundStmt> body;  // null for prototypes
  /// CUDA C++ only; empty otherwise. The CU→CL rewriter specializes.
  std::vector<TemplateParam> template_params;
  /// Params passed by C++ reference (CUDA only): parallel to `params`.
  std::vector<bool> param_is_reference;
  /// Estimated registers per work-item; drives the occupancy model.
  /// Parsed from an optional `__launch_bounds__`-style annotation or
  /// estimated by sema from the body.
  int register_estimate = 0;
};

/// Whole parsed source file.
struct TranslationUnit {
  std::vector<DeclPtr> decls;
  /// Convenience lookups populated by sema.
  FunctionDecl* FindFunction(const std::string& name);
  const FunctionDecl* FindFunction(const std::string& name) const;
  std::vector<FunctionDecl*> Kernels();
};

// ---------------------------------------------------------------------------
// Small factory helpers used by the parser and the rewriters.
// ---------------------------------------------------------------------------

std::unique_ptr<IntLitExpr> MakeIntLit(uint64_t v);
std::unique_ptr<DeclRefExpr> MakeRef(std::string name);
std::unique_ptr<CallExpr> MakeCall(std::string callee,
                                   std::vector<ExprPtr> args);
std::unique_ptr<BinaryExpr> MakeBinary(BinaryOp op, ExprPtr l, ExprPtr r);
std::unique_ptr<AssignExpr> MakeAssign(ExprPtr l, ExprPtr r);
std::unique_ptr<MemberExpr> MakeMember(ExprPtr base, std::string member);
std::unique_ptr<IndexExpr> MakeIndex(ExprPtr base, ExprPtr index);

/// Deep copies (used when a rewrite duplicates subtrees, e.g. expanding
/// `v1.lo = v2.lo` into per-component assignments).
ExprPtr CloneExpr(const Expr& e);
StmtPtr CloneStmt(const Stmt& s);
std::unique_ptr<VarDecl> CloneVarDecl(const VarDecl& v);

const char* BinaryOpSpelling(BinaryOp op);
const char* UnaryOpSpelling(UnaryOp op);

}  // namespace bridgecl::lang
