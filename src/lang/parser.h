// Recursive-descent parser producing a TranslationUnit from kernel-language
// source in either dialect. The parser normalizes dialect surface syntax:
//   * OpenCL `__kernel` and CUDA `__global__`   -> FunctionQuals::is_kernel
//   * OpenCL `__local` and CUDA `__shared__`    -> AddressSpace::kLocal
//   * OpenCL `__constant` / CUDA `__constant__` -> AddressSpace::kConstant
//   * OpenCL `__global` / CUDA `__device__`     -> AddressSpace::kGlobal
//   * pointer address-space position difference (§3.6) is normalized to the
//     OpenCL meaning (space of the pointee)
// so that rewriters transform one canonical AST.
#pragma once

#include <memory>
#include <string>

#include "lang/ast.h"
#include "lang/dialect.h"
#include "support/source_location.h"
#include "support/status.h"

namespace bridgecl::lang {

struct ParseOptions {
  Dialect dialect = Dialect::kOpenCL;
};

/// Parse a whole device-code source file.
StatusOr<std::unique_ptr<TranslationUnit>> ParseTranslationUnit(
    const std::string& source, const ParseOptions& opts,
    DiagnosticEngine& diags);

}  // namespace bridgecl::lang
