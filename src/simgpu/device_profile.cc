#include "simgpu/device_profile.h"

#include "support/strings.h"

namespace bridgecl::simgpu {

const DeviceProfile& TitanProfile() {
  static const DeviceProfile kProfile = [] {
    DeviceProfile p;
    p.name = "SimGPU GeForce GTX Titan";
    p.vendor = "BridgeCL (NVIDIA profile)";
    p.compute_units = 14;
    p.warp_size = 32;
    p.shared_mem_banks = 32;
    p.shared_mem_per_block = 48 * 1024;
    p.constant_mem_size = 64 * 1024;
    p.global_mem_size = 6ull * 1024 * 1024 * 1024;
    p.max_threads_per_block = 1024;
    p.max_threads_per_cu = 2048;
    p.max_registers_per_cu = 65536;
    p.clock_ghz = 0.837;
    // Titan (Kepler) shared memory is dual-mode: OpenCL drivers leave it
    // in 32-bit mode, CUDA uses 64-bit mode (paper §6.2).
    p.opencl_bank_mode = BankMode::k32Bit;
    p.cuda_bank_mode = BankMode::k64Bit;
    return p;
  }();
  return kProfile;
}

const DeviceProfile& HD7970Profile() {
  static const DeviceProfile kProfile = [] {
    DeviceProfile p;
    p.name = "SimGPU Radeon HD7970";
    p.vendor = "BridgeCL (AMD profile)";
    p.compute_units = 32;
    p.warp_size = 64;  // wavefront
    p.shared_mem_banks = 32;
    p.shared_mem_per_block = 32 * 1024;
    p.constant_mem_size = 64 * 1024;
    p.global_mem_size = 3ull * 1024 * 1024 * 1024;
    p.max_threads_per_block = 256;
    p.max_threads_per_cu = 2560;
    p.max_registers_per_cu = 65536;
    p.clock_ghz = 0.925;
    // GCN LDS is 32-bit banked; there is no CUDA mode at all.
    p.opencl_bank_mode = BankMode::k32Bit;
    p.cuda_bank_mode = BankMode::k32Bit;
    // Different cost balance: higher raw ALU throughput per CU, slower
    // host interconnect in our model.
    p.cost_alu = 0.9;
    p.cost_global_access = 46.0;
    p.copy_bandwidth_gbps = 8.0;
    p.launch_overhead_us = 3.5;
    p.api_overhead_us = 0.03;
    return p;
  }();
  return kProfile;
}

std::string SystemConfigurationTable() {
  const DeviceProfile& t = TitanProfile();
  const DeviceProfile& a = HD7970Profile();
  std::string out;
  out += "System configuration (simulated; cf. paper Table 2)\n";
  out += StrFormat("  %-22s %s\n", "GPU (NVIDIA profile):", t.name.c_str());
  out += StrFormat("    CUs=%d warp=%d shared/block=%zuKB const=%zuKB "
                   "clock=%.3fGHz banks=%d\n",
                   t.compute_units, t.warp_size,
                   t.shared_mem_per_block / 1024, t.constant_mem_size / 1024,
                   t.clock_ghz, t.shared_mem_banks);
  out += StrFormat("  %-22s %s\n", "GPU (AMD profile):", a.name.c_str());
  out += StrFormat("    CUs=%d wavefront=%d shared/block=%zuKB const=%zuKB "
                   "clock=%.3fGHz banks=%d\n",
                   a.compute_units, a.warp_size,
                   a.shared_mem_per_block / 1024, a.constant_mem_size / 1024,
                   a.clock_ghz, a.shared_mem_banks);
  out += "  Runtimes: mini-CUDA (cc 3.5 era) and mini-OpenCL 1.2 over "
         "simgpu\n";
  return out;
}

}  // namespace bridgecl::simgpu
