#include "simgpu/fault_injector.h"

#include "support/strings.h"

namespace bridgecl::simgpu {

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kGlobalAlloc: return "global-alloc";
    case FaultSite::kGlobalFree: return "global-free";
    case FaultSite::kSharedAlloc: return "shared-alloc";
    case FaultSite::kTransfer: return "transfer";
    case FaultSite::kMemoryAccess: return "memory-access";
    case FaultSite::kInstruction: return "instruction";
  }
  return "unknown";
}

Status FaultInjector::Consult(FaultSite site, size_t bytes, size_t* granted) {
  if (lost_)
    return DeviceLostError(
        "device lost; release the context and acquire a new one");
  uint64_t ordinal = counters_[static_cast<size_t>(site)]++;
  if (plan_.empty()) return OkStatus();

  for (auto it = plan_.points.begin(); it != plan_.points.end(); ++it) {
    if (it->site != site || it->nth != ordinal) continue;
    FaultPoint p = *it;
    // Every point fires at most once (its ordinal never recurs); removing
    // it keeps the plan's remaining points live and makes transient
    // retries succeed naturally.
    plan_.points.erase(it);
    last_fault_transient_ = p.transient;
    switch (p.kind) {
      case FaultKind::kDeviceLost:
        lost_ = true;
        last_fault_transient_ = false;  // device loss is never retryable
        return DeviceLostError(StrFormat(
            "injected device loss at %s #%llu", FaultSiteName(site),
            static_cast<unsigned long long>(ordinal)));
      case FaultKind::kTruncate:
        if (granted != nullptr) *granted = std::min(p.truncate_to, bytes);
        return InternalError(StrFormat(
            "injected fault: %s #%llu truncated after %zu of %zu bytes",
            FaultSiteName(site), static_cast<unsigned long long>(ordinal),
            granted != nullptr ? *granted : size_t{0}, bytes));
      case FaultKind::kError:
        if (site == FaultSite::kGlobalAlloc ||
            site == FaultSite::kSharedAlloc)
          return ResourceExhaustedError(StrFormat(
              "injected fault: %s #%llu (%zu bytes) failed",
              FaultSiteName(site), static_cast<unsigned long long>(ordinal),
              bytes));
        return InternalError(StrFormat(
            "injected fault: %s #%llu failed", FaultSiteName(site),
            static_cast<unsigned long long>(ordinal)));
    }
  }
  last_fault_transient_ = false;
  return OkStatus();
}

Status FaultInjector::OnGlobalAlloc(size_t bytes) {
  return Consult(FaultSite::kGlobalAlloc, bytes, nullptr);
}

Status FaultInjector::OnGlobalFree() {
  return Consult(FaultSite::kGlobalFree, 0, nullptr);
}

Status FaultInjector::OnSharedAlloc(size_t bytes) {
  return Consult(FaultSite::kSharedAlloc, bytes, nullptr);
}

Status FaultInjector::OnTransfer(size_t requested, size_t* granted) {
  if (granted != nullptr) *granted = requested;
  return Consult(FaultSite::kTransfer, requested, granted);
}

Status FaultInjector::OnMemoryAccess(uint64_t va, size_t len) {
  Status st = Consult(FaultSite::kMemoryAccess, len, nullptr);
  if (st.ok() || st.code() == StatusCode::kDeviceLost) return st;
  return Status(st.code(),
                st.message() +
                    StrFormat(" (access of %zu bytes at 0x%llx)", len,
                              static_cast<unsigned long long>(va)));
}

Status FaultInjector::OnInstruction() {
  return Consult(FaultSite::kInstruction, 0, nullptr);
}

Status TransferWithFaults(FaultInjector& injector, size_t size,
                          const std::function<void(size_t)>& move) {
  if (!injector.armed()) {
    move(size);
    return OkStatus();
  }
  size_t granted = size;
  Status st = injector.OnTransfer(size, &granted);
  for (int attempt = 0;
       !st.ok() && injector.last_fault_transient() &&
       attempt < FaultInjector::kMaxTransientRetries;
       ++attempt)
    st = injector.OnTransfer(size, &granted);
  if (st.ok()) {
    move(size);
    return OkStatus();
  }
  if (granted > 0 && granted < size) move(granted);  // partial DMA
  return st;
}

}  // namespace bridgecl::simgpu
