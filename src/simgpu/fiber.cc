#include "simgpu/fiber.h"

#include <ucontext.h>

#include <cassert>

namespace bridgecl::simgpu {

namespace {
enum class FiberState { kReady, kAtBarrier, kDone };
}  // namespace

struct FiberGroup::Impl {
  struct Fiber {
    ucontext_t ctx;
    std::vector<char> stack;
    FiberState state = FiberState::kReady;
    Status status;
  };

  size_t stack_bytes;
  ucontext_t main_ctx;
  std::vector<Fiber> fibers;
  const Task* task = nullptr;
  int current = -1;
  bool in_fiber = false;

  void RunFiberBody() {
    Fiber& f = fibers[current];
    f.status = (*task)(current);
    f.state = FiberState::kDone;
    // uc_link returns control to main_ctx.
  }
};

namespace {
// makecontext can only pass ints; hand the Impl over via a thread-local.
thread_local FiberGroup::Impl* g_active_impl = nullptr;

extern "C" void FiberTrampoline() {
  assert(g_active_impl != nullptr);
  g_active_impl->RunFiberBody();
}
}  // namespace

FiberGroup::FiberGroup(size_t stack_bytes) : impl_(std::make_unique<Impl>()) {
  impl_->stack_bytes = stack_bytes;
}

FiberGroup::~FiberGroup() = default;

bool FiberGroup::InFiber() const { return impl_->in_fiber; }

void FiberGroup::Barrier() {
  assert(impl_->in_fiber && "Barrier() outside of a running work-item");
  Impl* impl = impl_.get();
  impl->fibers[impl->current].state = FiberState::kAtBarrier;
  impl->in_fiber = false;
  swapcontext(&impl->fibers[impl->current].ctx, &impl->main_ctx);
  impl->in_fiber = true;
}

Status FiberGroup::Run(int count, const Task& task) {
  if (count <= 0) return OkStatus();
  Impl* impl = impl_.get();
  impl->task = &task;
  impl->fibers.clear();
  impl->fibers.resize(count);

  Impl* prev_active = g_active_impl;
  g_active_impl = impl;

  for (int i = 0; i < count; ++i) {
    Impl::Fiber& f = impl->fibers[i];
    f.stack.resize(impl->stack_bytes);
    getcontext(&f.ctx);
    f.ctx.uc_stack.ss_sp = f.stack.data();
    f.ctx.uc_stack.ss_size = f.stack.size();
    f.ctx.uc_link = &impl->main_ctx;
    makecontext(&f.ctx, FiberTrampoline, 0);
  }

  Status first_error;
  while (true) {
    int live = 0;
    int waiting = 0;
    for (int i = 0; i < count; ++i) {
      Impl::Fiber& f = impl->fibers[i];
      if (f.state != FiberState::kReady) continue;
      impl->current = i;
      impl->in_fiber = true;
      swapcontext(&impl->main_ctx, &f.ctx);
      impl->in_fiber = false;
      if (f.state == FiberState::kDone && !f.status.ok() &&
          first_error.ok()) {
        first_error = f.status;
      }
    }
    for (const Impl::Fiber& f : impl->fibers) {
      if (f.state == FiberState::kAtBarrier) {
        ++waiting;
        ++live;
      } else if (f.state != FiberState::kDone) {
        ++live;
      }
    }
    if (live == 0) break;
    // Every live fiber is parked at the barrier: release the whole group.
    // Work-items that already returned are tolerated (trailing early-exit
    // threads — common in guard-banded kernels).
    assert(waiting == live);
    for (Impl::Fiber& f : impl->fibers)
      if (f.state == FiberState::kAtBarrier) f.state = FiberState::kReady;
  }

  g_active_impl = prev_active;
  impl->task = nullptr;
  impl->fibers.clear();
  return first_error;
}

}  // namespace bridgecl::simgpu
