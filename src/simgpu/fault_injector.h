// Deterministic fault injection for the simulated device. A FaultPlan
// names injection points by (site, ordinal): "fail the 3rd global
// allocation", "truncate the 1st host<->device transfer after 64 bytes",
// "trap the interpreter at instruction 1000", "lose the device at the 2nd
// transfer". The FaultInjector is owned by simgpu::Device and consulted
// from VirtualMemory (alloc/free/resolve), the executor (per-statement
// traps, shared-memory mapping) and the native API layers (transfers), so
// every error path of the two wrapper stacks can be driven on purpose and
// reproduced exactly — the runtime counterpart of the paper's Table 3
// failure classification.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "support/status.h"

namespace bridgecl::simgpu {

/// Operation classes with independent deterministic counters.
enum class FaultSite : uint8_t {
  kGlobalAlloc,   // VirtualMemory::AllocGlobal
  kGlobalFree,    // VirtualMemory::FreeGlobal
  kSharedAlloc,   // per-block shared-memory mapping at kernel launch
  kTransfer,      // host<->device and device<->device copies (API layers)
  kMemoryAccess,  // VirtualMemory::Resolve (kernel + host accesses)
  kInstruction,   // one interpreted kernel statement
};

const char* FaultSiteName(FaultSite site);

enum class FaultKind : uint8_t {
  kError,       // the operation fails with a resource/internal error
  kTruncate,    // transfers only: move `truncate_to` bytes, then fail
  kDeviceLost,  // asynchronous device loss; sticky for the whole context
};

/// One injection point: fires when the site's counter reaches `nth`
/// (0-based over the lifetime of the plan).
struct FaultPoint {
  FaultSite site = FaultSite::kGlobalAlloc;
  uint64_t nth = 0;
  FaultKind kind = FaultKind::kError;
  /// Transient faults clear once they fire; a bounded retry of the same
  /// operation succeeds (the API layers retry up to kMaxTransientRetries).
  bool transient = false;
  /// kTruncate: bytes actually transferred before the failure.
  size_t truncate_to = 0;
};

struct FaultPlan {
  std::vector<FaultPoint> points;
  bool empty() const { return points.empty(); }
};

class FaultInjector {
 public:
  /// API layers retry an operation this many extra times when the fault
  /// that failed it was marked transient.
  static constexpr int kMaxTransientRetries = 3;

  /// Install a plan; resets all counters and the transient flag (but not
  /// a sticky device-lost state — that requires ResetContext()).
  void set_plan(FaultPlan plan) {
    plan_ = std::move(plan);
    counters_ = {};
    last_fault_transient_ = false;
  }
  const FaultPlan& plan() const { return plan_; }

  /// Cheap gate: callers on hot paths skip the consult entirely when no
  /// plan is armed and the device is healthy.
  bool armed() const { return !plan_.empty() || lost_; }

  bool device_lost() const { return lost_; }
  /// Models releasing the lost context and acquiring a fresh one.
  void ResetContext() {
    lost_ = false;
    plan_ = {};
    counters_ = {};
    last_fault_transient_ = false;
  }

  /// True when the most recent injected fault was marked transient (and
  /// has therefore been consumed); the API layers key their retry on it.
  bool last_fault_transient() const { return last_fault_transient_; }

  /// Lifetime count of operations seen at `site`; sweeps read this from a
  /// fault-free run to learn how many ordinals to inject over.
  uint64_t count(FaultSite site) const {
    return counters_[static_cast<size_t>(site)];
  }

  // -- snapshot/restore (src/snapshot, docs/SNAPSHOT.md) --------------------
  /// The injector's whole deterministic state: remaining plan points,
  /// per-site ordinal counters, and the sticky/transient flags. Restoring
  /// it makes an interrupted nth-fault sweep resume bit-identically — the
  /// next operation at a site sees exactly the ordinal it would have.
  struct State {
    FaultPlan plan;
    std::array<uint64_t, 6> counters = {};
    bool lost = false;
    bool last_fault_transient = false;
  };
  State ExportState() const {
    return State{plan_, counters_, lost_, last_fault_transient_};
  }
  void ImportState(const State& s) {
    plan_ = s.plan;
    counters_ = s.counters;
    lost_ = s.lost;
    last_fault_transient_ = s.last_fault_transient;
  }

  // -- consult hooks (one per site) -----------------------------------------
  Status OnGlobalAlloc(size_t bytes);
  Status OnGlobalFree();
  Status OnSharedAlloc(size_t bytes);
  /// `*granted` is set to the bytes the transfer may move: `requested`
  /// normally, less when a kTruncate point fires (the fault Status is
  /// still returned — partial DMA followed by failure).
  Status OnTransfer(size_t requested, size_t* granted);
  Status OnMemoryAccess(uint64_t va, size_t len);
  Status OnInstruction();

 private:
  Status Consult(FaultSite site, size_t bytes, size_t* granted);

  FaultPlan plan_;
  std::array<uint64_t, 6> counters_ = {};
  bool lost_ = false;
  bool last_fault_transient_ = false;
};

/// Run `op` (returning Status or StatusOr<T>), retrying up to
/// kMaxTransientRetries extra times while it fails with a fault the
/// injector marked transient. The API layers use this to model drivers
/// that retry recoverable DMA/allocation errors before reporting them.
template <typename Op>
auto RetryTransient(FaultInjector& injector, Op&& op) {
  auto result = op();
  for (int attempt = 0;
       !result.ok() && injector.last_fault_transient() &&
       attempt < FaultInjector::kMaxTransientRetries;
       ++attempt)
    result = op();
  return result;
}

/// Consult the injector as a DMA engine would before moving `size` bytes:
/// transient faults are retried, kTruncate points move a prefix and then
/// fail, device loss moves nothing. `move(n)` performs the actual copy of
/// the first n bytes and is invoked exactly once unless the fault moved
/// zero bytes.
Status TransferWithFaults(FaultInjector& injector, size_t size,
                          const std::function<void(size_t)>& move);

}  // namespace bridgecl::simgpu
