// Simulated device profiles. Two are provided, mirroring Table 2 of the
// paper: an NVIDIA GeForce GTX Titan-like profile and an AMD Radeon
// HD7970-like profile. All timing constants are model parameters, not
// measurements; they are chosen so that the *relative* effects the paper
// reports (bank modes, occupancy, wrapper overhead, transfer costs) have
// realistic magnitudes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace bridgecl::simgpu {

/// Shared-memory addressing mode (CUDA C Programming Guide, cc 3.x). The
/// paper discovered (§6.2) that on the Titan, OpenCL uses the 32-bit mode
/// while CUDA uses the 64-bit mode — the source of FT's 2-way bank
/// conflicts on doubles under OpenCL.
enum class BankMode { k32Bit, k64Bit };

struct DeviceProfile {
  std::string name;
  std::string vendor;
  // -- structure --
  int compute_units = 14;           // SMX / CU count
  int warp_size = 32;               // warp / wavefront
  int shared_mem_banks = 32;
  size_t shared_mem_per_block = 48 * 1024;
  size_t constant_mem_size = 64 * 1024;
  size_t global_mem_size = 6ull * 1024 * 1024 * 1024;
  int max_threads_per_block = 1024;
  int max_threads_per_cu = 2048;
  int max_registers_per_cu = 65536;
  int max_image2d_width = 65536;
  int max_image2d_height = 65535;
  /// Maximum width of a 1D image (buffer). The §5 discrepancy: CUDA linear
  /// 1D textures go to 2^27 texels; OpenCL 1D image buffers stop at the 2D
  /// image width. This is what makes kmeans/leukocyte/hybridsort
  /// untranslatable (Fig. 8a discussion).
  size_t max_image1d_width = 65536;
  size_t cuda_max_tex1d_linear_width = 1ull << 27;
  // -- timing model (cycles unless noted) --
  double clock_ghz = 0.837;
  double cost_alu = 1.0;            // int/float add/mul and friends
  double cost_div = 8.0;            // divides / transcendental lite
  double cost_math = 12.0;          // sqrt/exp/sin/...
  double cost_global_access = 40.0; // per coalesced 16-byte segment
  double cost_shared_access = 8.0;  // per bank word touched (a conflicted
                                    // word serializes the whole warp)
  double cost_constant_access = 4.0;
  double cost_image_access = 24.0;  // texture path (cached)
  double cost_barrier = 20.0;
  double cost_atomic = 60.0;
  // -- host-side costs (microseconds) --
  double copy_bandwidth_gbps = 10.0;  // PCIe-like
  double copy_latency_us = 3.0;
  double launch_overhead_us = 2.0;
  /// Effective retirement lanes per CU for the throughput model: the
  /// interpreter charges per-work-item costs that already include memory
  /// serialization, so a CU behaves like a modest SIMD engine rather than
  /// warp_size independent lanes.
  int effective_lanes_per_cu = 8;
  double api_overhead_us = 0.02;      // per host API call ("wrapper" cost)
  double device_query_us = 1.2;       // per device-info attribute query
  /// Default shared-memory bank mode per API; runtimes may override.
  BankMode opencl_bank_mode = BankMode::k32Bit;
  BankMode cuda_bank_mode = BankMode::k64Bit;
};

/// NVIDIA GeForce GTX Titan-like profile (paper Table 2).
const DeviceProfile& TitanProfile();
/// AMD Radeon HD7970-like profile (paper Table 2). Different CU count,
/// wavefront 64, different memory cost balance, no CUDA support.
const DeviceProfile& HD7970Profile();

/// Render the Table 2-style system configuration block for bench headers.
std::string SystemConfigurationTable();

}  // namespace bridgecl::simgpu
