// A flat 64-bit virtual address space for one simulated device. Device
// pointers are plain virtual addresses, which is what lets translated
// kernels do everything real GPU code does with pointers: arithmetic,
// casts, pointers embedded in structs (the heartwall failure case), and
// the paper's cl_mem ⇄ void* handle casting in wrappers (§4).
//
// Layout:
//   [kGlobalBase ...)     dynamically allocated global-memory buffers
//   [kConstantBase ...)   per-module constant memory region
//   [kSharedBase ...)     the shared/local memory of the block currently
//                         executing (blocks run one at a time)
//   [kPrivateBase ...)    per-work-item private stacks of the current block
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "support/status.h"

namespace bridgecl::simgpu {

enum class Segment : uint8_t { kGlobal, kConstant, kShared, kPrivate };

class VirtualMemory {
 public:
  static constexpr uint64_t kNullGuard = 0x1000;  // VA 0..4K never mapped
  static constexpr uint64_t kGlobalBase = 0x0000'0001'0000'0000ull;
  static constexpr uint64_t kConstantBase = 0x0000'7F00'0000'0000ull;
  static constexpr uint64_t kSharedBase = 0x0000'7E00'0000'0000ull;
  static constexpr uint64_t kPrivateBase = 0x0000'7D00'0000'0000ull;

  explicit VirtualMemory(size_t global_capacity)
      : global_capacity_(global_capacity) {}

  /// Allocate a global-memory buffer; returns its base VA.
  StatusOr<uint64_t> AllocGlobal(size_t bytes);
  /// Free a buffer previously returned by AllocGlobal.
  Status FreeGlobal(uint64_t va);

  /// (Re)map the fixed regions. Shared/private are remapped per block by
  /// the launcher; constant is mapped once per loaded module.
  void MapConstant(size_t bytes);
  void MapShared(size_t bytes);
  void MapPrivate(size_t bytes);

  /// Resolve `va..va+len` to host memory. Fails on unmapped or
  /// out-of-bounds accesses (the simulated segfault).
  StatusOr<std::byte*> Resolve(uint64_t va, size_t len);
  /// Segment of a mapped address (for access-cost classification).
  StatusOr<Segment> SegmentOf(uint64_t va) const;

  size_t global_in_use() const { return global_in_use_; }
  size_t global_capacity() const { return global_capacity_; }
  /// Number of live global allocations (leak checks in tests).
  size_t global_allocation_count() const { return global_allocs_.size(); }

  uint64_t constant_base() const { return kConstantBase; }
  uint64_t shared_base() const { return kSharedBase; }
  uint64_t private_base() const { return kPrivateBase; }

 private:
  struct Region {
    std::vector<std::byte> storage;
  };

  size_t global_capacity_;
  size_t global_in_use_ = 0;
  uint64_t next_global_ = kGlobalBase;
  std::map<uint64_t, Region> global_allocs_;  // base VA -> region
  Region constant_;
  Region shared_;
  Region private_;
};

}  // namespace bridgecl::simgpu
