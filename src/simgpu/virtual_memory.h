// A flat 64-bit virtual address space for one simulated device. Device
// pointers are plain virtual addresses, which is what lets translated
// kernels do everything real GPU code does with pointers: arithmetic,
// casts, pointers embedded in structs (the heartwall failure case), and
// the paper's cl_mem ⇄ void* handle casting in wrappers (§4).
//
// Layout:
//   [kGlobalBase ...)     dynamically allocated global-memory buffers
//   [kConstantBase ...)   per-module constant memory region
//   [kSharedBase ...)     the shared/local memory of the block currently
//                         executing (blocks run one at a time)
//   [kPrivateBase ...)    per-work-item private stacks of the current block
//
// Two accuracy modes, mirroring real allocator behavior:
//   * unguarded (default): each allocation's backing store is padded to the
//     256-byte allocation granule, like a real device allocator. Writes a
//     few bytes past the requested size land in the slack and corrupt
//     silently — exactly the failure mode real GPU code exhibits. Accesses
//     crossing the granule still hit unmapped space and fault.
//   * guarded: strict bounds. Poisoned redzones surround each allocation,
//     frees leave poisoned tombstones with generation tags, and every
//     out-of-bounds / use-after-free / double-free access fails with a
//     diagnostic naming the VA, segment, allocation extent and generation
//     (the device-side half of a cuda-memcheck-style tool).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "support/status.h"

namespace bridgecl::simgpu {

class FaultInjector;

enum class Segment : uint8_t { kGlobal, kConstant, kShared, kPrivate };

/// Human-readable segment name ("global", "constant", ...).
const char* SegmentName(Segment seg);

class VirtualMemory {
 public:
  static constexpr uint64_t kNullGuard = 0x1000;  // VA 0..4K never mapped
  static constexpr uint64_t kGlobalBase = 0x0000'0001'0000'0000ull;
  static constexpr uint64_t kConstantBase = 0x0000'7F00'0000'0000ull;
  static constexpr uint64_t kSharedBase = 0x0000'7E00'0000'0000ull;
  static constexpr uint64_t kPrivateBase = 0x0000'7D00'0000'0000ull;

  /// Worker slots: the block-parallel launcher gives each host worker its
  /// own shared/private window inside the 1 TiB segment span, at
  /// `segment base + slot * kWorkerSlotStride`. The stride is a power of
  /// two and a multiple of every bank-word size, so a VA rebased into
  /// slot w keeps its offset modulo any bank word — bank-conflict counts
  /// are bit-identical across slots (SharedAccessBankWords depends only
  /// on va modulo the word size). Slot 0 is the legacy single-threaded
  /// window.
  static constexpr uint64_t kWorkerSlotStride = 1ull << 33;  // 8 GiB
  static constexpr int kMaxWorkerSlots =
      static_cast<int>((kSharedBase - kPrivateBase) / kWorkerSlotStride);

  /// Allocation granule: base alignment and the unit backing stores are
  /// padded to in unguarded mode.
  static constexpr size_t kGranule = 256;
  /// Poisoned guard band around each guarded allocation.
  static constexpr size_t kRedzone = 64;
  static constexpr std::byte kRedzonePoison{0xA5};
  static constexpr std::byte kFreePoison{0xDD};

  explicit VirtualMemory(size_t global_capacity)
      : global_capacity_(global_capacity) {}

  /// Guarded mode applies to allocations made after the switch; existing
  /// regions keep the layout they were created with.
  void set_guarded(bool guarded) { guarded_ = guarded; }
  bool guarded() const { return guarded_; }

  /// Injector consulted (when armed) on every alloc/free/resolve; owned by
  /// the Device. May be null.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  /// Allocate a global-memory buffer; returns its base VA.
  StatusOr<uint64_t> AllocGlobal(size_t bytes);
  /// Free a buffer previously returned by AllocGlobal.
  Status FreeGlobal(uint64_t va);

  /// (Re)map the fixed regions. Shared/private are remapped per block by
  /// the launcher; constant is mapped once per loaded module. The
  /// slot-less forms map worker slot 0 (the serial engine's window).
  void MapConstant(size_t bytes);
  void MapShared(size_t bytes) { MapSharedSlot(0, bytes); }
  void MapPrivate(size_t bytes) { MapPrivateSlot(0, bytes); }
  void MapSharedSlot(int slot, size_t bytes);
  void MapPrivateSlot(int slot, size_t bytes);

  /// Pre-size the per-slot region tables so that workers can remap their
  /// own slots without synchronization. Must be called before (never
  /// during) a parallel phase; existing slot contents are preserved.
  void EnsureWorkerSlots(int slots);
  int worker_slots() const { return static_cast<int>(shared_slots_.size()); }

  /// Resolve `va..va+len` to host memory. Fails on unmapped or
  /// out-of-bounds accesses (the simulated segfault); in guarded mode the
  /// failure names the allocation, its extent and generation.
  StatusOr<std::byte*> Resolve(uint64_t va, size_t len);

  /// Base VA of the live global allocation containing `va`, or 0 if none.
  /// Used by the block-parallel launcher to detect kernel arguments that
  /// alias the same buffer (read-write hazard -> serial execution).
  uint64_t GlobalAllocationBaseOf(uint64_t va) const;
  /// Segment of a mapped address (for access-cost classification).
  StatusOr<Segment> SegmentOf(uint64_t va) const;

  size_t global_in_use() const { return global_in_use_; }
  size_t global_capacity() const { return global_capacity_; }
  /// Number of live global allocations (leak checks in tests).
  size_t global_allocation_count() const { return live_global_count_; }

  // -- snapshot/restore (src/snapshot, docs/SNAPSHOT.md) -------------------
  /// Plain-data image of one mapped region, including its full backing
  /// store (redzones and poison bytes included) and guard metadata.
  struct RegionState {
    uint64_t base = 0;  // VA key for global allocations; unused otherwise
    std::vector<std::byte> storage;
    uint64_t user_size = 0;
    uint64_t span = 0;
    uint64_t front_pad = 0;
    uint64_t generation = 0;
    bool freed = false;
  };
  /// Everything a snapshot image needs to rebuild this address space on
  /// another device: allocation table (live regions *and* guarded freed
  /// tombstones), the constant region, and the allocator cursors that make
  /// post-restore allocations land at the same VAs they would have.
  struct State {
    bool guarded = false;
    uint64_t global_in_use = 0;
    uint64_t live_global_count = 0;
    uint64_t next_global = kGlobalBase;
    uint64_t next_generation = 0;
    std::vector<RegionState> global_allocs;  // ascending base VA
    RegionState constant;
  };
  State ExportState() const;
  /// Replace all allocations, guard metadata and the constant region with
  /// `state`. The configured capacity is kept (cross-profile restore may
  /// land on a smaller device); fails with kResourceExhausted when the
  /// image holds more live memory than this device has. Shared/private
  /// worker slots are transient per-launch state and reset to empty.
  Status ImportState(const State& state);

  uint64_t constant_base() const { return kConstantBase; }
  uint64_t shared_base(int slot = 0) const {
    return kSharedBase + static_cast<uint64_t>(slot) * kWorkerSlotStride;
  }
  uint64_t private_base(int slot = 0) const {
    return kPrivateBase + static_cast<uint64_t>(slot) * kWorkerSlotStride;
  }

 private:
  struct Region {
    std::vector<std::byte> storage;
    size_t user_size = 0;   // bytes the program requested
    size_t span = 0;        // bytes addressable from the base VA
    size_t front_pad = 0;   // offset of the base VA inside `storage`
    uint64_t generation = 0;
    bool freed = false;     // guarded tombstone (storage poisoned)
  };

  StatusOr<std::byte*> ResolveGlobal(uint64_t va, size_t len);
  StatusOr<std::byte*> ResolveSlotted(uint64_t va, size_t len, uint64_t seg_base,
                                      std::vector<Region>& slots, Segment seg);

  bool guarded_ = false;
  FaultInjector* injector_ = nullptr;
  size_t global_capacity_;
  size_t global_in_use_ = 0;
  size_t live_global_count_ = 0;
  uint64_t next_global_ = kGlobalBase;
  // Atomic so that future device-side allocation events stay safe under
  // the block-parallel engine (generation tags are part of the guarded
  // use-after-free diagnostics and must never tear).
  std::atomic<uint64_t> next_generation_{0};
  std::map<uint64_t, Region> global_allocs_;  // base VA -> region
  Region constant_;
  // Worker-slot shared/private windows; index = slot. Sized by
  // EnsureWorkerSlots before a parallel phase so workers touch only their
  // own element.
  std::vector<Region> shared_slots_ = std::vector<Region>(1);
  std::vector<Region> private_slots_ = std::vector<Region>(1);
};

}  // namespace bridgecl::simgpu
