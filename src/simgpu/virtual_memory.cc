#include "simgpu/virtual_memory.h"

#include "support/strings.h"

namespace bridgecl::simgpu {

StatusOr<uint64_t> VirtualMemory::AllocGlobal(size_t bytes) {
  if (bytes == 0) return InvalidArgumentError("zero-size allocation");
  if (global_in_use_ + bytes > global_capacity_)
    return ResourceExhaustedError(
        StrFormat("device global memory exhausted: %zu in use, %zu requested,"
                  " %zu capacity",
                  global_in_use_, bytes, global_capacity_));
  // Bump allocation with a 256-byte alignment and a guard gap so that
  // out-of-bounds accesses fall into unmapped space and fail loudly.
  uint64_t base = (next_global_ + 255) & ~255ull;
  next_global_ = base + bytes + 256;
  Region r;
  r.storage.resize(bytes);
  global_allocs_.emplace(base, std::move(r));
  global_in_use_ += bytes;
  return base;
}

Status VirtualMemory::FreeGlobal(uint64_t va) {
  auto it = global_allocs_.find(va);
  if (it == global_allocs_.end())
    return InvalidArgumentError(
        StrFormat("free of unknown device pointer 0x%llx",
                  static_cast<unsigned long long>(va)));
  global_in_use_ -= it->second.storage.size();
  global_allocs_.erase(it);
  return OkStatus();
}

void VirtualMemory::MapConstant(size_t bytes) {
  constant_.storage.assign(bytes, std::byte{0});
}
void VirtualMemory::MapShared(size_t bytes) {
  shared_.storage.assign(bytes, std::byte{0});
}
void VirtualMemory::MapPrivate(size_t bytes) {
  private_.storage.assign(bytes, std::byte{0});
}

StatusOr<std::byte*> VirtualMemory::Resolve(uint64_t va, size_t len) {
  auto in = [&](uint64_t base, Region& r) -> std::byte* {
    if (va >= base && va + len <= base + r.storage.size())
      return r.storage.data() + (va - base);
    return nullptr;
  };
  // Order: constant (highest base) > shared > private > global.
  if (va >= kConstantBase) {
    if (std::byte* p = in(kConstantBase, constant_)) return p;
  } else if (va >= kSharedBase) {
    if (std::byte* p = in(kSharedBase, shared_)) return p;
  } else if (va >= kPrivateBase) {
    if (std::byte* p = in(kPrivateBase, private_)) return p;
  } else if (va >= kGlobalBase) {
    auto it = global_allocs_.upper_bound(va);
    if (it != global_allocs_.begin()) {
      --it;
      uint64_t base = it->first;
      Region& r = it->second;
      if (va + len <= base + r.storage.size())
        return r.storage.data() + (va - base);
    }
  }
  return InternalError(
      StrFormat("device memory fault: access of %zu bytes at 0x%llx", len,
                static_cast<unsigned long long>(va)));
}

StatusOr<Segment> VirtualMemory::SegmentOf(uint64_t va) const {
  if (va >= kConstantBase) return Segment::kConstant;
  if (va >= kSharedBase) return Segment::kShared;
  if (va >= kPrivateBase) return Segment::kPrivate;
  if (va >= kGlobalBase) return Segment::kGlobal;
  return InternalError(StrFormat("address 0x%llx is in no segment",
                                 static_cast<unsigned long long>(va)));
}

}  // namespace bridgecl::simgpu
