#include "simgpu/virtual_memory.h"

#include <algorithm>

#include "simgpu/fault_injector.h"
#include "support/strings.h"

namespace bridgecl::simgpu {

const char* SegmentName(Segment seg) {
  switch (seg) {
    case Segment::kGlobal: return "global";
    case Segment::kConstant: return "constant";
    case Segment::kShared: return "shared";
    case Segment::kPrivate: return "private";
  }
  return "unknown";
}

namespace {
size_t RoundUpToGranule(size_t bytes) {
  return (bytes + VirtualMemory::kGranule - 1) &
         ~(VirtualMemory::kGranule - 1);
}
}  // namespace

StatusOr<uint64_t> VirtualMemory::AllocGlobal(size_t bytes) {
  if (injector_ != nullptr && injector_->armed())
    BRIDGECL_RETURN_IF_ERROR(injector_->OnGlobalAlloc(bytes));
  if (bytes == 0) return InvalidArgumentError("zero-size allocation");
  if (global_in_use_ + bytes > global_capacity_)
    return ResourceExhaustedError(
        StrFormat("device global memory exhausted: %zu in use, %zu requested,"
                  " %zu capacity",
                  global_in_use_, bytes, global_capacity_));
  // Bump allocation with a granule-aligned base and a guard gap so that
  // accesses past an allocation's span fall into unmapped space.
  uint64_t base = (next_global_ + kGranule - 1) & ~uint64_t{kGranule - 1};
  Region r;
  r.user_size = bytes;
  r.generation = next_generation_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (guarded_) {
    // Strict span plus poisoned redzones on both sides of the user bytes.
    r.span = bytes;
    r.front_pad = kRedzone;
    r.storage.assign(kRedzone + bytes + kRedzone, kRedzonePoison);
    std::fill_n(r.storage.begin() + kRedzone, bytes, std::byte{0});
  } else {
    // Real allocators hand out whole granules: the slack past the
    // requested size is addressable and corrupts silently.
    r.span = RoundUpToGranule(bytes);
    r.front_pad = 0;
    r.storage.assign(r.span, std::byte{0});
  }
  next_global_ = base + r.span + kGranule;
  global_allocs_.emplace(base, std::move(r));
  global_in_use_ += bytes;
  ++live_global_count_;
  return base;
}

Status VirtualMemory::FreeGlobal(uint64_t va) {
  if (injector_ != nullptr && injector_->armed())
    BRIDGECL_RETURN_IF_ERROR(injector_->OnGlobalFree());
  auto it = global_allocs_.find(va);
  if (it == global_allocs_.end())
    return InvalidArgumentError(
        StrFormat("free of unknown device pointer 0x%llx",
                  static_cast<unsigned long long>(va)));
  Region& r = it->second;
  if (r.freed)
    return InvalidArgumentError(StrFormat(
        "double free of device pointer 0x%llx (global allocation of %zu"
        " bytes, generation %llu, already freed)",
        static_cast<unsigned long long>(va), r.user_size,
        static_cast<unsigned long long>(r.generation)));
  global_in_use_ -= r.user_size;
  --live_global_count_;
  if (r.front_pad > 0) {
    // Guarded: leave a poisoned tombstone so later accesses are diagnosed
    // as use-after-free (with the generation tag) instead of "unmapped".
    std::fill(r.storage.begin(), r.storage.end(), kFreePoison);
    r.freed = true;
  } else {
    global_allocs_.erase(it);
  }
  return OkStatus();
}

void VirtualMemory::MapConstant(size_t bytes) {
  constant_.storage.assign(bytes, std::byte{0});
  constant_.user_size = constant_.span = bytes;
}
void VirtualMemory::MapSharedSlot(int slot, size_t bytes) {
  Region& r = shared_slots_[static_cast<size_t>(slot)];
  r.storage.assign(bytes, std::byte{0});
  r.user_size = r.span = bytes;
}
void VirtualMemory::MapPrivateSlot(int slot, size_t bytes) {
  Region& r = private_slots_[static_cast<size_t>(slot)];
  r.storage.assign(bytes, std::byte{0});
  r.user_size = r.span = bytes;
}

void VirtualMemory::EnsureWorkerSlots(int slots) {
  size_t n = static_cast<size_t>(
      std::min(std::max(slots, 1), kMaxWorkerSlots));
  if (shared_slots_.size() < n) shared_slots_.resize(n);
  if (private_slots_.size() < n) private_slots_.resize(n);
}

uint64_t VirtualMemory::GlobalAllocationBaseOf(uint64_t va) const {
  auto it = global_allocs_.upper_bound(va);
  if (it == global_allocs_.begin()) return 0;
  auto prev = std::prev(it);
  const Region& r = prev->second;
  if (!r.freed && va < prev->first + r.span) return prev->first;
  return 0;
}

StatusOr<std::byte*> VirtualMemory::ResolveGlobal(uint64_t va, size_t len) {
  auto it = global_allocs_.upper_bound(va);
  if (it != global_allocs_.begin()) {
    auto prev = std::prev(it);
    uint64_t base = prev->first;
    Region& r = prev->second;
    if (r.freed) {
      if (va + len <= base + r.span + kRedzone)
        return InternalError(StrFormat(
            "guarded-memory fault: use-after-free access of %zu bytes at"
            " 0x%llx, %llu bytes into freed global allocation"
            " [0x%llx, +%zu) generation %llu",
            len, static_cast<unsigned long long>(va),
            static_cast<unsigned long long>(va - base),
            static_cast<unsigned long long>(base), r.user_size,
            static_cast<unsigned long long>(r.generation)));
    } else if (va + len <= base + r.span) {
      return r.storage.data() + r.front_pad + (va - base);
    } else if (r.front_pad > 0 && va < base + r.span + kRedzone) {
      return InternalError(StrFormat(
          "guarded-memory fault: access of %zu bytes at 0x%llx overruns"
          " global allocation [0x%llx, +%zu) generation %llu by %llu"
          " byte(s) into the redzone",
          len, static_cast<unsigned long long>(va),
          static_cast<unsigned long long>(base), r.user_size,
          static_cast<unsigned long long>(r.generation),
          static_cast<unsigned long long>(va + len - (base + r.span))));
    }
  }
  if (it != global_allocs_.end() && it->second.front_pad > 0 &&
      va + len > it->first - kRedzone)
    return InternalError(StrFormat(
        "guarded-memory fault: access of %zu bytes at 0x%llx underruns"
        " global allocation [0x%llx, +%zu) generation %llu (front"
        " redzone)",
        len, static_cast<unsigned long long>(va),
        static_cast<unsigned long long>(it->first), it->second.user_size,
        static_cast<unsigned long long>(it->second.generation)));
  return InternalError(StrFormat(
      "device memory fault: access of %zu bytes at 0x%llx (segment global,"
      " unmapped)",
      len, static_cast<unsigned long long>(va)));
}

StatusOr<std::byte*> VirtualMemory::ResolveSlotted(uint64_t va, size_t len,
                                                   uint64_t seg_base,
                                                   std::vector<Region>& slots,
                                                   Segment seg) {
  uint64_t slot = (va - seg_base) / kWorkerSlotStride;
  uint64_t base = seg_base + slot * kWorkerSlotStride;
  if (slot < slots.size()) {
    Region& r = slots[static_cast<size_t>(slot)];
    if (va + len <= base + r.span) return r.storage.data() + (va - base);
    return InternalError(StrFormat(
        "device memory fault: access of %zu bytes at 0x%llx overruns the"
        " %s segment [0x%llx, +%zu)",
        len, static_cast<unsigned long long>(va), SegmentName(seg),
        static_cast<unsigned long long>(base), r.span));
  }
  return InternalError(StrFormat(
      "device memory fault: access of %zu bytes at 0x%llx (segment %s,"
      " unmapped worker slot %llu)",
      len, static_cast<unsigned long long>(va), SegmentName(seg),
      static_cast<unsigned long long>(slot)));
}

StatusOr<std::byte*> VirtualMemory::Resolve(uint64_t va, size_t len) {
  if (injector_ != nullptr && injector_->armed())
    BRIDGECL_RETURN_IF_ERROR(injector_->OnMemoryAccess(va, len));
  // Order: constant (highest base) > shared > private > global.
  if (va >= kConstantBase) {
    Region& r = constant_;
    if (va + len <= kConstantBase + r.span)
      return r.storage.data() + (va - kConstantBase);
    return InternalError(StrFormat(
        "device memory fault: access of %zu bytes at 0x%llx overruns the"
        " constant segment [0x%llx, +%zu)",
        len, static_cast<unsigned long long>(va),
        static_cast<unsigned long long>(kConstantBase), r.span));
  }
  if (va >= kSharedBase)
    return ResolveSlotted(va, len, kSharedBase, shared_slots_,
                          Segment::kShared);
  if (va >= kPrivateBase)
    return ResolveSlotted(va, len, kPrivateBase, private_slots_,
                          Segment::kPrivate);
  if (va >= kGlobalBase) return ResolveGlobal(va, len);
  return InternalError(
      StrFormat("device memory fault: access of %zu bytes at 0x%llx"
                " (null-guard / unmapped low memory)",
                len, static_cast<unsigned long long>(va)));
}

VirtualMemory::State VirtualMemory::ExportState() const {
  State s;
  s.guarded = guarded_;
  s.global_in_use = global_in_use_;
  s.live_global_count = live_global_count_;
  s.next_global = next_global_;
  s.next_generation = next_generation_.load(std::memory_order_relaxed);
  s.global_allocs.reserve(global_allocs_.size());
  for (const auto& [base, r] : global_allocs_) {
    RegionState rs;
    rs.base = base;
    rs.storage = r.storage;
    rs.user_size = r.user_size;
    rs.span = r.span;
    rs.front_pad = r.front_pad;
    rs.generation = r.generation;
    rs.freed = r.freed;
    s.global_allocs.push_back(std::move(rs));
  }
  s.constant.storage = constant_.storage;
  s.constant.user_size = constant_.user_size;
  s.constant.span = constant_.span;
  return s;
}

Status VirtualMemory::ImportState(const State& state) {
  if (state.global_in_use > global_capacity_)
    return ResourceExhaustedError(StrFormat(
        "snapshot image holds %llu bytes of global memory but this device"
        " has only %zu",
        static_cast<unsigned long long>(state.global_in_use),
        global_capacity_));
  guarded_ = state.guarded;
  global_in_use_ = state.global_in_use;
  live_global_count_ = state.live_global_count;
  next_global_ = state.next_global;
  next_generation_.store(state.next_generation, std::memory_order_relaxed);
  global_allocs_.clear();
  for (const RegionState& rs : state.global_allocs) {
    Region r;
    r.storage = rs.storage;
    r.user_size = rs.user_size;
    r.span = rs.span;
    r.front_pad = rs.front_pad;
    r.generation = rs.generation;
    r.freed = rs.freed;
    global_allocs_.emplace(rs.base, std::move(r));
  }
  constant_ = Region{};
  constant_.storage = state.constant.storage;
  constant_.user_size = state.constant.user_size;
  constant_.span = state.constant.span;
  // Shared/private windows live only for the duration of one launch (the
  // scheduler executes commands eagerly, so no launch is ever in flight
  // at snapshot time); the next launch remaps them.
  shared_slots_ = std::vector<Region>(1);
  private_slots_ = std::vector<Region>(1);
  return OkStatus();
}

StatusOr<Segment> VirtualMemory::SegmentOf(uint64_t va) const {
  if (va >= kConstantBase) return Segment::kConstant;
  if (va >= kSharedBase) return Segment::kShared;
  if (va >= kPrivateBase) return Segment::kPrivate;
  if (va >= kGlobalBase) return Segment::kGlobal;
  return InternalError(StrFormat("address 0x%llx is in no segment",
                                 static_cast<unsigned long long>(va)));
}

}  // namespace bridgecl::simgpu
