// The simulated compute device: virtual memory, a deterministic simulated
// clock, an execution-cost accountant implementing the timing model, and
// run statistics. Both mini-runtimes (mocl, mcuda) own a Device each (or
// share one) and advance its clock through every API call, so "measured"
// times in the benchmarks are reproducible simulation outputs.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "simgpu/device_profile.h"
#include "simgpu/dim3.h"
#include "simgpu/fault_injector.h"
#include "simgpu/virtual_memory.h"
#include "support/status.h"

namespace bridgecl::trace {
class TraceRecorder;  // trace/trace.h — the per-command tracing subsystem
}

namespace bridgecl::simgpu {

/// Counters accumulated across kernel launches; benchmarks and tests read
/// these to verify modeled effects (bank conflicts, transfer counts).
struct DeviceStats {
  uint64_t kernels_launched = 0;
  uint64_t work_items_executed = 0;
  uint64_t global_accesses = 0;
  uint64_t shared_accesses = 0;
  uint64_t shared_bank_words = 0;  // words after bank-mode expansion
  uint64_t constant_accesses = 0;
  uint64_t image_accesses = 0;
  uint64_t atomics = 0;
  uint64_t barriers = 0;
  uint64_t host_to_device_bytes = 0;
  uint64_t device_to_host_bytes = 0;
  uint64_t device_to_device_bytes = 0;
  uint64_t api_calls = 0;
  uint64_t ops_executed = 0;
};

/// The two hardware engines of the dual-engine timing model
/// (docs/CONCURRENCY.md): one DMA engine serializes all copies, one
/// compute engine serializes all kernel launches. Commands on *different*
/// engines with no dependency between them overlap in simulated time —
/// the copy/compute overlap the paper's §3 queue semantics exist for.
enum class EngineId { kCopy = 0, kCompute = 1 };
inline constexpr int kEngineCount = 2;

class Device {
 public:
  explicit Device(const DeviceProfile& profile)
      : profile_(profile), vm_(profile.global_mem_size) {
    vm_.set_fault_injector(&faults_);
    // BRIDGECL_GUARDED=1 turns on guarded device memory everywhere (the
    // ctest `guarded` label runs the suite this way).
    if (const char* env = std::getenv("BRIDGECL_GUARDED");
        env != nullptr && env[0] != '\0' && env[0] != '0')
      vm_.set_guarded(true);
  }

  const DeviceProfile& profile() const { return profile_; }
  VirtualMemory& vm() { return vm_; }
  const VirtualMemory& vm() const { return vm_; }
  FaultInjector& faults() { return faults_; }
  const FaultInjector& faults() const { return faults_; }
  DeviceStats& stats() { return stats_; }
  const DeviceStats& stats() const { return stats_; }

  /// Active shared-memory bank mode. Runtimes set this when they attach
  /// (mocl → profile.opencl_bank_mode, mcuda → profile.cuda_bank_mode).
  BankMode bank_mode() const { return bank_mode_; }
  void set_bank_mode(BankMode m) { bank_mode_ = m; }

  // -- simulated time -----------------------------------------------------
  double now_us() const { return clock_us_; }
  void AdvanceUs(double us) {
    if (capturing_)
      captured_us_ += us;
    else
      clock_us_ += us;
  }

  /// Charge one host API call (the paper's wrapper-overhead unit).
  void ChargeApiCall(double multiplier = 1.0) {
    ++stats_.api_calls;
    AdvanceUs(profile_.api_overhead_us * multiplier);
  }
  /// Charge a host<->device or device<->device copy of `bytes`.
  void ChargeCopy(size_t bytes);
  /// Charge a kernel launch: fixed overhead plus compute time derived from
  /// the accumulated work-cycles and the kernel's occupancy.
  /// `total_cycles` is the sum over all work-items of their op costs;
  /// `regs_per_thread` feeds the occupancy model (§6.3).
  void ChargeKernel(double total_cycles, int regs_per_thread,
                    uint64_t work_items);

  /// Occupancy for a register count, as CUDA's occupancy calculator would
  /// report it: active threads per CU over the maximum.
  double OccupancyFor(int regs_per_thread) const;

  /// Cost in "bank words" of a shared-memory access of `bytes` at `va`
  /// under the active bank mode: the number of bank words the access
  /// spans (32-bit mode: 4-byte words; 64-bit mode: 8-byte words). An
  /// 8-byte access costs 2 words in 32-bit mode (two-way conflict for a
  /// warp of doubles) but 1 word in 64-bit mode — the FT effect (§6.2).
  int SharedAccessBankWords(uint64_t va, size_t bytes) const;

  // -- duration capture (command scheduler support) -----------------------
  // While capturing, AdvanceUs accumulates into a side counter instead of
  // the host clock: the scheduler runs a command's side effects eagerly,
  // measures what the command *would* have cost, and then places that
  // duration on an engine timeline. Stats updates are never captured —
  // only time. Captures do not nest (the exec closures touch device
  // primitives only, never other API entry points).
  void BeginCapture() {
    capturing_ = true;
    captured_us_ = 0;
  }
  double EndCapture() {
    capturing_ = false;
    return captured_us_;
  }
  bool capturing() const { return capturing_; }

  /// Reserve `dur_us` on engine `e`, starting no earlier than `ready_us`
  /// (the command's dependency horizon) nor before the engine is free.
  /// Returns the start time; the engine busy/overlap accounting updates
  /// incrementally. Deterministic: reservations are made in enqueue order.
  double ReserveEngine(EngineId e, double ready_us, double dur_us);

  /// Total busy time reserved on an engine since the last ResetClock.
  double EngineBusyUs(EngineId e) const {
    return engine_busy_us_[static_cast<int>(e)];
  }
  /// Time during which both engines were simultaneously busy — the
  /// overlap the dual-engine model buys (bench_ablation_overlap's ratio).
  double EngineOverlapUs() const { return engine_overlap_us_; }

  void ResetStats() { stats_ = DeviceStats{}; }
  void ResetClock() {
    clock_us_ = 0;
    captured_us_ = 0;
    capturing_ = false;
    engine_overlap_us_ = 0;
    for (int e = 0; e < kEngineCount; ++e) {
      engine_free_us_[e] = 0;
      engine_busy_us_[e] = 0;
      engine_intervals_[e].clear();
    }
  }

  // -- snapshot/restore (src/snapshot, docs/SNAPSHOT.md) -------------------
  /// Clock, statistics and engine-timeline state as one plain-data image.
  /// Virtual-memory and fault-injector state are exported through their
  /// own hooks (vm().ExportState(), faults().ExportState()).
  struct ExecState {
    DeviceStats stats;
    BankMode bank_mode = BankMode::k32Bit;
    double clock_us = 0;
    double engine_free_us[kEngineCount] = {0, 0};
    double engine_busy_us[kEngineCount] = {0, 0};
    double engine_overlap_us = 0;
    std::vector<std::pair<double, double>> engine_intervals[kEngineCount];
  };
  ExecState ExportExecState() const {
    ExecState s;
    s.stats = stats_;
    s.bank_mode = bank_mode_;
    s.clock_us = clock_us_;
    s.engine_overlap_us = engine_overlap_us_;
    for (int e = 0; e < kEngineCount; ++e) {
      s.engine_free_us[e] = engine_free_us_[e];
      s.engine_busy_us[e] = engine_busy_us_[e];
      s.engine_intervals[e] = engine_intervals_[e];
    }
    return s;
  }
  void ImportExecState(const ExecState& s) {
    stats_ = s.stats;
    bank_mode_ = s.bank_mode;
    clock_us_ = s.clock_us;
    capturing_ = false;
    captured_us_ = 0;
    engine_overlap_us_ = s.engine_overlap_us;
    for (int e = 0; e < kEngineCount; ++e) {
      engine_free_us_[e] = s.engine_free_us[e];
      engine_busy_us_[e] = s.engine_busy_us[e];
      engine_intervals_[e] = s.engine_intervals[e];
    }
  }

  /// The trace recorder attached to this device, or null. Owned by a
  /// trace::TraceSession (or equivalent), never by the device; recording
  /// only *reads* the clock and stats, so attaching a recorder cannot
  /// change any simulated value (docs/OBSERVABILITY.md).
  trace::TraceRecorder* tracer() const { return tracer_; }
  void set_tracer(trace::TraceRecorder* t) { tracer_ = t; }

 private:
  DeviceProfile profile_;
  FaultInjector faults_;  // must outlive vm_'s pointer to it
  VirtualMemory vm_;
  DeviceStats stats_;
  BankMode bank_mode_ = BankMode::k32Bit;
  double clock_us_ = 0;
  bool capturing_ = false;
  double captured_us_ = 0;
  // Per-engine timeline state. Intervals are naturally sorted and
  // non-overlapping: each reservation starts at max(ready, engine free),
  // which is never before the previous reservation's end on that engine.
  double engine_free_us_[kEngineCount] = {0, 0};
  double engine_busy_us_[kEngineCount] = {0, 0};
  double engine_overlap_us_ = 0;
  std::vector<std::pair<double, double>> engine_intervals_[kEngineCount];
  trace::TraceRecorder* tracer_ = nullptr;
};

}  // namespace bridgecl::simgpu
