#include "simgpu/device.h"

#include <algorithm>
#include <cmath>

namespace bridgecl::simgpu {

void Device::ChargeCopy(size_t bytes) {
  AdvanceUs(profile_.copy_latency_us +
            static_cast<double>(bytes) /
                (profile_.copy_bandwidth_gbps * 1e3));  // GB/s → bytes/us
}

double Device::ReserveEngine(EngineId e, double ready_us, double dur_us) {
  const int self = static_cast<int>(e);
  const int other = 1 - self;
  const double start = std::max(ready_us, engine_free_us_[self]);
  const double end = start + dur_us;
  // Overlap accounting: intersect the new interval with the other
  // engine's reservations. Its intervals are sorted, so walk from the
  // back and stop once they end before our start.
  const auto& peer = engine_intervals_[other];
  for (auto it = peer.rbegin(); it != peer.rend(); ++it) {
    if (it->second <= start) break;
    engine_overlap_us_ +=
        std::max(0.0, std::min(end, it->second) - std::max(start, it->first));
  }
  if (dur_us > 0) engine_intervals_[self].emplace_back(start, end);
  engine_free_us_[self] = end;
  engine_busy_us_[self] += dur_us;
  return start;
}

double Device::OccupancyFor(int regs_per_thread) const {
  if (regs_per_thread <= 0) regs_per_thread = 16;
  int by_regs = profile_.max_registers_per_cu / regs_per_thread;
  // Warp-granular allocation.
  by_regs = by_regs / profile_.warp_size * profile_.warp_size;
  int active = std::clamp(by_regs, profile_.warp_size,
                          profile_.max_threads_per_cu);
  return static_cast<double>(active) / profile_.max_threads_per_cu;
}

void Device::ChargeKernel(double total_cycles, int regs_per_thread,
                          uint64_t work_items) {
  ++stats_.kernels_launched;
  stats_.work_items_executed += work_items;
  double occupancy = OccupancyFor(regs_per_thread);
  // Machine throughput: CUs x effective lanes, derated by occupancy
  // (latency hiding). Cycles are per-work-item-summed, so dividing by
  // parallel lanes yields elapsed cycles.
  double lanes = static_cast<double>(profile_.compute_units) *
                 profile_.effective_lanes_per_cu * occupancy;
  double elapsed_cycles = total_cycles / std::max(1.0, lanes);
  double us = elapsed_cycles / (profile_.clock_ghz * 1e3);
  AdvanceUs(profile_.launch_overhead_us + us);
}

int Device::SharedAccessBankWords(uint64_t va, size_t bytes) const {
  if (bytes == 0) return 0;
  size_t word = bank_mode_ == BankMode::k32Bit ? 4 : 8;
  uint64_t first = va / word;
  uint64_t last = (va + bytes - 1) / word;
  return static_cast<int>(last - first + 1);
}

}  // namespace bridgecl::simgpu
