// 3-component extents shared by both execution models: an OpenCL NDRange
// (global work size) or a CUDA grid/block (§3.1 / Figure 1). The paper's
// key dimension-mismatch — an NDRange counts work-items while a grid
// counts blocks — is handled by the conversion helpers below.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace bridgecl::simgpu {

struct Dim3 {
  uint32_t x = 1, y = 1, z = 1;

  constexpr Dim3() = default;
  constexpr Dim3(uint32_t x_, uint32_t y_ = 1, uint32_t z_ = 1)
      : x(x_), y(y_), z(z_) {}

  constexpr uint64_t Count() const {
    return static_cast<uint64_t>(x) * y * z;
  }
  constexpr uint32_t operator[](int i) const {
    return i == 0 ? x : i == 1 ? y : z;
  }
  friend constexpr bool operator==(const Dim3& a, const Dim3& b) {
    return a.x == b.x && a.y == b.y && a.z == b.z;
  }
  std::string ToString() const {
    return "(" + std::to_string(x) + "," + std::to_string(y) + "," +
           std::to_string(z) + ")";
  }
};

/// OpenCL global/local work sizes → CUDA grid size (number of blocks).
/// Requires each gws component to be a multiple of the lws component (the
/// OpenCL 1.x rule); returns false otherwise.
inline bool NdrangeToGrid(const Dim3& gws, const Dim3& lws, Dim3* grid) {
  if (lws.x == 0 || lws.y == 0 || lws.z == 0) return false;
  if (gws.x == 0 || gws.y == 0 || gws.z == 0) return false;  // CL rule
  if (gws.x % lws.x || gws.y % lws.y || gws.z % lws.z) return false;
  *grid = Dim3(gws.x / lws.x, gws.y / lws.y, gws.z / lws.z);
  return true;
}

/// CUDA grid/block → OpenCL global work size (number of work-items).
inline Dim3 GridToNdrange(const Dim3& grid, const Dim3& block) {
  return Dim3(grid.x * block.x, grid.y * block.y, grid.z * block.z);
}

}  // namespace bridgecl::simgpu
