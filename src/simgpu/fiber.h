// Cooperatively scheduled fibers used to run a work-group's work-items
// concurrently on one OS thread. `barrier()` in a kernel suspends the
// current work-item until every live work-item in the group has reached
// the barrier — real OpenCL/CUDA work-group barrier semantics, which
// kernels like reduction/scan/FT depend on.
//
// Implementation: POSIX ucontext fibers with private stacks. The group
// scheduler runs work-items round-robin between barriers; a group with no
// barriers degenerates to plain sequential execution.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "support/status.h"

namespace bridgecl::simgpu {

/// Runs `count` tasks as fibers until all complete. Tasks may call
/// `Barrier()` (from inside the task, via the scheduler pointer handed to
/// them) any number of times; all live tasks must reach the barrier before
/// any proceeds. A task returning a non-ok Status aborts the group.
class FiberGroup {
 public:
  /// Task receives its index. It may call FiberGroup::Barrier() (through
  /// the pointer passed alongside) to synchronize with siblings.
  using Task = std::function<Status(int index)>;

  explicit FiberGroup(size_t stack_bytes = 256 * 1024);
  ~FiberGroup();

  FiberGroup(const FiberGroup&) = delete;
  FiberGroup& operator=(const FiberGroup&) = delete;

  /// Run `count` instances of `task` to completion. Returns the first
  /// non-ok status produced, or an error if the group deadlocks (some
  /// fibers wait at a barrier while others already returned — the
  /// divergent-barrier bug real GPUs hang on).
  Status Run(int count, const Task& task);

  /// Called from inside a running task: wait for all live siblings.
  void Barrier();

  /// True while called from inside a task (barrier is only legal then).
  bool InFiber() const;

  struct Impl;  // public so the ucontext trampoline can reach it

 private:
  std::unique_ptr<Impl> impl_;
};

}  // namespace bridgecl::simgpu
