// Deferred-execution command scheduler shared by both mini-runtimes
// (docs/CONCURRENCY.md). Each native runtime owns one Scheduler per
// device; CL command queues and CUDA streams both map onto scheduler
// queues, which is what makes the paper's queue<->stream translation
// (§3) a handle-passing exercise for the wrappers instead of a semantic
// re-implementation.
//
// Execution model: command side effects run *eagerly* at enqueue time,
// in deterministic enqueue order, while the time they cost is captured
// (Device::BeginCapture) instead of advancing the host clock. The
// captured duration is then placed on one of the device's two engines
// (copy or compute) no earlier than the command's dependency horizon:
//   ready = max(host clock at enqueue,
//               previous command's end      [in-order queues],
//               last barrier's end,
//               every wait-list event's end)
//   start = max(ready, engine free time)
//   end   = start + duration
// Blocking commands roll the host clock to `end`; non-blocking commands
// leave the clock alone so later independent commands can be placed on
// the other engine inside the same window — copy/compute overlap.
//
// Errors from non-blocking commands are parked on the owning queue and
// surface, sticky, at the next synchronization point (Synchronize,
// ReleaseQueue, or a blocking command on the same queue), preserving
// whatever per-entry-point error code the failing command's closure
// sealed. Events record queued/start/end times and the command's final
// status *by value*, so they remain queryable after their queue is
// released (clReleaseCommandQueue must not invalidate event objects).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include "simgpu/device.h"
#include "support/status.h"

namespace bridgecl::sched {

/// Queue handle of the default queue. It always exists, is in-order, and
/// cannot be released; it backs the CL default command queue and the CUDA
/// default (null) stream.
inline constexpr uint64_t kDefaultQueue = 0;

enum class CommandKind {
  kCopyH2D,
  kCopyD2H,
  kCopyD2D,
  kKernel,
  kMarker,   // completes when its dependencies complete; zero duration
  kBarrier,  // completes when *everything* enqueued so far on the queue
             // has completed, and orders all later commands after it
};

struct CommandSpec {
  CommandKind kind = CommandKind::kMarker;
  uint64_t queue = kDefaultQueue;
  std::vector<uint64_t> wait_events;  // explicit event dependencies
  uint64_t bytes = 0;                 // copies: payload size (for traces)
  std::string kernel;                 // kernel launches: name (for traces)
};

/// Timestamps of a completed command, in simulated microseconds.
/// `queued_us` is the host clock when the API entry point was entered
/// (CL_PROFILING_COMMAND_QUEUED); `start_us`/`end_us` are the engine
/// execution window.
struct EventTimes {
  double queued_us = 0;
  double start_us = 0;
  double end_us = 0;
};

class Scheduler {
 public:
  /// `layer` is the static layer tag device-engine trace spans are
  /// recorded under ("mocl" or "mcuda").
  Scheduler(simgpu::Device& device, const char* layer);

  // -- queues ---------------------------------------------------------------
  /// Creates a queue and returns its handle (handles start at 1, so a
  /// handle is never null when smuggled through a cudaStream_t pointer).
  uint64_t CreateQueue(bool out_of_order);
  bool HasQueue(uint64_t queue) const;
  bool IsOutOfOrder(uint64_t queue) const;
  /// Implicit Finish, then removal. Surfaces the queue's parked error.
  /// The default queue cannot be released. Events outlive their queue.
  Status ReleaseQueue(uint64_t queue);

  // -- enqueue --------------------------------------------------------------
  struct Result {
    uint64_t event = 0;  // recorded for every command (0 if enqueue failed)
    Status status;       // blocking: the command's outcome; else enqueue's
  };

  /// Enqueues one command. `queued_us` is the host clock captured at the
  /// API entry (before its ChargeApiCall). `exec` runs the command's side
  /// effects and must return a Status already sealed with the entry
  /// point's error code; it is skipped for markers/barriers. For blocking
  /// commands a parked queue error is returned (and cleared) *instead* of
  /// executing, and the host clock rolls to the command's end. For
  /// non-blocking commands a failure parks on the queue and the call
  /// reports success. Wait-list events must exist (KnowsEvent).
  Result Enqueue(const CommandSpec& spec, bool blocking, double queued_us,
                 const std::function<Status()>& exec);

  // -- synchronization ------------------------------------------------------
  /// clFinish(queue) / cudaStreamSynchronize: rolls the host clock to the
  /// end of everything enqueued on `queue`; returns its parked error.
  Status Synchronize(uint64_t queue);
  /// cudaDeviceSynchronize: Synchronize over every live queue (in handle
  /// order); returns the first parked error found.
  Status SynchronizeAll();
  /// clWaitForEvents: rolls the clock to the latest end among `events`;
  /// returns the first event's recorded failure, if any. Unknown events
  /// are NotFound (callers map to CL_INVALID_EVENT / cudaError handles).
  Status WaitForEvents(std::span<const uint64_t> events);
  /// cudaStreamWaitEvent: all commands enqueued on `queue` *after* this
  /// call start no earlier than the event's end.
  Status StreamWaitEvent(uint64_t queue, uint64_t event);
  /// cudaEventSynchronize: rolls the clock to the event's end and returns
  /// the recorded status of its command.
  Status EventSynchronize(uint64_t event);

  // -- events ---------------------------------------------------------------
  bool KnowsEvent(uint64_t event) const;
  StatusOr<EventTimes> TimesOf(uint64_t event) const;
  /// Drops the event record. Returns false if the event is unknown.
  bool ReleaseEvent(uint64_t event);
  /// Live event records (leak check for the sanitize suite).
  size_t LiveEvents() const { return events_.size(); }

  // -- snapshot/restore (src/snapshot, docs/SNAPSHOT.md) --------------------
  /// Queue topology and completed-event records as plain data. Commands
  /// execute eagerly at enqueue, so there is never an in-flight command to
  /// capture — queues are fully described by their timeline horizons and
  /// parked errors, events by their recorded times and status.
  struct QueueState {
    uint64_t id = 0;
    bool ooo = false;
    double last_end = 0;
    double barrier_end = 0;
    double max_end = 0;
    Status pending;
  };
  struct EventState {
    uint64_t id = 0;
    EventTimes times;
    Status status;
  };
  struct State {
    std::vector<QueueState> queues;  // ascending id; includes the default
    std::vector<EventState> events;  // ascending id
    uint64_t next_queue = 1;
    uint64_t next_event = 0;
  };
  State ExportState() const;
  /// Replace all queue and event records with `state` (the default queue
  /// comes from the image like any other).
  void ImportState(const State& state);

 private:
  struct QueueRec {
    bool ooo = false;
    double last_end = 0;     // end of the previously enqueued command
    double barrier_end = 0;  // end of the last barrier
    double max_end = 0;      // completion horizon of the whole queue
    Status pending;          // first deferred failure, cleared at sync
  };
  struct EventRec {
    EventTimes times;
    Status status;
  };

  QueueRec* Find(uint64_t queue);
  const QueueRec* Find(uint64_t queue) const;
  void RollClockTo(double end_us);
  Status TakePending(QueueRec& q);

  simgpu::Device& device_;
  const char* layer_;
  // std::map: deterministic iteration order for SynchronizeAll.
  std::map<uint64_t, QueueRec> queues_;
  std::map<uint64_t, EventRec> events_;
  uint64_t next_queue_ = 1;
  // Event handles live in their own bit-space so stale handles from other
  // subsystems can never alias a live event.
  uint64_t next_event_ = 0x5000'0000'0000'0001ULL;
};

}  // namespace bridgecl::sched
