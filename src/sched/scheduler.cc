#include "sched/scheduler.h"

#include <algorithm>

#include "trace/trace.h"

namespace bridgecl::sched {

Scheduler::Scheduler(simgpu::Device& device, const char* layer)
    : device_(device), layer_(layer) {
  queues_[kDefaultQueue] = QueueRec{};  // in-order, always present
}

uint64_t Scheduler::CreateQueue(bool out_of_order) {
  uint64_t id = next_queue_++;
  QueueRec q;
  q.ooo = out_of_order;
  queues_[id] = std::move(q);
  return id;
}

bool Scheduler::HasQueue(uint64_t queue) const {
  return queues_.count(queue) != 0;
}

bool Scheduler::IsOutOfOrder(uint64_t queue) const {
  const QueueRec* q = Find(queue);
  return q != nullptr && q->ooo;
}

Status Scheduler::ReleaseQueue(uint64_t queue) {
  if (queue == kDefaultQueue)
    return InvalidArgumentError("the default queue cannot be released");
  auto it = queues_.find(queue);
  if (it == queues_.end())
    return NotFoundError("unknown command queue/stream");
  RollClockTo(it->second.max_end);
  Status pending = TakePending(it->second);
  queues_.erase(it);
  return pending;
}

Scheduler::Result Scheduler::Enqueue(const CommandSpec& spec, bool blocking,
                                     double queued_us,
                                     const std::function<Status()>& exec) {
  Result r;
  QueueRec* q = Find(spec.queue);
  if (q == nullptr) {
    r.status = NotFoundError("unknown command queue/stream");
    return r;
  }
  // A blocking command is a synchronization point for its queue: a parked
  // deferred error surfaces here, *before* new side effects run.
  if (blocking && !q->pending.ok()) {
    r.status = TakePending(*q);
    return r;
  }

  const double now = device_.now_us();
  double ready = std::max(now, q->barrier_end);
  if (!q->ooo) ready = std::max(ready, q->last_end);
  for (uint64_t ev : spec.wait_events) {
    auto it = events_.find(ev);
    if (it == events_.end()) {
      r.status = NotFoundError("unknown event in wait list");
      return r;
    }
    ready = std::max(ready, it->second.times.end_us);
  }
  // A marker with an empty wait list on an out-of-order queue waits for
  // everything enqueued so far (OpenCL 1.2 clEnqueueMarkerWithWaitList).
  if (spec.kind == CommandKind::kMarker && q->ooo && spec.wait_events.empty())
    ready = std::max(ready, q->max_end);

  double start = ready, end = ready;
  Status cmd_status;
  switch (spec.kind) {
    case CommandKind::kMarker:
      break;
    case CommandKind::kBarrier:
      start = end = std::max(ready, q->max_end);
      q->barrier_end = end;
      break;
    default: {
      // Run the side effects now; capture the time they would have cost
      // and place that window on the command's engine.
      device_.BeginCapture();
      cmd_status = exec();
      const double dur = device_.EndCapture();
      const simgpu::EngineId engine = spec.kind == CommandKind::kKernel
                                          ? simgpu::EngineId::kCompute
                                          : simgpu::EngineId::kCopy;
      start = device_.ReserveEngine(engine, ready, dur);
      end = start + dur;
      if (trace::TraceRecorder* t = device_.tracer();
          t != nullptr && dur > 0) {
        const bool compute = engine == simgpu::EngineId::kCompute;
        t->AppendCompleted(compute ? trace::TraceKind::kDeviceCompute
                                   : trace::TraceKind::kDeviceCopy,
                           layer_, compute ? "compute-engine" : "copy-engine",
                           start, end, /*lane=*/compute ? 2 : 1, spec.queue,
                           spec.bytes, spec.kernel, !cmd_status.ok());
      }
      break;
    }
  }
  q->last_end = end;
  q->max_end = std::max(q->max_end, end);

  const uint64_t id = next_event_++;
  EventRec rec;
  rec.times = EventTimes{queued_us, start, end};
  rec.status = cmd_status;
  events_[id] = std::move(rec);
  r.event = id;

  if (blocking) {
    RollClockTo(end);
    r.status = std::move(cmd_status);
  } else if (!cmd_status.ok() && q->pending.ok()) {
    q->pending = std::move(cmd_status);  // surfaces at the next sync point
  }
  return r;
}

Status Scheduler::Synchronize(uint64_t queue) {
  QueueRec* q = Find(queue);
  if (q == nullptr) return NotFoundError("unknown command queue/stream");
  RollClockTo(q->max_end);
  return TakePending(*q);
}

Status Scheduler::SynchronizeAll() {
  Status first;
  for (auto& [id, q] : queues_) {
    RollClockTo(q.max_end);
    Status st = TakePending(q);
    if (!st.ok() && first.ok()) first = std::move(st);
  }
  return first;
}

Status Scheduler::WaitForEvents(std::span<const uint64_t> events) {
  double horizon = device_.now_us();
  Status first;
  for (uint64_t ev : events) {
    auto it = events_.find(ev);
    if (it == events_.end())
      return NotFoundError("unknown event in wait list");
    horizon = std::max(horizon, it->second.times.end_us);
    if (!it->second.status.ok() && first.ok()) first = it->second.status;
  }
  RollClockTo(horizon);
  return first;
}

Status Scheduler::StreamWaitEvent(uint64_t queue, uint64_t event) {
  QueueRec* q = Find(queue);
  if (q == nullptr) return NotFoundError("unknown command queue/stream");
  auto it = events_.find(event);
  if (it == events_.end()) return NotFoundError("unknown event");
  const double end = it->second.times.end_us;
  // In-order queues serialize through last_end; out-of-order queues only
  // respect barriers, so the wait becomes a barrier-like horizon.
  if (q->ooo)
    q->barrier_end = std::max(q->barrier_end, end);
  else
    q->last_end = std::max(q->last_end, end);
  return OkStatus();
}

Status Scheduler::EventSynchronize(uint64_t event) {
  auto it = events_.find(event);
  if (it == events_.end()) return NotFoundError("unknown event");
  RollClockTo(it->second.times.end_us);
  return it->second.status;
}

bool Scheduler::KnowsEvent(uint64_t event) const {
  return events_.count(event) != 0;
}

StatusOr<EventTimes> Scheduler::TimesOf(uint64_t event) const {
  auto it = events_.find(event);
  if (it == events_.end()) return NotFoundError("unknown event");
  return it->second.times;
}

bool Scheduler::ReleaseEvent(uint64_t event) {
  return events_.erase(event) != 0;
}

Scheduler::State Scheduler::ExportState() const {
  State s;
  s.queues.reserve(queues_.size());
  for (const auto& [id, q] : queues_)
    s.queues.push_back(
        QueueState{id, q.ooo, q.last_end, q.barrier_end, q.max_end,
                   q.pending});
  s.events.reserve(events_.size());
  for (const auto& [id, e] : events_)
    s.events.push_back(EventState{id, e.times, e.status});
  s.next_queue = next_queue_;
  s.next_event = next_event_;
  return s;
}

void Scheduler::ImportState(const State& state) {
  queues_.clear();
  for (const QueueState& q : state.queues) {
    QueueRec rec;
    rec.ooo = q.ooo;
    rec.last_end = q.last_end;
    rec.barrier_end = q.barrier_end;
    rec.max_end = q.max_end;
    rec.pending = q.pending;
    queues_[q.id] = std::move(rec);
  }
  // The default queue is an invariant of the class; a (malformed) image
  // without it must not leave the scheduler unusable.
  queues_.try_emplace(kDefaultQueue);
  events_.clear();
  for (const EventState& e : state.events)
    events_[e.id] = EventRec{e.times, e.status};
  next_queue_ = state.next_queue;
  next_event_ = state.next_event;
}

Scheduler::QueueRec* Scheduler::Find(uint64_t queue) {
  auto it = queues_.find(queue);
  return it == queues_.end() ? nullptr : &it->second;
}

const Scheduler::QueueRec* Scheduler::Find(uint64_t queue) const {
  auto it = queues_.find(queue);
  return it == queues_.end() ? nullptr : &it->second;
}

void Scheduler::RollClockTo(double end_us) {
  const double now = device_.now_us();
  if (end_us > now) device_.AdvanceUs(end_us - now);
}

Status Scheduler::TakePending(QueueRec& q) {
  Status st = std::move(q.pending);
  q.pending = OkStatus();
  return st;
}

}  // namespace bridgecl::sched
