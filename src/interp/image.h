// Device-side image/texture representation shared by the runtimes (§5).
//
// An image object is a descriptor stored in device global memory; the
// opaque handle held by kernels (OpenCL image2d_t, a bound CUDA texture
// reference) is the descriptor's virtual address. OpenCL passes a
// separate sampler argument; CUDA texture references carry their sampler
// state in the descriptor (set by cudaBindTexture*), which is exactly the
// asymmetry the paper's §5 translation has to bridge.
#pragma once

#include <cstdint>

#include "lang/type.h"

namespace bridgecl::interp {

/// Sampler state bits (subset of OpenCL sampler properties).
enum SamplerBits : uint32_t {
  kSamplerNormalizedCoords = 1u << 0,
  kSamplerFilterLinear = 1u << 1,   // else nearest
  kSamplerAddressClamp = 1u << 2,   // clamp-to-edge (the only mode we model)
};

/// POD descriptor stored in device memory. All fields little-endian.
struct ImageDesc {
  uint64_t data_va = 0;      // first texel
  uint32_t width = 0;        // in texels
  uint32_t height = 1;
  uint32_t depth = 1;
  uint32_t channels = 4;     // 1..4
  uint32_t elem_kind = 0;    // lang::ScalarKind of one channel
  uint32_t row_pitch = 0;    // bytes per row
  uint32_t slice_pitch = 0;  // bytes per slice
  uint32_t sampler_bits = 0; // CUDA texture refs: bound sampler state
  uint32_t dims = 2;
};

inline uint32_t ImageTexelBytes(const ImageDesc& d) {
  return static_cast<uint32_t>(
             lang::ScalarByteSize(static_cast<lang::ScalarKind>(d.elem_kind))) *
         d.channels;
}

}  // namespace bridgecl::interp
