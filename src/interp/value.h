// Runtime values for the kernel interpreter. A Value is a typed scalar,
// vector, pointer (a simgpu virtual address), or an aggregate byte image
// (struct/array rvalues). Encode/Decode convert between Values and device
// memory bytes under the shared ABI defined by lang::Type::ByteSize().
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "lang/type.h"
#include "support/status.h"

namespace bridgecl::interp {

using lang::ScalarKind;
using lang::Type;

/// One scalar payload; the active member follows the ScalarKind.
union ScalarVal {
  int64_t i;
  uint64_t u;
  double f;
};

class Value {
 public:
  Value() = default;

  // -- constructors --------------------------------------------------------
  static Value Int(int64_t v, ScalarKind k = ScalarKind::kInt);
  static Value UInt(uint64_t v, ScalarKind k = ScalarKind::kUInt);
  static Value Float(double v, ScalarKind k = ScalarKind::kFloat);
  static Value Bool(bool v);
  static Value Pointer(uint64_t va, Type::Ptr pointer_type);
  static Value Vector(Type::Ptr vec_type, std::vector<ScalarVal> comps);
  static Value Aggregate(Type::Ptr type, std::vector<std::byte> bytes);
  static Value Void();

  // -- observers -----------------------------------------------------------
  const Type::Ptr& type() const { return type_; }
  bool is_vector() const { return type_ && type_->is_vector(); }
  bool is_pointer_like() const {
    return type_ && (type_->is_pointer() || type_->is_image() ||
                     type_->is_sampler() || type_->is_texture());
  }
  bool is_aggregate() const { return type_ && (type_->is_struct() || type_->is_array()); }

  /// Scalar payload (also the pointer VA / opaque handle).
  ScalarVal scalar() const { return s_; }
  uint64_t AsVa() const { return s_.u; }

  /// Numeric views with conversion from the stored kind.
  int64_t AsI64() const;
  uint64_t AsU64() const;
  double AsF64() const;
  bool AsBool() const;

  const std::vector<ScalarVal>& comps() const { return v_; }
  std::vector<ScalarVal>& comps() { return v_; }
  const std::vector<std::byte>& bytes() const { return agg_; }
  std::vector<std::byte>& bytes() { return agg_; }

  /// Component i as a scalar Value of the element kind.
  Value Component(int i) const;

  /// Convert to another scalar/vector type (C conversion rules; vectors
  /// convert elementwise, scalar→vector broadcasts only via explicit ops).
  Value ConvertTo(const Type::Ptr& target) const;

  /// Bit-reinterpret (OpenCL as_typeN) — sizes must match.
  StatusOr<Value> BitcastTo(const Type::Ptr& target) const;

  std::string ToString() const;  // debugging / test failures

  void set_type(Type::Ptr t) { type_ = std::move(t); }
  void set_scalar(ScalarVal s) { s_ = s; }

 private:
  Type::Ptr type_;
  ScalarVal s_{};
  std::vector<ScalarVal> v_;     // vector components
  std::vector<std::byte> agg_;   // struct/array payload
};

/// Encode `v` into `dst` (device memory bytes) as type `v.type()`.
/// `dst` must have at least v.type()->ByteSize() bytes.
Status EncodeValue(const Value& v, std::byte* dst);

/// Decode a value of `type` from `src`.
StatusOr<Value> DecodeValue(const Type::Ptr& type, const std::byte* src);

/// Scalar conversion helper shared with the interpreter: reinterprets the
/// payload of kind `from` as kind `to` with C conversion semantics.
ScalarVal ConvertScalar(ScalarVal v, ScalarKind from, ScalarKind to);

}  // namespace bridgecl::interp
