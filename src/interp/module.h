// A compiled kernel module — the simulator's stand-in for a PTX module
// (CUDA) or a built cl_program (OpenCL). Compile() runs the front end;
// LoadOn() materializes module-scope state on a device: the constant
// region and CUDA __device__ statics, with their compile-time
// initializers, plus the symbol table that cudaMemcpyTo/FromSymbol and the
// CU→CL translator rely on (§4.2, §4.3).
#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "lang/ast.h"
#include "lang/dialect.h"
#include "simgpu/device.h"
#include "support/status.h"

namespace bridgecl::interp {

/// Process-wide table of "native compiler" register allocations per kernel
/// and toolchain. Models the §6.3 cfd observation: nvcc and the OpenCL
/// compiler allocate different register counts for the same kernel, so a
/// kernel's occupancy depends on which compiler finally built it — which,
/// under the wrapper bindings, is the *target* model's compiler.
class KernelRegisterTable {
 public:
  static KernelRegisterTable& Instance();

  void Set(const std::string& kernel, int opencl_regs, int cuda_regs);
  void Clear();
  /// Registers for `kernel` when built by the `dialect` toolchain;
  /// 0 when no entry exists.
  int For(const std::string& kernel, lang::Dialect dialect) const;

 private:
  struct Entry {
    int opencl_regs = 0;
    int cuda_regs = 0;
  };
  std::unordered_map<std::string, Entry> entries_;
};

/// What the content-hashed module cache did for one Compile call.
enum class ModuleCacheOutcome {
  kDisabled,  // cache bypassed (BRIDGECL_MODULE_CACHE=0 or setter)
  kMiss,      // front end ran; result inserted
  kHit,       // front end skipped; diagnostics replayed from the cache
};

/// Cumulative process-wide cache counters (monotone; surfaced on build
/// trace spans and in docs/PERFORMANCE.md tooling).
struct ModuleCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
};
ModuleCacheStats GetModuleCacheStats();

/// Cache keying: FNV-1a over source + dialect + build options. Exposed so
/// tests can assert two sources collide/differ where expected.
uint64_t ModuleCacheKey(const std::string& source, lang::Dialect dialect,
                        const std::string& build_options);

/// Whether Compile consults the cache. Defaults to the environment
/// (BRIDGECL_MODULE_CACHE, "0" disables); SetModuleCacheEnabled(0/1)
/// overrides, -1 restores the environment default.
bool ModuleCacheEnabled();
void SetModuleCacheEnabled(int enabled);

/// One module-cache entry as captured in a snapshot image's MODC section
/// (src/snapshot, docs/SNAPSHOT.md): the cache key inputs, whether the
/// build succeeded, and the exact diagnostics the front end produced.
struct ModuleCacheEntryState {
  uint64_t key = 0;  // ModuleCacheKey(source, dialect, build_options)
  std::string source;
  lang::Dialect dialect = lang::Dialect::kOpenCL;
  std::string build_options;
  bool ok = false;
  std::vector<Diagnostic> diags;
};

/// Every cache entry, sorted by key (deterministic image bytes).
std::vector<ModuleCacheEntryState> ExportModuleCache();
/// Repopulate the process-wide cache by re-running the (deterministic)
/// front end over each entry, then verify the replayed diagnostics are
/// byte-identical to the captured ones — the build-log determinism check
/// restore relies on. No-op per entry when the cache already holds it.
Status ImportModuleCache(const std::vector<ModuleCacheEntryState>& entries);

class Module {
 public:
  /// Parse + analyze `source` in the given dialect. Results (including
  /// failures and their diagnostics) are cached process-wide under
  /// ModuleCacheKey(source, dialect, build_options); a hit skips the
  /// front end, replays the original diagnostics into `diags` so build
  /// logs are byte-identical, and shares the analyzed translation unit.
  /// Simulated build cost is charged by callers identically on hit and
  /// miss — the cache saves wall-clock only, never simulated time.
  static StatusOr<std::unique_ptr<Module>> Compile(
      const std::string& source, lang::Dialect dialect,
      DiagnosticEngine& diags, const std::string& build_options = "",
      ModuleCacheOutcome* outcome = nullptr);

  /// Lay out and initialize module-scope memory on `device`:
  ///   * every __constant/__constant__ file-scope variable gets an offset
  ///     in the device constant region,
  ///   * every CUDA __device__ file-scope variable gets a global-memory
  ///     allocation,
  /// and initializers are encoded into device memory. Must be called once
  /// before launching kernels from this module.
  Status LoadOn(simgpu::Device& device);

  lang::TranslationUnit& tu() { return *tu_; }
  const lang::TranslationUnit& tu() const { return *tu_; }
  lang::Dialect dialect() const { return dialect_; }
  const std::string& source() const { return source_; }

  const lang::FunctionDecl* FindKernel(const std::string& name) const;

  struct Symbol {
    uint64_t va = 0;
    size_t size = 0;
    lang::AddressSpace space = lang::AddressSpace::kGlobal;
  };
  /// Module-scope variable lookup by name (constant or device-global).
  StatusOr<Symbol> FindSymbol(const std::string& name) const;
  /// The whole symbol table (snapshot serialization).
  const std::unordered_map<std::string, Symbol>& symbols() const {
    return symbols_;
  }

  /// Snapshot restore: bind this module's module-scope symbols to the VAs
  /// recorded in an image instead of laying them out afresh. LoadOn would
  /// re-run the allocator and initializers, clobbering restored memory;
  /// this adopts the image's layout (whose backing bytes were already
  /// imported through VirtualMemory::ImportState) and only rebuilds the
  /// name → VarDecl bindings the evaluator needs.
  struct SymbolBinding {
    std::string name;
    Symbol symbol;
  };
  Status RestoreLayout(simgpu::Device& device,
                       const std::vector<SymbolBinding>& symbols);

  /// VA of a module-scope variable (used by the evaluator for DeclRefs to
  /// file-scope state); 0 when unknown.
  uint64_t VaOf(const lang::VarDecl* v) const;

  // -- CUDA texture references (§5) ---------------------------------------
  /// Bind a texture reference declared in this module to an image
  /// descriptor (see interp/image.h). Unbound references fault on use.
  Status BindTexture(const std::string& name, uint64_t image_desc_va);
  StatusOr<uint64_t> TextureBinding(const std::string& name) const;
  const lang::TextureRefDecl* FindTextureRef(const std::string& name) const;

  // -- occupancy inputs (§6.3) --------------------------------------------
  /// Override the modeled register count for one kernel (stand-in for the
  /// native compiler's register allocation, which differed between the
  /// CUDA and OpenCL toolchains in the paper's cfd result).
  void SetRegisterOverride(const std::string& kernel, int regs);
  int RegistersFor(const lang::FunctionDecl* kernel) const;
  /// All overrides (snapshot serialization).
  const std::unordered_map<std::string, int>& register_overrides() const {
    return register_overrides_;
  }
  /// All texture bindings (snapshot serialization).
  const std::unordered_map<std::string, uint64_t>& texture_bindings() const {
    return texture_bindings_;
  }

  bool loaded() const { return loaded_device_ != nullptr; }
  simgpu::Device* loaded_device() const { return loaded_device_; }

 private:
  Module() = default;

  // Shared with the module cache and with sibling modules compiled from
  // identical source: the TU is immutable after sema.
  std::shared_ptr<lang::TranslationUnit> tu_;
  lang::Dialect dialect_ = lang::Dialect::kOpenCL;
  std::string source_;
  simgpu::Device* loaded_device_ = nullptr;

  std::unordered_map<std::string, Symbol> symbols_;
  std::unordered_map<const lang::VarDecl*, uint64_t> var_vas_;
  std::unordered_map<std::string, uint64_t> texture_bindings_;
  std::unordered_map<std::string, int> register_overrides_;
};

}  // namespace bridgecl::interp
