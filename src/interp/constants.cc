#include "interp/constants.h"

#include <unordered_map>

#include "interp/image.h"

namespace bridgecl::interp {

std::optional<uint64_t> NamedConstantValue(const std::string& name) {
  static const std::unordered_map<std::string, uint64_t> kTable = {
      // Barrier fence flags (values only need to be distinct).
      {"CLK_LOCAL_MEM_FENCE", 1},
      {"CLK_GLOBAL_MEM_FENCE", 2},
      // Sampler properties map directly onto interp/image.h bits.
      {"CLK_NORMALIZED_COORDS_FALSE", 0},
      {"CLK_NORMALIZED_COORDS_TRUE", kSamplerNormalizedCoords},
      {"CLK_ADDRESS_NONE", 0},
      {"CLK_ADDRESS_CLAMP", kSamplerAddressClamp},
      {"CLK_ADDRESS_CLAMP_TO_EDGE", kSamplerAddressClamp},
      {"CLK_FILTER_NEAREST", 0},
      {"CLK_FILTER_LINEAR", kSamplerFilterLinear},
  };
  auto it = kTable.find(name);
  if (it == kTable.end()) return std::nullopt;
  return it->second;
}

}  // namespace bridgecl::interp
