// Kernel launcher + AST evaluator. Executes a kernel over a grid on a
// simulated device: blocks claimed in parallel by a host worker pool
// (docs/PERFORMANCE.md), each block's work-items as cooperatively
// scheduled fibers (real barrier semantics), with every operation
// charged to the device timing model. Per-block costs are reduced in
// canonical block order, so results are bit-identical for any worker
// count.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "interp/module.h"
#include "simgpu/device.h"
#include "simgpu/dim3.h"
#include "support/status.h"

namespace bridgecl::interp {

/// One kernel argument as bound by the host runtime.
struct KernelArg {
  enum class Kind {
    kBytes,      // encoded value: scalar, struct, or device pointer (8B VA)
    kLocalAlloc  // OpenCL dynamic __local allocation: size only (§4.1)
  };
  Kind kind = Kind::kBytes;
  std::vector<std::byte> bytes;
  size_t local_size = 0;

  static KernelArg Bytes(std::vector<std::byte> b) {
    KernelArg a;
    a.kind = Kind::kBytes;
    a.bytes = std::move(b);
    return a;
  }
  static KernelArg Pointer(uint64_t va) {
    std::vector<std::byte> b(8);
    std::memcpy(b.data(), &va, 8);
    return Bytes(std::move(b));
  }
  template <typename T>
  static KernelArg Value(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> b(sizeof(T));
    std::memcpy(b.data(), &v, sizeof(T));
    return Bytes(std::move(b));
  }
  static KernelArg LocalAlloc(size_t size) {
    KernelArg a;
    a.kind = Kind::kLocalAlloc;
    a.local_size = size;
    return a;
  }
};

struct LaunchConfig {
  simgpu::Dim3 grid;
  simgpu::Dim3 block;
  size_t dynamic_shared_bytes = 0;  // CUDA <<<g,b,SHMEM>>> third argument
};

/// Per-launch result: the accumulated cost and derived occupancy, useful
/// for tests and the ablation benches.
struct LaunchResult {
  double total_cycles = 0;
  double occupancy = 0;
  uint64_t work_items = 0;
  double kernel_time_us = 0;  // simulated device time consumed
};

/// Execute `kernel_name` from `module` on `device`. The module must be
/// loaded on that device. Argument count/kinds must match the kernel
/// signature (dynamic-local args only where the param is a __local
/// pointer).
StatusOr<LaunchResult> LaunchKernel(simgpu::Device& device, Module& module,
                                    const std::string& kernel_name,
                                    const LaunchConfig& config,
                                    std::span<const KernelArg> args);

/// Host workers used for block-parallel launches: the SetWorkerCount
/// override if pinned, else BRIDGECL_JOBS, else hardware_concurrency
/// (see worker_pool.h). Launches that require serial execution (armed
/// fault plans, kernels using atomics) ignore this and run with one
/// worker.
int WorkerCount();
/// Pin the worker count for subsequent launches (tests, benches);
/// `n == 0` restores the environment-derived default. Clamped to the
/// VM's worker-slot capacity.
void SetWorkerCount(int n);

}  // namespace bridgecl::interp
