#include "interp/value.h"

#include <cassert>

#include "support/strings.h"

namespace bridgecl::interp {

using lang::IsFloatScalar;
using lang::IsSignedScalar;
using lang::ScalarByteSize;

Value Value::Int(int64_t v, ScalarKind k) {
  Value out;
  out.type_ = Type::Scalar(k);
  out.s_.i = v;
  return out;
}

Value Value::UInt(uint64_t v, ScalarKind k) {
  Value out;
  out.type_ = Type::Scalar(k);
  out.s_.u = v;
  return out;
}

Value Value::Float(double v, ScalarKind k) {
  Value out;
  out.type_ = Type::Scalar(k);
  out.s_.f = k == ScalarKind::kFloat ? static_cast<float>(v) : v;
  return out;
}

Value Value::Bool(bool v) {
  Value out;
  out.type_ = Type::BoolTy();
  out.s_.i = v ? 1 : 0;
  return out;
}

Value Value::Pointer(uint64_t va, Type::Ptr pointer_type) {
  Value out;
  out.type_ = std::move(pointer_type);
  out.s_.u = va;
  return out;
}

Value Value::Vector(Type::Ptr vec_type, std::vector<ScalarVal> comps) {
  Value out;
  out.type_ = std::move(vec_type);
  out.v_ = std::move(comps);
  return out;
}

Value Value::Aggregate(Type::Ptr type, std::vector<std::byte> bytes) {
  Value out;
  out.type_ = std::move(type);
  out.agg_ = std::move(bytes);
  return out;
}

Value Value::Void() {
  Value out;
  out.type_ = Type::VoidTy();
  return out;
}

int64_t Value::AsI64() const {
  if (type_ && type_->is_scalar() && IsFloatScalar(type_->scalar_kind()))
    return static_cast<int64_t>(s_.f);
  return s_.i;
}

uint64_t Value::AsU64() const {
  if (type_ && type_->is_scalar() && IsFloatScalar(type_->scalar_kind()))
    return static_cast<uint64_t>(s_.f);
  return s_.u;
}

double Value::AsF64() const {
  if (!type_) return 0;
  if (type_->is_scalar()) {
    ScalarKind k = type_->scalar_kind();
    if (IsFloatScalar(k)) return s_.f;
    if (IsSignedScalar(k)) return static_cast<double>(s_.i);
    return static_cast<double>(s_.u);
  }
  return static_cast<double>(s_.u);
}

bool Value::AsBool() const {
  if (type_ && type_->is_scalar() && IsFloatScalar(type_->scalar_kind()))
    return s_.f != 0.0;
  return s_.u != 0;
}

Value Value::Component(int i) const {
  assert(is_vector());
  assert(i >= 0 && i < static_cast<int>(v_.size()));
  Value out;
  out.type_ = Type::Scalar(type_->scalar_kind());
  out.s_ = v_[i];
  return out;
}

ScalarVal ConvertScalar(ScalarVal v, ScalarKind from, ScalarKind to) {
  ScalarVal out{};
  bool from_float = IsFloatScalar(from);
  bool to_float = IsFloatScalar(to);
  if (to_float) {
    double d = from_float ? v.f
               : IsSignedScalar(from) ? static_cast<double>(v.i)
                                      : static_cast<double>(v.u);
    out.f = to == ScalarKind::kFloat ? static_cast<float>(d) : d;
    return out;
  }
  // Integral target: truncate to the target width, preserving two's
  // complement behaviour.
  int64_t raw;
  if (from_float) {
    raw = static_cast<int64_t>(v.f);
  } else {
    raw = v.i;
  }
  size_t bytes = ScalarByteSize(to);
  if (bytes >= 8) {
    out.i = raw;
    return out;
  }
  uint64_t mask = (1ull << (bytes * 8)) - 1;
  uint64_t trunc = static_cast<uint64_t>(raw) & mask;
  if (IsSignedScalar(to)) {
    uint64_t sign_bit = 1ull << (bytes * 8 - 1);
    if (trunc & sign_bit) trunc |= ~mask;
    out.i = static_cast<int64_t>(trunc);
  } else {
    out.u = trunc;
  }
  if (to == ScalarKind::kBool) out.u = (raw != 0) ? 1 : 0;
  return out;
}

Value Value::ConvertTo(const Type::Ptr& target) const {
  if (!target || !type_) return *this;
  if (lang::SameType(type_, target)) return *this;
  // Pointer <-> pointer / integer: keep the VA payload.
  if (target->is_pointer() || target->is_image() || target->is_sampler() ||
      target->is_texture()) {
    Value out;
    out.type_ = target;
    out.s_ = s_;
    return out;
  }
  if (type_->is_pointer() && target->is_scalar()) {
    Value out;
    out.type_ = target;
    out.s_ = ConvertScalar(s_, ScalarKind::kULong, target->scalar_kind());
    return out;
  }
  if (target->is_vector()) {
    Value out;
    out.type_ = target;
    int w = target->vector_width();
    out.v_.resize(w);
    if (is_vector()) {
      for (int i = 0; i < w && i < static_cast<int>(v_.size()); ++i)
        out.v_[i] = ConvertScalar(v_[i], type_->scalar_kind(),
                                  target->scalar_kind());
    } else {
      // Scalar broadcast (OpenCL scalar-to-vector conversion).
      ScalarVal c = ConvertScalar(
          s_, type_->is_scalar() ? type_->scalar_kind() : ScalarKind::kULong,
          target->scalar_kind());
      for (int i = 0; i < w; ++i) out.v_[i] = c;
    }
    return out;
  }
  if (target->is_scalar()) {
    Value out;
    out.type_ = target;
    ScalarVal src = is_vector() ? v_[0] : s_;
    ScalarKind from =
        type_->is_scalar() || type_->is_vector() ? type_->scalar_kind()
                                                 : ScalarKind::kULong;
    out.s_ = ConvertScalar(src, from, target->scalar_kind());
    return out;
  }
  // Aggregate targets: reuse the payload (caller validated sizes).
  Value out = *this;
  out.type_ = target;
  return out;
}

StatusOr<Value> Value::BitcastTo(const Type::Ptr& target) const {
  if (!target || !type_)
    return InvalidArgumentError("bitcast with missing type");
  if (type_->ByteSize() != target->ByteSize())
    return InvalidArgumentError(
        StrFormat("as_type between different sizes: %zu vs %zu",
                  type_->ByteSize(), target->ByteSize()));
  std::vector<std::byte> buf(type_->ByteSize());
  BRIDGECL_RETURN_IF_ERROR(EncodeValue(*this, buf.data()));
  return DecodeValue(target, buf.data());
}

std::string Value::ToString() const {
  if (!type_) return "<untyped>";
  if (type_->is_vector()) {
    std::string out = type_->ToString() + "(";
    for (size_t i = 0; i < v_.size(); ++i) {
      if (i) out += ", ";
      if (IsFloatScalar(type_->scalar_kind()))
        out += StrFormat("%g", v_[i].f);
      else
        out += std::to_string(v_[i].i);
    }
    return out + ")";
  }
  if (type_->is_pointer() || type_->is_image() || type_->is_texture() ||
      type_->is_sampler())
    return StrFormat("%s@0x%llx", type_->ToString().c_str(),
                     static_cast<unsigned long long>(s_.u));
  if (type_->is_scalar()) {
    if (IsFloatScalar(type_->scalar_kind())) return StrFormat("%g", s_.f);
    if (IsSignedScalar(type_->scalar_kind())) return std::to_string(s_.i);
    return std::to_string(s_.u);
  }
  return type_->ToString() + "{" + std::to_string(agg_.size()) + "b}";
}

namespace {

Status EncodeScalar(ScalarVal v, ScalarKind k, std::byte* dst) {
  size_t n = ScalarByteSize(k);
  switch (k) {
    case ScalarKind::kFloat: {
      float f = static_cast<float>(v.f);
      std::memcpy(dst, &f, 4);
      return OkStatus();
    }
    case ScalarKind::kDouble:
      std::memcpy(dst, &v.f, 8);
      return OkStatus();
    default:
      std::memcpy(dst, &v.u, n);  // little-endian truncation
      return OkStatus();
  }
}

ScalarVal DecodeScalar(ScalarKind k, const std::byte* src) {
  ScalarVal out{};
  switch (k) {
    case ScalarKind::kFloat: {
      float f;
      std::memcpy(&f, src, 4);
      out.f = f;
      return out;
    }
    case ScalarKind::kDouble:
      std::memcpy(&out.f, src, 8);
      return out;
    default: {
      uint64_t raw = 0;
      std::memcpy(&raw, src, ScalarByteSize(k));
      if (IsSignedScalar(k)) {
        size_t bits = ScalarByteSize(k) * 8;
        if (bits < 64 && (raw & (1ull << (bits - 1)))) {
          raw |= ~((1ull << bits) - 1);
        }
      }
      out.u = raw;
      return out;
    }
  }
}

}  // namespace

Status EncodeValue(const Value& v, std::byte* dst) {
  const Type::Ptr& t = v.type();
  if (!t) return InternalError("encode of untyped value");
  switch (t->kind()) {
    case lang::TypeKind::kScalar:
      return EncodeScalar(v.scalar(), t->scalar_kind(), dst);
    case lang::TypeKind::kVector: {
      size_t esz = ScalarByteSize(t->scalar_kind());
      int w = t->vector_width();
      for (int i = 0; i < w; ++i) {
        ScalarVal c = i < static_cast<int>(v.comps().size()) ? v.comps()[i]
                                                             : ScalarVal{};
        BRIDGECL_RETURN_IF_ERROR(
            EncodeScalar(c, t->scalar_kind(), dst + i * esz));
      }
      return OkStatus();
    }
    case lang::TypeKind::kPointer:
    case lang::TypeKind::kImage:
    case lang::TypeKind::kSampler:
    case lang::TypeKind::kTexture: {
      uint64_t va = v.AsVa();
      std::memcpy(dst, &va, 8);
      return OkStatus();
    }
    case lang::TypeKind::kStruct:
    case lang::TypeKind::kArray: {
      size_t n = t->ByteSize();
      if (v.bytes().size() < n)
        return InternalError("aggregate value smaller than its type");
      std::memcpy(dst, v.bytes().data(), n);
      return OkStatus();
    }
    case lang::TypeKind::kNamed:
      return InternalError("encode of unresolved named type");
  }
  return InternalError("encode: unhandled type kind");
}

StatusOr<Value> DecodeValue(const Type::Ptr& type, const std::byte* src) {
  if (!type) return InternalError("decode of untyped location");
  switch (type->kind()) {
    case lang::TypeKind::kScalar: {
      Value out;
      out.set_type(type);
      out.set_scalar(DecodeScalar(type->scalar_kind(), src));
      return out;
    }
    case lang::TypeKind::kVector: {
      size_t esz = ScalarByteSize(type->scalar_kind());
      int w = type->vector_width();
      std::vector<ScalarVal> comps(w);
      for (int i = 0; i < w; ++i)
        comps[i] = DecodeScalar(type->scalar_kind(), src + i * esz);
      return Value::Vector(type, std::move(comps));
    }
    case lang::TypeKind::kPointer:
    case lang::TypeKind::kImage:
    case lang::TypeKind::kSampler:
    case lang::TypeKind::kTexture: {
      uint64_t va;
      std::memcpy(&va, src, 8);
      return Value::Pointer(va, type);
    }
    case lang::TypeKind::kStruct:
    case lang::TypeKind::kArray: {
      size_t n = type->ByteSize();
      std::vector<std::byte> buf(src, src + n);
      return Value::Aggregate(type, std::move(buf));
    }
    case lang::TypeKind::kNamed:
      return InternalError("decode of unresolved named type");
  }
  return InternalError("decode: unhandled type kind");
}

}  // namespace bridgecl::interp
