// Named device-code constants (OpenCL CLK_* flags and the few cuda* enums
// that can appear in device code). Shared by the evaluator and module
// initializer folding.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace bridgecl::interp {

std::optional<uint64_t> NamedConstantValue(const std::string& name);

}  // namespace bridgecl::interp
